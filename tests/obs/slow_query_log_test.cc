// Slow-query log: threshold semantics (database default, per-query
// override, disabled), sink capture, counters, and the injectable
// clock that keeps the tests deterministic.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/slow_query_log.h"

namespace wsq {
namespace {

SlowQueryRecord MakeRecord(int64_t elapsed_micros) {
  SlowQueryRecord r;
  r.query_id = 42;
  r.sql = "SELECT Name, Count FROM States, WebCount WHERE Name = T1";
  r.elapsed_micros = elapsed_micros;
  r.rows = 5;
  r.external_calls = 50;
  r.async_iteration = true;
  return r;
}

TEST(SlowQueryLogTest, LogsAtOrAboveThresholdOnly) {
  std::vector<SlowQueryRecord> seen;
  SlowQueryLog log(/*threshold_micros=*/1000,
                   [&seen](const SlowQueryRecord& r) { seen.push_back(r); });
  EXPECT_TRUE(log.enabled());

  EXPECT_FALSE(log.MaybeLog(MakeRecord(999)));
  EXPECT_TRUE(log.MaybeLog(MakeRecord(1000)));  // inclusive threshold
  EXPECT_TRUE(log.MaybeLog(MakeRecord(5000)));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(log.logged_total(), 2u);
  // The effective threshold is stamped into the emitted record.
  EXPECT_EQ(seen[0].threshold_micros, 1000);
  EXPECT_EQ(seen[0].elapsed_micros, 1000);
}

TEST(SlowQueryLogTest, DisabledByDefaultAndByZeroOverride) {
  std::vector<SlowQueryRecord> seen;
  SlowQueryLog off(/*threshold_micros=*/0,
                   [&seen](const SlowQueryRecord& r) { seen.push_back(r); });
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.MaybeLog(MakeRecord(1'000'000)));

  SlowQueryLog on(/*threshold_micros=*/100,
                  [&seen](const SlowQueryRecord& r) { seen.push_back(r); });
  // Per-query override 0 disables even though the default would fire.
  EXPECT_FALSE(on.MaybeLog(MakeRecord(1'000'000), /*threshold_override=*/0));
  EXPECT_TRUE(seen.empty());
}

TEST(SlowQueryLogTest, PerQueryOverrideReplacesDefault) {
  std::vector<SlowQueryRecord> seen;
  SlowQueryLog log(/*threshold_micros=*/1'000'000,
                   [&seen](const SlowQueryRecord& r) { seen.push_back(r); });
  // Tighter override catches what the default would let pass...
  EXPECT_TRUE(log.MaybeLog(MakeRecord(600), /*threshold_override=*/500));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].threshold_micros, 500);
  // ...and a disabled default stays authoritative with override < 0.
  EXPECT_FALSE(log.MaybeLog(MakeRecord(600), /*threshold_override=*/-1));
}

TEST(SlowQueryLogTest, FakeClockDrivesNowMicros) {
  int64_t now = 10'000;
  SlowQueryLog log(/*threshold_micros=*/100, /*sink=*/nullptr,
                   /*clock=*/[&now] { return now; });
  int64_t start = log.NowMicros();
  now += 750;  // the "query" runs for 750 fake microseconds
  int64_t elapsed = log.NowMicros() - start;
  EXPECT_EQ(elapsed, 750);

  std::vector<SlowQueryRecord> seen;
  SlowQueryLog capture(/*threshold_micros=*/100,
                       [&seen](const SlowQueryRecord& r) {
                         seen.push_back(r);
                       },
                       [&now] { return now; });
  EXPECT_TRUE(capture.MaybeLog(MakeRecord(elapsed)));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].elapsed_micros, 750);
}

TEST(SlowQueryLogTest, ToLineRendersKeyValuePairsWithSqlLast) {
  SlowQueryRecord r = MakeRecord(1'234'567);
  r.threshold_micros = 1'000'000;
  r.failed_calls = 2;
  r.degraded_tuples = 3;
  std::string line = r.ToLine();
  EXPECT_NE(line.find("slow_query"), std::string::npos) << line;
  EXPECT_NE(line.find("id=42"), std::string::npos) << line;
  EXPECT_NE(line.find("mode=async"), std::string::npos) << line;
  EXPECT_NE(line.find("rows=5"), std::string::npos) << line;
  EXPECT_NE(line.find("external_calls=50"), std::string::npos) << line;
  EXPECT_NE(line.find("failed_calls=2"), std::string::npos) << line;
  EXPECT_NE(line.find("degraded_tuples=3"), std::string::npos) << line;
  // sql is the last field (the only one that may contain spaces).
  size_t sql_pos = line.find("sql=\"");
  ASSERT_NE(sql_pos, std::string::npos) << line;
  EXPECT_GT(sql_pos, line.find("rows=")) << line;

  // Newlines in the statement are flattened to keep the record on one
  // line.
  SlowQueryRecord multi = MakeRecord(10);
  multi.sql = "SELECT *\nFROM t";
  EXPECT_EQ(multi.ToLine().find('\n'), std::string::npos);

  // Failed queries carry the error.
  SlowQueryRecord failed = MakeRecord(10);
  failed.ok = false;
  failed.error = "DEADLINE_EXCEEDED";
  EXPECT_NE(failed.ToLine().find("DEADLINE_EXCEEDED"),
            std::string::npos);
}

TEST(SlowQueryLogTest, ToLineCarriesDegradationAndMemoryFields) {
  SlowQueryRecord r = MakeRecord(1'000);
  r.partial_results = 2;
  r.degraded_shards = 3;
  r.spilled_bytes = 4096;
  r.spill_runs = 2;
  r.peak_memory_bytes = 1 << 20;
  std::string line = r.ToLine();
  EXPECT_NE(line.find("partial_results=2"), std::string::npos) << line;
  EXPECT_NE(line.find("degraded_shards=3"), std::string::npos) << line;
  EXPECT_NE(line.find("spill_runs=2"), std::string::npos) << line;
  EXPECT_NE(line.find("spilled_bytes=4096"), std::string::npos) << line;
  EXPECT_NE(line.find("peak_memory_bytes=1048576"), std::string::npos)
      << line;
  // All structured fields still precede the free-form sql.
  EXPECT_LT(line.find("peak_memory_bytes="), line.find("sql=\"")) << line;

  // A clean query omits every degradation field (lines stay short).
  std::string clean = MakeRecord(1'000).ToLine();
  EXPECT_EQ(clean.find("partial_results="), std::string::npos) << clean;
  EXPECT_EQ(clean.find("spill_runs="), std::string::npos) << clean;
  EXPECT_EQ(clean.find("peak_memory_bytes="), std::string::npos) << clean;
}

}  // namespace
}  // namespace wsq
