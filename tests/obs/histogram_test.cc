// Bucket math, snapshot/merge semantics, and concurrent recording for
// the log-linear histogram. The concurrent case is the one the CI TSan
// job runs (ctest label: obs).

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/histogram.h"

namespace wsq {
namespace {

TEST(HistogramBucketsTest, SmallValuesGetExactBuckets) {
  for (int64_t v = 0; v < static_cast<int64_t>(kHistogramLinearMax); ++v) {
    size_t idx = HistogramBucketIndex(v);
    EXPECT_EQ(idx, static_cast<size_t>(v));
    EXPECT_EQ(HistogramBucketLowerBound(idx), v);
    EXPECT_EQ(HistogramBucketUpperBound(idx), v);
  }
}

TEST(HistogramBucketsTest, NegativeValuesClampToZero) {
  EXPECT_EQ(HistogramBucketIndex(-1), 0u);
  EXPECT_EQ(HistogramBucketIndex(INT64_MIN), 0u);
}

TEST(HistogramBucketsTest, OctaveBoundaries) {
  // The first log-linear bucket starts exactly at 16, and every octave
  // [2^e, 2^(e+1)) contributes kHistogramSubBuckets buckets.
  EXPECT_EQ(HistogramBucketIndex(16), kHistogramLinearMax);
  for (size_t e = 4; e <= kHistogramMaxExponent; ++e) {
    int64_t lo = int64_t{1} << e;
    size_t first = kHistogramLinearMax + (e - 4) * kHistogramSubBuckets;
    EXPECT_EQ(HistogramBucketIndex(lo), first) << "e=" << e;
    EXPECT_EQ(HistogramBucketLowerBound(first), lo) << "e=" << e;
    // The last value of the octave lands in its last sub-bucket.
    if (e < kHistogramMaxExponent) {
      int64_t hi = (int64_t{1} << (e + 1)) - 1;
      EXPECT_EQ(HistogramBucketIndex(hi),
                first + kHistogramSubBuckets - 1)
          << "e=" << e;
    }
  }
}

TEST(HistogramBucketsTest, BoundsBracketEveryProbe) {
  // lower <= v <= upper must hold for every probed value, and buckets
  // must tile: upper(i) + 1 == lower(i + 1).
  std::vector<int64_t> probes;
  for (size_t e = 0; e < 62; ++e) {
    int64_t p = int64_t{1} << e;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
    probes.push_back(p + p / 3);
  }
  for (int64_t v : probes) {
    size_t idx = HistogramBucketIndex(v);
    ASSERT_LT(idx, kHistogramBuckets);
    EXPECT_LE(HistogramBucketLowerBound(idx), v) << "v=" << v;
    EXPECT_GE(HistogramBucketUpperBound(idx), v) << "v=" << v;
  }
  for (size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    EXPECT_EQ(HistogramBucketUpperBound(i) + 1,
              HistogramBucketLowerBound(i + 1))
        << "i=" << i;
  }
}

TEST(HistogramBucketsTest, RelativeErrorBounded) {
  // Bucket width / lower bound <= 1/8 past the linear range: quantiles
  // read from midpoints are within 12.5% of the truth.
  for (size_t i = kHistogramLinearMax; i < kHistogramBuckets; ++i) {
    int64_t lo = HistogramBucketLowerBound(i);
    int64_t hi = HistogramBucketUpperBound(i);
    EXPECT_LE(hi - lo + 1, lo / 8 + 1) << "i=" << i;
  }
}

TEST(HistogramTest, CountSumMaxAndExactSmallQuantiles) {
  Histogram h;
  for (int64_t v = 1; v <= 10; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 10u);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.sum, 55u);
  EXPECT_EQ(s.max, 10);
  // Values below kHistogramLinearMax are exact.
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 10.0);
  EXPECT_NEAR(s.Quantile(0.5), 5.0, 1.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.5);
}

TEST(HistogramTest, QuantileClampsToObservedMax) {
  Histogram h;
  h.Record(1'000'000);  // one sample in a wide bucket
  HistogramSnapshot s = h.Snapshot();
  // The bucket midpoint may exceed the only recorded value; the
  // estimate must clamp to max.
  EXPECT_LE(s.Quantile(0.99), static_cast<double>(s.max));
  EXPECT_GT(s.Quantile(0.99), 0.0);
}

TEST(HistogramTest, EmptySnapshot) {
  Histogram h;
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(HistogramTest, MergeEqualsUnion) {
  Histogram a;
  Histogram b;
  for (int64_t v = 0; v < 100; ++v) (v % 2 == 0 ? a : b).Record(v * 37);
  Histogram all;
  for (int64_t v = 0; v < 100; ++v) all.Record(v * 37);

  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  HistogramSnapshot expected = all.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.max, expected.max);
  ASSERT_EQ(merged.buckets.size(), expected.buckets.size());
  EXPECT_EQ(merged.buckets, expected.buckets);
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.Record(42);
  HistogramSnapshot s = a.Snapshot();
  s.Merge(HistogramSnapshot{});  // empty right-hand side
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 42u);

  HistogramSnapshot empty;  // empty left-hand side
  empty.Merge(a.Snapshot());
  EXPECT_EQ(empty.count, 1u);
  EXPECT_EQ(empty.max, 42);
}

// Concurrent Record from several threads: totals must balance exactly
// (each Record is one bucket increment + count + sum). Run under TSan
// in CI to certify the relaxed-atomic scheme.
TEST(HistogramTest, ConcurrentRecordBalances) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record((t * kPerThread + i) % 10'000);
      }
    });
  }
  for (auto& th : threads) th.join();

  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
  EXPECT_EQ(s.max, 9999);
}

}  // namespace
}  // namespace wsq
