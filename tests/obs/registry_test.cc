// MetricsRegistry behavior: instrument identity, type-mismatch
// surfacing, collector merge semantics, export stability, and the
// recording kill switch. Uses local registries so nothing leaks into
// the process-global one.

#include <gtest/gtest.h>

#include <string>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace wsq {
namespace {

TEST(MetricsRegistryTest, SameNameSameLabelsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("wsq_test_events_total", "help");
  Counter* b = registry.GetCounter("wsq_test_events_total", "help");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);

  // Label order must not matter: both spellings are one series.
  Gauge* g1 = registry.GetGauge("wsq_test_depth", "help",
                                {{"a", "1"}, {"b", "2"}});
  Gauge* g2 = registry.GetGauge("wsq_test_depth", "help",
                                {{"b", "2"}, {"a", "1"}});
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(g1, g2);

  // Different labels = different instrument.
  Gauge* g3 = registry.GetGauge("wsq_test_depth", "help", {{"a", "9"}});
  EXPECT_NE(g1, g3);
}

TEST(MetricsRegistryTest, TypeMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("wsq_test_things_total", "help"), nullptr);
  EXPECT_EQ(registry.GetGauge("wsq_test_things_total", "help"), nullptr);
  EXPECT_EQ(registry.GetHistogram("wsq_test_things_total", "help"),
            nullptr);
}

TEST(MetricsRegistryTest, PrometheusExportIsStable) {
  MetricsRegistry registry;
  registry.GetCounter("wsq_test_b_total", "b help")->Add(2);
  registry.GetGauge("wsq_test_a", "a help")->Set(-5);
  registry.GetHistogram("wsq_test_lat_micros", "lat help",
                        {{"destination", "x"}})
      ->Record(100);

  std::string once = registry.ExportPrometheusText();
  std::string twice = registry.ExportPrometheusText();
  // Same state => byte-identical output (sorted by name + labels).
  EXPECT_EQ(once, twice);

  // Names appear sorted.
  size_t pos_a = once.find("wsq_test_a ");
  size_t pos_b = once.find("wsq_test_b_total ");
  size_t pos_lat = once.find("wsq_test_lat_micros{");
  ASSERT_NE(pos_a, std::string::npos) << once;
  ASSERT_NE(pos_b, std::string::npos) << once;
  ASSERT_NE(pos_lat, std::string::npos) << once;
  EXPECT_LT(pos_a, pos_b);
  EXPECT_LT(pos_b, pos_lat);

  // Histograms export summary quantiles, sum, count, and max.
  EXPECT_NE(once.find("quantile=\"0.5\""), std::string::npos) << once;
  EXPECT_NE(once.find("quantile=\"0.99\""), std::string::npos) << once;
  EXPECT_NE(once.find("wsq_test_lat_micros_sum{destination=\"x\"} 100"),
            std::string::npos)
      << once;
  EXPECT_NE(once.find("wsq_test_lat_micros_count{destination=\"x\"} 1"),
            std::string::npos)
      << once;
  EXPECT_NE(once.find("wsq_test_lat_micros_max{destination=\"x\"} 100"),
            std::string::npos)
      << once;
}

TEST(MetricsRegistryTest, CollectorsMergeWithOwnedInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("wsq_test_merged_total", "help")->Add(3);
  uint64_t id = registry.AddCollector([](MetricsEmitter* emitter) {
    emitter->EmitCounter("wsq_test_merged_total", "help", {}, 4);
    emitter->EmitGauge("wsq_test_side", "help", {}, 7);
  });

  std::string text = registry.ExportPrometheusText();
  // Same (name, labels) from instrument + collector sum to one series.
  EXPECT_NE(text.find("wsq_test_merged_total 7"), std::string::npos)
      << text;
  EXPECT_NE(text.find("wsq_test_side 7"), std::string::npos) << text;

  registry.RemoveCollector(id);
  text = registry.ExportPrometheusText();
  EXPECT_NE(text.find("wsq_test_merged_total 3"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("wsq_test_side"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, KillSwitchStopsCountersAndHistograms) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("wsq_test_gated_total", "help");
  Histogram* h = registry.GetHistogram("wsq_test_gated_micros", "help");
  Gauge* g = registry.GetGauge("wsq_test_gated", "help");

  registry.SetRecordingEnabled(false);
  c->Increment();
  h->Record(50);
  g->Set(9);  // gauges represent current state and stay live
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(g->Value(), 9);

  registry.SetRecordingEnabled(true);
  c->Increment();
  h->Record(50);
  EXPECT_EQ(c->Value(), 1u);
  EXPECT_EQ(h->count(), 1u);
}

TEST(MetricsRegistryTest, KillSwitchStopsRecorderAndExemplars) {
  // The flight recorder and the histogram exemplar path honor the SAME
  // kill switch: with recording disabled, neither mutates anything.
  // This half must use the GLOBAL registry — that is the gate the
  // recorder checks.
  MetricsRegistry* registry = MetricsRegistry::Global();
  FlightRecorder* recorder = FlightRecorder::Global();
  Counter* events =
      registry->GetCounter("wsq_fr_events_total", "help");
  Histogram* h = registry->GetHistogram(
      "wsq_test_exemplar_gate_micros", "help");
  QueryIdBinding binding(77);

  registry->SetRecordingEnabled(false);
  uint64_t recorded_before = recorder->recorded_total();
  uint64_t counter_before = events->Value();
  recorder->Record(FrEventType::kCallDispatch, "AltaVista", "x");
  h->Record(500);
  h->RecordWithExemplar(500, /*query_id=*/77);
  EXPECT_EQ(recorder->recorded_total(), recorded_before);
  EXPECT_EQ(events->Value(), counter_before);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_TRUE(h->Exemplars().empty());
  registry->SetRecordingEnabled(true);

  // Re-enabled: the same calls mutate again (and exemplars appear).
  recorder->Record(FrEventType::kCallDispatch, "AltaVista", "x");
  h->RecordWithExemplar(500, /*query_id=*/77);
  EXPECT_EQ(recorder->recorded_total(), recorded_before + 1);
  EXPECT_EQ(h->count(), 1u);
  ASSERT_EQ(h->Exemplars().size(), 1u);
  EXPECT_EQ(h->Exemplars()[0].query_id, 77u);
}

TEST(MetricsRegistryTest, JsonExportContainsSeries) {
  MetricsRegistry registry;
  registry.GetCounter("wsq_test_json_total", "help")->Add(11);
  std::string json = registry.ExportJson();
  EXPECT_NE(json.find("wsq_test_json_total"), std::string::npos) << json;
  EXPECT_NE(json.find("11"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(MetricsRegistry::Global(), MetricsRegistry::Global());
  EXPECT_NE(MetricsRegistry::Global(), nullptr);
}

}  // namespace
}  // namespace wsq
