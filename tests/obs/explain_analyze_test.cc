// End-to-end EXPLAIN ANALYZE and tracing over the demo environment,
// including the acceptance property from the paper (§4/Figure 4):
// under asynchronous iteration the time a ReqSync is blocked on
// external calls approaches the MAX of the call latencies, not their
// SUM. Also checks the Prometheus dump exposes the external-call
// latency histogram.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/macros.h"
#include "obs/metrics.h"
#include "wsq/demo.h"

namespace wsq {
namespace {

constexpr int64_t kLatencyMicros = 20'000;

// One WSQ query joining the 50-row States table against WebCount: 50
// external calls, all issued up front by the async rewrite.
constexpr char kWsqQuery[] =
    "SELECT Name, Count FROM States, WebCount WHERE Name = T1 "
    "ORDER BY Count DESC LIMIT 5";

DemoEnv& Env() {
  static DemoEnv* const kEnv = [] {
    DemoOptions opt;
    opt.corpus.num_documents = 1200;
    opt.latency = LatencyModel::Fixed(kLatencyMicros);
    return new DemoEnv(opt);
  }();
  return *kEnv;
}

const PlanProfileNode* FindNode(const PlanProfileNode& node,
                                const std::string& prefix) {
  if (node.label.compare(0, prefix.size(), prefix) == 0) return &node;
  for (const PlanProfileNode& child : node.children) {
    if (const PlanProfileNode* hit = FindNode(child, prefix)) return hit;
  }
  return nullptr;
}

TEST(ExplainAnalyzeTest, BlockedTimeIsMaxNotSumOfCallLatencies) {
  WsqDatabase::ExecOptions options;
  options.analyze = true;
  options.async_iteration = true;
  auto r = Env().db().Execute(kWsqQuery, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->profile.has_value());

  const PlanProfileNode* sync = FindNode(*r->profile, "ReqSync");
  ASSERT_NE(sync, nullptr) << r->profile->ToString();

  uint64_t calls = r->profile->TotalCallsIssued();
  ASSERT_GE(calls, 50u) << r->profile->ToString();
  int64_t blocked = r->profile->TotalBlockedMicros();
  int64_t sum_of_latencies =
      static_cast<int64_t>(calls) * kLatencyMicros;

  // Blocked at least one full round-trip (the max with fixed latency)…
  EXPECT_GE(blocked, kLatencyMicros / 2) << r->profile->ToString();
  // …but nowhere near the sum: with 50 concurrent calls the paper's
  // max-of-latencies behavior leaves blocked time a small multiple of
  // one latency. A sequential plan would block for the whole sum.
  EXPECT_LT(blocked, sum_of_latencies / 4) << r->profile->ToString();

  // The profile carries per-operator row counts mirroring the result.
  EXPECT_EQ(r->profile->profile.rows_out, r->result.rows.size());

  // The annotated rendering names the blocked time.
  std::string text = r->profile->ToString();
  EXPECT_NE(text.find("blocked="), std::string::npos) << text;
  EXPECT_NE(text.find("rows="), std::string::npos) << text;
}

TEST(ExplainAnalyzeTest, SqlStatementReturnsAnnotatedPlan) {
  auto r = Env().db().Execute(std::string("EXPLAIN ANALYZE ") + kWsqQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->result.rows.size(), 1u);
  ASSERT_TRUE(r->result.rows[0].value(0).is_string());
  const std::string& text = r->result.rows[0].value(0).AsString();
  // Operator annotations plus the one-line stats footer.
  EXPECT_NE(text.find("ReqSync"), std::string::npos) << text;
  EXPECT_NE(text.find("blocked="), std::string::npos) << text;
  EXPECT_NE(text.find("mode=async"), std::string::npos) << text;
  EXPECT_NE(text.find("external_calls="), std::string::npos) << text;

  // EXPLAIN ANALYZE SYNC runs the sequential plan: no ReqSync.
  auto sync = Env().db().Execute(
      std::string("EXPLAIN ANALYZE SYNC ") + kWsqQuery);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();
  const std::string& sync_text =
      sync->result.rows[0].value(0).AsString();
  EXPECT_EQ(sync_text.find("ReqSync"), std::string::npos) << sync_text;
  EXPECT_NE(sync_text.find("mode=sync"), std::string::npos) << sync_text;
}

TEST(ExplainAnalyzeTest, PlainExplainStillDoesNotExecute) {
  uint64_t calls_before = Env().db().pump()->stats().registered;
  auto r = Env().db().Execute(std::string("EXPLAIN ASYNC ") + kWsqQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Env().db().pump()->stats().registered, calls_before);
}

TEST(ExplainAnalyzeTest, TraceCapturesSpansAcrossLayers) {
  WsqDatabase::ExecOptions options;
  options.trace = true;
  options.async_iteration = true;
  auto r = Env().db().Execute(kWsqQuery, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->trace.has_value());
  ASSERT_FALSE(r->trace->spans.empty());

  bool saw_query = false, saw_op = false, saw_reqpump = false,
       saw_reqsync = false;
  for (const TraceSpan& span : r->trace->spans) {
    if (span.category == "query") saw_query = true;
    if (span.category == "op") saw_op = true;
    if (span.category == "reqpump") saw_reqpump = true;
    if (span.category == "reqsync") saw_reqsync = true;
  }
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_op);
  EXPECT_TRUE(saw_reqpump);
  EXPECT_TRUE(saw_reqsync);

  // Span budgets truncate instead of growing without bound.
  WsqDatabase::ExecOptions tight = options;
  tight.trace_max_spans = 8;
  auto small = Env().db().Execute(kWsqQuery, tight);
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  ASSERT_TRUE(small->trace.has_value());
  EXPECT_LE(small->trace->spans.size(), 8u);
  EXPECT_GT(small->trace->dropped_spans, 0u);
}

TEST(ExplainAnalyzeTest, PrometheusDumpHasExternalCallLatency) {
  // Ensure at least one query has run through the pump.
  WSQ_IGNORE_STATUS(Env().Run(kWsqQuery).status());

  std::string text =
      MetricsRegistry::Global()->ExportPrometheusText();
  EXPECT_NE(text.find("wsq_external_call_latency_micros{"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("wsq_external_call_latency_micros_count"),
            std::string::npos);
  EXPECT_NE(text.find("wsq_queries_total"), std::string::npos);

  // Parseability: every non-comment line is `name[{labels}] value`.
  size_t pos = 0;
  int series = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    // Value parses as a double.
    EXPECT_NO_THROW({
      size_t used = 0;
      (void)std::stod(line.substr(space + 1), &used);
    }) << line;
    ++series;
  }
  EXPECT_GT(series, 10);
}

TEST(ExplainAnalyzeTest, SlowQueryLogFiresFromExecute) {
  // Threshold 1 us at the database level: every statement is "slow".
  // The sink must see the query id and SQL that Execute stamped.
  std::vector<SlowQueryRecord> seen;
  WsqDatabase::Options options;
  options.slow_query_micros = 1;
  options.slow_query_sink = [&seen](const SlowQueryRecord& r) {
    seen.push_back(r);
  };
  WsqDatabase db(options);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INT)").ok());
  auto r = db.Execute("SELECT x FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].query_id, r->stats.query_id);
  EXPECT_GT(r->stats.query_id, seen[0].query_id);
  EXPECT_EQ(seen[1].sql, "SELECT x FROM t");
  EXPECT_TRUE(seen[1].ok);

  // Per-query override 0 silences the database default.
  WsqDatabase::ExecOptions quiet;
  quiet.slow_query_micros = 0;
  ASSERT_TRUE(db.Execute("SELECT x FROM t", quiet).ok());
  EXPECT_EQ(seen.size(), 2u);

  // Failed statements are logged with their error.
  WSQ_IGNORE_STATUS(db.Execute("SELECT nope FROM missing").status());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_FALSE(seen[2].ok);
  EXPECT_FALSE(seen[2].error.empty());
}

}  // namespace
}  // namespace wsq
