// Statusz composition: provider registration/removal, deterministic
// section ordering, the text and JSON renderings, and byte-stable
// output for identical state.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/statusz.h"

namespace wsq {
namespace {

TEST(StatuszTest, ProvidersComposeSortedSections) {
  StatuszRegistry registry;
  uint64_t id1 = registry.AddProvider([](std::vector<StatuszSection>* out) {
    StatuszSection s;
    s.name = "zebra";
    s.Add("state", "open");
    out->push_back(std::move(s));
  });
  // One provider may emit several sections.
  uint64_t id2 = registry.AddProvider([](std::vector<StatuszSection>* out) {
    StatuszSection a;
    a.name = "alpha";
    a.AddInt("depth", -3);
    out->push_back(std::move(a));
    StatuszSection m;
    m.name = "middle";
    m.AddUint("bytes", 4096);
    out->push_back(std::move(m));
  });

  StatuszReport report = registry.Render();
  ASSERT_EQ(report.sections.size(), 3u);
  // Sorted by name regardless of registration/emit order.
  EXPECT_EQ(report.sections[0].name, "alpha");
  EXPECT_EQ(report.sections[1].name, "middle");
  EXPECT_EQ(report.sections[2].name, "zebra");

  registry.RemoveProvider(id1);
  report = registry.Render();
  ASSERT_EQ(report.sections.size(), 2u);
  EXPECT_EQ(report.sections[0].name, "alpha");
  registry.RemoveProvider(id2);
  EXPECT_TRUE(registry.Render().sections.empty());
}

TEST(StatuszTest, ToTextRendersHeadersAndRows) {
  StatuszReport report;
  StatuszSection s;
  s.name = "breaker/AltaVista";
  s.Add("state", "open");
  s.AddUint("trips", 2);
  report.sections.push_back(std::move(s));

  std::string text = report.ToText();
  EXPECT_NE(text.find("== breaker/AltaVista =="), std::string::npos) << text;
  EXPECT_NE(text.find("  state: open"), std::string::npos) << text;
  EXPECT_NE(text.find("  trips: 2"), std::string::npos) << text;
}

TEST(StatuszTest, ToJsonQuotesStringsAndLeavesNumbersBare) {
  StatuszReport report;
  StatuszSection s;
  s.name = "spill";
  s.Add("dir", "/tmp/\"spill\"");  // needs escaping
  s.AddUint("bytes_written", 8192);
  s.AddInt("delta", -5);
  report.sections.push_back(std::move(s));

  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"name\":\"spill\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"bytes_written\":8192"), std::string::npos) << json;
  EXPECT_NE(json.find("\"delta\":-5"), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"spill\\\""), std::string::npos) << json;
}

TEST(StatuszTest, IdenticalStateRendersByteIdentically) {
  StatuszRegistry registry;
  registry.AddProvider([](std::vector<StatuszSection>* out) {
    StatuszSection s;
    s.name = "memory/process";
    s.AddUint("used_bytes", 123456);
    s.AddUint("limit_bytes", 1048576);
    out->push_back(std::move(s));
  });
  registry.AddProvider([](std::vector<StatuszSection>* out) {
    StatuszSection s;
    s.name = "admission";
    s.AddUint("queued", 0);
    out->push_back(std::move(s));
  });

  StatuszReport once = registry.Render();
  StatuszReport twice = registry.Render();
  EXPECT_EQ(once.ToText(), twice.ToText());
  EXPECT_EQ(once.ToJson(), twice.ToJson());
}

TEST(StatuszTest, GlobalIsSingleton) {
  EXPECT_EQ(StatuszRegistry::Global(), StatuszRegistry::Global());
  EXPECT_NE(StatuszRegistry::Global(), nullptr);
}

}  // namespace
}  // namespace wsq
