// Flight recorder: recording/snapshot semantics, query-id binding,
// string interning, event rendering, postmortem records, and the
// seqlock protocol under concurrent writers + snapshots (run under
// TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"

namespace wsq {
namespace {

// The recorder is process-global and other tests record into it too, so
// every test here tags its events with a query id unique to this file
// and filters with EventsForQuery.

TEST(FlightRecorderTest, RecordedEventsAreVisibleInSnapshots) {
  FlightRecorder* recorder = FlightRecorder::Global();
  const uint64_t qid = 990001;
  uint64_t before = recorder->recorded_total();
  recorder->Record(FrEventType::kCallDispatch, "AltaVista", "", qid,
                   /*a=*/3);
  recorder->Record(FrEventType::kCallFailed, "AltaVista",
                   "DEADLINE_EXCEEDED", qid, /*a=*/3);
  EXPECT_EQ(recorder->recorded_total(), before + 2);

  std::vector<FrEvent> events = recorder->EventsForQuery(qid);
  ASSERT_EQ(events.size(), 2u);
  // Ordered by (timestamp, sequence): dispatch precedes failure.
  EXPECT_EQ(events[0].type, FrEventType::kCallDispatch);
  EXPECT_EQ(events[0].destination, "AltaVista");
  EXPECT_EQ(events[0].a, 3);
  EXPECT_EQ(events[1].type, FrEventType::kCallFailed);
  EXPECT_EQ(events[1].cause, "DEADLINE_EXCEEDED");
  EXPECT_LT(events[0].sequence, events[1].sequence);

  FlightRecorderSnapshot snap = recorder->Snapshot();
  EXPECT_GE(snap.events.size(), 2u);
  EXPECT_GE(snap.rings, 1u);
  EXPECT_GE(snap.recorded_total, before + 2);
}

TEST(FlightRecorderTest, QueryIdBindingStampsAndNests) {
  FlightRecorder* recorder = FlightRecorder::Global();
  EXPECT_EQ(CurrentQueryId(), 0u);
  {
    QueryIdBinding outer(990010);
    EXPECT_EQ(CurrentQueryId(), 990010u);
    recorder->Record(FrEventType::kAdmissionWait, "", "");
    {
      QueryIdBinding inner(990011);
      EXPECT_EQ(CurrentQueryId(), 990011u);
      recorder->Record(FrEventType::kAdmissionWait, "", "");
    }
    // Nesting restores the previous binding.
    EXPECT_EQ(CurrentQueryId(), 990010u);
    // An explicit id beats the binding.
    recorder->Record(FrEventType::kAdmissionShed, "", "queue_full",
                     /*query_id=*/990012);
  }
  EXPECT_EQ(CurrentQueryId(), 0u);

  EXPECT_EQ(recorder->EventsForQuery(990010).size(), 1u);
  EXPECT_EQ(recorder->EventsForQuery(990011).size(), 1u);
  ASSERT_EQ(recorder->EventsForQuery(990012).size(), 1u);
  EXPECT_EQ(recorder->EventsForQuery(990012)[0].type,
            FrEventType::kAdmissionShed);
}

TEST(FlightRecorderTest, InterningIsStableAndSharedAcrossEvents) {
  FlightRecorder* recorder = FlightRecorder::Global();
  uint32_t id1 = recorder->InternForTest("shard-7");
  uint32_t id2 = recorder->InternForTest("shard-7");
  EXPECT_EQ(id1, id2);
  EXPECT_NE(id1, 0u);
  EXPECT_EQ(recorder->ResolveForTest(id1), "shard-7");
  // Id 0 is reserved for the empty string.
  EXPECT_EQ(recorder->InternForTest(""), 0u);
  EXPECT_EQ(recorder->ResolveForTest(0), "");
  // Out-of-range ids resolve to empty rather than crashing.
  EXPECT_EQ(recorder->ResolveForTest(0xFFFFFFFF), "");
}

TEST(FlightRecorderTest, ToLineRendersDeterministicFields) {
  FrEvent e;
  e.timestamp_micros = 1734;
  e.type = FrEventType::kHedgeFire;
  e.query_id = 42;
  e.destination = "shard-1";
  e.cause = "slow_primary";
  e.a = 2;
  EXPECT_EQ(e.ToLine(/*base_micros=*/1000),
            "t=+734us hedge_fire qid=42 dest=shard-1 cause=slow_primary a=2");
  // Zero/empty fields are omitted.
  FrEvent bare;
  bare.timestamp_micros = 5;
  bare.type = FrEventType::kQueryBegin;
  EXPECT_EQ(bare.ToLine(), "t=+5us query_begin");
}

TEST(FlightRecorderTest, EveryEventTypeHasAName) {
  for (int t = 0; t <= static_cast<int>(FrEventType::kWalCheckpoint); ++t) {
    EXPECT_NE(FrEventTypeName(static_cast<FrEventType>(t)), "unknown")
        << "type " << t;
  }
}

TEST(FlightRecorderTest, ConcurrentWritersVersusSnapshotDuringWrap) {
  // Writers push several ring generations each while a reader snapshots
  // continuously: exercises the per-slot seqlock (torn slots must be
  // dropped, never misreported) and ring registration. TSan covers the
  // memory-order claims via the CI obs job.
  FlightRecorder* recorder = FlightRecorder::Global();
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter =
      static_cast<int>(FlightRing::kSlots) * 3;
  const uint64_t qid_base = 991000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> malformed{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      FlightRecorderSnapshot snap = recorder->Snapshot();
      for (const FrEvent& e : snap.events) {
        // A surviving (non-torn) slot must be internally consistent.
        if (e.sequence == 0 ||
            e.type > FrEventType::kWalCheckpoint) {
          malformed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const uint64_t qid = qid_base + static_cast<uint64_t>(w);
      for (int i = 0; i < kEventsPerWriter; ++i) {
        recorder->Record(FrEventType::kShardLegOk, "shard-wrap", "", qid,
                         /*a=*/i);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(malformed.load(), 0u);
  // After the writers quiesce, each writer thread's ring holds its most
  // recent kSlots events; the final event of every writer must be
  // visible and untorn.
  for (int w = 0; w < kWriters; ++w) {
    std::vector<FrEvent> events =
        recorder->EventsForQuery(qid_base + static_cast<uint64_t>(w));
    ASSERT_FALSE(events.empty()) << "writer " << w;
    EXPECT_EQ(events.back().a, kEventsPerWriter - 1) << "writer " << w;
    EXPECT_LE(events.size(), FlightRing::kSlots);
  }
}

TEST(PostmortemTest, ToTextRendersHeaderAndIndentedEvents) {
  PostmortemRecord pm;
  pm.query_id = 7;
  pm.sql = "SELECT *\nFROM t";
  pm.verdict = "DEADLINE_EXCEEDED";
  pm.cause = "deadline of 50000us exceeded";
  pm.elapsed_micros = 51000;
  pm.partial_results = true;
  pm.degraded_tuples = 2;
  pm.failed_calls = 1;
  pm.spill_runs = 1;
  pm.spilled_bytes = 8192;
  pm.peak_memory_bytes = 65536;
  FrEvent e1;
  e1.timestamp_micros = 1000;
  e1.type = FrEventType::kCallDispatch;
  e1.query_id = 7;
  e1.destination = "AltaVista";
  FrEvent e2;
  e2.timestamp_micros = 1400;
  e2.type = FrEventType::kCallTimeout;
  e2.query_id = 7;
  e2.destination = "AltaVista";
  pm.events = {e1, e2};
  pm.events_dropped = 3;

  std::string text = pm.ToText();
  EXPECT_NE(text.find("postmortem id=7 verdict=DEADLINE_EXCEEDED"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cause=\"deadline of 50000us exceeded\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("partial=1"), std::string::npos) << text;
  EXPECT_NE(text.find("spill_runs=1 spilled_bytes=8192"), std::string::npos)
      << text;
  EXPECT_NE(text.find("peak_memory_bytes=65536"), std::string::npos) << text;
  // The multi-line SQL is flattened into the header.
  EXPECT_NE(text.find("sql=\"SELECT * FROM t\""), std::string::npos) << text;
  // Elision note + events indented, timestamps relative to the first.
  EXPECT_NE(text.find("\n  ... 3 earlier events elided"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\n  t=+0us call_dispatch qid=7 dest=AltaVista"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\n  t=+400us call_timeout qid=7 dest=AltaVista"),
            std::string::npos)
      << text;
}

PostmortemRecord MakePostmortem(uint64_t qid, size_t num_events = 0) {
  PostmortemRecord pm;
  pm.query_id = qid;
  pm.sql = "SELECT 1";
  pm.verdict = "OK";
  pm.cause = "1 tuple(s) degraded";
  for (size_t i = 0; i < num_events; ++i) {
    FrEvent e;
    e.timestamp_micros = static_cast<int64_t>(i);
    e.type = FrEventType::kShardLegFail;
    e.query_id = qid;
    e.a = static_cast<int64_t>(i);
    pm.events.push_back(e);
  }
  return pm;
}

TEST(PostmortemTest, LogRateLimitsButRetainsLast) {
  int64_t now = 1'000'000;
  std::vector<uint64_t> emitted;
  PostmortemLog log(
      /*min_interval_micros=*/1000,
      [&emitted](const PostmortemRecord& r) { emitted.push_back(r.query_id); },
      /*clock=*/[&now] { return now; });

  EXPECT_TRUE(log.Log(MakePostmortem(1)));
  now += 500;  // inside the interval: suppressed
  EXPECT_FALSE(log.Log(MakePostmortem(2)));
  now += 600;  // 1100us past the first emit: allowed again
  EXPECT_TRUE(log.Log(MakePostmortem(3)));

  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[0], 1u);
  EXPECT_EQ(emitted[1], 3u);
  EXPECT_EQ(log.emitted_total(), 2u);
  EXPECT_EQ(log.suppressed_total(), 1u);

  // The suppressed record still becomes last() at the moment it is
  // logged, so \postmortem last always shows the newest bad ending.
  now += 100;
  EXPECT_FALSE(log.Log(MakePostmortem(4)));
  auto last = log.last();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->query_id, 4u);
}

TEST(PostmortemTest, LogTruncatesEventSliceFromTheFront) {
  std::vector<PostmortemRecord> seen;
  PostmortemLog log(
      /*min_interval_micros=*/0,
      [&seen](const PostmortemRecord& r) { seen.push_back(r); },
      /*clock=*/nullptr, /*max_events=*/4);
  EXPECT_EQ(log.max_events(), 4u);

  EXPECT_TRUE(log.Log(MakePostmortem(9, /*num_events=*/10)));
  ASSERT_EQ(seen.size(), 1u);
  ASSERT_EQ(seen[0].events.size(), 4u);
  EXPECT_EQ(seen[0].events_dropped, 6u);
  // The ending is kept: the last 4 of 10 events survive.
  EXPECT_EQ(seen[0].events[0].a, 6);
  EXPECT_EQ(seen[0].events[3].a, 9);
}

}  // namespace
}  // namespace wsq
