// Tracer span nesting, ordering, budget truncation, and the TLS
// binding used by layers without an ExecContext (buffer pool, WAL).

#include <gtest/gtest.h>

#include <string>

#include "obs/trace.h"

namespace wsq {
namespace {

TEST(TracerTest, NestedScopesRecordDepthAndOrder) {
  Tracer tracer;
  {
    Tracer::Scope outer(&tracer, "query", "execute");
    {
      Tracer::Scope inner(&tracer, "op", "scan");
      inner.AppendDetail("t=States");
    }
    tracer.Event("reqpump", "register", "call=1");
  }
  QueryTrace trace = tracer.Finish();
  ASSERT_EQ(trace.spans.size(), 3u);

  // Finish() orders parents before children despite spans being
  // recorded at close (children close first).
  EXPECT_EQ(trace.spans[0].name, "execute");
  EXPECT_EQ(trace.spans[0].depth, 0);
  EXPECT_EQ(trace.spans[1].name, "scan");
  EXPECT_EQ(trace.spans[1].depth, 1);
  EXPECT_EQ(trace.spans[1].detail, "t=States");
  EXPECT_EQ(trace.spans[2].name, "register");
  EXPECT_TRUE(trace.spans[2].instant);
  EXPECT_EQ(trace.spans[2].depth, 1);

  // Child lives inside the parent's interval.
  EXPECT_GE(trace.spans[1].start_micros, trace.spans[0].start_micros);
  EXPECT_LE(trace.spans[1].duration_micros,
            trace.spans[0].duration_micros);

  std::string text = trace.ToString();
  EXPECT_NE(text.find("query.execute"), std::string::npos) << text;
  EXPECT_NE(text.find("op.scan"), std::string::npos) << text;
  EXPECT_NE(text.find("event"), std::string::npos) << text;
}

TEST(TracerTest, BudgetTruncationCountsDrops) {
  Tracer tracer(/*max_spans=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.Event("op", "tick");
  }
  EXPECT_EQ(tracer.span_count(), 4u);
  EXPECT_EQ(tracer.dropped_spans(), 6u);

  QueryTrace trace = tracer.Finish();
  EXPECT_EQ(trace.spans.size(), 4u);
  EXPECT_EQ(trace.dropped_spans, 6u);
  EXPECT_EQ(trace.max_spans, 4u);
  // The rendering reports the truncation.
  EXPECT_NE(trace.ToString().find("dropped"), std::string::npos);

  // Finish resets the tracer for reuse.
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.dropped_spans(), 0u);
}

TEST(TracerTest, ZeroBudgetFallsBackToDefault) {
  Tracer tracer(0);
  EXPECT_EQ(tracer.max_spans(), Tracer::kDefaultMaxSpans);
}

TEST(TracerTest, ThreadBindingNestsAndRestores) {
  EXPECT_EQ(Tracer::CurrentThread(), nullptr);
  Tracer outer_tracer;
  {
    Tracer::ThreadBinding outer(&outer_tracer);
    EXPECT_EQ(Tracer::CurrentThread(), &outer_tracer);
    {
      // Binding null keeps the current tracer (disabled layers pass
      // null without tearing down an enclosing query's binding).
      Tracer::ThreadBinding noop(nullptr);
      EXPECT_EQ(Tracer::CurrentThread(), &outer_tracer);
      Tracer inner_tracer;
      {
        Tracer::ThreadBinding inner(&inner_tracer);
        EXPECT_EQ(Tracer::CurrentThread(), &inner_tracer);
      }
      EXPECT_EQ(Tracer::CurrentThread(), &outer_tracer);
    }
    EXPECT_EQ(Tracer::CurrentThread(), &outer_tracer);
  }
  EXPECT_EQ(Tracer::CurrentThread(), nullptr);
}

TEST(TracerTest, EventsCarryDetailIntoRendering) {
  Tracer tracer;
  tracer.Event("reqsync", "complete",
               "call=3 rows=1 queue_wait=120 in_flight=20000");
  QueryTrace trace = tracer.Finish();
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_NE(trace.ToString().find("in_flight=20000"), std::string::npos);
}

}  // namespace
}  // namespace wsq
