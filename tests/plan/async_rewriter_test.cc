#include "plan/async_rewriter.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "plan/binder.h"
#include "storage/disk_manager.h"
#include "wsq/web_tables.h"

namespace wsq {
namespace {

class NullService : public SearchService {
 public:
  const std::string& name() const override { return name_; }
  void Submit(SearchRequest, SearchCallback done) override {
    done(SearchResponse{});
  }

 private:
  std::string name_ = "null";
};

/// Fixture reproducing the paper's schema: Sigs(Name), CSFields(Name),
/// States(...), R(X), plus AltaVista/Google virtual tables.
class AsyncRewriterTest : public ::testing::Test {
 protected:
  AsyncRewriterTest() : pool_(64, &disk_), catalog_(&pool_) {
    (void)*catalog_.CreateTable(
        "Sigs", Schema({Column("Name", TypeId::kString)}));
    (void)*catalog_.CreateTable(
        "CSFields", Schema({Column("Name", TypeId::kString)}));
    (void)*catalog_.CreateTable(
        "States", Schema({Column("Name", TypeId::kString),
                          Column("Population", TypeId::kInt64),
                          Column("Capital", TypeId::kString)}));
    (void)*catalog_.CreateTable("R",
                                Schema({Column("X", TypeId::kInt64)}));
    auto reg = [&](auto table) {
      ASSERT_TRUE(vtables_.Register(std::move(table)).ok());
    };
    reg(std::make_unique<WebCountTable>("WebCount", &service_, true));
    reg(std::make_unique<WebPagesTable>("WebPages", &service_, true));
    reg(std::make_unique<WebCountTable>("WC_AV", &service_, true));
    reg(std::make_unique<WebCountTable>("WC_Google", &service_, false));
    reg(std::make_unique<WebPagesTable>("WP_AV", &service_, true));
    reg(std::make_unique<WebPagesTable>("WP_Google", &service_, false));
  }

  PlanNodePtr Bind(const std::string& sql) {
    auto stmt = Parser::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(&catalog_, &vtables_);
    auto plan = binder.Bind(**stmt);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString() << "\n" << sql;
    return plan.ok() ? std::move(plan).value() : nullptr;
  }

  std::string Rewritten(const std::string& sql,
                        RewriteOptions options = RewriteOptions()) {
    PlanNodePtr plan = Bind(sql);
    auto rewritten = ApplyAsyncIteration(std::move(plan), options);
    EXPECT_TRUE(rewritten.ok()) << rewritten.status().ToString();
    return rewritten.ok() ? (*rewritten)->ToString() : "";
  }

  InMemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  NullService service_;
  VirtualTableRegistry vtables_;
};

TEST_F(AsyncRewriterTest, Figure3SigsWebCount) {
  // Paper Figure 3: ReqSync sits BELOW the Sort (which depends on the
  // patched Count) and ABOVE the dependent join, so all 37 calls are
  // outstanding together. (Our plans add the projection the figures
  // leave implicit; the Sort clashes through it.)
  std::string plan = Rewritten(
      "Select * From Sigs, WebCount "
      "Where Name = T1 and T2 = 'Knuth' Order By Count Desc");
  EXPECT_EQ(plan,
            "Sort: WebCount.Count desc\n"
            "  ReqSync\n"
            "    Project: Sigs.Name, WebCount.SearchExp, WebCount.T1, "
            "WebCount.T2, WebCount.Count\n"
            "      Dependent Join: Sigs.Name -> WebCount.T1\n"
            "        Scan: Sigs\n"
            "        AEVScan: WebCount (T2 = 'Knuth')\n");
}

TEST_F(AsyncRewriterTest, Figure4SigsWebPages) {
  // Paper Figure 4: single ReqSync at the root above the dependent
  // join (here: below the final projection, which passes all columns
  // through as bare references).
  std::string plan = Rewritten(
      "Select * From Sigs, WebPages Where Name = T1 and Rank <= 3");
  EXPECT_EQ(plan,
            "ReqSync\n"
            "  Project: Sigs.Name, WebPages.SearchExp, WebPages.T1, "
            "WebPages.URL, WebPages.Rank, WebPages.Date\n"
            "    Dependent Join: Sigs.Name -> WebPages.T1\n"
            "      Scan: Sigs\n"
            "      AEVScan: WebPages (Rank <= 3)\n");
}

TEST_F(AsyncRewriterTest, Figures5and6TwoEngineJoin) {
  // Paper Figures 5/6(d): both ReqSyncs percolate above both dependent
  // joins and consolidate into ONE ReqSync, enabling all 74 concurrent
  // calls.
  std::string plan = Rewritten(
      "Select * From Sigs, WP_AV AV, WP_Google G "
      "Where Name = AV.T1 and Name = G.T1 and AV.Rank <= 3 and "
      "G.Rank <= 3");
  EXPECT_EQ(plan,
            "ReqSync\n"
            "  Project: Sigs.Name, AV.SearchExp, AV.T1, AV.URL, AV.Rank, "
            "AV.Date, G.SearchExp, G.T1, G.URL, G.Rank, G.Date\n"
            "    Dependent Join: Sigs.Name -> G.T1\n"
            "      Dependent Join: Sigs.Name -> AV.T1\n"
            "        Scan: Sigs\n"
            "        AEVScan: WP_AV AV (Rank <= 3)\n"
            "      AEVScan: WP_Google G (Rank <= 3)\n");
  // Exactly one ReqSync after consolidation, two AEVScans.
}

TEST_F(AsyncRewriterTest, Figure6bInsertOnlyAblation) {
  // With percolation disabled (Figure 6(b)-style), each AEVScan keeps
  // its own ReqSync right above its dependent join: concurrency is
  // limited to one join's calls at a time.
  std::string plan = Rewritten(
      "Select * From Sigs, WP_AV AV, WP_Google G "
      "Where Name = AV.T1 and Name = G.T1 and AV.Rank <= 3 and "
      "G.Rank <= 3",
      RewriteOptions{/*insert_only=*/true, /*consolidate=*/false,
                     /*rewrite_clashing_joins=*/true});
  EXPECT_EQ(plan,
            "Project: Sigs.Name, AV.SearchExp, AV.T1, AV.URL, AV.Rank, "
            "AV.Date, G.SearchExp, G.T1, G.URL, G.Rank, G.Date\n"
            "  ReqSync\n"
            "    Dependent Join: Sigs.Name -> G.T1\n"
            "      ReqSync\n"
            "        Dependent Join: Sigs.Name -> AV.T1\n"
            "          Scan: Sigs\n"
            "          AEVScan: WP_AV AV (Rank <= 3)\n"
            "      AEVScan: WP_Google G (Rank <= 3)\n");
}

TEST_F(AsyncRewriterTest, Figure7CrossProductBetweenJoins) {
  // Paper Figure 7(a): default percolation pulls a single consolidated
  // ReqSync above the cross product with R.
  std::string plan = Rewritten(
      "Select * From Sigs, WC_AV AV, R, WC_Google G "
      "Where Name = AV.T1 and Name = G.T1");
  EXPECT_EQ(CountReqSyncs(*Bind(
                "Select * From Sigs, WC_AV AV, R, WC_Google G "
                "Where Name = AV.T1 and Name = G.T1")),
            0u);
  // One consolidated ReqSync; the cross product sits below it.
  EXPECT_NE(plan.find("ReqSync\n"), std::string::npos) << plan;
  size_t first = plan.find("ReqSync");
  EXPECT_EQ(plan.find("ReqSync", first + 1), std::string::npos) << plan;
  EXPECT_NE(plan.find("Cross-Product"), std::string::npos) << plan;
  size_t cross = plan.find("Cross-Product");
  EXPECT_LT(first, cross) << plan;  // ReqSync above the ×
}

TEST_F(AsyncRewriterTest, Figure8JoinRewrittenAsSelectOverCross) {
  // Paper Figure 8(b): the URL=URL join clashes with the pending
  // WebPages outputs, so it becomes a selection over a cross-product
  // with the (consolidated) ReqSync below the selection.
  std::string plan = Rewritten(
      "Select S.URL From Sigs, WebPages S, CSFields, WP_AV C "
      "Where Sigs.Name = S.T1 and CSFields.Name = C.T1 and "
      "S.Rank <= 5 and C.Rank <= 5 and S.URL = C.URL");
  EXPECT_EQ(plan,
            "Project: S.URL\n"
            "  Select: (S.URL = C.URL)\n"
            "    ReqSync\n"
            "      Dependent Join: CSFields.Name -> C.T1\n"
            "        Cross-Product\n"
            "          Dependent Join: Sigs.Name -> S.T1\n"
            "            Scan: Sigs\n"
            "            AEVScan: WebPages S (Rank <= 5)\n"
            "          Scan: CSFields\n"
            "        AEVScan: WP_AV C (Rank <= 5)\n");
}

TEST_F(AsyncRewriterTest, ClashingStoredJoinRewrittenAsSelectOverCross) {
  // Joining a stored table on a pending (patched) value: the nested-loop
  // join clashes through its predicate and is rewritten join(p) -> sigma_p(x)
  // so the ReqSync can pass the cross-product (section 4.5.2).
  std::string sql =
      "Select Sigs.Name From Sigs, WebCount, States "
      "Where Sigs.Name = T1 and Count = States.Population";
  std::string plan = Rewritten(sql);
  size_t sel = plan.find("Select: (WebCount.Count = States.Population)");
  size_t rs = plan.find("ReqSync");
  size_t cross = plan.find("Cross-Product");
  ASSERT_NE(sel, std::string::npos) << plan;
  ASSERT_NE(cross, std::string::npos) << plan;
  ASSERT_NE(rs, std::string::npos) << plan;
  EXPECT_LT(sel, rs) << plan;     // selection above ReqSync
  EXPECT_LT(rs, cross) << plan;   // ReqSync above the cross-product

  // With the rewrite disabled the join stays and blocks percolation:
  // the ReqSync remains below the join.
  std::string blocked = Rewritten(
      sql, RewriteOptions{false, true, /*rewrite_clashing_joins=*/false});
  size_t join = blocked.find("Join: (WebCount.Count = States.Population)");
  size_t rs2 = blocked.find("ReqSync");
  ASSERT_NE(join, std::string::npos) << blocked;
  ASSERT_NE(rs2, std::string::npos) << blocked;
  EXPECT_LT(join, rs2) << blocked;
}

TEST_F(AsyncRewriterTest, AggregateBlocksPercolation) {
  std::string plan = Rewritten(
      "Select COUNT(*) From Sigs, WebCount Where Name = T1");
  // ReqSync must stay below the Aggregate (clash case 3).
  size_t agg = plan.find("Aggregate");
  size_t rs = plan.find("ReqSync");
  ASSERT_NE(agg, std::string::npos) << plan;
  ASSERT_NE(rs, std::string::npos) << plan;
  EXPECT_LT(agg, rs) << plan;
}

TEST_F(AsyncRewriterTest, DistinctBlocksPercolation) {
  std::string plan = Rewritten(
      "Select DISTINCT Count From Sigs, WebCount Where Name = T1");
  size_t distinct = plan.find("Distinct");
  size_t rs = plan.find("ReqSync");
  ASSERT_NE(distinct, std::string::npos) << plan;
  EXPECT_LT(distinct, rs) << plan;
}

TEST_F(AsyncRewriterTest, ProjectionComputingOnPatchedColumnClashes) {
  // Count/Population computes on the pending Count: ReqSync must stay
  // below the projection.
  std::string plan = Rewritten(
      "Select Name, Count/Population As C From States, WebCount "
      "Where Name = T1 Order By C Desc");
  size_t proj = plan.find("Project");
  size_t rs = plan.find("ReqSync");
  ASSERT_NE(proj, std::string::npos);
  ASSERT_NE(rs, std::string::npos);
  EXPECT_LT(proj, rs) << plan;
}

TEST_F(AsyncRewriterTest, ProjectionDroppingPatchedColumnClashes) {
  // URL is projected away: cancellation/proliferation would break, so
  // ReqSync stays below (clash case 2).
  std::string plan = Rewritten(
      "Select Name From States, WebPages Where Name = T1 and Rank <= 2");
  size_t proj = plan.find("Project");
  size_t rs = plan.find("ReqSync");
  EXPECT_LT(proj, rs) << plan;
}

TEST_F(AsyncRewriterTest, AllScansBecomeAsync) {
  PlanNodePtr plan = Bind(
      "Select * From Sigs, WP_AV AV, WP_Google G "
      "Where Name = AV.T1 and Name = G.T1");
  ASSERT_EQ(CountAsyncScans(*plan), 0u);
  auto rewritten = ApplyAsyncIteration(std::move(plan));
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(CountAsyncScans(**rewritten), 2u);
  EXPECT_EQ(CountReqSyncs(**rewritten), 1u);
}

TEST_F(AsyncRewriterTest, PlanWithoutVirtualTablesUnchanged) {
  PlanNodePtr plan = Bind("SELECT Name FROM States ORDER BY Name");
  std::string before = plan->ToString();
  auto rewritten = ApplyAsyncIteration(std::move(plan));
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->ToString(), before);
  EXPECT_EQ(CountReqSyncs(**rewritten), 0u);
}

TEST_F(AsyncRewriterTest, ReqSyncSchemaMatchesChildAfterPercolation) {
  auto rewritten = ApplyAsyncIteration(Bind(
      "Select * From Sigs, WP_AV AV, WP_Google G "
      "Where Name = AV.T1 and Name = G.T1"));
  ASSERT_TRUE(rewritten.ok());
  // Walk the tree: every ReqSync's schema equals its child's schema and
  // its patched columns are valid indices.
  std::vector<const PlanNode*> stack = {rewritten->get()};
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (n->kind() == PlanNode::Kind::kReqSync) {
      const auto* rs = static_cast<const ReqSyncNode*>(n);
      EXPECT_EQ(rs->schema().NumColumns(),
                rs->child(0)->schema().NumColumns());
      for (size_t c : rs->patched_columns()) {
        EXPECT_LT(c, rs->schema().NumColumns());
      }
    }
    for (const auto& child : n->children()) {
      stack.push_back(child.get());
    }
  }
}

}  // namespace
}  // namespace wsq
