#include "plan/cost_model.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "plan/async_rewriter.h"
#include "plan/binder.h"
#include "storage/disk_manager.h"
#include "wsq/web_tables.h"

namespace wsq {
namespace {

class NullService : public SearchService {
 public:
  const std::string& name() const override { return name_; }
  void Submit(SearchRequest, SearchCallback done) override {
    done(SearchResponse{});
  }

 private:
  std::string name_ = "null";
};

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : pool_(64, &disk_), catalog_(&pool_) {
    TableInfo* sigs = *catalog_.CreateTable(
        "Sigs", Schema({Column("Name", TypeId::kString)}));
    for (int i = 0; i < 37; ++i) {
      EXPECT_TRUE(
          sigs->Insert(Row({Value::Str("SIG" + std::to_string(i))}))
              .ok());
    }
    TableInfo* r = *catalog_.CreateTable(
        "R", Schema({Column("X", TypeId::kInt64)}));
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(r->Insert(Row({Value::Int(i)})).ok());
    }
    EXPECT_TRUE(vtables_
                    .Register(std::make_unique<WebCountTable>(
                        "WebCount", &service_, true))
                    .ok());
    EXPECT_TRUE(vtables_
                    .Register(std::make_unique<WebPagesTable>(
                        "WebPages", &service_, true))
                    .ok());
    EXPECT_TRUE(vtables_
                    .Register(std::make_unique<WebPagesTable>(
                        "WP_G", &service_, false))
                    .ok());
  }

  PlanNodePtr Plan(const std::string& sql, bool async) {
    auto stmt = Parser::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(&catalog_, &vtables_);
    auto plan = binder.Bind(**stmt);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    if (!async) return std::move(plan).value();
    auto rewritten = ApplyAsyncIteration(std::move(plan).value());
    EXPECT_TRUE(rewritten.ok());
    return std::move(rewritten).value();
  }

  PlanCostEstimate Cost(const std::string& sql, bool async) {
    PlanNodePtr plan = Plan(sql, async);
    auto cost = EstimatePlanCost(*plan);
    EXPECT_TRUE(cost.ok()) << cost.status().ToString();
    return cost.ok() ? *cost : PlanCostEstimate{};
  }

  InMemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  NullService service_;
  VirtualTableRegistry vtables_;
};

TEST_F(CostModelTest, StoredScanUsesHeapCount) {
  PlanCostEstimate c = Cost("SELECT Name FROM Sigs", false);
  EXPECT_DOUBLE_EQ(c.output_rows, 37);
  EXPECT_DOUBLE_EQ(c.external_calls, 0);
  EXPECT_DOUBLE_EQ(c.max_concurrent_calls, 0);
}

TEST_F(CostModelTest, DependentJoinChargesOneCallPerLeftRow) {
  const char* sql =
      "SELECT Name, Count FROM Sigs, WebCount WHERE Name = T1";
  PlanCostEstimate sync = Cost(sql, false);
  EXPECT_DOUBLE_EQ(sync.external_calls, 37);
  EXPECT_DOUBLE_EQ(sync.max_concurrent_calls, 1);  // blocking calls

  PlanCostEstimate async = Cost(sql, true);
  EXPECT_DOUBLE_EQ(async.external_calls, 37);
  EXPECT_DOUBLE_EQ(async.max_concurrent_calls, 37);
  EXPECT_DOUBLE_EQ(async.reqsync_buffered_tuples, 37);
}

TEST_F(CostModelTest, ConsolidatedPlanDoublesConcurrency) {
  const char* sql =
      "SELECT Name FROM Sigs, WebPages AV, WP_G G "
      "WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= 3 AND "
      "G.Rank <= 3";
  // Consolidated plan: the second dependent join binds on PROVISIONAL
  // tuples (one per Sig), so both joins issue 37 calls each.
  PlanCostEstimate full = Cost(sql, true);
  EXPECT_DOUBLE_EQ(full.external_calls, 74);
  EXPECT_DOUBLE_EQ(full.max_concurrent_calls, 74);

  // Insertion-only: each wave is one join's worth of calls.
  auto stmt = Parser::ParseSelect(sql);
  Binder binder(&catalog_, &vtables_);
  RewriteOptions insert_only;
  insert_only.insert_only = true;
  insert_only.consolidate = false;
  auto staged = ApplyAsyncIteration(
      std::move(binder.Bind(**stmt)).value(), insert_only);
  ASSERT_TRUE(staged.ok());
  auto cost = EstimatePlanCost(**staged);
  ASSERT_TRUE(cost.ok());
  // The lower ReqSync patches the first join's results (37 x 1.8
  // expected rows), so the second join issues one call per PATCHED
  // tuple — the staged plan does more external work AND caps each
  // wave's concurrency below the consolidated plan's 74.
  EXPECT_NEAR(cost->external_calls, 37 + 37 * 1.8, 1e-9);
  EXPECT_NEAR(cost->max_concurrent_calls, 37 * 1.8, 1e-9);
}

TEST_F(CostModelTest, WebPagesFanoutScalesRowsAndBuffer) {
  PlanCostEstimate c = Cost(
      "SELECT Name, URL FROM Sigs, WebPages "
      "WHERE Name = T1 AND Rank <= 10",
      true);
  // 10 * 0.6 expected hits per Sig.
  EXPECT_DOUBLE_EQ(c.output_rows, 37 * 6.0);
  EXPECT_DOUBLE_EQ(c.external_calls, 37);
}

TEST_F(CostModelTest, CrossProductMultipliesBufferedTuples) {
  // Figure 7 shape: R between the joins multiplies what the top
  // ReqSync must buffer (the paper's Example 2 patch-volume concern).
  PlanCostEstimate c = Cost(
      "SELECT Sigs.Name FROM Sigs, WebCount, R WHERE Sigs.Name = T1",
      true);
  EXPECT_DOUBLE_EQ(c.reqsync_buffered_tuples, 37 * 4.0);
}

TEST_F(CostModelTest, FilterSelectivityApplied) {
  PlanCostEstimate c = Cost(
      "SELECT Name, Count FROM Sigs, WebCount "
      "WHERE Name = T1 AND Count > 100",
      false);
  EXPECT_NEAR(c.output_rows, 37 * 0.33, 1e-9);
}

TEST_F(CostModelTest, LimitCapsRows) {
  PlanCostEstimate c = Cost("SELECT Name FROM Sigs LIMIT 5", false);
  EXPECT_DOUBLE_EQ(c.output_rows, 5);
}

TEST_F(CostModelTest, AggregateCollapsesToOneRow) {
  PlanCostEstimate c = Cost("SELECT COUNT(*) FROM Sigs", false);
  EXPECT_DOUBLE_EQ(c.output_rows, 1);
}

TEST_F(CostModelTest, ToStringMentionsAllQuantities) {
  PlanCostEstimate c = Cost(
      "SELECT Name, Count FROM Sigs, WebCount WHERE Name = T1", true);
  std::string text = c.ToString();
  EXPECT_NE(text.find("external calls=37"), std::string::npos) << text;
  EXPECT_NE(text.find("max concurrent=37"), std::string::npos) << text;
}

}  // namespace
}  // namespace wsq
