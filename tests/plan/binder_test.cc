#include "plan/binder.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "storage/disk_manager.h"
#include "wsq/web_tables.h"

namespace wsq {
namespace {

// A stub service: virtual tables need one to exist, but binder tests
// never execute calls.
class NullService : public SearchService {
 public:
  const std::string& name() const override { return name_; }
  void Submit(SearchRequest, SearchCallback done) override {
    done(SearchResponse{});
  }

 private:
  std::string name_ = "null";
};

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() : pool_(64, &disk_), catalog_(&pool_) {
    auto states = *catalog_.CreateTable(
        "States", Schema({Column("Name", TypeId::kString),
                          Column("Population", TypeId::kInt64),
                          Column("Capital", TypeId::kString)}));
    (void)states;
    (void)*catalog_.CreateTable(
        "Sigs", Schema({Column("Name", TypeId::kString)}));
    (void)*catalog_.CreateTable(
        "R", Schema({Column("X", TypeId::kInt64)}));
    EXPECT_TRUE(vtables_
                    .Register(std::make_unique<WebCountTable>(
                        "WebCount", &service_, true))
                    .ok());
    EXPECT_TRUE(vtables_
                    .Register(std::make_unique<WebPagesTable>(
                        "WebPages", &service_, true))
                    .ok());
    EXPECT_TRUE(vtables_
                    .Register(std::make_unique<WebPagesTable>(
                        "WebPages_Google", &service_, false))
                    .ok());
    EXPECT_TRUE(vtables_
                    .Register(std::make_unique<WebCountTable>(
                        "WebCount_Google", &service_, false))
                    .ok());
  }

  Result<PlanNodePtr> Bind(const std::string& sql) {
    auto stmt = Parser::ParseSelect(sql);
    if (!stmt.ok()) return stmt.status();
    Binder binder(&catalog_, &vtables_);
    return binder.Bind(**stmt);
  }

  std::string MustPlan(const std::string& sql) {
    auto plan = Bind(sql);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString() << "\n" << sql;
    return plan.ok() ? (*plan)->ToString() : "";
  }

  InMemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  NullService service_;
  VirtualTableRegistry vtables_;
};

TEST_F(BinderTest, SimpleScanProject) {
  EXPECT_EQ(MustPlan("SELECT Name FROM States"),
            "Project: States.Name\n"
            "  Scan: States\n");
}

TEST_F(BinderTest, PaperQuery1Shape) {
  // Figure 2's shape, plus the projection.
  EXPECT_EQ(MustPlan("Select Name, Count From States, WebCount "
                     "Where Name = T1 Order By Count Desc"),
            "Sort: WebCount.Count desc\n"
            "  Project: States.Name, WebCount.Count\n"
            "    Dependent Join: States.Name -> WebCount.T1\n"
            "      Scan: States\n"
            "      EVScan: WebCount\n");
}

TEST_F(BinderTest, ConstantTermBecomesScanParameter) {
  std::string plan =
      MustPlan("Select * From Sigs, WebCount "
               "Where Name = T1 and T2 = 'Knuth'");
  EXPECT_NE(plan.find("EVScan: WebCount (T2 = 'Knuth')"),
            std::string::npos)
      << plan;
}

TEST_F(BinderTest, RankRestrictionPushedIntoScan) {
  std::string plan =
      MustPlan("Select Name, URL, Rank From States, WebPages "
               "Where Name = T1 and Rank <= 2 Order By Name, Rank");
  EXPECT_NE(plan.find("EVScan: WebPages (Rank <= 2)"), std::string::npos)
      << plan;
  // Consumed: no residual filter on Rank.
  EXPECT_EQ(plan.find("Select:"), std::string::npos) << plan;
}

TEST_F(BinderTest, DefaultRankLimitApplied) {
  std::string plan = MustPlan(
      "Select URL From States, WebPages Where Name = T1");
  EXPECT_NE(plan.find("Rank <= 19"), std::string::npos) << plan;
}

TEST_F(BinderTest, StrictRankLessThanAdjusted) {
  std::string plan = MustPlan(
      "Select URL From States, WebPages Where Name = T1 and Rank < 5");
  EXPECT_NE(plan.find("Rank <= 4"), std::string::npos) << plan;
}

TEST_F(BinderTest, PaperQuery4TwoWebCounts) {
  std::string plan = MustPlan(
      "Select Capital, C.Count, Name, S.Count "
      "From States, WebCount C, WebCount S "
      "Where Capital = C.T1 and Name = S.T1 and C.Count > S.Count");
  // Two dependent joins and a residual filter over the counts.
  EXPECT_EQ(plan,
            "Project: States.Capital, C.Count, States.Name, S.Count\n"
            "  Select: (C.Count > S.Count)\n"
            "    Dependent Join: States.Name -> S.T1\n"
            "      Dependent Join: States.Capital -> C.T1\n"
            "        Scan: States\n"
            "        EVScan: WebCount C\n"
            "      EVScan: WebCount S\n");
}

TEST_F(BinderTest, PaperQuery6TwoEngines) {
  std::string plan = MustPlan(
      "Select Name, AV.URL From States, WebPages AV, "
      "WebPages_Google G "
      "Where Name = AV.T1 and Name = G.T1 and AV.Rank <= 5 and "
      "G.Rank <= 5 and AV.URL = G.URL");
  EXPECT_NE(plan.find("Select: (AV.URL = G.URL)"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("WebPages_Google G (Rank <= 5)"),
            std::string::npos)
      << plan;
}

TEST_F(BinderTest, StoredJoinUsesPredicate) {
  std::string plan = MustPlan(
      "SELECT s.Name FROM States s, Sigs g WHERE s.Name = g.Name");
  EXPECT_NE(plan.find("Join: (s.Name = g.Name)"), std::string::npos)
      << plan;
}

TEST_F(BinderTest, NoPredicateMakesCrossProduct) {
  std::string plan = MustPlan("SELECT * FROM Sigs, R");
  EXPECT_NE(plan.find("Cross-Product"), std::string::npos) << plan;
}

TEST_F(BinderTest, VirtualTableFirstWithConstants) {
  std::string plan = MustPlan(
      "SELECT Count FROM WebCount WHERE T1 = 'Colorado'");
  EXPECT_EQ(plan,
            "Project: WebCount.Count\n"
            "  EVScan: WebCount (T1 = 'Colorado')\n");
}

TEST_F(BinderTest, ConstantSearchExpRaisesTermCount) {
  // "%1 near %2" in SearchExp forces T1 and T2 to exist and be bound.
  auto plan = Bind(
      "SELECT Count FROM WebCount "
      "WHERE SearchExp = '%1 near %2' AND T1 = 'a'");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("T2"), std::string::npos)
      << plan.status().ToString();
}

TEST_F(BinderTest, UnboundTermRejected) {
  auto plan = Bind("SELECT Count FROM States, WebCount WHERE Name = T2");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("T1"), std::string::npos);
}

TEST_F(BinderTest, BindingFromLaterTableRejected) {
  auto plan = Bind(
      "SELECT Count FROM WebCount, States WHERE Name = T1");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("FROM"), std::string::npos)
      << plan.status().ToString();
}

TEST_F(BinderTest, DoubleBindingRejected) {
  EXPECT_FALSE(Bind("SELECT Count FROM States, WebCount "
                    "WHERE Name = T1 AND T1 = 'x'")
                   .ok());
  EXPECT_FALSE(Bind("SELECT Count FROM States, WebCount "
                    "WHERE Name = T1 AND Capital = T1")
                   .ok());
}

TEST_F(BinderTest, InputInequalityRejected) {
  auto plan = Bind("SELECT Count FROM States, WebCount WHERE T1 > Name");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("'='"), std::string::npos);
}

TEST_F(BinderTest, TwoVirtualInputsBoundTogetherRejected) {
  EXPECT_FALSE(Bind("SELECT * FROM WebCount C, WebCount_Google G "
                    "WHERE C.T1 = G.T1")
                   .ok());
}

TEST_F(BinderTest, UnknownTableRejected) {
  EXPECT_FALSE(Bind("SELECT * FROM Nope").ok());
}

TEST_F(BinderTest, DuplicateAliasRejected) {
  EXPECT_FALSE(Bind("SELECT * FROM States s, Sigs s").ok());
}

TEST_F(BinderTest, AmbiguousUnqualifiedTermRejected) {
  auto plan = Bind(
      "SELECT * FROM States, WebCount C, WebCount_Google G "
      "WHERE Name = T1");
  ASSERT_FALSE(plan.ok());
}

TEST_F(BinderTest, AggregateQueryShape) {
  std::string plan = MustPlan(
      "SELECT Capital, COUNT(*), SUM(Population) FROM States "
      "GROUP BY Capital HAVING COUNT(*) > 0 ORDER BY Capital");
  EXPECT_NE(plan.find("Aggregate: States.Capital, COUNT(*), "
                      "SUM(States.Population)"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("Select: (COUNT(*) > 0)"), std::string::npos)
      << plan;
}

TEST_F(BinderTest, NonGroupedColumnRejected) {
  EXPECT_FALSE(
      Bind("SELECT Name, COUNT(*) FROM States GROUP BY Capital").ok());
}

TEST_F(BinderTest, HavingWithoutAggregatesRejected) {
  EXPECT_FALSE(Bind("SELECT Name FROM States HAVING Name = 'x'").ok());
}

TEST_F(BinderTest, OrderByAliasBinds) {
  std::string plan = MustPlan(
      "Select Name, Count/Population As C From States, WebCount "
      "Where Name = T1 Order By C Desc");
  EXPECT_NE(plan.find("Sort: C desc"), std::string::npos) << plan;
}

TEST_F(BinderTest, OrderByMustUseOutputColumns) {
  // Sort runs above the projection, so ordering on a column that was
  // projected away is rejected (documented subset restriction).
  EXPECT_FALSE(Bind("SELECT Name FROM States ORDER BY Population").ok());
  EXPECT_FALSE(Bind("SELECT Name FROM States ORDER BY Nothing").ok());
  EXPECT_TRUE(
      Bind("SELECT Name, Population FROM States ORDER BY Population")
          .ok());
}

TEST_F(BinderTest, DistinctAndLimit) {
  std::string plan =
      MustPlan("SELECT DISTINCT Capital FROM States LIMIT 5");
  EXPECT_NE(plan.find("Limit: 5"), std::string::npos);
  EXPECT_NE(plan.find("Distinct"), std::string::npos);
}

TEST_F(BinderTest, SelectStarExpandsVirtualColumns) {
  auto plan = Bind("SELECT * FROM Sigs, WebCount WHERE Name = T1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Sigs.Name + WebCount(SearchExp, T1, Count) = 4 columns.
  EXPECT_EQ((*plan)->schema().NumColumns(), 4u);
}

}  // namespace
}  // namespace wsq
