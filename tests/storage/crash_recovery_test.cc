#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "storage/disk_manager.h"
#include "storage/fault_disk.h"
#include "storage/wal.h"
#include "wsq/database.h"

namespace wsq {
namespace {

/// One simulated machine: raw durable stores plus the fault-injecting
/// devices a WsqDatabase runs on.
struct SimMachine {
  explicit SimMachine(DiskFaultPlan plan = {})
      : ctl(plan), disk(&raw_disk, &ctl), wal(&raw_wal, &ctl) {}

  InMemoryDiskManager raw_disk;
  InMemoryWalStorage raw_wal;
  FaultController ctl;
  FaultInjectingDiskManager disk;
  FaultInjectingWalStorage wal;
};

WsqDatabase::Options HarnessOptions() {
  WsqDatabase::Options options;
  // The harness wants the last *checkpoint* to be the durable truth,
  // not whatever a clean close would add on top.
  options.checkpoint_on_close = false;
  // Generous pool: no mid-run dirty evictions, so every durable write
  // goes through the checkpoint protocol under test.
  options.buffer_pool_pages = 64;
  return options;
}

Result<std::unique_ptr<WsqDatabase>> OpenOn(SimMachine* m) {
  return WsqDatabase::OpenWithStorage(&m->disk, &m->wal, HarnessOptions());
}

struct TableState {
  int64_t count = -1;
  int64_t sum = -1;
  bool operator==(const TableState& o) const {
    return count == o.count && sum == o.sum;
  }
};

/// Reopens the database and reads back T's aggregate state.
Result<TableState> ReadState(SimMachine* m) {
  WSQ_ASSIGN_OR_RETURN(std::unique_ptr<WsqDatabase> db, OpenOn(m));
  WSQ_ASSIGN_OR_RETURN(QueryExecution r,
                       db->Execute("SELECT COUNT(*), SUM(A) FROM T"));
  TableState state;
  state.count = r.result.rows[0].value(0).AsInt();
  state.sum = r.result.rows[0].value(1).AsInt();
  return state;
}

constexpr TableState kStateA{3, 6};    // rows 1, 2, 3
constexpr TableState kStateB{6, 21};   // rows 1..6

/// Phase A: build state A and checkpoint it (never under faults).
Status BuildStateA(SimMachine* m) {
  WSQ_ASSIGN_OR_RETURN(std::unique_ptr<WsqDatabase> db, OpenOn(m));
  WSQ_RETURN_IF_ERROR(db->Execute("CREATE TABLE T (A INT)").status());
  WSQ_RETURN_IF_ERROR(
      db->Execute("INSERT INTO T VALUES (1), (2), (3)").status());
  return db->Checkpoint();
}

/// Phase B: add rows 4..6 and checkpoint. Under an armed fault plan any
/// step may fail; the first error is returned (the caller only cares
/// whether the phase fully succeeded).
Status RunPhaseB(SimMachine* m) {
  WSQ_ASSIGN_OR_RETURN(std::unique_ptr<WsqDatabase> db, OpenOn(m));
  WSQ_RETURN_IF_ERROR(
      db->Execute("INSERT INTO T VALUES (4), (5), (6)").status());
  return db->Checkpoint();
}

/// How many fault-clock ops one full phase B consumes, measured on a
/// clean machine so the crash sweep knows its op range.
uint64_t MeasurePhaseBOps() {
  SimMachine m;
  EXPECT_TRUE(BuildStateA(&m).ok());
  uint64_t before = m.ctl.stats().ops;
  EXPECT_TRUE(RunPhaseB(&m).ok());
  return m.ctl.stats().ops - before;
}

/// The tentpole invariant: crash at op `k` of phase B (optionally with
/// a torn write), recover, and the database must read back as exactly
/// state A or state B — never a mix, never unopenable.
void SweepCrashes(int64_t torn_bytes) {
  const uint64_t phase_ops = MeasurePhaseBOps();
  ASSERT_GT(phase_ops, 5u);  // the protocol has real steps to hit

  for (uint64_t k = 1; k <= phase_ops; ++k) {
    SimMachine m;
    ASSERT_TRUE(BuildStateA(&m).ok()) << "k=" << k;

    DiskFaultPlan plan;
    plan.crash_at_op = m.ctl.stats().ops + k;
    plan.torn_bytes = torn_bytes;
    m.ctl.set_plan(plan);

    Status phase = RunPhaseB(&m);
    ASSERT_TRUE(m.ctl.stats().crashed) << "k=" << k;

    // Reboot: the un-synced state is gone; the plan is disarmed.
    m.ctl.Recover();
    m.ctl.set_plan(DiskFaultPlan{});

    auto state = ReadState(&m);
    ASSERT_TRUE(state.ok())
        << "k=" << k << ": unopenable after crash: "
        << state.status().ToString();
    ASSERT_TRUE(*state == kStateA || *state == kStateB)
        << "k=" << k << ": mixed state: count=" << state->count
        << " sum=" << state->sum;
    if (phase.ok()) {
      // The checkpoint reported success before the crash hit, so its
      // effects must have survived.
      ASSERT_TRUE(*state == kStateB) << "k=" << k;
    }

    // Recovery is stable: a second open changes nothing.
    auto again = ReadState(&m);
    ASSERT_TRUE(again.ok()) << "k=" << k;
    ASSERT_TRUE(*again == *state) << "k=" << k;
  }
}

TEST(CrashRecoveryTest, SweepEveryCrashPoint) { SweepCrashes(-1); }

TEST(CrashRecoveryTest, SweepEveryCrashPointWithTornWrites) {
  SweepCrashes(/*torn_bytes=*/1234);
}

TEST(CrashRecoveryTest, CrashAfterPhaseBLeavesStateB) {
  SimMachine m;
  ASSERT_TRUE(BuildStateA(&m).ok());
  ASSERT_TRUE(RunPhaseB(&m).ok());
  // Crash on the next mutating op, long after the checkpoint.
  DiskFaultPlan plan;
  plan.crash_at_op = m.ctl.stats().ops + 1;
  m.ctl.set_plan(plan);
  m.ctl.Recover();
  m.ctl.set_plan(DiskFaultPlan{});
  auto state = ReadState(&m);
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(*state == kStateB);
}

TEST(CrashRecoveryTest, FailedOpIsRetryable) {
  SimMachine m;
  ASSERT_TRUE(BuildStateA(&m).ok());
  auto db = std::move(OpenOn(&m)).value();
  ASSERT_TRUE(db->Execute("INSERT INTO T VALUES (4), (5), (6)").ok());

  // Fail the first checkpoint op (the WAL header append); the device
  // stays up, so — unlike a crash — the very next attempt can succeed.
  DiskFaultPlan plan;
  plan.fail_at_op = m.ctl.stats().ops + 1;
  m.ctl.set_plan(plan);
  ASSERT_FALSE(db->Checkpoint().ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  db.reset();

  auto state = ReadState(&m);
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(*state == kStateB);
}

TEST(CrashRecoveryTest, EveryFailedCheckpointOpIsRetryable) {
  // Like the crash sweep, but with transient per-op failures: after
  // any single failed checkpoint step, a retry must converge to B.
  const uint64_t phase_ops = MeasurePhaseBOps();
  for (uint64_t k = 1; k <= phase_ops; ++k) {
    SimMachine m;
    ASSERT_TRUE(BuildStateA(&m).ok()) << "k=" << k;
    DiskFaultPlan plan;
    plan.fail_at_op = m.ctl.stats().ops + k;
    m.ctl.set_plan(plan);

    auto db = OpenOn(&m);
    ASSERT_TRUE(db.ok()) << "k=" << k;  // open itself does no mutating op
    Status s = (*db)->Execute("INSERT INTO T VALUES (4), (5), (6)").status();
    if (s.ok()) s = (*db)->Checkpoint();
    if (!s.ok()) {
      // Retry the whole phase on the still-running machine.
      Status retry = (*db)->Execute("SELECT 1 FROM T").status();
      (void)retry;
      ASSERT_TRUE((*db)->Checkpoint().ok()) << "k=" << k;
    }
    db->reset();
    auto state = ReadState(&m);
    ASSERT_TRUE(state.ok()) << "k=" << k;
    // An insert that failed mid-statement may or may not have appended
    // rows; the durable state must still be readable and coherent
    // enough to checkpoint. When everything succeeded it must be B.
    if (s.ok()) {
      ASSERT_TRUE(*state == kStateB) << "k=" << k;
    }
  }
}

TEST(CrashRecoveryTest, BitRotSurfacesAsDataLoss) {
  SimMachine m;
  ASSERT_TRUE(BuildStateA(&m).ok());
  DiskFaultPlan plan;
  plan.read_bit_flip_rate = 1.0;  // every page read comes back damaged
  m.ctl.set_plan(plan);

  auto db = OpenOn(&m);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kDataLoss);
  EXPECT_GT(m.ctl.stats().bit_flips, 0u);

  // The rot is on the medium, not transient: reads keep failing.
  auto again = OpenOn(&m);
  EXPECT_FALSE(again.ok());
}

TEST(CrashRecoveryTest, CrashedDeviceRejectsEverything) {
  SimMachine m;
  ASSERT_TRUE(BuildStateA(&m).ok());
  DiskFaultPlan plan;
  plan.crash_at_op = m.ctl.stats().ops + 1;
  m.ctl.set_plan(plan);

  char frame[kPageSize] = {};
  ASSERT_FALSE(m.disk.WritePage(0, frame).ok());  // the crash itself
  EXPECT_TRUE(m.ctl.crashed());
  EXPECT_FALSE(m.disk.ReadPage(0, frame).ok());
  EXPECT_FALSE(m.disk.Sync().ok());
  EXPECT_FALSE(m.wal.Append("x").ok());

  m.ctl.Recover();
  m.ctl.set_plan(DiskFaultPlan{});
  EXPECT_TRUE(m.disk.ReadPage(0, frame).ok());
}

TEST(CrashRecoveryTest, UnsyncedWritesVanishOnCrash) {
  SimMachine m;
  ASSERT_TRUE(m.disk.AllocatePage().ok());
  char frame[kPageSize] = {};
  ASSERT_TRUE(m.disk.WritePage(0, frame).ok());
  EXPECT_EQ(m.disk.unsynced_pages(), 1u);
  ASSERT_TRUE(m.disk.Sync().ok());
  EXPECT_EQ(m.disk.unsynced_pages(), 0u);

  // A second write stays volatile; the crash erases it.
  frame[kPageHeaderSize] = 'v';
  ASSERT_TRUE(m.disk.WritePage(0, frame).ok());
  DiskFaultPlan plan;
  plan.crash_at_op = m.ctl.stats().ops + 1;
  m.ctl.set_plan(plan);
  ASSERT_FALSE(m.disk.WritePage(0, frame).ok());
  m.ctl.Recover();
  m.ctl.set_plan(DiskFaultPlan{});

  char in[kPageSize];
  ASSERT_TRUE(m.disk.ReadPage(0, in).ok());
  EXPECT_EQ(in[kPageHeaderSize], 0);  // the synced (empty) version
}

}  // namespace
}  // namespace wsq
