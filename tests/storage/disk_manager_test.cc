#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "storage/checksum.h"

namespace wsq {
namespace {

void FillPattern(char* buf, char seed) {
  for (size_t i = 0; i < kPageSize; ++i) {
    buf[i] = static_cast<char>(seed + static_cast<char>(i % 97));
  }
}

/// Persistent backends own the frame's header region; only the payload
/// is the caller's to round-trip.
bool PayloadsEqual(const char* a, const char* b) {
  return std::memcmp(a + kPageHeaderSize, b + kPageHeaderSize,
                     kPageDataSize) == 0;
}

class DiskManagerParamTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "memory") {
      disk_ = std::make_unique<InMemoryDiskManager>();
    } else {
      path_ = ::testing::TempDir() + "/wsq_disk_test.db";
      std::remove(path_.c_str());
      auto r = FileDiskManager::Open(path_);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      disk_ = std::move(r).value();
    }
  }

  void TearDown() override {
    disk_.reset();
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::unique_ptr<DiskManager> disk_;
  std::string path_;
};

TEST_P(DiskManagerParamTest, StartsEmpty) {
  EXPECT_EQ(disk_->NumPages(), 0);
}

TEST_P(DiskManagerParamTest, AllocateGrowsDensely) {
  for (PageId expected = 0; expected < 5; ++expected) {
    auto r = disk_->AllocatePage();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, expected);
  }
  EXPECT_EQ(disk_->NumPages(), 5);
}

TEST_P(DiskManagerParamTest, WriteReadRoundTrip) {
  ASSERT_TRUE(disk_->AllocatePage().ok());
  char out[kPageSize];
  char in[kPageSize];
  FillPattern(out, 3);
  ASSERT_TRUE(disk_->WritePage(0, out).ok());
  ASSERT_TRUE(disk_->ReadPage(0, in).ok());
  EXPECT_TRUE(PayloadsEqual(out, in));
}

TEST_P(DiskManagerParamTest, FreshPageIsZeroed) {
  ASSERT_TRUE(disk_->AllocatePage().ok());
  char in[kPageSize];
  std::memset(in, 1, kPageSize);
  ASSERT_TRUE(disk_->ReadPage(0, in).ok());
  for (size_t i = kPageHeaderSize; i < kPageSize; ++i) {
    ASSERT_EQ(in[i], 0) << "byte " << i;
  }
}

TEST_P(DiskManagerParamTest, ReadOutOfRangeFails) {
  char buf[kPageSize];
  EXPECT_FALSE(disk_->ReadPage(0, buf).ok());
  EXPECT_FALSE(disk_->ReadPage(-1, buf).ok());
}

TEST_P(DiskManagerParamTest, WriteOutOfRangeFails) {
  char buf[kPageSize] = {};
  EXPECT_FALSE(disk_->WritePage(7, buf).ok());
}

TEST_P(DiskManagerParamTest, PagesAreIndependent) {
  ASSERT_TRUE(disk_->AllocatePage().ok());
  ASSERT_TRUE(disk_->AllocatePage().ok());
  char a[kPageSize], b[kPageSize], in[kPageSize];
  FillPattern(a, 1);
  FillPattern(b, 9);
  ASSERT_TRUE(disk_->WritePage(0, a).ok());
  ASSERT_TRUE(disk_->WritePage(1, b).ok());
  ASSERT_TRUE(disk_->ReadPage(0, in).ok());
  EXPECT_TRUE(PayloadsEqual(a, in));
  ASSERT_TRUE(disk_->ReadPage(1, in).ok());
  EXPECT_TRUE(PayloadsEqual(b, in));
}

TEST_P(DiskManagerParamTest, SyncSucceeds) {
  ASSERT_TRUE(disk_->AllocatePage().ok());
  char out[kPageSize];
  FillPattern(out, 2);
  ASSERT_TRUE(disk_->WritePage(0, out).ok());
  EXPECT_TRUE(disk_->Sync().ok());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, DiskManagerParamTest,
                         ::testing::Values("memory", "file"));

TEST(FileDiskManagerTest, ReopenSeesExistingPages) {
  std::string path = ::testing::TempDir() + "/wsq_reopen_test.db";
  std::remove(path.c_str());
  char out[kPageSize];
  FillPattern(out, 5);
  {
    auto r = FileDiskManager::Open(path);
    ASSERT_TRUE(r.ok());
    auto disk = std::move(r).value();
    ASSERT_TRUE(disk->AllocatePage().ok());
    ASSERT_TRUE(disk->WritePage(0, out).ok());
  }
  {
    auto r = FileDiskManager::Open(path);
    ASSERT_TRUE(r.ok());
    auto disk = std::move(r).value();
    EXPECT_EQ(disk->NumPages(), 1);
    char in[kPageSize];
    ASSERT_TRUE(disk->ReadPage(0, in).ok());
    EXPECT_TRUE(PayloadsEqual(out, in));
  }
  std::remove(path.c_str());
}

class FileDiskManagerCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/wsq_corrupt_test.db";
    std::remove(path_.c_str());
    auto r = FileDiskManager::Open(path_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    disk_ = std::move(r).value();
    char frame[kPageSize];
    FillPattern(frame, 7);
    ASSERT_TRUE(disk_->AllocatePage().ok());
    ASSERT_TRUE(disk_->WritePage(0, frame).ok());
    ASSERT_TRUE(disk_->Sync().ok());
    disk_.reset();
  }

  void TearDown() override {
    disk_.reset();
    std::remove(path_.c_str());
  }

  /// Overwrites one byte of the file at `offset`.
  void ScribbleByte(long offset, char value) {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&value, 1, 1, f), 1u);
    ASSERT_EQ(std::fclose(f), 0);
  }

  std::unique_ptr<FileDiskManager> disk_;
  std::string path_;
};

TEST_F(FileDiskManagerCorruptionTest, FlippedPayloadByteIsDataLoss) {
  ScribbleByte(kPageHeaderSize + 100, '\x5a');
  auto r = FileDiskManager::Open(path_);
  ASSERT_TRUE(r.ok());
  char in[kPageSize];
  Status s = (*r)->ReadPage(0, in);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(IsTransient(s.code()));
}

TEST_F(FileDiskManagerCorruptionTest, BadMagicIsDataLoss) {
  ScribbleByte(0, 'J');
  auto r = FileDiskManager::Open(path_);
  ASSERT_TRUE(r.ok());
  char in[kPageSize];
  Status s = (*r)->ReadPage(0, in);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST_F(FileDiskManagerCorruptionTest, TruncatedFileRejectedAtOpen) {
  // Chop the file mid-page: a torn final page must be reported, not
  // silently rounded away.
  ASSERT_EQ(::truncate(path_.c_str(), kPageSize / 2), 0);
  auto r = FileDiskManager::Open(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(FileDiskManagerCorruptionTest, IntactFileReadsBack) {
  auto r = FileDiskManager::Open(path_);
  ASSERT_TRUE(r.ok());
  char in[kPageSize];
  EXPECT_TRUE((*r)->ReadPage(0, in).ok());
}

}  // namespace
}  // namespace wsq
