#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

namespace wsq {
namespace {

void FillPattern(char* buf, char seed) {
  for (size_t i = 0; i < kPageSize; ++i) {
    buf[i] = static_cast<char>(seed + static_cast<char>(i % 97));
  }
}

class DiskManagerParamTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "memory") {
      disk_ = std::make_unique<InMemoryDiskManager>();
    } else {
      path_ = ::testing::TempDir() + "/wsq_disk_test.db";
      std::remove(path_.c_str());
      auto r = FileDiskManager::Open(path_);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      disk_ = std::move(r).value();
    }
  }

  void TearDown() override {
    disk_.reset();
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::unique_ptr<DiskManager> disk_;
  std::string path_;
};

TEST_P(DiskManagerParamTest, StartsEmpty) {
  EXPECT_EQ(disk_->NumPages(), 0);
}

TEST_P(DiskManagerParamTest, AllocateGrowsDensely) {
  for (PageId expected = 0; expected < 5; ++expected) {
    auto r = disk_->AllocatePage();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, expected);
  }
  EXPECT_EQ(disk_->NumPages(), 5);
}

TEST_P(DiskManagerParamTest, WriteReadRoundTrip) {
  ASSERT_TRUE(disk_->AllocatePage().ok());
  char out[kPageSize];
  char in[kPageSize];
  FillPattern(out, 3);
  ASSERT_TRUE(disk_->WritePage(0, out).ok());
  ASSERT_TRUE(disk_->ReadPage(0, in).ok());
  EXPECT_EQ(std::memcmp(out, in, kPageSize), 0);
}

TEST_P(DiskManagerParamTest, FreshPageIsZeroed) {
  ASSERT_TRUE(disk_->AllocatePage().ok());
  char in[kPageSize];
  std::memset(in, 1, kPageSize);
  ASSERT_TRUE(disk_->ReadPage(0, in).ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(in[i], 0) << "byte " << i;
  }
}

TEST_P(DiskManagerParamTest, ReadOutOfRangeFails) {
  char buf[kPageSize];
  EXPECT_FALSE(disk_->ReadPage(0, buf).ok());
  EXPECT_FALSE(disk_->ReadPage(-1, buf).ok());
}

TEST_P(DiskManagerParamTest, WriteOutOfRangeFails) {
  char buf[kPageSize] = {};
  EXPECT_FALSE(disk_->WritePage(7, buf).ok());
}

TEST_P(DiskManagerParamTest, PagesAreIndependent) {
  ASSERT_TRUE(disk_->AllocatePage().ok());
  ASSERT_TRUE(disk_->AllocatePage().ok());
  char a[kPageSize], b[kPageSize], in[kPageSize];
  FillPattern(a, 1);
  FillPattern(b, 9);
  ASSERT_TRUE(disk_->WritePage(0, a).ok());
  ASSERT_TRUE(disk_->WritePage(1, b).ok());
  ASSERT_TRUE(disk_->ReadPage(0, in).ok());
  EXPECT_EQ(std::memcmp(a, in, kPageSize), 0);
  ASSERT_TRUE(disk_->ReadPage(1, in).ok());
  EXPECT_EQ(std::memcmp(b, in, kPageSize), 0);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, DiskManagerParamTest,
                         ::testing::Values("memory", "file"));

TEST(FileDiskManagerTest, ReopenSeesExistingPages) {
  std::string path = ::testing::TempDir() + "/wsq_reopen_test.db";
  std::remove(path.c_str());
  char out[kPageSize];
  FillPattern(out, 5);
  {
    auto r = FileDiskManager::Open(path);
    ASSERT_TRUE(r.ok());
    auto disk = std::move(r).value();
    ASSERT_TRUE(disk->AllocatePage().ok());
    ASSERT_TRUE(disk->WritePage(0, out).ok());
  }
  {
    auto r = FileDiskManager::Open(path);
    ASSERT_TRUE(r.ok());
    auto disk = std::move(r).value();
    EXPECT_EQ(disk->NumPages(), 1);
    char in[kPageSize];
    ASSERT_TRUE(disk->ReadPage(0, in).ok());
    EXPECT_EQ(std::memcmp(out, in, kPageSize), 0);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wsq
