#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "storage/checksum.h"

namespace wsq {
namespace {

/// A stamped frame whose payload is filled with `fill`.
std::string MakeFrame(PageId page_id, char fill) {
  std::string frame(kPageSize, '\0');
  std::memset(frame.data() + kPageHeaderSize, fill, kPageDataSize);
  StampPageHeader(page_id, /*lsn=*/1, frame.data());
  return frame;
}

TEST(LogWriterReaderTest, RoundTripCommitted) {
  InMemoryWalStorage wal;
  LogWriter writer(&wal);
  std::string f0 = MakeFrame(0, 'a');
  std::string f2 = MakeFrame(2, 'b');
  ASSERT_TRUE(writer.AppendPageImage(0, f0.data()).ok());
  ASSERT_TRUE(writer.AppendPageImage(2, f2.data()).ok());
  ASSERT_TRUE(writer.Commit(2).ok());

  ParsedWal parsed = LogReader::Parse(*wal.ReadAll());
  EXPECT_TRUE(parsed.committed);
  ASSERT_EQ(parsed.pages.size(), 2u);
  EXPECT_EQ(parsed.pages[0].page_id, 0);
  EXPECT_EQ(parsed.pages[1].page_id, 2);
  EXPECT_EQ(parsed.pages[0].frame, f0);
  EXPECT_EQ(parsed.pages[1].frame, f2);
}

TEST(LogWriterReaderTest, MissingCommitIsTorn) {
  InMemoryWalStorage wal;
  LogWriter writer(&wal);
  std::string f0 = MakeFrame(0, 'a');
  ASSERT_TRUE(writer.AppendPageImage(0, f0.data()).ok());

  ParsedWal parsed = LogReader::Parse(*wal.ReadAll());
  EXPECT_FALSE(parsed.committed);
  EXPECT_FALSE(parsed.torn_reason.empty());
}

TEST(LogWriterReaderTest, TruncatedTailIsTorn) {
  InMemoryWalStorage wal;
  LogWriter writer(&wal);
  std::string f0 = MakeFrame(0, 'a');
  ASSERT_TRUE(writer.AppendPageImage(0, f0.data()).ok());
  ASSERT_TRUE(writer.Commit(1).ok());

  std::string bytes = *wal.ReadAll();
  // Chop bytes off the end one at a time: every prefix that loses any
  // part of the commit record must parse as torn.
  for (size_t cut = 1; cut <= 9; ++cut) {
    ParsedWal parsed =
        LogReader::Parse(std::string_view(bytes).substr(0, bytes.size() - cut));
    EXPECT_FALSE(parsed.committed) << "cut=" << cut;
  }
}

TEST(LogWriterReaderTest, CorruptPageRecordIsTorn) {
  InMemoryWalStorage wal;
  LogWriter writer(&wal);
  std::string f0 = MakeFrame(0, 'a');
  ASSERT_TRUE(writer.AppendPageImage(0, f0.data()).ok());
  ASSERT_TRUE(writer.Commit(1).ok());

  std::string bytes = *wal.ReadAll();
  bytes[100] ^= 0x10;  // inside the page image
  ParsedWal parsed = LogReader::Parse(bytes);
  EXPECT_FALSE(parsed.committed);
  EXPECT_NE(parsed.torn_reason.find("CRC"), std::string::npos);
}

TEST(LogWriterReaderTest, GarbageAfterCommitIgnored) {
  InMemoryWalStorage wal;
  LogWriter writer(&wal);
  std::string f0 = MakeFrame(0, 'a');
  ASSERT_TRUE(writer.AppendPageImage(0, f0.data()).ok());
  ASSERT_TRUE(writer.Commit(1).ok());
  // E.g. stale bytes from a previous, longer log generation.
  ASSERT_TRUE(wal.Append("trailing garbage").ok());

  ParsedWal parsed = LogReader::Parse(*wal.ReadAll());
  EXPECT_TRUE(parsed.committed);
  EXPECT_EQ(parsed.pages.size(), 1u);
}

TEST(LogWriterReaderTest, CommitCountMismatchIsTorn) {
  InMemoryWalStorage wal;
  LogWriter writer(&wal);
  std::string f0 = MakeFrame(0, 'a');
  ASSERT_TRUE(writer.AppendPageImage(0, f0.data()).ok());
  ASSERT_TRUE(writer.Commit(5).ok());  // claims 5 pages, log holds 1

  ParsedWal parsed = LogReader::Parse(*wal.ReadAll());
  EXPECT_FALSE(parsed.committed);
}

TEST(LogWriterReaderTest, EmptyAndHeaderOnlyAreTorn) {
  EXPECT_FALSE(LogReader::Parse("").committed);
  EXPECT_FALSE(LogReader::Parse("WSQ").committed);
}

class RecoverCheckpointTest : public ::testing::Test {
 protected:
  InMemoryWalStorage wal_;
  InMemoryDiskManager disk_;
};

TEST_F(RecoverCheckpointTest, NoLogMeansCleanShutdown) {
  auto r = RecoverCheckpoint(&wal_, &disk_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->action, WalRecoveryAction::kNone);
}

TEST_F(RecoverCheckpointTest, CommittedLogIsReplayed) {
  ASSERT_TRUE(disk_.AllocatePage().ok());
  std::string stale = MakeFrame(0, 's');
  ASSERT_TRUE(disk_.WritePage(0, stale.data()).ok());

  LogWriter writer(&wal_);
  std::string f0 = MakeFrame(0, 'n');  // new image for page 0
  std::string f3 = MakeFrame(3, 'x');  // beyond current EOF
  ASSERT_TRUE(writer.AppendPageImage(0, f0.data()).ok());
  ASSERT_TRUE(writer.AppendPageImage(3, f3.data()).ok());
  ASSERT_TRUE(writer.Commit(2).ok());

  auto r = RecoverCheckpoint(&wal_, &disk_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->action, WalRecoveryAction::kReplayed);
  EXPECT_EQ(r->pages_replayed, 2u);
  // Page 0 overwritten, file extended through page 3, log gone.
  EXPECT_EQ(disk_.NumPages(), 4);
  char in[kPageSize];
  ASSERT_TRUE(disk_.ReadPage(0, in).ok());
  EXPECT_EQ(std::memcmp(in, f0.data(), kPageSize), 0);
  ASSERT_TRUE(disk_.ReadPage(3, in).ok());
  EXPECT_EQ(std::memcmp(in, f3.data(), kPageSize), 0);
  EXPECT_FALSE(*wal_.Exists());
}

TEST_F(RecoverCheckpointTest, ReplayIsIdempotent) {
  LogWriter writer(&wal_);
  std::string f0 = MakeFrame(0, 'n');
  ASSERT_TRUE(writer.AppendPageImage(0, f0.data()).ok());
  ASSERT_TRUE(writer.Commit(1).ok());
  std::string log_bytes = *wal_.ReadAll();

  ASSERT_TRUE(RecoverCheckpoint(&wal_, &disk_).ok());
  // Crash before the truncate: the same log is replayed again.
  ASSERT_TRUE(wal_.Append(log_bytes).ok());
  auto r = RecoverCheckpoint(&wal_, &disk_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->action, WalRecoveryAction::kReplayed);
  char in[kPageSize];
  ASSERT_TRUE(disk_.ReadPage(0, in).ok());
  EXPECT_EQ(std::memcmp(in, f0.data(), kPageSize), 0);
}

TEST_F(RecoverCheckpointTest, TornLogIsDiscarded) {
  ASSERT_TRUE(disk_.AllocatePage().ok());
  std::string stale = MakeFrame(0, 's');
  ASSERT_TRUE(disk_.WritePage(0, stale.data()).ok());

  LogWriter writer(&wal_);
  std::string f0 = MakeFrame(0, 'n');
  ASSERT_TRUE(writer.AppendPageImage(0, f0.data()).ok());
  // No commit: the crash hit before the commit point.

  auto r = RecoverCheckpoint(&wal_, &disk_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->action, WalRecoveryAction::kDiscarded);
  EXPECT_FALSE(r->detail.empty());
  // The database file was not touched and the log is gone.
  char in[kPageSize];
  ASSERT_TRUE(disk_.ReadPage(0, in).ok());
  EXPECT_EQ(std::memcmp(in, stale.data(), kPageSize), 0);
  EXPECT_FALSE(*wal_.Exists());
}

TEST(FileWalStorageTest, AppendReadResetOnRealFile) {
  std::string path = ::testing::TempDir() + "/wsq_wal_test.wal";
  std::remove(path.c_str());
  {
    FileWalStorage wal(path, SyncPolicy::kFull);
    EXPECT_FALSE(*wal.Exists());
    ASSERT_TRUE(wal.Append("hello ").ok());
    ASSERT_TRUE(wal.Append("wal").ok());
    ASSERT_TRUE(wal.Sync().ok());
    EXPECT_TRUE(*wal.Exists());
    EXPECT_EQ(*wal.ReadAll(), "hello wal");
    ASSERT_TRUE(wal.Reset().ok());
    EXPECT_FALSE(*wal.Exists());
    // A reset log accepts new appends.
    ASSERT_TRUE(wal.Append("again").ok());
    EXPECT_EQ(*wal.ReadAll(), "again");
  }
  {
    // Contents survive close/reopen.
    FileWalStorage wal(path, SyncPolicy::kFull);
    EXPECT_TRUE(*wal.Exists());
    EXPECT_EQ(*wal.ReadAll(), "again");
    ASSERT_TRUE(wal.Reset().ok());
  }
  std::remove(path.c_str());
}

TEST(FileWalStorageTest, CheckpointProtocolOnRealFiles) {
  std::string db_path = ::testing::TempDir() + "/wsq_wal_proto.db";
  std::string wal_path = db_path + ".wal";
  std::remove(db_path.c_str());
  std::remove(wal_path.c_str());
  {
    auto disk = std::move(FileDiskManager::Open(db_path)).value();
    FileWalStorage wal(wal_path, SyncPolicy::kFull);
    LogWriter writer(&wal);
    std::string f0 = MakeFrame(0, 'q');
    ASSERT_TRUE(writer.AppendPageImage(0, f0.data()).ok());
    ASSERT_TRUE(writer.Commit(1).ok());

    auto r = RecoverCheckpoint(&wal, disk.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->action, WalRecoveryAction::kReplayed);
    char in[kPageSize];
    ASSERT_TRUE(disk->ReadPage(0, in).ok());
    EXPECT_EQ(std::memcmp(in + kPageHeaderSize, f0.data() + kPageHeaderSize,
                          kPageDataSize),
              0);
  }
  std::remove(db_path.c_str());
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace wsq
