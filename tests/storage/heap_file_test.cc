#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace wsq {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : pool_(16, &disk_), file_(&pool_) {}

  InMemoryDiskManager disk_;
  BufferPool pool_;
  HeapFile file_;
};

TEST_F(HeapFileTest, InsertGetRoundTrip) {
  auto rid = file_.Insert("hello world");
  ASSERT_TRUE(rid.ok());
  auto rec = file_.Get(*rid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, "hello world");
}

TEST_F(HeapFileTest, EmptyFileScansNothing) {
  HeapFileScanner scanner(&file_);
  auto more = scanner.Next(nullptr, nullptr);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
  EXPECT_EQ(*file_.Count(), 0);
}

TEST_F(HeapFileTest, EmptyRecordAllowed) {
  auto rid = file_.Insert("");
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(*file_.Get(*rid), "");
  EXPECT_EQ(*file_.Count(), 1);
}

TEST_F(HeapFileTest, ScanReturnsAllInInsertionOrder) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(file_.Insert("rec-" + std::to_string(i)).ok());
  }
  HeapFileScanner scanner(&file_);
  std::string rec;
  for (int i = 0; i < 10; ++i) {
    auto more = scanner.Next(nullptr, &rec);
    ASSERT_TRUE(more.ok() && *more);
    EXPECT_EQ(rec, "rec-" + std::to_string(i));
  }
  EXPECT_FALSE(*scanner.Next(nullptr, nullptr));
}

TEST_F(HeapFileTest, SpillsAcrossPages) {
  // ~500-byte records: 4096-byte pages hold at most 8 each.
  std::string big(500, 'x');
  const int kRecords = 40;
  std::set<PageId> pages;
  for (int i = 0; i < kRecords; ++i) {
    auto rid = file_.Insert(big + std::to_string(i));
    ASSERT_TRUE(rid.ok());
    pages.insert(rid->page_id);
  }
  EXPECT_GT(pages.size(), 3u);
  EXPECT_EQ(*file_.Count(), kRecords);

  HeapFileScanner scanner(&file_);
  std::string rec;
  int seen = 0;
  while (*scanner.Next(nullptr, &rec)) {
    EXPECT_EQ(rec, big + std::to_string(seen));
    ++seen;
  }
  EXPECT_EQ(seen, kRecords);
}

TEST_F(HeapFileTest, OversizedRecordRejected) {
  std::string huge(kPageSize, 'x');
  auto rid = file_.Insert(huge);
  EXPECT_FALSE(rid.ok());
  EXPECT_EQ(rid.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(HeapFileTest, MaximumSizedRecordAccepted) {
  // Page payload capacity minus heap header (8) and one slot (4).
  std::string max_rec(kPageDataSize - 12, 'y');
  auto rid = file_.Insert(max_rec);
  ASSERT_TRUE(rid.ok()) << rid.status().ToString();
  EXPECT_EQ(file_.Get(*rid)->size(), max_rec.size());
}

TEST_F(HeapFileTest, DeleteHidesRecordFromScan) {
  Rid keep = *file_.Insert("keep");
  Rid gone = *file_.Insert("gone");
  ASSERT_TRUE(file_.Delete(gone).ok());

  EXPECT_TRUE(file_.Get(keep).ok());
  EXPECT_EQ(file_.Get(gone).status().code(), StatusCode::kNotFound);

  HeapFileScanner scanner(&file_);
  std::string rec;
  ASSERT_TRUE(*scanner.Next(nullptr, &rec));
  EXPECT_EQ(rec, "keep");
  EXPECT_FALSE(*scanner.Next(nullptr, nullptr));
  EXPECT_EQ(*file_.Count(), 1);
}

TEST_F(HeapFileTest, DoubleDeleteFails) {
  Rid rid = *file_.Insert("x");
  ASSERT_TRUE(file_.Delete(rid).ok());
  EXPECT_FALSE(file_.Delete(rid).ok());
}

TEST_F(HeapFileTest, GetBadSlotFails) {
  Rid rid = *file_.Insert("x");
  Rid bad{rid.page_id, 99};
  EXPECT_FALSE(file_.Get(bad).ok());
}

TEST_F(HeapFileTest, ScannerResetRestarts) {
  ASSERT_TRUE(file_.Insert("a").ok());
  ASSERT_TRUE(file_.Insert("b").ok());
  HeapFileScanner scanner(&file_);
  std::string rec;
  ASSERT_TRUE(*scanner.Next(nullptr, &rec));
  scanner.Reset();
  ASSERT_TRUE(*scanner.Next(nullptr, &rec));
  EXPECT_EQ(rec, "a");
}

TEST_F(HeapFileTest, RidsReportedBackByScan) {
  Rid r1 = *file_.Insert("one");
  Rid r2 = *file_.Insert("two");
  HeapFileScanner scanner(&file_);
  Rid rid;
  std::string rec;
  ASSERT_TRUE(*scanner.Next(&rid, &rec));
  EXPECT_EQ(rid, r1);
  ASSERT_TRUE(*scanner.Next(&rid, &rec));
  EXPECT_EQ(rid, r2);
}

TEST_F(HeapFileTest, ReopenedFileAppendsAtTrueTail) {
  // Build a multi-page chain, then reopen from the first page id — the
  // first insert must locate the tail instead of clobbering page one's
  // next pointer.
  std::string big(700, 'q');
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(file_.Insert(big + std::to_string(i)).ok());
  }
  PageId first = file_.first_page();
  ASSERT_NE(first, kInvalidPageId);

  HeapFile reopened(&pool_, first);
  ASSERT_TRUE(reopened.Insert("appended-after-reopen").ok());
  EXPECT_EQ(*reopened.Count(), 31);

  // Every original record is still reachable.
  HeapFileScanner scanner(&reopened);
  std::string rec;
  int seen = 0;
  bool found_appended = false;
  while (*scanner.Next(nullptr, &rec)) {
    ++seen;
    if (rec == "appended-after-reopen") found_appended = true;
  }
  EXPECT_EQ(seen, 31);
  EXPECT_TRUE(found_appended);
}

TEST_F(HeapFileTest, WorksWithTinyBufferPool) {
  // Pool smaller than the number of pages forces eviction during scan.
  InMemoryDiskManager disk;
  BufferPool pool(2, &disk);
  HeapFile file(&pool);
  std::string rec(800, 'z');
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(file.Insert(rec + std::to_string(i)).ok());
  }
  EXPECT_EQ(*file.Count(), 30);
}

}  // namespace
}  // namespace wsq
