#include "storage/checksum.h"

#include <gtest/gtest.h>

#include <cstring>

namespace wsq {
namespace {

TEST(Crc32cTest, KnownVector) {
  // The CRC-32C check value from RFC 3720 §B.4.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInput) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const char data[] = "hello, crc32c world";
  const size_t n = sizeof(data) - 1;
  uint32_t one_shot = Crc32c(data, n);
  // Stream the same bytes in three uneven chunks.
  uint32_t state = kCrc32cInit;
  state = ExtendCrc32c(state, data, 5);
  state = ExtendCrc32c(state, data + 5, 1);
  state = ExtendCrc32c(state, data + 6, n - 6);
  EXPECT_EQ(FinishCrc32c(state), one_shot);
}

TEST(Crc32cTest, SensitiveToSingleBit) {
  char a[64], b[64];
  std::memset(a, 0x41, sizeof(a));
  std::memcpy(b, a, sizeof(a));
  b[17] ^= 0x04;
  EXPECT_NE(Crc32c(a, sizeof(a)), Crc32c(b, sizeof(b)));
}

class PageHeaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::memset(frame_, 0, kPageSize);
    std::memset(frame_ + kPageHeaderSize, 0x5c, 100);
    StampPageHeader(/*page_id=*/3, /*lsn=*/42, frame_);
  }
  char frame_[kPageSize];
};

TEST_F(PageHeaderTest, StampVerifyRoundTrip) {
  EXPECT_TRUE(VerifyPageHeader(3, frame_).ok());
  EXPECT_EQ(PageHeaderLsn(frame_), 42u);
}

TEST_F(PageHeaderTest, DetectsPayloadCorruption) {
  frame_[kPageHeaderSize + 50] ^= 0x01;
  Status s = VerifyPageHeader(3, frame_);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST_F(PageHeaderTest, DetectsHeaderCorruption) {
  frame_[16] ^= 0x01;  // LSN field, covered by the CRC
  EXPECT_EQ(VerifyPageHeader(3, frame_).code(), StatusCode::kDataLoss);
}

TEST_F(PageHeaderTest, DetectsMisdirectedWrite) {
  // A frame stamped for page 3 landing at page 5's offset.
  EXPECT_EQ(VerifyPageHeader(5, frame_).code(), StatusCode::kDataLoss);
}

TEST_F(PageHeaderTest, DetectsBadMagic) {
  frame_[0] = 'J';
  EXPECT_EQ(VerifyPageHeader(3, frame_).code(), StatusCode::kDataLoss);
}

TEST_F(PageHeaderTest, RestampAfterEditVerifies) {
  frame_[kPageHeaderSize + 10] = 'z';
  EXPECT_FALSE(VerifyPageHeader(3, frame_).ok());
  StampPageHeader(3, /*lsn=*/43, frame_);
  EXPECT_TRUE(VerifyPageHeader(3, frame_).ok());
  EXPECT_EQ(PageHeaderLsn(frame_), 43u);
}

}  // namespace
}  // namespace wsq
