#include "storage/serde.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(SerdeTest, RoundTripAllTypes) {
  Row row({Value::Null(), Value::Int(-7), Value::Real(3.25),
           Value::Str("hello")});
  auto bytes = SerializeRow(row);
  ASSERT_TRUE(bytes.ok());
  auto back = DeserializeRow(*bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, row);
}

TEST(SerdeTest, EmptyRow) {
  Row row;
  auto back = DeserializeRow(*SerializeRow(row));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
}

TEST(SerdeTest, EmptyString) {
  Row row({Value::Str("")});
  auto back = DeserializeRow(*SerializeRow(row));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->value(0).AsString(), "");
}

TEST(SerdeTest, StringWithEmbeddedNulAndBinary) {
  std::string s("a\0b\xff", 4);
  Row row({Value::Str(s)});
  auto back = DeserializeRow(*SerializeRow(row));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->value(0).AsString(), s);
}

TEST(SerdeTest, ExtremeNumericValues) {
  Row row({Value::Int(INT64_MIN), Value::Int(INT64_MAX),
           Value::Real(-0.0), Value::Real(1e300)});
  auto back = DeserializeRow(*SerializeRow(row));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->value(0).AsInt(), INT64_MIN);
  EXPECT_EQ(back->value(1).AsInt(), INT64_MAX);
  EXPECT_DOUBLE_EQ(back->value(3).AsDouble(), 1e300);
}

TEST(SerdeTest, PlaceholderRejected) {
  Row row({Value::Pending(3, 0)});
  auto bytes = SerializeRow(row);
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kInternal);
}

TEST(SerdeTest, CorruptInputsRejected) {
  EXPECT_FALSE(DeserializeRow("").ok());
  EXPECT_FALSE(DeserializeRow("ab").ok());
  // Claimed arity 1 but no data.
  std::string claim("\x01\x00\x00\x00", 4);
  EXPECT_FALSE(DeserializeRow(claim).ok());
  // Valid row plus trailing garbage.
  std::string good = *SerializeRow(Row({Value::Int(1)}));
  EXPECT_FALSE(DeserializeRow(good + "x").ok());
  // Bad type tag.
  std::string bad_tag("\x01\x00\x00\x00\x63", 5);
  EXPECT_FALSE(DeserializeRow(bad_tag).ok());
}

TEST(SerdeTest, ManyColumns) {
  Row row;
  for (int i = 0; i < 200; ++i) row.Append(Value::Int(i));
  auto back = DeserializeRow(*SerializeRow(row));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, row);
}

}  // namespace
}  // namespace wsq
