#include "storage/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"

namespace wsq {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  BPlusTreeTest() : pool_(256, &disk_), tree_(&pool_) {}

  static Rid MakeRid(int i) {
    return Rid{static_cast<PageId>(i / 100),
               static_cast<uint16_t>(i % 100)};
  }

  InMemoryDiskManager disk_;
  BufferPool pool_;
  BPlusTree tree_;
};

TEST_F(BPlusTreeTest, KeyEncodingRoundTrip) {
  for (const Value& v :
       {Value::Int(0), Value::Int(-1), Value::Int(INT64_MIN),
        Value::Int(INT64_MAX), Value::Real(-2.5), Value::Real(0.0),
        Value::Real(1e18), Value::Str(""), Value::Str("colorado")}) {
    auto encoded = EncodeBTreeKey(v);
    ASSERT_TRUE(encoded.ok()) << v.ToString();
    auto back = DecodeBTreeKey(*encoded);
    ASSERT_TRUE(back.ok()) << v.ToString();
    EXPECT_EQ(back->Compare(v), 0) << v.ToString();
  }
}

TEST_F(BPlusTreeTest, KeyEncodingPreservesOrder) {
  // Byte order of encodings must equal value order.
  std::vector<Value> ints = {Value::Int(INT64_MIN), Value::Int(-100),
                             Value::Int(-1), Value::Int(0),
                             Value::Int(1), Value::Int(99999),
                             Value::Int(INT64_MAX)};
  for (size_t i = 1; i < ints.size(); ++i) {
    EXPECT_LT(*EncodeBTreeKey(ints[i - 1]), *EncodeBTreeKey(ints[i]));
  }
  std::vector<Value> doubles = {Value::Real(-1e30), Value::Real(-1.5),
                                Value::Real(-0.0), Value::Real(0.25),
                                Value::Real(7.0), Value::Real(1e30)};
  for (size_t i = 1; i < doubles.size(); ++i) {
    EXPECT_LE(*EncodeBTreeKey(doubles[i - 1]),
              *EncodeBTreeKey(doubles[i]));
  }
  EXPECT_LT(*EncodeBTreeKey(Value::Str("alpha")),
            *EncodeBTreeKey(Value::Str("beta")));
}

TEST_F(BPlusTreeTest, InvalidKeysRejected) {
  EXPECT_FALSE(EncodeBTreeKey(Value::Null()).ok());
  EXPECT_FALSE(EncodeBTreeKey(Value::Str(std::string(100, 'x'))).ok());
  EXPECT_FALSE(tree_.Insert(Value::Null(), MakeRid(1)).ok());
}

TEST_F(BPlusTreeTest, EmptyTreeBehaviour) {
  EXPECT_EQ(tree_.root(), kInvalidPageId);
  EXPECT_TRUE(tree_.SearchEqual(Value::Int(1))->empty());
  EXPECT_TRUE(tree_.ScanAll()->empty());
  EXPECT_FALSE(tree_.Remove(Value::Int(1), MakeRid(0)).ok());
  EXPECT_TRUE(tree_.CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, InsertAndSearchSingle) {
  ASSERT_TRUE(tree_.Insert(Value::Str("colorado"), MakeRid(7)).ok());
  auto rids = *tree_.SearchEqual(Value::Str("colorado"));
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], MakeRid(7));
  EXPECT_TRUE(tree_.SearchEqual(Value::Str("utah"))->empty());
}

TEST_F(BPlusTreeTest, DuplicateEntryRejectedButDuplicateKeysAllowed) {
  ASSERT_TRUE(tree_.Insert(Value::Int(5), MakeRid(1)).ok());
  EXPECT_FALSE(tree_.Insert(Value::Int(5), MakeRid(1)).ok());
  ASSERT_TRUE(tree_.Insert(Value::Int(5), MakeRid(2)).ok());
  auto rids = *tree_.SearchEqual(Value::Int(5));
  ASSERT_EQ(rids.size(), 2u);
  EXPECT_EQ(rids[0], MakeRid(1));
  EXPECT_EQ(rids[1], MakeRid(2));
}

TEST_F(BPlusTreeTest, ManyInsertsForceSplits) {
  // Leaf capacity is ~58, so 2000 entries build a multi-level tree.
  const int kEntries = 2000;
  for (int i = 0; i < kEntries; ++i) {
    ASSERT_TRUE(tree_.Insert(Value::Int(i), MakeRid(i)).ok()) << i;
  }
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  EXPECT_EQ(*tree_.Count(), kEntries);
  for (int i : {0, 1, 57, 58, 999, 1999}) {
    auto rids = *tree_.SearchEqual(Value::Int(i));
    ASSERT_EQ(rids.size(), 1u) << i;
    EXPECT_EQ(rids[0], MakeRid(i)) << i;
  }
  EXPECT_TRUE(tree_.SearchEqual(Value::Int(kEntries))->empty());
}

TEST_F(BPlusTreeTest, RandomOrderInsertsStaySorted) {
  Rng rng(42);
  std::vector<int> keys;
  for (int i = 0; i < 1500; ++i) keys.push_back(i);
  // Fisher-Yates with our deterministic Rng.
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Uniform(i)]);
  }
  for (int k : keys) {
    ASSERT_TRUE(tree_.Insert(Value::Int(k), MakeRid(k)).ok()) << k;
  }
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  auto all = *tree_.ScanAll();
  ASSERT_EQ(all.size(), 1500u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].first.AsInt(), static_cast<int64_t>(i));
    EXPECT_EQ(all[i].second, MakeRid(static_cast<int>(i)));
  }
}

TEST_F(BPlusTreeTest, StringKeysAcrossSplits) {
  for (int i = 0; i < 500; ++i) {
    std::string key = "key" + std::to_string(1000 + i);
    ASSERT_TRUE(tree_.Insert(Value::Str(key), MakeRid(i)).ok());
  }
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  auto rids = *tree_.SearchEqual(Value::Str("key1234"));
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], MakeRid(234));
}

TEST_F(BPlusTreeTest, HeavyDuplicatesSpanLeaves) {
  // 300 copies of one key must all come back, in rid order, even when
  // the run spans multiple leaves.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree_.Insert(Value::Str("dup"), MakeRid(i)).ok()) << i;
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree_.Insert(Value::Str("aaa"), MakeRid(1000 + i)).ok());
    ASSERT_TRUE(tree_.Insert(Value::Str("zzz"), MakeRid(2000 + i)).ok());
  }
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  auto rids = *tree_.SearchEqual(Value::Str("dup"));
  ASSERT_EQ(rids.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(rids[i], MakeRid(i)) << i;
  }
}

TEST_F(BPlusTreeTest, RemoveEntries) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree_.Insert(Value::Int(i), MakeRid(i)).ok());
  }
  // Remove the evens.
  for (int i = 0; i < 200; i += 2) {
    ASSERT_TRUE(tree_.Remove(Value::Int(i), MakeRid(i)).ok()) << i;
  }
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  EXPECT_EQ(*tree_.Count(), 100);
  EXPECT_TRUE(tree_.SearchEqual(Value::Int(4))->empty());
  EXPECT_EQ(tree_.SearchEqual(Value::Int(5))->size(), 1u);
  // Removing again fails.
  EXPECT_FALSE(tree_.Remove(Value::Int(4), MakeRid(4)).ok());
  // Wrong rid fails even when the key exists.
  EXPECT_FALSE(tree_.Remove(Value::Int(5), MakeRid(999)).ok());
}

TEST_F(BPlusTreeTest, MixedInsertRemoveAgainstReferenceModel) {
  Rng rng(7);
  std::map<std::pair<int64_t, int>, bool> model;  // (key, rid idx)
  for (int step = 0; step < 3000; ++step) {
    int key = static_cast<int>(rng.Uniform(80));
    int rid_idx = static_cast<int>(rng.Uniform(20));
    auto model_key = std::make_pair(static_cast<int64_t>(key), rid_idx);
    bool exists = model.count(model_key) > 0;
    if (rng.Bernoulli(0.6)) {
      Status s = tree_.Insert(Value::Int(key), MakeRid(rid_idx));
      EXPECT_EQ(s.ok(), !exists) << "step " << step;
      if (s.ok()) model[model_key] = true;
    } else {
      Status s = tree_.Remove(Value::Int(key), MakeRid(rid_idx));
      EXPECT_EQ(s.ok(), exists) << "step " << step;
      if (s.ok()) model.erase(model_key);
    }
  }
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  EXPECT_EQ(*tree_.Count(), static_cast<int64_t>(model.size()));
  // Spot-check per-key result sets.
  for (int key = 0; key < 80; ++key) {
    std::vector<Rid> expected;
    for (int rid_idx = 0; rid_idx < 20; ++rid_idx) {
      if (model.count({key, rid_idx}) > 0) {
        expected.push_back(MakeRid(rid_idx));
      }
    }
    auto got = *tree_.SearchEqual(Value::Int(key));
    ASSERT_EQ(got.size(), expected.size()) << key;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << key;
    }
  }
}

TEST_F(BPlusTreeTest, ReopenFromRootPage) {
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(tree_.Insert(Value::Int(i), MakeRid(i)).ok());
  }
  PageId root = tree_.root();
  ASSERT_NE(root, kInvalidPageId);

  BPlusTree reopened(&pool_, root);
  EXPECT_EQ(*reopened.Count(), 400);
  EXPECT_EQ(reopened.SearchEqual(Value::Int(123))->size(), 1u);
  ASSERT_TRUE(reopened.CheckInvariants().ok());
  // And it accepts further inserts.
  ASSERT_TRUE(reopened.Insert(Value::Int(400), MakeRid(400)).ok());
  EXPECT_EQ(*reopened.Count(), 401);
}

TEST_F(BPlusTreeTest, SearchRangeBasics) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_.Insert(Value::Int(i * 2), MakeRid(i)).ok());
  }
  Value lo = Value::Int(100), hi = Value::Int(110);
  auto both = *tree_.SearchRange(&lo, true, &hi, true);
  ASSERT_EQ(both.size(), 6u);  // 100,102,...,110
  auto exclusive = *tree_.SearchRange(&lo, false, &hi, false);
  EXPECT_EQ(exclusive.size(), 4u);
  // Missing endpoints behave like open bounds.
  Value odd_lo = Value::Int(101), odd_hi = Value::Int(109);
  EXPECT_EQ(tree_.SearchRange(&odd_lo, true, &odd_hi, true)->size(), 4u);
}

TEST_F(BPlusTreeTest, SearchRangeUnbounded) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree_.Insert(Value::Int(i), MakeRid(i)).ok());
  }
  Value mid = Value::Int(150);
  EXPECT_EQ(tree_.SearchRange(nullptr, true, &mid, false)->size(), 150u);
  EXPECT_EQ(tree_.SearchRange(&mid, true, nullptr, true)->size(), 150u);
  EXPECT_EQ(tree_.SearchRange(nullptr, true, nullptr, true)->size(),
            300u);
}

TEST_F(BPlusTreeTest, SearchRangeWithDuplicatesAcrossLeaves) {
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(tree_.Insert(Value::Int(7), MakeRid(i)).ok());
    ASSERT_TRUE(tree_.Insert(Value::Int(9), MakeRid(1000 + i)).ok());
  }
  Value lo = Value::Int(7), hi = Value::Int(7);
  EXPECT_EQ(tree_.SearchRange(&lo, true, &hi, true)->size(), 120u);
  Value eight = Value::Int(8);
  EXPECT_EQ(tree_.SearchRange(&lo, false, &eight, true)->size(), 0u);
  Value nine = Value::Int(9);
  EXPECT_EQ(tree_.SearchRange(&eight, true, &nine, true)->size(), 120u);
}

TEST_F(BPlusTreeTest, SearchRangeStringKeys) {
  for (const char* k : {"apple", "banana", "cherry", "date", "elder"}) {
    ASSERT_TRUE(tree_.Insert(Value::Str(k), MakeRid(0)).ok());
  }
  Value lo = Value::Str("b"), hi = Value::Str("d");
  EXPECT_EQ(tree_.SearchRange(&lo, true, &hi, true)->size(), 2u);
}

TEST_F(BPlusTreeTest, DoubleKeys) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        tree_.Insert(Value::Real(i * 0.5 - 50), MakeRid(i)).ok());
  }
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  auto rids = *tree_.SearchEqual(Value::Real(-50.0));
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], MakeRid(0));
  EXPECT_EQ(tree_.SearchEqual(Value::Real(0.25))->size(), 0u);
}

}  // namespace
}  // namespace wsq
