#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/memory.h"
#include "common/random.h"
#include "exec/executor.h"
#include "parser/parser.h"
#include "plan/binder.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_disk.h"
#include "storage/spill.h"

namespace wsq {
namespace {

// SpillManager whose devices run behind the PR 2 fault-injection
// harness: an InMemoryDiskManager "durable" store wrapped by a
// FaultInjectingDiskManager, all sharing one FaultController so a plan
// can target the Nth spill write of a query. Counts device cleanups so
// the sweep can assert scratch space is reclaimed on every path.
class FaultySpillManager : public SpillManager {
 public:
  explicit FaultySpillManager(FaultController* ctl) : ctl_(ctl) {}

  size_t cleanups() const {
    return cleanups_.load(std::memory_order_relaxed);
  }

 protected:
  Result<Device> NewDevice() override {
    auto store = std::make_unique<InMemoryDiskManager>();
    Device d;
    d.disk =
        std::make_unique<FaultInjectingDiskManager>(store.get(), ctl_);
    // The decorator holds a raw pointer to the store; keep the store
    // alive until the SpillFile's cleanup runs (after disk_.reset()).
    InMemoryDiskManager* raw = store.release();
    d.cleanup = [this, raw] {
      delete raw;
      cleanups_.fetch_add(1, std::memory_order_relaxed);
    };
    return d;
  }

 private:
  FaultController* ctl_;
  std::atomic<size_t> cleanups_{0};
};

// Write/read roundtrip directly against a faulty device.
TEST(SpillCrashTest, WriterSurfacesInjectedWriteFailure) {
  FaultController ctl(DiskFaultPlan{.seed = 1, .fail_at_op = 3});
  FaultySpillManager mgr(&ctl);
  auto file = mgr.Create();
  ASSERT_TRUE(file.ok());
  SpillWriter writer(file->get());
  std::string record(kPageDataSize, 'x');  // one page per append
  Status status = Status::OK();
  for (int i = 0; i < 8 && status.ok(); ++i) {
    status = writer.Append(record);
  }
  auto finished = writer.Finish();
  EXPECT_TRUE(!status.ok() || !finished.ok());
  file->reset();
  EXPECT_EQ(mgr.active_files(), 0u);
  EXPECT_EQ(mgr.cleanups(), 1u);
}

TEST(SpillCrashTest, ReaderSurfacesBitRotAsDataLoss) {
  FaultController ctl(DiskFaultPlan{.seed = 11});
  FaultySpillManager mgr(&ctl);
  auto file = mgr.Create();
  ASSERT_TRUE(file.ok());
  SpillWriter writer(file->get());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(writer.Append("record-" + std::to_string(i)).ok());
  }
  auto run = writer.Finish();
  ASSERT_TRUE(run.ok());

  // Corrupt every page read from here on: the checksum must catch it.
  ctl.set_plan(DiskFaultPlan{.seed = 11, .read_bit_flip_rate = 1.0});
  SpillReader reader(file->get(), *run);
  std::string record;
  auto next = reader.Next(&record);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kDataLoss);
  file->reset();
  EXPECT_EQ(mgr.active_files(), 0u);
}

// End-to-end sweep: a sort query forced to spill, with a fault injected
// at every mutating-op index in turn. Each run must either complete
// with rows byte-identical to the fault-free reference or fail with a
// clean error status — and always release its reservations and its
// spill scratch files.
class SpillCrashSweepTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 600;
  static constexpr size_t kBudget = 4 * 1024;

  SpillCrashSweepTest() : pool_(64, &disk_), catalog_(&pool_) {
    TableInfo* t = *catalog_.CreateTable(
        "T", Schema({Column("K", TypeId::kString),
                     Column("V", TypeId::kInt64)}));
    Rng rng(23);
    for (size_t i = 0; i < kRows; ++i) {
      EXPECT_TRUE(
          t->Insert(Row({Value::Str("k" + std::to_string(rng.Uniform(97))),
                         Value::Int(static_cast<int64_t>(i))}))
              .ok());
    }
    auto stmt = Parser::ParseSelect("SELECT K, V FROM T ORDER BY K");
    EXPECT_TRUE(stmt.ok());
    Binder binder(&catalog_, &vtables_);
    auto plan = binder.Bind(**stmt);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = std::move(plan).value();
  }

  /// One governed execution against `mgr`; returns the status and, on
  /// success, the rows.
  Result<ResultSet> RunOnce(SpillManager* mgr) {
    MemoryBudget budget("sweep-query", kBudget);
    ExecContext ctx;
    ctx.memory = &budget;
    ctx.spill = mgr;
    auto result = ExecutePlan(*plan_, &ctx);
    EXPECT_EQ(budget.used(), 0u) << "leaked reservation";
    EXPECT_EQ(mgr->active_files(), 0u) << "leaked spill file";
    return result;
  }

  InMemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  VirtualTableRegistry vtables_;
  PlanNodePtr plan_;
};

TEST_F(SpillCrashSweepTest, FailAtEveryOpCompletesOrFailsCleanly) {
  // Fault-free reference (still spilling: the budget forces runs).
  FaultController ok_ctl;
  FaultySpillManager ok_mgr(&ok_ctl);
  auto reference = RunOnce(&ok_mgr);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->rows.size(), kRows);
  uint64_t total_ops = ok_ctl.stats().ops;
  ASSERT_GT(total_ops, 8u) << "workload did not spill";

  size_t completed = 0, failed = 0;
  // Stride 3 keeps the sweep fast while still hitting allocation,
  // write, and merge-phase ops.
  for (uint64_t op = 1; op <= total_ops; op += 3) {
    FaultController ctl(DiskFaultPlan{.seed = op, .fail_at_op = op});
    FaultySpillManager mgr(&ctl);
    auto result = RunOnce(&mgr);
    if (result.ok()) {
      ++completed;
      ASSERT_EQ(result->rows.size(), reference->rows.size())
          << "fail_at_op=" << op;
      for (size_t i = 0; i < result->rows.size(); ++i) {
        ASSERT_EQ(result->rows[i], reference->rows[i])
            << "fail_at_op=" << op << " row " << i;
      }
    } else {
      ++failed;
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  // Every injected fault hit a mutating spill op, so every run fails;
  // the point of the sweep is that each failure is clean.
  EXPECT_GT(failed, 0u);
  EXPECT_EQ(completed, 0u);
}

TEST_F(SpillCrashSweepTest, PowerLossMidSpillFailsCleanly) {
  constexpr uint64_t kCrashOps[] = {2, 7, 19, 31};
  constexpr int64_t kTornBytes[] = {-1, 137};
  for (uint64_t op : kCrashOps) {
    for (int64_t torn : kTornBytes) {
      DiskFaultPlan plan;
      plan.seed = op;
      plan.crash_at_op = op;
      plan.torn_bytes = torn;
      FaultController ctl(plan);
      FaultySpillManager mgr(&ctl);
      auto result = RunOnce(&mgr);
      ASSERT_FALSE(result.ok())
          << "crash_at_op=" << op << " torn=" << torn;
      EXPECT_TRUE(ctl.stats().crashed);
    }
  }
}

TEST_F(SpillCrashSweepTest, BitRotNeverReturnsWrongRows) {
  FaultController ok_ctl;
  FaultySpillManager ok_mgr(&ok_ctl);
  auto reference = RunOnce(&ok_mgr);
  ASSERT_TRUE(reference.ok());

  size_t data_loss = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    DiskFaultPlan plan;
    plan.seed = seed;
    plan.read_bit_flip_rate = 0.25;
    FaultController ctl(plan);
    FaultySpillManager mgr(&ctl);
    auto result = RunOnce(&mgr);
    if (result.ok()) {
      // The flipped pages happened to miss this query's reads; the
      // answer must still be exact.
      ASSERT_EQ(result->rows.size(), reference->rows.size());
      for (size_t i = 0; i < result->rows.size(); ++i) {
        ASSERT_EQ(result->rows[i], reference->rows[i]) << "seed " << seed;
      }
    } else {
      ++data_loss;
      EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
          << result.status().ToString();
    }
  }
  EXPECT_GT(data_loss, 0u) << "sweep never exercised a corrupt read";
}

}  // namespace
}  // namespace wsq
