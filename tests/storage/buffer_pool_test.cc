#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "storage/fault_disk.h"

namespace wsq {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  InMemoryDiskManager disk_;
};

TEST_F(BufferPoolTest, NewPageIsPinnedAndZeroed) {
  BufferPool pool(4, &disk_);
  auto r = pool.NewPage();
  ASSERT_TRUE(r.ok());
  Page* page = *r;
  EXPECT_EQ(page->page_id(), 0);
  EXPECT_EQ(page->pin_count(), 1);
  for (size_t i = 0; i < kPageDataSize; ++i) ASSERT_EQ(page->data()[i], 0);
  ASSERT_TRUE(pool.UnpinPage(0, false).ok());
}

TEST_F(BufferPoolTest, FetchHitAfterNew) {
  BufferPool pool(4, &disk_);
  Page* page = *pool.NewPage();
  std::strcpy(page->data(), "hello");
  ASSERT_TRUE(pool.UnpinPage(page->page_id(), true).ok());

  Page* again = *pool.FetchPage(0);
  EXPECT_STREQ(again->data(), "hello");
  EXPECT_EQ(pool.stats().hits, 1u);
  ASSERT_TRUE(pool.UnpinPage(0, false).ok());
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  BufferPool pool(2, &disk_);
  for (int i = 0; i < 2; ++i) {
    Page* p = *pool.NewPage();
    std::snprintf(p->data(), 16, "page-%d", i);
    ASSERT_TRUE(pool.UnpinPage(i, true).ok());
  }
  // Filling two more frames evicts pages 0 and 1.
  for (int i = 2; i < 4; ++i) {
    Page* p = *pool.NewPage();
    ASSERT_TRUE(pool.UnpinPage(p->page_id(), false).ok());
  }
  EXPECT_GE(pool.stats().evictions, 2u);
  // Page 0 must round-trip through disk.
  Page* p0 = *pool.FetchPage(0);
  EXPECT_STREQ(p0->data(), "page-0");
  ASSERT_TRUE(pool.UnpinPage(0, false).ok());
}

TEST_F(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  BufferPool pool(2, &disk_);
  Page* a = *pool.NewPage();  // page 0
  ASSERT_TRUE(pool.UnpinPage(a->page_id(), true).ok());
  Page* b = *pool.NewPage();  // page 1
  ASSERT_TRUE(pool.UnpinPage(b->page_id(), true).ok());

  // Touch page 0 so page 1 becomes LRU.
  ASSERT_TRUE(pool.FetchPage(0).ok());
  ASSERT_TRUE(pool.UnpinPage(0, false).ok());

  ASSERT_TRUE(pool.NewPage().ok());  // evicts page 1
  ASSERT_TRUE(pool.UnpinPage(2, false).ok());

  uint64_t misses_before = pool.stats().misses;
  ASSERT_TRUE(pool.FetchPage(0).ok());  // still resident → hit
  ASSERT_TRUE(pool.UnpinPage(0, false).ok());
  EXPECT_EQ(pool.stats().misses, misses_before);

  ASSERT_TRUE(pool.FetchPage(1).ok());  // evicted → miss
  ASSERT_TRUE(pool.UnpinPage(1, false).ok());
  EXPECT_EQ(pool.stats().misses, misses_before + 1);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(2, &disk_);
  Page* a = *pool.NewPage();
  Page* b = *pool.NewPage();
  (void)a;
  (void)b;
  // Both frames pinned: next allocation must fail.
  auto r = pool.NewPage();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(pool.UnpinPage(0, false).ok());
  ASSERT_TRUE(pool.UnpinPage(1, false).ok());
  EXPECT_TRUE(pool.NewPage().ok());
}

TEST_F(BufferPoolTest, DoubleUnpinFails) {
  BufferPool pool(2, &disk_);
  Page* p = *pool.NewPage();
  ASSERT_TRUE(pool.UnpinPage(p->page_id(), false).ok());
  EXPECT_FALSE(pool.UnpinPage(p->page_id(), false).ok());
}

TEST_F(BufferPoolTest, UnpinNonResidentFails) {
  BufferPool pool(2, &disk_);
  EXPECT_FALSE(pool.UnpinPage(42, false).ok());
}

TEST_F(BufferPoolTest, FlushAllPersistsDirtyPages) {
  BufferPool pool(4, &disk_);
  Page* p = *pool.NewPage();
  std::strcpy(p->data(), "durable");
  ASSERT_TRUE(pool.UnpinPage(0, true).ok());
  ASSERT_TRUE(pool.FlushAll().ok());

  char raw[kPageSize];
  ASSERT_TRUE(disk_.ReadPage(0, raw).ok());
  // The pool writes whole frames; the payload sits past the header.
  EXPECT_STREQ(raw + kPageHeaderSize, "durable");
}

TEST_F(BufferPoolTest, FlushAllContinuesPastFailingPage) {
  FaultController ctl;
  FaultInjectingDiskManager faulty(&disk_, &ctl);
  BufferPool pool(4, &faulty);
  for (int i = 0; i < 3; ++i) {  // ops 1-3: allocations
    Page* p = *pool.NewPage();
    std::snprintf(p->data(), 16, "page-%d", i);
    ASSERT_TRUE(pool.UnpinPage(i, true).ok());
  }

  // Fail the first write FlushAll issues; the other two must still
  // reach the disk and the first error must be reported.
  DiskFaultPlan plan;
  plan.fail_at_op = 4;
  ctl.set_plan(plan);
  Status s = pool.FlushAll();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(pool.stats().flush_failures, 1u);

  // The failed page stayed dirty, so a retry completes the flush; all
  // three pages then read back from the disk.
  ctl.set_plan(DiskFaultPlan{});
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_TRUE(pool.FlushAll().ok());  // nothing left dirty
  EXPECT_EQ(pool.stats().flush_failures, 1u);
  ASSERT_TRUE(faulty.Sync().ok());
  for (int i = 0; i < 3; ++i) {
    char frame[kPageSize];
    ASSERT_TRUE(faulty.ReadPage(i, frame).ok());
    char expect[16];
    std::snprintf(expect, 16, "page-%d", i);
    EXPECT_STREQ(frame + kPageHeaderSize, expect);
  }
}

TEST_F(BufferPoolTest, MultiplePinsRequireMultipleUnpins) {
  BufferPool pool(2, &disk_);
  Page* p = *pool.NewPage();
  Page* same = *pool.FetchPage(p->page_id());
  EXPECT_EQ(same, p);
  EXPECT_EQ(p->pin_count(), 2);
  ASSERT_TRUE(pool.UnpinPage(0, false).ok());
  EXPECT_EQ(p->pin_count(), 1);
  ASSERT_TRUE(pool.UnpinPage(0, false).ok());
  EXPECT_EQ(p->pin_count(), 0);
}

TEST_F(BufferPoolTest, PageGuardUnpinsOnScopeExit) {
  BufferPool pool(2, &disk_);
  Page* p = *pool.NewPage();
  {
    PageGuard guard(&pool, p);
    EXPECT_EQ(p->pin_count(), 1);
  }
  EXPECT_EQ(p->pin_count(), 0);
}

TEST_F(BufferPoolTest, StressManyPagesSmallPool) {
  BufferPool pool(3, &disk_);
  const int kPages = 50;
  for (int i = 0; i < kPages; ++i) {
    Page* p = *pool.NewPage();
    std::snprintf(p->data(), 16, "v-%d", i);
    ASSERT_TRUE(pool.UnpinPage(p->page_id(), true).ok());
  }
  for (int i = 0; i < kPages; ++i) {
    Page* p = *pool.FetchPage(i);
    char expect[16];
    std::snprintf(expect, 16, "v-%d", i);
    ASSERT_STREQ(p->data(), expect);
    ASSERT_TRUE(pool.UnpinPage(i, false).ok());
  }
}

}  // namespace
}  // namespace wsq
