#include "data/datasets.h"

#include <gtest/gtest.h>

#include <set>

namespace wsq {
namespace {

TEST(DatasetsTest, FiftyStatesWithPlausible1998Populations) {
  const auto& states = UsStates1998();
  ASSERT_EQ(states.size(), 50u);
  int64_t total = 0;
  std::set<std::string> names, capitals;
  for (const StateRecord& s : states) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.capital.empty());
    EXPECT_GT(s.population, 400000);     // Wyoming ~481k
    EXPECT_LT(s.population, 40000000);   // California ~32.7M
    total += s.population;
    names.insert(s.name);
    capitals.insert(s.capital);
  }
  EXPECT_EQ(names.size(), 50u);
  EXPECT_EQ(capitals.size(), 50u);
  // 1998 US population ≈ 270M; the 50 states sum close to that.
  EXPECT_GT(total, 255000000);
  EXPECT_LT(total, 285000000);
}

TEST(DatasetsTest, StatesSortedByName) {
  const auto& states = UsStates1998();
  for (size_t i = 1; i < states.size(); ++i) {
    EXPECT_LT(states[i - 1].name, states[i].name);
  }
}

TEST(DatasetsTest, PaperFactsPresent) {
  const auto& states = UsStates1998();
  auto find = [&](const std::string& name) -> const StateRecord* {
    for (const auto& s : states) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  // The paper's Query 1 commentary: Texas 2nd, Michigan 8th by
  // population.
  std::vector<const StateRecord*> by_pop;
  for (const auto& s : states) by_pop.push_back(&s);
  std::sort(by_pop.begin(), by_pop.end(),
            [](const StateRecord* a, const StateRecord* b) {
              return a->population > b->population;
            });
  EXPECT_EQ(by_pop[0]->name, "California");
  EXPECT_EQ(by_pop[1]->name, "Texas");
  EXPECT_EQ(by_pop[7]->name, "Michigan");
  // Query 3/4 entities.
  EXPECT_EQ(find("Colorado")->capital, "Denver");
  EXPECT_EQ(find("Nebraska")->capital, "Lincoln");
  EXPECT_EQ(find("South Carolina")->capital, "Columbia");
  EXPECT_EQ(find("South Dakota")->capital, "Pierre");
}

TEST(DatasetsTest, ThirtySevenSigs) {
  const auto& sigs = AcmSigs();
  ASSERT_EQ(sigs.size(), 37u);  // paper §4.1: "the 37 ACM Sigs"
  std::set<std::string> unique(sigs.begin(), sigs.end());
  EXPECT_EQ(unique.size(), 37u);
  EXPECT_TRUE(unique.count("SIGMOD"));
  EXPECT_TRUE(unique.count("SIGACT"));
  EXPECT_TRUE(unique.count("SIGSAM"));
}

TEST(DatasetsTest, ConstantsPoolSupportsTemplate2) {
  // Template 2 needs 16 distinct constants (paper §5).
  const auto& constants = TemplateConstants();
  std::set<std::string> unique(constants.begin(), constants.end());
  EXPECT_EQ(unique.size(), 16u);
}

TEST(DatasetsTest, CorpusSpecCoversAllEntities) {
  PaperCorpusSpec spec = MakePaperCorpusSpec();
  std::set<std::string> entities;
  for (const EntitySpec& e : spec.entities) {
    EXPECT_GT(e.weight, 0) << e.phrase;
    entities.insert(e.phrase);
  }
  for (const StateRecord& s : UsStates1998()) {
    EXPECT_TRUE(entities.count(s.name)) << s.name;
    EXPECT_TRUE(entities.count(s.capital)) << s.capital;
  }
  for (const std::string& sig : AcmSigs()) {
    EXPECT_TRUE(entities.count(sig)) << sig;
  }
  for (const std::string& c : TemplateConstants()) {
    EXPECT_TRUE(entities.count(c)) << c;
  }
  // Co-occurrence phrases must themselves be known entities so the
  // corpus carries both the standalone and the proximity signal.
  for (const CooccurrenceSpec& c : spec.cooccurrences) {
    EXPECT_TRUE(entities.count(c.a)) << c.a;
    EXPECT_TRUE(entities.count(c.b)) << c.b;
  }
}

TEST(DatasetsTest, FourCornersWeightsKeepPaperOrder) {
  PaperCorpusSpec spec = MakePaperCorpusSpec();
  std::map<std::string, double> weights;
  for (const CooccurrenceSpec& c : spec.cooccurrences) {
    if (c.b == "four corners") weights[c.a] = c.weight;
  }
  ASSERT_TRUE(weights.count("Colorado"));
  EXPECT_GT(weights["Colorado"], weights["New Mexico"]);
  EXPECT_GT(weights["New Mexico"], weights["Arizona"]);
  EXPECT_GT(weights["Arizona"], weights["Utah"]);
  EXPECT_GT(weights["Utah"], 4 * weights["California"]);  // the cliff
}

TEST(DatasetsTest, PaperCorpusIsDeterministic) {
  CorpusConfig cfg = DefaultPaperCorpusConfig();
  cfg.num_documents = 300;
  Corpus a = MakePaperCorpus(cfg);
  Corpus b = MakePaperCorpus(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.document(i).terms, b.document(i).terms) << i;
  }
}

}  // namespace
}  // namespace wsq
