#include "net/retry_service.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/clock.h"
#include "net/simulated_service.h"

namespace wsq {
namespace {

/// Fails the first `failures_` requests it sees, then delegates.
class FlakyService : public SearchService {
 public:
  FlakyService(SearchService* wrapped, int failures)
      : wrapped_(wrapped), remaining_failures_(failures) {}

  const std::string& name() const override { return wrapped_->name(); }

  void Submit(SearchRequest request, SearchCallback done) override {
    ++total_requests_;
    if (remaining_failures_.fetch_sub(1) > 0) {
      done(SearchResponse{Status::IOError("engine unavailable"), 0, {}});
      return;
    }
    wrapped_->Submit(std::move(request), std::move(done));
  }

  int total_requests() const { return total_requests_.load(); }

 private:
  SearchService* wrapped_;
  std::atomic<int> remaining_failures_;
  std::atomic<int> total_requests_{0};
};

class RetryServiceTest : public ::testing::Test {
 protected:
  RetryServiceTest() {
    CorpusConfig cfg;
    cfg.num_documents = 300;
    cfg.vocab_size = 200;
    cfg.seed = 3;
    corpus_ = std::make_unique<Corpus>(
        Corpus::Generate(cfg, {{"colorado", 2.0}}));
    SearchEngineConfig ecfg;
    ecfg.name = "AltaVista";
    engine_ = std::make_unique<SearchEngine>(corpus_.get(), ecfg);
    SimulatedSearchService::Options opt;
    opt.latency = LatencyModel::Instant();
    backend_ = std::make_unique<SimulatedSearchService>(engine_.get(),
                                                        opt);
  }

  SearchRequest CountRequest() {
    SearchRequest req;
    req.kind = SearchRequest::Kind::kCount;
    req.query = "colorado";
    return req;
  }

  RetryPolicy FastPolicy(int attempts) {
    RetryPolicy policy;
    policy.max_attempts = attempts;
    policy.initial_backoff_micros = 500;
    policy.backoff_multiplier = 2.0;
    return policy;
  }

  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<SearchEngine> engine_;
  std::unique_ptr<SimulatedSearchService> backend_;
};

TEST_F(RetryServiceTest, SucceedsWithoutRetriesOnHealthyBackend) {
  RetryingSearchService retry(backend_.get(), FastPolicy(3));
  SearchResponse resp = retry.Execute(CountRequest());
  ASSERT_TRUE(resp.status.ok());
  EXPECT_GT(resp.count, 0);
  EXPECT_EQ(retry.stats().attempts, 1u);
  EXPECT_EQ(retry.stats().retries, 0u);
}

TEST_F(RetryServiceTest, RecoversFromTransientFailures) {
  FlakyService flaky(backend_.get(), /*failures=*/2);
  RetryingSearchService retry(&flaky, FastPolicy(3));
  SearchResponse resp = retry.Execute(CountRequest());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_GT(resp.count, 0);
  RetryStats stats = retry.stats();
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.gave_up, 0u);
}

TEST_F(RetryServiceTest, GivesUpAfterMaxAttempts) {
  FlakyService flaky(backend_.get(), /*failures=*/100);
  RetryingSearchService retry(&flaky, FastPolicy(3));
  SearchResponse resp = retry.Execute(CountRequest());
  ASSERT_FALSE(resp.status.ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kIOError);
  RetryStats stats = retry.stats();
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.gave_up, 1u);
  EXPECT_EQ(flaky.total_requests(), 3);
}

TEST_F(RetryServiceTest, SingleAttemptPolicyNeverRetries) {
  FlakyService flaky(backend_.get(), /*failures=*/1);
  RetryingSearchService retry(&flaky, FastPolicy(1));
  SearchResponse resp = retry.Execute(CountRequest());
  EXPECT_FALSE(resp.status.ok());
  EXPECT_EQ(retry.stats().retries, 0u);
}

TEST_F(RetryServiceTest, BackoffDelaysRetry) {
  FlakyService flaky(backend_.get(), /*failures=*/2);
  RetryPolicy policy = FastPolicy(3);
  policy.initial_backoff_micros = 15000;  // 15 ms + 30 ms backoffs
  RetryingSearchService retry(&flaky, policy);
  Stopwatch timer;
  SearchResponse resp = retry.Execute(CountRequest());
  ASSERT_TRUE(resp.status.ok());
  EXPECT_GE(timer.ElapsedMicros(), 40000);
}

TEST_F(RetryServiceTest, ConcurrentRequestsEachRetryIndependently) {
  FlakyService flaky(backend_.get(), /*failures=*/8);
  RetryingSearchService retry(&flaky, FastPolicy(4));
  std::atomic<int> ok{0};
  const int kRequests = 16;
  std::mutex mu;
  std::condition_variable cv;
  int done_count = 0;
  for (int i = 0; i < kRequests; ++i) {
    retry.Submit(CountRequest(), [&](SearchResponse resp) {
      if (resp.status.ok()) ++ok;
      std::lock_guard<std::mutex> lock(mu);
      ++done_count;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done_count == kRequests; });
  // All 16 eventually succeed: only 8 failures were injected and each
  // request tolerates 3.
  EXPECT_EQ(ok.load(), kRequests);
}

/// Always fails with a PERMANENT error: retrying cannot help.
class BadQueryService : public SearchService {
 public:
  explicit BadQueryService(SearchService* wrapped) : wrapped_(wrapped) {}
  const std::string& name() const override { return wrapped_->name(); }
  void Submit(SearchRequest request, SearchCallback done) override {
    (void)request;
    ++total_requests_;
    done(SearchResponse{
        Status::InvalidArgument("malformed search expression"), 0, {}});
  }
  int total_requests() const { return total_requests_.load(); }

 private:
  SearchService* wrapped_;
  std::atomic<int> total_requests_{0};
};

TEST_F(RetryServiceTest, NonTransientErrorsPassThroughImmediately) {
  BadQueryService bad(backend_.get());
  RetryPolicy policy = FastPolicy(5);
  policy.initial_backoff_micros = 50000;  // would be slow if retried
  RetryingSearchService retry(&bad, policy);
  Stopwatch timer;
  SearchResponse resp = retry.Execute(CountRequest());
  EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument);
  // No backoff sleeps happened: the error was not retried.
  EXPECT_LT(timer.ElapsedMicros(), 50000);
  EXPECT_EQ(bad.total_requests(), 1);
  RetryStats stats = retry.stats();
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.gave_up, 0u);
  EXPECT_EQ(stats.non_transient, 1u);
}

TEST_F(RetryServiceTest, JitteredBackoffRespectsDeterministicFloor) {
  // With decorrelated jitter on (the default), each sleep is drawn from
  // [base, 3*base] — never below the deterministic schedule, so the
  // minimum-elapsed guarantee of plain exponential backoff still holds.
  FlakyService flaky(backend_.get(), /*failures=*/2);
  RetryPolicy policy = FastPolicy(3);
  policy.initial_backoff_micros = 15000;
  ASSERT_TRUE(policy.decorrelated_jitter);
  RetryingSearchService retry(&flaky, policy);
  Stopwatch timer;
  SearchResponse resp = retry.Execute(CountRequest());
  ASSERT_TRUE(resp.status.ok());
  EXPECT_GE(timer.ElapsedMicros(), 45000);  // 15 ms + 30 ms floors
}

TEST_F(RetryServiceTest, MaxBackoffCapsTheSleep) {
  FlakyService flaky(backend_.get(), /*failures=*/3);
  RetryPolicy policy = FastPolicy(4);
  policy.initial_backoff_micros = 20000;
  policy.max_backoff_micros = 1000;  // cap far below the schedule
  RetryingSearchService retry(&flaky, policy);
  Stopwatch timer;
  SearchResponse resp = retry.Execute(CountRequest());
  ASSERT_TRUE(resp.status.ok());
  // Three retries, each sleeping at most the 1 ms cap.
  EXPECT_LT(timer.ElapsedMicros(), 60000);
  EXPECT_EQ(retry.stats().retries, 3u);
}

TEST_F(RetryServiceTest, DestructorWaitsForInFlightRetries) {
  FlakyService flaky(backend_.get(), /*failures=*/1);
  std::atomic<bool> completed{false};
  {
    RetryPolicy policy = FastPolicy(2);
    policy.initial_backoff_micros = 20000;
    RetryingSearchService retry(&flaky, policy);
    retry.Submit(CountRequest(),
                 [&](SearchResponse) { completed = true; });
    // Destructor must block until the backed-off retry completes.
  }
  EXPECT_TRUE(completed.load());
}

}  // namespace
}  // namespace wsq
