#include "net/fault_service.h"

#include <gtest/gtest.h>

#include <mutex>
#include <optional>
#include <string>

#include "common/clock.h"

namespace wsq {
namespace {

/// Backend that always succeeds with a fixed count.
class OkService : public SearchService {
 public:
  explicit OkService(std::string name = "AltaVista")
      : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }

  void Submit(SearchRequest request, SearchCallback done) override {
    (void)request;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++served_;
    }
    done(SearchResponse{Status::OK(), 42, {}});
  }

  uint64_t served() const {
    std::lock_guard<std::mutex> lock(mu_);
    return served_;
  }

 private:
  std::string name_;
  mutable std::mutex mu_;
  uint64_t served_ = 0;
};

SearchRequest CountRequest(const std::string& query) {
  SearchRequest req;
  req.kind = SearchRequest::Kind::kCount;
  req.query = query;
  return req;
}

TEST(FaultServiceTest, PassThroughWhenPlanIsEmpty) {
  OkService backend;
  FaultInjectingSearchService faulty(&backend, FaultPlan{});
  SearchResponse resp = faulty.Execute(CountRequest("databases"));
  ASSERT_TRUE(resp.status.ok());
  EXPECT_EQ(resp.count, 42);
  EXPECT_EQ(faulty.stats().passed_through, 1u);
}

TEST(FaultServiceTest, TransientFaultsClearAfterConfiguredTries) {
  OkService backend;
  FaultPlan plan;
  plan.transient_rate = 1.0;  // every query draws a transient fault
  plan.transient_tries = 2;
  FaultInjectingSearchService faulty(&backend, plan);

  SearchRequest req = CountRequest("databases");
  for (int attempt = 0; attempt < 2; ++attempt) {
    SearchResponse resp = faulty.Execute(req);
    EXPECT_EQ(resp.status.code(), StatusCode::kUnavailable) << attempt;
    EXPECT_TRUE(IsTransient(resp.status.code()));
  }
  // Third attempt of the SAME query passes through.
  SearchResponse resp = faulty.Execute(req);
  ASSERT_TRUE(resp.status.ok());
  EXPECT_EQ(backend.served(), 1u);
  EXPECT_EQ(faulty.stats().injected_transient, 2u);
}

TEST(FaultServiceTest, PermanentFaultsNeverClear) {
  OkService backend;
  FaultPlan plan;
  plan.permanent_rate = 1.0;
  FaultInjectingSearchService faulty(&backend, plan);

  SearchRequest req = CountRequest("databases");
  for (int attempt = 0; attempt < 4; ++attempt) {
    SearchResponse resp = faulty.Execute(req);
    EXPECT_EQ(resp.status.code(), StatusCode::kExecutionError) << attempt;
    EXPECT_FALSE(IsTransient(resp.status.code()));
  }
  EXPECT_EQ(backend.served(), 0u);
  EXPECT_EQ(faulty.stats().injected_permanent, 4u);
}

TEST(FaultServiceTest, HungRequestsHeldUntilReleased) {
  OkService backend;
  FaultPlan plan;
  plan.hang_rate = 1.0;
  FaultInjectingSearchService faulty(&backend, plan);

  std::mutex mu;
  std::optional<SearchResponse> got;
  faulty.Submit(CountRequest("databases"), [&](SearchResponse resp) {
    std::lock_guard<std::mutex> lock(mu);
    got = std::move(resp);
  });
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_FALSE(got.has_value());  // callback parked, not invoked
  }
  EXPECT_EQ(faulty.hung_requests(), 1u);

  faulty.ReleaseHung();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(faulty.hung_requests(), 0u);
}

TEST(FaultServiceTest, DestructorReleasesHungRequests) {
  OkService backend;
  std::mutex mu;
  std::optional<SearchResponse> got;
  {
    FaultPlan plan;
    plan.hang_rate = 1.0;
    FaultInjectingSearchService faulty(&backend, plan);
    faulty.Submit(CountRequest("databases"), [&](SearchResponse resp) {
      std::lock_guard<std::mutex> lock(mu);
      got = std::move(resp);
    });
  }  // no deadlock; contract: every accepted request completes
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status.code(), StatusCode::kUnavailable);
}

TEST(FaultServiceTest, DelaysAddLatencyWithoutFailing) {
  OkService backend;
  FaultPlan plan;
  plan.delay_rate = 1.0;
  plan.delay_micros = 20000;
  FaultInjectingSearchService faulty(&backend, plan);

  Stopwatch timer;
  SearchResponse resp = faulty.Execute(CountRequest("databases"));
  ASSERT_TRUE(resp.status.ok());
  EXPECT_GE(timer.ElapsedMicros(), 20000);
  EXPECT_EQ(faulty.stats().injected_delays, 1u);
}

TEST(FaultServiceTest, OutageWindowFailsConsecutiveArrivals) {
  OkService backend;
  FaultPlan plan;
  plan.outage_start = 2;
  plan.outage_length = 3;  // arrivals 2, 3, 4 fail
  FaultInjectingSearchService faulty(&backend, plan);

  for (int i = 1; i <= 6; ++i) {
    SearchResponse resp =
        faulty.Execute(CountRequest("query" + std::to_string(i)));
    bool in_outage = i >= 2 && i <= 4;
    if (in_outage) {
      EXPECT_EQ(resp.status.code(), StatusCode::kUnavailable) << i;
    } else {
      EXPECT_TRUE(resp.status.ok()) << i;
    }
  }
  EXPECT_EQ(faulty.stats().outage_failures, 3u);
  EXPECT_EQ(backend.served(), 3u);
}

TEST(FaultServiceTest, FaultDecisionsAreDeterministicPerSeed) {
  OkService backend;
  FaultPlan plan;
  plan.seed = 123;
  plan.permanent_rate = 0.2;
  plan.hang_rate = 0.0;  // hangs would need releasing; not under test
  plan.transient_rate = 0.3;
  plan.transient_tries = 1000;  // never clears within this test

  auto outcome_map = [&](FaultPlan p) {
    FaultInjectingSearchService faulty(&backend, p);
    std::string out;
    for (int i = 0; i < 64; ++i) {
      SearchResponse resp =
          faulty.Execute(CountRequest("term" + std::to_string(i)));
      if (resp.status.ok()) {
        out += 'o';
      } else if (resp.status.code() == StatusCode::kUnavailable) {
        out += 't';
      } else {
        out += 'p';
      }
    }
    return out;
  };

  std::string first = outcome_map(plan);
  std::string second = outcome_map(plan);
  EXPECT_EQ(first, second);  // same seed → identical fault pattern
  // The plan actually injected a mix of fault kinds.
  EXPECT_NE(first.find('o'), std::string::npos);
  EXPECT_NE(first.find('t'), std::string::npos);
  EXPECT_NE(first.find('p'), std::string::npos);

  FaultPlan other = plan;
  other.seed = 456;
  EXPECT_NE(outcome_map(other), first);  // different seed → different
}

TEST(FaultServiceTest, RatesPartitionTheQuerySpace) {
  // With disjoint bands summing to 1, every query draws exactly one
  // fault kind and nothing passes through.
  OkService backend;
  FaultPlan plan;
  plan.permanent_rate = 0.5;
  plan.transient_rate = 0.5;
  plan.transient_tries = 1000;
  FaultInjectingSearchService faulty(&backend, plan);

  for (int i = 0; i < 32; ++i) {
    SearchResponse resp =
        faulty.Execute(CountRequest("w" + std::to_string(i)));
    EXPECT_FALSE(resp.status.ok()) << i;
  }
  FaultStats stats = faulty.stats();
  EXPECT_EQ(stats.injected_permanent + stats.injected_transient, 32u);
  EXPECT_EQ(stats.passed_through, 0u);
  EXPECT_EQ(backend.served(), 0u);
}

}  // namespace
}  // namespace wsq
