#include "net/result_cache.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "common/memory.h"
#include "net/simulated_service.h"

namespace wsq {
namespace {

SearchResponse CountResponse(int64_t n) {
  SearchResponse r;
  r.count = n;
  return r;
}

/// A response whose ApproxBytes footprint is at least `bytes`.
SearchResponse PaddedResponse(size_t bytes) {
  SearchResponse r;
  r.count = 1;
  SearchHit hit;
  hit.url = std::string(bytes, 'u');
  r.hits.push_back(std::move(hit));
  return r;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.Get("k").has_value());
  cache.Put("k", CountResponse(7));
  auto hit = cache.Get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->count, 7);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, LruEviction) {
  ResultCache cache(2);
  cache.Put("a", CountResponse(1));
  cache.Put("b", CountResponse(2));
  ASSERT_TRUE(cache.Get("a").has_value());  // a becomes MRU
  cache.Put("c", CountResponse(3));         // evicts b
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, PutUpdatesExistingKey) {
  ResultCache cache(2);
  cache.Put("a", CountResponse(1));
  cache.Put("a", CountResponse(9));
  EXPECT_EQ(cache.Get("a")->count, 9);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, TtlExpiry) {
  ResultCache cache(4, /*ttl_micros=*/20000);
  cache.Put("a", CountResponse(1));
  EXPECT_TRUE(cache.Get("a").has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(cache.Get("a").has_value());
}

TEST(ResultCacheTest, ClearEmpties) {
  ResultCache cache(4);
  cache.Put("a", CountResponse(1));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a").has_value());
}

TEST(ResultCacheTest, ZeroCapacityClampedToOne) {
  ResultCache cache(0);
  cache.Put("a", CountResponse(1));
  EXPECT_TRUE(cache.Get("a").has_value());
  cache.Put("b", CountResponse(2));
  EXPECT_FALSE(cache.Get("a").has_value());
}

TEST(ResultCacheTest, ByteBoundEvictsLruTail) {
  // Generous entry capacity; the byte bound is what binds.
  ResultCache cache(100, /*ttl_micros=*/0, /*max_bytes=*/4096);
  cache.Put("a", PaddedResponse(1500));
  cache.Put("b", PaddedResponse(1500));
  EXPECT_EQ(cache.size(), 2u);
  cache.Put("c", PaddedResponse(1500));  // over 4096: evicts "a"
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.bytes(), 4096u);
}

TEST(ResultCacheTest, BytesTrackReplacementAndClear) {
  ResultCache cache(8);
  cache.Put("a", PaddedResponse(1000));
  size_t big = cache.bytes();
  EXPECT_GT(big, 1000u);
  cache.Put("a", PaddedResponse(10));  // replace: bytes shrink
  EXPECT_LT(cache.bytes(), big);
  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ResultCacheTest, AttachedBudgetMirrorsResidentBytes) {
  MemoryBudget budget("test", 0);
  ResultCache cache(8);
  cache.Put("pre", PaddedResponse(500));  // charged retroactively
  cache.AttachBudget(&budget);
  EXPECT_EQ(budget.used(), cache.bytes());
  cache.Put("a", PaddedResponse(700));
  EXPECT_EQ(budget.used(), cache.bytes());
  cache.Clear();
  EXPECT_EQ(budget.used(), 0u);
  cache.Put("b", PaddedResponse(300));
  cache.DetachBudget();
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_GT(cache.bytes(), 0u);  // entries survive detach, uncharged
}

TEST(ResultCacheTest, PressureHookShedsLruEntries) {
  MemoryBudget budget("test", 8192);
  ResultCache cache(16);
  cache.AttachBudget(&budget);
  cache.Put("old", PaddedResponse(3000));
  cache.Put("new", PaddedResponse(3000));
  ASSERT_TRUE(cache.Get("new").has_value());  // "old" is the LRU tail
  // A reservation the budget cannot fit forces the pressure hook to
  // shed cached bytes; the retry then succeeds.
  EXPECT_TRUE(budget.TryReserve(4000));
  EXPECT_GE(cache.stats().pressure_shed, 1u);
  EXPECT_FALSE(cache.Get("old").has_value());  // shed LRU-first
  budget.Release(4000);
  cache.DetachBudget();
}

class CachingServiceTest : public ::testing::Test {
 protected:
  CachingServiceTest() {
    CorpusConfig cfg;
    cfg.num_documents = 200;
    cfg.vocab_size = 150;
    cfg.seed = 9;
    corpus_ = std::make_unique<Corpus>(
        Corpus::Generate(cfg, {{"colorado", 2.0}}));
    SearchEngineConfig ecfg;
    ecfg.name = "AltaVista";
    engine_ = std::make_unique<SearchEngine>(corpus_.get(), ecfg);
    SimulatedSearchService::Options opt;
    opt.latency = LatencyModel::Fixed(20000);
    service_ = std::make_unique<SimulatedSearchService>(engine_.get(), opt);
    cache_ = std::make_unique<ResultCache>(16);
    caching_ = std::make_unique<CachingSearchService>(service_.get(),
                                                      cache_.get());
  }

  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<SearchEngine> engine_;
  std::unique_ptr<SimulatedSearchService> service_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<CachingSearchService> caching_;
};

TEST_F(CachingServiceTest, RepeatedRequestServedFromCache) {
  SearchRequest req;
  req.query = "colorado";

  Stopwatch first;
  SearchResponse r1 = caching_->Execute(req);
  int64_t first_micros = first.ElapsedMicros();
  ASSERT_TRUE(r1.status.ok());

  Stopwatch second;
  SearchResponse r2 = caching_->Execute(req);
  int64_t second_micros = second.ElapsedMicros();
  ASSERT_TRUE(r2.status.ok());

  EXPECT_EQ(r1.count, r2.count);
  EXPECT_GE(first_micros, 15000);   // paid simulated latency
  EXPECT_LT(second_micros, 5000);   // served locally
  EXPECT_EQ(service_->stats().total_requests, 1u);
  EXPECT_EQ(cache_->stats().hits, 1u);
}

TEST_F(CachingServiceTest, DifferentQueriesNotConflated) {
  SearchRequest a;
  a.query = "colorado";
  SearchRequest b;
  b.query = "colorado near colorado";
  SearchResponse ra = caching_->Execute(a);
  SearchResponse rb = caching_->Execute(b);
  EXPECT_EQ(service_->stats().total_requests, 2u);
  EXPECT_GE(ra.count, rb.count);
}

TEST_F(CachingServiceTest, FailedResponsesNotCached) {
  SearchRequest bad;
  bad.query = "";
  SearchResponse r1 = caching_->Execute(bad);
  EXPECT_FALSE(r1.status.ok());
  caching_->Execute(bad);
  // Both attempts reached the backing service.
  EXPECT_EQ(service_->stats().total_requests, 2u);
}

}  // namespace
}  // namespace wsq
