#include "net/simulated_service.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/clock.h"

namespace wsq {
namespace {

class SimulatedServiceTest : public ::testing::Test {
 protected:
  static const Corpus& TestCorpus() {
    static const Corpus* const kCorpus = [] {
      CorpusConfig cfg;
      cfg.num_documents = 300;
      cfg.vocab_size = 200;
      cfg.seed = 5;
      return new Corpus(Corpus::Generate(
          cfg, {{"colorado", 3.0}, {"utah", 1.0}}));
    }();
    return *kCorpus;
  }

  static const SearchEngine& Engine() {
    static const SearchEngine* const kEngine = [] {
      SearchEngineConfig cfg;
      cfg.name = "AltaVista";
      return new SearchEngine(&TestCorpus(), cfg);
    }();
    return *kEngine;
  }
};

TEST_F(SimulatedServiceTest, LatencyModelSampling) {
  Rng rng(1);
  LatencyModel m{1000, 200, 0.0, 1.0};
  for (int i = 0; i < 200; ++i) {
    int64_t s = m.SampleMicros(rng);
    EXPECT_GE(s, 800);
    EXPECT_LE(s, 1200);
  }
  LatencyModel inst = LatencyModel::Instant();
  EXPECT_EQ(inst.SampleMicros(rng), 0);
  LatencyModel fixed = LatencyModel::Fixed(777);
  EXPECT_EQ(fixed.SampleMicros(rng), 777);
}

TEST_F(SimulatedServiceTest, HeavyTailSampling) {
  Rng rng(2);
  LatencyModel m{1000, 0, 0.5, 4.0};
  int tails = 0;
  for (int i = 0; i < 1000; ++i) {
    int64_t s = m.SampleMicros(rng);
    if (s == 4000) {
      ++tails;
    } else {
      EXPECT_EQ(s, 1000);
    }
  }
  EXPECT_NEAR(tails, 500, 80);
}

TEST_F(SimulatedServiceTest, CountRequestMatchesEngine) {
  SimulatedSearchService::Options opt;
  opt.latency = LatencyModel::Fixed(2000);
  SimulatedSearchService svc(&Engine(), opt);

  SearchRequest req;
  req.kind = SearchRequest::Kind::kCount;
  req.query = "colorado";
  SearchResponse resp = svc.Execute(req);
  ASSERT_TRUE(resp.status.ok());
  EXPECT_EQ(resp.count, *Engine().Count("colorado"));
}

TEST_F(SimulatedServiceTest, TopKRequestMatchesEngine) {
  SimulatedSearchService::Options opt;
  opt.latency = LatencyModel::Instant();
  SimulatedSearchService svc(&Engine(), opt);

  SearchRequest req;
  req.kind = SearchRequest::Kind::kTopK;
  req.query = "colorado";
  req.k = 3;
  SearchResponse resp = svc.Execute(req);
  ASSERT_TRUE(resp.status.ok());
  auto direct = *Engine().Search("colorado", 3);
  ASSERT_EQ(resp.hits.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(resp.hits[i].url, direct[i].url);
  }
}

TEST_F(SimulatedServiceTest, ErrorsPropagate) {
  SimulatedSearchService::Options opt;
  opt.latency = LatencyModel::Instant();
  SimulatedSearchService svc(&Engine(), opt);
  SearchRequest req;
  req.query = "";  // empty query is invalid
  SearchResponse resp = svc.Execute(req);
  EXPECT_FALSE(resp.status.ok());
}

TEST_F(SimulatedServiceTest, LatencyIsActuallySimulated) {
  SimulatedSearchService::Options opt;
  opt.latency = LatencyModel::Fixed(30000);  // 30 ms
  SimulatedSearchService svc(&Engine(), opt);
  SearchRequest req;
  req.query = "utah";
  Stopwatch timer;
  svc.Execute(req);
  EXPECT_GE(timer.ElapsedMicros(), 25000);
}

TEST_F(SimulatedServiceTest, ConcurrentRequestsOverlap) {
  // 20 requests of 30 ms with unbounded capacity should take ~30 ms,
  // not ~600 ms.
  SimulatedSearchService::Options opt;
  opt.latency = LatencyModel::Fixed(30000);
  SimulatedSearchService svc(&Engine(), opt);

  std::atomic<int> done{0};
  Stopwatch timer;
  for (int i = 0; i < 20; ++i) {
    SearchRequest req;
    req.query = "colorado";
    svc.Submit(req, [&](SearchResponse) { ++done; });
  }
  svc.Quiesce();
  EXPECT_EQ(done.load(), 20);
  EXPECT_LT(timer.ElapsedMicros(), 300000);  // far below serial 600 ms
  EXPECT_EQ(svc.stats().completed_requests, 20u);
  EXPECT_GT(svc.stats().max_concurrent, 10u);
}

TEST_F(SimulatedServiceTest, ServerCapacitySerializesExcess) {
  // 8 requests of 20 ms through capacity 2 must take >= 4*20 ms.
  SimulatedSearchService::Options opt;
  opt.latency = LatencyModel::Fixed(20000);
  opt.server_capacity = 2;
  SimulatedSearchService svc(&Engine(), opt);

  std::atomic<int> done{0};
  Stopwatch timer;
  for (int i = 0; i < 8; ++i) {
    SearchRequest req;
    req.query = "utah";
    svc.Submit(req, [&](SearchResponse) { ++done; });
  }
  svc.Quiesce();
  EXPECT_EQ(done.load(), 8);
  EXPECT_GE(timer.ElapsedMicros(), 75000);
}

TEST_F(SimulatedServiceTest, ShutdownCompletesPendingRequests) {
  std::atomic<int> done{0};
  {
    SimulatedSearchService::Options opt;
    opt.latency = LatencyModel::Fixed(5000000);  // 5 s — never waited out
    SimulatedSearchService svc(&Engine(), opt);
    for (int i = 0; i < 5; ++i) {
      SearchRequest req;
      req.query = "utah";
      svc.Submit(req, [&](SearchResponse resp) {
        if (resp.status.ok()) ++done;
      });
    }
    // Destructor must fire all callbacks without waiting 5 seconds.
  }
  EXPECT_EQ(done.load(), 5);
}

TEST_F(SimulatedServiceTest, CacheKeyDistinguishesRequests) {
  SearchRequest a{SearchRequest::Kind::kCount, "colorado", 20};
  SearchRequest b{SearchRequest::Kind::kTopK, "colorado", 20};
  SearchRequest c{SearchRequest::Kind::kTopK, "colorado", 5};
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  EXPECT_NE(b.CacheKey(), c.CacheKey());
  EXPECT_EQ(a.CacheKey(),
            (SearchRequest{SearchRequest::Kind::kCount, "colorado", 20}
                 .CacheKey()));
}

}  // namespace
}  // namespace wsq
