// Seeded chaos sweep for the sharded scatter-gather backend: every
// combination of fault mix x policy x seed must preserve the service
// invariants — every submitted request completes exactly once, OK
// responses are correct (complete) or correctly labelled (partial),
// counts never exceed the unsharded truth, and the pump ledger
// balances (no leaked or double-resolved shard calls). Runs under
// `ctest -L chaos`, including the TSan CI job.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/sharded_service.h"

namespace wsq {
namespace {

struct ChaosCase {
  const char* name;
  FaultPlan plan;       // applied to every shard (seed varied per run)
  bool with_replicas;
};

std::vector<ChaosCase> Cases() {
  std::vector<ChaosCase> cases;
  {
    ChaosCase c{"transient_flaps", FaultPlan{}, false};
    c.plan.transient_rate = 0.4;
    c.plan.transient_tries = 1;  // retry layer absorbs these
    cases.push_back(c);
  }
  {
    ChaosCase c{"permanent_pockets", FaultPlan{}, false};
    c.plan.permanent_rate = 0.25;
    cases.push_back(c);
  }
  {
    ChaosCase c{"hangs_vs_timeouts", FaultPlan{}, false};
    c.plan.hang_rate = 0.2;  // resolved by the per-call pump deadline
    cases.push_back(c);
  }
  {
    ChaosCase c{"latency_spikes_hedged", FaultPlan{}, true};
    c.plan.delay_rate = 0.3;
    c.plan.delay_micros = 50000;
    cases.push_back(c);
  }
  {
    ChaosCase c{"everything_at_once", FaultPlan{}, true};
    c.plan.transient_rate = 0.2;
    c.plan.permanent_rate = 0.1;
    c.plan.hang_rate = 0.1;
    c.plan.delay_rate = 0.2;
    c.plan.delay_micros = 30000;
    cases.push_back(c);
  }
  return cases;
}

class ShardedChaosTest : public ::testing::Test {
 protected:
  static const Corpus& TestCorpus() {
    static const Corpus* const kCorpus = [] {
      CorpusConfig cfg;
      cfg.num_documents = 400;
      cfg.vocab_size = 250;
      cfg.seed = 11;
      return new Corpus(Corpus::Generate(
          cfg, {{"colorado", 2.5}, {"utah", 1.0}}));
    }();
    return *kCorpus;
  }

  /// Unsharded ground truth per query (counts are upper bounds for any
  /// partial answer).
  static int64_t TruthCount(const std::string& q) {
    static SearchEngine* const kEngine = [] {
      SearchEngineConfig cfg;
      cfg.name = "AV";
      cfg.rank_seed = 77;
      return new SearchEngine(&TestCorpus(), cfg);
    }();
    auto r = kEngine->Count(q);
    return r.ok() ? *r : 0;
  }
};

TEST_F(ShardedChaosTest, SweepPreservesInvariants) {
  const std::vector<std::string> queries = {"colorado", "utah",
                                            "colorado utah", "w12"};
  const ShardPolicy policies[] = {ShardPolicy::kFail,
                                  ShardPolicy::kQuorum,
                                  ShardPolicy::kBestEffort};
  for (const ChaosCase& c : Cases()) {
    for (uint64_t seed : {3u, 17u}) {
      SimulatedShardCluster::Options opt;
      opt.num_shards = 4;
      opt.engine.name = "AV";
      opt.engine.rank_seed = 77;
      opt.latency = LatencyModel{2000, 1000, 0.0, 1.0};
      opt.seed = seed;
      opt.with_replicas = c.with_replicas;
      opt.shard_faults.assign(4, c.plan);
      for (size_t s = 0; s < 4; ++s) {
        opt.shard_faults[s].seed = seed * 100 + s;
      }
      // Hung shard calls must resolve via the pump deadline, quickly.
      opt.service.call_timeout_micros = 40000;
      opt.service.default_hedge_delay_micros = 5000;
      opt.service.poll_micros = 1000;
      SimulatedShardCluster cluster(&TestCorpus(), opt);

      struct Tally {
        Mutex mu;
        CondVar cv;
        int done WSQ_GUARDED_BY(mu) = 0;
        int bad WSQ_GUARDED_BY(mu) = 0;
        std::vector<std::string> problems WSQ_GUARDED_BY(mu);
      } tally;
      int submitted = 0;

      for (int round = 0; round < 3; ++round) {
        for (const std::string& q : queries) {
          for (ShardPolicy policy : policies) {
            SearchRequest req;
            req.kind = SearchRequest::Kind::kCount;
            req.query = q;
            req.shard.policy = policy;
            if (policy == ShardPolicy::kQuorum) req.shard.min_shards = 3;
            ++submitted;
            int64_t truth = TruthCount(q);
            cluster.service()->Submit(
                req, [&tally, truth, policy](SearchResponse resp) {
                  MutexLock lock(&tally.mu);
                  if (resp.status.ok()) {
                    if (resp.count > truth) {
                      ++tally.bad;
                      tally.problems.push_back(
                          "count above unsharded truth");
                    }
                    if (resp.partial && resp.shards_failed == 0) {
                      ++tally.bad;
                      tally.problems.push_back(
                          "partial with zero failed shards");
                    }
                    if (!resp.partial && resp.count != truth) {
                      ++tally.bad;
                      tally.problems.push_back(
                          "complete response with wrong count");
                    }
                    if (policy == ShardPolicy::kFail && resp.partial) {
                      ++tally.bad;
                      tally.problems.push_back(
                          "fail policy delivered a partial result");
                    }
                  }
                  ++tally.done;
                  tally.cv.NotifyAll();
                });
          }
        }
      }

      {
        MutexLock lock(&tally.mu);
        while (tally.done < submitted) {  // bounded by the ctest timeout
          tally.cv.WaitForMicros(tally.mu, 5000);
        }
        EXPECT_EQ(tally.bad, 0)
            << c.name << " seed=" << seed << " first problem: "
            << (tally.problems.empty() ? "-" : tally.problems[0]);
      }

      cluster.Quiesce();
      cluster.pump()->Drain();
      ReqPumpStats s = cluster.pump()->stats();
      EXPECT_EQ(s.registered, s.completed + s.cancelled + s.shed)
          << c.name << " seed=" << seed;
    }
  }
}

/// Same sweep but through the blocking Execute path with a dark shard
/// flapping via an outage window: exercises breaker trips + recovery
/// against the gather loop.
TEST_F(ShardedChaosTest, OutageWindowTripsBreakerAndRecovers) {
  SimulatedShardCluster::Options opt;
  opt.num_shards = 2;
  opt.engine.name = "AV";
  opt.engine.rank_seed = 77;
  opt.latency = LatencyModel::Instant();
  opt.shard_faults.resize(2);
  // Shard 0: arrivals 1..5 all fail (kUnavailable) — enough consecutive
  // transient failures to trip the breaker below; later arrivals pass.
  // Keep the window short: once the breaker opens, only half-open
  // probes reach the fault layer, so each remaining outage arrival
  // costs a full cooldown.
  opt.shard_faults[0].outage_start = 1;
  opt.shard_faults[0].outage_length = 5;
  opt.retry.max_attempts = 1;
  opt.breaker.failure_threshold = 3;
  opt.breaker.cooldown_micros = 20000;
  opt.service.poll_micros = 1000;
  SimulatedShardCluster cluster(&TestCorpus(), opt);

  SearchRequest req;
  req.kind = SearchRequest::Kind::kCount;
  req.query = "colorado";
  req.shard.policy = ShardPolicy::kBestEffort;

  int64_t truth = TruthCount("colorado");
  bool recovered = false;
  // Enough rounds to burn through the outage, the breaker cooldown and
  // the half-open probe. Every answer must stay within bounds.
  for (int i = 0; i < 150 && !recovered; ++i) {
    SearchResponse resp = cluster.service()->Execute(req);
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    ASSERT_LE(resp.count, truth);
    if (!resp.partial) {
      EXPECT_EQ(resp.count, truth);
      recovered = true;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(2000));
  }
  EXPECT_TRUE(recovered)
      << "shard 0 never recovered through breaker half-open";

  cluster.Quiesce();
  ReqPumpStats s = cluster.pump()->stats();
  EXPECT_EQ(s.registered, s.completed + s.cancelled + s.shed);
}

}  // namespace
}  // namespace wsq
