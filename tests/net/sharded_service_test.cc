#include "net/sharded_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "net/result_cache.h"

namespace wsq {
namespace {

/// Small shared corpus + unsharded reference engine. The reference
/// SimulatedSearchService answers over the full corpus; clusters must
/// merge back to exactly its answers.
class ShardedServiceTest : public ::testing::Test {
 protected:
  static constexpr const char* kQueries[] = {
      "colorado", "utah", "colorado utah", "nevada", "zzz_nohit"};

  static const Corpus& TestCorpus() {
    static const Corpus* const kCorpus = [] {
      CorpusConfig cfg;
      cfg.num_documents = 500;
      cfg.vocab_size = 300;
      cfg.seed = 7;
      return new Corpus(Corpus::Generate(
          cfg, {{"colorado", 3.0}, {"utah", 1.5}, {"nevada", 0.5}}));
    }();
    return *kCorpus;
  }

  static SearchEngineConfig BaseEngineConfig() {
    SearchEngineConfig cfg;
    cfg.name = "AV";
    cfg.rank_seed = 1234;
    return cfg;
  }

  static SearchResponse Reference(SearchRequest req) {
    static SearchEngine* const kEngine =
        new SearchEngine(&TestCorpus(), BaseEngineConfig());
    static SimulatedSearchService* const kService = [] {
      SimulatedSearchService::Options opt;
      opt.latency = LatencyModel::Instant();
      return new SimulatedSearchService(kEngine, opt);
    }();
    return kService->Execute(std::move(req));
  }

  static SimulatedShardCluster::Options FastCluster(size_t n) {
    SimulatedShardCluster::Options opt;
    opt.num_shards = n;
    opt.engine = BaseEngineConfig();
    opt.latency = LatencyModel::Instant();
    opt.service.poll_micros = 500;
    return opt;
  }

  static SearchRequest Count(const std::string& q) {
    SearchRequest req;
    req.kind = SearchRequest::Kind::kCount;
    req.query = q;
    return req;
  }

  static SearchRequest TopK(const std::string& q, size_t k = 10) {
    SearchRequest req;
    req.kind = SearchRequest::Kind::kTopK;
    req.query = q;
    req.k = k;
    return req;
  }

  static void ExpectLedgerBalanced(ReqPump* pump) {
    ReqPumpStats s = pump->stats();
    EXPECT_EQ(s.registered, s.completed + s.cancelled + s.shed)
        << "registered=" << s.registered << " completed=" << s.completed
        << " cancelled=" << s.cancelled << " shed=" << s.shed;
  }
};

constexpr const char* ShardedServiceTest::kQueries[];

TEST_F(ShardedServiceTest, ShardOfPartitionsEveryDocument) {
  for (size_t n : {1u, 2u, 4u, 8u}) {
    std::vector<size_t> sizes(n, 0);
    for (DocId id = 0; id < TestCorpus().size(); ++id) {
      size_t s = Corpus::ShardOf(id, n);
      ASSERT_LT(s, n);
      ++sizes[s];
    }
    // The hash spreads documents across every shard (no empty shard at
    // these sizes), so a merge bug on any shard is visible.
    for (size_t s = 0; s < n; ++s) {
      EXPECT_GT(sizes[s], 0u) << "shards=" << n << " shard=" << s;
    }
  }
}

TEST_F(ShardedServiceTest, ByteIdenticalToUnshardedAtEveryShardCount) {
  for (size_t n : {1u, 2u, 4u, 8u}) {
    SimulatedShardCluster cluster(&TestCorpus(), FastCluster(n));
    for (const char* q : kQueries) {
      SearchResponse want = Reference(Count(q));
      SearchResponse got = cluster.service()->Execute(Count(q));
      ASSERT_TRUE(got.status.ok()) << got.status.ToString();
      EXPECT_EQ(got.count, want.count) << "shards=" << n << " q=" << q;
      EXPECT_EQ(got.shards_total, static_cast<int>(n));
      EXPECT_EQ(got.shards_failed, 0);
      EXPECT_FALSE(got.partial);

      SearchResponse want_k = Reference(TopK(q));
      SearchResponse got_k = cluster.service()->Execute(TopK(q));
      ASSERT_TRUE(got_k.status.ok()) << got_k.status.ToString();
      EXPECT_EQ(got_k.count, want_k.count);
      ASSERT_EQ(got_k.hits.size(), want_k.hits.size())
          << "shards=" << n << " q=" << q;
      for (size_t i = 0; i < got_k.hits.size(); ++i) {
        EXPECT_EQ(got_k.hits[i].url, want_k.hits[i].url);
        EXPECT_EQ(got_k.hits[i].rank, want_k.hits[i].rank);
        EXPECT_EQ(got_k.hits[i].doc, want_k.hits[i].doc);
        EXPECT_EQ(got_k.hits[i].date, want_k.hits[i].date);
        EXPECT_EQ(got_k.hits[i].score, want_k.hits[i].score);
      }
    }
    cluster.Quiesce();
    ExpectLedgerBalanced(cluster.pump());
  }
}

TEST_F(ShardedServiceTest, FailPolicyFailsWithoutLeakingCalls) {
  SimulatedShardCluster::Options opt = FastCluster(4);
  opt.shard_faults.resize(4);
  opt.shard_faults[1].permanent_rate = 1.0;  // shard 1 hard-down
  SimulatedShardCluster cluster(&TestCorpus(), opt);

  SearchRequest req = Count("colorado");
  req.shard.policy = ShardPolicy::kFail;
  SearchResponse resp = cluster.service()->Execute(req);
  EXPECT_FALSE(resp.status.ok());
  // The representative error is the shard's own (non-transient) one.
  EXPECT_EQ(resp.status.code(), StatusCode::kExecutionError)
      << resp.status.ToString();

  cluster.Quiesce();
  ExpectLedgerBalanced(cluster.pump());
  EXPECT_EQ(cluster.service()->stats().quorum_failures, 1u);
}

TEST_F(ShardedServiceTest, QuorumPolicyDegradesWithDarkShard) {
  SimulatedShardCluster::Options opt = FastCluster(4);
  opt.shard_faults.resize(4);
  opt.shard_faults[2].permanent_rate = 1.0;
  SimulatedShardCluster cluster(&TestCorpus(), opt);

  SearchResponse full = Reference(Count("colorado"));

  SearchRequest req = Count("colorado");
  req.shard.policy = ShardPolicy::kQuorum;
  req.shard.min_shards = 3;
  SearchResponse resp = cluster.service()->Execute(req);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_TRUE(resp.partial);
  EXPECT_EQ(resp.shards_total, 4);
  EXPECT_EQ(resp.shards_failed, 1);
  // Degraded count: a true lower bound, strictly below the full answer
  // (the dark shard holds some "colorado" documents at this size).
  EXPECT_GT(resp.count, 0);
  EXPECT_LT(resp.count, full.count);

  // min_shards above the reachable shard count fails instead.
  req.shard.min_shards = 4;
  SearchResponse strict = cluster.service()->Execute(req);
  EXPECT_FALSE(strict.status.ok());

  cluster.Quiesce();
  ExpectLedgerBalanced(cluster.pump());
  ShardedServiceStats stats = cluster.service()->stats();
  EXPECT_EQ(stats.partial_results, 1u);
  EXPECT_EQ(stats.quorum_failures, 1u);
  EXPECT_EQ(stats.degraded_shards, 1u);
}

TEST_F(ShardedServiceTest, BestEffortAnswersDespiteMostShardsDark) {
  SimulatedShardCluster::Options opt = FastCluster(4);
  opt.shard_faults.resize(4);
  for (size_t s : {0u, 1u, 3u}) {
    opt.shard_faults[s].permanent_rate = 1.0;
  }
  SimulatedShardCluster cluster(&TestCorpus(), opt);

  SearchRequest req = TopK("colorado");
  req.shard.policy = ShardPolicy::kBestEffort;
  SearchResponse resp = cluster.service()->Execute(req);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_TRUE(resp.partial);
  EXPECT_EQ(resp.shards_failed, 3);
  // Whatever came back is still rank-ordered.
  for (size_t i = 0; i < resp.hits.size(); ++i) {
    EXPECT_EQ(resp.hits[i].rank, static_cast<int>(i) + 1);
  }

  cluster.Quiesce();
  ExpectLedgerBalanced(cluster.pump());
}

TEST_F(ShardedServiceTest, PerWaiterPoliciesJudgeTheSameFlight) {
  SimulatedShardCluster::Options opt = FastCluster(4);
  // Slow shards so both waiters join one flight before it resolves.
  opt.latency = LatencyModel::Fixed(20000);
  opt.shard_faults.resize(4);
  opt.shard_faults[0].permanent_rate = 1.0;
  SimulatedShardCluster cluster(&TestCorpus(), opt);

  struct Outcome {
    Mutex mu;
    CondVar cv;
    int done WSQ_GUARDED_BY(mu) = 0;
    SearchResponse strict WSQ_GUARDED_BY(mu);
    SearchResponse lax WSQ_GUARDED_BY(mu);
  } outcome;

  // Best-effort waiter first: it cannot resolve until every shard
  // decides (>= the 20ms shard latency), so the flight is still
  // pending when the strict waiter arrives — even though shard 0's
  // permanent fault fails almost instantly. The other order is racy:
  // a lone kFail waiter can resolve (and reap the flight) before the
  // second Submit joins it.
  SearchRequest lax_req = Count("utah");
  lax_req.shard.policy = ShardPolicy::kBestEffort;
  cluster.service()->Submit(lax_req, [&outcome](SearchResponse r) {
    MutexLock lock(&outcome.mu);
    outcome.lax = std::move(r);
    ++outcome.done;
    outcome.cv.NotifyAll();
  });
  SearchRequest strict_req = Count("utah");
  strict_req.shard.policy = ShardPolicy::kFail;
  cluster.service()->Submit(strict_req, [&outcome](SearchResponse r) {
    MutexLock lock(&outcome.mu);
    outcome.strict = std::move(r);
    ++outcome.done;
    outcome.cv.NotifyAll();
  });

  {
    MutexLock lock(&outcome.mu);
    while (outcome.done < 2) {  // test-bounded by the ctest timeout
      outcome.cv.WaitForMicros(outcome.mu, 5000);
    }
    EXPECT_FALSE(outcome.strict.status.ok());
    ASSERT_TRUE(outcome.lax.status.ok())
        << outcome.lax.status.ToString();
    EXPECT_TRUE(outcome.lax.partial);
    EXPECT_EQ(outcome.lax.shards_failed, 1);
  }

  cluster.Quiesce();
  // Both logical requests shared one fan-out.
  ShardedServiceStats stats = cluster.service()->stats();
  EXPECT_EQ(stats.fanouts, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.shard_calls, 4u);
  ExpectLedgerBalanced(cluster.pump());
}

TEST_F(ShardedServiceTest, CoalescingSharesOneFanOut) {
  SimulatedShardCluster::Options opt = FastCluster(4);
  opt.latency = LatencyModel::Fixed(20000);
  SimulatedShardCluster cluster(&TestCorpus(), opt);

  constexpr int kWaiters = 6;
  struct Outcome {
    Mutex mu;
    CondVar cv;
    int done WSQ_GUARDED_BY(mu) = 0;
    std::vector<int64_t> counts WSQ_GUARDED_BY(mu);
  } outcome;

  for (int i = 0; i < kWaiters; ++i) {
    cluster.service()->Submit(
        Count("colorado"), [&outcome](SearchResponse r) {
          MutexLock lock(&outcome.mu);
          ASSERT_TRUE(r.status.ok()) << r.status.ToString();
          outcome.counts.push_back(r.count);
          ++outcome.done;
          outcome.cv.NotifyAll();
        });
  }
  {
    MutexLock lock(&outcome.mu);
    while (outcome.done < kWaiters) {  // bounded by the ctest timeout
      outcome.cv.WaitForMicros(outcome.mu, 5000);
    }
    int64_t want = Reference(Count("colorado")).count;
    for (int64_t c : outcome.counts) EXPECT_EQ(c, want);
  }

  cluster.Quiesce();
  ShardedServiceStats stats = cluster.service()->stats();
  EXPECT_EQ(stats.fanouts, 1u);
  EXPECT_EQ(stats.coalesced, static_cast<uint64_t>(kWaiters - 1));
  EXPECT_EQ(stats.shard_calls, 4u);
  ExpectLedgerBalanced(cluster.pump());
}

TEST_F(ShardedServiceTest, FailedPrimaryFailsOverToReplica) {
  SimulatedShardCluster::Options opt = FastCluster(4);
  opt.with_replicas = true;
  opt.shard_faults.resize(4);
  opt.shard_faults[1].permanent_rate = 1.0;  // primary 1 dark; replica fine
  SimulatedShardCluster cluster(&TestCorpus(), opt);

  SearchRequest req = Count("colorado");
  req.shard.policy = ShardPolicy::kFail;  // only passes via the replica
  SearchResponse resp = cluster.service()->Execute(req);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_FALSE(resp.partial);
  EXPECT_EQ(resp.count, Reference(Count("colorado")).count);

  cluster.Quiesce();
  ShardedServiceStats stats = cluster.service()->stats();
  EXPECT_GE(stats.hedges, 1u);
  EXPECT_GE(stats.hedge_wins, 1u);
  ExpectLedgerBalanced(cluster.pump());
}

TEST_F(ShardedServiceTest, SlowPrimaryIsHedgedAndLoserReaped) {
  SimulatedShardCluster::Options opt = FastCluster(2);
  opt.with_replicas = true;
  // Primaries stall 200ms before forwarding; replicas are clean, so the
  // latency-triggered hedge (default delay 5ms here) wins every shard.
  opt.shard_faults.resize(2);
  for (auto& plan : opt.shard_faults) {
    plan.delay_rate = 1.0;
    plan.delay_micros = 200000;
  }
  opt.service.default_hedge_delay_micros = 5000;
  opt.service.call_timeout_micros = 2000000;
  SimulatedShardCluster cluster(&TestCorpus(), opt);

  SearchRequest req = TopK("colorado");
  req.shard.policy = ShardPolicy::kFail;
  SearchResponse want = Reference(TopK("colorado"));
  SearchResponse resp = cluster.service()->Execute(req);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_FALSE(resp.partial);
  ASSERT_EQ(resp.hits.size(), want.hits.size());
  for (size_t i = 0; i < resp.hits.size(); ++i) {
    EXPECT_EQ(resp.hits[i].url, want.hits[i].url);
  }

  ShardedServiceStats stats = cluster.service()->stats();
  EXPECT_EQ(stats.hedges, 2u);
  EXPECT_EQ(stats.hedge_wins, 2u);

  // The abandoned primaries resolve (cancelled) once their delayed
  // forwards land; the ledger must balance, not leak.
  cluster.Quiesce();
  ExpectLedgerBalanced(cluster.pump());
}

TEST_F(ShardedServiceTest, OuterCancelOfOneWaiterSparesTheOthers) {
  // The DB-side pump registers logical calls against the sharded
  // service; cancelling one coalesced waiter's call must not disturb
  // the shared shard fan-out or the surviving waiter.
  SimulatedShardCluster::Options opt = FastCluster(4);
  opt.latency = LatencyModel::Fixed(20000);
  SimulatedShardCluster cluster(&TestCorpus(), opt);

  ReqPump outer;
  auto call = [&cluster](CallCompletion done) {
    cluster.service()->Submit(
        Count("colorado"), [done](SearchResponse resp) {
          CallResult result;
          result.status = resp.status;
          if (resp.status.ok()) {
            result.rows.push_back(Row({Value::Int(resp.count)}));
          }
          done(std::move(result));
        });
  };
  CallId a = outer.Register("AV", call);
  CallId b = outer.Register("AV", call);

  ASSERT_TRUE(outer.CancelCall(a));
  CallResult cancelled;
  ASSERT_TRUE(outer.TryTake(a, &cancelled));
  EXPECT_EQ(cancelled.status.code(), StatusCode::kCancelled);

  CallResult survivor = outer.TakeBlocking(b);
  ASSERT_TRUE(survivor.status.ok()) << survivor.status.ToString();
  ASSERT_EQ(survivor.rows.size(), 1u);
  EXPECT_EQ(survivor.rows[0].value(0).AsInt(),
            Reference(Count("colorado")).count);

  cluster.Quiesce();
  outer.Drain();
  ShardedServiceStats stats = cluster.service()->stats();
  EXPECT_EQ(stats.fanouts, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  ExpectLedgerBalanced(cluster.pump());
}

TEST_F(ShardedServiceTest, DestructionFailsOutstandingWaiters) {
  SimulatedShardCluster::Options opt = FastCluster(2);
  opt.shard_faults.resize(2);
  opt.shard_faults[0].hang_rate = 1.0;
  opt.shard_faults[1].hang_rate = 1.0;
  opt.service.call_timeout_micros = 60000000;  // only teardown resolves

  struct Outcome {
    Mutex mu;
    CondVar cv;
    bool done WSQ_GUARDED_BY(mu) = false;
    Status status WSQ_GUARDED_BY(mu);
  } outcome;
  {
    SimulatedShardCluster cluster(&TestCorpus(), opt);
    cluster.service()->Submit(
        Count("colorado"), [&outcome](SearchResponse resp) {
          MutexLock lock(&outcome.mu);
          outcome.done = true;
          outcome.status = resp.status;
          outcome.cv.NotifyAll();
        });
    // Destroying the cluster (service first, then pump, then the fault
    // layer releasing its hung calls) must complete the waiter.
  }
  MutexLock lock(&outcome.mu);
  ASSERT_TRUE(outcome.done);
  EXPECT_FALSE(outcome.status.ok());
}

TEST_F(ShardedServiceTest, CacheRejectsPartialResponses) {
  SimulatedShardCluster::Options opt = FastCluster(4);
  opt.shard_faults.resize(4);
  opt.shard_faults[3].permanent_rate = 1.0;
  SimulatedShardCluster cluster(&TestCorpus(), opt);

  ResultCache cache(16);
  CachingSearchService cached(cluster.service(), &cache);

  // Partial (best-effort, one shard dark): served, but never admitted.
  SearchRequest req = Count("colorado");
  req.shard.policy = ShardPolicy::kBestEffort;
  SearchResponse degraded = cached.Execute(req);
  ASSERT_TRUE(degraded.status.ok());
  ASSERT_TRUE(degraded.partial);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().rejected, 1u);

  // Failures are not admitted either.
  SearchRequest fail_req = Count("colorado");
  fail_req.shard.policy = ShardPolicy::kFail;
  SearchResponse failed = cached.Execute(fail_req);
  ASSERT_FALSE(failed.status.ok());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().rejected, 2u);

  // A complete response (query missing the dark shard's documents is
  // still partial-free only if no shard failed — use a healthy cluster).
  cluster.Quiesce();
  ExpectLedgerBalanced(cluster.pump());

  SimulatedShardCluster healthy(&TestCorpus(), FastCluster(2));
  CachingSearchService healthy_cached(healthy.service(), &cache);
  SearchResponse full = healthy_cached.Execute(Count("colorado"));
  ASSERT_TRUE(full.status.ok());
  EXPECT_FALSE(full.partial);
  EXPECT_EQ(cache.size(), 1u);
  SearchResponse hit = healthy_cached.Execute(Count("colorado"));
  EXPECT_EQ(hit.count, full.count);
  EXPECT_EQ(cache.stats().hits, 1u);
}

}  // namespace
}  // namespace wsq
