#include "net/circuit_breaker.h"

#include <gtest/gtest.h>

#include <mutex>
#include <string>

namespace wsq {
namespace {

/// Manually-advanced clock for deterministic cool-down tests.
struct FakeClock {
  int64_t now = 0;
  std::function<int64_t()> fn() {
    return [this] { return now; };
  }
};

CircuitBreakerOptions OptionsWithClock(FakeClock* clock,
                                       int threshold = 3,
                                       int64_t cooldown = 1000) {
  CircuitBreakerOptions options;
  options.failure_threshold = threshold;
  options.cooldown_micros = cooldown;
  options.now = clock->fn();
  return options;
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveTransientFailures) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsWithClock(&clock));
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure(Status::Unavailable("down"));
    EXPECT_EQ(breaker.state(), CircuitState::kClosed) << i;
  }
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure(Status::Unavailable("down"));
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 1u);
}

TEST(CircuitBreakerTest, OpenCircuitFailsFast) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsWithClock(&clock));
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure(Status::DeadlineExceeded("slow"));
  }
  ASSERT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.stats().fast_failures, 2u);
}

TEST(CircuitBreakerTest, NonTransientErrorsNeitherCountNorReset) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsWithClock(&clock));
  breaker.RecordFailure(Status::Unavailable("down"));
  breaker.RecordFailure(Status::Unavailable("down"));
  // The engine answered (badly): not evidence it is unreachable.
  breaker.RecordFailure(Status::InvalidArgument("bad query"));
  EXPECT_EQ(breaker.consecutive_failures(), 2);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  // The streak survives the non-transient error: one more trips.
  breaker.RecordFailure(Status::Unavailable("down"));
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
}

TEST(CircuitBreakerTest, SuccessResetsTheStreak) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsWithClock(&clock));
  breaker.RecordFailure(Status::Unavailable("down"));
  breaker.RecordFailure(Status::Unavailable("down"));
  breaker.RecordSuccess();
  breaker.RecordFailure(Status::Unavailable("down"));
  breaker.RecordFailure(Status::Unavailable("down"));
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2);
}

TEST(CircuitBreakerTest, CooldownAdmitsOneProbe) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsWithClock(&clock, 3, 1000));
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure(Status::Unavailable("down"));
  }
  ASSERT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_FALSE(breaker.Allow());

  clock.now = 1000;  // cool-down elapsed
  EXPECT_TRUE(breaker.Allow());  // the probe
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // only one probe at a time
  EXPECT_EQ(breaker.stats().probes, 1u);
}

TEST(CircuitBreakerTest, ProbeSuccessClosesTheCircuit) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsWithClock(&clock, 3, 1000));
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure(Status::Unavailable("down"));
  }
  clock.now = 1500;
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreakerTest, ProbeFailureReopensWithFreshCooldown) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsWithClock(&clock, 3, 1000));
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure(Status::Unavailable("down"));
  }
  clock.now = 1200;
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure(Status::Unavailable("still down"));
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 2u);
  EXPECT_FALSE(breaker.Allow());  // fresh cool-down from 1200
  clock.now = 2199;
  EXPECT_FALSE(breaker.Allow());
  clock.now = 2200;
  EXPECT_TRUE(breaker.Allow());  // next probe
}

TEST(CircuitBreakerTest, NonTransientProbeOutcomeReleasesTheGate) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsWithClock(&clock, 3, 1000));
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure(Status::Unavailable("down"));
  }
  clock.now = 1000;
  bool as_probe = false;
  ASSERT_TRUE(breaker.Allow(&as_probe));
  ASSERT_TRUE(as_probe);
  // The probe came back with a non-transient error: the engine is
  // reachable but the query is bad. That neither closes nor re-trips —
  // but it MUST release the single probe slot, or the circuit wedges
  // half-open until the stale-probe escape a full cool-down later.
  breaker.RecordFailure(Status::ExecutionError("bad query"), true);
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  EXPECT_TRUE(breaker.Allow(&as_probe));  // fresh probe, immediately
  EXPECT_TRUE(as_probe);
  breaker.RecordSuccess(true);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
}

TEST(CircuitBreakerTest, StragglerSuccessDoesNotCloseHalfOpen) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsWithClock(&clock, 3, 1000));
  // A slow call dispatched before the trip is still in flight...
  bool pre_trip_probe = false;
  ASSERT_TRUE(breaker.Allow(&pre_trip_probe));
  ASSERT_FALSE(pre_trip_probe);  // closed: not a probe
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure(Status::Unavailable("down"));
  }
  clock.now = 1000;
  bool as_probe = false;
  ASSERT_TRUE(breaker.Allow(&as_probe));  // the real probe
  ASSERT_TRUE(as_probe);
  // ...and its success lands while the probe is outstanding. Stale
  // evidence from before the outage must not close the circuit.
  breaker.RecordSuccess(false);
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  // Nor may a stale transient failure re-trip it under the probe.
  breaker.RecordFailure(Status::Unavailable("stale"), false);
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  // The probe's own verdict decides.
  breaker.RecordSuccess(true);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
}

TEST(CircuitBreakerTest, FlaglessCallsKeepLegacyInference) {
  FakeClock clock;
  CircuitBreaker breaker(OptionsWithClock(&clock, 3, 1000));
  for (int i = 0; i < 3; ++i) {
    breaker.RecordFailure(Status::Unavailable("down"));
  }
  clock.now = 1000;
  ASSERT_TRUE(breaker.Allow());
  ASSERT_EQ(breaker.state(), CircuitState::kHalfOpen);
  // The flag-less overload infers was_probe from the half-open state,
  // so pre-existing callers (and tests) behave as before.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_EQ(CircuitStateToString(CircuitState::kClosed), "Closed");
  EXPECT_EQ(CircuitStateToString(CircuitState::kOpen), "Open");
  EXPECT_EQ(CircuitStateToString(CircuitState::kHalfOpen), "HalfOpen");
}

/// Backend whose health is script-controlled.
class ScriptedService : public SearchService {
 public:
  const std::string& name() const override { return name_; }

  void Submit(SearchRequest request, SearchCallback done) override {
    (void)request;
    bool fail;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++served_;
      fail = failing_;
    }
    if (fail) {
      done(SearchResponse{Status::Unavailable("scripted outage"), 0, {}});
    } else {
      done(SearchResponse{Status::OK(), 7, {}});
    }
  }

  void set_failing(bool failing) {
    std::lock_guard<std::mutex> lock(mu_);
    failing_ = failing;
  }
  uint64_t served() const {
    std::lock_guard<std::mutex> lock(mu_);
    return served_;
  }

 private:
  std::string name_ = "AltaVista";
  mutable std::mutex mu_;
  bool failing_ = false;
  uint64_t served_ = 0;
};

TEST(CircuitBreakerServiceTest, ShieldsBackendWhileOpenThenRecovers) {
  FakeClock clock;
  ScriptedService backend;
  backend.set_failing(true);
  CircuitBreakerSearchService guarded(&backend,
                                      OptionsWithClock(&clock, 3, 1000));

  SearchRequest req;
  req.query = "databases";
  // Three transient failures reach the backend and trip the circuit.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(guarded.Execute(req).status.code(),
              StatusCode::kUnavailable);
  }
  EXPECT_EQ(guarded.breaker()->state(), CircuitState::kOpen);
  EXPECT_EQ(backend.served(), 3u);

  // While open, rejections are instant and the backend sees nothing.
  for (int i = 0; i < 5; ++i) {
    SearchResponse resp = guarded.Execute(req);
    EXPECT_EQ(resp.status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(IsTransient(resp.status.code()));
  }
  EXPECT_EQ(backend.served(), 3u);
  EXPECT_EQ(guarded.breaker()->stats().fast_failures, 5u);

  // Engine heals; after the cool-down one probe goes through and
  // closes the circuit for everyone.
  backend.set_failing(false);
  clock.now = 1000;
  EXPECT_TRUE(guarded.Execute(req).status.ok());
  EXPECT_EQ(guarded.breaker()->state(), CircuitState::kClosed);
  EXPECT_TRUE(guarded.Execute(req).status.ok());
  EXPECT_EQ(backend.served(), 5u);
}

}  // namespace
}  // namespace wsq
