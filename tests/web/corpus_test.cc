#include "web/corpus.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace wsq {
namespace {

CorpusConfig SmallConfig() {
  CorpusConfig cfg;
  cfg.num_documents = 500;
  cfg.min_doc_length = 20;
  cfg.max_doc_length = 60;
  cfg.vocab_size = 300;
  cfg.seed = 7;
  return cfg;
}

TEST(TokenizeTest, LowercasesAndSplits) {
  auto t = TokenizeText("New Mexico, near 'Four Corners'!");
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0], "new");
  EXPECT_EQ(t[1], "mexico");
  EXPECT_EQ(t[2], "near");
  EXPECT_EQ(t[3], "four");
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeText("").empty());
  EXPECT_TRUE(TokenizeText("... !!! ---").empty());
}

TEST(VocabularyTest, UniqueAndDeterministic) {
  auto v1 = MakeSyntheticVocabulary(500, 3);
  auto v2 = MakeSyntheticVocabulary(500, 3);
  EXPECT_EQ(v1, v2);
  std::set<std::string> unique(v1.begin(), v1.end());
  EXPECT_EQ(unique.size(), 500u);
}

TEST(VocabularyTest, DifferentSeedsDiffer) {
  EXPECT_NE(MakeSyntheticVocabulary(100, 1),
            MakeSyntheticVocabulary(100, 2));
}

TEST(CorpusTest, GeneratesRequestedDocumentCount) {
  Corpus c = Corpus::Generate(SmallConfig(), {});
  EXPECT_EQ(c.size(), 500u);
}

TEST(CorpusTest, DeterministicFromSeed) {
  Corpus a = Corpus::Generate(SmallConfig(), {{"colorado", 1.0}});
  Corpus b = Corpus::Generate(SmallConfig(), {{"colorado", 1.0}});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.document(i).url, b.document(i).url);
    EXPECT_EQ(a.document(i).terms, b.document(i).terms);
  }
}

TEST(CorpusTest, DocLengthsWithinBounds) {
  CorpusConfig cfg = SmallConfig();
  cfg.entity_rate = 0;  // no injections
  cfg.cooc_rate = 0;
  Corpus c = Corpus::Generate(cfg, {});
  for (const Document& d : c.documents()) {
    EXPECT_GE(d.terms.size(), cfg.min_doc_length);
    EXPECT_LE(d.terms.size(), cfg.max_doc_length);
  }
}

TEST(CorpusTest, UrlsAreUnique) {
  Corpus c = Corpus::Generate(SmallConfig(), {});
  std::set<std::string> urls;
  for (const Document& d : c.documents()) urls.insert(d.url);
  EXPECT_EQ(urls.size(), c.size());
}

TEST(CorpusTest, DatesLookLike1999) {
  Corpus c = Corpus::Generate(SmallConfig(), {});
  for (const Document& d : c.documents()) {
    ASSERT_EQ(d.date.size(), 10u);
    EXPECT_EQ(d.date.substr(0, 5), "1999-");
  }
}

size_t CountMentions(const Corpus& c, const std::string& word) {
  size_t n = 0;
  for (const Document& d : c.documents()) {
    for (const std::string& t : d.terms) {
      if (t == word) ++n;
    }
  }
  return n;
}

TEST(CorpusTest, EntityWeightsShapeMentionCounts) {
  Corpus c = Corpus::Generate(
      SmallConfig(),
      {{"heavyentity", 10.0}, {"lightentity", 1.0}});
  size_t heavy = CountMentions(c, "heavyentity");
  size_t light = CountMentions(c, "lightentity");
  EXPECT_GT(heavy, light * 3);
  EXPECT_GT(light, 0u);
}

TEST(CorpusTest, MultiWordEntitiesInsertedAdjacently) {
  Corpus c = Corpus::Generate(SmallConfig(), {{"new mexico", 5.0}});
  size_t adjacent = 0;
  for (const Document& d : c.documents()) {
    for (size_t i = 0; i + 1 < d.terms.size(); ++i) {
      if (d.terms[i] == "new" && d.terms[i + 1] == "mexico") ++adjacent;
    }
  }
  EXPECT_GT(adjacent, 0u);
  // "mexico" only enters via the entity phrase, so nearly every mention
  // is preceded by "new" (a later injection can land inside an earlier
  // phrase and split it, hence "nearly").
  size_t total = CountMentions(c, "mexico");
  EXPECT_GE(adjacent * 10, total * 9);
  EXPECT_LE(adjacent, total);
}

TEST(CorpusTest, CooccurrencesPlantedWithinWindow) {
  CorpusConfig cfg = SmallConfig();
  cfg.cooc_rate = 0.5;
  Corpus c = Corpus::Generate(cfg, {},
                              {{"alphaterm", "betaterm", 1.0}});
  size_t near_pairs = 0;
  for (const Document& d : c.documents()) {
    std::vector<size_t> a_pos, b_pos;
    for (size_t i = 0; i < d.terms.size(); ++i) {
      if (d.terms[i] == "alphaterm") a_pos.push_back(i);
      if (d.terms[i] == "betaterm") b_pos.push_back(i);
    }
    for (size_t a : a_pos) {
      for (size_t b : b_pos) {
        size_t dist = a > b ? a - b : b - a;
        if (dist <= cfg.near_window + 1) ++near_pairs;
      }
    }
  }
  EXPECT_GT(near_pairs, 50u);
}

TEST(CorpusTest, ZeroEntityRateLeavesPureBackground) {
  CorpusConfig cfg = SmallConfig();
  cfg.entity_rate = 0;
  Corpus c = Corpus::Generate(cfg, {{"uniqueentityword", 100.0}});
  EXPECT_EQ(CountMentions(c, "uniqueentityword"), 0u);
}

}  // namespace
}  // namespace wsq
