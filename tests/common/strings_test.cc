#include "common/strings.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(StringsTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToUpper("MiXeD 123"), "MIXED 123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringsTest, SplitWhitespaceEmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("WebCount", "Web"));
  EXPECT_FALSE(StartsWith("Web", "WebCount"));
  EXPECT_TRUE(EndsWith("WebCount", "Count"));
  EXPECT_FALSE(EndsWith("Count", "WebCount"));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace wsq
