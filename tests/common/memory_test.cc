#include "common/memory.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wsq {
namespace {

TEST(MemoryBudgetTest, ReserveReleaseBalances) {
  MemoryBudget b("b", 1000);
  EXPECT_TRUE(b.TryReserve(400));
  EXPECT_EQ(b.used(), 400u);
  EXPECT_TRUE(b.TryReserve(600));
  EXPECT_EQ(b.used(), 1000u);
  b.Release(1000);
  EXPECT_EQ(b.used(), 0u);
  EXPECT_EQ(b.peak_used(), 1000u);
}

TEST(MemoryBudgetTest, LimitRefusesAndCountsFailure) {
  MemoryBudget b("b", 100);
  EXPECT_TRUE(b.TryReserve(80));
  EXPECT_FALSE(b.TryReserve(21));
  // The failed reservation charged nothing.
  EXPECT_EQ(b.used(), 80u);
  EXPECT_EQ(b.stats().reserve_failures, 1u);
  EXPECT_TRUE(b.TryReserve(20));
  b.Release(100);
}

TEST(MemoryBudgetTest, ZeroLimitMeansUnlimited) {
  MemoryBudget b("b", 0);
  EXPECT_TRUE(b.TryReserve(static_cast<size_t>(1) << 40));
  EXPECT_EQ(b.Available(), SIZE_MAX);
  b.Release(static_cast<size_t>(1) << 40);
}

TEST(MemoryBudgetTest, ChargePropagatesToAncestors) {
  MemoryBudget root("root", 0);
  MemoryBudget mid("mid", 0, &root);
  MemoryBudget leaf("leaf", 0, &mid);
  EXPECT_TRUE(leaf.TryReserve(64));
  EXPECT_EQ(leaf.used(), 64u);
  EXPECT_EQ(mid.used(), 64u);
  EXPECT_EQ(root.used(), 64u);
  leaf.Release(64);
  EXPECT_EQ(root.used(), 0u);
}

TEST(MemoryBudgetTest, AncestorLimitBoundsChild) {
  MemoryBudget parent("parent", 100);
  MemoryBudget child("child", 0, &parent);
  EXPECT_TRUE(child.TryReserve(90));
  // Child is unlimited but the parent refuses: nothing is charged
  // anywhere (the child's provisional charge is unwound).
  EXPECT_FALSE(child.TryReserve(20));
  EXPECT_EQ(child.used(), 90u);
  EXPECT_EQ(parent.used(), 90u);
  child.Release(90);
}

TEST(MemoryBudgetTest, TighterChildLimitWins) {
  MemoryBudget parent("parent", 1000);
  MemoryBudget child("child", 50, &parent);
  EXPECT_FALSE(child.TryReserve(51));
  EXPECT_TRUE(child.TryReserve(50));
  EXPECT_EQ(parent.used(), 50u);
  child.Release(50);
}

TEST(MemoryBudgetTest, AvailableIsMinHeadroomOverChain) {
  MemoryBudget parent("parent", 100);
  MemoryBudget child("child", 1000, &parent);
  EXPECT_TRUE(child.TryReserve(60));
  // Parent headroom (40) is tighter than the child's own (940).
  EXPECT_EQ(child.Available(), 40u);
  child.Release(60);
}

TEST(MemoryBudgetTest, ForceReserveOverageIsCounted) {
  MemoryBudget b("b", 10);
  b.ForceReserve(25);
  EXPECT_EQ(b.used(), 25u);
  EXPECT_EQ(b.stats().forced_overages, 1u);
  EXPECT_EQ(b.Available(), 0u);
  b.Release(25);
}

TEST(MemoryBudgetTest, PressureHookRunsAndReservationRetries) {
  MemoryBudget b("b", 100);
  EXPECT_TRUE(b.TryReserve(95));
  size_t shed_calls = 0;
  uint64_t id = b.AddPressureHook([&](size_t wanted) {
    ++shed_calls;
    size_t freed = wanted <= 95 ? wanted : 95;
    b.Release(freed);  // behave like a component releasing its charge
    return freed;
  });
  // 95 used + 10 wanted > 100: the hook frees room, the retry fits.
  EXPECT_TRUE(b.TryReserve(10));
  EXPECT_EQ(shed_calls, 1u);
  EXPECT_GE(b.stats().pressure_invocations, 1u);
  EXPECT_GE(b.stats().pressure_released_bytes, 5u);
  b.RemovePressureHook(id);
  b.Release(b.used());
}

TEST(MemoryBudgetTest, RemovedHookNoLongerRuns) {
  MemoryBudget b("b", 10);
  size_t calls = 0;
  uint64_t id = b.AddPressureHook([&](size_t) {
    ++calls;
    return 0u;
  });
  EXPECT_FALSE(b.TryReserve(100));
  EXPECT_EQ(calls, 1u);
  b.RemovePressureHook(id);
  EXPECT_FALSE(b.TryReserve(100));
  EXPECT_EQ(calls, 1u);
}

TEST(MemoryBudgetTest, ProcessRootIsSharedAndUnlimitedByDefault) {
  MemoryBudget* p = MemoryBudget::Process();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p, MemoryBudget::Process());
  EXPECT_EQ(p->parent(), nullptr);
}

TEST(MemoryBudgetTest, ConcurrentChargesBalanceToZero) {
  MemoryBudget b("b", 0);
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&b] {
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(b.TryReserve(64));
        b.Release(64);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(b.used(), 0u);
  EXPECT_GE(b.peak_used(), 64u);
}

TEST(MemoryReservationTest, DestructorReleasesOutstandingCharge) {
  MemoryBudget b("b", 0);
  {
    MemoryReservation r(&b);
    ASSERT_TRUE(r.TryAdd(128));
    EXPECT_EQ(b.used(), 128u);
  }
  EXPECT_EQ(b.used(), 0u);
}

TEST(MemoryReservationTest, TracksBytesAndPeak) {
  MemoryBudget b("b", 0);
  MemoryReservation r(&b);
  ASSERT_TRUE(r.TryAdd(100));
  ASSERT_TRUE(r.TryAdd(50));
  r.Subtract(120);
  EXPECT_EQ(r.bytes(), 30u);
  EXPECT_EQ(r.peak_bytes(), 150u);
  EXPECT_EQ(b.used(), 30u);
  r.ReleaseAll();
  EXPECT_EQ(r.bytes(), 0u);
  EXPECT_EQ(r.peak_bytes(), 150u);
  EXPECT_EQ(b.used(), 0u);
}

TEST(MemoryReservationTest, SubtractClampsToOutstanding) {
  MemoryBudget b("b", 0);
  MemoryReservation r(&b);
  r.ForceAdd(10);
  r.Subtract(1000);
  EXPECT_EQ(r.bytes(), 0u);
  EXPECT_EQ(b.used(), 0u);
}

TEST(MemoryReservationTest, UnboundReservationTracksLocally) {
  MemoryReservation r;
  EXPECT_TRUE(r.TryAdd(1 << 20));
  r.ForceAdd(100);
  EXPECT_EQ(r.bytes(), (1u << 20) + 100u);
  EXPECT_EQ(r.budget(), nullptr);
  r.ReleaseAll();
  EXPECT_EQ(r.bytes(), 0u);
}

TEST(MemoryReservationTest, FailedTryAddChargesNothing) {
  MemoryBudget b("b", 100);
  MemoryReservation r(&b);
  ASSERT_TRUE(r.TryAdd(90));
  EXPECT_FALSE(r.TryAdd(20));
  EXPECT_EQ(r.bytes(), 90u);
  EXPECT_EQ(b.used(), 90u);
}

}  // namespace
}  // namespace wsq
