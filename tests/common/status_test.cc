#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/result.h"

namespace wsq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("table foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table foo");
  EXPECT_EQ(s.ToString(), "NotFound: table foo");
}

TEST(StatusTest, CopySharesState) {
  Status a = Status::ParseError("bad token");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kParseError);
  EXPECT_EQ(b.message(), "bad token");
  EXPECT_EQ(a, b);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDataLoss); ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, TransientCodesAreRetryable) {
  EXPECT_TRUE(IsTransient(StatusCode::kUnavailable));
  EXPECT_TRUE(IsTransient(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsTransient(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsTransient(StatusCode::kIOError));
}

TEST(StatusTest, PermanentCodesAreNotRetryable) {
  EXPECT_FALSE(IsTransient(StatusCode::kOk));
  EXPECT_FALSE(IsTransient(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsTransient(StatusCode::kParseError));
  EXPECT_FALSE(IsTransient(StatusCode::kExecutionError));
  EXPECT_FALSE(IsTransient(StatusCode::kNotFound));
  EXPECT_FALSE(IsTransient(StatusCode::kInternal));
  // Damaged bytes do not heal on retry.
  EXPECT_FALSE(IsTransient(StatusCode::kDataLoss));
}

TEST(StatusTest, DataLossFactory) {
  Status s = Status::DataLoss("checksum mismatch on page 3");
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.ToString(), "DataLoss: checksum mismatch on page 3");
}

TEST(StatusTest, NewFactoriesCarryTheirCodes) {
  EXPECT_EQ(Status::Unavailable("down").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Unavailable("down").ToString(), "Unavailable: down");
  EXPECT_EQ(Status::DeadlineExceeded("slow").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DeadlineExceeded("slow").ToString(),
            "DeadlineExceeded: slow");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  WSQ_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(MacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_EQ(UseReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  WSQ_ASSIGN_OR_RETURN(int h, Half(x));
  WSQ_ASSIGN_OR_RETURN(h, Half(h));
  return h;
}

TEST(MacrosTest, AssignOrReturn) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(Quarter(6).ok());
}

}  // namespace
}  // namespace wsq
