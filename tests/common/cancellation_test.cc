#include "common/cancellation.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/clock.h"

namespace wsq {
namespace {

TEST(CancellationTokenTest, FreshTokenIsAlive) {
  CancellationToken token;
  EXPECT_FALSE(token.IsCancelled());
  EXPECT_FALSE(token.HasDeadline());
  EXPECT_EQ(token.RemainingMicros(), CancellationToken::kNoDeadline);
  EXPECT_TRUE(token.CheckAlive().ok());
}

TEST(CancellationTokenTest, CancelFlipsCheckAlive) {
  CancellationToken token;
  token.Cancel();
  EXPECT_TRUE(token.IsCancelled());
  Status s = token.CheckAlive();
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

TEST(CancellationTokenTest, ExpiredDeadlineReportsDeadlineExceeded) {
  CancellationToken token;
  token.SetDeadline(NowMicros() - 1);
  EXPECT_TRUE(token.HasDeadline());
  EXPECT_EQ(token.RemainingMicros(), 0);
  Status s = token.CheckAlive();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTokenTest, FutureDeadlineStaysAlive) {
  CancellationToken token;
  token.SetDeadlineAfter(60LL * 1000 * 1000);
  EXPECT_TRUE(token.CheckAlive().ok());
  int64_t remaining = token.RemainingMicros();
  EXPECT_GT(remaining, 0);
  EXPECT_LE(remaining, 60LL * 1000 * 1000);
}

TEST(CancellationTokenTest, CancelWinsOverDeadline) {
  CancellationToken token;
  token.SetDeadlineAfter(60LL * 1000 * 1000);
  token.Cancel();
  EXPECT_EQ(token.CheckAlive().code(), StatusCode::kCancelled);
}

TEST(CancellationTokenTest, ResetRevivesToken) {
  CancellationToken token;
  token.SetDeadline(NowMicros() - 1);
  token.Cancel();
  token.Reset();
  EXPECT_FALSE(token.IsCancelled());
  EXPECT_FALSE(token.HasDeadline());
  EXPECT_TRUE(token.CheckAlive().ok());
}

// Cancel is release-ordered and CheckAlive acquire-ordered: hammering
// the token from many threads must be race-free (run under TSan).
TEST(CancellationTokenTest, ConcurrentCancelAndCheck) {
  CancellationToken token;
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&token] {
      for (int i = 0; i < 1000; ++i) {
        (void)token.CheckAlive();
        (void)token.RemainingMicros();
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&token, t] {
      if (t % 2 == 0) {
        token.Cancel();
      } else {
        token.SetDeadlineAfter(1000000);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(token.CheckAlive().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace wsq
