#include "common/random.h"

#include <gtest/gtest.h>

#include <map>

namespace wsq {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) hit_lo = true;
    if (v == 3) hit_hi = true;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(ZipfTest, SamplesWithinRange) {
  Rng rng(5);
  ZipfDistribution zipf(100, 1.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(5);
  ZipfDistribution zipf(1000, 1.2);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  // Rank 0 should be sampled far more often than rank 100.
  EXPECT_GT(counts[0], counts[100] * 5);
}

TEST(ZipfTest, ZeroSkewIsRoughlyUniform) {
  Rng rng(17);
  ZipfDistribution zipf(10, 0.0);
  std::map<size_t, int> counts;
  const int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / kTrials, 0.1, 0.02)
        << "rank " << rank;
  }
}

TEST(ZipfTest, SingleElement) {
  Rng rng(1);
  ZipfDistribution zipf(1, 1.0);
  EXPECT_EQ(zipf.Sample(rng), 0u);
}

}  // namespace
}  // namespace wsq
