#include "vtab/virtual_table.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

// Minimal virtual table used to test the registry and interface
// contracts without pulling in the WSQ web tables.
class FakeTable : public VirtualTable {
 public:
  explicit FakeTable(std::string name)
      : name_(std::move(name)), destination_("fake") {}

  const std::string& name() const override { return name_; }
  const std::string& destination() const override { return destination_; }

  Schema SchemaForTerms(size_t n) const override {
    Schema s;
    s.AddColumn(Column("SearchExp", TypeId::kString, name_));
    for (size_t i = 1; i <= n; ++i) {
      s.AddColumn(Column("T" + std::to_string(i), TypeId::kString, name_));
    }
    s.AddColumn(Column("Out", TypeId::kInt64, name_));
    return s;
  }

  size_t NumOutputColumns() const override { return 1; }
  bool SingleRowOutput() const override { return true; }

  Result<std::vector<Row>> Fetch(const VTableRequest& request) override {
    Row row;
    row.Append(Value::Str(request.search_exp));
    for (const std::string& t : request.terms) {
      row.Append(Value::Str(t));
    }
    row.Append(Value::Int(static_cast<int64_t>(request.terms.size())));
    return std::vector<Row>{row};
  }

  using VirtualTable::SubmitAsync;
  CallId SubmitAsync(const VTableRequest& request, ReqPump* pump,
                     int64_t timeout_micros) override {
    last_timeout_micros = timeout_micros;
    int64_t n = static_cast<int64_t>(request.terms.size());
    return pump->Register(destination_, [n](CallCompletion done) {
      done(CallResult{Status::OK(), {Row({Value::Int(n)})}});
    });
  }

  int64_t last_timeout_micros = -1;

 private:
  std::string name_;
  std::string destination_;
};

TEST(VirtualTableRegistryTest, RegisterAndGet) {
  VirtualTableRegistry registry;
  ASSERT_TRUE(
      registry.Register(std::make_unique<FakeTable>("WebCount")).ok());
  auto t = registry.Get("WebCount");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "WebCount");
}

TEST(VirtualTableRegistryTest, LookupCaseInsensitive) {
  VirtualTableRegistry registry;
  ASSERT_TRUE(
      registry.Register(std::make_unique<FakeTable>("WebCount")).ok());
  EXPECT_TRUE(registry.Get("webcount").ok());
  EXPECT_TRUE(registry.Has("WEBCOUNT"));
}

TEST(VirtualTableRegistryTest, DuplicateRejected) {
  VirtualTableRegistry registry;
  ASSERT_TRUE(
      registry.Register(std::make_unique<FakeTable>("WebCount")).ok());
  auto s = registry.Register(std::make_unique<FakeTable>("webcount"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(VirtualTableRegistryTest, MissingNotFound) {
  VirtualTableRegistry registry;
  EXPECT_FALSE(registry.Get("WebPages").ok());
  EXPECT_FALSE(registry.Has("WebPages"));
}

TEST(VirtualTableRegistryTest, ListInRegistrationOrder) {
  VirtualTableRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_unique<FakeTable>("B")).ok());
  ASSERT_TRUE(registry.Register(std::make_unique<FakeTable>("A")).ok());
  auto names = registry.List();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "B");
  EXPECT_EQ(names[1], "A");
}

TEST(VirtualTableTest, SchemaFamilyGrowsWithTerms) {
  FakeTable t("WebCount");
  EXPECT_EQ(t.SchemaForTerms(1).NumColumns(), 3u);  // SearchExp, T1, Out
  EXPECT_EQ(t.SchemaForTerms(3).NumColumns(), 5u);
  EXPECT_EQ(t.SchemaForTerms(2).column(2).name, "T2");
}

TEST(VirtualTableTest, SyncFetchReturnsFullRows) {
  FakeTable t("WebCount");
  VTableRequest req;
  req.search_exp = "%1 near %2";
  req.terms = {"colorado", "knuth"};
  auto rows = *t.Fetch(req);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 4u);
  EXPECT_EQ(rows[0].value(3).AsInt(), 2);
}

TEST(VirtualTableTest, AsyncSubmitRoutesThroughPump) {
  FakeTable t("WebCount");
  ReqPump pump;
  VTableRequest req;
  req.terms = {"a", "b", "c"};
  CallId id = t.SubmitAsync(req, &pump);
  CallResult r = pump.TakeBlocking(id);
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 3);
}

}  // namespace
}  // namespace wsq
