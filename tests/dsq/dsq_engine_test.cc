#include "dsq/dsq_engine.h"

#include <gtest/gtest.h>

#include "wsq/demo.h"

namespace wsq {
namespace {

class DsqEngineTest : public ::testing::Test {
 protected:
  static DemoEnv& Env() {
    static DemoEnv* const kEnv = [] {
      DemoOptions opt;
      opt.corpus.num_documents = 6000;
      opt.latency = LatencyModel::Instant();
      return new DemoEnv(opt);
    }();
    return *kEnv;
  }

  DsqEngine MakeEngine() {
    return DsqEngine(&Env().db(), &Env().altavista_service());
  }
};

TEST_F(DsqEngineTest, ScubaDivingFindsCoastalStates) {
  DsqEngine dsq = MakeEngine();
  auto r = dsq.Explain("scuba diving", {"States.Name"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->terms.empty());
  // Florida leads — the planted correlation (paper §1's example).
  EXPECT_EQ(r->terms[0].term, "Florida");
  std::set<std::string> top3;
  for (size_t i = 0; i < 3 && i < r->terms.size(); ++i) {
    top3.insert(r->terms[i].term);
  }
  EXPECT_TRUE(top3.count("Hawaii"));
  EXPECT_EQ(r->external_calls, 50u);  // one call per state
}

TEST_F(DsqEngineTest, MultipleSourceColumns) {
  DsqEngine dsq = MakeEngine();
  auto r = dsq.Explain("scuba diving", {"States.Name", "Movies.Title"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->external_calls, 60u);  // 50 states + 10 movies
  // Both sources contribute to the top ranks.
  std::set<std::string> sources;
  for (const auto& t : r->terms) sources.insert(t.source);
  EXPECT_TRUE(sources.count("States.Name"));
  EXPECT_TRUE(sources.count("Movies.Title"));
  // The planted diving movie ranks.
  bool deep_descent = false;
  for (const auto& t : r->terms) {
    if (t.term == "Deep Descent") deep_descent = true;
  }
  EXPECT_TRUE(deep_descent);
}

TEST_F(DsqEngineTest, PairsFindStateMovieTriples) {
  DsqEngine dsq = MakeEngine();
  DsqEngine::Options opt;
  opt.include_pairs = true;
  opt.pair_seed_terms = 3;
  auto r = dsq.Explain("scuba diving", {"States.Name", "Movies.Title"},
                       opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 60 singles + 3x3 pairs.
  EXPECT_EQ(r->external_calls, 69u);
  ASSERT_FALSE(r->pairs.empty());
  // The planted Florida/Deep-Descent triple surfaces
  // ("an underwater thriller filmed in Florida", §1).
  bool found = false;
  for (const auto& p : r->pairs) {
    if ((p.term_a == "Florida" && p.term_b == "Deep Descent") ||
        (p.term_a == "Deep Descent" && p.term_b == "Florida")) {
      found = true;
      EXPECT_GT(p.count, 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DsqEngineTest, CountsAreRankedDescending) {
  DsqEngine dsq = MakeEngine();
  auto r = dsq.Explain("four corners", {"States.Name"});
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->terms.size(); ++i) {
    EXPECT_GE(r->terms[i - 1].count, r->terms[i].count);
  }
  ASSERT_GE(r->terms.size(), 4u);
  EXPECT_EQ(r->terms[0].term, "Colorado");
}

TEST_F(DsqEngineTest, ZeroCountsDropped) {
  DsqEngine dsq = MakeEngine();
  auto r = dsq.Explain("Knuth", {"Sigs.Name"});
  ASSERT_TRUE(r.ok());
  for (const auto& t : r->terms) {
    EXPECT_GT(t.count, 0) << t.term;
  }
  ASSERT_FALSE(r->terms.empty());
  EXPECT_EQ(r->terms[0].term, "SIGACT");
}

TEST_F(DsqEngineTest, ZeroCountsKeptWhenRequested) {
  DsqEngine dsq = MakeEngine();
  DsqEngine::Options opt;
  opt.drop_zero_counts = false;
  opt.top_k = 37;
  auto r = dsq.Explain("Knuth", {"Sigs.Name"}, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->terms.size(), 37u);
}

TEST_F(DsqEngineTest, InvalidInputsRejected) {
  DsqEngine dsq = MakeEngine();
  EXPECT_FALSE(dsq.Explain("", {"States.Name"}).ok());
  EXPECT_FALSE(dsq.Explain("x", {}).ok());
  EXPECT_FALSE(dsq.Explain("x", {"States"}).ok());
  EXPECT_FALSE(dsq.Explain("x", {"Missing.Name"}).ok());
  EXPECT_FALSE(dsq.Explain("x", {"States.Nope"}).ok());
  // Non-string column.
  EXPECT_FALSE(dsq.Explain("x", {"States.Population"}).ok());
}

TEST_F(DsqEngineTest, TopKTruncates) {
  DsqEngine dsq = MakeEngine();
  DsqEngine::Options opt;
  opt.top_k = 3;
  opt.drop_zero_counts = false;
  auto r = dsq.Explain("computer", {"States.Name"}, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->terms.size(), 3u);
}

}  // namespace
}  // namespace wsq
