#include "exec/req_sync_op.h"

#include <gtest/gtest.h>

#include <thread>

namespace wsq {
namespace {

// Minimal plan node giving ReqSyncNode a child with a schema.
class StubNode : public PlanNode {
 public:
  explicit StubNode(Schema schema)
      : PlanNode(Kind::kScan, std::move(schema)) {}
  std::string Label() const override { return "Stub"; }
};

// Serves a fixed list of rows.
class VectorOperator : public Operator {
 public:
  VectorOperator(const Schema* schema, std::vector<Row> rows)
      : Operator(schema), rows_(std::move(rows)) {}

  Status OpenImpl() override {
    next_ = 0;
    return Status::OK();
  }
  Result<bool> NextImpl(Row* row) override {
    if (next_ >= rows_.size()) return false;
    *row = rows_[next_++];
    return true;
  }
  Status CloseImpl() override { return Status::OK(); }

 private:
  std::vector<Row> rows_;
  size_t next_ = 0;
};

Schema TwoColumnSchema() {
  return Schema({Column("K", TypeId::kString, "t"),
                 Column("V", TypeId::kInt64, "t")});
}

class ReqSyncOpTest : public ::testing::Test {
 protected:
  // Builds a ReqSync over fixed input rows and drains it.
  Result<std::vector<Row>> RunReqSync(std::vector<Row> input,
                                      ReqPump* pump) {
    StubNode stub(TwoColumnSchema());
    auto node = std::make_unique<ReqSyncNode>(
        std::make_unique<StubNode>(TwoColumnSchema()),
        std::vector<size_t>{1});
    auto child = std::make_unique<VectorOperator>(&stub.schema(),
                                                  std::move(input));
    ReqSyncOperator op(node.get(), std::move(child), pump);
    WSQ_RETURN_IF_ERROR(op.Open());
    std::vector<Row> out;
    Row row;
    while (true) {
      WSQ_ASSIGN_OR_RETURN(bool more, op.Next(&row));
      if (!more) break;
      out.push_back(row);
    }
    WSQ_RETURN_IF_ERROR(op.Close());
    return out;
  }

  // Registers a call that completes with `rows` after `delay_micros`.
  CallId Delayed(ReqPump* pump, std::vector<Row> rows,
                 int64_t delay_micros = 2000) {
    return pump->Register(
        "engine", [rows = std::move(rows), delay_micros](
                      CallCompletion done) mutable {
          std::thread([rows = std::move(rows), delay_micros,
                       done = std::move(done)]() mutable {
            std::this_thread::sleep_for(
                std::chrono::microseconds(delay_micros));
            done(CallResult{Status::OK(), std::move(rows)});
          }).detach();
        });
  }
};

TEST_F(ReqSyncOpTest, CompleteTuplesPassThrough) {
  ReqPump pump;
  std::vector<Row> input = {Row({Value::Str("a"), Value::Int(1)}),
                            Row({Value::Str("b"), Value::Int(2)})};
  auto out = RunReqSync(input, &pump);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0], input[0]);
  EXPECT_EQ((*out)[1], input[1]);
}

TEST_F(ReqSyncOpTest, SingleRowCompletion) {
  ReqPump pump;
  CallId c = Delayed(&pump, {Row({Value::Int(42)})});
  auto out = RunReqSync(
      {Row({Value::Str("a"), Value::Pending(c, 0)})}, &pump);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value(1).AsInt(), 42);
  EXPECT_FALSE((*out)[0].HasPlaceholders());
}

TEST_F(ReqSyncOpTest, ZeroRowsCancelsTuple) {
  ReqPump pump;
  CallId c = Delayed(&pump, {});
  auto out = RunReqSync(
      {Row({Value::Str("a"), Value::Pending(c, 0)}),
       Row({Value::Str("keep"), Value::Int(7)})},
      &pump);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value(0).AsString(), "keep");
}

TEST_F(ReqSyncOpTest, MultiRowProliferation) {
  ReqPump pump;
  CallId c = Delayed(&pump, {Row({Value::Int(1)}), Row({Value::Int(2)}),
                             Row({Value::Int(3)})});
  auto out = RunReqSync(
      {Row({Value::Str("x"), Value::Pending(c, 0)})}, &pump);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);  // 1 tuple -> 3 copies (paper §4.3)
  std::set<int64_t> values;
  for (const Row& r : *out) {
    EXPECT_EQ(r.value(0).AsString(), "x");
    values.insert(r.value(1).AsInt());
  }
  EXPECT_EQ(values, (std::set<int64_t>{1, 2, 3}));
}

TEST_F(ReqSyncOpTest, MultipleWaitersOnOneCall) {
  ReqPump pump;
  CallId c = Delayed(&pump, {Row({Value::Int(9)})});
  auto out = RunReqSync(
      {Row({Value::Str("a"), Value::Pending(c, 0)}),
       Row({Value::Str("b"), Value::Pending(c, 0)})},
      &pump);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0].value(1).AsInt(), 9);
  EXPECT_EQ((*out)[1].value(1).AsInt(), 9);
}

TEST_F(ReqSyncOpTest, TupleWaitingOnTwoCalls) {
  // Paper §4.4: a buffered tuple may hold placeholders for two pending
  // calls; proliferation from the first must copy references to the
  // second, and all copies must be patched when it completes.
  ReqPump pump;
  CallId a = Delayed(&pump, {Row({Value::Int(1)}), Row({Value::Int(2)})},
                     1000);
  CallId b = Delayed(&pump, {Row({Value::Int(10)})}, 30000);

  StubNode stub(TwoColumnSchema());
  Schema three({Column("A", TypeId::kInt64, "t"),
                Column("B", TypeId::kInt64, "t"),
                Column("C", TypeId::kString, "t")});
  auto node = std::make_unique<ReqSyncNode>(
      std::make_unique<StubNode>(three), std::vector<size_t>{0, 1});
  auto child = std::make_unique<VectorOperator>(
      &node->schema(),
      std::vector<Row>{Row({Value::Pending(a, 0), Value::Pending(b, 0),
                            Value::Str("x")})});
  ReqSyncOperator op(node.get(), std::move(child), &pump);
  ASSERT_TRUE(op.Open().ok());
  std::vector<Row> out;
  Row row;
  while (true) {
    auto more = op.Next(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    out.push_back(row);
  }
  ASSERT_TRUE(op.Close().ok());

  // Call a proliferates to 2 copies; call b patches BOTH copies.
  ASSERT_EQ(out.size(), 2u);
  std::set<int64_t> a_values;
  for (const Row& r : out) {
    a_values.insert(r.value(0).AsInt());
    EXPECT_EQ(r.value(1).AsInt(), 10);
    EXPECT_EQ(r.value(2).AsString(), "x");
  }
  EXPECT_EQ(a_values, (std::set<int64_t>{1, 2}));
}

TEST_F(ReqSyncOpTest, FailedCallPropagatesError) {
  ReqPump pump;
  CallId c = pump.Register("engine", [](CallCompletion done) {
    done(CallResult{Status::IOError("engine down"), {}});
  });
  auto out = RunReqSync(
      {Row({Value::Str("a"), Value::Pending(c, 0)})}, &pump);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kIOError);
}

CallId Failing(ReqPump* pump, Status error) {
  return pump->Register(
      "engine", [error = std::move(error)](CallCompletion done) {
        done(CallResult{error, {}});
      });
}

// Like RunReqSync but with a policy and a visible operator for stats.
Result<std::vector<Row>> RunWithPolicy(std::vector<Row> input,
                                       ReqPump* pump,
                                       OnCallError policy,
                                       ExecContext* ctx = nullptr,
                                       uint64_t* dropped = nullptr,
                                       uint64_t* padded = nullptr) {
  StubNode stub(TwoColumnSchema());
  auto node = std::make_unique<ReqSyncNode>(
      std::make_unique<StubNode>(TwoColumnSchema()),
      std::vector<size_t>{1});
  node->on_call_error = policy;
  auto child = std::make_unique<VectorOperator>(&stub.schema(),
                                                std::move(input));
  ReqSyncOperator op(node.get(), std::move(child), pump, ctx);
  WSQ_RETURN_IF_ERROR(op.Open());
  std::vector<Row> out;
  Row row;
  while (true) {
    WSQ_ASSIGN_OR_RETURN(bool more, op.Next(&row));
    if (!more) break;
    out.push_back(row);
  }
  WSQ_RETURN_IF_ERROR(op.Close());
  if (dropped != nullptr) *dropped = op.dropped_tuples();
  if (padded != nullptr) *padded = op.null_padded_tuples();
  return out;
}

TEST_F(ReqSyncOpTest, DropTuplePolicyCancelsWaitingTuples) {
  ReqPump pump;
  CallId bad = Failing(&pump, Status::Unavailable("engine down"));
  CallId good = Delayed(&pump, {Row({Value::Int(5)})});
  uint64_t dropped = 0, padded = 0;
  ExecContext ctx;
  auto out = RunWithPolicy(
      {Row({Value::Str("lost"), Value::Pending(bad, 0)}),
       Row({Value::Str("kept"), Value::Pending(good, 0)}),
       Row({Value::Str("plain"), Value::Int(1)})},
      &pump, OnCallError::kDropTuple, &ctx, &dropped, &padded);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 2u);
  for (const Row& r : *out) {
    EXPECT_NE(r.value(0).AsString(), "lost");
    EXPECT_FALSE(r.value(1).is_null());
  }
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(padded, 0u);
  EXPECT_EQ(ctx.dropped_tuples.load(), 1u);
  EXPECT_EQ(ctx.failed_calls.load(), 1u);
}

TEST_F(ReqSyncOpTest, NullPadPolicyCompletesTuplesWithNulls) {
  ReqPump pump;
  CallId bad = Failing(&pump, Status::DeadlineExceeded("too slow"));
  CallId good = Delayed(&pump, {Row({Value::Int(5)})});
  uint64_t dropped = 0, padded = 0;
  ExecContext ctx;
  auto out = RunWithPolicy(
      {Row({Value::Str("padded"), Value::Pending(bad, 0)}),
       Row({Value::Str("kept"), Value::Pending(good, 0)})},
      &pump, OnCallError::kNullPad, &ctx, &dropped, &padded);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 2u);
  for (const Row& r : *out) {
    EXPECT_FALSE(r.HasPlaceholders());
    if (r.value(0).AsString() == "padded") {
      EXPECT_TRUE(r.value(1).is_null());
    } else {
      EXPECT_EQ(r.value(1).AsInt(), 5);
    }
  }
  EXPECT_EQ(padded, 1u);
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(ctx.null_padded_tuples.load(), 1u);
}

TEST_F(ReqSyncOpTest, NullPadKeepsOtherPendingCallsAlive) {
  // A tuple waiting on TWO calls: one fails (padded with NULL), the
  // other still completes and patches its own column.
  ReqPump pump;
  CallId bad = Failing(&pump, Status::Unavailable("down"));
  CallId good = Delayed(&pump, {Row({Value::Int(10)})}, 5000);

  StubNode stub(TwoColumnSchema());
  Schema three({Column("A", TypeId::kInt64, "t"),
                Column("B", TypeId::kInt64, "t"),
                Column("C", TypeId::kString, "t")});
  auto node = std::make_unique<ReqSyncNode>(
      std::make_unique<StubNode>(three), std::vector<size_t>{0, 1});
  node->on_call_error = OnCallError::kNullPad;
  auto child = std::make_unique<VectorOperator>(
      &node->schema(),
      std::vector<Row>{Row({Value::Pending(bad, 0), Value::Pending(good, 0),
                            Value::Str("x")})});
  ReqSyncOperator op(node.get(), std::move(child), &pump);
  ASSERT_TRUE(op.Open().ok());
  std::vector<Row> out;
  Row row;
  while (true) {
    auto more = op.Next(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    out.push_back(row);
  }
  ASSERT_TRUE(op.Close().ok());

  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].value(0).is_null());
  EXPECT_EQ(out[0].value(1).AsInt(), 10);
  EXPECT_EQ(out[0].value(2).AsString(), "x");
  EXPECT_EQ(op.null_padded_tuples(), 1u);
}

TEST_F(ReqSyncOpTest, FailQueryPolicyDoesNotWedgeClose) {
  // Strict policy: the error aborts the drain, and Close() — which the
  // executor runs on the error path to reap outstanding calls — must
  // not block trying to re-reap the already-consumed failed call.
  ReqPump pump;
  CallId bad = Failing(&pump, Status::Unavailable("down"));
  CallId slow = Delayed(&pump, {Row({Value::Int(1)})}, 2000);

  StubNode stub(TwoColumnSchema());
  auto node = std::make_unique<ReqSyncNode>(
      std::make_unique<StubNode>(TwoColumnSchema()),
      std::vector<size_t>{1});
  auto child = std::make_unique<VectorOperator>(
      &stub.schema(),
      std::vector<Row>{Row({Value::Str("a"), Value::Pending(bad, 0)}),
                       Row({Value::Str("b"), Value::Pending(slow, 0)})});
  ReqSyncOperator op(node.get(), std::move(child), &pump);
  ASSERT_TRUE(op.Open().ok());
  Row row;
  Status error;
  while (true) {
    auto more = op.Next(&row);
    if (!more.ok()) {
      error = more.status();
      break;
    }
    if (!*more) break;
  }
  EXPECT_EQ(error.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(op.Close().ok());  // reaps `slow`, skips consumed `bad`
  EXPECT_EQ(pump.pending_results(), 0u);
}

TEST_F(ReqSyncOpTest, BadFieldIndexIsInternalError) {
  ReqPump pump;
  CallId c = Delayed(&pump, {Row({Value::Int(1)})});
  auto out = RunReqSync(
      {Row({Value::Str("a"), Value::Pending(c, 5)})}, &pump);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
}

TEST_F(ReqSyncOpTest, ManyConcurrentCallsAllPatched) {
  ReqPump pump;
  std::vector<Row> input;
  const int kCalls = 64;
  for (int i = 0; i < kCalls; ++i) {
    CallId c = Delayed(&pump, {Row({Value::Int(i)})},
                       1000 + (i % 7) * 500);
    input.push_back(Row({Value::Str("k" + std::to_string(i)),
                         Value::Pending(c, 0)}));
  }
  auto out = RunReqSync(std::move(input), &pump);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), static_cast<size_t>(kCalls));
  std::set<int64_t> seen;
  for (const Row& r : *out) {
    EXPECT_FALSE(r.HasPlaceholders());
    seen.insert(r.value(1).AsInt());
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kCalls));
}

TEST_F(ReqSyncOpTest, EmptyInput) {
  ReqPump pump;
  auto out = RunReqSync({}, &pump);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

// Wraps VectorOperator and counts how many rows have been pulled.
class CountingOperator : public Operator {
 public:
  CountingOperator(const Schema* schema, std::vector<Row> rows)
      : Operator(schema), inner_(schema, std::move(rows)) {}

  Status OpenImpl() override { return inner_.Open(); }
  Result<bool> NextImpl(Row* row) override {
    auto r = inner_.Next(row);
    if (r.ok() && *r) ++pulled_;
    return r;
  }
  Status CloseImpl() override { return inner_.Close(); }

  int pulled() const { return pulled_; }

 private:
  VectorOperator inner_;
  int pulled_ = 0;
};

TEST_F(ReqSyncOpTest, StreamingEmitsBeforeChildExhausted) {
  // Paper §4.1: "it might make sense for ReqSync to make completed
  // tuples available to its parent before exhausting execution of its
  // child subplan". Row 1's call completes synchronously; rows 2 and 3
  // are slow — the first output must arrive before they are pulled.
  ReqPump pump;
  CallId fast = pump.Register("engine", [](CallCompletion done) {
    done(CallResult{Status::OK(), {Row({Value::Int(1)})}});
  });
  CallId slow_a = Delayed(&pump, {Row({Value::Int(2)})}, 30000);
  CallId slow_b = Delayed(&pump, {Row({Value::Int(3)})}, 30000);

  StubNode stub(TwoColumnSchema());
  auto node = std::make_unique<ReqSyncNode>(
      std::make_unique<StubNode>(TwoColumnSchema()),
      std::vector<size_t>{1});
  node->streaming = true;
  auto child = std::make_unique<CountingOperator>(
      &stub.schema(),
      std::vector<Row>{Row({Value::Str("a"), Value::Pending(fast, 0)}),
                       Row({Value::Str("b"), Value::Pending(slow_a, 0)}),
                       Row({Value::Str("c"), Value::Pending(slow_b, 0)})});
  CountingOperator* counter = child.get();
  ReqSyncOperator op(node.get(), std::move(child), &pump);
  ASSERT_TRUE(op.Open().ok());

  Row out;
  auto more = op.Next(&out);
  ASSERT_TRUE(more.ok() && *more);
  EXPECT_EQ(out.value(1).AsInt(), 1);
  // First row surfaced after pulling just one child tuple.
  EXPECT_EQ(counter->pulled(), 1);

  // The remaining tuples still arrive (and the child fully drains).
  std::set<int64_t> rest;
  while (*(more = op.Next(&out))) {
    rest.insert(out.value(1).AsInt());
  }
  EXPECT_EQ(rest, (std::set<int64_t>{2, 3}));
  EXPECT_EQ(counter->pulled(), 3);
  ASSERT_TRUE(op.Close().ok());
}

TEST_F(ReqSyncOpTest, StreamingMatchesBufferedResults) {
  for (bool streaming : {false, true}) {
    ReqPump pump;
    std::vector<Row> input;
    for (int i = 0; i < 20; ++i) {
      CallId c = Delayed(&pump, {Row({Value::Int(i)})},
                         500 + (i % 5) * 700);
      input.push_back(Row(
          {Value::Str("k" + std::to_string(i)), Value::Pending(c, 0)}));
    }
    StubNode stub(TwoColumnSchema());
    auto node = std::make_unique<ReqSyncNode>(
        std::make_unique<StubNode>(TwoColumnSchema()),
        std::vector<size_t>{1});
    node->streaming = streaming;
    auto child = std::make_unique<VectorOperator>(&stub.schema(),
                                                  std::move(input));
    ReqSyncOperator op(node.get(), std::move(child), &pump);
    ASSERT_TRUE(op.Open().ok());
    std::set<int64_t> seen;
    Row out;
    while (true) {
      auto more = op.Next(&out);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      seen.insert(out.value(1).AsInt());
    }
    ASSERT_TRUE(op.Close().ok());
    EXPECT_EQ(seen.size(), 20u) << "streaming=" << streaming;
  }
}

}  // namespace
}  // namespace wsq
