#include "exec/executor.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "plan/binder.h"
#include "storage/disk_manager.h"

namespace wsq {
namespace {

// Stored-table-only execution coverage: every operator driven through
// real plans (no virtual tables, no pump needed).
class OperatorTest : public ::testing::Test {
 protected:
  OperatorTest() : pool_(64, &disk_), catalog_(&pool_) {
    TableInfo* t = *catalog_.CreateTable(
        "T", Schema({Column("K", TypeId::kString),
                     Column("V", TypeId::kInt64),
                     Column("W", TypeId::kDouble)}));
    struct Rec {
      const char* k;
      int64_t v;
      double w;
    };
    for (const Rec& r : std::initializer_list<Rec>{{"a", 1, 0.5},
                                                   {"b", 2, 1.5},
                                                   {"a", 3, 2.5},
                                                   {"c", 2, 3.5},
                                                   {"b", 2, 4.5}}) {
      EXPECT_TRUE(t->Insert(Row({Value::Str(r.k), Value::Int(r.v),
                                 Value::Real(r.w)}))
                      .ok());
    }
    TableInfo* u = *catalog_.CreateTable(
        "U", Schema({Column("K", TypeId::kString),
                     Column("X", TypeId::kInt64)}));
    EXPECT_TRUE(u->Insert(Row({Value::Str("a"), Value::Int(10)})).ok());
    EXPECT_TRUE(u->Insert(Row({Value::Str("b"), Value::Int(20)})).ok());
    (void)*catalog_.CreateTable("Empty",
                                Schema({Column("Z", TypeId::kInt64)}));
  }

  ResultSet Run(const std::string& sql) {
    auto stmt = Parser::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(&catalog_, &vtables_);
    auto plan = binder.Bind(**stmt);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString() << "\n" << sql;
    ExecContext ctx;
    auto result = ExecutePlan(**plan, &ctx);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n" << sql;
    return result.ok() ? std::move(result).value() : ResultSet{};
  }

  InMemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  VirtualTableRegistry vtables_;
};

TEST_F(OperatorTest, SeqScanAllRows) {
  EXPECT_EQ(Run("SELECT K FROM T").rows.size(), 5u);
}

TEST_F(OperatorTest, FilterSelectsMatching) {
  ResultSet r = Run("SELECT K, V FROM T WHERE V = 2");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(OperatorTest, FilterWithCompoundPredicate) {
  ResultSet r = Run("SELECT K FROM T WHERE V = 2 AND W > 2.0 OR K = 'a'");
  EXPECT_EQ(r.rows.size(), 4u);  // (c,2,3.5), (b,2,4.5), two 'a' rows
}

TEST_F(OperatorTest, ProjectComputesExpressions) {
  ResultSet r = Run("SELECT V * 10 + 1 AS E FROM T WHERE K = 'c'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 21);
  EXPECT_EQ(r.schema.column(0).name, "E");
}

TEST_F(OperatorTest, NestedLoopJoin) {
  ResultSet r = Run(
      "SELECT T.K, V, X FROM T, U WHERE T.K = U.K ORDER BY X, V");
  // T has two 'a' rows and two 'b' rows matching U.
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0].value(2).AsInt(), 10);
  EXPECT_EQ(r.rows[3].value(2).AsInt(), 20);
}

TEST_F(OperatorTest, CrossProductCardinality) {
  EXPECT_EQ(Run("SELECT T.K FROM T, U").rows.size(), 10u);
}

TEST_F(OperatorTest, JoinWithEmptySideYieldsNothing) {
  EXPECT_TRUE(Run("SELECT K FROM T, Empty").rows.empty());
  EXPECT_TRUE(Run("SELECT K FROM T, Empty WHERE V = Z").rows.empty());
}

TEST_F(OperatorTest, SortAscendingAndDescending) {
  ResultSet asc = Run("SELECT V, W FROM T ORDER BY V, W");
  ASSERT_EQ(asc.rows.size(), 5u);
  for (size_t i = 1; i < asc.rows.size(); ++i) {
    EXPECT_LE(asc.rows[i - 1].value(0).AsInt(),
              asc.rows[i].value(0).AsInt());
  }
  ResultSet desc = Run("SELECT V FROM T ORDER BY V DESC");
  EXPECT_EQ(desc.rows[0].value(0).AsInt(), 3);
  EXPECT_EQ(desc.rows[4].value(0).AsInt(), 1);
}

TEST_F(OperatorTest, SortIsStable) {
  // Equal keys keep scan order: the three V=2 rows arrive b,c,b.
  ResultSet r = Run("SELECT K, V FROM T ORDER BY V");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[1].value(0).AsString(), "b");
  EXPECT_EQ(r.rows[2].value(0).AsString(), "c");
  EXPECT_EQ(r.rows[3].value(0).AsString(), "b");
}

TEST_F(OperatorTest, DistinctRemovesDuplicates) {
  ResultSet r = Run("SELECT DISTINCT K FROM T ORDER BY K");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].value(0).AsString(), "a");
  EXPECT_EQ(r.rows[2].value(0).AsString(), "c");
}

TEST_F(OperatorTest, DistinctOnFullDuplicateRows) {
  ResultSet r = Run("SELECT DISTINCT K, V FROM T WHERE V = 2");
  EXPECT_EQ(r.rows.size(), 2u);  // (b,2) twice collapses
}

TEST_F(OperatorTest, LimitTruncates) {
  EXPECT_EQ(Run("SELECT K FROM T LIMIT 2").rows.size(), 2u);
  EXPECT_EQ(Run("SELECT K FROM T LIMIT 0").rows.size(), 0u);
  EXPECT_EQ(Run("SELECT K FROM T LIMIT 100").rows.size(), 5u);
}

TEST_F(OperatorTest, AggregateGlobal) {
  ResultSet r = Run(
      "SELECT COUNT(*), SUM(V), MIN(W), MAX(W), AVG(V) FROM T");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 5);
  EXPECT_EQ(r.rows[0].value(1).AsInt(), 10);
  EXPECT_DOUBLE_EQ(r.rows[0].value(2).AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(r.rows[0].value(3).AsDouble(), 4.5);
  EXPECT_DOUBLE_EQ(r.rows[0].value(4).AsDouble(), 2.0);
}

TEST_F(OperatorTest, AggregateOverEmptyInput) {
  ResultSet r = Run("SELECT COUNT(*), SUM(Z), MIN(Z) FROM Empty");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 0);
  EXPECT_TRUE(r.rows[0].value(1).is_null());
  EXPECT_TRUE(r.rows[0].value(2).is_null());
}

TEST_F(OperatorTest, GroupByEmptyInputYieldsNoGroups) {
  EXPECT_TRUE(Run("SELECT Z, COUNT(*) FROM Empty GROUP BY Z").rows
                  .empty());
}

TEST_F(OperatorTest, GroupByWithArithmeticOnAggregates) {
  ResultSet r = Run(
      "SELECT K, SUM(V) * 2 AS D FROM T GROUP BY K ORDER BY K");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].value(1).AsInt(), 8);   // a: (1+3)*2
  EXPECT_EQ(r.rows[1].value(1).AsInt(), 8);   // b: (2+2)*2
  EXPECT_EQ(r.rows[2].value(1).AsInt(), 4);   // c: 2*2
}

TEST_F(OperatorTest, CountColumnSkipsNulls) {
  TableInfo* n = *catalog_.CreateTable(
      "N", Schema({Column("A", TypeId::kInt64)}));
  ASSERT_TRUE(n->Insert(Row({Value::Int(1)})).ok());
  ASSERT_TRUE(n->Insert(Row({Value::Null()})).ok());
  ASSERT_TRUE(n->Insert(Row({Value::Int(3)})).ok());
  ResultSet r = Run("SELECT COUNT(*), COUNT(A), SUM(A) FROM N");
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 3);
  EXPECT_EQ(r.rows[0].value(1).AsInt(), 2);
  EXPECT_EQ(r.rows[0].value(2).AsInt(), 4);
}

TEST_F(OperatorTest, SumWidensToDoubleOnMixedInput) {
  ResultSet r = Run("SELECT SUM(W) FROM T");
  EXPECT_TRUE(r.rows[0].value(0).is_double());
  EXPECT_DOUBLE_EQ(r.rows[0].value(0).AsDouble(), 12.5);
}

TEST_F(OperatorTest, MinMaxOnStrings) {
  ResultSet r = Run("SELECT MIN(K), MAX(K) FROM T");
  EXPECT_EQ(r.rows[0].value(0).AsString(), "a");
  EXPECT_EQ(r.rows[0].value(1).AsString(), "c");
}

TEST_F(OperatorTest, ThreeWayJoinPipeline) {
  ResultSet r = Run(
      "SELECT T.K, U.X, V FROM T, U, T T2 "
      "WHERE T.K = U.K AND T2.V = T.V ORDER BY U.X, V, T.K");
  EXPECT_GT(r.rows.size(), 0u);
  for (const Row& row : r.rows) {
    EXPECT_FALSE(row.HasPlaceholders());
  }
}

TEST_F(OperatorTest, ExecutionErrorPropagatesFromDeepInPlan) {
  auto stmt = Parser::ParseSelect("SELECT V / (V - V) FROM T");
  Binder binder(&catalog_, &vtables_);
  auto plan = binder.Bind(**stmt);
  ASSERT_TRUE(plan.ok());
  ExecContext ctx;
  auto result = ExecutePlan(**plan, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
}

}  // namespace
}  // namespace wsq
