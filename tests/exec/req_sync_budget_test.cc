#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "exec/req_sync_op.h"

// Buffer-budget behaviour of ReqSync: backpressure keeps the pending
// buffer (rows and approximate bytes) under the configured budget even
// under proliferation; shed-oldest trades completeness for the bound.

namespace wsq {
namespace {

class StubNode : public PlanNode {
 public:
  explicit StubNode(Schema schema)
      : PlanNode(Kind::kScan, std::move(schema)) {}
  std::string Label() const override { return "Stub"; }
};

class VectorOperator : public Operator {
 public:
  VectorOperator(const Schema* schema, std::vector<Row> rows)
      : Operator(schema), rows_(std::move(rows)) {}

  Status OpenImpl() override {
    next_ = 0;
    return Status::OK();
  }
  Result<bool> NextImpl(Row* row) override {
    if (next_ >= rows_.size()) return false;
    *row = rows_[next_++];
    return true;
  }
  Status CloseImpl() override { return Status::OK(); }

 private:
  std::vector<Row> rows_;
  size_t next_ = 0;
};

Schema TwoColumnSchema() {
  return Schema({Column("K", TypeId::kString, "t"),
                 Column("V", TypeId::kInt64, "t")});
}

Schema ThreeColumnSchema() {
  return Schema({Column("K", TypeId::kString, "t"),
                 Column("V", TypeId::kInt64, "t"),
                 Column("W", TypeId::kInt64, "t")});
}

// Registers a call that completes with `rows` after `delay_micros`.
CallId Delayed(ReqPump* pump, std::vector<Row> rows,
               int64_t delay_micros = 2000) {
  return pump->Register(
      "engine", [rows = std::move(rows), delay_micros](
                    CallCompletion done) mutable {
        std::thread([rows = std::move(rows), delay_micros,
                     done = std::move(done)]() mutable {
          std::this_thread::sleep_for(
              std::chrono::microseconds(delay_micros));
          done(CallResult{Status::OK(), std::move(rows)});
        }).detach();
      });
}

Result<std::vector<Row>> Drain(ReqSyncOperator* op) {
  WSQ_RETURN_IF_ERROR(op->Open());
  std::vector<Row> out;
  Row row;
  while (true) {
    WSQ_ASSIGN_OR_RETURN(bool more, op->Next(&row));
    if (!more) break;
    out.push_back(row);
  }
  WSQ_RETURN_IF_ERROR(op->Close());
  return out;
}

TEST(ReqSyncBudgetTest, BackpressureKeepsPeakRowsUnderBudget) {
  ReqPump pump;
  constexpr int kRows = 20;
  constexpr uint64_t kBudget = 4;
  std::vector<Row> input;
  input.reserve(kRows);
  for (int i = 0; i < kRows; ++i) {
    CallId c = Delayed(&pump, {Row({Value::Int(i)})}, 1000);
    input.push_back(Row({Value::Str("k"), Value::Pending(c, 0)}));
  }
  StubNode stub(TwoColumnSchema());
  ReqSyncNode node(std::make_unique<StubNode>(TwoColumnSchema()),
                   std::vector<size_t>{1});
  node.max_buffered_rows = kBudget;
  ExecContext ctx;
  ReqSyncOperator op(&node,
                     std::make_unique<VectorOperator>(&stub.schema(),
                                                      std::move(input)),
                     &pump, &ctx);
  auto out = Drain(&op);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Backpressure delays pulls; it never loses tuples.
  EXPECT_EQ(out->size(), static_cast<size_t>(kRows));
  EXPECT_LE(op.peak_buffered(), kBudget);
  EXPECT_EQ(op.shed_tuples(), 0u);
  EXPECT_EQ(ctx.reqsync_peak_rows.load(), op.peak_buffered());
  pump.Drain();
  EXPECT_EQ(pump.pending_results(), 0u);
}

TEST(ReqSyncBudgetTest, BackpressureKeepsPeakBytesNearBudget) {
  ReqPump pump;
  constexpr int kRows = 16;
  std::vector<Row> input;
  size_t one_row_bytes = 0;
  for (int i = 0; i < kRows; ++i) {
    CallId c = Delayed(&pump, {Row({Value::Int(i)})}, 1000);
    Row row({Value::Str(std::string(256, 'x')), Value::Pending(c, 0)});
    one_row_bytes = row.ApproxBytes();
    input.push_back(std::move(row));
  }
  StubNode stub(TwoColumnSchema());
  ReqSyncNode node(std::make_unique<StubNode>(TwoColumnSchema()),
                   std::vector<size_t>{1});
  const uint64_t byte_budget = 3 * one_row_bytes;
  node.max_buffered_bytes = byte_budget;
  ExecContext ctx;
  ReqSyncOperator op(&node,
                     std::make_unique<VectorOperator>(&stub.schema(),
                                                      std::move(input)),
                     &pump, &ctx);
  auto out = Drain(&op);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), static_cast<size_t>(kRows));
  // A pull happens only while strictly under the byte budget, so the
  // peak can overshoot by at most one tuple.
  EXPECT_LT(op.peak_buffered_bytes(), byte_budget + one_row_bytes);
  EXPECT_EQ(ctx.reqsync_peak_bytes.load(), op.peak_buffered_bytes());
  pump.Drain();
}

TEST(ReqSyncBudgetTest, ShedOldestDropsButCompletes) {
  ReqPump pump;
  constexpr int kRows = 5;
  constexpr uint64_t kBudget = 2;
  std::vector<Row> input;
  std::vector<CallId> calls;
  for (int i = 0; i < kRows; ++i) {
    // Long delay: nothing completes until all rows are absorbed, so
    // the shed decision is deterministic (oldest three dropped).
    CallId c = Delayed(&pump, {Row({Value::Int(i)})}, 30000);
    calls.push_back(c);
    input.push_back(Row({Value::Str("k"), Value::Pending(c, 0)}));
  }
  StubNode stub(TwoColumnSchema());
  ReqSyncNode node(std::make_unique<StubNode>(TwoColumnSchema()),
                   std::vector<size_t>{1});
  node.max_buffered_rows = kBudget;
  node.shed_oldest = true;
  ExecContext ctx;
  ReqSyncOperator op(&node,
                     std::make_unique<VectorOperator>(&stub.schema(),
                                                      std::move(input)),
                     &pump, &ctx);
  auto out = Drain(&op);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), static_cast<size_t>(kBudget));
  // The survivors are the newest tuples (completion order may vary).
  std::vector<int64_t> got = {(*out)[0].value(1).AsInt(),
                              (*out)[1].value(1).AsInt()};
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got[0], kRows - 2);
  EXPECT_EQ(got[1], kRows - 1);
  EXPECT_EQ(op.shed_tuples(), static_cast<uint64_t>(kRows - kBudget));
  EXPECT_EQ(ctx.shed_tuples.load(), op.shed_tuples());
  EXPECT_LE(op.peak_buffered(), kBudget);
  // Shed tuples' calls are still reaped: nothing leaks in the hash.
  pump.Drain();
  EXPECT_EQ(pump.pending_results(), 0u);
}

// Proliferation (§4.4): one completion fans a tuple out into several
// copies still pending on a second call. In shed-oldest mode the
// copies are bounded by the budget too.
TEST(ReqSyncBudgetTest, ProliferationRespectsShedBudget) {
  ReqPump pump;
  // Call A completes quickly with three rows; call B much later.
  CallId a = Delayed(
      &pump,
      {Row({Value::Int(10)}), Row({Value::Int(11)}),
       Row({Value::Int(12)})},
      2000);
  CallId b = Delayed(&pump, {Row({Value::Int(99)})}, 40000);
  std::vector<Row> input = {Row({Value::Str("k"), Value::Pending(a, 0),
                                 Value::Pending(b, 0)})};
  StubNode stub(ThreeColumnSchema());
  ReqSyncNode node(std::make_unique<StubNode>(ThreeColumnSchema()),
                   std::vector<size_t>{1, 2});
  node.max_buffered_rows = 2;
  node.shed_oldest = true;
  ExecContext ctx;
  ReqSyncOperator op(&node,
                     std::make_unique<VectorOperator>(&stub.schema(),
                                                      std::move(input)),
                     &pump, &ctx);
  auto out = Drain(&op);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Three proliferated copies, budget two: the oldest copy is shed.
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0].value(1).AsInt(), 11);
  EXPECT_EQ((*out)[1].value(1).AsInt(), 12);
  EXPECT_EQ((*out)[0].value(2).AsInt(), 99);
  EXPECT_EQ(op.shed_tuples(), 1u);
  EXPECT_LE(op.peak_buffered(), 2u);
  pump.Drain();
  EXPECT_EQ(pump.pending_results(), 0u);
}

// Without a budget the same workload buffers everything — the budget
// is what bounds the peak, not the workload shape.
TEST(ReqSyncBudgetTest, NoBudgetBuffersEverything) {
  ReqPump pump;
  constexpr int kRows = 12;
  std::vector<Row> input;
  for (int i = 0; i < kRows; ++i) {
    CallId c = Delayed(&pump, {Row({Value::Int(i)})}, 20000);
    input.push_back(Row({Value::Str("k"), Value::Pending(c, 0)}));
  }
  StubNode stub(TwoColumnSchema());
  ReqSyncNode node(std::make_unique<StubNode>(TwoColumnSchema()),
                   std::vector<size_t>{1});
  ReqSyncOperator op(&node,
                     std::make_unique<VectorOperator>(&stub.schema(),
                                                      std::move(input)),
                     &pump);
  auto out = Drain(&op);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), static_cast<size_t>(kRows));
  // Open() drains the child before anything completes: all 12 buffered.
  EXPECT_EQ(op.peak_buffered(), static_cast<size_t>(kRows));
  pump.Drain();
}

}  // namespace
}  // namespace wsq
