#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/memory.h"
#include "common/random.h"
#include "exec/executor.h"
#include "parser/parser.h"
#include "plan/binder.h"
#include "storage/disk_manager.h"
#include "storage/spill.h"

namespace wsq {
namespace {

// Sort/Aggregate/Distinct under a budget too small for their build
// state: every query must degrade to the external (spilling) algorithm
// and still return byte-identical rows, with the ledger balancing to
// zero and no spill file left behind.
class SpillTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 3000;

  SpillTest() : pool_(64, &disk_), catalog_(&pool_) {
    TableInfo* t = *catalog_.CreateTable(
        "T", Schema({Column("K", TypeId::kString),
                     Column("G", TypeId::kInt64),
                     Column("V", TypeId::kInt64),
                     Column("W", TypeId::kDouble)}));
    Rng rng(7);
    for (size_t i = 0; i < kRows; ++i) {
      // Skewed group ids and colliding sort keys so ties exercise the
      // stability guarantee through the merge.
      int64_t g = static_cast<int64_t>(rng.Uniform(37));
      std::string k = "key-" + std::to_string(rng.Uniform(city_count_));
      EXPECT_TRUE(
          t->Insert(Row({Value::Str(k), Value::Int(g),
                         Value::Int(static_cast<int64_t>(i)),
                         Value::Real(static_cast<double>(g) * 0.5)}))
              .ok());
    }
  }

  struct RunResult {
    ResultSet result;
    uint64_t spilled_bytes = 0;
    uint64_t spill_runs = 0;
  };

  /// Runs `sql` under `budget_bytes` (0 = ungoverned). Asserts the
  /// ledger is balanced and every spill file is gone afterwards.
  RunResult Run(const std::string& sql, size_t budget_bytes) {
    auto stmt = Parser::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(&catalog_, &vtables_);
    auto plan = binder.Bind(**stmt);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString() << "\n" << sql;

    MemoryBudget budget("test-query", budget_bytes);
    SpillManager spill;
    ExecContext ctx;
    ctx.memory = &budget;
    ctx.spill = &spill;
    auto result = ExecutePlan(**plan, &ctx);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n" << sql;

    EXPECT_EQ(budget.used(), 0u) << "leaked reservation: " << sql;
    EXPECT_EQ(spill.active_files(), 0u) << "leaked spill file: " << sql;

    RunResult out;
    if (result.ok()) out.result = std::move(result).value();
    out.spilled_bytes = ctx.spilled_bytes.load();
    out.spill_runs = ctx.spill_runs.load();
    return out;
  }

  /// The governed run must spill AND match the ungoverned rows exactly.
  void ExpectSpilledIdentical(const std::string& sql,
                              size_t budget_bytes) {
    RunResult reference = Run(sql, 0);
    EXPECT_EQ(reference.spilled_bytes, 0u);
    RunResult governed = Run(sql, budget_bytes);
    EXPECT_GT(governed.spilled_bytes, 0u) << "did not spill: " << sql;
    EXPECT_GT(governed.spill_runs, 0u);
    ASSERT_EQ(governed.result.rows.size(), reference.result.rows.size())
        << sql;
    for (size_t i = 0; i < reference.result.rows.size(); ++i) {
      EXPECT_EQ(governed.result.rows[i], reference.result.rows[i])
          << sql << " row " << i;
    }
  }

  size_t city_count_ = 211;
  InMemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  VirtualTableRegistry vtables_;
};

TEST_F(SpillTest, ExternalSortMatchesInMemorySort) {
  ExpectSpilledIdentical("SELECT K, V FROM T ORDER BY K", 32 * 1024);
}

TEST_F(SpillTest, ExternalSortDescendingWithTies) {
  // Heavy key collisions: stability across spilled runs is the
  // byte-identical part that a naive merge gets wrong.
  ExpectSpilledIdentical("SELECT G, V FROM T ORDER BY G DESC",
                         32 * 1024);
}

TEST_F(SpillTest, ExternalSortMultiKey) {
  ExpectSpilledIdentical("SELECT K, G, V FROM T ORDER BY G, K DESC, V",
                         32 * 1024);
}

TEST_F(SpillTest, ExternalAggregateMatchesInMemory) {
  ExpectSpilledIdentical(
      "SELECT K, COUNT(*), SUM(V), MIN(V), MAX(V), AVG(W) FROM T "
      "GROUP BY K ORDER BY K",
      16 * 1024);
}

TEST_F(SpillTest, ExternalAggregateManyGroups) {
  // Group-per-row: the accumulator map itself is the working set.
  ExpectSpilledIdentical(
      "SELECT V, COUNT(*) FROM T GROUP BY V ORDER BY V", 32 * 1024);
}

TEST_F(SpillTest, TinyBudgetManyRuns) {
  RunResult r = Run("SELECT K, V FROM T ORDER BY K, V", 4 * 1024);
  EXPECT_EQ(r.result.rows.size(), kRows);
  EXPECT_GT(r.spill_runs, 4u);
}

TEST_F(SpillTest, NoSpillManagerFailsCleanly) {
  auto stmt = Parser::ParseSelect("SELECT K FROM T ORDER BY K");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&catalog_, &vtables_);
  auto plan = binder.Bind(**stmt);
  ASSERT_TRUE(plan.ok());
  MemoryBudget budget("test-query", 4 * 1024);
  ExecContext ctx;
  ctx.memory = &budget;  // no ctx.spill: tier 1 is unavailable
  auto result = ExecutePlan(**plan, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 0u);
}

TEST_F(SpillTest, UngovernedQueriesNeverSpill) {
  RunResult r = Run(
      "SELECT G, COUNT(*) FROM T GROUP BY G ORDER BY G", 0);
  EXPECT_EQ(r.spilled_bytes, 0u);
  EXPECT_EQ(r.result.rows.size(), 37u);
}

}  // namespace
}  // namespace wsq
