#include "types/value.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), TypeId::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::Int(-42);
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.AsInt(), -42);
  EXPECT_EQ(v.ToString(), "-42");
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v = Value::Real(2.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

TEST(ValueTest, StringRoundTrip) {
  Value v = Value::Str("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "hello");
  EXPECT_EQ(v.ToString(), "'hello'");
}

TEST(ValueTest, PlaceholderRoundTrip) {
  Value v = Value::Pending(17, 2);
  EXPECT_TRUE(v.is_placeholder());
  EXPECT_EQ(v.AsPlaceholder().call, 17u);
  EXPECT_EQ(v.AsPlaceholder().field, 2);
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Real(1.0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Real(1.5)), 0);
  EXPECT_GT(Value::Real(2.5).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  // NULL < numeric < string < placeholder.
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(999).Compare(Value::Str("")), 0);
  EXPECT_LT(Value::Str("zzz").Compare(Value::Pending(1, 0)), 0);
}

TEST(ValueTest, IntComparisonExactForLargeValues) {
  int64_t big = (1ll << 62) + 1;
  EXPECT_GT(Value::Int(big).Compare(Value::Int(big - 1)), 0);
  EXPECT_EQ(Value::Int(big).Compare(Value::Int(big)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_EQ(Value::Str("x").Compare(Value::Str("x")), 0);
}

TEST(ValueTest, NullsCompareEqual) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, EqualValuesHashEqual) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::Str("ab").Hash(), Value::Str("ab").Hash());
  // 1 == 1.0 must imply equal hashes for hash-based dedup.
  EXPECT_EQ(Value::Int(1).Hash(), Value::Real(1.0).Hash());
}

TEST(ValueTest, ToIntCoercions) {
  EXPECT_EQ(*Value::Int(3).ToInt(), 3);
  EXPECT_EQ(*Value::Real(3.9).ToInt(), 3);
  EXPECT_FALSE(Value::Str("3").ToInt().ok());
  EXPECT_FALSE(Value::Null().ToInt().ok());
}

TEST(ValueTest, ToDoubleCoercions) {
  EXPECT_DOUBLE_EQ(*Value::Int(3).ToDouble(), 3.0);
  EXPECT_DOUBLE_EQ(*Value::Real(3.5).ToDouble(), 3.5);
  EXPECT_FALSE(Value::Str("x").ToDouble().ok());
}

TEST(ValueTest, PlaceholderEquality) {
  EXPECT_EQ(Value::Pending(1, 0), Value::Pending(1, 0));
  EXPECT_NE(Value::Pending(1, 0).Compare(Value::Pending(1, 1)), 0);
  EXPECT_NE(Value::Pending(1, 0).Compare(Value::Pending(2, 0)), 0);
}

}  // namespace
}  // namespace wsq
