#include "types/row.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(RowTest, AppendAndAccess) {
  Row r;
  r.Append(Value::Int(1));
  r.Append(Value::Str("x"));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.value(0).AsInt(), 1);
  EXPECT_EQ(r.value(1).AsString(), "x");
}

TEST(RowTest, Concat) {
  Row a({Value::Int(1)});
  Row b({Value::Str("x"), Value::Int(2)});
  Row c = Row::Concat(a, b);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.value(2).AsInt(), 2);
}

TEST(RowTest, HasPlaceholders) {
  Row complete({Value::Int(1), Value::Str("x")});
  EXPECT_FALSE(complete.HasPlaceholders());
  Row pending({Value::Int(1), Value::Pending(9, 0)});
  EXPECT_TRUE(pending.HasPlaceholders());
}

TEST(RowTest, PendingCallsDedupedAndSorted) {
  Row r({Value::Pending(5, 0), Value::Pending(3, 1), Value::Pending(5, 2),
         Value::Int(7)});
  auto calls = r.PendingCalls();
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0], 3u);
  EXPECT_EQ(calls[1], 5u);
}

TEST(RowTest, PendingCallsEmptyWhenComplete) {
  Row r({Value::Int(1)});
  EXPECT_TRUE(r.PendingCalls().empty());
}

TEST(RowTest, LexicographicCompare) {
  Row a({Value::Int(1), Value::Str("a")});
  Row b({Value::Int(1), Value::Str("b")});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(b.Compare(a), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(RowTest, PrefixComparesShorterFirst) {
  Row a({Value::Int(1)});
  Row b({Value::Int(1), Value::Int(2)});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(b.Compare(a), 0);
}

TEST(RowTest, EqualRowsHashEqual) {
  Row a({Value::Int(1), Value::Str("x")});
  Row b({Value::Int(1), Value::Str("x")});
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a, b);
}

TEST(RowTest, ToStringFormat) {
  Row r({Value::Int(1), Value::Str("s")});
  EXPECT_EQ(r.ToString(), "[1, 's']");
}

}  // namespace
}  // namespace wsq
