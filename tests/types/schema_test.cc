#include "types/schema.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

Schema StatesSchema() {
  return Schema({Column("Name", TypeId::kString, "States"),
                 Column("Population", TypeId::kInt64, "States"),
                 Column("Capital", TypeId::kString, "States")});
}

TEST(SchemaTest, BasicAccessors) {
  Schema s = StatesSchema();
  EXPECT_EQ(s.NumColumns(), 3u);
  EXPECT_EQ(s.column(0).name, "Name");
  EXPECT_EQ(s.column(1).type, TypeId::kInt64);
  EXPECT_EQ(s.column(2).QualifiedName(), "States.Capital");
}

TEST(SchemaTest, FindUnqualified) {
  Schema s = StatesSchema();
  auto r = s.Find("", "Population");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1u);
}

TEST(SchemaTest, FindQualified) {
  Schema s = StatesSchema();
  auto r = s.Find("States", "Name");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
}

TEST(SchemaTest, FindIsCaseInsensitive) {
  Schema s = StatesSchema();
  EXPECT_TRUE(s.Find("states", "NAME").ok());
  EXPECT_TRUE(s.Find("", "capital").ok());
}

TEST(SchemaTest, FindMissingColumn) {
  Schema s = StatesSchema();
  auto r = s.Find("", "Nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(SchemaTest, FindWrongQualifier) {
  Schema s = StatesSchema();
  EXPECT_FALSE(s.Find("Sigs", "Name").ok());
}

TEST(SchemaTest, AmbiguousUnqualifiedLookup) {
  Schema joined = Schema::Concat(
      StatesSchema(), Schema({Column("Name", TypeId::kString, "Sigs")}));
  auto r = joined.Find("", "Name");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
  // Qualified lookups disambiguate.
  EXPECT_EQ(*joined.Find("Sigs", "Name"), 3u);
  EXPECT_EQ(*joined.Find("States", "Name"), 0u);
}

TEST(SchemaTest, ConcatPreservesOrder) {
  Schema joined = Schema::Concat(
      StatesSchema(), Schema({Column("Count", TypeId::kInt64, "WebCount")}));
  EXPECT_EQ(joined.NumColumns(), 4u);
  EXPECT_EQ(joined.column(3).QualifiedName(), "WebCount.Count");
}

TEST(SchemaTest, WithQualifierRewritesAll) {
  Schema s = StatesSchema().WithQualifier("S");
  for (const Column& c : s.columns()) {
    EXPECT_EQ(c.qualifier, "S");
  }
}

TEST(SchemaTest, ContainsMirrorsFind) {
  Schema s = StatesSchema();
  EXPECT_TRUE(s.Contains("", "Name"));
  EXPECT_FALSE(s.Contains("", "Nope"));
}

TEST(SchemaTest, ToStringFormat) {
  Schema s({Column("A", TypeId::kInt64, "T")});
  EXPECT_EQ(s.ToString(), "(T.A:INT)");
}

}  // namespace
}  // namespace wsq
