#include "wsq/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "wsq/demo.h"

namespace wsq {
namespace {

TEST(AdmissionControllerTest, UnboundedAdmitsEverythingAndKeepsStats) {
  AdmissionController ctl;  // max_concurrent_queries = 0: off
  std::vector<AdmissionController::Ticket> tickets;
  for (int i = 0; i < 16; ++i) {
    auto t = ctl.Admit();
    ASSERT_TRUE(t.ok());
    tickets.push_back(std::move(*t));
  }
  EXPECT_EQ(ctl.active(), 16);
  EXPECT_EQ(ctl.stats().admitted, 16u);
  EXPECT_EQ(ctl.stats().active_peak, 16u);
  tickets.clear();
  EXPECT_EQ(ctl.active(), 0);
}

TEST(AdmissionControllerTest, ShedsWhenSlotsAndQueueAreFull) {
  AdmissionLimits limits;
  limits.max_concurrent_queries = 1;
  limits.max_queued = 0;  // no queue: shed as soon as the slot is busy
  AdmissionController ctl(limits);
  auto first = ctl.Admit();
  ASSERT_TRUE(first.ok());
  auto second = ctl.Admit();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.shed_queue_full, 1u);
}

TEST(AdmissionControllerTest, TicketReleaseWakesQueuedQuery) {
  AdmissionLimits limits;
  limits.max_concurrent_queries = 1;
  limits.max_queued = 1;
  AdmissionController ctl(limits);
  auto first = ctl.Admit();
  ASSERT_TRUE(first.ok());
  std::atomic<bool> admitted{false};
  std::thread waiter([&ctl, &admitted] {
    auto t = ctl.Admit();
    EXPECT_TRUE(t.ok());
    admitted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(ctl.queued(), 1);
  first->Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(ctl.stats().admitted, 2u);
  EXPECT_EQ(ctl.stats().queued_peak, 1u);
}

TEST(AdmissionControllerTest, QueuedQueryShedsAfterWaitBound) {
  AdmissionLimits limits;
  limits.max_concurrent_queries = 1;
  limits.max_queued = 1;
  limits.max_queue_wait_micros = 20000;  // 20 ms
  AdmissionController ctl(limits);
  auto first = ctl.Admit();
  ASSERT_TRUE(first.ok());
  Stopwatch timer;
  auto second = ctl.Admit();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  // Waited at least the bound, but nowhere near unbounded.
  EXPECT_GE(timer.ElapsedMicros(), 15000);
  EXPECT_LT(timer.ElapsedMicros(), 2000000);
  EXPECT_EQ(ctl.stats().shed_timeout, 1u);
  EXPECT_EQ(ctl.queued(), 0);
}

TEST(AdmissionControllerTest, QueuedQueryObservesItsOwnToken) {
  AdmissionLimits limits;
  limits.max_concurrent_queries = 1;
  limits.max_queued = 1;
  AdmissionController ctl(limits);
  auto first = ctl.Admit();
  ASSERT_TRUE(first.ok());
  CancellationToken token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel();
  });
  auto second = ctl.Admit(&token);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kCancelled);
  canceller.join();
  EXPECT_EQ(ctl.stats().shed_cancelled, 1u);
  EXPECT_EQ(ctl.queued(), 0);
}

TEST(AdmissionControllerTest, QueuedQueryObservesItsDeadline) {
  AdmissionLimits limits;
  limits.max_concurrent_queries = 1;
  limits.max_queued = 1;
  AdmissionController ctl(limits);
  auto first = ctl.Admit();
  ASSERT_TRUE(first.ok());
  CancellationToken token;
  token.SetDeadlineAfter(20000);
  auto second = ctl.Admit(&token);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctl.stats().shed_cancelled, 1u);
}

TEST(AdmissionControllerTest, MovedTicketReleasesExactlyOnce) {
  AdmissionLimits limits;
  limits.max_concurrent_queries = 2;
  AdmissionController ctl(limits);
  {
    auto a = ctl.Admit();
    ASSERT_TRUE(a.ok());
    AdmissionController::Ticket moved = std::move(*a);
    EXPECT_TRUE(moved.valid());
    EXPECT_FALSE(a->valid());
    EXPECT_EQ(ctl.active(), 1);
  }
  EXPECT_EQ(ctl.active(), 0);
}

// Hammer Admit/Release from many threads; counters must balance.
TEST(AdmissionControllerTest, ConcurrentAdmitIsConsistent) {
  AdmissionLimits limits;
  limits.max_concurrent_queries = 4;
  limits.max_queued = 4;
  limits.max_queue_wait_micros = 50000;
  AdmissionController ctl(limits);
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::vector<std::thread> threads;
  threads.reserve(16);
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto ticket = ctl.Admit();
        if (ticket.ok()) {
          ++ok_count;
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        } else {
          EXPECT_EQ(ticket.status().code(),
                    StatusCode::kResourceExhausted);
          ++shed_count;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(ctl.active(), 0);
  EXPECT_EQ(ctl.queued(), 0);
  AdmissionStats stats = ctl.stats();
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(ok_count.load()));
  EXPECT_EQ(stats.shed_queue_full + stats.shed_timeout,
            static_cast<uint64_t>(shed_count.load()));
  EXPECT_EQ(ok_count.load() + shed_count.load(), 16 * 50);
  EXPECT_LE(stats.active_peak, 4u);
  EXPECT_LE(stats.queued_peak, 4u);
}

// End-to-end: an overloaded database sheds the excess queries with
// kResourceExhausted, and every admitted query's result is
// byte-identical to a serial run of the same statement.
TEST(AdmissionControllerTest, OverloadedDatabaseShedsButStaysCorrect) {
  DemoOptions opt;
  opt.corpus.num_documents = 1200;
  opt.corpus.vocab_size = 800;
  opt.latency = LatencyModel::Instant();
  opt.admission.max_concurrent_queries = 2;
  opt.admission.max_queued = 0;  // shed as soon as both slots are busy
  DemoEnv env(opt);

  const std::string sql =
      "SELECT Name, Capital FROM States "
      "WHERE Population > 5000000 ORDER BY Name";
  // Serial baseline (one query at a time always admits).
  auto baseline = env.Run(sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Deterministic overload: occupy both slots directly, so the next
  // Execute must shed regardless of scheduling.
  {
    auto hog1 = env.db().admission()->Admit();
    auto hog2 = env.db().admission()->Admit();
    ASSERT_TRUE(hog1.ok() && hog2.ok());
    auto r = env.Run(sql);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_GE(env.db().admission()->stats().shed_queue_full, 1u);

  // Concurrent storm: every query either sheds cleanly or returns a
  // result byte-identical to the serial baseline.
  constexpr int kThreads = 8;
  std::atomic<int> shed{0};
  std::atomic<int> admitted{0};
  std::atomic<int> other_errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto r = env.Run(sql);
      if (!r.ok()) {
        if (r.status().code() == StatusCode::kResourceExhausted) {
          ++shed;
        } else {
          ++other_errors;
        }
        return;
      }
      ++admitted;
      // Admitted results are identical to the serial baseline.
      ASSERT_EQ(r->result.rows.size(), baseline->result.rows.size());
      for (size_t i = 0; i < r->result.rows.size(); ++i) {
        EXPECT_EQ(r->result.rows[i].ToString(),
                  baseline->result.rows[i].ToString());
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(other_errors.load(), 0);
  EXPECT_EQ(admitted.load() + shed.load(), kThreads);
  EXPECT_GE(admitted.load(), 1);
  AdmissionStats stats = env.db().admission()->stats();
  EXPECT_LE(stats.active_peak, 2u);
  EXPECT_EQ(env.db().admission()->active(), 0);
}

}  // namespace
}  // namespace wsq
