#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "wsq/database.h"
#include "wsq/demo.h"

// End-to-end memory governor: a workload sized at several times the
// database budget must complete via the degradation ladder (spill, then
// cache/pool shedding) with byte-identical results, balanced ledgers,
// and no spill scratch files left behind; only a budget that shedding
// cannot satisfy refuses statements with kResourceExhausted.

namespace wsq {
namespace {

constexpr size_t kRows = 4000;

// ~50+ bytes per row, ~200 KB+ working set for a full sort.
void LoadBigTable(WsqDatabase* db) {
  TableInfo* t = *db->catalog()->CreateTable(
      "Big", Schema({Column("K", TypeId::kString),
                     Column("G", TypeId::kInt64),
                     Column("V", TypeId::kInt64)}));
  Rng rng(99);
  for (size_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(
        t->Insert(Row({Value::Str("row-" + std::to_string(rng.Uniform(509))),
                       Value::Int(static_cast<int64_t>(rng.Uniform(61))),
                       Value::Int(static_cast<int64_t>(i))}))
            .ok());
  }
}

// The Zipf-skewed query mix of the acceptance scenario: the heavy
// hitters are the memory-hungry shapes.
const char* const kMix[] = {
    "SELECT K, V FROM Big ORDER BY K, V",
    "SELECT K, COUNT(*), SUM(V), MIN(V), MAX(V) FROM Big "
    "GROUP BY K ORDER BY K",
    "SELECT G, V FROM Big ORDER BY G DESC, V",
    "SELECT DISTINCT K FROM Big ORDER BY K",
    "SELECT G, COUNT(*) FROM Big GROUP BY G ORDER BY G",
};

TEST(MemoryGovernorTest, ConstrainedMixMatchesUngovernedByteForByte) {
  WsqDatabase reference;
  LoadBigTable(&reference);

  WsqDatabase governed;
  LoadBigTable(&governed);
  // The stored table's dirty buffer-pool pages are a fixed (unsheddable)
  // charge; leave them plus a sliver of headroom that is roughly a
  // tenth of the sort working set, so every heavy query must degrade
  // and none may fail.
  governed.memory_budget()->SetLimit(
      governed.buffer_pool()->resident_pages() * kPageSize + 64 * 1024);

  Rng rng(5);
  ZipfDistribution zipf(std::size(kMix), 1.1);
  uint64_t total_spilled = 0;
  for (int i = 0; i < 24; ++i) {
    const char* sql = kMix[zipf.Sample(rng)];
    auto want = reference.Execute(sql);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    auto got = governed.Execute(sql);
    ASSERT_TRUE(got.ok()) << got.status().ToString() << "\n" << sql;
    ASSERT_EQ(got->result.rows.size(), want->result.rows.size()) << sql;
    for (size_t r = 0; r < want->result.rows.size(); ++r) {
      ASSERT_EQ(got->result.rows[r], want->result.rows[r])
          << sql << " row " << r;
    }
    EXPECT_EQ(want->stats.spilled_bytes, 0u);
    total_spilled += got->stats.spilled_bytes;
  }
  EXPECT_GT(total_spilled, 0u) << "mix never hit the budget";
  // Every scratch file is gone and every per-query reservation was
  // released: what remains charged is the buffer pool's resident pages.
  EXPECT_EQ(governed.spill()->active_files(), 0u);
  EXPECT_EQ(governed.memory_budget()->used(),
            governed.buffer_pool()->resident_pages() * kPageSize);
}

TEST(MemoryGovernorTest, QueryStatsReportDegradation) {
  WsqDatabase db;
  LoadBigTable(&db);
  db.memory_budget()->SetLimit(
      db.buffer_pool()->resident_pages() * kPageSize + 48 * 1024);
  auto r = db.Execute(kMix[0]);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->stats.spilled_bytes, 0u);
  EXPECT_GT(r->stats.spill_runs, 0u);
  EXPECT_GT(r->stats.peak_memory_bytes, 0u);
}

TEST(MemoryGovernorTest, PerQueryBudgetCapsPeakTrackedBytes) {
  WsqDatabase db;
  LoadBigTable(&db);
  WsqDatabase::ExecOptions exec;
  constexpr size_t kQueryBudget = 48 * 1024;
  exec.memory_budget_bytes = kQueryBudget;
  auto r = db.Execute(kMix[0], exec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->stats.spilled_bytes, 0u);
  // Spilling keeps the tracked working set at the budget; allow the
  // one-row forced overage the charge protocol permits.
  EXPECT_LE(r->stats.peak_memory_bytes, kQueryBudget + 16 * 1024);
}

TEST(MemoryGovernorTest, SpillDisabledFailsWithResourceExhausted) {
  WsqDatabase::Options options;
  options.enable_spill = false;
  WsqDatabase db(options);
  LoadBigTable(&db);
  db.memory_budget()->SetLimit(
      db.buffer_pool()->resident_pages() * kPageSize + 48 * 1024);
  auto r = db.Execute(kMix[0]);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  // The failed query released everything it charged.
  EXPECT_EQ(db.memory_budget()->used(),
            db.buffer_pool()->resident_pages() * kPageSize);
}

TEST(MemoryGovernorTest, ExhaustedBudgetRefusesNewStatements) {
  WsqDatabase db;
  LoadBigTable(&db);
  size_t limit =
      db.buffer_pool()->resident_pages() * kPageSize + 256 * 1024;
  db.memory_budget()->SetLimit(limit);
  // Tier 3: something outside the ladder's reach holds the whole
  // budget — admission must refuse rather than thrash.
  db.memory_budget()->ForceReserve(limit);
  auto refused = db.Execute("SELECT COUNT(*) FROM Big GROUP BY K");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  db.memory_budget()->Release(limit);
  auto ok = db.Execute("SELECT G, COUNT(*) FROM Big GROUP BY G");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(MemoryGovernorTest, PressureShedsClientCacheEntries) {
  DemoOptions opt;
  opt.corpus.num_documents = 400;
  opt.corpus.vocab_size = 300;
  opt.latency = LatencyModel::Instant();
  opt.client_cache_entries = 64;
  DemoEnv env(opt);
  // Warm the cache (its bytes charge the database budget)...
  for (const char* q : {"database", "systems", "query"}) {
    auto r = env.db().Execute(
        std::string("SELECT Count FROM WebCount WHERE T1 = '") + q + "'");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_GT(env.client_cache()->bytes(), 0u);
  // ...then a memory-hungry sort: its failing reservations run the
  // pressure hooks, which shed cached responses (tier 2).
  TableInfo* t = *env.db().catalog()->CreateTable(
      "Wide", Schema({Column("S", TypeId::kString)}));
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        t->Insert(Row({Value::Str("padding-" + std::to_string(i * 37))}))
            .ok());
  }
  // Clamp the budget now that the fixed charges (resident pages, the
  // warm cache) are known: the sort's working set must not fit.
  env.db().memory_budget()->SetLimit(
      env.db().buffer_pool()->resident_pages() * kPageSize +
      env.client_cache()->bytes() + 24 * 1024);
  auto big = env.db().Execute("SELECT S FROM Wide ORDER BY S");
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  EXPECT_GT(env.client_cache()->stats().pressure_shed, 0u);
  EXPECT_GT(big->stats.pressure_released_bytes, 0u);
}

TEST(MemoryGovernorTest, ConcurrentGovernedQueriesStayBalanced) {
  WsqDatabase db;
  LoadBigTable(&db);
  db.memory_budget()->SetLimit(
      db.buffer_pool()->resident_pages() * kPageSize + 96 * 1024);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < 6; ++i) {
        const char* sql = kMix[rng.Uniform(std::size(kMix))];
        auto r = db.Execute(sql);
        // Under concurrent pressure tier 3 may refuse admission; the
        // contract is "retry after load drops", so do that — but only
        // ever for kResourceExhausted, and progress must be made.
        for (int retry = 0;
             !r.ok() &&
             r.status().code() == StatusCode::kResourceExhausted &&
             retry < 100;
             ++retry) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          r = db.Execute(sql);
        }
        ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.spill()->active_files(), 0u);
  EXPECT_EQ(db.memory_budget()->used(),
            db.buffer_pool()->resident_pages() * kPageSize);
}

}  // namespace
}  // namespace wsq
