#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/clock.h"
#include "exec/scan_ops.h"
#include "plan/logical_plan.h"
#include "wsq/demo.h"

// End-to-end query governor: deadlines abort promptly without leaking
// in-flight external calls, cross-thread cancellation works mid-query,
// and the remaining query budget clamps external call timeouts.

namespace wsq {
namespace {

DemoOptions SlowWebOptions(int64_t latency_micros) {
  DemoOptions opt;
  opt.corpus.num_documents = 1200;
  opt.corpus.vocab_size = 800;
  opt.latency = LatencyModel::Fixed(latency_micros);
  return opt;
}

// Secondary sort key keeps the result deterministic when counts tie.
const char kWebSql[] =
    "SELECT Name, Count FROM States, WebCount WHERE Name = T1 "
    "ORDER BY Count DESC, Name LIMIT 5";

// The acceptance scenario: a 50 ms deadline over a 1 s-latency
// destination must come back kDeadlineExceeded in far less than the
// call latency, with every issued call accounted for.
TEST(GovernorTest, DeadlineAbortsPromptlyWithoutLeakingCalls) {
  DemoEnv env(SlowWebOptions(1000000));
  WsqDatabase::ExecOptions options;
  options.deadline_micros = 50000;  // 50 ms
  Stopwatch timer;
  auto r = env.db().Execute(kWebSql, options);
  int64_t elapsed = timer.ElapsedMicros();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  // Deadline + a few 5 ms poll quanta — never the 1 s call latency.
  EXPECT_LT(elapsed, 300000);
  // Zero leaked in-flight calls: the Close cascade reaped everything.
  ReqPump* pump = env.db().pump();
  EXPECT_EQ(pump->pending_results(), 0u);
  ReqPumpStats stats = pump->stats();
  EXPECT_EQ(stats.registered,
            stats.completed + stats.cancelled + stats.shed);
  // Every issued call was torn down one way or the other: either the
  // clamped timeout expired it (failed) or the Close cascade cancelled
  // it — never by waiting out the 1 s destination latency.
  EXPECT_GT(stats.failed + stats.cancelled, 0u);
}

TEST(GovernorTest, AlreadyExpiredDeadlineFailsBeforeIssuingCalls) {
  DemoEnv env(SlowWebOptions(1000000));
  WsqDatabase::ExecOptions options;
  options.deadline_micros = 1;  // expires effectively immediately
  auto r = env.db().Execute(kWebSql, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(env.db().pump()->pending_results(), 0u);
}

TEST(GovernorTest, CrossThreadCancelAbortsExecute) {
  DemoEnv env(SlowWebOptions(1000000));
  CancellationToken token;
  WsqDatabase::ExecOptions options;
  options.cancel = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.Cancel();
  });
  Stopwatch timer;
  auto r = env.db().Execute(kWebSql, options);
  int64_t elapsed = timer.ElapsedMicros();
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
      << r.status().ToString();
  EXPECT_LT(elapsed, 500000);
  EXPECT_EQ(env.db().pump()->pending_results(), 0u);
}

TEST(GovernorTest, DeadlineDoesNotPerturbFastQueries) {
  DemoOptions opt;
  opt.corpus.num_documents = 1200;
  opt.corpus.vocab_size = 800;
  opt.latency = LatencyModel::Instant();
  DemoEnv env(opt);
  auto baseline = env.db().Execute(kWebSql);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  WsqDatabase::ExecOptions options;
  options.deadline_micros = 60LL * 1000 * 1000;  // generous
  auto governed = env.db().Execute(kWebSql, options);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  ASSERT_EQ(governed->result.rows.size(), baseline->result.rows.size());
  for (size_t i = 0; i < governed->result.rows.size(); ++i) {
    EXPECT_EQ(governed->result.rows[i].ToString(),
              baseline->result.rows[i].ToString());
  }
}

// Several queries with private tokens racing a canceller thread: every
// Execute must terminate with OK or kCancelled, and the pump ledger
// must balance afterwards (TSan target).
TEST(GovernorTest, ConcurrentExecuteAndCancelRaces) {
  DemoEnv env(SlowWebOptions(30000));
  constexpr int kQueries = 6;
  std::vector<CancellationToken> tokens(kQueries);
  std::atomic<int> finished{0};
  std::vector<std::thread> threads;
  threads.reserve(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    threads.emplace_back([&env, &tokens, &finished, q] {
      WsqDatabase::ExecOptions options;
      options.cancel = &tokens[q];
      auto r = env.db().Execute(kWebSql, options);
      EXPECT_TRUE(r.ok() ||
                  r.status().code() == StatusCode::kCancelled)
          << r.status().ToString();
      ++finished;
    });
  }
  std::thread canceller([&tokens] {
    for (int q = 0; q < kQueries; q += 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      tokens[q].Cancel();
    }
  });
  for (std::thread& th : threads) th.join();
  canceller.join();
  EXPECT_EQ(finished.load(), kQueries);
  ReqPump* pump = env.db().pump();
  pump->Drain();
  EXPECT_EQ(pump->pending_results(), 0u);
  ReqPumpStats stats = pump->stats();
  EXPECT_EQ(stats.registered,
            stats.completed + stats.cancelled + stats.shed);
}

// ---------------------------------------------------------------------
// Deadline clamping of external call timeouts (unit level, via a fake
// virtual table that records the timeout it was handed).

class RecordingTable : public VirtualTable {
 public:
  RecordingTable() : name_("Fake"), destination_("fake") {}

  const std::string& name() const override { return name_; }
  const std::string& destination() const override {
    return destination_;
  }

  Schema SchemaForTerms(size_t n) const override {
    Schema s;
    s.AddColumn(Column("SearchExp", TypeId::kString, name_));
    for (size_t i = 1; i <= n; ++i) {
      s.AddColumn(
          Column("T" + std::to_string(i), TypeId::kString, name_));
    }
    s.AddColumn(Column("Out", TypeId::kInt64, name_));
    return s;
  }

  size_t NumOutputColumns() const override { return 1; }
  bool SingleRowOutput() const override { return true; }

  Result<std::vector<Row>> Fetch(const VTableRequest&) override {
    return std::vector<Row>{Row({Value::Int(1)})};
  }

  using VirtualTable::SubmitAsync;
  CallId SubmitAsync(const VTableRequest&, ReqPump* pump,
                     int64_t timeout_micros) override {
    last_timeout_micros = timeout_micros;
    return pump->Register(destination_, [](CallCompletion done) {
      done(CallResult{Status::OK(), {Row({Value::Int(1)})}});
    });
  }

  int64_t last_timeout_micros = -1;

 private:
  std::string name_;
  std::string destination_;
};

class ClampTest : public ::testing::Test {
 protected:
  // Opens an AEVScan over `table` with the given pump default timeout
  // and token, returning the timeout the table saw.
  int64_t OpenAndRecord(RecordingTable* table, int64_t pump_default,
                        const CancellationToken* token) {
    ReqPump::Limits limits;
    limits.default_timeout_micros = pump_default;
    ReqPump pump(limits);
    EVScanNode node(table, "Fake", 1);
    node.constant_terms[1] = Value::Str("term");
    node.async = true;
    AEVScanOperator op(&node, &pump);
    op.SetCancelToken(token);
    Status s = op.Open();
    EXPECT_TRUE(s.ok()) << s.ToString();
    Row row;
    while (true) {
      auto more = op.Next(&row);
      EXPECT_TRUE(more.ok());
      if (!more.ok() || !*more) break;
    }
    EXPECT_TRUE(op.Close().ok());
    pump.Drain();
    return table->last_timeout_micros;
  }
};

TEST_F(ClampTest, RemainingBudgetClampsCallTimeout) {
  RecordingTable table;
  CancellationToken token;
  token.SetDeadlineAfter(100000);  // 100 ms left
  // Pump default is 10 s: the query budget must win.
  int64_t timeout =
      OpenAndRecord(&table, 10LL * 1000 * 1000, &token);
  EXPECT_GT(timeout, 0);
  EXPECT_LE(timeout, 100000);
}

TEST_F(ClampTest, SmallerPumpDefaultWinsOverLargeBudget) {
  RecordingTable table;
  CancellationToken token;
  token.SetDeadlineAfter(60LL * 1000 * 1000);  // a minute left
  int64_t timeout = OpenAndRecord(&table, 1000, &token);
  EXPECT_EQ(timeout, 1000);
}

TEST_F(ClampTest, NoDeadlinePassesZeroForPumpDefault) {
  RecordingTable table;
  // No deadline on the token: the scan should defer to the pump's
  // default timeout by passing 0.
  CancellationToken token;
  EXPECT_EQ(OpenAndRecord(&table, 1000, &token), 0);
  RecordingTable no_token_table;
  EXPECT_EQ(OpenAndRecord(&no_token_table, 1000, nullptr), 0);
}

TEST_F(ClampTest, ExpiredBudgetRefusesToIssueTheCall) {
  RecordingTable table;
  CancellationToken token;
  token.SetDeadline(NowMicros() - 1);
  ReqPump pump;
  EVScanNode node(&table, "Fake", 1);
  node.constant_terms[1] = Value::Str("term");
  node.async = true;
  AEVScanOperator op(&node, &pump);
  op.SetCancelToken(&token);
  Status s = op.Open();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  // The call was never issued.
  EXPECT_EQ(table.last_timeout_micros, -1);
}

}  // namespace
}  // namespace wsq
