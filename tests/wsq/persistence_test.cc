#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "catalog/catalog_serde.h"
#include "storage/checksum.h"
#include "wsq/database.h"

namespace wsq {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/wsq_persist_test.db";
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }

  std::string path_;
};

TEST_F(PersistenceTest, FreshDatabaseOpensEmpty) {
  auto db = WsqDatabase::Open(path_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE((*db)->persistent());
  EXPECT_TRUE((*db)->catalog()->ListTables().empty());
}

TEST_F(PersistenceTest, InMemoryDatabaseRejectsCheckpoint) {
  WsqDatabase db;
  EXPECT_FALSE(db.persistent());
  EXPECT_FALSE(db.Checkpoint().ok());
}

TEST_F(PersistenceTest, SchemaAndDataSurviveReopen) {
  {
    auto db = WsqDatabase::Open(path_).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE States (Name STRING, "
                            "Population INT, Capital STRING)")
                    .ok());
    ASSERT_TRUE(
        db->Execute("INSERT INTO States VALUES "
                    "('Colorado', 3971000, 'Denver'), "
                    "('Utah', 2100000, 'Salt Lake City')")
            .ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }  // destructor checkpoints again
  {
    auto db = WsqDatabase::Open(path_).value();
    auto tables = db->catalog()->ListTables();
    ASSERT_EQ(tables.size(), 1u);
    EXPECT_EQ(tables[0], "States");

    auto r = db->Execute(
        "SELECT Name, Population FROM States ORDER BY Name");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->result.rows.size(), 2u);
    EXPECT_EQ(r->result.rows[0].value(0).AsString(), "Colorado");
    EXPECT_EQ(r->result.rows[1].value(1).AsInt(), 2100000);
  }
}

TEST_F(PersistenceTest, InsertsAfterReopenAppendCorrectly) {
  {
    auto db = WsqDatabase::Open(path_).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE T (A INT)").ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db->Execute("INSERT INTO T VALUES (" +
                              std::to_string(i) + ")")
                      .ok());
    }
  }
  {
    auto db = WsqDatabase::Open(path_).value();
    for (int i = 100; i < 200; ++i) {
      ASSERT_TRUE(db->Execute("INSERT INTO T VALUES (" +
                              std::to_string(i) + ")")
                      .ok());
    }
  }
  {
    auto db = WsqDatabase::Open(path_).value();
    auto r = db->Execute("SELECT COUNT(*), SUM(A) FROM T");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->result.rows[0].value(0).AsInt(), 200);
    EXPECT_EQ(r->result.rows[0].value(1).AsInt(), 19900);
  }
}

TEST_F(PersistenceTest, MultiPageHeapSurvivesReopen) {
  const std::string big(600, 'x');  // ~6 rows per 4 KiB page
  {
    auto db = WsqDatabase::Open(path_).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE T (S STRING, N INT)").ok());
    TableInfo* t = *db->catalog()->GetTable("T");
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          t->Insert(Row({Value::Str(big + std::to_string(i)),
                         Value::Int(i)}))
              .ok());
    }
  }
  {
    auto db = WsqDatabase::Open(path_).value();
    auto r = db->Execute("SELECT COUNT(*), MIN(N), MAX(N) FROM T");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->result.rows[0].value(0).AsInt(), 50);
    EXPECT_EQ(r->result.rows[0].value(1).AsInt(), 0);
    EXPECT_EQ(r->result.rows[0].value(2).AsInt(), 49);
    // Appending must find the true tail of the page chain, not clobber
    // the first page's next pointer.
    TableInfo* t = *db->catalog()->GetTable("T");
    ASSERT_TRUE(
        t->Insert(Row({Value::Str(big + "reopened"), Value::Int(50)}))
            .ok());
  }
  {
    auto db = WsqDatabase::Open(path_).value();
    auto r = db->Execute("SELECT COUNT(*), MAX(N) FROM T");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->result.rows[0].value(0).AsInt(), 51);
    EXPECT_EQ(r->result.rows[0].value(1).AsInt(), 50);
  }
}

TEST_F(PersistenceTest, MultipleTablesKeepSeparateHeaps) {
  {
    auto db = WsqDatabase::Open(path_).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE A (X INT)").ok());
    ASSERT_TRUE(db->Execute("CREATE TABLE B (Y STRING)").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db->Execute("INSERT INTO A VALUES (" +
                              std::to_string(i) + ")")
                      .ok());
      ASSERT_TRUE(
          db->Execute("INSERT INTO B VALUES ('b" +
                      std::to_string(i) + "')")
              .ok());
    }
  }
  {
    auto db = WsqDatabase::Open(path_).value();
    EXPECT_EQ((*db->Execute("SELECT COUNT(*) FROM A"))
                  .result.rows[0]
                  .value(0)
                  .AsInt(),
              20);
    EXPECT_EQ((*db->Execute("SELECT COUNT(*) FROM B"))
                  .result.rows[0]
                  .value(0)
                  .AsInt(),
              20);
  }
}

TEST_F(PersistenceTest, CorruptMagicRejected) {
  {
    auto db = WsqDatabase::Open(path_);
    ASSERT_TRUE(db.ok());
  }
  // Scribble over the catalog root's page header.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  const char junk[] = "JUNK";
  std::fwrite(junk, 1, 4, f);
  std::fclose(f);

  auto reopened = WsqDatabase::Open(path_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
}

TEST_F(PersistenceTest, CorruptCatalogPayloadRejected) {
  {
    auto db = WsqDatabase::Open(path_);
    ASSERT_TRUE(db.ok());
  }
  // Flip one payload byte; the header stays plausible, so only the
  // checksum can catch it.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, kPageHeaderSize + 2, SEEK_SET), 0);
  const char junk = '\x7f';
  std::fwrite(&junk, 1, 1, f);
  std::fclose(f);

  auto reopened = WsqDatabase::Open(path_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
}

TEST_F(PersistenceTest, TruncatedFileRejected) {
  {
    auto db = WsqDatabase::Open(path_).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE T (A INT)").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO T VALUES (1)").ok());
  }
  // Tear the final page in half, as an interrupted ftruncate/write
  // extension would.
  ASSERT_EQ(::truncate(path_.c_str(), 2 * kPageSize + kPageSize / 2), 0);

  auto reopened = WsqDatabase::Open(path_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
}

TEST_F(PersistenceTest, TornWalDiscardedOnReopen) {
  {
    auto db = WsqDatabase::Open(path_).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE T (A INT)").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO T VALUES (7)").ok());
  }
  // Fake a crash mid-checkpoint: a log that ends without its commit
  // record. Recovery must discard it and keep the checkpointed state.
  {
    std::FILE* f = std::fopen((path_ + ".wal").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const uint32_t magic = 0x4C415751;
    const uint16_t version = 1, reserved = 0;
    std::fwrite(&magic, 4, 1, f);
    std::fwrite(&version, 2, 1, f);
    std::fwrite(&reserved, 2, 1, f);
    const char partial[] = "\x01 partial page record...";
    std::fwrite(partial, 1, sizeof(partial), f);
    std::fclose(f);
  }
  {
    auto db = WsqDatabase::Open(path_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ((*db)->last_recovery().action, WalRecoveryAction::kDiscarded);
    auto r = (*db)->Execute("SELECT COUNT(*) FROM T");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->result.rows[0].value(0).AsInt(), 1);
  }
  // The torn log is gone; the next open is clean.
  {
    auto db = WsqDatabase::Open(path_).value();
    EXPECT_EQ(db->last_recovery().action, WalRecoveryAction::kNone);
  }
}

TEST_F(PersistenceTest, SyncPolicyKnobIsHonored) {
  WsqDatabase::Options options;
  options.sync_policy = SyncPolicy::kNone;
  {
    auto db = WsqDatabase::Open(path_, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Execute("CREATE TABLE T (A INT)").ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = WsqDatabase::Open(path_, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->catalog()->ListTables().size(), 1u);
}

TEST_F(PersistenceTest, CatalogSerdeRoundTripDirect) {
  InMemoryDiskManager disk;
  BufferPool pool(16, &disk);
  Page* root = *pool.NewPage();
  WSQ_IGNORE_STATUS(pool.UnpinPage(root->page_id(), true));

  Catalog catalog(&pool);
  Schema schema({Column("Name", TypeId::kString),
                 Column("Population", TypeId::kInt64),
                 Column("Score", TypeId::kDouble)});
  TableInfo* t = *catalog.CreateTable("States", schema);
  ASSERT_TRUE(t->Insert(Row({Value::Str("x"), Value::Int(1),
                             Value::Real(0.5)}))
                  .ok());
  ASSERT_TRUE(SaveCatalog(catalog, &pool).ok());

  Catalog loaded(&pool);
  ASSERT_TRUE(LoadCatalog(&loaded, &pool).ok());
  TableInfo* lt = *loaded.GetTable("States");
  EXPECT_EQ(lt->schema().NumColumns(), 3u);
  EXPECT_EQ(lt->schema().column(2).type, TypeId::kDouble);
  EXPECT_EQ(lt->heap()->first_page(), t->heap()->first_page());
  auto rows = *lt->ScanAll();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].value(0).AsString(), "x");
}

}  // namespace
}  // namespace wsq
