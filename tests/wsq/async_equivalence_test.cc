#include <gtest/gtest.h>

#include <algorithm>

#include "common/strings.h"
#include "wsq/demo.h"

namespace wsq {
namespace {

// Property: asynchronous iteration is a pure execution-strategy change —
// for ANY query, the async result multiset equals the sequential one.
// We sweep a family of generated queries (parameterized gtest).
class AsyncEquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  static DemoEnv& Env() {
    static DemoEnv* const kEnv = [] {
      DemoOptions opt;
      opt.corpus.num_documents = 1500;
      opt.corpus.vocab_size = 700;
      opt.latency = LatencyModel{1500, 900, 0.1, 3.0};  // jittery!
      return new DemoEnv(opt);
    }();
    return *kEnv;
  }

  // Generated query for one parameter index: varies constants, rank
  // limits, engines, join shapes, and ORDER BY columns.
  static std::string QueryFor(int index) {
    const auto& constants = TemplateConstants();
    const std::string& c1 = constants[index % constants.size()];
    const std::string& c2 = constants[(index + 5) % constants.size()];
    int rank = 1 + (index % 4);
    switch (index % 6) {
      case 0:
        return StrFormat(
            "Select Name, Count From States, WebCount "
            "Where Name = T1 and T2 = '%s' Order By Count Desc, Name",
            c1.c_str());
      case 1:
        return StrFormat(
            "Select Name, URL, Rank From Sigs, WebPages "
            "Where Name = T1 and Rank <= %d Order By Name, Rank", rank);
      case 2:
        return StrFormat(
            "Select Name, Count, URL, Rank "
            "From States, WebCount, WebPages "
            "Where Name = WebCount.T1 and WebCount.T2 = '%s' and "
            "Name = WebPages.T1 and WebPages.T2 = '%s' and "
            "WebPages.Rank <= %d "
            "Order By Name, Rank",
            c1.c_str(), c2.c_str(), rank);
      case 3:
        return StrFormat(
            "Select Name, AV.URL, G.URL From Sigs, WebPages_AV AV, "
            "WebPages_Google G "
            "Where Name = AV.T1 and Name = G.T1 and AV.Rank <= %d and "
            "G.Rank <= %d and AV.T2 = '%s' and G.T2 = '%s' "
            "Order By Name, AV.URL, G.URL",
            rank, rank, c1.c_str(), c1.c_str());
      case 4:
        return StrFormat(
            "Select Capital, C.Count, Name, S.Count "
            "From States, WebCount C, WebCount S "
            "Where Capital = C.T1 and Name = S.T1 and "
            "C.Count > S.Count Order By Capital");
      default:
        return StrFormat(
            "Select Name, Count From CSFields, WebCount "
            "Where Name = T1 and T2 = '%s' "
            "Order By Count Desc, Name", c2.c_str());
    }
  }
};

TEST_P(AsyncEquivalenceTest, AsyncMatchesSequential) {
  std::string sql = QueryFor(GetParam());
  auto sync = Env().Run(sql, /*async=*/false);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString() << "\n" << sql;
  auto async = Env().Run(sql, /*async=*/true);
  ASSERT_TRUE(async.ok()) << async.status().ToString() << "\n" << sql;

  ASSERT_EQ(sync->result.rows.size(), async->result.rows.size()) << sql;
  // The queries all have total ORDER BYs, so compare positionally.
  for (size_t i = 0; i < sync->result.rows.size(); ++i) {
    ASSERT_EQ(sync->result.rows[i], async->result.rows[i])
        << sql << "\nrow " << i;
  }
}

TEST_P(AsyncEquivalenceTest, InsertOnlyRewriteAlsoMatches) {
  // The ablation rewrite (no percolation/consolidation) must still be
  // correct — it only reduces concurrency.
  std::string sql = QueryFor(GetParam());
  auto sync = Env().Run(sql, /*async=*/false);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();

  WsqDatabase::ExecOptions opt;
  opt.async_iteration = true;
  opt.rewrite.insert_only = true;
  opt.rewrite.consolidate = false;
  auto ablated = Env().db().Execute(sql, opt);
  ASSERT_TRUE(ablated.ok()) << ablated.status().ToString() << "\n" << sql;

  ASSERT_EQ(sync->result.rows.size(), ablated->result.rows.size())
      << sql;
  for (size_t i = 0; i < sync->result.rows.size(); ++i) {
    ASSERT_EQ(sync->result.rows[i], ablated->result.rows[i])
        << sql << "\nrow " << i;
  }
}

TEST_P(AsyncEquivalenceTest, StreamingReqSyncAlsoMatches) {
  std::string sql = QueryFor(GetParam());
  auto sync = Env().Run(sql, /*async=*/false);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();

  WsqDatabase::ExecOptions opt;
  opt.async_iteration = true;
  opt.rewrite.streaming_reqsync = true;
  auto streaming = Env().db().Execute(sql, opt);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString() << "\n"
                              << sql;

  ASSERT_EQ(sync->result.rows.size(), streaming->result.rows.size())
      << sql;
  for (size_t i = 0; i < sync->result.rows.size(); ++i) {
    ASSERT_EQ(sync->result.rows[i], streaming->result.rows[i])
        << sql << "\nrow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(QuerySweep, AsyncEquivalenceTest,
                         ::testing::Range(0, 18));

}  // namespace
}  // namespace wsq
