// Postmortem chaos sweep (ctest -L chaos, including the TSan job):
// under a seeded fault plan every query that fails or returns degraded
// data must produce exactly one postmortem record that names the
// responsible destination, and fault-free steady state must produce
// zero postmortems with a byte-stable \statusz report.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/statusz.h"
#include "wsq/demo.h"

namespace wsq {
namespace {

struct Capture {
  Mutex mu;
  std::vector<PostmortemRecord> records;

  PostmortemLog::Sink sink() {
    return [this](const PostmortemRecord& r) {
      MutexLock lock(&mu);
      records.push_back(r);
    };
  }
  std::vector<PostmortemRecord> take() {
    MutexLock lock(&mu);
    return records;
  }
};

DemoOptions BaseOptions() {
  DemoOptions opt;
  opt.corpus.num_documents = 600;
  opt.corpus.vocab_size = 400;
  opt.latency = LatencyModel::Instant();
  opt.search_shards = 3;
  // No replicas: a failed shard leg must stay failed (hedging to a
  // fault-free replica would mask the fault and the postmortem).
  opt.shard_replicas = false;
  return opt;
}

TEST(PostmortemChaosTest, FaultFreeLoadEmitsNothingAndStatuszIsStable) {
  Capture capture;
  DemoOptions opt = BaseOptions();
  opt.postmortem_sink = capture.sink();
  DemoEnv env(opt);

  const char* queries[] = {
      "SELECT Name, Capital FROM States ORDER BY Name LIMIT 5",
      "SELECT Count FROM WebCount WHERE T1 = 'colorado'",
      "SELECT Name, Count FROM Sigs, WebCount WHERE Name = T1 "
      "ORDER BY Count DESC, Name",
  };
  for (int round = 0; round < 2; ++round) {
    for (const char* sql : queries) {
      auto r = env.Run(sql);
      ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
      EXPECT_EQ(r->stats.partial_results, 0u) << sql;
      EXPECT_EQ(r->stats.dropped_tuples + r->stats.null_padded_tuples +
                    r->stats.shed_tuples,
                0u)
          << sql;
    }
  }

  EXPECT_TRUE(capture.take().empty());
  EXPECT_EQ(env.db().postmortems()->emitted_total(), 0u);
  EXPECT_EQ(env.db().postmortems()->suppressed_total(), 0u);
  EXPECT_EQ(env.db().postmortems()->last(), nullptr);

  // Quiesce every async layer, then the introspection surface must be
  // byte-stable: identical state renders identically.
  env.shard_cluster()->Quiesce();
  env.db().pump()->Drain();
  std::string once = StatuszRegistry::Global()->Render().ToText();
  std::string twice = StatuszRegistry::Global()->Render().ToText();
  EXPECT_EQ(once, twice);
  // The report covers the live deployment: database + shard sections.
  EXPECT_NE(once.find("== admission =="), std::string::npos) << once;
  EXPECT_NE(once.find("== memory/db =="), std::string::npos) << once;
  EXPECT_NE(once.find("== buffer_pool =="), std::string::npos) << once;
  EXPECT_NE(once.find("== postmortems =="), std::string::npos) << once;
  EXPECT_NE(once.find("shards/"), std::string::npos) << once;
  EXPECT_NE(once.find("breaker/"), std::string::npos) << once;
}

TEST(PostmortemChaosTest, EveryBadEndingYieldsExactlyOnePostmortem) {
  Capture capture;
  DemoOptions opt = BaseOptions();
  opt.postmortem_sink = capture.sink();
  // Shard 0 hard-fails every request it sees, deterministically.
  opt.shard_faults.resize(1);
  opt.shard_faults[0].permanent_rate = 1.0;
  opt.shard_faults[0].seed = 7;
  DemoEnv env(opt);

  std::vector<uint64_t> expected_bad_ids;

  // Best-effort queries survive the dark shard but must confess: OK +
  // partial stats => one degraded postmortem each.
  for (const char* term : {"colorado", "utah", "database"}) {
    WsqDatabase::ExecOptions exec;
    exec.shard.policy = ShardPolicy::kBestEffort;
    auto r = env.db().Execute(
        std::string("SELECT Count FROM WebCount WHERE T1 = '") + term +
            "'",
        exec);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r->stats.partial_results, 0u) << term;
    EXPECT_GT(r->stats.degraded_shards, 0u) << term;
    expected_bad_ids.push_back(r->stats.query_id);
  }

  // Default (fail-unless-complete) policy: the dark shard fails the
  // whole query => one failure postmortem each.
  size_t failed_queries = 0;
  for (const char* term : {"systems", "query"}) {
    auto r = env.db().Execute(
        std::string("SELECT Count FROM WebCount WHERE T1 = '") + term +
        "'");
    EXPECT_FALSE(r.ok()) << term;
    if (!r.ok()) ++failed_queries;
  }

  // Healthy statements emit nothing even in a faulted deployment.
  ASSERT_TRUE(
      env.Run("SELECT Name FROM States ORDER BY Name LIMIT 3").ok());

  std::vector<PostmortemRecord> records = capture.take();
  ASSERT_EQ(records.size(), expected_bad_ids.size() + failed_queries);
  EXPECT_EQ(env.db().postmortems()->emitted_total(), records.size());

  size_t degraded_seen = 0;
  size_t failed_seen = 0;
  for (const PostmortemRecord& pm : records) {
    EXPECT_NE(pm.query_id, 0u);
    EXPECT_FALSE(pm.sql.empty());
    EXPECT_FALSE(pm.verdict.empty());
    EXPECT_FALSE(pm.cause.empty());
    if (pm.ok) {
      ++degraded_seen;
      // Exactly one degraded postmortem per best-effort query, id
      // matched — never two for the same query.
      size_t matches = 0;
      for (uint64_t id : expected_bad_ids) {
        if (id == pm.query_id) ++matches;
      }
      EXPECT_EQ(matches, 1u) << "qid " << pm.query_id;
      EXPECT_TRUE(pm.partial_results);
      EXPECT_NE(pm.cause.find("shard(s) missing"), std::string::npos)
          << pm.cause;
    } else {
      ++failed_seen;
      EXPECT_NE(pm.verdict, "OK");
      EXPECT_GT(pm.failed_calls, 0u);
    }
    // The flight-recorder slice names the responsible destination: the
    // query's external calls (and for failures, the failing call or
    // quorum verdict) are in the record.
    bool named_destination = false;
    for (const FrEvent& e : pm.events) {
      if ((e.type == FrEventType::kCallFailed ||
           e.type == FrEventType::kCallComplete ||
           e.type == FrEventType::kQuorumFail ||
           e.type == FrEventType::kFanout) &&
          !e.destination.empty()) {
        named_destination = true;
      }
    }
    EXPECT_TRUE(named_destination)
        << "postmortem for qid " << pm.query_id
        << " names no destination:\n"
        << pm.ToText();
  }
  EXPECT_EQ(degraded_seen, expected_bad_ids.size());
  EXPECT_EQ(failed_seen, failed_queries);

  // \postmortem last surfaces the most recent bad ending.
  auto last = env.db().postmortems()->last();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->query_id, records.back().query_id);
}

TEST(PostmortemChaosTest, RateLimitSuppressesButTracksEveryBadEnding) {
  Capture capture;
  DemoOptions opt = BaseOptions();
  opt.postmortem_sink = capture.sink();
  // One emitted postmortem per hour: the sweep below emits exactly one
  // record and suppresses the rest, while last() keeps tracking.
  opt.postmortem_min_interval_micros = 3'600'000'000LL;
  opt.shard_faults.resize(1);
  opt.shard_faults[0].permanent_rate = 1.0;
  DemoEnv env(opt);

  WsqDatabase::ExecOptions exec;
  exec.shard.policy = ShardPolicy::kBestEffort;
  uint64_t last_id = 0;
  for (const char* term : {"colorado", "utah", "database"}) {
    auto r = env.db().Execute(
        std::string("SELECT Count FROM WebCount WHERE T1 = '") + term +
            "'",
        exec);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    last_id = r->stats.query_id;
  }

  EXPECT_EQ(capture.take().size(), 1u);
  EXPECT_EQ(env.db().postmortems()->emitted_total(), 1u);
  EXPECT_EQ(env.db().postmortems()->suppressed_total(), 2u);
  auto last = env.db().postmortems()->last();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->query_id, last_id);
}

}  // namespace
}  // namespace wsq
