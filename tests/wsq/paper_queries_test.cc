#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"
#include "wsq/demo.h"

namespace wsq {
namespace {

// Section 3.1's six example queries, executed end-to-end against the
// synthetic Web. We assert the *shapes* the paper reports, not absolute
// numbers (DESIGN.md E9).
class PaperQueriesTest : public ::testing::Test {
 protected:
  static DemoEnv& Env() {
    static DemoEnv* const kEnv = [] {
      DemoOptions opt;
      opt.corpus.num_documents = 6000;
      opt.latency = LatencyModel::Instant();
      return new DemoEnv(opt);
    }();
    return *kEnv;
  }

  ResultSet Must(const std::string& sql, bool async = true) {
    auto r = Env().Run(sql, async);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    return r.ok() ? std::move(r->result) : ResultSet{};
  }

  static std::map<std::string, int64_t> ToMap(const ResultSet& r) {
    std::map<std::string, int64_t> out;
    for (const Row& row : r.rows) {
      out[row.value(0).AsString()] = row.value(1).AsInt();
    }
    return out;
  }
};

TEST_F(PaperQueriesTest, Query1RankStatesByMentions) {
  ResultSet r = Must(
      "Select Name, Count From States, WebCount "
      "Where Name = T1 Order By Count Desc");
  ASSERT_EQ(r.rows.size(), 50u);
  // Counts are non-increasing.
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i - 1].value(1).AsInt(),
              r.rows[i].value(1).AsInt());
  }
  // The paper's top-5 prominence states dominate our synthetic Web too.
  std::set<std::string> top5;
  for (size_t i = 0; i < 5; ++i) {
    top5.insert(r.rows[i].value(0).AsString());
  }
  EXPECT_TRUE(top5.count("California")) << r.ToString(10);
  EXPECT_TRUE(top5.count("Washington")) << r.ToString(10);
  EXPECT_TRUE(top5.count("New York")) << r.ToString(10);
  EXPECT_TRUE(top5.count("Texas")) << r.ToString(10);
}

TEST_F(PaperQueriesTest, Query2NormalizedByPopulation) {
  // Integer division (Count/Population) over our smaller corpus is
  // always 0, so scale the ratio the way the paper's magnitudes did:
  // counts are ~millions over ~millions there, hits-per-million here.
  ResultSet r = Must(
      "Select Name, Count * 1000000 / Population As C "
      "From States, WebCount Where Name = T1 Order By C Desc");
  ASSERT_EQ(r.rows.size(), 50u);
  std::set<std::string> top5;
  for (size_t i = 0; i < 5; ++i) {
    top5.insert(r.rows[i].value(0).AsString());
  }
  // Paper: Alaska, Washington, Delaware, Hawaii, Wyoming lead.
  EXPECT_TRUE(top5.count("Alaska")) << r.ToString(10);
  EXPECT_TRUE(top5.count("Wyoming")) << r.ToString(10);
  // Big states fall to the bottom half.
  std::vector<std::string> bottom;
  for (size_t i = 25; i < 50; ++i) {
    bottom.push_back(r.rows[i].value(0).AsString());
  }
  EXPECT_NE(std::find(bottom.begin(), bottom.end(), "California"),
            bottom.end())
      << r.ToString(50);
}

TEST_F(PaperQueriesTest, Query3FourCornersDropoff) {
  ResultSet r = Must(
      "Select Name, Count From States, WebCount "
      "Where Name = T1 and T2 = 'four corners' Order By Count Desc");
  ASSERT_EQ(r.rows.size(), 50u);
  // The four corners states fill the top four ranks...
  std::set<std::string> top4;
  for (size_t i = 0; i < 4; ++i) {
    top4.insert(r.rows[i].value(0).AsString());
  }
  EXPECT_EQ(top4, (std::set<std::string>{"Colorado", "New Mexico",
                                         "Arizona", "Utah"}))
      << r.ToString(8);
  // ...with the paper's dropoff to rank five (994 vs 215 there; the
  // smaller synthetic corpus shows the same cliff at lower contrast).
  int64_t fourth = r.rows[3].value(1).AsInt();
  int64_t fifth = r.rows[4].value(1).AsInt();
  EXPECT_GT(2 * fourth, 3 * fifth) << r.ToString(8);
  EXPECT_GT(r.rows[0].value(1).AsInt(), 0);
}

TEST_F(PaperQueriesTest, Query4CapitalsBeatingStates) {
  ResultSet r = Must(
      "Select Capital, C.Count, Name, S.Count "
      "From States, WebCount C, WebCount S "
      "Where Capital = C.T1 and Name = S.T1 and C.Count > S.Count "
      "Order By Capital");
  // Every returned capital genuinely outscores its state.
  for (const Row& row : r.rows) {
    EXPECT_GT(row.value(1).AsInt(), row.value(3).AsInt());
  }
  // The paper's six common-word capitals are all present.
  std::set<std::string> capitals;
  for (const Row& row : r.rows) {
    capitals.insert(row.value(0).AsString());
  }
  for (const char* expected :
       {"Atlanta", "Lincoln", "Boston", "Jackson", "Pierre",
        "Columbia"}) {
    EXPECT_TRUE(capitals.count(expected)) << expected << "\n"
                                          << r.ToString(20);
  }
}

TEST_F(PaperQueriesTest, Query5TopTwoUrlsPerState) {
  ResultSet r = Must(
      "Select Name, URL, Rank From States, WebPages "
      "Where Name = T1 and Rank <= 2 Order By Name, Rank");
  ASSERT_GT(r.rows.size(), 50u);  // most states have >= 2 URLs
  ASSERT_LE(r.rows.size(), 100u);
  std::map<std::string, std::vector<int64_t>> ranks;
  for (const Row& row : r.rows) {
    EXPECT_FALSE(row.value(1).AsString().empty());
    ranks[row.value(0).AsString()].push_back(row.value(2).AsInt());
  }
  for (const auto& [state, rs] : ranks) {
    ASSERT_LE(rs.size(), 2u) << state;
    EXPECT_EQ(rs[0], 1) << state;
    if (rs.size() == 2) {
      EXPECT_EQ(rs[1], 2) << state;
    }
  }
}

TEST_F(PaperQueriesTest, Query6EnginesAgreeOnSomeUrls) {
  ResultSet r = Must(
      "Select Name, AV.URL From States, WebPages_AV AV, "
      "WebPages_Google G "
      "Where Name = AV.T1 and Name = G.T1 and AV.Rank <= 5 and "
      "G.Rank <= 5 and AV.URL = G.URL Order By Name");
  // Paper: agreement is rare but non-empty (4 URLs out of 250).
  EXPECT_GT(r.rows.size(), 0u);
  EXPECT_LT(r.rows.size(), 100u);
  // Agreement is genuine: the URL really is in both engines' top 5.
  for (size_t i = 0; i < std::min<size_t>(r.rows.size(), 3); ++i) {
    const std::string& state = r.rows[i].value(0).AsString();
    const std::string& url = r.rows[i].value(1).AsString();
    auto av = *Env().altavista_engine().Search(ToLower(state), 5);
    auto g = *Env().google_engine().Search(ToLower(state), 5);
    bool in_av = false, in_g = false;
    for (const auto& h : av) in_av |= h.url == url;
    for (const auto& h : g) in_g |= h.url == url;
    EXPECT_TRUE(in_av && in_g) << state << " " << url;
  }
}

TEST_F(PaperQueriesTest, Section41SigsNearKnuth) {
  // §4.1 footnote 3: SIGACT, SIGPLAN, SIGGRAPH, SIGMOD, SIGCOMM,
  // SIGSAM in order; all other Sigs count 0.
  ResultSet r = Must(
      "Select Name, Count From Sigs, WebCount "
      "Where Name = T1 and T2 = 'Knuth' Order By Count Desc, Name");
  ASSERT_EQ(r.rows.size(), 37u);
  std::vector<std::string> nonzero;
  for (const Row& row : r.rows) {
    if (row.value(1).AsInt() > 0) {
      nonzero.push_back(row.value(0).AsString());
    }
  }
  // The planted six lead; order of the top entries matches the paper.
  ASSERT_GE(nonzero.size(), 4u) << r.ToString(10);
  EXPECT_EQ(nonzero[0], "SIGACT") << r.ToString(10);
  // The planted leaders occupy the top of the nonzero list (exact
  // order below rank 1 is subject to sampling noise at this corpus
  // size, as the paper's own footnote-2 caveat anticipates).
  std::set<std::string> planted = {"SIGACT", "SIGPLAN", "SIGGRAPH",
                                   "SIGMOD", "SIGCOMM", "SIGSAM"};
  for (size_t i = 0; i < 3 && i < nonzero.size(); ++i) {
    EXPECT_TRUE(planted.count(nonzero[i]))
        << nonzero[i] << "\n" << r.ToString(10);
  }
  std::set<std::string> seen(nonzero.begin(), nonzero.end());
  for (const char* sig : {"SIGACT", "SIGPLAN", "SIGGRAPH", "SIGMOD"}) {
    EXPECT_TRUE(seen.count(sig)) << sig << "\n" << r.ToString(10);
  }
}

TEST_F(PaperQueriesTest, AllQueriesAgreeAcrossExecutionModes) {
  const char* queries[] = {
      "Select Name, Count From States, WebCount Where Name = T1 "
      "Order By Count Desc, Name",
      "Select Name, Count From States, WebCount "
      "Where Name = T1 and T2 = 'four corners' "
      "Order By Count Desc, Name",
      "Select Capital, C.Count, Name, S.Count "
      "From States, WebCount C, WebCount S "
      "Where Capital = C.T1 and Name = S.T1 and C.Count > S.Count "
      "Order By Capital",
      "Select Name, URL, Rank From States, WebPages "
      "Where Name = T1 and Rank <= 2 Order By Name, Rank",
      "Select Name, AV.URL From States, WebPages_AV AV, "
      "WebPages_Google G Where Name = AV.T1 and Name = G.T1 and "
      "AV.Rank <= 5 and G.Rank <= 5 and AV.URL = G.URL "
      "Order By Name, AV.URL",
  };
  for (const char* sql : queries) {
    ResultSet sync = Must(sql, /*async=*/false);
    ResultSet async = Must(sql, /*async=*/true);
    ASSERT_EQ(sync.rows.size(), async.rows.size()) << sql;
    for (size_t i = 0; i < sync.rows.size(); ++i) {
      ASSERT_EQ(sync.rows[i], async.rows[i]) << sql << " row " << i;
    }
  }
}

}  // namespace
}  // namespace wsq
