#include <gtest/gtest.h>

#include <cstdio>

#include "wsq/database.h"

namespace wsq {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() {
    EXPECT_TRUE(
        db_.Execute("CREATE TABLE T (K STRING, V INT)").ok());
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(db_.Execute("INSERT INTO T VALUES ('k" +
                              std::to_string(i % 40) + "', " +
                              std::to_string(i) + ")")
                      .ok());
    }
  }

  ResultSet Must(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    return r.ok() ? std::move(r->result) : ResultSet{};
  }

  WsqDatabase db_;
};

TEST_F(IndexTest, CreateIndexStatement) {
  EXPECT_TRUE(db_.Execute("CREATE INDEX ix_k ON T (K)").ok());
  TableInfo* t = *db_.catalog()->GetTable("T");
  ASSERT_EQ(t->indexes().size(), 1u);
  EXPECT_EQ(t->indexes()[0]->name(), "ix_k");
  EXPECT_EQ(*t->indexes()[0]->tree()->Count(), 200);
  ASSERT_TRUE(t->indexes()[0]->tree()->CheckInvariants().ok());
}

TEST_F(IndexTest, CreateIndexErrors) {
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix_k ON T (K)").ok());
  EXPECT_FALSE(db_.Execute("CREATE INDEX ix_k ON T (V)").ok());
  EXPECT_FALSE(db_.Execute("CREATE INDEX ix_k2 ON T (K)").ok());
  EXPECT_FALSE(db_.Execute("CREATE INDEX ix ON Missing (K)").ok());
  EXPECT_FALSE(db_.Execute("CREATE INDEX ix ON T (Nope)").ok());
  EXPECT_FALSE(db_.Execute("CREATE INDEX ON T (K)").ok());
}

TEST_F(IndexTest, PlannerSelectsIndexScan) {
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix_k ON T (K)").ok());
  auto plan = db_.ExplainSelect("SELECT V FROM T WHERE K = 'k7'",
                                /*async=*/false);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan: T (K = 'k7', index ix_k)"),
            std::string::npos)
      << *plan;
  // No residual filter remains.
  EXPECT_EQ(plan->find("Select:"), std::string::npos) << *plan;
}

TEST_F(IndexTest, IndexScanMatchesSeqScanResults) {
  // Answer before and after indexing must be identical.
  ResultSet before = Must("SELECT V FROM T WHERE K = 'k7' ORDER BY V");
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix_k ON T (K)").ok());
  ResultSet after = Must("SELECT V FROM T WHERE K = 'k7' ORDER BY V");
  ASSERT_EQ(before.rows.size(), after.rows.size());
  ASSERT_EQ(before.rows.size(), 5u);  // 200 rows over 40 keys
  for (size_t i = 0; i < before.rows.size(); ++i) {
    EXPECT_EQ(before.rows[i], after.rows[i]);
  }
}

TEST_F(IndexTest, RangePredicateUsesIndexScan) {
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix_v ON T (V)").ok());
  auto plan = db_.ExplainSelect("SELECT K FROM T WHERE V > 100",
                                /*async=*/false);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan: T (V > 100, index ix_v)"),
            std::string::npos)
      << *plan;
  ResultSet r = Must("SELECT V FROM T WHERE V > 100 ORDER BY V");
  ASSERT_EQ(r.rows.size(), 99u);  // 101..199
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 101);
  EXPECT_EQ(r.rows.back().value(0).AsInt(), 199);
}

TEST_F(IndexTest, TwoSidedRangeFoldedIntoOneScan) {
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix_v ON T (V)").ok());
  auto plan = db_.ExplainSelect(
      "SELECT V FROM T WHERE V >= 10 AND V < 20", /*async=*/false);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan: T (V >= 10 and V < 20, index ix_v)"),
            std::string::npos)
      << *plan;
  EXPECT_EQ(plan->find("Select:"), std::string::npos) << *plan;
  ResultSet r = Must(
      "SELECT V FROM T WHERE V >= 10 AND V < 20 ORDER BY V");
  ASSERT_EQ(r.rows.size(), 10u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 10);
  EXPECT_EQ(r.rows.back().value(0).AsInt(), 19);
}

TEST_F(IndexTest, RedundantBoundsKeepTightest) {
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix_v ON T (V)").ok());
  ResultSet r = Must(
      "SELECT V FROM T WHERE V > 5 AND V >= 10 AND V <= 50 AND V < 12 "
      "ORDER BY V");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 10);
  EXPECT_EQ(r.rows[1].value(0).AsInt(), 11);
}

TEST_F(IndexTest, RangeScanMatchesSeqScanResults) {
  ResultSet before = Must(
      "SELECT K, V FROM T WHERE V >= 42 AND V <= 87 ORDER BY V");
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix_v ON T (V)").ok());
  ResultSet after = Must(
      "SELECT K, V FROM T WHERE V >= 42 AND V <= 87 ORDER BY V");
  ASSERT_EQ(before.rows.size(), after.rows.size());
  for (size_t i = 0; i < before.rows.size(); ++i) {
    EXPECT_EQ(before.rows[i], after.rows[i]);
  }
}

TEST_F(IndexTest, OtherConjunctsBecomeFiltersAboveIndexScan) {
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix_k ON T (K)").ok());
  auto plan = db_.ExplainSelect(
      "SELECT V FROM T WHERE K = 'k7' AND V > 100", /*async=*/false);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Select: (T.V > 100)"), std::string::npos)
      << *plan;
  ResultSet r = Must("SELECT V FROM T WHERE K = 'k7' AND V > 100 "
                     "ORDER BY V");
  for (const Row& row : r.rows) {
    EXPECT_GT(row.value(0).AsInt(), 100);
  }
}

TEST_F(IndexTest, InsertDeleteUpdateMaintainIndex) {
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix_k ON T (K)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO T VALUES ('fresh', 999)").ok());
  ResultSet r = Must("SELECT V FROM T WHERE K = 'fresh'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 999);

  ASSERT_TRUE(db_.Execute("DELETE FROM T WHERE K = 'k7'").ok());
  EXPECT_TRUE(Must("SELECT V FROM T WHERE K = 'k7'").rows.empty());

  ASSERT_TRUE(
      db_.Execute("UPDATE T SET K = 'renamed' WHERE K = 'k8'").ok());
  EXPECT_TRUE(Must("SELECT V FROM T WHERE K = 'k8'").rows.empty());
  EXPECT_EQ(Must("SELECT V FROM T WHERE K = 'renamed'").rows.size(),
            5u);

  TableInfo* t = *db_.catalog()->GetTable("T");
  ASSERT_TRUE(t->indexes()[0]->tree()->CheckInvariants().ok());
  EXPECT_EQ(*t->indexes()[0]->tree()->Count(), *t->NumRows());
}

TEST_F(IndexTest, IndexOnIntColumn) {
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix_v ON T (V)").ok());
  auto plan = db_.ExplainSelect("SELECT K FROM T WHERE V = 123",
                                /*async=*/false);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
  ResultSet r = Must("SELECT K FROM T WHERE V = 123");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsString(), "k3");
}

TEST_F(IndexTest, IndexUsedInsideJoins) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE U (K STRING)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO U VALUES ('k7'), ('k9')").ok());
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix_k ON T (K)").ok());
  // The single-table equality on T is consumed by an IndexScan even
  // with a join present.
  auto plan = db_.ExplainSelect(
      "SELECT U.K, V FROM U, T WHERE T.K = 'k7' AND U.K = T.K",
      /*async=*/false);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
  ResultSet r = Must(
      "SELECT U.K, V FROM U, T WHERE T.K = 'k7' AND U.K = T.K "
      "ORDER BY V");
  EXPECT_EQ(r.rows.size(), 5u);
}

TEST_F(IndexTest, IndexPersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/wsq_index_persist.db";
  std::remove(path.c_str());
  {
    auto db = WsqDatabase::Open(path).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE P (K STRING, V INT)").ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db->Execute("INSERT INTO P VALUES ('p" +
                              std::to_string(i % 10) + "', " +
                              std::to_string(i) + ")")
                      .ok());
    }
    ASSERT_TRUE(db->Execute("CREATE INDEX ix_p ON P (K)").ok());
  }
  {
    auto db = WsqDatabase::Open(path).value();
    TableInfo* t = *db->catalog()->GetTable("P");
    ASSERT_EQ(t->indexes().size(), 1u);
    EXPECT_EQ(*t->indexes()[0]->tree()->Count(), 100);
    auto plan = db->ExplainSelect("SELECT V FROM P WHERE K = 'p3'",
                                  /*async=*/false);
    ASSERT_TRUE(plan.ok());
    EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
    auto r = db->Execute("SELECT V FROM P WHERE K = 'p3' ORDER BY V");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->result.rows.size(), 10u);
    // And stays maintainable.
    ASSERT_TRUE(db->Execute("INSERT INTO P VALUES ('p3', 555)").ok());
    EXPECT_EQ(db->Execute("SELECT V FROM P WHERE K = 'p3'")
                  ->result.rows.size(),
              11u);
  }
  std::remove(path.c_str());
}

TEST_F(IndexTest, WsqQueryWithIndexedStoredFilter) {
  // Index interacts correctly with the async rewrite: the IndexScan
  // narrows the driving table, reducing external calls.
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix_k ON T (K)").ok());
  auto plan = db_.ExplainSelect(
      "SELECT K, V FROM T WHERE K = 'k5' ORDER BY V", /*async=*/true);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
}

}  // namespace
}  // namespace wsq
