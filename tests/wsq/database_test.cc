#include "wsq/database.h"

#include <gtest/gtest.h>

#include "wsq/demo.h"

namespace wsq {
namespace {

// Fast environment: small corpus, zero latency.
DemoOptions FastOptions() {
  DemoOptions opt;
  opt.corpus.num_documents = 1200;
  opt.corpus.vocab_size = 800;
  opt.latency = LatencyModel::Instant();
  return opt;
}

class DatabaseTest : public ::testing::Test {
 protected:
  static DemoEnv& Env() {
    static DemoEnv* const kEnv = new DemoEnv(FastOptions());
    return *kEnv;
  }

  ResultSet Must(const std::string& sql, bool async = true) {
    auto r = Env().Run(sql, async);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << sql;
    return r.ok() ? std::move(r->result) : ResultSet{};
  }
};

TEST_F(DatabaseTest, CreateInsertSelect) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INT, B STRING)").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO T VALUES (1, 'x'), (2, 'y'), (-3, 'z')")
          .ok());
  auto r = db.Execute("SELECT A, B FROM T WHERE A > 0 ORDER BY A DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->result.rows.size(), 2u);
  EXPECT_EQ(r->result.rows[0].value(0).AsInt(), 2);
  EXPECT_EQ(r->result.rows[1].value(1).AsString(), "x");
}

TEST_F(DatabaseTest, InsertTypeErrors) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INT)").ok());
  EXPECT_FALSE(db.Execute("INSERT INTO T VALUES ('nope')").ok());
  EXPECT_FALSE(db.Execute("INSERT INTO T VALUES (1, 2)").ok());
  EXPECT_FALSE(db.Execute("INSERT INTO Missing VALUES (1)").ok());
}

TEST_F(DatabaseTest, DoubleColumnAcceptsIntLiterals) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A DOUBLE)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1), (2.5)").ok());
  auto r = db.Execute("SELECT A FROM T ORDER BY A");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->result.rows[0].value(0).AsDouble(), 1.0);
}

TEST_F(DatabaseTest, DuplicateCreateFails) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INT)").ok());
  EXPECT_FALSE(db.Execute("CREATE TABLE t (A INT)").ok());
}

TEST_F(DatabaseTest, StoredOnlyQueries) {
  ResultSet r = Must("SELECT Name, Capital FROM States ORDER BY Name "
                     "LIMIT 3");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].value(0).AsString(), "Alabama");
  EXPECT_EQ(r.rows[0].value(1).AsString(), "Montgomery");
}

TEST_F(DatabaseTest, StoredAggregates) {
  ResultSet r = Must(
      "SELECT COUNT(*), SUM(Population), MIN(Name), MAX(Name) "
      "FROM States");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 50);
  EXPECT_GT(r.rows[0].value(1).AsInt(), 250000000);
  EXPECT_EQ(r.rows[0].value(2).AsString(), "Alabama");
  EXPECT_EQ(r.rows[0].value(3).AsString(), "Wyoming");
}

TEST_F(DatabaseTest, GroupByWithHaving) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (K STRING, V INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES ('a', 1), ('a', 2), "
                         "('b', 5), ('c', 1)")
                  .ok());
  auto r = db.Execute(
      "SELECT K, SUM(V), AVG(V) FROM T GROUP BY K "
      "HAVING SUM(V) > 1 ORDER BY K");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->result.rows.size(), 2u);
  EXPECT_EQ(r->result.rows[0].value(0).AsString(), "a");
  EXPECT_EQ(r->result.rows[0].value(1).AsInt(), 3);
  EXPECT_DOUBLE_EQ(r->result.rows[0].value(2).AsDouble(), 1.5);
  EXPECT_EQ(r->result.rows[1].value(0).AsString(), "b");
}

TEST_F(DatabaseTest, DeleteWithPredicate) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INT, B STRING)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1, 'x'), (2, 'y'), "
                         "(3, 'x'), (4, 'z')")
                  .ok());
  auto del = db.Execute("DELETE FROM T WHERE B = 'x'");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(del->result.rows[0].value(0).AsInt(), 2);

  auto rest = db.Execute("SELECT A FROM T ORDER BY A");
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->result.rows.size(), 2u);
  EXPECT_EQ(rest->result.rows[0].value(0).AsInt(), 2);
  EXPECT_EQ(rest->result.rows[1].value(0).AsInt(), 4);
}

TEST_F(DatabaseTest, DeleteWithoutPredicateEmptiesTable) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1), (2), (3)").ok());
  auto del = db.Execute("DELETE FROM T");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->result.rows[0].value(0).AsInt(), 3);
  EXPECT_TRUE(db.Execute("SELECT A FROM T")->result.rows.empty());
  // Deleting again removes nothing.
  EXPECT_EQ(db.Execute("DELETE FROM T")->result.rows[0].value(0).AsInt(),
            0);
}

TEST_F(DatabaseTest, DeleteErrors) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INT)").ok());
  EXPECT_FALSE(db.Execute("DELETE FROM Missing").ok());
  EXPECT_FALSE(db.Execute("DELETE FROM T WHERE Nope = 1").ok());
  EXPECT_FALSE(db.Execute("DELETE T").ok());  // missing FROM
}

TEST_F(DatabaseTest, InsertAfterDeleteReusesTable) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1), (2)").ok());
  ASSERT_TRUE(db.Execute("DELETE FROM T WHERE A = 1").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (5)").ok());
  auto r = db.Execute("SELECT A FROM T ORDER BY A");
  ASSERT_EQ(r->result.rows.size(), 2u);
  EXPECT_EQ(r->result.rows[0].value(0).AsInt(), 2);
  EXPECT_EQ(r->result.rows[1].value(0).AsInt(), 5);
}

TEST_F(DatabaseTest, UpdateWithPredicate) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INT, B STRING)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1, 'x'), (2, 'y'), "
                         "(3, 'x')")
                  .ok());
  auto upd = db.Execute("UPDATE T SET A = A * 10 WHERE B = 'x'");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_EQ(upd->result.rows[0].value(0).AsInt(), 2);

  auto r = db.Execute("SELECT A, B FROM T ORDER BY A");
  ASSERT_EQ(r->result.rows.size(), 3u);
  EXPECT_EQ(r->result.rows[0].value(0).AsInt(), 2);   // untouched 'y'
  EXPECT_EQ(r->result.rows[1].value(0).AsInt(), 10);
  EXPECT_EQ(r->result.rows[2].value(0).AsInt(), 30);
}

TEST_F(DatabaseTest, UpdateMultipleColumnsUsesOldRowValues) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INT, B INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1, 100)").ok());
  // Both assignments see the OLD row: B = A + 1 uses A = 1.
  ASSERT_TRUE(db.Execute("UPDATE T SET A = B, B = A + 1").ok());
  auto r = db.Execute("SELECT A, B FROM T");
  EXPECT_EQ(r->result.rows[0].value(0).AsInt(), 100);
  EXPECT_EQ(r->result.rows[0].value(1).AsInt(), 2);
}

TEST_F(DatabaseTest, UpdateWithoutPredicateTouchesAllRows) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1), (2), (3)").ok());
  auto upd = db.Execute("UPDATE T SET A = 0");
  EXPECT_EQ(upd->result.rows[0].value(0).AsInt(), 3);
  auto r = db.Execute("SELECT SUM(A) FROM T");
  EXPECT_EQ(r->result.rows[0].value(0).AsInt(), 0);
}

TEST_F(DatabaseTest, UpdateErrors) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1)").ok());
  EXPECT_FALSE(db.Execute("UPDATE Missing SET A = 1").ok());
  EXPECT_FALSE(db.Execute("UPDATE T SET Nope = 1").ok());
  EXPECT_FALSE(db.Execute("UPDATE T SET A = 1, A = 2").ok());
  EXPECT_FALSE(db.Execute("UPDATE T SET A = 'string'").ok());
  EXPECT_FALSE(db.Execute("UPDATE T A = 1").ok());  // missing SET
}

TEST_F(DatabaseTest, UpdateIntToDoubleWidens) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A DOUBLE)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1.5)").ok());
  ASSERT_TRUE(db.Execute("UPDATE T SET A = 3").ok());
  auto r = db.Execute("SELECT A FROM T");
  EXPECT_TRUE(r->result.rows[0].value(0).is_double());
  EXPECT_DOUBLE_EQ(r->result.rows[0].value(0).AsDouble(), 3.0);
}

TEST_F(DatabaseTest, WebCountQueryExecutes) {
  ResultSet r = Must(
      "SELECT Name, Count FROM States, WebCount WHERE Name = T1 "
      "ORDER BY Count DESC LIMIT 5");
  ASSERT_EQ(r.rows.size(), 5u);
  // Counts descending and positive for the top states.
  int64_t prev = r.rows[0].value(1).AsInt();
  EXPECT_GT(prev, 0);
  for (const Row& row : r.rows) {
    EXPECT_LE(row.value(1).AsInt(), prev);
    prev = row.value(1).AsInt();
  }
}

TEST_F(DatabaseTest, LikeQueries) {
  ResultSet r = Must(
      "SELECT Name FROM States WHERE Name LIKE 'New%' ORDER BY Name");
  ASSERT_EQ(r.rows.size(), 4u);  // Hampshire, Jersey, Mexico, York
  EXPECT_EQ(r.rows[0].value(0).AsString(), "New Hampshire");
  ResultSet us = Must(
      "SELECT Name FROM States WHERE Name LIKE '%a%a%' ORDER BY Name");
  for (const Row& row : us.rows) {
    const std::string& n = row.value(0).AsString();
    EXPECT_GE(std::count(n.begin(), n.end(), 'a'), 2) << n;
  }
}

TEST_F(DatabaseTest, ScalarFunctionQueries) {
  ResultSet r = Must(
      "SELECT UPPER(Name), LENGTH(Name) FROM States "
      "WHERE Name = 'Utah'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsString(), "UTAH");
  EXPECT_EQ(r.rows[0].value(1).AsInt(), 4);

  // Scalar functions compose with aggregates and predicates.
  ResultSet agg = Must(
      "SELECT MAX(LENGTH(Name)) FROM States "
      "WHERE LENGTH(Name) > 10");
  ASSERT_EQ(agg.rows.size(), 1u);
  EXPECT_EQ(agg.rows[0].value(0).AsInt(), 14);  // "North Carolina" etc.

  // UPPER over an aggregate output.
  ResultSet up = Must("SELECT UPPER(MIN(Name)) FROM States");
  EXPECT_EQ(up.rows[0].value(0).AsString(), "ALABAMA");
}

TEST_F(DatabaseTest, DropTable) {
  WsqDatabase db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1)").ok());
  ASSERT_TRUE(db.Execute("DROP TABLE T").ok());
  EXPECT_FALSE(db.Execute("SELECT A FROM T").ok());
  EXPECT_FALSE(db.Execute("DROP TABLE T").ok());
  // The name becomes available again.
  EXPECT_TRUE(db.Execute("CREATE TABLE T (B STRING)").ok());
}

TEST_F(DatabaseTest, AggregateOverWebResults) {
  // Aggregation above a ReqSync at runtime: total URLs across states —
  // the clash rules keep the ReqSync below the Aggregate, and the
  // counts must match the row set of the non-aggregated query.
  ResultSet rows = Must(
      "SELECT Name, URL FROM States, WebPages "
      "WHERE Name = T1 AND Rank <= 3");
  ResultSet agg = Must(
      "SELECT COUNT(*) FROM States, WebPages "
      "WHERE Name = T1 AND Rank <= 3");
  ASSERT_EQ(agg.rows.size(), 1u);
  EXPECT_EQ(agg.rows[0].value(0).AsInt(),
            static_cast<int64_t>(rows.rows.size()));
  EXPECT_GT(agg.rows[0].value(0).AsInt(), 0);
}

TEST_F(DatabaseTest, GroupByOverWebResults) {
  ResultSet r = Must(
      "SELECT Name, COUNT(*) FROM States, WebPages "
      "WHERE Name = T1 AND Rank <= 2 GROUP BY Name ORDER BY Name");
  for (const Row& row : r.rows) {
    EXPECT_GE(row.value(1).AsInt(), 1);
    EXPECT_LE(row.value(1).AsInt(), 2);
  }
  EXPECT_GT(r.rows.size(), 10u);
}

TEST_F(DatabaseTest, NullBindingTermFailsCleanly) {
  WsqDatabase& db = Env().db();
  ASSERT_TRUE(db.Execute("CREATE TABLE WithNull (Name STRING)").ok());
  TableInfo* t = *db.catalog()->GetTable("WithNull");
  ASSERT_TRUE(t->Insert(Row({Value::Null()})).ok());
  auto r = db.Execute(
      "SELECT Count FROM WithNull, WebCount WHERE Name = T1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

TEST_F(DatabaseTest, SyncAndAsyncAgree) {
  const std::string sql =
      "SELECT Name, Count FROM States, WebCount WHERE Name = T1 "
      "ORDER BY Count DESC, Name";
  ResultSet sync = Must(sql, /*async=*/false);
  ResultSet async = Must(sql, /*async=*/true);
  ASSERT_EQ(sync.rows.size(), async.rows.size());
  for (size_t i = 0; i < sync.rows.size(); ++i) {
    EXPECT_EQ(sync.rows[i], async.rows[i]) << "row " << i;
  }
}

TEST_F(DatabaseTest, StatsCountExternalCalls) {
  auto r = Env().Run(
      "SELECT Name, Count FROM States, WebCount WHERE Name = T1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.external_calls, 50u);  // one per state
  EXPECT_TRUE(r->stats.async_iteration);
}

TEST_F(DatabaseTest, ExplainReturnsPlanText) {
  auto r = Env().db().Execute(
      "EXPLAIN ASYNC SELECT Name, Count FROM States, WebCount "
      "WHERE Name = T1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->result.rows.size(), 1u);
  std::string plan = r->result.rows[0].value(0).AsString();
  EXPECT_NE(plan.find("ReqSync"), std::string::npos) << plan;
  EXPECT_NE(plan.find("AEVScan"), std::string::npos) << plan;

  auto sync_plan = Env().db().ExplainSelect(
      "SELECT Name, Count FROM States, WebCount WHERE Name = T1",
      /*async=*/false);
  ASSERT_TRUE(sync_plan.ok());
  // No ReqSync operator line and no AEVScan in the sequential plan
  // (the cost annotation may still mention the ReqSync buffer).
  EXPECT_EQ(sync_plan->find("ReqSync\n"), std::string::npos);
  EXPECT_EQ(sync_plan->find("AEVScan"), std::string::npos);
  // Both plans carry the cost annotation.
  EXPECT_NE(sync_plan->find("est. rows"), std::string::npos)
      << *sync_plan;
  EXPECT_NE(plan.find("max concurrent=50"), std::string::npos) << plan;
}

TEST_F(DatabaseTest, CreateTableShadowingVirtualTableFails) {
  EXPECT_FALSE(
      Env().db().Execute("CREATE TABLE WebCount (A INT)").ok());
}

TEST_F(DatabaseTest, ParseErrorsSurface) {
  auto r = Env().db().Execute("SELEC oops");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(DatabaseTest, BindErrorsSurface) {
  auto r = Env().db().Execute("SELECT Nope FROM States");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(DatabaseTest, DivisionByZeroSurfaces) {
  auto r = Env().db().Execute("SELECT Population / 0 FROM States");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

TEST_F(DatabaseTest, ResultSetToStringRendersTable) {
  ResultSet r = Must("SELECT Name FROM States ORDER BY Name LIMIT 2");
  std::string text = r.ToString();
  EXPECT_NE(text.find("States.Name"), std::string::npos);
  EXPECT_NE(text.find("Alabama"), std::string::npos);
  EXPECT_NE(text.find("Alaska"), std::string::npos);
}

TEST_F(DatabaseTest, VirtualTableOnlyQuery) {
  ResultSet r = Must(
      "SELECT Count FROM WebCount WHERE T1 = 'California'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_GT(r.rows[0].value(0).AsInt(), 0);
}

TEST_F(DatabaseTest, EngineSuffixedTablesWork) {
  ResultSet av = Must(
      "SELECT Count FROM WebCount_AV WHERE T1 = 'California'");
  ResultSet g = Must(
      "SELECT Count FROM WebCount_Google WHERE T1 = 'California'");
  ASSERT_EQ(av.rows.size(), 1u);
  ASSERT_EQ(g.rows.size(), 1u);
  // Same corpus, single-term query: identical counts.
  EXPECT_EQ(av.rows[0].value(0).AsInt(), g.rows[0].value(0).AsInt());
}

}  // namespace
}  // namespace wsq
