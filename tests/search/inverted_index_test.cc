#include "search/inverted_index.h"

#include <gtest/gtest.h>

// Tests use Corpus::Generate with crafted entities/co-occurrences and
// cross-check the index against brute-force scans of the documents.
namespace wsq {
namespace {

Corpus EntityCorpus() {
  CorpusConfig cfg;
  cfg.num_documents = 400;
  cfg.min_doc_length = 30;
  cfg.max_doc_length = 80;
  cfg.vocab_size = 200;
  cfg.seed = 11;
  cfg.cooc_rate = 0.3;
  return Corpus::Generate(
      cfg,
      {{"colorado", 5.0}, {"utah", 2.0}, {"new mexico", 3.0}},
      {{"colorado", "four corners", 1.0}, {"utah", "four corners", 1.0}});
}

TEST(InvertedIndexTest, TermPostingsPresent) {
  Corpus c = EntityCorpus();
  InvertedIndex idx(&c);
  const auto* posts = idx.TermPostings("colorado");
  ASSERT_NE(posts, nullptr);
  EXPECT_GT(posts->size(), 10u);
  EXPECT_EQ(idx.DocumentFrequency("colorado"), posts->size());
}

TEST(InvertedIndexTest, MissingTermIsNull) {
  Corpus c = EntityCorpus();
  InvertedIndex idx(&c);
  EXPECT_EQ(idx.TermPostings("zzzznotaword"), nullptr);
  EXPECT_EQ(idx.DocumentFrequency("zzzznotaword"), 0u);
}

TEST(InvertedIndexTest, PostingsSortedByDocWithSortedPositions) {
  Corpus c = EntityCorpus();
  InvertedIndex idx(&c);
  const auto* posts = idx.TermPostings("colorado");
  ASSERT_NE(posts, nullptr);
  DocId prev_doc = 0;
  bool first = true;
  for (const Posting& p : *posts) {
    if (!first) EXPECT_GT(p.doc, prev_doc);
    prev_doc = p.doc;
    first = false;
    for (size_t i = 1; i < p.positions.size(); ++i) {
      EXPECT_LT(p.positions[i - 1], p.positions[i]);
    }
    // Positions actually hold the term.
    for (uint32_t pos : p.positions) {
      EXPECT_EQ(c.document(p.doc).terms[pos], "colorado");
    }
  }
}

TEST(InvertedIndexTest, PhrasePostingsMatchAdjacentPairs) {
  Corpus c = EntityCorpus();
  InvertedIndex idx(&c);
  SearchPhrase phrase{{"new", "mexico"}};
  auto posts = idx.PhrasePostings(phrase);
  ASSERT_FALSE(posts.empty());
  for (const Posting& p : posts) {
    const Document& d = c.document(p.doc);
    for (uint32_t pos : p.positions) {
      ASSERT_LT(pos + 1, d.terms.size());
      EXPECT_EQ(d.terms[pos], "new");
      EXPECT_EQ(d.terms[pos + 1], "mexico");
    }
  }
}

TEST(InvertedIndexTest, PhrasePostingsExhaustive) {
  // Brute-force cross-check of phrase matching.
  Corpus c = EntityCorpus();
  InvertedIndex idx(&c);
  SearchPhrase phrase{{"four", "corners"}};
  auto posts = idx.PhrasePostings(phrase);
  size_t index_hits = 0;
  for (const Posting& p : posts) index_hits += p.positions.size();

  size_t brute_hits = 0;
  for (const Document& d : c.documents()) {
    for (size_t i = 0; i + 1 < d.terms.size(); ++i) {
      if (d.terms[i] == "four" && d.terms[i + 1] == "corners") {
        ++brute_hits;
      }
    }
  }
  EXPECT_EQ(index_hits, brute_hits);
  EXPECT_GT(index_hits, 0u);
}

TEST(InvertedIndexTest, PhraseWithMissingTermIsEmpty) {
  Corpus c = EntityCorpus();
  InvertedIndex idx(&c);
  EXPECT_TRUE(idx.PhrasePostings({{"colorado", "zzzznotaword"}}).empty());
  EXPECT_TRUE(idx.PhrasePostings({{}}).empty());
}

TEST(InvertedIndexTest, SingleTermPhraseEqualsTermPostings) {
  Corpus c = EntityCorpus();
  InvertedIndex idx(&c);
  auto phrase_posts = idx.PhrasePostings({{"utah"}});
  const auto* term_posts = idx.TermPostings("utah");
  ASSERT_NE(term_posts, nullptr);
  ASSERT_EQ(phrase_posts.size(), term_posts->size());
  for (size_t i = 0; i < phrase_posts.size(); ++i) {
    EXPECT_EQ(phrase_posts[i].doc, (*term_posts)[i].doc);
    EXPECT_EQ(phrase_posts[i].positions, (*term_posts)[i].positions);
  }
}

TEST(InvertedIndexTest, NumDocumentsMatchesCorpus) {
  Corpus c = EntityCorpus();
  InvertedIndex idx(&c);
  EXPECT_EQ(idx.num_documents(), c.size());
  EXPECT_GT(idx.num_terms(), 100u);
}

}  // namespace
}  // namespace wsq
