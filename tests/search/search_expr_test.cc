#include "search/search_expr.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

TEST(ExpandTemplateTest, PaperExample) {
  auto r = ExpandSearchTemplate("%1 near %2", {"Colorado", "Denver"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "Colorado near Denver");
}

TEST(ExpandTemplateTest, MultiWordTerm) {
  auto r = ExpandSearchTemplate("%1 near %2",
                                {"Colorado", "four corners"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "Colorado near four corners");
}

TEST(ExpandTemplateTest, RepeatedAndOutOfOrderRefs) {
  auto r = ExpandSearchTemplate("%2 %1 %2", {"a", "b"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "b a b");
}

TEST(ExpandTemplateTest, UnboundReferenceFails) {
  auto r = ExpandSearchTemplate("%1 near %3", {"a", "b"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExpandTemplateTest, LiteralPercentPreserved) {
  auto r = ExpandSearchTemplate("100% %a %1", {"x"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "100% %a x");
}

TEST(DefaultTemplateTest, NearVariant) {
  EXPECT_EQ(DefaultSearchTemplate(1, true), "%1");
  EXPECT_EQ(DefaultSearchTemplate(3, true), "%1 near %2 near %3");
}

TEST(DefaultTemplateTest, PlainVariantForGoogleStyleEngines) {
  EXPECT_EQ(DefaultSearchTemplate(3, false), "%1 %2 %3");
}

TEST(ParseQueryTest, SingleTerm) {
  auto q = *ParseSearchQuery("Colorado");
  EXPECT_FALSE(q.use_near);
  ASSERT_EQ(q.phrases.size(), 1u);
  EXPECT_EQ(q.phrases[0].terms, std::vector<std::string>{"colorado"});
}

TEST(ParseQueryTest, ConjunctionWithoutNear) {
  auto q = *ParseSearchQuery("colorado denver");
  EXPECT_FALSE(q.use_near);
  ASSERT_EQ(q.phrases.size(), 2u);
}

TEST(ParseQueryTest, NearSplitsPhrases) {
  auto q = *ParseSearchQuery("Colorado near four corners");
  EXPECT_TRUE(q.use_near);
  ASSERT_EQ(q.phrases.size(), 2u);
  EXPECT_EQ(q.phrases[0].terms, std::vector<std::string>{"colorado"});
  EXPECT_EQ(q.phrases[1].terms,
            (std::vector<std::string>{"four", "corners"}));
}

TEST(ParseQueryTest, ChainedNear) {
  auto q = *ParseSearchQuery("a near b near c");
  EXPECT_TRUE(q.use_near);
  EXPECT_EQ(q.phrases.size(), 3u);
}

TEST(ParseQueryTest, CaseInsensitiveNearOperator) {
  auto q = *ParseSearchQuery("a NEAR b");
  EXPECT_TRUE(q.use_near);
  EXPECT_EQ(q.phrases.size(), 2u);
}

TEST(ParseQueryTest, EmptyQueryFails) {
  EXPECT_FALSE(ParseSearchQuery("").ok());
  EXPECT_FALSE(ParseSearchQuery("  !! ").ok());
}

TEST(ParseQueryTest, DanglingNearFails) {
  EXPECT_FALSE(ParseSearchQuery("near b").ok());
  EXPECT_FALSE(ParseSearchQuery("a near").ok());
  EXPECT_FALSE(ParseSearchQuery("a near near b").ok());
}

TEST(ParseQueryTest, QuotedPhraseInAndMode) {
  auto q = *ParseSearchQuery("\"four corners\" colorado");
  EXPECT_FALSE(q.use_near);
  ASSERT_EQ(q.phrases.size(), 2u);
  EXPECT_EQ(q.phrases[0].terms,
            (std::vector<std::string>{"four", "corners"}));
  EXPECT_EQ(q.phrases[1].terms, std::vector<std::string>{"colorado"});
}

TEST(ParseQueryTest, MultipleQuotedPhrases) {
  auto q = *ParseSearchQuery("\"new mexico\" and \"four corners\"");
  ASSERT_EQ(q.phrases.size(), 3u);  // phrase, "and", phrase
  EXPECT_EQ(q.phrases[0].terms.size(), 2u);
  EXPECT_EQ(q.phrases[2].terms.size(), 2u);
}

TEST(ParseQueryTest, QuotesIgnoredInNearMode) {
  auto q = *ParseSearchQuery("\"new mexico\" near \"four corners\"");
  EXPECT_TRUE(q.use_near);
  ASSERT_EQ(q.phrases.size(), 2u);
  EXPECT_EQ(q.phrases[0].terms.size(), 2u);
}

TEST(ParseQueryTest, BadQuotingRejected) {
  EXPECT_FALSE(ParseSearchQuery("\"unterminated").ok());
  EXPECT_FALSE(ParseSearchQuery("\"\"").ok());
}

TEST(ParseQueryTest, ToStringRendering) {
  auto q = *ParseSearchQuery("a near b c");
  EXPECT_EQ(q.ToString(), "\"a\" NEAR \"b c\"");
}

}  // namespace
}  // namespace wsq
