#include "search/search_engine.h"

#include <gtest/gtest.h>

#include <set>

namespace wsq {
namespace {

class SearchEngineTest : public ::testing::Test {
 protected:
  static const Corpus& TestCorpus() {
    static const Corpus* const kCorpus = [] {
      CorpusConfig cfg;
      cfg.num_documents = 1500;
      cfg.min_doc_length = 30;
      cfg.max_doc_length = 120;
      cfg.vocab_size = 400;
      cfg.seed = 23;
      cfg.cooc_rate = 0.15;
      return new Corpus(Corpus::Generate(
          cfg,
          {{"california", 10.0},
           {"colorado", 4.0},
           {"utah", 2.0},
           {"wyoming", 0.5},
           {"new mexico", 3.0}},
          {{"colorado", "four corners", 3.0},
           {"utah", "four corners", 2.0},
           {"california", "beaches", 4.0}}));
    }();
    return *kCorpus;
  }

  static SearchEngineConfig AvConfig() {
    SearchEngineConfig cfg;
    cfg.name = "AltaVista";
    cfg.supports_near = true;
    cfg.rank_seed = 101;
    return cfg;
  }
};

TEST_F(SearchEngineTest, CountReflectsEntityWeights) {
  SearchEngine engine(&TestCorpus(), AvConfig());
  int64_t california = *engine.Count("california");
  int64_t colorado = *engine.Count("colorado");
  int64_t wyoming = *engine.Count("wyoming");
  EXPECT_GT(california, colorado);
  EXPECT_GT(colorado, wyoming);
  EXPECT_GT(wyoming, 0);
}

TEST_F(SearchEngineTest, CountMatchesBruteForce) {
  SearchEngine engine(&TestCorpus(), AvConfig());
  int64_t counted = *engine.Count("utah");
  int64_t brute = 0;
  for (const Document& d : TestCorpus().documents()) {
    for (const std::string& t : d.terms) {
      if (t == "utah") {
        ++brute;
        break;
      }
    }
  }
  EXPECT_EQ(counted, brute);
}

TEST_F(SearchEngineTest, UnknownTermCountsZero) {
  SearchEngine engine(&TestCorpus(), AvConfig());
  EXPECT_EQ(*engine.Count("qqqqnotaword"), 0);
  EXPECT_TRUE(engine.Search("qqqqnotaword", 5)->empty());
}

TEST_F(SearchEngineTest, EmptyQueryFails) {
  SearchEngine engine(&TestCorpus(), AvConfig());
  EXPECT_FALSE(engine.Count("").ok());
}

TEST_F(SearchEngineTest, NearQueryNarrowsResults) {
  SearchEngine engine(&TestCorpus(), AvConfig());
  int64_t base = *engine.Count("colorado");
  int64_t near = *engine.Count("colorado near four corners");
  EXPECT_LT(near, base);
  EXPECT_GT(near, 0);
}

TEST_F(SearchEngineTest, FourCornersShapeMatchesPlantedWeights) {
  // Reproduces the shape of paper Query 3: entities planted near the
  // phrase score above entities that merely co-occur by chance.
  SearchEngine engine(&TestCorpus(), AvConfig());
  int64_t colorado = *engine.Count("colorado near four corners");
  int64_t utah = *engine.Count("utah near four corners");
  int64_t california = *engine.Count("california near four corners");
  EXPECT_GT(colorado, utah);
  EXPECT_GT(utah, california);
}

TEST_F(SearchEngineTest, NearFallsBackToAndWhenUnsupported) {
  SearchEngineConfig google = AvConfig();
  google.name = "Google";
  google.supports_near = false;
  SearchEngine g(&TestCorpus(), google);
  SearchEngine av(&TestCorpus(), AvConfig());
  // Without NEAR support the same query returns conjunction counts,
  // which can only be larger or equal.
  EXPECT_GE(*g.Count("colorado near four corners"),
            *av.Count("colorado near four corners"));
}

TEST_F(SearchEngineTest, SearchRanksAreDenseFromOne) {
  SearchEngine engine(&TestCorpus(), AvConfig());
  auto hits = *engine.Search("california", 10);
  ASSERT_EQ(hits.size(), 10u);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].rank, static_cast<int>(i + 1));
    EXPECT_FALSE(hits[i].url.empty());
    EXPECT_FALSE(hits[i].date.empty());
  }
  // Scores are non-increasing.
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
}

TEST_F(SearchEngineTest, SearchKLargerThanMatchesReturnsAll) {
  SearchEngine engine(&TestCorpus(), AvConfig());
  int64_t total = *engine.Count("wyoming");
  auto hits = *engine.Search("wyoming", 100000);
  EXPECT_EQ(static_cast<int64_t>(hits.size()), total);
}

TEST_F(SearchEngineTest, SearchIsDeterministic) {
  SearchEngine engine(&TestCorpus(), AvConfig());
  auto a = *engine.Search("colorado", 5);
  auto b = *engine.Search("colorado", 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].url, b[i].url);
    EXPECT_EQ(a[i].doc, b[i].doc);
  }
}

TEST_F(SearchEngineTest, TwoEnginesOverlapButDiffer) {
  // Paper Query 6: engines over the same Web agree on some top URLs.
  SearchEngine av(&TestCorpus(), AvConfig());
  SearchEngineConfig gcfg = AvConfig();
  gcfg.name = "Google";
  gcfg.rank_seed = 999;
  gcfg.supports_near = false;
  SearchEngine g(&TestCorpus(), gcfg);

  auto av_hits = *av.Search("california", 5);
  auto g_hits = *g.Search("california", 5);
  std::set<std::string> av_urls, g_urls;
  for (const auto& h : av_hits) av_urls.insert(h.url);
  for (const auto& h : g_hits) g_urls.insert(h.url);
  size_t common = 0;
  for (const auto& u : av_urls) common += g_urls.count(u);
  // Different static-rank salts ⇒ not identical; shared content signal
  // ⇒ some overlap.
  EXPECT_GT(common, 0u);
  EXPECT_LT(common, 5u);
}

TEST_F(SearchEngineTest, PhraseQueryViaTemplateExpansion) {
  SearchEngine engine(&TestCorpus(), AvConfig());
  auto expanded = *ExpandSearchTemplate(
      DefaultSearchTemplate(2, true), {"new mexico", "four corners"});
  EXPECT_EQ(expanded, "new mexico near four corners");
  EXPECT_TRUE(engine.Count(expanded).ok());
}

TEST_F(SearchEngineTest, QuotedPhraseNarrowsAndModeQueries) {
  // A Google-style engine (no NEAR): quoting binds the words into an
  // adjacency phrase instead of independent conjuncts.
  SearchEngineConfig gcfg = AvConfig();
  gcfg.supports_near = false;
  SearchEngine g(&TestCorpus(), gcfg);
  int64_t loose = *g.Count("four corners");
  int64_t phrase = *g.Count("\"four corners\"");
  EXPECT_LE(phrase, loose);
  EXPECT_GT(phrase, 0);
}

TEST_F(SearchEngineTest, TopHitActuallyContainsQueryTerm) {
  SearchEngine engine(&TestCorpus(), AvConfig());
  auto hits = *engine.Search("colorado", 3);
  ASSERT_FALSE(hits.empty());
  for (const auto& h : hits) {
    const Document& d = TestCorpus().document(h.doc);
    bool found = false;
    for (const std::string& t : d.terms) {
      if (t == "colorado") found = true;
    }
    EXPECT_TRUE(found) << "rank " << h.rank;
  }
}

}  // namespace
}  // namespace wsq
