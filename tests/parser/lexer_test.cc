#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

std::vector<Token> Lex(std::string_view sql) {
  Lexer lexer(sql);
  auto r = lexer.Tokenize();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto toks = Lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].type, TokenType::kEof);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto toks = Lex("select SeLeCt SELECT");
  ASSERT_EQ(toks.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(toks[i].type, TokenType::kSelect);
  }
}

TEST(LexerTest, IdentifiersKeepSpelling) {
  auto toks = Lex("WebCount_AV t1");
  EXPECT_EQ(toks[0].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[0].text, "WebCount_AV");
  EXPECT_EQ(toks[1].text, "t1");
}

TEST(LexerTest, IntegerLiteral) {
  auto toks = Lex("12345");
  EXPECT_EQ(toks[0].type, TokenType::kIntegerLiteral);
  EXPECT_EQ(toks[0].int_value, 12345);
}

TEST(LexerTest, FloatLiterals) {
  auto toks = Lex("3.25 1e3 2.5E-2");
  EXPECT_EQ(toks[0].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ(toks[0].float_value, 3.25);
  EXPECT_EQ(toks[1].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 0.025);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto toks = Lex("'four corners' 'it''s'");
  EXPECT_EQ(toks[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(toks[0].text, "four corners");
  EXPECT_EQ(toks[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  Lexer lexer("'oops");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto toks = Lex(", . ; ( ) * + - / % = <> != < <= > >=");
  std::vector<TokenType> expected = {
      TokenType::kComma, TokenType::kDot,   TokenType::kSemicolon,
      TokenType::kLParen, TokenType::kRParen, TokenType::kStar,
      TokenType::kPlus,  TokenType::kMinus, TokenType::kSlash,
      TokenType::kPercent, TokenType::kEq,  TokenType::kNe,
      TokenType::kNe,    TokenType::kLt,    TokenType::kLe,
      TokenType::kGt,    TokenType::kGe,    TokenType::kEof};
  ASSERT_EQ(toks.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(toks[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, CommentsSkippedToEndOfLine) {
  auto toks = Lex("select -- this is a comment\n42");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].type, TokenType::kSelect);
  EXPECT_EQ(toks[1].type, TokenType::kIntegerLiteral);
}

TEST(LexerTest, LineAndColumnTracking) {
  auto toks = Lex("select\n  from");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  Lexer lexer("select @");
  auto r = lexer.Tokenize();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, TypeKeywordAliases) {
  auto toks = Lex("int integer bigint double float real string text varchar");
  for (int i = 0; i < 3; ++i) EXPECT_EQ(toks[i].type, TokenType::kTypeInt);
  for (int i = 3; i < 6; ++i) {
    EXPECT_EQ(toks[i].type, TokenType::kTypeDouble);
  }
  for (int i = 6; i < 9; ++i) {
    EXPECT_EQ(toks[i].type, TokenType::kTypeString);
  }
}

TEST(LexerTest, MinusVersusCommentDisambiguation) {
  auto toks = Lex("1 - 2");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[1].type, TokenType::kMinus);
}

}  // namespace
}  // namespace wsq
