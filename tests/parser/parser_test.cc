#include "parser/parser.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

std::unique_ptr<SelectStatement> MustSelect(std::string_view sql) {
  auto r = Parser::ParseSelect(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  auto s = MustSelect("SELECT Name FROM States");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->select_list.size(), 1u);
  EXPECT_EQ(s->select_list[0].expr->ToString(), "Name");
  ASSERT_EQ(s->from.size(), 1u);
  EXPECT_EQ(s->from[0].table, "States");
  EXPECT_EQ(s->where, nullptr);
}

TEST(ParserTest, SelectStar) {
  auto s = MustSelect("SELECT * FROM Sigs");
  ASSERT_EQ(s->select_list.size(), 1u);
  EXPECT_EQ(s->select_list[0].expr->kind(), ParsedExpr::Kind::kStar);
}

TEST(ParserTest, PaperQuery1) {
  auto s = MustSelect(
      "Select Name, Count From States, WebCount "
      "Where Name = T1 Order By Count Desc");
  ASSERT_EQ(s->select_list.size(), 2u);
  ASSERT_EQ(s->from.size(), 2u);
  EXPECT_EQ(s->from[1].table, "WebCount");
  ASSERT_NE(s->where, nullptr);
  EXPECT_EQ(s->where->ToString(), "(Name = T1)");
  ASSERT_EQ(s->order_by.size(), 1u);
  EXPECT_TRUE(s->order_by[0].descending);
}

TEST(ParserTest, PaperQuery2WithArithmeticAlias) {
  auto s = MustSelect(
      "Select Name, Count/Population As C From States, WebCount "
      "Where Name = T1 Order By C Desc");
  EXPECT_EQ(s->select_list[1].alias, "C");
  EXPECT_EQ(s->select_list[1].expr->ToString(), "(Count / Population)");
}

TEST(ParserTest, PaperQuery4WithTableAliases) {
  auto s = MustSelect(
      "Select Capital, C.Count, Name, S.Count "
      "From States, WebCount C, WebCount S "
      "Where Capital = C.T1 and Name = S.T1 and C.Count > S.Count");
  ASSERT_EQ(s->from.size(), 3u);
  EXPECT_EQ(s->from[1].table, "WebCount");
  EXPECT_EQ(s->from[1].alias, "C");
  EXPECT_EQ(s->from[2].alias, "S");
  EXPECT_EQ(s->select_list[1].expr->ToString(), "C.Count");
}

TEST(ParserTest, WhereConjunctionNesting) {
  auto s = MustSelect("SELECT a FROM t WHERE x = 1 AND y = 2 AND z = 3");
  // Left-associative AND chain.
  EXPECT_EQ(s->where->ToString(), "(((x = 1) AND (y = 2)) AND (z = 3))");
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = Parser::ParseExpression("1 + 2 * 3 - 4 / 2").value();
  EXPECT_EQ(e->ToString(), "((1 + (2 * 3)) - (4 / 2))");
  auto cmp = Parser::ParseExpression("a + 1 < b * 2 AND NOT c = 3 OR d > 0").value();
  EXPECT_EQ(cmp->ToString(),
            "((((a + 1) < (b * 2)) AND NOT ((c = 3))) OR (d > 0))");
}

TEST(ParserTest, UnaryMinusAndParens) {
  auto e = Parser::ParseExpression("-(1 + 2) * 3").value();
  EXPECT_EQ(e->ToString(), "(-((1 + 2)) * 3)");
}

TEST(ParserTest, StringLiteralPredicate) {
  auto s = MustSelect(
      "Select Name, Count From States, WebCount "
      "Where Name = T1 and T2 = 'four corners' Order By Count Desc");
  EXPECT_EQ(s->where->ToString(),
            "((Name = T1) AND (T2 = 'four corners'))");
}

TEST(ParserTest, DistinctGroupByHavingLimit) {
  auto s = MustSelect(
      "SELECT DISTINCT a, COUNT(*) FROM t GROUP BY a "
      "HAVING COUNT(*) > 2 ORDER BY a LIMIT 10");
  EXPECT_TRUE(s->distinct);
  ASSERT_EQ(s->group_by.size(), 1u);
  ASSERT_NE(s->having, nullptr);
  ASSERT_TRUE(s->limit.has_value());
  EXPECT_EQ(*s->limit, 10);
  EXPECT_EQ(s->select_list[1].expr->ToString(), "COUNT(*)");
}

TEST(ParserTest, FunctionCallArguments) {
  auto e = Parser::ParseExpression("SUM(a + b)").value();
  const auto& f = static_cast<const FuncExpr&>(*e);
  EXPECT_EQ(f.name(), "SUM");
  ASSERT_EQ(f.args().size(), 1u);
}

TEST(ParserTest, CreateTable) {
  auto r = Parser::Parse(
      "CREATE TABLE States (Name STRING, Population INT, Capital TEXT)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* stmt = static_cast<CreateTableStatement*>(r->get());
  ASSERT_EQ(stmt->kind(), Statement::Kind::kCreateTable);
  EXPECT_EQ(stmt->table, "States");
  ASSERT_EQ(stmt->columns.size(), 3u);
  EXPECT_EQ(stmt->columns[1].type, TypeId::kInt64);
  EXPECT_EQ(stmt->columns[2].type, TypeId::kString);
}

TEST(ParserTest, InsertMultipleRows) {
  auto r = Parser::Parse(
      "INSERT INTO t VALUES ('a', 1), ('b', -2)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* stmt = static_cast<InsertStatement*>(r->get());
  ASSERT_EQ(stmt->rows.size(), 2u);
  ASSERT_EQ(stmt->rows[0].size(), 2u);
  EXPECT_EQ(stmt->rows[1][1]->ToString(), "-(2)");
}

TEST(ParserTest, ExplainVariants) {
  auto r = Parser::Parse("EXPLAIN SELECT a FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(static_cast<ExplainStatement*>(r->get())->async);

  auto r2 = Parser::Parse("EXPLAIN ASYNC SELECT a FROM t");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(static_cast<ExplainStatement*>(r2->get())->async);
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(Parser::Parse("SELECT a FROM t;").ok());
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(Parser::Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parser::Parse("SELECT a").ok());
  EXPECT_FALSE(Parser::Parse("SELECT a FROM").ok());
  EXPECT_FALSE(Parser::Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parser::Parse("SELECT a FROM t ORDER a").ok());
  EXPECT_FALSE(Parser::Parse("SELECT a FROM t LIMIT 'x'").ok());
  EXPECT_FALSE(Parser::Parse("SELECT a FROM t extra garbage ,").ok());
  EXPECT_FALSE(Parser::Parse("CREATE TABLE t ()").ok());
  EXPECT_FALSE(Parser::Parse("").ok());
}

TEST(ParserTest, ErrorsCarryLocation) {
  auto r = Parser::Parse("SELECT a FROM\nWHERE");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserTest, BareAliasWithoutAs) {
  auto s = MustSelect("SELECT Count C FROM WebCount W");
  EXPECT_EQ(s->select_list[0].alias, "C");
  EXPECT_EQ(s->from[0].alias, "W");
}

TEST(ParserTest, QualifiedStarRejected) {
  EXPECT_FALSE(Parser::Parse("SELECT t.* FROM t").ok());
}

TEST(ParserTest, LikeOperatorParses) {
  auto s = MustSelect("SELECT Name FROM States WHERE Name LIKE 'New%'");
  EXPECT_EQ(s->where->ToString(), "(Name LIKE 'New%')");
}

TEST(ParserTest, CreateIndexStatement) {
  auto r = Parser::Parse("CREATE INDEX ix_name ON States (Name)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* stmt = static_cast<CreateIndexStatement*>(r->get());
  ASSERT_EQ(stmt->kind(), Statement::Kind::kCreateIndex);
  EXPECT_EQ(stmt->index, "ix_name");
  EXPECT_EQ(stmt->table, "States");
  EXPECT_EQ(stmt->column, "Name");
  EXPECT_FALSE(Parser::Parse("CREATE INDEX ON States (Name)").ok());
  EXPECT_FALSE(Parser::Parse("CREATE INDEX ix States (Name)").ok());
  EXPECT_FALSE(Parser::Parse("CREATE INDEX ix ON States Name").ok());
}

TEST(ParserTest, UpdateStatement) {
  auto r = Parser::Parse(
      "UPDATE T SET A = A + 1, B = 'x' WHERE A < 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* stmt = static_cast<UpdateStatement*>(r->get());
  ASSERT_EQ(stmt->kind(), Statement::Kind::kUpdate);
  EXPECT_EQ(stmt->table, "T");
  ASSERT_EQ(stmt->assignments.size(), 2u);
  EXPECT_EQ(stmt->assignments[0].column, "A");
  EXPECT_EQ(stmt->assignments[0].value->ToString(), "(A + 1)");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_FALSE(Parser::Parse("UPDATE T A = 1").ok());
  EXPECT_FALSE(Parser::Parse("UPDATE T SET").ok());
}

TEST(ParserTest, DeleteStatement) {
  auto r = Parser::Parse("DELETE FROM T WHERE A = 1");
  ASSERT_TRUE(r.ok());
  auto* stmt = static_cast<DeleteStatement*>(r->get());
  ASSERT_EQ(stmt->kind(), Statement::Kind::kDelete);
  EXPECT_EQ(stmt->table, "T");
  ASSERT_NE(stmt->where, nullptr);
  auto all = Parser::Parse("DELETE FROM T");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(static_cast<DeleteStatement*>(all->get())->where, nullptr);
}

TEST(ParserTest, DropTableStatement) {
  auto r = Parser::Parse("DROP TABLE T");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<DropTableStatement*>(r->get())->table, "T");
  EXPECT_FALSE(Parser::Parse("DROP T").ok());
}

TEST(ParserTest, CloneProducesEqualText) {
  auto e = Parser::ParseExpression("a.b + 3 * -c").value();
  auto c = e->Clone();
  EXPECT_EQ(e->ToString(), c->ToString());
}

}  // namespace
}  // namespace wsq
