#!/usr/bin/env python3
"""Fixture self-tests for tools/wsqcheck.py.

Each fixture under fixtures/wsqcheck/ starts with a marker comment:

    // wsqcheck-fixture: dest=src/async/foo.cc expect=lock-order:1

The driver builds a throwaway repo root per fixture: the fixture at
`dest`, the real common/thread_annotations.h beside it (fixtures use
the repo's own Mutex/MutexLock/CondVar vocabulary), and a synthetic
compile_commands.json so the libclang frontend has a build to read.
It then runs wsqcheck and asserts the expected findings fire exactly
that many times. `expect=clean` asserts silence.

The frontend defaults to `internal` (self-contained, runs anywhere).
Set WSQCHECK_FRONTEND=clang to exercise the libclang frontend — the
driver exits 3 (ctest SKIP_RETURN_CODE) if wsqcheck reports libclang
unavailable, so a skip never reads as a pass.

Exit status: 0 all fixtures behave, 1 mismatch, 2 setup error,
3 skipped (requested frontend unavailable).
"""

import json
import os
import pathlib
import re
import shutil
import subprocess
import sys
import tempfile

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
TOOL = REPO / "tools" / "wsqcheck.py"
ANNOTATIONS = REPO / "src" / "common" / "thread_annotations.h"
FIXTURES = HERE / "fixtures" / "wsqcheck"
MARKER = re.compile(r"wsqcheck-fixture:\s*dest=(\S+)\s+expect=(\S+)")
FINDING = re.compile(r"^(\S+?):(\d+): \[([a-z-]+)\]")


def parse_expect(spec):
    if spec == "clean":
        return {}
    out = {}
    for part in spec.split(","):
        check, _, count = part.partition(":")
        out[check] = int(count) if count else 1
    return out


def make_root(tmp, fixture, dest):
    root = pathlib.Path(tmp)
    target = root / dest
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(fixture, target)
    common = root / "src" / "common"
    common.mkdir(parents=True, exist_ok=True)
    shutil.copy(ANNOTATIONS, common / "thread_annotations.h")
    build = root / "build"
    build.mkdir()
    entries = [{
        "directory": str(root),
        "command": f"clang++ -std=c++20 -I{root}/src -c {p}",
        "file": str(p),
    } for p in sorted(root.rglob("*.cc"))]
    (build / "compile_commands.json").write_text(
        json.dumps(entries, indent=1), encoding="utf-8")
    return root


def run_fixture(fixture, frontend):
    first = fixture.read_text(encoding="utf-8").splitlines()[0]
    m = MARKER.search(first)
    if m is None:
        return [f"{fixture.name}: missing wsqcheck-fixture marker"], False
    dest, expect = m.group(1), parse_expect(m.group(2))
    with tempfile.TemporaryDirectory(prefix="wsqcheck-fx-") as tmp:
        root = make_root(tmp, fixture, dest)
        proc = subprocess.run(
            [sys.executable, str(TOOL), "--root", str(root),
             "--compile-commands",
             str(root / "build" / "compile_commands.json"),
             "--frontend", frontend],
            capture_output=True, text=True)
        if proc.returncode == 3:
            return [], True   # frontend unavailable: skip, loudly
        if proc.returncode not in (0, 1):
            return [f"{fixture.name}: wsqcheck exited "
                    f"{proc.returncode}: {proc.stderr.strip()}"], False
        got = {}
        for line in proc.stdout.splitlines():
            fm = FINDING.match(line)
            if fm:
                got[fm.group(3)] = got.get(fm.group(3), 0) + 1
        if got != expect:
            return [f"{fixture.name}: expected {expect or 'clean'}, "
                    f"got {got or 'clean'}\n"
                    + "\n".join("  " + l
                                for l in proc.stdout.splitlines())], \
                False
    return [], False


def main():
    frontend = os.environ.get("WSQCHECK_FRONTEND", "internal")
    if frontend not in ("internal", "clang", "auto"):
        print(f"wsqcheck_selftest: bad WSQCHECK_FRONTEND={frontend}",
              file=sys.stderr)
        return 2
    if not TOOL.is_file() or not ANNOTATIONS.is_file():
        print("wsqcheck_selftest: tool or annotations header missing",
              file=sys.stderr)
        return 2
    fixtures = sorted(FIXTURES.glob("*.cc"))
    if not fixtures:
        print(f"wsqcheck_selftest: no fixtures in {FIXTURES}",
              file=sys.stderr)
        return 2
    failures = []
    for fixture in fixtures:
        errs, skipped = run_fixture(fixture, frontend)
        if skipped:
            print(f"wsqcheck_selftest: SKIPPED — frontend "
                  f"'{frontend}' unavailable (libclang missing); "
                  "this is not a pass", file=sys.stderr)
            return 3
        failures.extend(errs)
    for f in failures:
        print(f"FAIL {f}")
    print(f"wsqcheck_selftest: {len(fixtures) - len(failures)}/"
          f"{len(fixtures)} fixtures OK [{frontend} frontend]",
          file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
