#!/usr/bin/env python3
"""Fixture self-tests for tools/wsqlint.py.

Each fixture under fixtures/wsqlint/ starts with a marker comment:

    // wsqlint-fixture: dest=src/net/foo.cc expect=cancel-blind-wait:1

The driver copies the fixture to `dest` inside a throwaway repo root,
runs wsqlint over it, and asserts the expected findings fire exactly
that many times (and nothing else fires). `expect=clean` asserts
silence. Known-bad snippets firing twice, or known-good snippets
firing at all, are how linter refactors silently change meaning — this
harness pins the contract.

Exit status: 0 all fixtures behave, 1 mismatch, 2 setup error.
"""

import pathlib
import re
import shutil
import subprocess
import sys
import tempfile

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
TOOL = REPO / "tools" / "wsqlint.py"
FIXTURES = HERE / "fixtures" / "wsqlint"
MARKER = re.compile(r"wsqlint-fixture:\s*dest=(\S+)\s+expect=(\S+)")
FINDING = re.compile(r"^(\S+?):(\d+): \[([a-z-]+)\]")


def parse_expect(spec):
    if spec == "clean":
        return {}
    out = {}
    for part in spec.split(","):
        check, _, count = part.partition(":")
        out[check] = int(count) if count else 1
    return out


def run_fixture(fixture):
    first = fixture.read_text(encoding="utf-8").splitlines()[0]
    m = MARKER.search(first)
    if m is None:
        return [f"{fixture.name}: missing wsqlint-fixture marker"]
    dest, expect = m.group(1), parse_expect(m.group(2))
    with tempfile.TemporaryDirectory(prefix="wsqlint-fx-") as tmp:
        root = pathlib.Path(tmp)
        target = root / dest
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(fixture, target)
        proc = subprocess.run(
            [sys.executable, str(TOOL), "--root", str(root)],
            capture_output=True, text=True)
        if proc.returncode not in (0, 1):
            return [f"{fixture.name}: wsqlint exited "
                    f"{proc.returncode}: {proc.stderr.strip()}"]
        got = {}
        for line in proc.stdout.splitlines():
            fm = FINDING.match(line)
            if fm:
                got[fm.group(3)] = got.get(fm.group(3), 0) + 1
        if got != expect:
            return [f"{fixture.name}: expected {expect or 'clean'}, "
                    f"got {got or 'clean'}\n"
                    + "\n".join("  " + l
                                for l in proc.stdout.splitlines())]
    return []


def main():
    if not TOOL.is_file():
        print(f"wsqlint_selftest: no tool at {TOOL}", file=sys.stderr)
        return 2
    fixtures = sorted(FIXTURES.glob("*.h")) + \
        sorted(FIXTURES.glob("*.cc"))
    if not fixtures:
        print(f"wsqlint_selftest: no fixtures in {FIXTURES}",
              file=sys.stderr)
        return 2
    failures = []
    for fixture in fixtures:
        failures.extend(run_fixture(fixture))
    for f in failures:
        print(f"FAIL {f}")
    print(f"wsqlint_selftest: {len(fixtures) - len(failures)}/"
          f"{len(fixtures)} fixtures OK", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
