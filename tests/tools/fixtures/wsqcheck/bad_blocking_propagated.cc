// wsqcheck-fixture: dest=src/storage/bad_blocking_propagated.cc expect=blocking-under-lock:1
// The blocking call is one hop away: Flush() holds the lock and calls
// SyncFile(), which fflushes. Only the call graph can see this.
#include <cstdio>

#include "common/thread_annotations.h"

namespace wsq {

class PropagatedWriter {
 public:
  void Flush() {
    MutexLock lock(&mu_);
    dirty_ = false;
    SyncFile();
  }

 private:
  void SyncFile() { fflush(file_); }

  Mutex mu_;
  bool dirty_ WSQ_GUARDED_BY(mu_) = false;
  std::FILE* file_ = nullptr;
};

}  // namespace wsq
