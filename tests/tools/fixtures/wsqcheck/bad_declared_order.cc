// wsqcheck-fixture: dest=src/async/bad_declared_order.cc expect=lock-order:1
// The declaration promises a_ is acquired before b_; Inverted() nests
// them the other way round. The declared edge plus the observed edge
// form a cycle.
#include "common/thread_annotations.h"

namespace wsq {

class DeclaredPair {
 public:
  void Inverted() {
    MutexLock lb(&b_);
    MutexLock la(&a_);
    ++x_;
  }

 private:
  Mutex a_;
  Mutex b_ WSQ_ACQUIRED_AFTER(a_);
  int x_ WSQ_GUARDED_BY(a_) = 0;
};

}  // namespace wsq
