// wsqcheck-fixture: dest=src/async/good_clean.cc expect=clean
// Near-misses for every check: consistent lock order, blocking moved
// outside the lock, a deadline-aware wait, a clamped SubmitAsync, a
// handled Status, and one genuinely used suppression.
#include <cstdio>

#include "common/thread_annotations.h"

namespace wsq {

class CleanStatus {
 public:
  static CleanStatus OK();
  bool ok() const { return ok_; }

 private:
  bool ok_ = true;
};

class CleanTable {
 public:
  unsigned long SubmitAsync(int request, int pump, long timeout_micros);
};

class CleanDeadline {
 public:
  long RemainingMicros() const;
};

class CleanWorker {
 public:
  // Always a_ before b_, in both paths: no cycle.
  void First() {
    MutexLock la(&a_);
    MutexLock lb(&b_);
    ++x_;
  }
  void Second() {
    MutexLock la(&a_);
    MutexLock lb(&b_);
    --x_;
  }

  // Blocking I/O after the guard is released.
  void WriteOut(const char* data, unsigned long len) {
    {
      MutexLock la(&a_);
      ++x_;
    }
    fwrite(data, 1, len, file_);
  }

  // Deadline-aware: the wait is timed and the body consults the
  // deadline before parking again.
  void AwaitDone(CleanDeadline* deadline) {
    MutexLock la(&a_);
    while (x_ != 0 && deadline->RemainingMicros() > 0) {
      cv_.WaitForMicros(a_, 1000);
    }
  }

  // Every SubmitAsync clamps by the budget that remains.
  void Issue(CleanTable* table, CleanDeadline* deadline) {
    long budget = deadline->RemainingMicros();
    if (budget <= 0) return;
    call_ = table->SubmitAsync(1, 2, budget);
  }

  // The Status is handled, not dropped.
  void Check(CleanWorker* other) {
    CleanStatus s = Probe();
    if (!s.ok()) ++failures_;
  }

  CleanStatus Probe();

  // Serialized fsync under the lock is this type's contract; the
  // suppression below is exercised, so it is not stale.
  void SyncUnderLock() {
    MutexLock la(&a_);
    // wsqcheck: allow(blocking-under-lock)
    fflush(file_);
  }

 private:
  Mutex a_;
  Mutex b_;
  CondVar cv_;
  int x_ WSQ_GUARDED_BY(a_) = 0;
  int failures_ = 0;
  unsigned long call_ = 0;
  std::FILE* file_ = nullptr;
};

}  // namespace wsq
