// wsqcheck-fixture: dest=src/async/bad_lock_order.cc expect=lock-order:1
// Seeded A->B / B->A inversion: Forward nests b_ inside a_, Back nests
// a_ inside b_. wsqcheck must report one lock-order cycle with both
// witness paths.
#include "common/thread_annotations.h"

namespace wsq {

class OrderPair {
 public:
  void Forward() {
    MutexLock la(&a_);
    MutexLock lb(&b_);
    ++x_;
  }
  void Back() {
    MutexLock lb(&b_);
    MutexLock la(&a_);
    ++x_;
  }

 private:
  Mutex a_;
  Mutex b_;
  int x_ WSQ_GUARDED_BY(a_) = 0;
};

}  // namespace wsq
