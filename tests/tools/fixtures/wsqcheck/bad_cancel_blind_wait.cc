// wsqcheck-fixture: dest=src/net/bad_cancel_blind_wait.cc expect=cancel-blind-wait:1
// An untimed Wait in a function whose whole body never consults a
// deadline, flag, or similar escape hatch.
#include "common/thread_annotations.h"

namespace wsq {

class BlindWaiter {
 public:
  void Park() {
    MutexLock lock(&mu_);
    while (pending_ != 0) cv_.Wait(mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int pending_ WSQ_GUARDED_BY(mu_) = 0;
};

}  // namespace wsq
