// wsqcheck-fixture: dest=src/exec/bad_unbounded_growth.cc expect=unbounded-op-growth:1
// NextImpl buffers rows without ever touching the memory-budget API.
#include <vector>

namespace wsq {

class BufferingOperator {
 public:
  bool NextImpl(int* row) {
    rows_.push_back(*row);
    return true;
  }

 private:
  std::vector<int> rows_;
};

}  // namespace wsq
