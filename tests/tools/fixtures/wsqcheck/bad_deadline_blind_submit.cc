// wsqcheck-fixture: dest=src/exec/bad_deadline_blind_submit.cc expect=deadline-blind-submit:1
// SubmitAsync issued on a path that never clamps by RemainingMicros.
namespace wsq {

class RemoteTable {
 public:
  unsigned long SubmitAsync(int request, int pump, long timeout_micros);
};

class BlindIssuer {
 public:
  void Issue(RemoteTable* table) {
    call_ = table->SubmitAsync(1, 2, 0);
  }

 private:
  unsigned long call_ = 0;
};

}  // namespace wsq
