// wsqcheck-fixture: dest=src/storage/bad_blocking_direct.cc expect=blocking-under-lock:1
// fwrite while the MutexLock guard is alive.
#include <cstdio>

#include "common/thread_annotations.h"

namespace wsq {

class BlockyWriter {
 public:
  void Write(const char* data, unsigned long len) {
    MutexLock lock(&mu_);
    fwrite(data, 1, len, file_);
  }

 private:
  Mutex mu_;
  std::FILE* file_ WSQ_GUARDED_BY(mu_) = nullptr;
};

}  // namespace wsq
