// wsqcheck-fixture: dest=src/common/bad_stale_suppression.cc expect=stale-suppression:1
// The allow() below suppresses nothing: no lock-order finding can fire
// on an empty function.
namespace wsq {

// wsqcheck: allow(lock-order)
inline int Nothing() { return 0; }

}  // namespace wsq
