// wsqcheck-fixture: dest=src/async/bad_status_discard.cc expect=status-discard:1
// A Status-returning call whose result falls on the floor.
namespace wsq {

class Status {
 public:
  static Status OK();
  bool ok() const { return ok_; }

 private:
  bool ok_ = true;
};

class Flaky {
 public:
  Status Touch();
};

inline void Caller(Flaky* f) {
  f->Touch();
}

}  // namespace wsq
