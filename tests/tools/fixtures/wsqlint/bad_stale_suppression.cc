// wsqlint-fixture: dest=src/common/bad_stale_suppression.cc expect=stale-suppression:1
namespace wsq {

// wsqlint: allow(cancel-blind-wait)
inline int Nothing() { return 0; }

}  // namespace wsq
