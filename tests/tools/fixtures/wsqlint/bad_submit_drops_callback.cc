// wsqlint-fixture: dest=src/net/bad_submit_drops_callback.cc expect=submit-drops-callback:1
namespace wsq {

class Droppy final : public SearchService {
 public:
  void Submit(SearchRequest request, SearchCallback done) override {
    if (request.key.empty()) {
      // The callback is dropped on this branch: nothing completes the
      // request, and nothing hands `done` off.
      return;
    }
    done(SearchResponse{});
  }
};

}  // namespace wsq
