// wsqlint-fixture: dest=src/obs/good_obs_metrics.cc expect=clean
namespace wsq {

// Flight-recorder and statusz metric families are registered: these
// pass the metric-naming check.
inline void Touch(MetricsRegistry* reg) {
  reg->GetCounter("wsq_fr_events_total")->Increment();
  reg->GetCounter("wsq_fr_postmortems_total")->Increment();
  reg->GetCounter("wsq_statusz_renders_total")->Increment();
  reg->GetHistogram("wsq_fr_snapshot_micros")->Record(12);
  reg->GetGauge("wsq_statusz_providers")->Set(9);
}

}  // namespace wsq
