// wsqlint-fixture: dest=src/net/good_service.cc expect=clean
namespace wsq {

class Careful final : public SearchService {
 public:
  void Submit(SearchRequest request, SearchCallback done) override {
    if (request.key.empty()) {
      done(SearchResponse{});
      return;
    }
    wrapped_->Submit(std::move(request), std::move(done));
  }

  ~Careful() {
    MutexLock lock(&mu_);
    // Bounded: no new calls can start during destruction.
    // wsqlint: allow(cancel-blind-wait)
    while (outstanding_ != 0) cv_.Wait(mu_);
  }

 private:
  SearchService* wrapped_ = nullptr;
  Mutex mu_;
  CondVar cv_;
  int outstanding_ WSQ_GUARDED_BY(mu_) = 0;
};

}  // namespace wsq
