// wsqlint-fixture: dest=src/common/bad_randomness.cc expect=randomness:1
#include <cstdlib>

namespace wsq {

inline int Roll() { return rand() % 6; }

}  // namespace wsq
