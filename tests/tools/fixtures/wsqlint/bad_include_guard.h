// wsqlint-fixture: dest=src/common/bad_include_guard.h expect=include-guard:1
#ifndef WSQ_WRONG_GUARD_H_
#define WSQ_WRONG_GUARD_H_

namespace wsq {}

#endif  // WSQ_WRONG_GUARD_H_
