// wsqlint-fixture: dest=src/async/good_header.h expect=clean
#ifndef WSQ_ASYNC_GOOD_HEADER_H_
#define WSQ_ASYNC_GOOD_HEADER_H_

namespace wsq {

class Guarded {
 private:
  Mutex mu_;
  int x_ WSQ_GUARDED_BY(mu_) = 0;
};

}  // namespace wsq

#endif  // WSQ_ASYNC_GOOD_HEADER_H_
