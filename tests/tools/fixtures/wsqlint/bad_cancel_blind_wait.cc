// wsqlint-fixture: dest=src/net/bad_cancel_blind_wait.cc expect=cancel-blind-wait:1
namespace wsq {

class Parked {
 public:
  void Drain() {
    MutexLock lock(&mu_);
    while (pending_ != 0) cv_.Wait(mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int pending_ WSQ_GUARDED_BY(mu_) = 0;
};

}  // namespace wsq
