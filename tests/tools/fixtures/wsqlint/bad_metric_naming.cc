// wsqlint-fixture: dest=src/obs/bad_metric_naming.cc expect=metric-naming:1
namespace wsq {

inline void Touch(MetricsRegistry* reg) {
  reg->GetCounter("queries_served")->Increment();
}

}  // namespace wsq
