// wsqlint-fixture: dest=src/common/bad_endif_comment.h expect=include-guard:1
#ifndef WSQ_COMMON_BAD_ENDIF_COMMENT_H_
#define WSQ_COMMON_BAD_ENDIF_COMMENT_H_

namespace wsq {}

#endif
