// wsqlint-fixture: dest=src/net/bad_raw_std_mutex.cc expect=raw-std-mutex:1
#include <mutex>

namespace wsq {

class Invisible {
 private:
  std::mutex raw_;
};

}  // namespace wsq
