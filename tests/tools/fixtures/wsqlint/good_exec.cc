// wsqlint-fixture: dest=src/exec/good_exec.cc expect=clean
namespace wsq {

Result<bool> Budgeted::NextImpl(Row* row) {
  if (!mem_.TryAdd(row->bytes())) {
    return Status::ResourceExhausted("row buffer over budget");
  }
  rows_.push_back(*row);
  return true;
}

}  // namespace wsq
