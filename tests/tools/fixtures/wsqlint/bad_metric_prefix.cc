// wsqlint-fixture: dest=src/obs/bad_metric_prefix.cc expect=metric-naming:1
namespace wsq {

// Well-formed name (wsq_ prefix, snake_case, _total suffix) but the
// "wsq_frobnicator_" family was never registered in METRIC_PREFIXES.
inline void Touch(MetricsRegistry* reg) {
  reg->GetCounter("wsq_frobnicator_requests_total")->Increment();
}

}  // namespace wsq
