// wsqlint-fixture: dest=src/exec/bad_manual_lock.cc expect=manual-lock:1
namespace wsq {

class Manual {
 public:
  void Touch() {
    mu_.lock();
    ++x_;
  }

 private:
  Mutex mu_;
  int x_ WSQ_GUARDED_BY(mu_) = 0;
};

}  // namespace wsq
