// wsqlint-fixture: dest=src/async/bad_mutex_guard.h expect=mutex-guard:1
#ifndef WSQ_ASYNC_BAD_MUTEX_GUARD_H_
#define WSQ_ASYNC_BAD_MUTEX_GUARD_H_

namespace wsq {

class Orphan {
 private:
  Mutex mu_;
  int unguarded_ = 0;
};

}  // namespace wsq

#endif  // WSQ_ASYNC_BAD_MUTEX_GUARD_H_
