// wsqlint-fixture: dest=src/exec/bad_unbounded_growth.cc expect=unbounded-op-growth:1
namespace wsq {

Result<bool> BufferAll::NextImpl(Row* row) {
  rows_.push_back(*row);
  return true;
}

}  // namespace wsq
