// wsqlint-fixture: dest=src/common/bad_iostream.cc expect=iostream:1
#include <iostream>

namespace wsq {}
