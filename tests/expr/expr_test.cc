#include "expr/expr.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

BoundExprPtr Col(size_t i, TypeId t = TypeId::kInt64) {
  return std::make_unique<BoundColumnRef>(i, Column("c", t, "t"));
}
BoundExprPtr Lit(Value v) {
  return std::make_unique<BoundLiteral>(std::move(v));
}
BoundExprPtr Bin(BinaryOp op, BoundExprPtr l, BoundExprPtr r) {
  return std::make_unique<BoundBinary>(op, std::move(l), std::move(r));
}

TEST(ExprTest, ColumnRefReadsRow) {
  Row row({Value::Int(7), Value::Str("x")});
  auto e = Col(1, TypeId::kString);
  EXPECT_EQ(e->Eval(row)->AsString(), "x");
}

TEST(ExprTest, ColumnRefOutOfRangeFails) {
  Row row({Value::Int(7)});
  auto e = Col(3);
  EXPECT_FALSE(e->Eval(row).ok());
}

TEST(ExprTest, IntArithmetic) {
  Row row;
  EXPECT_EQ(Bin(BinaryOp::kAdd, Lit(Value::Int(2)), Lit(Value::Int(3)))
                ->Eval(row)->AsInt(), 5);
  EXPECT_EQ(Bin(BinaryOp::kSub, Lit(Value::Int(2)), Lit(Value::Int(3)))
                ->Eval(row)->AsInt(), -1);
  EXPECT_EQ(Bin(BinaryOp::kMul, Lit(Value::Int(4)), Lit(Value::Int(3)))
                ->Eval(row)->AsInt(), 12);
  // Integer division truncates — this matters for paper Query 2
  // (Count/Population over INT columns).
  EXPECT_EQ(Bin(BinaryOp::kDiv, Lit(Value::Int(7)), Lit(Value::Int(2)))
                ->Eval(row)->AsInt(), 3);
  EXPECT_EQ(Bin(BinaryOp::kMod, Lit(Value::Int(7)), Lit(Value::Int(2)))
                ->Eval(row)->AsInt(), 1);
}

TEST(ExprTest, MixedArithmeticWidensToDouble) {
  Row row;
  auto v = Bin(BinaryOp::kDiv, Lit(Value::Int(7)), Lit(Value::Real(2.0)))
               ->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_double());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 3.5);
}

TEST(ExprTest, DivisionByZeroFails) {
  Row row;
  EXPECT_FALSE(Bin(BinaryOp::kDiv, Lit(Value::Int(1)), Lit(Value::Int(0)))
                   ->Eval(row).ok());
  EXPECT_FALSE(Bin(BinaryOp::kMod, Lit(Value::Int(1)), Lit(Value::Int(0)))
                   ->Eval(row).ok());
  EXPECT_FALSE(
      Bin(BinaryOp::kDiv, Lit(Value::Real(1)), Lit(Value::Real(0)))
          ->Eval(row).ok());
}

TEST(ExprTest, ArithmeticOnStringsFails) {
  Row row;
  EXPECT_FALSE(Bin(BinaryOp::kAdd, Lit(Value::Str("a")),
                   Lit(Value::Int(1)))->Eval(row).ok());
}

TEST(ExprTest, NullPropagatesThroughArithmetic) {
  Row row;
  auto v = Bin(BinaryOp::kAdd, Lit(Value::Null()), Lit(Value::Int(1)))
               ->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ExprTest, Comparisons) {
  Row row;
  EXPECT_EQ(Bin(BinaryOp::kLt, Lit(Value::Int(1)), Lit(Value::Int(2)))
                ->Eval(row)->AsInt(), 1);
  EXPECT_EQ(Bin(BinaryOp::kGe, Lit(Value::Int(1)), Lit(Value::Int(2)))
                ->Eval(row)->AsInt(), 0);
  EXPECT_EQ(Bin(BinaryOp::kEq, Lit(Value::Str("a")), Lit(Value::Str("a")))
                ->Eval(row)->AsInt(), 1);
  EXPECT_EQ(Bin(BinaryOp::kNe, Lit(Value::Str("a")), Lit(Value::Str("b")))
                ->Eval(row)->AsInt(), 1);
  // Cross int/double comparison.
  EXPECT_EQ(Bin(BinaryOp::kEq, Lit(Value::Int(2)), Lit(Value::Real(2.0)))
                ->Eval(row)->AsInt(), 1);
}

TEST(ExprTest, StringNumericComparisonFails) {
  Row row;
  EXPECT_FALSE(Bin(BinaryOp::kEq, Lit(Value::Str("1")),
                   Lit(Value::Int(1)))->Eval(row).ok());
}

TEST(ExprTest, ComparisonWithNullIsNull) {
  Row row;
  auto v = Bin(BinaryOp::kEq, Lit(Value::Null()), Lit(Value::Int(1)))
               ->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ExprTest, LogicShortCircuits) {
  Row row;
  // AND with false left never evaluates (division by zero on) right.
  auto e = Bin(BinaryOp::kAnd, Lit(Value::Int(0)),
               Bin(BinaryOp::kDiv, Lit(Value::Int(1)), Lit(Value::Int(0))));
  auto v = e->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 0);

  auto e2 = Bin(BinaryOp::kOr, Lit(Value::Int(1)),
                Bin(BinaryOp::kDiv, Lit(Value::Int(1)), Lit(Value::Int(0))));
  EXPECT_EQ(e2->Eval(row)->AsInt(), 1);
}

TEST(ExprTest, NullIsFalseInLogic) {
  Row row;
  EXPECT_EQ(Bin(BinaryOp::kAnd, Lit(Value::Null()), Lit(Value::Int(1)))
                ->Eval(row)->AsInt(), 0);
  EXPECT_EQ(Bin(BinaryOp::kOr, Lit(Value::Null()), Lit(Value::Int(1)))
                ->Eval(row)->AsInt(), 1);
}

TEST(ExprTest, UnaryOperators) {
  Row row;
  EXPECT_EQ(std::make_unique<BoundUnary>(UnaryOp::kNeg, Lit(Value::Int(5)))
                ->Eval(row)->AsInt(), -5);
  EXPECT_DOUBLE_EQ(
      std::make_unique<BoundUnary>(UnaryOp::kNeg, Lit(Value::Real(2.5)))
          ->Eval(row)->AsDouble(), -2.5);
  EXPECT_EQ(std::make_unique<BoundUnary>(UnaryOp::kNot, Lit(Value::Int(0)))
                ->Eval(row)->AsInt(), 1);
  EXPECT_FALSE(
      std::make_unique<BoundUnary>(UnaryOp::kNeg, Lit(Value::Str("x")))
          ->Eval(row).ok());
}

TEST(ExprTest, PlaceholderOperationsFail) {
  Row row({Value::Pending(9, 0)});
  auto e = Bin(BinaryOp::kAdd, Col(0), Lit(Value::Int(1)));
  auto v = e->Eval(row);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kExecutionError);
  // But a bare column reference passes the placeholder through —
  // projections may copy incomplete values (paper §4.5.2 case 2 is
  // handled by the rewriter, not the evaluator).
  EXPECT_TRUE(Col(0)->Eval(row)->is_placeholder());
}

TEST(ExprTest, EvalPredicate) {
  Row row({Value::Int(5)});
  auto e = Bin(BinaryOp::kGt, Col(0), Lit(Value::Int(3)));
  EXPECT_TRUE(*EvalPredicate(*e, row));
  Row row2({Value::Int(2)});
  EXPECT_FALSE(*EvalPredicate(*e, row2));
  // NULL predicate result is false.
  auto n = Bin(BinaryOp::kGt, Lit(Value::Null()), Lit(Value::Int(3)));
  EXPECT_FALSE(*EvalPredicate(*n, row));
}

TEST(ExprTest, OutputTypeInference) {
  auto cmp = Bin(BinaryOp::kLt, Col(0), Lit(Value::Int(1)));
  EXPECT_EQ(cmp->OutputType(), TypeId::kInt64);
  auto mixed = Bin(BinaryOp::kAdd, Col(0), Lit(Value::Real(1.0)));
  EXPECT_EQ(mixed->OutputType(), TypeId::kDouble);
  auto ints = Bin(BinaryOp::kAdd, Col(0), Lit(Value::Int(1)));
  EXPECT_EQ(ints->OutputType(), TypeId::kInt64);
}

TEST(ExprTest, CollectColumns) {
  auto e = Bin(BinaryOp::kAdd, Col(2), Bin(BinaryOp::kMul, Col(0), Col(2)));
  std::vector<size_t> cols;
  e->CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 2u);
  EXPECT_EQ(cols[1], 0u);
}

TEST(ExprTest, RemapColumns) {
  auto e = Bin(BinaryOp::kAdd, Col(0), Col(2));
  std::vector<int> mapping = {5, -1, 7};
  ASSERT_TRUE(e->RemapColumns(mapping).ok());
  std::vector<size_t> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols[0], 5u);
  EXPECT_EQ(cols[1], 7u);
}

TEST(ExprTest, RemapToUnavailableColumnFails) {
  auto e = Col(1);
  std::vector<int> mapping = {0, -1};
  EXPECT_FALSE(e->RemapColumns(mapping).ok());
}

TEST(ExprTest, LikeMatchPatterns) {
  EXPECT_TRUE(LikeMatch("colorado", "colorado"));
  EXPECT_TRUE(LikeMatch("colorado", "colo%"));
  EXPECT_TRUE(LikeMatch("colorado", "%rado"));
  EXPECT_TRUE(LikeMatch("colorado", "%lor%"));
  EXPECT_TRUE(LikeMatch("colorado", "c_l_r_d_"));
  EXPECT_TRUE(LikeMatch("colorado", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("abc", "a%b%c"));
  EXPECT_FALSE(LikeMatch("colorado", "utah%"));
  EXPECT_FALSE(LikeMatch("colorado", "colorado_"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_FALSE(LikeMatch("abc", ""));
  // Backtracking stress: the classic pathological pattern.
  EXPECT_TRUE(LikeMatch("aaaaaaaaab", "a%a%a%b"));
  EXPECT_FALSE(LikeMatch("aaaaaaaaaa", "a%a%a%b"));
}

TEST(ExprTest, LikeOperatorEval) {
  Row row({Value::Str("New Mexico")});
  auto e = Bin(BinaryOp::kLike, Col(0, TypeId::kString),
               Lit(Value::Str("New%")));
  EXPECT_EQ(e->Eval(row)->AsInt(), 1);
  auto miss = Bin(BinaryOp::kLike, Col(0, TypeId::kString),
                  Lit(Value::Str("Old%")));
  EXPECT_EQ(miss->Eval(row)->AsInt(), 0);
  // Non-string operands are a type error; NULL propagates.
  auto bad = Bin(BinaryOp::kLike, Lit(Value::Int(1)),
                 Lit(Value::Str("%")));
  EXPECT_FALSE(bad->Eval(row).ok());
  auto null = Bin(BinaryOp::kLike, Lit(Value::Null()),
                  Lit(Value::Str("%")));
  EXPECT_TRUE(null->Eval(row)->is_null());
}

TEST(ExprTest, ScalarFunctions) {
  Row row({Value::Str("MiXeD"), Value::Int(-7), Value::Real(-2.5)});
  auto make = [&](ScalarFunc f, BoundExprPtr arg) {
    std::vector<BoundExprPtr> args;
    args.push_back(std::move(arg));
    return std::make_unique<BoundFunction>(f, std::move(args));
  };
  EXPECT_EQ(make(ScalarFunc::kUpper, Col(0, TypeId::kString))
                ->Eval(row)->AsString(), "MIXED");
  EXPECT_EQ(make(ScalarFunc::kLower, Col(0, TypeId::kString))
                ->Eval(row)->AsString(), "mixed");
  EXPECT_EQ(make(ScalarFunc::kLength, Col(0, TypeId::kString))
                ->Eval(row)->AsInt(), 5);
  EXPECT_EQ(make(ScalarFunc::kAbs, Col(1))->Eval(row)->AsInt(), 7);
  EXPECT_DOUBLE_EQ(make(ScalarFunc::kAbs, Col(2, TypeId::kDouble))
                       ->Eval(row)->AsDouble(), 2.5);
  // Type errors and NULL propagation.
  EXPECT_FALSE(make(ScalarFunc::kUpper, Col(1))->Eval(row).ok());
  EXPECT_FALSE(
      make(ScalarFunc::kAbs, Col(0, TypeId::kString))->Eval(row).ok());
  EXPECT_TRUE(make(ScalarFunc::kLength, Lit(Value::Null()))
                  ->Eval(row)->is_null());
}

TEST(ExprTest, ScalarFuncLookup) {
  ScalarFunc f;
  EXPECT_TRUE(LookupScalarFunc("upper", &f));
  EXPECT_EQ(f, ScalarFunc::kUpper);
  EXPECT_TRUE(LookupScalarFunc("LENGTH", &f));
  EXPECT_FALSE(LookupScalarFunc("COUNT", &f));
  EXPECT_FALSE(LookupScalarFunc("nope", &f));
}

TEST(ExprTest, CloneIsDeep) {
  auto e = Bin(BinaryOp::kAdd, Col(0), Lit(Value::Int(1)));
  auto c = e->Clone();
  std::vector<int> mapping = {4};
  ASSERT_TRUE(c->RemapColumns(mapping).ok());
  std::vector<size_t> orig_cols;
  e->CollectColumns(&orig_cols);
  EXPECT_EQ(orig_cols[0], 0u);  // original untouched
}

}  // namespace
}  // namespace wsq
