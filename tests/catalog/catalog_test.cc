#include "catalog/catalog.h"

#include <gtest/gtest.h>

namespace wsq {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : pool_(32, &disk_), catalog_(&pool_) {}

  Schema StatesSchema() {
    return Schema({Column("Name", TypeId::kString),
                   Column("Population", TypeId::kInt64),
                   Column("Capital", TypeId::kString)});
  }

  InMemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
};

TEST_F(CatalogTest, CreateAndGet) {
  auto t = catalog_.CreateTable("States", StatesSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "States");
  auto got = catalog_.GetTable("States");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *t);
}

TEST_F(CatalogTest, QualifiersSetToTableName) {
  auto t = *catalog_.CreateTable("States", StatesSchema());
  for (const Column& c : t->schema().columns()) {
    EXPECT_EQ(c.qualifier, "States");
  }
}

TEST_F(CatalogTest, LookupIsCaseInsensitive) {
  ASSERT_TRUE(catalog_.CreateTable("States", StatesSchema()).ok());
  EXPECT_TRUE(catalog_.GetTable("states").ok());
  EXPECT_TRUE(catalog_.GetTable("STATES").ok());
}

TEST_F(CatalogTest, DuplicateCreateFails) {
  ASSERT_TRUE(catalog_.CreateTable("States", StatesSchema()).ok());
  auto dup = catalog_.CreateTable("states", StatesSchema());
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, MissingTableNotFound) {
  auto r = catalog_.GetTable("Nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, DropTable) {
  ASSERT_TRUE(catalog_.CreateTable("States", StatesSchema()).ok());
  ASSERT_TRUE(catalog_.DropTable("states").ok());
  EXPECT_FALSE(catalog_.GetTable("States").ok());
  EXPECT_FALSE(catalog_.DropTable("States").ok());
  EXPECT_TRUE(catalog_.ListTables().empty());
}

TEST_F(CatalogTest, ListTablesInCreationOrder) {
  ASSERT_TRUE(catalog_.CreateTable("B", StatesSchema()).ok());
  ASSERT_TRUE(catalog_.CreateTable("A", StatesSchema()).ok());
  auto names = catalog_.ListTables();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "B");
  EXPECT_EQ(names[1], "A");
}

TEST_F(CatalogTest, InsertAndScanRows) {
  TableInfo* t = *catalog_.CreateTable("States", StatesSchema());
  ASSERT_TRUE(t->Insert(Row({Value::Str("Colorado"), Value::Int(3970971),
                             Value::Str("Denver")}))
                  .ok());
  ASSERT_TRUE(t->Insert(Row({Value::Str("Utah"), Value::Int(2099758),
                             Value::Str("Salt Lake City")}))
                  .ok());
  auto rows = t->ScanAll();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].value(0).AsString(), "Colorado");
  EXPECT_EQ((*rows)[1].value(2).AsString(), "Salt Lake City");
  EXPECT_EQ(*t->NumRows(), 2);
}

TEST_F(CatalogTest, InsertArityMismatchFails) {
  TableInfo* t = *catalog_.CreateTable("States", StatesSchema());
  auto s = t->Insert(Row({Value::Str("x")}));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(CatalogTest, InsertTypeMismatchFails) {
  TableInfo* t = *catalog_.CreateTable("States", StatesSchema());
  auto s = t->Insert(
      Row({Value::Int(1), Value::Int(2), Value::Str("x")}));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(CatalogTest, NullsAndIntWideningAccepted) {
  TableInfo* t = *catalog_.CreateTable(
      "T", Schema({Column("A", TypeId::kString),
                   Column("B", TypeId::kDouble)}));
  EXPECT_TRUE(t->Insert(Row({Value::Null(), Value::Int(3)})).ok());
  EXPECT_TRUE(t->Insert(Row({Value::Str("x"), Value::Real(1.5)})).ok());
}

TEST_F(CatalogTest, TableScannerStreams) {
  TableInfo* t = *catalog_.CreateTable(
      "Nums", Schema({Column("N", TypeId::kInt64)}));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->Insert(Row({Value::Int(i)})).ok());
  }
  TableScanner scanner(t);
  Row row;
  int64_t sum = 0;
  while (*scanner.Next(&row)) sum += row.value(0).AsInt();
  EXPECT_EQ(sum, 4950);
}

}  // namespace
}  // namespace wsq
