#include "async/req_pump.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace wsq {
namespace {

CallResult OkRows(std::vector<Row> rows) {
  return CallResult{Status::OK(), std::move(rows)};
}

// A call that completes synchronously with one int row.
AsyncCallFn ImmediateCall(int64_t v) {
  return [v](CallCompletion done) {
    done(OkRows({Row({Value::Int(v)})}));
  };
}

// A call that completes from a detached thread after `micros`.
AsyncCallFn DelayedCall(int64_t v, int64_t micros,
                        std::atomic<int>* live_counter = nullptr,
                        std::atomic<int>* peak = nullptr) {
  return [=](CallCompletion done) {
    if (live_counter != nullptr) {
      int now = ++*live_counter;
      int old = peak->load();
      while (now > old && !peak->compare_exchange_weak(old, now)) {
      }
    }
    std::thread([=] {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
      if (live_counter != nullptr) --*live_counter;
      done(OkRows({Row({Value::Int(v)})}));
    }).detach();
  };
}

TEST(ReqPumpTest, RegisterReturnsImmediately) {
  ReqPump pump;
  Stopwatch timer;
  // The bound only needs to prove Register didn't block for the call's
  // 100 ms round-trip; keep generous headroom so TSan's slowdown under
  // parallel ctest load can't produce false failures.
  CallId id = pump.Register("AltaVista", DelayedCall(1, 100000));
  EXPECT_LT(timer.ElapsedMicros(), 50000);
  EXPECT_NE(id, kInvalidCallId);
  CallResult r = pump.TakeBlocking(id);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 1);
}

TEST(ReqPumpTest, CallIdsAreUnique) {
  ReqPump pump;
  CallId a = pump.Register("x", ImmediateCall(1));
  CallId b = pump.Register("x", ImmediateCall(2));
  EXPECT_NE(a, b);
}

TEST(ReqPumpTest, ResultsStoredInHashUntilTaken) {
  ReqPump pump;
  CallId id = pump.Register("x", ImmediateCall(42));
  EXPECT_TRUE(pump.IsComplete(id));
  CallResult out;
  ASSERT_TRUE(pump.TryTake(id, &out));
  EXPECT_EQ(out.rows[0].value(0).AsInt(), 42);
  // Taken: gone from the hash.
  EXPECT_FALSE(pump.IsComplete(id));
  EXPECT_FALSE(pump.TryTake(id, &out));
}

TEST(ReqPumpTest, TryTakeBeforeCompletionReturnsFalse) {
  ReqPump pump;
  CallId id = pump.Register("x", DelayedCall(1, 50000));
  CallResult out;
  EXPECT_FALSE(pump.TryTake(id, &out));
  pump.TakeBlocking(id);
}

TEST(ReqPumpTest, ManyCallsRunConcurrently) {
  ReqPump pump;
  std::vector<CallId> ids;
  Stopwatch timer;
  // 37 calls of 30 ms each — the paper's Sigs example (§4.1).
  for (int i = 0; i < 37; ++i) {
    ids.push_back(pump.Register("AltaVista", DelayedCall(i, 30000)));
  }
  for (CallId id : ids) pump.TakeBlocking(id);
  // Concurrent: far below the 1.1 s serial time.
  EXPECT_LT(timer.ElapsedMicros(), 400000);
  EXPECT_EQ(pump.stats().completed, 37u);
  EXPECT_GT(pump.stats().max_in_flight, 10u);
}

TEST(ReqPumpTest, GlobalLimitEnforced) {
  ReqPump::Limits limits;
  limits.max_global = 3;
  ReqPump pump(limits);
  std::atomic<int> live{0};
  std::atomic<int> peak{0};
  std::vector<CallId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(
        pump.Register("AltaVista", DelayedCall(i, 10000, &live, &peak)));
  }
  for (CallId id : ids) pump.TakeBlocking(id);
  EXPECT_LE(peak.load(), 3);
  EXPECT_EQ(pump.stats().completed, 12u);
  EXPECT_GT(pump.stats().queued_peak, 0u);
}

TEST(ReqPumpTest, PerDestinationLimitEnforced) {
  ReqPump::Limits limits;
  limits.max_per_destination = 2;
  ReqPump pump(limits);
  std::atomic<int> live_av{0}, peak_av{0}, live_g{0}, peak_g{0};
  std::vector<CallId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(pump.Register(
        "AltaVista", DelayedCall(i, 10000, &live_av, &peak_av)));
    ids.push_back(
        pump.Register("Google", DelayedCall(i, 10000, &live_g, &peak_g)));
  }
  for (CallId id : ids) pump.TakeBlocking(id);
  EXPECT_LE(peak_av.load(), 2);
  EXPECT_LE(peak_g.load(), 2);
  // Both destinations made progress in parallel.
  EXPECT_EQ(pump.stats().completed, 12u);
}

TEST(ReqPumpTest, BlockedDestinationDoesNotStarveOthers) {
  ReqPump::Limits limits;
  limits.max_per_destination = 1;
  ReqPump pump(limits);
  // Long call occupies AltaVista; short Google call queued after more
  // AltaVista calls must still dispatch promptly.
  CallId slow = pump.Register("AltaVista", DelayedCall(1, 80000));
  CallId also_slow = pump.Register("AltaVista", DelayedCall(2, 10000));
  Stopwatch timer;
  CallId fast = pump.Register("Google", DelayedCall(3, 1000));
  pump.TakeBlocking(fast);
  EXPECT_LT(timer.ElapsedMicros(), 50000);
  pump.TakeBlocking(slow);
  pump.TakeBlocking(also_slow);
}

TEST(ReqPumpTest, WaitForCompletionBeyond) {
  ReqPump pump;
  uint64_t seq = pump.completion_seq();
  CallId id = pump.Register("x", DelayedCall(5, 20000));
  pump.WaitForCompletionBeyond(seq);
  EXPECT_TRUE(pump.IsComplete(id));
}

TEST(ReqPumpTest, DrainWaitsForAll) {
  ReqPump pump;
  std::vector<CallId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(pump.Register("x", DelayedCall(i, 15000)));
  }
  pump.Drain();
  for (CallId id : ids) EXPECT_TRUE(pump.IsComplete(id));
}

TEST(ReqPumpTest, FailedCallsCounted) {
  ReqPump pump;
  CallId id = pump.Register("x", [](CallCompletion done) {
    done(CallResult{Status::IOError("engine unavailable"), {}});
  });
  CallResult r = pump.TakeBlocking(id);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(pump.stats().failed, 1u);
}

TEST(ReqPumpTest, MultiRowResults) {
  ReqPump pump;
  CallId id = pump.Register("x", [](CallCompletion done) {
    done(OkRows({Row({Value::Int(1)}), Row({Value::Int(2)}),
                 Row({Value::Int(3)})}));
  });
  CallResult r = pump.TakeBlocking(id);
  ASSERT_EQ(r.rows.size(), 3u);
}

TEST(ReqPumpTest, EmptyResultRows) {
  ReqPump pump;
  CallId id = pump.Register("x", [](CallCompletion done) {
    done(OkRows({}));
  });
  CallResult r = pump.TakeBlocking(id);
  EXPECT_TRUE(r.status.ok());
  EXPECT_TRUE(r.rows.empty());
}

TEST(ReqPumpTest, DestructorDropsQueuedCalls) {
  ReqPump::Limits limits;
  limits.max_global = 1;
  std::atomic<int> dispatched{0};
  {
    ReqPump pump(limits);
    pump.Register("x", DelayedCall(1, 20000));
    // These stay queued behind the limit and are dropped at shutdown.
    for (int i = 0; i < 3; ++i) {
      pump.Register("x", [&](CallCompletion done) {
        ++dispatched;
        done(OkRows({}));
      });
    }
  }
  // Queued calls were never dispatched... except any that got a slot
  // when the first call finished before destruction. Either way, no
  // crash and no hang. dispatched <= 3.
  EXPECT_LE(dispatched.load(), 3);
}

TEST(ReqPumpTest, StatsTrackRegistrations) {
  ReqPump pump;
  for (int i = 0; i < 4; ++i) {
    pump.Register("x", ImmediateCall(i));
  }
  pump.Drain();
  ReqPumpStats s = pump.stats();
  EXPECT_EQ(s.registered, 4u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.failed, 0u);
}

// A call whose completion callback is captured and never invoked by the
// service — the hung-engine case deadlines exist for. If `stash` is
// set, the completion is saved so the test can fire it late.
AsyncCallFn HangingCall(CallCompletion* stash = nullptr) {
  return [stash](CallCompletion done) {
    if (stash != nullptr) *stash = std::move(done);
  };
}

TEST(ReqPumpDeadlineTest, TimeoutCompletesCallWithDeadlineExceeded) {
  ReqPump pump;
  Stopwatch timer;
  CallId id = pump.Register("AltaVista", HangingCall(), 20000);
  CallResult r = pump.TakeBlocking(id);
  // TakeBlocking returned close to the deadline, not hanging forever.
  EXPECT_GE(timer.ElapsedMicros(), 20000);
  EXPECT_LT(timer.ElapsedMicros(), 500000);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsTransient(r.status.code()));
  ReqPumpStats s = pump.stats();
  EXPECT_EQ(s.timed_out, 1u);
  EXPECT_EQ(s.failed, 1u);
}

TEST(ReqPumpDeadlineTest, LateCompletionIsDiscarded) {
  CallCompletion stashed;
  ReqPump pump;
  CallId id = pump.Register("AltaVista", HangingCall(&stashed), 5000);
  CallResult r = pump.TakeBlocking(id);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);

  // The engine finally answers, long after the timeout. The result
  // must be dropped: no double-complete, no resurrected hash entry.
  stashed(OkRows({Row({Value::Int(99)})}));
  EXPECT_FALSE(pump.IsComplete(id));
  ReqPumpStats s = pump.stats();
  EXPECT_EQ(s.late_discarded, 1u);
  EXPECT_EQ(s.completed, 1u);  // counted once, by the timer
}

TEST(ReqPumpDeadlineTest, DefaultTimeoutFromLimits) {
  ReqPump::Limits limits;
  limits.default_timeout_micros = 15000;
  ReqPump pump(limits);
  CallId id = pump.Register("AltaVista", HangingCall());
  CallResult r = pump.TakeBlocking(id);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ReqPumpDeadlineTest, ExplicitZeroDisablesDefaultTimeout) {
  ReqPump::Limits limits;
  limits.default_timeout_micros = 5000;
  ReqPump pump(limits);
  // timeout_micros <= 0 opts this call out of the default deadline.
  CallId id = pump.Register("AltaVista", DelayedCall(7, 30000), 0);
  CallResult r = pump.TakeBlocking(id);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 7);
  EXPECT_EQ(pump.stats().timed_out, 0u);
}

TEST(ReqPumpDeadlineTest, FastCallBeatsItsDeadline) {
  ReqPump pump;
  CallId id = pump.Register("AltaVista", DelayedCall(3, 2000), 200000);
  CallResult r = pump.TakeBlocking(id);
  ASSERT_TRUE(r.status.ok());
  // Give the timer a beat: the stale deadline entry must not fire.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(pump.stats().timed_out, 0u);
  EXPECT_EQ(pump.stats().late_discarded, 0u);
}

TEST(ReqPumpDeadlineTest, QueuedCallCanTimeOutBeforeDispatch) {
  ReqPump::Limits limits;
  limits.max_global = 1;
  ReqPump pump(limits);
  CallCompletion stashed;
  CallId slow = pump.Register("AltaVista", HangingCall(&stashed), 0);
  // Queued behind the hung call; its deadline passes while waiting.
  CallId queued = pump.Register("AltaVista", ImmediateCall(1), 10000);
  CallResult r = pump.TakeBlocking(queued);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  // Unblock the first call so the pump can shut down.
  stashed(OkRows({}));
  CallResult first = pump.TakeBlocking(slow);
  EXPECT_TRUE(first.status.ok());
}

TEST(ReqPumpDeadlineTest, TimeoutFreesLimitSlotForQueuedCalls) {
  ReqPump::Limits limits;
  limits.max_global = 1;
  ReqPump pump(limits);
  // A hung call holds the only slot; its timeout must release it so
  // the queued call behind it still runs.
  CallId hung = pump.Register("AltaVista", HangingCall(), 10000);
  CallId queued = pump.Register("AltaVista", ImmediateCall(5), 0);
  CallResult r = pump.TakeBlocking(queued);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 5);
  EXPECT_EQ(pump.TakeBlocking(hung).status.code(),
            StatusCode::kDeadlineExceeded);
}

TEST(ReqPumpDeadlineTest, LateCompletionAfterPumpDestructionIsSafe) {
  CallCompletion stashed;
  {
    ReqPump pump;
    CallId id = pump.Register("AltaVista", HangingCall(&stashed), 3000);
    CallResult r = pump.TakeBlocking(id);
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  }
  // The pump is gone; the engine's answer arrives anyway. The shared
  // core absorbs it — no use-after-free, no crash.
  stashed(OkRows({Row({Value::Int(1)})}));
}

TEST(ReqPumpDeadlineTest, ManyMixedDeadlinesResolveIndependently) {
  ReqPump pump;
  std::vector<CallId> timed_out_ids;
  std::vector<CallId> ok_ids;
  for (int i = 0; i < 8; ++i) {
    timed_out_ids.push_back(
        pump.Register("hungry", HangingCall(), 8000 + i * 1000));
    ok_ids.push_back(
        pump.Register("healthy", DelayedCall(i, 1000), 300000));
  }
  for (CallId id : ok_ids) {
    EXPECT_TRUE(pump.TakeBlocking(id).status.ok());
  }
  for (CallId id : timed_out_ids) {
    EXPECT_EQ(pump.TakeBlocking(id).status.code(),
              StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(pump.stats().timed_out, 8u);
}

}  // namespace
}  // namespace wsq
