// Destination-isolation regressions for ReqPump, written for the
// sharded search backend: each shard is its own pump destination, so
// one dark shard saturating its per-destination slots must never
// starve the other shards' calls, and a governor cancelling one
// coalesced waiter's call must not disturb an unrelated one.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "async/req_pump.h"

namespace wsq {
namespace {

CallResult OkRow(int64_t v) {
  return CallResult{Status::OK(), {Row({Value::Int(v)})}};
}

/// A destination that accepts calls but never completes them (a wedged
/// shard). Completions are parked and released at teardown to satisfy
/// the every-call-completes contract.
class BlackHole {
 public:
  AsyncCallFn Call() {
    return [this](CallCompletion done) {
      std::lock_guard<std::mutex> lock(mu_);
      parked_.push_back(std::move(done));
    };
  }

  size_t parked() const {
    std::lock_guard<std::mutex> lock(mu_);
    return parked_.size();
  }

  void ReleaseAll() {
    std::vector<CallCompletion> held;
    {
      std::lock_guard<std::mutex> lock(mu_);
      held.swap(parked_);
    }
    for (CallCompletion& done : held) {
      done(CallResult{Status::Unavailable("black hole released"), {}});
    }
  }

 private:
  mutable std::mutex mu_;
  std::vector<CallCompletion> parked_;
};

TEST(ReqPumpIsolationTest, DarkDestinationDoesNotStarveOthers) {
  ReqPump::Limits limits;
  limits.max_per_destination = 2;
  ReqPump pump(limits);
  BlackHole dark;

  // Wedge shard0: two dispatched calls hold both its slots, and two
  // more queue behind them, going nowhere.
  std::vector<CallId> wedged;
  for (int i = 0; i < 4; ++i) {
    wedged.push_back(pump.Register("shard0", dark.Call()));
  }
  // Give dispatch a moment: exactly the per-destination cap reaches the
  // black hole, the rest wait in the pump queue.
  for (int spin = 0; spin < 200 && dark.parked() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(dark.parked(), 2u);

  // Healthy shards behind the blocked head of the queue must still
  // dispatch and complete: a blocked destination is skipped, not a
  // barrier.
  std::vector<CallId> healthy;
  for (int i = 0; i < 8; ++i) {
    std::string dest = "shard" + std::to_string(1 + i % 3);
    int64_t v = i;
    healthy.push_back(
        pump.Register(dest, [v](CallCompletion done) { done(OkRow(v)); }));
  }
  for (size_t i = 0; i < healthy.size(); ++i) {
    CallResult r = pump.TakeBlocking(healthy[i]);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.rows[0].value(0).AsInt(), static_cast<int64_t>(i));
  }
  // The wedged destination made no progress meanwhile.
  EXPECT_EQ(dark.parked(), 2u);

  // Reap the wedged calls the way a governor would (cancel + take):
  // the dispatched pair is abandoned, the queued pair dropped. Their
  // parked completions are then released and discarded as late.
  for (CallId id : wedged) {
    ASSERT_TRUE(pump.CancelCall(id));
    CallResult r;
    ASSERT_TRUE(pump.TryTake(id, &r));
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  }
  dark.ReleaseAll();
  pump.Drain();
  ReqPumpStats s = pump.stats();
  EXPECT_EQ(s.registered, s.completed + s.cancelled + s.shed);
}

TEST(ReqPumpIsolationTest, CancellingOneWaiterLeavesOthersIntact) {
  // Two consumers of the same backend work (the single-flight pattern):
  // each holds its own CallId; cancelling one must not complete, drop,
  // or corrupt the other.
  ReqPump pump;
  BlackHole slow;

  CallId cancelled = pump.Register("shard0", slow.Call());
  std::atomic<bool> fired{false};
  CallId kept = pump.Register("shard0", [&](CallCompletion done) {
    std::thread([&fired, done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      fired = true;
      done(OkRow(42));
    }).detach();
  });

  ASSERT_TRUE(pump.CancelCall(cancelled));
  CallResult gone;
  ASSERT_TRUE(pump.TryTake(cancelled, &gone));
  EXPECT_EQ(gone.status.code(), StatusCode::kCancelled);

  CallResult r = pump.TakeBlocking(kept);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(fired.load());
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 42);

  slow.ReleaseAll();
  pump.Drain();
  ReqPumpStats s = pump.stats();
  EXPECT_EQ(s.registered, s.completed + s.cancelled + s.shed);
}

}  // namespace
}  // namespace wsq
