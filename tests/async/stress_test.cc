// Failure-injection and load stress for the asynchronous subsystem:
// ReqPump limits under heavy traffic, server capacity interplay, and
// end-to-end WSQ queries under flaky engines with retries.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "async/req_pump.h"
#include "common/clock.h"
#include "net/fault_service.h"
#include "net/retry_service.h"
#include "net/simulated_service.h"
#include "wsq/database.h"
#include "wsq/demo.h"

namespace wsq {
namespace {

TEST(ReqPumpStressTest, FiveHundredCallsUnderTightLimits) {
  ReqPump::Limits limits;
  limits.max_global = 12;
  limits.max_per_destination = 4;
  ReqPump pump(limits);

  std::atomic<int> live_global{0};
  std::atomic<int> peak_global{0};
  // No completion may land until every call is registered; otherwise
  // whether the queue ever forms depends on scheduling (under TSan's
  // slowdown it sometimes never did).
  std::atomic<bool> release{false};
  const char* destinations[] = {"a", "b", "c", "d"};

  std::vector<CallId> ids;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    int64_t delay = 200 + static_cast<int64_t>(rng.Uniform(1500));
    ids.push_back(pump.Register(
        destinations[i % 4], [&, delay, i](CallCompletion done) {
          int now = ++live_global;
          int old = peak_global.load();
          while (now > old &&
                 !peak_global.compare_exchange_weak(old, now)) {
          }
          std::thread([&, delay, i, done = std::move(done)] {
            while (!release.load()) {
              std::this_thread::sleep_for(
                  std::chrono::microseconds(100));
            }
            std::this_thread::sleep_for(
                std::chrono::microseconds(delay));
            --live_global;
            done(CallResult{Status::OK(), {Row({Value::Int(i)})}});
          }).detach();
        }));
  }
  release.store(true);

  std::set<int64_t> seen;
  for (CallId id : ids) {
    CallResult r = pump.TakeBlocking(id);
    ASSERT_TRUE(r.status.ok());
    seen.insert(r.rows[0].value(0).AsInt());
  }
  EXPECT_EQ(seen.size(), 500u);  // every call completed exactly once
  EXPECT_LE(peak_global.load(), 12);
  EXPECT_EQ(pump.stats().completed, 500u);
  EXPECT_LE(pump.stats().max_in_flight, 12u);
  EXPECT_GT(pump.stats().queued_peak, 0u);
}

TEST(ReqPumpStressTest, ConcurrentRegistrationsFromManyThreads) {
  ReqPump pump;
  std::atomic<int> completions{0};
  const int kThreads = 8;
  const int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        CallId id = pump.Register(
            "dest" + std::to_string(t % 3), [&](CallCompletion done) {
              done(CallResult{Status::OK(), {}});
            });
        CallResult r = pump.TakeBlocking(id);
        if (r.status.ok()) ++completions;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completions.load(), kThreads * kPerThread);
  EXPECT_EQ(pump.stats().registered,
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(AsyncStressTest, PumpLimitMeetsServerCapacity) {
  // Both throttles at once: ReqPump allows 8 outstanding, the server
  // serves 4 at a time. 40 calls of 5 ms ≥ 40/4 * 5 ms = 50 ms.
  DemoOptions options;
  options.corpus.num_documents = 1000;
  options.corpus.vocab_size = 500;
  options.latency = LatencyModel::Fixed(5000);
  options.server_capacity = 4;
  options.pump_limits.max_global = 8;
  DemoEnv env(options);

  WSQ_IGNORE_STATUS(env.db().Execute("CREATE TABLE T40 (Name STRING)"));
  TableInfo* t = *env.db().catalog()->GetTable("T40");
  const auto& vocab = env.corpus().vocabulary();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        t->Insert(Row({Value::Str(vocab[i % vocab.size()])})).ok());
  }

  Stopwatch timer;
  auto r = env.Run(
      "Select Name, Count From T40, WebCount Where Name = T1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result.rows.size(), 40u);
  EXPECT_GE(timer.ElapsedMicros(), 45000);  // capacity-bound
  EXPECT_LE(env.db().pump()->stats().max_in_flight, 8u);
}

TEST(AsyncStressTest, FlakyEngineWithRetriesStillAnswersQueries) {
  // An engine that fails ~30% of first attempts, fronted by retries:
  // WSQ queries succeed and results match a healthy run.
  CorpusConfig cfg;
  cfg.num_documents = 1500;
  cfg.seed = 77;
  Corpus corpus = MakePaperCorpus(cfg);
  SearchEngineConfig ecfg;
  ecfg.name = "AltaVista";
  SearchEngine engine(&corpus, ecfg);
  SimulatedSearchService::Options sopt;
  sopt.latency = LatencyModel::Fixed(1000);
  SimulatedSearchService backend(&engine, sopt);

  // Deterministically flaky: the FIRST attempt of every 3rd distinct
  // query fails; retries of the same query succeed.
  class FirstAttemptOfEveryThirdQueryFails : public SearchService {
   public:
    explicit FirstAttemptOfEveryThirdQueryFails(SearchService* wrapped)
        : wrapped_(wrapped) {}
    const std::string& name() const override { return wrapped_->name(); }
    void Submit(SearchRequest request, SearchCallback done) override {
      bool fail = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (seen_.insert(request.query).second) {
          fail = (seen_.size() % 3 == 0);
        }
      }
      if (fail) {
        done(SearchResponse{Status::IOError("blip"), 0, {}});
        return;
      }
      wrapped_->Submit(std::move(request), std::move(done));
    }

   private:
    SearchService* wrapped_;
    std::mutex mu_;
    std::set<std::string> seen_;
  } flaky(&backend);

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_micros = 300;
  RetryingSearchService retry(&flaky, policy);

  WsqDatabase db;
  ASSERT_TRUE(db.RegisterSearchEngine("AV", &retry, true).ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE Sigs (Name STRING)").ok());
  for (const std::string& sig : AcmSigs()) {
    ASSERT_TRUE(db.Execute("INSERT INTO Sigs VALUES ('" + sig + "')")
                    .ok());
  }

  auto r = db.Execute(
      "Select Name, Count From Sigs, WebCount Where Name = T1 "
      "Order By Name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result.rows.size(), 37u);
  EXPECT_GT(retry.stats().retries, 0u);

  // Cross-check against the unflaky backend.
  WsqDatabase clean;
  ASSERT_TRUE(clean.RegisterSearchEngine("AV", &backend, true).ok());
  ASSERT_TRUE(clean.Execute("CREATE TABLE Sigs (Name STRING)").ok());
  for (const std::string& sig : AcmSigs()) {
    ASSERT_TRUE(
        clean.Execute("INSERT INTO Sigs VALUES ('" + sig + "')").ok());
  }
  auto expected = clean.Execute(
      "Select Name, Count From Sigs, WebCount Where Name = T1 "
      "Order By Name");
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(r->result.rows.size(), expected->result.rows.size());
  for (size_t i = 0; i < r->result.rows.size(); ++i) {
    EXPECT_EQ(r->result.rows[i], expected->result.rows[i]) << i;
  }
}

TEST(AsyncStressTest, ConcurrentQueriesShareOnePump) {
  // The paper's ReqPump is a GLOBAL module: several queries (threads)
  // multiplex their calls through it simultaneously.
  DemoOptions options;
  options.corpus.num_documents = 1500;
  options.latency = LatencyModel::Fixed(3000);
  DemoEnv env(options);

  const char* queries[] = {
      "Select Name, Count From States, WebCount Where Name = T1 "
      "Order By Count Desc, Name",
      "Select Name, Count From Sigs, WebCount Where Name = T1 "
      "Order By Count Desc, Name",
      "Select Name, URL, Rank From CSFields, WebPages "
      "Where Name = T1 and Rank <= 3 Order By Name, Rank",
  };

  // Reference results, computed serially.
  std::vector<ResultSet> expected;
  for (const char* sql : queries) {
    auto r = env.Run(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(r->result));
  }

  std::vector<std::thread> threads;
  std::vector<Status> statuses(9);
  std::vector<ResultSet> results(9);
  for (int t = 0; t < 9; ++t) {
    threads.emplace_back([&, t] {
      auto r = env.Run(queries[t % 3]);
      if (r.ok()) {
        results[t] = std::move(r->result);
      } else {
        statuses[t] = r.status();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int t = 0; t < 9; ++t) {
    ASSERT_TRUE(statuses[t].ok()) << t << ": " << statuses[t].ToString();
    const ResultSet& want = expected[t % 3];
    ASSERT_EQ(results[t].rows.size(), want.rows.size()) << t;
    for (size_t i = 0; i < want.rows.size(); ++i) {
      ASSERT_EQ(results[t].rows[i], want.rows[i]) << t << " row " << i;
    }
  }
}

// Fixture for the degradation tests: a WSQ database whose only engine
// hangs 10% and hard-fails 10% of distinct requests, behind a 100 ms
// per-call deadline. The WebCount query over the 37 ACM SIGs then sees
// a deterministic (per seed) mix of successes, permanent errors, and
// deadline timeouts.
struct DegradedRun {
  Status status;
  ResultSet result;
  QueryStats stats;
  FaultStats faults;
  size_t pending_results_after = 0;
  int64_t elapsed_micros = 0;
};

DegradedRun RunDegradedSigsQuery(OnCallError policy, uint64_t seed) {
  CorpusConfig cfg;
  cfg.num_documents = 1500;
  cfg.seed = 77;
  Corpus corpus = MakePaperCorpus(cfg);
  SearchEngineConfig ecfg;
  ecfg.name = "AltaVista";
  SearchEngine engine(&corpus, ecfg);
  SimulatedSearchService::Options sopt;
  sopt.latency = LatencyModel::Fixed(1000);
  SimulatedSearchService backend(&engine, sopt);

  FaultPlan plan;
  plan.seed = seed;
  plan.hang_rate = 0.10;       // never answers; only the deadline saves us
  plan.permanent_rate = 0.10;  // hard error on every attempt
  FaultInjectingSearchService faulty(&backend, plan);

  DegradedRun out;
  {
    WsqDatabase::Options dbopt;
    dbopt.pump_limits.default_timeout_micros = 100000;
    WsqDatabase db(dbopt);
    EXPECT_TRUE(db.RegisterSearchEngine("AV", &faulty, true).ok());
    EXPECT_TRUE(db.Execute("CREATE TABLE Sigs (Name STRING)").ok());
    for (const std::string& sig : AcmSigs()) {
      EXPECT_TRUE(
          db.Execute("INSERT INTO Sigs VALUES ('" + sig + "')").ok());
    }

    WsqDatabase::ExecOptions opts;
    opts.on_call_error = policy;
    Stopwatch timer;
    auto r = db.Execute(
        "Select Name, Count From Sigs, WebCount Where Name = T1 "
        "Order By Name",
        opts);
    out.elapsed_micros = timer.ElapsedMicros();
    if (r.ok()) {
      out.result = std::move(r->result);
      out.stats = r->stats;
    } else {
      out.status = r.status();
    }
    out.pending_results_after = db.pump()->pending_results();
  }  // db (and its pump) destroyed BEFORE the fault service releases
  out.faults = faulty.stats();  // its hung callbacks — must be safe
  return out;
}

constexpr uint64_t kDegradedSeed = 7;

TEST(AsyncStressTest, DegradedQueryNullPadsFailedCalls) {
  DegradedRun run =
      RunDegradedSigsQuery(OnCallError::kNullPad, kDegradedSeed);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  // The fault plan actually bit: some calls hung, some hard-failed.
  ASSERT_GT(run.faults.injected_hangs, 0u);
  ASSERT_GT(run.faults.injected_permanent, 0u);
  // Every SIG is present; the failed ones carry NULL counts.
  ASSERT_EQ(run.result.rows.size(), 37u);
  size_t null_counts = 0;
  for (const Row& row : run.result.rows) {
    EXPECT_FALSE(row.value(0).is_null());  // Name came from the table
    if (row.value(1).is_null()) ++null_counts;
  }
  EXPECT_EQ(null_counts, run.stats.null_padded_tuples);
  EXPECT_GT(run.stats.null_padded_tuples, 0u);
  EXPECT_EQ(run.stats.dropped_tuples, 0u);
  EXPECT_GE(run.stats.failed_calls,
            run.faults.injected_permanent + run.faults.injected_hangs);
  // Bounded by the deadline, not by the hung engine: well under the
  // 100 ms timeout plus scheduling slack, nowhere near a hang.
  EXPECT_LT(run.elapsed_micros, 5000000);
  // Nothing left rotting in ReqPumpHash.
  EXPECT_EQ(run.pending_results_after, 0u);
}

TEST(AsyncStressTest, DegradedQueryDropsTuplesOfFailedCalls) {
  DegradedRun run =
      RunDegradedSigsQuery(OnCallError::kDropTuple, kDegradedSeed);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  ASSERT_GT(run.stats.dropped_tuples, 0u);
  // The answer is the surviving subset: dropped + returned = 37.
  EXPECT_EQ(run.result.rows.size() + run.stats.dropped_tuples, 37u);
  for (const Row& row : run.result.rows) {
    EXPECT_FALSE(row.value(1).is_null());  // survivors are complete
  }
  EXPECT_EQ(run.stats.null_padded_tuples, 0u);
  EXPECT_LT(run.elapsed_micros, 5000000);
  EXPECT_EQ(run.pending_results_after, 0u);
}

TEST(AsyncStressTest, DegradedQueryFailsUnderStrictPolicy) {
  DegradedRun run =
      RunDegradedSigsQuery(OnCallError::kFailQuery, kDegradedSeed);
  // Default semantics: the first failed call aborts the query with its
  // error; no hang, no crash, pump left clean.
  EXPECT_FALSE(run.status.ok());
  EXPECT_TRUE(IsTransient(run.status.code()) ||
              run.status.code() == StatusCode::kExecutionError)
      << run.status.ToString();
  EXPECT_LT(run.elapsed_micros, 5000000);
  EXPECT_EQ(run.pending_results_after, 0u);
}

TEST(AsyncStressTest, DegradedQueryIsDeterministicPerSeed) {
  DegradedRun first =
      RunDegradedSigsQuery(OnCallError::kNullPad, kDegradedSeed);
  DegradedRun second =
      RunDegradedSigsQuery(OnCallError::kNullPad, kDegradedSeed);
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  // Faults are keyed on request content, so two fresh runs with the
  // same seed degrade the same tuples the same way.
  ASSERT_EQ(first.result.rows.size(), second.result.rows.size());
  for (size_t i = 0; i < first.result.rows.size(); ++i) {
    EXPECT_EQ(first.result.rows[i], second.result.rows[i]) << i;
  }
  EXPECT_EQ(first.stats.null_padded_tuples,
            second.stats.null_padded_tuples);

  // And a different seed degrades a different subset (same cardinality
  // guarantees, different victims).
  DegradedRun other = RunDegradedSigsQuery(OnCallError::kNullPad, 99);
  ASSERT_TRUE(other.status.ok());
  EXPECT_EQ(other.result.rows.size(), 37u);
}

TEST(AsyncStressTest, TransientFaultsHealedByRetriesUnderDeadlines) {
  // Transient faults + retry layer + deadlines together: every call
  // eventually succeeds, so even the strict policy answers in full.
  CorpusConfig cfg;
  cfg.num_documents = 1500;
  cfg.seed = 77;
  Corpus corpus = MakePaperCorpus(cfg);
  SearchEngineConfig ecfg;
  ecfg.name = "AltaVista";
  SearchEngine engine(&corpus, ecfg);
  SimulatedSearchService::Options sopt;
  sopt.latency = LatencyModel::Fixed(500);
  SimulatedSearchService backend(&engine, sopt);

  FaultPlan plan;
  plan.seed = 13;
  plan.transient_rate = 0.4;
  plan.transient_tries = 1;
  FaultInjectingSearchService faulty(&backend, plan);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_micros = 500;
  policy.seed = 21;
  RetryingSearchService retry(&faulty, policy);

  WsqDatabase::Options dbopt;
  dbopt.pump_limits.default_timeout_micros = 2000000;
  WsqDatabase db(dbopt);
  ASSERT_TRUE(db.RegisterSearchEngine("AV", &retry, true).ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE Sigs (Name STRING)").ok());
  for (const std::string& sig : AcmSigs()) {
    ASSERT_TRUE(
        db.Execute("INSERT INTO Sigs VALUES ('" + sig + "')").ok());
  }

  auto r = db.Execute(
      "Select Name, Count From Sigs, WebCount Where Name = T1 "
      "Order By Name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result.rows.size(), 37u);
  EXPECT_GT(faulty.stats().injected_transient, 0u);
  EXPECT_GT(retry.stats().retries, 0u);
  EXPECT_EQ(retry.stats().gave_up, 0u);
  EXPECT_EQ(db.pump()->pending_results(), 0u);
}

TEST(AsyncStressTest, ProliferationStorm) {
  // 60 WebPages calls each expanding toward rank limit 15: thousands
  // of patched tuples through one ReqSync.
  DemoOptions options;
  options.corpus.num_documents = 3000;
  options.latency = LatencyModel::Fixed(500);
  DemoEnv env(options);

  auto r = env.Run(
      "Select Name, URL, Rank From States, WebPages "
      "Where Name = T1 and Rank <= 15 Order By Name, Rank");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->result.rows.size(), 300u);
  // Ranks are dense per state.
  std::map<std::string, int64_t> last_rank;
  for (const Row& row : r->result.rows) {
    const std::string& state = row.value(0).AsString();
    int64_t rank = row.value(2).AsInt();
    EXPECT_EQ(rank, last_rank[state] + 1) << state;
    last_rank[state] = rank;
  }
}

}  // namespace
}  // namespace wsq
