#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "async/req_pump.h"
#include "common/cancellation.h"
#include "common/clock.h"

// Regression suite for the governor-facing ReqPump surface: CancelCall,
// token-observing blocking waits, max_queued shedding, and the
// guarantee that a blocked consumer always wakes (no unbounded waits on
// cancelled calls or mid-wait shutdown).

namespace wsq {
namespace {

AsyncCallFn ImmediateCall(int64_t v) {
  return [v](CallCompletion done) {
    done(CallResult{Status::OK(), {Row({Value::Int(v)})}});
  };
}

AsyncCallFn DelayedCall(int64_t v, int64_t micros) {
  return [=](CallCompletion done) {
    std::thread([=] {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
      done(CallResult{Status::OK(), {Row({Value::Int(v)})}});
    }).detach();
  };
}

// A call whose fn never runs unless dispatched; used to prove queued
// calls are dropped without execution.
AsyncCallFn CountingCall(std::atomic<int>* dispatched, int64_t micros) {
  return [=](CallCompletion done) {
    ++*dispatched;
    std::thread([=] {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
      done(CallResult{Status::OK(), {}});
    }).detach();
  };
}

TEST(ReqPumpCancelTest, CancelDispatchedCallResolvesImmediately) {
  ReqPump pump;
  CallId id = pump.Register("x", DelayedCall(1, 200000));
  ASSERT_TRUE(pump.CancelCall(id));
  // The kCancelled result is in ReqPumpHash; taking it cannot block.
  Stopwatch timer;
  CallResult r = pump.TakeBlocking(id);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_LT(timer.ElapsedMicros(), 100000);
  EXPECT_EQ(pump.stats().cancelled, 1u);
  // The real completion, arriving later, must be discarded silently.
  pump.Drain();
}

TEST(ReqPumpCancelTest, CancelQueuedCallNeverDispatchesIt) {
  ReqPump::Limits limits;
  limits.max_per_destination = 1;
  ReqPump pump(limits);
  std::atomic<int> dispatched{0};
  CallId first = pump.Register("x", CountingCall(&dispatched, 50000));
  CallId queued = pump.Register("x", CountingCall(&dispatched, 50000));
  ASSERT_TRUE(pump.CancelCall(queued));
  CallResult r = pump.TakeBlocking(queued);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  CallResult f = pump.TakeBlocking(first);
  EXPECT_TRUE(f.status.ok());
  pump.Drain();
  EXPECT_EQ(dispatched.load(), 1);
  EXPECT_EQ(pump.stats().cancelled, 1u);
}

TEST(ReqPumpCancelTest, CancelReleasesDestinationSlot) {
  ReqPump::Limits limits;
  limits.max_per_destination = 1;
  ReqPump pump(limits);
  CallId hog = pump.Register("x", DelayedCall(1, 500000));
  CallId next = pump.Register("x", ImmediateCall(2));
  EXPECT_FALSE(pump.IsComplete(next));  // stuck behind the hog
  ASSERT_TRUE(pump.CancelCall(hog));
  // Cancelling the hog must free its slot so `next` dispatches now.
  CallResult r = pump.TakeBlocking(next);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rows[0].value(0).AsInt(), 2);
  pump.Drain();
}

TEST(ReqPumpCancelTest, CancelCompletedCallReturnsFalse) {
  ReqPump pump;
  CallId id = pump.Register("x", ImmediateCall(7));
  EXPECT_FALSE(pump.CancelCall(id));
  CallResult r = pump.TakeBlocking(id);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(pump.stats().cancelled, 0u);
}

TEST(ReqPumpCancelTest, CancelUnknownCallReturnsFalse) {
  ReqPump pump;
  EXPECT_FALSE(pump.CancelCall(12345));
}

// The satellite regression: a consumer blocked in TakeBlocking wakes
// with kCancelled when its query's token is cancelled from another
// thread — it must not hang until the call's natural completion.
TEST(ReqPumpCancelTest, BlockedConsumerWakesOnTokenCancel) {
  ReqPump pump;
  CancellationToken token;
  CallId id = pump.Register("x", DelayedCall(1, 2000000));
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel();
  });
  Stopwatch timer;
  CallResult r = pump.TakeBlocking(id, &token);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  // Far less than the 2 s call latency: ~20 ms cancel + poll quantum.
  EXPECT_LT(timer.ElapsedMicros(), 1000000);
  canceller.join();
  // The call itself is NOT consumed by a token-aborted wait; the Close
  // cascade cancels and reaps it.
  EXPECT_TRUE(pump.CancelCall(id));
  CallResult reaped = pump.TakeBlocking(id);
  EXPECT_EQ(reaped.status.code(), StatusCode::kCancelled);
  pump.Drain();
}

TEST(ReqPumpCancelTest, BlockedConsumerWakesOnExpiredDeadline) {
  ReqPump pump;
  CancellationToken token;
  token.SetDeadlineAfter(20000);  // 20 ms
  CallId id = pump.Register("x", DelayedCall(1, 2000000));
  Stopwatch timer;
  CallResult r = pump.TakeBlocking(id, &token);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(timer.ElapsedMicros(), 1000000);
  ASSERT_TRUE(pump.CancelCall(id));
  (void)pump.TakeBlocking(id);
  pump.Drain();
}

TEST(ReqPumpCancelTest, TakeBlockingOnUnknownIdDoesNotHang) {
  ReqPump pump;
  CallResult r = pump.TakeBlocking(999);
  EXPECT_EQ(r.status.code(), StatusCode::kInternal);
}

TEST(ReqPumpCancelTest, TakeBlockingOnAlreadyTakenIdDoesNotHang) {
  ReqPump pump;
  CallId id = pump.Register("x", ImmediateCall(1));
  EXPECT_TRUE(pump.TakeBlocking(id).status.ok());
  CallResult again = pump.TakeBlocking(id);
  EXPECT_EQ(again.status.code(), StatusCode::kInternal);
}

TEST(ReqPumpCancelTest, WaitForCompletionBeyondObservesToken) {
  ReqPump pump;
  CancellationToken token;
  // No calls registered: without the token this wait could only be
  // satisfied by a completion that will never come.
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel();
  });
  Stopwatch timer;
  pump.WaitForCompletionBeyond(pump.completion_seq(), &token);
  EXPECT_LT(timer.ElapsedMicros(), 1000000);
  canceller.join();
}

TEST(ReqPumpCancelTest, MaxQueuedShedsWithResourceExhausted) {
  ReqPump::Limits limits;
  limits.max_per_destination = 1;
  limits.max_queued = 1;
  ReqPump pump(limits);
  std::atomic<int> dispatched{0};
  CallId running = pump.Register("x", CountingCall(&dispatched, 50000));
  CallId queued = pump.Register("x", CountingCall(&dispatched, 50000));
  CallId shed = pump.Register("x", CountingCall(&dispatched, 50000));
  // The shed call resolves immediately, without dispatching.
  CallResult r = pump.TakeBlocking(shed);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(pump.TakeBlocking(running).status.ok());
  EXPECT_TRUE(pump.TakeBlocking(queued).status.ok());
  pump.Drain();
  EXPECT_EQ(dispatched.load(), 2);
  ReqPumpStats stats = pump.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.registered, 3u);
  // Ledger balance: every registered call is accounted for exactly once.
  EXPECT_EQ(stats.registered, stats.completed + stats.cancelled + stats.shed);
  EXPECT_EQ(pump.pending_results(), 0u);
}

TEST(ReqPumpCancelTest, ShedCallsDoNotBlockDrainOrDestruction) {
  ReqPump::Limits limits;
  limits.max_global = 1;
  limits.max_queued = 1;
  ReqPump pump(limits);
  CallId a = pump.Register("x", DelayedCall(1, 10000));
  CallId b = pump.Register("x", ImmediateCall(2));
  CallId c = pump.Register("x", ImmediateCall(3));  // queue full: shed
  EXPECT_EQ(pump.TakeBlocking(c).status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(pump.TakeBlocking(a).status.ok());
  EXPECT_TRUE(pump.TakeBlocking(b).status.ok());
  pump.Drain();  // must not count the shed call as outstanding
}

// Destruction while a consumer is blocked: the consumer must wake with
// kCancelled, not deadlock against the destructor.
TEST(ReqPumpCancelTest, ShutdownMidWaitWakesConsumer) {
  std::atomic<bool> woke{false};
  Status wake_status = Status::OK();
  std::thread consumer;
  {
    ReqPump::Limits limits;
    limits.max_global = 1;
    ReqPump pump(limits);
    // Occupy the only slot so the waited-on call stays queued; the hog
    // completes well after destruction begins, so the destructor drops
    // the queued call first and then drains the hog.
    (void)pump.Register("x", DelayedCall(1, 300000));
    CallId queued = pump.Register("x", ImmediateCall(2));
    consumer = std::thread([&pump, queued, &woke, &wake_status] {
      CallResult r = pump.TakeBlocking(queued);
      wake_status = r.status;
      woke = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(woke.load());
    // ~ReqPump drops the queued call (kCancelled) and wakes waiters.
  }
  consumer.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(wake_status.code(), StatusCode::kCancelled);
}

// Many threads cancelling and taking concurrently: exercises the
// CancelCall/OnComplete/TimerLoop races under TSan.
TEST(ReqPumpCancelTest, ConcurrentCancelAndCompleteIsClean) {
  ReqPump::Limits limits;
  limits.max_global = 8;
  ReqPump pump(limits);
  constexpr int kCalls = 64;
  std::vector<CallId> ids;
  ids.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    ids.push_back(pump.Register("x", DelayedCall(i, 1000 + 100 * i)));
  }
  std::vector<std::thread> cancellers;
  cancellers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    cancellers.emplace_back([&pump, &ids, t] {
      for (size_t i = t; i < ids.size(); i += 4) {
        pump.CancelCall(ids[i]);
      }
    });
  }
  for (std::thread& th : cancellers) th.join();
  for (CallId id : ids) {
    CallResult r = pump.TakeBlocking(id);
    EXPECT_TRUE(r.status.ok() ||
                r.status.code() == StatusCode::kCancelled);
  }
  pump.Drain();
  ReqPumpStats stats = pump.stats();
  EXPECT_EQ(stats.registered, static_cast<uint64_t>(kCalls));
  EXPECT_EQ(stats.registered,
            stats.completed + stats.cancelled + stats.shed);
  EXPECT_EQ(pump.pending_results(), 0u);
}

}  // namespace
}  // namespace wsq
