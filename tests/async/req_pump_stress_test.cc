// Producer/consumer stress for ReqPump under tight limits, aimed at
// the lock-and-signal paths the capability annotations protect. Run
// under -DWSQ_SANITIZE=thread; ctest label: stress.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "async/req_pump.h"
#include "common/random.h"

namespace wsq {
namespace {

/// Completes `done` from a detached thread after `delay_micros`,
/// mimicking a network round-trip.
void CompleteLater(CallCompletion done, int64_t delay_micros, int tag) {
  std::thread([done = std::move(done), delay_micros, tag] {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
    done(CallResult{Status::OK(), {Row({Value::Int(tag)})}});
  }).detach();
}

// N producer threads hammer one pump whose limits force most calls to
// queue, while a consumer concurrently drains every id with
// TakeBlocking. Short deadlines make a fraction of the calls time out
// (cancellation path) in the middle of the producers' registrations.
TEST(ReqPumpStressTest, ProducersVsBlockingConsumerWithTimeouts) {
  constexpr int kProducers = 4;
  constexpr int kCallsPerProducer = 60;
  constexpr int kTotal = kProducers * kCallsPerProducer;

  ReqPump::Limits limits;
  limits.max_global = 6;
  limits.max_per_destination = 2;
  limits.default_timeout_micros = 8000;
  ReqPump pump(limits);

  std::mutex mu;
  std::condition_variable cv;
  std::deque<CallId> ids;
  bool producers_done = false;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(1000 + p);
      const char* destinations[] = {"alpha", "beta", "gamma"};
      for (int i = 0; i < kCallsPerProducer; ++i) {
        int tag = p * kCallsPerProducer + i;
        // Mostly fast, occasionally slower than the deadline.
        int64_t delay = 100 + static_cast<int64_t>(rng.Uniform(2000));
        if (rng.Uniform(10) == 0) delay = 20000;
        CallId id = pump.Register(
            destinations[i % 3], [delay, tag](CallCompletion done) {
              CompleteLater(std::move(done), delay, tag);
            });
        {
          std::lock_guard<std::mutex> lock(mu);
          ids.push_back(id);
        }
        cv.notify_one();
      }
    });
  }

  uint64_t took_ok = 0;
  uint64_t took_deadline = 0;
  std::thread consumer([&] {
    for (int taken = 0; taken < kTotal; ++taken) {
      CallId id;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !ids.empty() || producers_done; });
        ASSERT_FALSE(ids.empty());
        id = ids.front();
        ids.pop_front();
      }
      CallResult r = pump.TakeBlocking(id);
      if (r.status.ok()) {
        ++took_ok;
      } else {
        ASSERT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
            << r.status.ToString();
        ++took_deadline;
      }
    }
  });

  for (auto& t : producers) t.join();
  {
    std::lock_guard<std::mutex> lock(mu);
    producers_done = true;
  }
  cv.notify_all();
  consumer.join();

  EXPECT_EQ(took_ok + took_deadline, static_cast<uint64_t>(kTotal));
  ReqPumpStats stats = pump.stats();
  EXPECT_EQ(stats.registered, static_cast<uint64_t>(kTotal));
  // `completed` counts every resolution, timeouts included.
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(stats.timed_out, took_deadline);
  EXPECT_LE(stats.max_in_flight, 6u);
  // Every result was taken: nothing left in ReqPumpHash.
  EXPECT_EQ(pump.pending_results(), 0u);
  // Timing ledger: at quiescence every registered call was resolved
  // exactly once, only dispatched calls accrued time, and the accrued
  // durations are sane.
  EXPECT_EQ(stats.registered, stats.completed + stats.cancelled + stats.shed);
  EXPECT_LE(stats.dispatched, stats.registered);
  EXPECT_GE(stats.queue_wait_micros_total, 0);
  // Limits force queueing (6 slots, 240 calls), so some call must have
  // measurably waited, and every dispatched call was in flight for at
  // least its simulated round-trip.
  EXPECT_GT(stats.queue_wait_micros_total, 0);
  EXPECT_GT(stats.in_flight_micros_total, 0);
}

// Polling consumer: TryTake + WaitForCompletionBeyond race against the
// producers, then Drain() settles whatever is left.
TEST(ReqPumpStressTest, PollingConsumerThenDrain) {
  constexpr int kProducers = 3;
  constexpr int kCallsPerProducer = 50;
  constexpr int kTotal = kProducers * kCallsPerProducer;

  ReqPump::Limits limits;
  limits.max_global = 8;
  ReqPump pump(limits);

  std::mutex mu;
  std::vector<CallId> ids;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(7 + p);
      for (int i = 0; i < kCallsPerProducer; ++i) {
        int64_t delay = 50 + static_cast<int64_t>(rng.Uniform(1200));
        CallId id =
            pump.Register("engine", [delay](CallCompletion done) {
              CompleteLater(std::move(done), delay, 0);
            });
        std::lock_guard<std::mutex> lock(mu);
        ids.push_back(id);
      }
    });
  }

  std::atomic<int> taken{0};
  std::thread consumer([&] {
    std::vector<CallId> pending;
    while (taken.load() < kTotal) {
      {
        std::lock_guard<std::mutex> lock(mu);
        pending.assign(ids.begin(), ids.end());
      }
      uint64_t seq = pump.completion_seq();
      bool progressed = false;
      for (CallId id : pending) {
        CallResult r;
        if (pump.TryTake(id, &r)) {
          EXPECT_TRUE(r.status.ok()) << r.status.ToString();
          std::lock_guard<std::mutex> lock(mu);
          ids.erase(std::find(ids.begin(), ids.end(), id));
          ++taken;
          progressed = true;
        }
      }
      if (!progressed && taken.load() < kTotal) {
        pump.WaitForCompletionBeyond(seq);
      }
    }
  });

  for (auto& t : producers) t.join();
  consumer.join();
  pump.Drain();

  EXPECT_EQ(taken.load(), kTotal);
  ReqPumpStats stats = pump.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(pump.in_flight(), 0);
  // Ledger balance after Drain: everything registered is accounted for.
  EXPECT_EQ(stats.registered, stats.completed + stats.cancelled + stats.shed);
  EXPECT_EQ(stats.dispatched, static_cast<uint64_t>(kTotal));
  // Every call slept >= 50 us in flight.
  EXPECT_GE(stats.in_flight_micros_total, 50 * kTotal);
  EXPECT_GE(stats.queue_wait_micros_total, 0);
}

// Destroy the pump while calls are dispatched, queued, and timing out.
// The destructor must wait for dispatched calls, cancel queued ones,
// and late completions landing after destruction must be discarded
// against the shared core without touching freed memory (the case TSan
// and ASan exist to catch).
TEST(ReqPumpStressTest, DestructionMidFlightDiscardsStragglers) {
  for (int round = 0; round < 8; ++round) {
    ReqPump::Limits limits;
    limits.max_global = 3;
    limits.default_timeout_micros = 1500;
    auto pump = std::make_unique<ReqPump>(limits);

    Rng rng(40 + round);
    for (int i = 0; i < 30; ++i) {
      // Many completions arrive well after the deadline — and, for the
      // later registrations, after the pump itself is gone.
      int64_t delay = 500 + static_cast<int64_t>(rng.Uniform(5000));
      pump->Register("slow", [delay](CallCompletion done) {
        CompleteLater(std::move(done), delay, 0);
      });
    }
    // Let a few deadlines fire, then tear down mid-flight.
    std::this_thread::sleep_for(std::chrono::microseconds(2000));
    pump.reset();
  }
  // Give the last stragglers time to land on the dead cores before the
  // test binary exits (nothing to assert — the sanitizers judge this).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

}  // namespace
}  // namespace wsq
