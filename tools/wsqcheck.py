#!/usr/bin/env python3
"""wsqcheck: AST-level semantic analysis over the WSQ/DSQ sources.

Run:  python3 tools/wsqcheck.py [--root <repo>]
                                [--compile-commands <build/compile_commands.json>]
                                [--frontend auto|clang|internal]
                                [--only check1,check2]

Where tools/wsqlint.py matches lines, wsqcheck builds a whole-program
model — classes, members and their types, every function definition
with its lock scopes and call sites — and runs semantic checks that
need lock *order*, call graphs, or whole-function context:

  lock-order            Extracts the global mutex-acquisition graph:
                        nested MutexLock scopes (including locks held
                        via WSQ_REQUIRES), WSQ_ACQUIRED_BEFORE/AFTER
                        declarations, and acquisitions reached through
                        the call graph while a lock is held. Any cycle
                        is reported as a potential deadlock with the
                        witness path for every edge. Nested acquisition
                        of the *same* mutex expression is reported as a
                        guaranteed self-deadlock.
  blocking-under-lock   Flags calls that may block — ReqPump::
                        TakeBlocking / WaitForCompletionBeyond / Drain,
                        SearchService::Execute, CondVar waits, file
                        I/O (fwrite/fflush/fsync/...), sleep_for —
                        reachable (transitively) while a MutexLock is
                        alive. A CondVar wait releases the mutex it is
                        given, so it is flagged only when *another*
                        lock stays held across the wait.
  cancel-blind-wait     Semantic version of wsqlint's check: an
                        untimed CondVar::Wait in a function whose whole
                        body (not a +/-6 line window) never consults a
                        CancellationToken / shutdown / stop flag.
  unbounded-op-growth   Semantic version of wsqlint's check: an
                        OpenImpl/NextImpl body in src/exec growing a
                        container while the *enclosing function* never
                        touches the memory-budget API.
  deadline-blind-submit Every SubmitAsync call site must clamp its
                        timeout by the query's remaining budget: the
                        enclosing function must reference
                        RemainingMicros.
  status-discard        Discarded Status/Result call results that
                        escape [[nodiscard]] through a (void) cast or
                        a ternary expression statement, plus bare call
                        statements the compiler misses. The sanctioned
                        discard is WSQ_IGNORE_STATUS(expr).
  stale-suppression     Any `wsqcheck: allow(...)` comment that no
                        longer suppresses a finding is itself an error,
                        so suppressions cannot rot after refactors.

Suppressions: `// wsqcheck: allow(<check>): <one-line justification>`
on the offending line or the line directly above. blocking-under-lock
additionally accepts the comment anchored at the *mutex member
declaration*: that reads as "blocking under this (and only this) lock
is the design" — e.g. a mutex that serializes a file handle — and
suppresses findings whose every held lock carries such an anchor.
For the two checks shared with wsqlint (cancel-blind-wait,
unbounded-op-growth) an existing `wsqlint: allow(...)` comment is
honored too, so one anchored justification covers both tools.

Frontends: with --frontend clang (the CI configuration) the real AST
of every TU in compile_commands.json is parsed via libclang
(clang.cindex); class/member/parameter types come from the compiler.
When libclang is unavailable, --frontend clang exits 3 with a loud
SKIP (never a silent pass). The default --frontend auto falls back to
the built-in internal frontend: a self-contained C++ tokenizer and
structural parser that recovers the same program model (classes,
members, function bodies, lock scopes, call chains) with heuristic
type resolution. Both frontends feed the identical analysis core.

Exit status: 0 clean, 1 findings, 2 usage/setup error, 3 skipped
(--frontend clang without libclang).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import shlex
import sys

CHECKS = (
    "lock-order",
    "blocking-under-lock",
    "cancel-blind-wait",
    "unbounded-op-growth",
    "deadline-blind-submit",
    "status-discard",
    "stale-suppression",
)

# Checks that also exist in tools/wsqlint.py: an anchored
# `wsqlint: allow(...)` is honored for these so one justification
# covers both tools.
SHARED_WITH_WSQLINT = {"cancel-blind-wait", "unbounded-op-growth"}

# Known-blocking free functions / std calls, matched by the last name
# of the call chain.
HARD_BLOCKING_CALLS = {
    "fsync", "fdatasync", "fwrite", "fread", "fflush", "fopen", "fclose",
    "fseek", "ftell", "fgets", "fputs", "rename", "unlink",
    "sleep_for", "sleep_until", "usleep", "nanosleep", "system",
}

# Known-blocking methods, matched as (class-qname-suffix, method).
# None matches any receiver class.
HARD_BLOCKING_METHODS = (
    (None, "TakeBlocking"),
    (None, "WaitForCompletionBeyond"),
    ("ReqPump", "Drain"),
    ("SearchService", "Execute"),
    (None, "join"),  # std::thread::join
)

# Identifiers whose presence marks a function as cancellation-aware
# (same vocabulary as wsqlint's CANCEL_AWARE, applied to the whole
# enclosing function instead of a line window).
CANCEL_AWARE = re.compile(r"shutdown|stop|cancel|token", re.I)

# Memory-budget API surface (common/memory.h + ReqSync's WaitForRoom).
BUDGET_API = {
    "TryAdd", "ForceAdd", "TryReserve", "ForceReserve",
    "MemoryReservation", "WaitForRoom", "mem_",
}

GROWTH_METHODS = {
    "push_back", "emplace_back", "emplace", "try_emplace", "insert",
}

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "throw", "case", "goto", "do", "else", "co_return",
    "co_await", "static_assert", "alignof", "decltype", "assert",
}


class Finding:
    def __init__(self, path, line, check, message, anchors=None):
        self.path = str(path)
        self.line = line
        self.check = check
        self.message = message
        # (path, line) pairs where an allow() comment suppresses this
        # finding, in addition to the finding's own site.
        self.anchors = anchors or []

    def key(self):
        return (self.path, self.line, self.check, self.message)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


# --------------------------------------------------------------------
# Suppressions
# --------------------------------------------------------------------

ALLOW_RE = re.compile(
    r"(wsqcheck|wsqlint):\s*allow\(([a-z][a-z0-9-]*)\)")


class Suppression:
    def __init__(self, path, line, tool, check):
        self.path = str(path)
        self.line = line
        self.tool = tool
        self.check = check
        self.used = False


class Suppressions:
    """All allow() comments in the scanned tree, with use tracking."""

    def __init__(self, root):
        self.root = pathlib.Path(root).resolve()
        self.by_site = {}   # (root-relative posix path, line) -> [Sup]
        self.all = []

    def _rel(self, path):
        try:
            return pathlib.Path(path).resolve().relative_to(
                self.root).as_posix()
        except ValueError:
            return str(path)

    def scan_file(self, path):
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            return
        rel = self._rel(path)
        for i, raw_line in enumerate(text.splitlines(), start=1):
            for m in ALLOW_RE.finditer(raw_line):
                sup = Suppression(rel, i, m.group(1), m.group(2))
                self.by_site.setdefault((sup.path, i), []).append(sup)
                self.all.append(sup)

    def active(self, check, anchors):
        """True if any anchor (path, line) carries a matching allow()
        on that line or the line above. Marks the suppression used."""
        tools = ("wsqcheck", "wsqlint") if check in SHARED_WITH_WSQLINT \
            else ("wsqcheck",)
        hit = None
        for (path, line) in anchors:
            for probe in (line, line - 1):
                for sup in self.by_site.get((str(path), probe), []):
                    if sup.check == check and sup.tool in tools:
                        hit = sup
                        sup.used = True
        return hit is not None

    def stale(self):
        """wsqcheck-tool suppressions that never fired (wsqlint's own
        comments are audited by wsqlint itself)."""
        out = []
        for sup in self.all:
            if sup.tool != "wsqcheck" or sup.used:
                continue
            if sup.check not in CHECKS:
                out.append(Finding(
                    sup.path, sup.line, "stale-suppression",
                    f"allow({sup.check}) names an unknown wsqcheck "
                    f"check; known: {', '.join(CHECKS)}"))
            else:
                out.append(Finding(
                    sup.path, sup.line, "stale-suppression",
                    f"allow({sup.check}) no longer suppresses "
                    "anything on this line; the check would not fire "
                    "here — delete the comment (it rots into false "
                    "confidence after refactors)"))
        return out


# --------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------

PUNCT3 = ("<<=", ">>=", "...", "->*")
PUNCT2 = ("::", "->", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
          "%=", "&=", "|=", "^=", "&&", "||", "<<", ">>", "++", "--")

ID_START = set("abcdefghijklmnopqrstuvwxyz"
               "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
ID_CONT = ID_START | set("0123456789")


class Tok:
    __slots__ = ("kind", "val", "line")

    def __init__(self, kind, val, line):
        self.kind = kind    # id | num | str | chr | p
        self.val = val
        self.line = line

    def __repr__(self):
        return f"{self.kind}:{self.val}@{self.line}"


def tokenize(text):
    """C++ lexer: skips comments and preprocessor directives, keeps
    everything else with line numbers."""
    toks = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            seg = text[i:(j + 2 if j >= 0 else n)]
            line += seg.count("\n")
            i = n if j < 0 else j + 2
            continue
        if c == "#":
            # Preprocessor directive: skip, honoring continuations.
            while i < n:
                k = text.find("\n", i)
                if k < 0:
                    i = n
                    break
                if text[k - 1] == "\\":
                    line += 1
                    i = k + 1
                    continue
                i = k
                break
            continue
        if c == '"':
            # Raw string?
            if toks and toks[-1].kind == "id" and \
                    toks[-1].val in ("R", "LR", "u8R", "uR", "UR"):
                toks.pop()
                p = text.find("(", i)
                delim = text[i + 1:p]
                end = text.find(")" + delim + '"', p)
                end = n if end < 0 else end + len(delim) + 2
                seg = text[i:end]
                toks.append(Tok("str", seg, line))
                line += seg.count("\n")
                i = end
                continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            toks.append(Tok("str", text[i:j + 1], line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            toks.append(Tok("chr", text[i:j + 1], line))
            i = j + 1
            continue
        if c in ID_START:
            j = i + 1
            while j < n and text[j] in ID_CONT:
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i + 1
            while j < n and (text[j] in ID_CONT or text[j] in ".'"):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        three = text[i:i + 3]
        if three in PUNCT3:
            toks.append(Tok("p", three, line))
            i += 3
            continue
        two = text[i:i + 2]
        if two in PUNCT2:
            toks.append(Tok("p", two, line))
            i += 2
            continue
        toks.append(Tok("p", c, line))
        i += 1
    return toks


def match_paren(toks, i, open_p="(", close_p=")"):
    """toks[i] is `open_p`; returns index just past its match."""
    depth = 0
    n = len(toks)
    while i < n:
        v = toks[i].val
        if toks[i].kind == "p":
            if v == open_p:
                depth += 1
            elif v == close_p:
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


# --------------------------------------------------------------------
# Program model
# --------------------------------------------------------------------

class ClassInfo:
    def __init__(self, qname, path, line):
        self.qname = qname          # enclosing-class chain, no namespaces
        self.path = str(path)
        self.line = line
        self.members = {}           # field name -> core type string|None
        self.mutexes = {}           # mutex field name -> decl line
        self.method_returns = {}    # method name -> 'Status'|'Result'|None
        self.methods = set()        # declared method names
        # (field, 'before'|'after', other-expr tokens, line)
        self.declared_edges = []

    def simple(self):
        return self.qname.rsplit("::", 1)[-1]


class LockEvent:
    def __init__(self, ident, raw, line, anchor):
        self.ident = ident          # 'Class::field' | '?file::field'
        self.raw = raw              # source expression text
        self.line = line
        self.anchor = anchor        # mutex decl (path, line) or None
        self.held = []              # identities held when acquired
        self.held_raw = []          # raw exprs held when acquired


class CallEvent:
    def __init__(self, chain, line, held, held_anchors):
        self.chain = chain          # [(sep, name)], sep in {None,'.','->','::'}
        self.line = line
        self.held = held            # identity list at call
        self.held_anchors = held_anchors   # [(ident, anchor)]
        self.resolved = None        # qname string or None
        self.last = chain[-1][1]


class WaitEvent:
    def __init__(self, line, timed, released, held, held_anchors):
        self.line = line
        self.timed = timed
        self.released = released    # identity of the mutex argument
        self.held = held
        self.held_anchors = held_anchors


class GrowthEvent:
    def __init__(self, line, method):
        self.line = line
        self.method = method


class DiscardEvent:
    def __init__(self, kind, chains, line):
        self.kind = kind            # 'bare' | 'void' | 'ternary'
        self.chains = chains        # list of call chains
        self.line = line


class FunctionInfo:
    def __init__(self, qname, cls, path, line):
        self.qname = qname          # e.g. 'ReqPump::Register'
        self.cls = cls              # owning ClassInfo qname or None
        self.path = str(path)
        self.line = line
        self.params = {}            # param name -> core type|None
        self.requires = []          # resolved identities from WSQ_REQUIRES
        self.idents = set()         # every identifier in the body
        self.locks = []
        self.calls = []
        self.waits = []
        self.growths = []
        self.discards = []
        self.is_lambda = False
        # Filled by the analysis:
        self.direct_acquires = {}   # ident -> LockEvent (first)
        self.acquires_star = {}     # ident -> witness chain string
        self.block_info = None      # None|('hard',why)|('cv',ident,why)

    def name(self):
        return self.qname.rsplit("::", 1)[-1]


class Program:
    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.classes = {}           # qname -> ClassInfo
        self.functions = []         # every FunctionInfo (defs may repeat
                                    # for overloads; analysis iterates all)
        self.by_qname = {}          # qname -> [FunctionInfo]
        self.methods_of = {}        # simple method name -> set(class qnames)

    def add_class(self, ci):
        old = self.classes.get(ci.qname)
        if old is None:
            self.classes[ci.qname] = ci
            return ci
        # Merge (same header parsed in several TUs under libclang).
        old.members.update(ci.members)
        old.mutexes.update(ci.mutexes)
        old.method_returns.update(ci.method_returns)
        old.methods.update(ci.methods)
        seen = {(e[0], e[1], e[3]) for e in old.declared_edges}
        for e in ci.declared_edges:
            if (e[0], e[1], e[3]) not in seen:
                old.declared_edges.append(e)
        return old

    def add_function(self, fi):
        self.functions.append(fi)
        self.by_qname.setdefault(fi.qname, []).append(fi)

    def index(self):
        for ci in self.classes.values():
            for mname in ci.methods | set(ci.method_returns):
                self.methods_of.setdefault(mname, set()).add(ci.qname)
        for fi in self.functions:
            if fi.cls:
                self.methods_of.setdefault(fi.name(), set()).add(fi.cls)

    def find_class(self, name):
        """Resolve a core-type string to a ClassInfo (exact qname,
        unique '::'-suffix, or unique simple name)."""
        if not name:
            return None
        if name in self.classes:
            return self.classes[name]
        suffix = [c for q, c in self.classes.items()
                  if q.endswith("::" + name)]
        if len(suffix) == 1:
            return suffix[0]
        simple = [c for c in self.classes.values() if c.simple() == name]
        if len(simple) == 1:
            return simple[0]
        return None


WRAPPER_TEMPLATES = {"shared_ptr", "unique_ptr", "weak_ptr", "optional",
                     "atomic", "reference_wrapper"}
TYPE_QUALIFIERS = {"const", "mutable", "static", "constexpr", "inline",
                   "volatile", "typename", "struct", "class", "explicit",
                   "virtual", "friend", "thread_local"}


def extract_core_type(toks):
    """Best-effort 'core' class name from a declaration's type tokens:
    strips qualifiers/pointers/refs, looks through smart-pointer
    templates, drops the wsq:: / std:: namespace prefix."""
    ids = []
    i, n = 0, len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.val in TYPE_QUALIFIERS:
            i += 1
            continue
        break
    # Collect the first identifier chain.
    chain = []
    while i < n and toks[i].kind == "id":
        chain.append(toks[i].val)
        if i + 1 < n and toks[i + 1].val == "::":
            i += 2
        else:
            i += 1
            break
    if not chain:
        return None
    if i < n and toks[i].val == "<":
        # Template: look through known wrappers, else give up on args.
        if chain[-1] in WRAPPER_TEMPLATES:
            j = match_angle(toks, i)
            return extract_core_type(toks[i + 1:j - 1])
        return None if chain[-1] not in ("vector", "deque") else None
    while chain and chain[0] in ("std", "wsq"):
        chain.pop(0)
    return "::".join(chain) if chain else None


def match_angle(toks, i):
    """toks[i] is '<'; returns index just past the matching '>'.
    Treats '>>' as two closes."""
    depth = 0
    n = len(toks)
    while i < n:
        v = toks[i].val
        if toks[i].kind == "p":
            if v == "<":
                depth += 1
            elif v == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif v == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif v in (";", "{"):
                return i  # not a template after all
        i += 1
    return n


def parse_chain(toks, i):
    """Parses a postfix id chain `a::b->c.d` starting at toks[i].
    Returns (chain, next_index) where chain is [(sep, name)], or
    (None, i) if toks[i] does not start a chain."""
    if i >= len(toks) or toks[i].kind != "id":
        return None, i
    chain = [(None, toks[i].val)]
    i += 1
    while i + 1 < len(toks) and toks[i].kind == "p" and \
            toks[i].val in ("::", ".", "->") and toks[i + 1].kind == "id":
        chain.append((toks[i].val, toks[i + 1].val))
        i += 2
    return chain, i


# --------------------------------------------------------------------
# Body scanner (shared by both frontends)
# --------------------------------------------------------------------

LAMBDA_PRECEDERS = {"(", ",", "=", "return", "{", ";", "&&", "||", "!",
                    "?", ":", "co_return", "case"}


class Resolver:
    """Type/identity resolution for one function, over the program's
    class registry. Both frontends use it; the clang frontend seeds
    params/members with compiler-accurate types."""

    def __init__(self, program, func):
        self.program = program
        self.func = func

    def _enclosing_chain(self):
        """Innermost-first chain of enclosing ClassInfos."""
        out = []
        q = self.func.cls
        while q:
            ci = self.program.classes.get(q)
            if ci:
                out.append(ci)
            q = q.rsplit("::", 1)[0] if "::" in q else None
        return out

    def type_of_name(self, name):
        """Core type of a parameter or member visible in the function."""
        if name == "this" and self.func.cls:
            return self.func.cls
        t = self.func.params.get(name)
        if t:
            return t
        for ci in self._enclosing_chain():
            if name in ci.members:
                return ci.members[name]
        return None

    def class_of_chain(self, chain):
        """Resolves the receiver prefix of a call/field chain to a
        ClassInfo, following member types link by link."""
        if not chain:
            return None
        first_sep, first = chain[0]
        if first_sep is None and chain and all(
                sep in (None, "::") for sep, _ in chain):
            # Fully scoped chain: Class::Inner::...
            ci = self.program.find_class(
                "::".join(name for _, name in chain))
            if ci:
                return ci
        ci = None
        t = self.type_of_name(first)
        if t:
            ci = self.program.find_class(t)
        elif first_sep is None:
            ci = self.program.find_class(first)  # static: Class::f
        for sep, name in chain[1:]:
            if ci is None:
                return None
            if sep == "::":
                ci = self.program.find_class(ci.qname + "::" + name) or \
                    self.program.find_class(name)
                continue
            t = ci.members.get(name)
            ci = self.program.find_class(t) if t else None
        return ci

    def mutex_identity(self, toks):
        """Resolves a mutex expression (`&core->mu`, `mu_`, `s.mu`) to
        ('Class::field', (path, line)) — or a file-local '?stem::field'
        pseudo-identity with no anchor when the receiver can't be
        typed."""
        toks = [t for t in toks if not (t.kind == "p" and
                                        t.val in ("&", "(", ")", "*"))]
        chain, i = parse_chain(toks, 0)
        if not chain or i < len(toks):
            return None, None
        field = chain[-1][1]
        owner = None
        if len(chain) == 1:
            for ci in self._enclosing_chain():
                if field in ci.members or field in ci.mutexes:
                    owner = ci
                    break
        else:
            owner = self.class_of_chain(chain[:-1])
        if owner is not None and (field in owner.mutexes or
                                  field in owner.members):
            anchor = (owner.path, owner.mutexes.get(field))
            return (owner.qname + "::" + field,
                    anchor if anchor[1] else None)
        stem = pathlib.Path(self.func.path).stem
        return f"?{stem}::{field}", None


class _Guard:
    def __init__(self, var, ident, raw, depth, anchor):
        self.var = var
        self.ident = ident
        self.raw = raw
        self.depth = depth
        self.anchor = anchor
        self.active = True


def scan_body(func, toks, program, out_functions):
    """Walks a function body's tokens, populating `func`'s events.
    Lambda bodies become separate FunctionInfos (their code runs later,
    usually on another thread — the enclosing lock context does not
    apply) appended to out_functions."""
    res = Resolver(program, func)
    guards = []
    for ident in func.requires:
        g = _Guard("<requires>", ident[0], ident[2], 0, ident[1])
        guards.append(g)
    depth = 1
    pdepth = 0
    stmt_start = 0
    i, n = 0, len(toks)

    def held():
        return [g.ident for g in guards if g.active and g.ident]

    def held_anchors():
        return [(g.ident, g.anchor) for g in guards
                if g.active and g.ident]

    def held_raw():
        return [g.raw for g in guards if g.active]

    while i < n:
        t = toks[i]
        if t.kind == "id":
            func.idents.add(t.val)
        if t.kind == "p":
            if t.val == "{":
                depth += 1
                stmt_start = i + 1
                i += 1
                continue
            if t.val == "}":
                guards[:] = [g for g in guards if g.depth < depth]
                depth -= 1
                stmt_start = i + 1
                i += 1
                continue
            if t.val == "(":
                pdepth += 1
            elif t.val == ")":
                pdepth = max(0, pdepth - 1)
            elif t.val == ";" and pdepth == 0:
                _scan_statement(func, toks, stmt_start, i, res)
                stmt_start = i + 1
                i += 1
                continue
            elif t.val == "[":
                prev = toks[i - 1] if i > 0 else None
                if prev is None or (prev.val in LAMBDA_PRECEDERS):
                    j = _try_lambda(func, toks, i, program, out_functions)
                    if j > i:
                        i = j
                        continue
            i += 1
            continue

        # MutexLock guard declaration: MutexLock var(&expr);
        if t.val == "MutexLock" and i + 1 < n:
            j = i + 1
            if toks[j].kind == "id" and j + 1 < n and \
                    toks[j + 1].val == "(":
                var = toks[j].val
                end = match_paren(toks, j + 1)
                expr = toks[j + 2:end - 1]
                ident, anchor = res.mutex_identity(expr)
                raw = render(expr)
                ev = LockEvent(ident, raw, t.line, anchor)
                ev.held = held()
                ev.held_raw = held_raw()
                func.locks.append(ev)
                guards.append(_Guard(var, ident, raw, depth, anchor))
                i = end
                continue

        # Guard Unlock()/Lock() toggles.
        if t.val in ("Unlock", "Lock") and i >= 2 and \
                toks[i - 1].val in (".",) and toks[i - 2].kind == "id":
            var = toks[i - 2].val
            for g in guards:
                if g.var == var:
                    g.active = (t.val == "Lock")
            i += 1
            continue

        # Call chains.
        if t.val not in CONTROL_KEYWORDS and \
                not (i > 0 and toks[i - 1].kind == "p" and
                     toks[i - 1].val in (".", "->", "::")):
            chain, j = parse_chain(toks, i)
            if chain and j < n and toks[j].val == "(":
                last = chain[-1][1]
                if last in ("Wait", "WaitForMicros"):
                    end = match_paren(toks, j)
                    args = split_args(toks[j + 1:end - 1])
                    released, _ = res.mutex_identity(args[0]) \
                        if args else (None, None)
                    func.waits.append(WaitEvent(
                        t.line, last == "WaitForMicros", released,
                        held(), held_anchors()))
                elif last in GROWTH_METHODS and len(chain) > 1:
                    func.growths.append(GrowthEvent(t.line, last))
                    ev = CallEvent(chain, t.line, held(), held_anchors())
                    func.calls.append(ev)
                else:
                    ev = CallEvent(chain, t.line, held(), held_anchors())
                    func.calls.append(ev)
                for _, name in chain:
                    func.idents.add(name)
                i = j + 1  # descend into the args normally
                continue
        i += 1
    _scan_statement(func, toks, stmt_start, n, res)


def _try_lambda(func, toks, i, program, out_functions):
    """toks[i] is '[' in a lambda-capture position. If a lambda body
    follows, scan it as a separate FunctionInfo and return the index
    past its closing brace; else return i."""
    j = match_paren(toks, i, "[", "]")
    if j >= len(toks):
        return i
    if toks[j].val == "(":
        j = match_paren(toks, j)
    while j < len(toks) and (
            (toks[j].kind == "id" and
             toks[j].val in ("mutable", "noexcept", "constexpr")) or
            toks[j].val == "->"):
        if toks[j].val == "->":
            j += 1
            while j < len(toks) and toks[j].val not in ("{", ";"):
                j += 1
            break
        j += 1
    if j >= len(toks) or toks[j].val != "{":
        return i
    end = match_paren(toks, j, "{", "}")
    sub = FunctionInfo(f"{func.qname}::<lambda@{toks[i].line}>",
                       func.cls, func.path, toks[i].line)
    sub.params = dict(func.params)
    sub.is_lambda = True
    body = toks[j + 1:end - 1]
    scan_body(sub, body, program, out_functions)
    out_functions.append(sub)
    return end


def _scan_statement(func, toks, lo, hi, res):
    """Classifies one statement for status-discard."""
    if hi - lo < 2:
        return
    s = toks[lo:hi]
    # Strip leading labels (case x: / public: etc.) conservatively.
    if s[0].kind != "id":
        if not (s[0].kind == "p" and s[0].val == "("):
            return
    first = s[0]
    if first.kind == "id" and first.val in CONTROL_KEYWORDS:
        return
    # Assignment anywhere at paren-depth 0 disqualifies.
    pd = 0
    has_q = False
    q_at = colon_at = -1
    for k, t in enumerate(s):
        if t.kind == "p":
            if t.val == "(":
                pd += 1
            elif t.val == ")":
                pd -= 1
            elif pd == 0 and t.val == "=":
                return
            elif pd == 0 and t.val == "?":
                has_q, q_at = True, k
            elif pd == 0 and t.val == ":" and has_q and colon_at < 0:
                colon_at = k
    if s[-1].val != ")":
        return
    # (void)chain(...) cast discard.
    if s[0].val == "(" and len(s) > 3 and s[1].val == "void" and \
            s[2].val == ")":
        chain, j = parse_chain(s, 3)
        if chain and j < len(s) and s[j].val == "(":
            func.discards.append(
                DiscardEvent("void", [chain], s[0].line))
        return
    if has_q and colon_at > 0:
        arm1, _ = parse_chain(s, q_at + 1)
        arm2, _ = parse_chain(s, colon_at + 1)
        arms = [a for a in (arm1, arm2) if a]
        if arms:
            func.discards.append(
                DiscardEvent("ternary", arms, s[0].line))
        return
    chain, j = parse_chain(s, 0)
    if chain and j < len(s) and s[j].val == "(" and \
            match_paren(s, j) == len(s):
        func.discards.append(DiscardEvent("bare", [chain], s[0].line))


def split_args(toks):
    """Splits argument tokens at top-level commas."""
    out, cur, depth = [], [], 0
    for t in toks:
        if t.kind == "p":
            if t.val in ("(", "[", "{"):
                depth += 1
            elif t.val in (")", "]", "}"):
                depth -= 1
            elif t.val == "," and depth == 0:
                out.append(cur)
                cur = []
                continue
        cur.append(t)
    if cur:
        out.append(cur)
    return out


def render(toks):
    return " ".join(t.val for t in toks)


# --------------------------------------------------------------------
# Internal frontend: structural parse without libclang
# --------------------------------------------------------------------

WSQ_MACRO = re.compile(r"^WSQ_[A-Z_]+$")
SCOPE_TERMINATORS = {"WSQ_GUARDED_BY", "WSQ_PT_GUARDED_BY",
                     "WSQ_ACQUIRED_BEFORE", "WSQ_ACQUIRED_AFTER"}


class InternalFrontend:
    """Self-contained structural parser: recovers classes, members,
    method declarations, and function definitions from the token
    stream. Heuristic where libclang would be exact (receiver typing,
    overload resolution) — resolution failures degrade to skipped
    propagation, never to crashes."""

    def __init__(self, program):
        self.program = program
        self._pending = []   # (FunctionInfo, body token slice)

    def add_file(self, path):
        try:
            text = pathlib.Path(path).read_text(
                encoding="utf-8", errors="replace")
        except OSError:
            return
        toks = tokenize(text)
        self._parse_scope(path, toks, 0, len(toks), [])

    def finish(self):
        """Scan all collected function bodies (classes are complete)."""
        extra = []
        for fi, body in self._pending:
            self._resolve_requires(fi)
            scan_body(fi, body, self.program, extra)
            self.program.add_function(fi)
        for fi in extra:
            self.program.add_function(fi)
        self._pending = []

    def _resolve_requires(self, fi):
        res = Resolver(self.program, fi)
        resolved = []
        for expr in fi.requires:
            ident, anchor = res.mutex_identity(expr)
            if ident:
                resolved.append((ident, anchor, render(expr)))
        fi.requires = resolved

    # -- structural descent ------------------------------------------

    def _parse_scope(self, path, toks, i, end, class_stack):
        """Parses declarations between toks[i:end] at namespace/class/
        global scope."""
        while i < end:
            head_start = i
            # Read up to ';' or '{' at paren depth 0.
            pd = 0
            term = None
            while i < end:
                t = toks[i]
                if t.kind == "p":
                    if t.val == "(":
                        pd += 1
                    elif t.val == ")":
                        pd = max(0, pd - 1)
                    elif pd == 0 and t.val in (";", "{"):
                        term = t.val
                        break
                i += 1
            if term is None:
                return
            head = toks[head_start:i]
            if term == ";":
                if class_stack:
                    self._member_decl(path, head, class_stack)
                i += 1
                continue
            # term == '{'
            body_start = i + 1
            body_end = match_paren(toks, i, "{", "}")
            kw = head[0].val if head else ""
            if kw == "namespace" or (kw == "extern" and len(head) > 1):
                self._parse_scope(path, toks, body_start, body_end - 1,
                                  class_stack)
            elif self._is_class_head(head):
                name = self._class_name(head)
                if name:
                    qname = "::".join(
                        [c.qname for c in class_stack[-1:]] + [name]) \
                        if class_stack else name
                    ci = ClassInfo(qname, path, head[0].line)
                    ci = self.program.add_class(ci)
                    self._parse_scope(path, toks, body_start,
                                      body_end - 1, class_stack + [ci])
            elif kw == "enum":
                pass
            else:
                fi = self._function_head(path, head, class_stack)
                if fi is not None:
                    self._pending.append(
                        (fi, toks[body_start:body_end - 1]))
            i = body_end
            # Skip a trailing ';' (class/struct definitions).
            if i < end and toks[i].val == ";":
                i += 1

    @staticmethod
    def _is_class_head(head):
        kws = [t.val for t in head if t.kind == "id"]
        if not kws or kws[0] == "template":
            # template<...> class/struct — still a class definition.
            kws = [v for v in kws if v in ("class", "struct", "union")]
            return bool(kws)
        if kws[0] not in ("class", "struct", "union"):
            return False
        # `struct X x = {...}` style variable definitions carry '='.
        return not any(t.val == "=" for t in head)

    @staticmethod
    def _class_name(head):
        i = 0
        n = len(head)
        # Skip template<...> prefix.
        if head[0].val == "template":
            i = 1
            if i < n and head[i].val == "<":
                i = match_angle(head, i)
        while i < n and head[i].val not in ("class", "struct", "union"):
            i += 1
        i += 1
        while i < n:
            t = head[i]
            if t.kind == "id":
                if WSQ_MACRO.match(t.val) or t.val == "alignas":
                    if i + 1 < n and head[i + 1].val == "(":
                        i = match_paren(head, i + 1)
                        continue
                    i += 1
                    continue
                if t.val == "final":
                    i += 1
                    continue
                # First plain identifier is the class name (a ':' base
                # clause or '{' follows).
                return t.val
            i += 1
        return None

    def _member_decl(self, path, head, class_stack):
        """One `...;` declaration inside a class body: records mutex
        members, member types, method return types, and declared
        ACQUIRED_BEFORE/AFTER edges."""
        ci = class_stack[-1]
        if not head:
            return
        # Strip access specifiers that precede on the same statement
        # (public: etc. end with ':' so they rarely land here).
        toks = head
        ids = [t.val for t in toks if t.kind == "id"]
        if not ids or ids[0] in ("using", "typedef", "friend",
                                 "template", "static_assert"):
            return
        # Find the first '(' at angle depth 0 to split member/method.
        ad = 0
        paren_at = -1
        stop_at = len(toks)
        for k, t in enumerate(toks):
            if t.kind == "id" and t.val in SCOPE_TERMINATORS:
                stop_at = k
                break
            if t.kind == "p":
                if t.val == "<":
                    ad += 1
                elif t.val == ">":
                    ad = max(0, ad - 1)
                elif t.val == ">>":
                    ad = max(0, ad - 2)
                elif t.val == "(" and ad == 0:
                    paren_at = k
                    break
                elif t.val == "=" and ad == 0:
                    stop_at = k
                    break
        if paren_at > 0:
            self._method_decl(ci, toks, paren_at)
            return
        # Member variable: name = last id before stop_at.
        name_tok = None
        for k in range(stop_at - 1, -1, -1):
            if toks[k].kind == "id":
                name_tok = (k, toks[k])
                break
        if name_tok is None:
            return
        k, nt = name_tok
        type_toks = toks[:k]
        ids_t = [t.val for t in type_toks if t.kind == "id"]
        if "Mutex" in ids_t and "MutexLock" not in ids_t:
            ci.mutexes[nt.val] = nt.line
            ci.members[nt.val] = "Mutex"
        else:
            ci.members.setdefault(nt.val, extract_core_type(type_toks))
        # Declared lock-order edges on this member.
        j = stop_at
        while j < len(toks):
            t = toks[j]
            if t.kind == "id" and t.val in ("WSQ_ACQUIRED_BEFORE",
                                            "WSQ_ACQUIRED_AFTER") and \
                    j + 1 < len(toks) and toks[j + 1].val == "(":
                end = match_paren(toks, j + 1)
                for arg in split_args(toks[j + 2:end - 1]):
                    ci.declared_edges.append(
                        (nt.val,
                         "before" if t.val.endswith("BEFORE")
                         else "after", arg, t.line))
                j = end
                continue
            j += 1

    def _method_decl(self, ci, toks, paren_at):
        """Method declaration: record name, return kind, annotations."""
        name_tok = None
        k = paren_at - 1
        if k >= 0 and toks[k].kind == "id":
            name_tok = toks[k]
        if name_tok is None:
            return
        ci.methods.add(name_tok.val)
        ret_ids = [t.val for t in toks[:k] if t.kind == "id"]
        if "Status" in ret_ids:
            ci.method_returns[name_tok.val] = "Status"
        elif "Result" in ret_ids:
            ci.method_returns[name_tok.val] = "Result"
        else:
            ci.method_returns.setdefault(name_tok.val, None)

    def _function_head(self, path, head, class_stack):
        """Classifies a `...) ... {` head as a function definition and
        builds its FunctionInfo (params, name, requires)."""
        if not head:
            return None
        if head[0].kind == "id" and head[0].val in CONTROL_KEYWORDS:
            return None
        # Locate the parameter list: the first '(' at angle depth 0
        # preceded by an identifier (or operator).
        ad = 0
        paren_at = -1
        for k, t in enumerate(head):
            if t.kind == "p":
                if t.val == "<":
                    ad += 1
                elif t.val == ">":
                    ad = max(0, ad - 1)
                elif t.val == ">>":
                    ad = max(0, ad - 2)
                elif t.val == "=" and ad == 0:
                    return None  # initialized variable, not a function
                elif t.val == "(" and ad == 0:
                    if k > 0 and (head[k - 1].kind == "id" or
                                  head[k - 1].val in ("]", ">")):
                        paren_at = k
                    break
        if paren_at < 1:
            return None
        params_end = match_paren(head, paren_at)
        # Function name: the id chain ending right before '('.
        chain_ids = [head[paren_at - 1].val]
        k = paren_at - 2
        while k >= 1 and head[k].val == "::" and head[k - 1].kind == "id":
            chain_ids.append(head[k - 1].val)
            k -= 2
        chain_ids.reverse()
        if chain_ids[-1] == "operator":
            return None
        if head[paren_at - 2].val == "operator" if paren_at >= 2 else False:
            chain_ids = ["operator" + chain_ids[-1]]
        cls_qname = None
        if class_stack:
            prefix = [class_stack[-1].qname] + chain_ids[:-1]
            cls_qname = "::".join(prefix)
            qname = "::".join(prefix + chain_ids[-1:])
        elif len(chain_ids) > 1:
            cls_qname = "::".join(chain_ids[:-1])
            qname = "::".join(chain_ids)
        else:
            qname = chain_ids[0]
        if cls_qname is not None:
            ci = self.program.find_class(cls_qname)
            cls_qname = ci.qname if ci else cls_qname
        fi = FunctionInfo(qname, cls_qname, path, head[paren_at].line)
        # Parameters.
        for arg in split_args(head[paren_at + 1:params_end - 1]):
            if not arg:
                continue
            pname = None
            for t in reversed(arg):
                if t.kind == "id":
                    pname = t
                    break
            if pname is None or pname.val in ("void",):
                continue
            idx = arg.index(pname)
            fi.params[pname.val] = extract_core_type(arg[:idx])
        # Trailer annotations: WSQ_REQUIRES(...) between ')' and '{'.
        j = params_end
        while j < len(head):
            t = head[j]
            if t.kind == "id" and t.val in ("WSQ_REQUIRES",
                                            "WSQ_REQUIRES_SHARED") and \
                    j + 1 < len(head) and head[j + 1].val == "(":
                end = match_paren(head, j + 1)
                for arg in split_args(head[j + 2:end - 1]):
                    fi.requires.append(arg)   # resolved in finish()
                j = end
                continue
            j += 1
        return fi


# --------------------------------------------------------------------
# Whole-program analysis
# --------------------------------------------------------------------

class Analysis:
    def __init__(self, program, root, sups):
        self.program = program
        self.root = pathlib.Path(root)
        self.sups = sups
        self.qacq = {}     # qname -> {mutex ident: witness}
        self.qblock = {}   # qname -> (kind, released, why) | None
        self.findings = []
        self._seen = set()

    def rel(self, path):
        try:
            return pathlib.Path(path).resolve().relative_to(
                self.root.resolve()).as_posix()
        except ValueError:
            return str(path)

    def emit(self, finding):
        if finding.key() in self._seen:
            return
        self._seen.add(finding.key())
        self.findings.append(finding)

    # -- call resolution ---------------------------------------------

    def resolve_call(self, fi, chain):
        """Resolves a call chain to a 'Class::method' / 'function'
        qname, or None."""
        last = chain[-1][1]
        if len(chain) > 1 and all(sep in (None, "::")
                                  for sep, _ in chain):
            names = [name for _, name in chain]
            if names[0] in ("std", "chrono", "this_thread"):
                return None
            ci = self.program.find_class("::".join(names[:-1]))
            if ci:
                return ci.qname + "::" + last
            # e.g. wsq::FreeFunction
            if names[-2] == "wsq" or self.program.by_qname.get(last):
                return last if last in self.program.by_qname else None
            return None
        if len(chain) > 1:
            res = Resolver(self.program, fi)
            ci = res.class_of_chain(chain[:-1])
            return ci.qname + "::" + last if ci else None
        # Bare name.
        q = fi.cls
        while q:
            cand = q + "::" + last
            ci = self.program.classes.get(q)
            if cand in self.program.by_qname or \
                    (ci and last in ci.methods):
                return cand
            q = q.rsplit("::", 1)[0] if "::" in q else None
        if last in self.program.by_qname:
            return last
        owners = self.program.methods_of.get(last, ())
        if len(owners) == 1:
            return next(iter(owners)) + "::" + last
        return None

    def returns_kind(self, qname):
        if qname is None:
            return None
        if "::" in qname:
            cls, method = qname.rsplit("::", 1)
            ci = self.program.classes.get(cls)
            if ci and ci.method_returns.get(method):
                return ci.method_returns[method]
        for fi in self.program.by_qname.get(qname, ()):
            kind = getattr(fi, "returns", None)
            if kind:
                return kind
        return None

    # -- fixpoints ----------------------------------------------------

    def _hard_seed(self, fi, ev, resolved):
        """Is this call event a known-blocking primitive?"""
        if ev.last in HARD_BLOCKING_CALLS:
            return f"{ev.last}() at {self.rel(fi.path)}:{ev.line}"
        for suffix, method in HARD_BLOCKING_METHODS:
            if ev.last != method:
                continue
            if suffix is None:
                return (f"{render_chain(ev.chain)} at "
                        f"{self.rel(fi.path)}:{ev.line}")
            if resolved and resolved.rsplit("::", 1)[0].endswith(suffix):
                return (f"{resolved} at "
                        f"{self.rel(fi.path)}:{ev.line}")
        return None

    def compute(self):
        prog = self.program
        prog.index()
        for fi in prog.functions:
            req = {r[0] for r in fi.requires}
            for lk in fi.locks:
                if lk.ident and not lk.ident.startswith("?") and \
                        lk.ident not in req:
                    fi.direct_acquires.setdefault(lk.ident, lk)
            for ev in fi.calls:
                ev.resolved = self.resolve_call(fi, ev.chain)

        # Acquisition closure, per qname (overloads merged).
        for fi in prog.functions:
            d = self.qacq.setdefault(fi.qname, {})
            for ident, lk in fi.direct_acquires.items():
                d.setdefault(
                    ident,
                    f"acquired at {self.rel(fi.path)}:{lk.line}")
        for _ in range(32):
            changed = False
            for fi in prog.functions:
                mine = self.qacq[fi.qname]
                for ev in fi.calls:
                    if not ev.resolved or ev.resolved not in self.qacq:
                        continue
                    for ident, w in self.qacq[ev.resolved].items():
                        if ident not in mine:
                            mine[ident] = (
                                f"via {ev.resolved} "
                                f"({self.rel(fi.path)}:{ev.line})")
                            changed = True
            if not changed:
                break

        # Blocking closure.
        for fi in prog.functions:
            info = None
            for ev in fi.calls:
                why = self._hard_seed(fi, ev, ev.resolved)
                if why:
                    info = ("hard", None, why)
                    break
            if info is None:
                for wv in fi.waits:
                    why = (f"CondVar wait at "
                           f"{self.rel(fi.path)}:{wv.line}")
                    info = _merge_block(
                        info, ("cv", wv.released, why))
            self.qblock[fi.qname] = _merge_block(
                self.qblock.get(fi.qname), info)
        for _ in range(32):
            changed = False
            for fi in prog.functions:
                cur = self.qblock.get(fi.qname)
                if cur and cur[0] == "hard":
                    continue
                for ev in fi.calls:
                    if not ev.resolved:
                        continue
                    sub = self.qblock.get(ev.resolved)
                    if not sub:
                        continue
                    why = (f"calls {ev.resolved} at "
                           f"{self.rel(fi.path)}:{ev.line} → "
                           + sub[2])
                    if len(why) > 240:
                        why = why[:240] + "…"
                    new = _merge_block(cur, (sub[0], sub[1], why))
                    if new != cur:
                        self.qblock[fi.qname] = new
                        cur = new
                        changed = True
            if not changed:
                break

    # -- checks -------------------------------------------------------

    def check_lock_order(self):
        edges = {}   # (a, b) -> [(path, line, desc)]

        def add_edge(a, b, path, line, desc):
            edges.setdefault((a, b), []).append((path, line, desc))

        for fi in self.program.functions:
            for lk in fi.locks:
                if not lk.ident:
                    continue
                for idx, h in enumerate(lk.held):
                    if h == lk.ident:
                        raw_prev = lk.held_raw[idx] \
                            if idx < len(lk.held_raw) else None
                        if raw_prev == lk.raw:
                            self.emit(Finding(
                                self.rel(fi.path), lk.line, "lock-order",
                                f"{fi.qname} acquires '{lk.raw}' while "
                                "already holding it: guaranteed "
                                "self-deadlock (wsq::Mutex is not "
                                "recursive)"))
                        continue
                    add_edge(h, lk.ident, fi.path, lk.line,
                             f"{fi.qname} acquires {lk.ident} while "
                             f"holding {h} "
                             f"({self.rel(fi.path)}:{lk.line})")
            for ev in fi.calls:
                if not ev.resolved or ev.resolved not in self.qacq:
                    continue
                for m, w in self.qacq[ev.resolved].items():
                    if m in ev.held:
                        continue
                    for h in ev.held:
                        if h == m:
                            continue
                        add_edge(h, m, fi.path, ev.line,
                                 f"{fi.qname} holds {h}, calls "
                                 f"{ev.resolved} "
                                 f"({self.rel(fi.path)}:{ev.line}) "
                                 f"which acquires {m} ({w})")
        for ci in self.program.classes.values():
            if not ci.declared_edges:
                continue
            probe = FunctionInfo("<decl>", ci.qname, ci.path, ci.line)
            res = Resolver(self.program, probe)
            for field, dirn, arg, line in ci.declared_edges:
                other, _ = res.mutex_identity(arg)
                if not other:
                    continue
                this = ci.qname + "::" + field
                a, b = (this, other) if dirn == "before" \
                    else (other, this)
                add_edge(a, b, ci.path, line,
                         f"declared WSQ_ACQUIRED_"
                         f"{'BEFORE' if dirn == 'before' else 'AFTER'} "
                         f"({self.rel(ci.path)}:{line})")

        # Anchored suppression drops individual edges.
        live = {}
        for (a, b), wits in edges.items():
            kept = [w for w in wits
                    if not self.sups.active(
                        "lock-order", [(self.rel(w[0]), w[1])])]
            if kept:
                live[(a, b)] = kept

        for cycle in find_cycles(live):
            first = live[(cycle[0], cycle[1])][0]
            steps = []
            for i in range(len(cycle) - 1):
                w = live[(cycle[i], cycle[i + 1])][0]
                steps.append(w[2])
            self.emit(Finding(
                self.rel(first[0]), first[1], "lock-order",
                "potential deadlock: lock-order cycle "
                + " -> ".join(cycle) + "; " + "; ".join(steps)))

    def check_blocking_under_lock(self):
        for fi in self.program.functions:
            for wv in fi.waits:
                offending = [(h, a) for (h, a) in wv.held_anchors
                             if h != wv.released]
                if offending:
                    self._emit_blocking(
                        fi, wv.line, offending,
                        f"CondVar wait (releases only "
                        f"{wv.released or 'its own mutex'})")
            for ev in fi.calls:
                why = self._hard_seed(fi, ev, ev.resolved)
                offending = ev.held_anchors
                if why is None and ev.resolved:
                    sub = self.qblock.get(ev.resolved)
                    if sub:
                        kind, released, sub_why = sub
                        why = (f"call to {ev.resolved} may block "
                               f"({sub_why})")
                        if kind == "cv" and released:
                            offending = [(h, a) for (h, a) in offending
                                         if h != released]
                elif why is not None:
                    why = f"blocking call: {why}"
                if why is None or not offending:
                    continue
                self._emit_blocking(fi, ev.line, offending, why)

    def _emit_blocking(self, fi, line, offending, why):
        site = (self.rel(fi.path), line)
        held_desc = ", ".join(h for h, _ in offending)
        # Decl-anchored suppression must cover every offending lock.
        decl_anchors = []
        covered = True
        for h, anchor in offending:
            if anchor is None:
                covered = False
                break
            decl_anchors.append((self.rel(anchor[0]), anchor[1]))
        if self.sups.active("blocking-under-lock", [site]):
            return
        if covered and decl_anchors and all(
                self.sups.active("blocking-under-lock", [a])
                for a in decl_anchors):
            return
        self.emit(Finding(
            site[0], line, "blocking-under-lock",
            f"{why} while MutexLock holds {held_desc} in {fi.qname}; "
            "move the blocking work outside the critical section, or "
            "annotate the site (or every held mutex's declaration) "
            "with 'wsqcheck: allow(blocking-under-lock)' and a "
            "justification"))

    def check_cancel_blind_wait(self):
        for fi in self.program.functions:
            aware = any(CANCEL_AWARE.search(i) for i in fi.idents)
            if aware:
                continue
            for wv in fi.waits:
                if wv.timed:
                    continue
                site = (self.rel(fi.path), wv.line)
                if self.sups.active("cancel-blind-wait", [site]):
                    continue
                self.emit(Finding(
                    site[0], wv.line, "cancel-blind-wait",
                    f"untimed CondVar wait in {fi.qname}, whose entire "
                    "body never consults a CancellationToken or "
                    "shutdown/stop flag; a consumer parked here cannot "
                    "observe a deadline or a shutting-down pump"))

    def check_unbounded_op_growth(self):
        for fi in self.program.functions:
            if fi.name() not in ("OpenImpl", "NextImpl"):
                continue
            if "src/exec/" not in self.rel(fi.path):
                continue
            if fi.idents & BUDGET_API:
                continue
            for g in fi.growths:
                site = (self.rel(fi.path), g.line)
                if self.sups.active("unbounded-op-growth", [site]):
                    continue
                self.emit(Finding(
                    site[0], g.line, "unbounded-op-growth",
                    f"{g.method} in {fi.qname} grows a container but "
                    "the enclosing function never touches the "
                    "memory-budget API (MemoryReservation "
                    "TryAdd/ForceAdd, TryReserve, WaitForRoom); "
                    "charge the ledger or annotate with "
                    "'wsqcheck: allow(unbounded-op-growth)'"))

    def check_deadline_blind_submit(self):
        for fi in self.program.functions:
            if fi.name() == "SubmitAsync":
                continue  # the definitions themselves
            if "RemainingMicros" in fi.idents:
                continue
            for ev in fi.calls:
                if ev.last != "SubmitAsync":
                    continue
                site = (self.rel(fi.path), ev.line)
                if self.sups.active("deadline-blind-submit", [site]):
                    continue
                self.emit(Finding(
                    site[0], ev.line, "deadline-blind-submit",
                    f"SubmitAsync call in {fi.qname} on a path that "
                    "never clamps by CancellationToken::"
                    "RemainingMicros; an expired query budget must "
                    "bound (or refuse) every external call it issues"))

    def check_status_discard(self):
        for fi in self.program.functions:
            for d in fi.discards:
                kinds = [self.returns_kind(self.resolve_call(fi, c))
                         for c in d.chains]
                kinds = [k for k in kinds if k]
                if not kinds:
                    continue
                site = (self.rel(fi.path), d.line)
                if self.sups.active("status-discard", [site]):
                    continue
                if d.kind == "void":
                    msg = (f"(void) cast discards a {kinds[0]} in "
                           f"{fi.qname}, escaping [[nodiscard]]; use "
                           "WSQ_IGNORE_STATUS(expr) with a comment, or "
                           "handle the error")
                elif d.kind == "ternary":
                    msg = (f"ternary expression statement discards a "
                           f"{kinds[0]} in {fi.qname}, escaping "
                           "[[nodiscard]]; assign the result and check "
                           "it, or use WSQ_IGNORE_STATUS")
                else:
                    msg = (f"call result ({kinds[0]}) silently "
                           f"discarded in {fi.qname}; handle it or "
                           "use WSQ_IGNORE_STATUS(expr)")
                self.emit(Finding(site[0], d.line,
                                  "status-discard", msg))

    def run(self, only):
        self.compute()
        table = {
            "lock-order": self.check_lock_order,
            "blocking-under-lock": self.check_blocking_under_lock,
            "cancel-blind-wait": self.check_cancel_blind_wait,
            "unbounded-op-growth": self.check_unbounded_op_growth,
            "deadline-blind-submit": self.check_deadline_blind_submit,
            "status-discard": self.check_status_discard,
        }
        for name, fn in table.items():
            if only is None or name in only:
                fn()
        if only is None or "stale-suppression" in only:
            for f in self.sups.stale():
                f.path = self.rel(f.path)
                self.emit(f)
        self.findings.sort(key=lambda f: (f.path, f.line, f.check))
        return self.findings


def _merge_block(a, b):
    """Combines two blocking infos; 'hard' dominates, differing cv
    release targets degrade to cv(None) (flagged under any lock)."""
    if b is None:
        return a
    if a is None:
        return b
    if a[0] == "hard":
        return a
    if b[0] == "hard":
        return b
    if a[1] == b[1]:
        return a
    return ("cv", None, a[2])


def render_chain(chain):
    out = []
    for sep, name in chain:
        if sep:
            out.append(sep)
        out.append(name)
    return "".join(out)


def find_cycles(edges):
    """Returns one representative cycle [n0, n1, ..., n0] per strongly
    connected component that contains a cycle."""
    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
    sccs = tarjan(adj)
    cycles = []
    for comp in sccs:
        if len(comp) < 2:
            continue
        comp_set = set(comp)
        start = min(comp)
        cyc = _shortest_cycle(adj, comp_set, start)
        if cyc:
            cycles.append(cyc)
    return cycles


def _shortest_cycle(adj, comp, start):
    from collections import deque
    prev = {start: None}
    dq = deque([start])
    while dq:
        u = dq.popleft()
        for v in sorted(adj.get(u, ())):
            if v not in comp:
                continue
            if v == start:
                path = []
                node = u
                while node is not None:
                    path.append(node)
                    node = prev[node]
                path.reverse()
                return path + [start]
            if v not in prev:
                prev[v] = u
                dq.append(v)
    return None


def tarjan(adj):
    index_counter = [0]
    stack, lowlink, index, on_stack = [], {}, {}, set()
    result = []

    def strongconnect(v):
        work = [(v, iter(sorted(adj.get(v, ()))))]
        index[v] = lowlink[v] = index_counter[0]
        index_counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = lowlink[w] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    advanced = True
                    break
                elif w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                result.append(comp)

    for v in list(adj):
        if v not in index:
            strongconnect(v)
    return result


# --------------------------------------------------------------------
# libclang frontend
# --------------------------------------------------------------------

class SkipError(RuntimeError):
    """libclang unavailable; --frontend clang must skip loudly."""


def _load_cindex():
    try:
        import clang.cindex as cx
    except ImportError as e:
        raise SkipError(
            "python clang bindings not importable "
            f"({e}); install python3-clang + libclang") from e
    try:
        cx.Index.create()
    except Exception as e:  # LibclangError has no stable base
        raise SkipError(f"libclang shared library not loadable: {e}") \
            from e
    return cx


STRIP_ARGS = {"-c", "-g", "-O0", "-O1", "-O2", "-O3"}


def _entry_args(entry):
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    out = []
    skip_next = False
    for a in argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if a in STRIP_ARGS or a.startswith("-o") and len(a) > 2:
            continue
        if a == entry.get("file"):
            continue
        out.append(a)
    return out


class ClangFrontend:
    """Parses every TU in compile_commands.json with libclang. Class,
    member, and parameter types come from the compiler; function-body
    events reuse the same token scanner as the internal frontend, so
    both frontends feed identical check logic."""

    def __init__(self, program, root, entries, verbose=False):
        self.cx = _load_cindex()
        self.program = program
        self.root = pathlib.Path(root).resolve()
        self.entries = entries
        self.verbose = verbose
        self._seen_funcs = set()
        self._file_cache = {}

    def _text(self, path):
        if path not in self._file_cache:
            self._file_cache[path] = pathlib.Path(path).read_text(
                encoding="utf-8", errors="replace")
        return self._file_cache[path]

    def _under_src(self, cursor):
        loc = cursor.location
        if loc.file is None:
            return None
        p = pathlib.Path(loc.file.name).resolve()
        try:
            p.relative_to(self.root / "src")
        except ValueError:
            return None
        return p

    def run(self):
        index = self.cx.Index.create()
        parsed_any = False
        for entry in self.entries:
            path = pathlib.Path(entry["file"])
            if not path.is_absolute():
                path = pathlib.Path(entry.get("directory", ".")) / path
            path = path.resolve()
            try:
                path.relative_to(self.root / "src")
            except ValueError:
                continue
            args = _entry_args(entry)
            try:
                tu = index.parse(str(path), args=args)
            except Exception as e:
                print(f"wsqcheck: failed to parse {path}: {e}",
                      file=sys.stderr)
                continue
            fatal = [d for d in tu.diagnostics if d.severity >= 4]
            if fatal and self.verbose:
                for d in fatal[:5]:
                    print(f"wsqcheck: {path}: {d.spelling}",
                          file=sys.stderr)
            parsed_any = True
            self._walk(tu.cursor, [])
        if not parsed_any:
            raise SkipError("no TU under src/ could be parsed from "
                            "compile_commands.json")
        extra = []
        for fi, body in self._pending_bodies:
            scan_body(fi, body, self.program, extra)
            self.program.add_function(fi)
        for fi in extra:
            self.program.add_function(fi)

    _pending_bodies = None

    def _walk(self, cursor, class_stack):
        K = self.cx.CursorKind
        if self._pending_bodies is None:
            self._pending_bodies = []
        for c in cursor.get_children():
            kind = c.kind
            if kind in (K.NAMESPACE, K.UNEXPOSED_DECL,
                        K.LINKAGE_SPEC):
                self._walk(c, class_stack)
            elif kind in (K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
                if not c.is_definition():
                    continue
                p = self._under_src(c)
                if p is None:
                    continue
                qname = "::".join([ci.qname for ci in class_stack[-1:]]
                                  + [c.spelling]) \
                    if class_stack else c.spelling
                ci = ClassInfo(qname, p, c.location.line)
                ci = self.program.add_class(ci)
                self._collect_class(c, ci)
                self._walk(c, class_stack + [ci])
            elif kind in (K.CXX_METHOD, K.FUNCTION_DECL, K.CONSTRUCTOR,
                          K.DESTRUCTOR, K.FUNCTION_TEMPLATE):
                self._function(c, class_stack)

    def _collect_class(self, cursor, ci):
        K = self.cx.CursorKind
        for c in cursor.get_children():
            if c.kind == K.FIELD_DECL:
                spelling = c.type.spelling
                core = extract_core_type_str(spelling)
                base = spelling.split("<")[0]
                if base.endswith("Mutex") and \
                        not base.endswith("MutexLock"):
                    ci.mutexes[c.spelling] = c.location.line
                    ci.members[c.spelling] = "Mutex"
                else:
                    ci.members[c.spelling] = core
                self._decl_edges(c, ci)
            elif c.kind in (K.CXX_METHOD, K.CONSTRUCTOR):
                ci.methods.add(c.spelling)
                ret = c.result_type.spelling if \
                    c.kind == K.CXX_METHOD else ""
                base = re.sub(r"^(const\s+)?(wsq::)?", "", ret)
                if base.startswith("Status"):
                    ci.method_returns[c.spelling] = "Status"
                elif base.startswith("Result"):
                    ci.method_returns[c.spelling] = "Result"
                else:
                    ci.method_returns.setdefault(c.spelling, None)

    def _decl_edges(self, field_cursor, ci):
        toks = [Tok("id" if t.spelling[0] in ID_START else "p",
                    t.spelling, t.location.line)
                for t in field_cursor.get_tokens()]
        j = 0
        while j < len(toks):
            t = toks[j]
            if t.kind == "id" and t.val in ("WSQ_ACQUIRED_BEFORE",
                                            "WSQ_ACQUIRED_AFTER") and \
                    j + 1 < len(toks) and toks[j + 1].val == "(":
                end = match_paren(toks, j + 1)
                for arg in split_args(toks[j + 2:end - 1]):
                    ci.declared_edges.append(
                        (field_cursor.spelling,
                         "before" if t.val.endswith("BEFORE")
                         else "after", arg, t.line))
                j = end
                continue
            j += 1

    def _function(self, cursor, class_stack):
        if not cursor.is_definition():
            return
        p = self._under_src(cursor)
        if p is None:
            return
        key = (str(p), cursor.location.line, cursor.spelling)
        if key in self._seen_funcs:
            return
        self._seen_funcs.add(key)
        # Qualified name from semantic parents (classes only).
        K = self.cx.CursorKind
        chain = [cursor.spelling]
        parent = cursor.semantic_parent
        cls_qname = None
        while parent is not None and parent.kind in (
                K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
            chain.insert(0, parent.spelling)
            parent = parent.semantic_parent
        if len(chain) > 1:
            cls_qname = "::".join(chain[:-1])
        fi = FunctionInfo("::".join(chain), cls_qname, p,
                          cursor.location.line)
        ret = cursor.result_type.spelling or ""
        base = re.sub(r"^(const\s+)?(wsq::)?", "", ret)
        if base.startswith("Status"):
            fi.returns = "Status"
        elif base.startswith("Result"):
            fi.returns = "Result"
        for arg in cursor.get_arguments():
            if arg.spelling:
                fi.params[arg.spelling] = \
                    extract_core_type_str(arg.type.spelling)
        # Extent text -> head/body split via the shared tokenizer.
        ext = cursor.extent
        text = self._text(str(p))
        lines = text.splitlines(keepends=True)
        start = sum(len(l) for l in lines[:ext.start.line - 1]) + \
            ext.start.column - 1
        end = sum(len(l) for l in lines[:ext.end.line - 1]) + \
            ext.end.column - 1
        snippet = text[start:end]
        toks = tokenize(snippet)
        # Re-base line numbers onto the file.
        for t in toks:
            t.line += ext.start.line - 1
        pd = 0
        body_at = None
        for k, t in enumerate(toks):
            if t.kind == "p":
                if t.val == "(":
                    pd += 1
                elif t.val == ")":
                    pd = max(0, pd - 1)
                elif t.val == "{" and pd == 0:
                    body_at = k
                    break
        if body_at is None:
            return
        head = toks[:body_at]
        body_end = match_paren(toks, body_at, "{", "}")
        body = toks[body_at + 1:body_end - 1]
        # WSQ_REQUIRES from the head tokens.
        res = Resolver(self.program, fi)
        j = 0
        while j < len(head):
            t = head[j]
            if t.kind == "id" and t.val in ("WSQ_REQUIRES",
                                            "WSQ_REQUIRES_SHARED") and \
                    j + 1 < len(head) and head[j + 1].val == "(":
                endp = match_paren(head, j + 1)
                for arg in split_args(head[j + 2:endp - 1]):
                    ident, anchor = res.mutex_identity(arg)
                    if ident:
                        fi.requires.append((ident, anchor, render(arg)))
                j = endp
                continue
            j += 1
        self._pending_bodies.append((fi, body))


def extract_core_type_str(spelling):
    """Core class name from a clang type spelling string."""
    s = spelling.strip()
    s = re.sub(r"\b(const|volatile|struct|class)\b", "", s)
    s = s.replace("&", "").replace("*", "").strip()
    m = re.match(
        r"(?:std::)?(?:__shared_ptr|shared_ptr|unique_ptr|weak_ptr"
        r"|optional|atomic)<(.+?)(?:,[^<>]*)?>$", s)
    if m:
        return extract_core_type_str(m.group(1))
    if "<" in s:
        return None
    s = re.sub(r"^(std|wsq)::", "", s)
    return s or None


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def load_compile_commands(path):
    try:
        with open(path, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(
            f"wsqcheck: cannot read compile commands {path}: {e}")
    if not isinstance(entries, list):
        raise SystemExit(
            f"wsqcheck: {path} is not a compile_commands.json array")
    return entries


def gather_sources(root):
    """Every C++ file under root/src — headers too, since the internal
    frontend has no preprocessor and must see declarations directly."""
    src = pathlib.Path(root) / "src"
    out = sorted(p for ext in ("*.h", "*.cc")
                 for p in src.rglob(ext))
    return out


def _default_compile_commands(root):
    for cand in ("build", "build-clang", "out"):
        p = pathlib.Path(root) / cand / "compile_commands.json"
        if p.exists():
            return p
    return None


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="wsqcheck",
        description="Semantic (AST-level) checks for the WSQ/DSQ tree: "
                    "lock-order cycles, blocking-under-lock, governor "
                    "blindness, status discards.")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of tools/)")
    ap.add_argument("--compile-commands", default=None,
                    help="path to compile_commands.json "
                         "(default: <root>/build/compile_commands.json)")
    ap.add_argument("--frontend", choices=("auto", "clang", "internal"),
                    default="auto",
                    help="auto: libclang when importable, else the "
                         "built-in parser; clang: require libclang "
                         "(exit 3 with a loud SKIP if missing); "
                         "internal: never touch libclang")
    ap.add_argument("--only", default=None,
                    help="comma-separated subset of checks to run")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for c in CHECKS:
            print(c)
        return 0

    root = pathlib.Path(args.root).resolve() if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    if not (root / "src").is_dir():
        print(f"wsqcheck: no src/ under {root}", file=sys.stderr)
        return 2

    only = None
    if args.only:
        only = {c.strip() for c in args.only.split(",") if c.strip()}
        unknown = only - set(CHECKS)
        if unknown:
            print(f"wsqcheck: unknown check(s): "
                  f"{', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    sources = gather_sources(root)
    if not sources:
        print(f"wsqcheck: no C++ sources under {root}/src",
              file=sys.stderr)
        return 2

    program = Program(root)
    frontend_used = None
    if args.frontend in ("auto", "clang"):
        try:
            cc_path = args.compile_commands or \
                _default_compile_commands(root)
            if cc_path is None:
                raise SkipError(
                    "no compile_commands.json found (configure with "
                    "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON or pass "
                    "--compile-commands)")
            entries = load_compile_commands(cc_path)
            fe = ClangFrontend(program, root, entries,
                               verbose=args.verbose)
            fe.run()
            frontend_used = "clang"
        except SkipError as e:
            if args.frontend == "clang":
                print(f"wsqcheck: SKIPPED — libclang frontend "
                      f"unavailable: {e}", file=sys.stderr)
                print("wsqcheck: this is a skip, NOT a pass; rerun "
                      "with --frontend internal for the built-in "
                      "parser", file=sys.stderr)
                return 3
            if args.verbose:
                print(f"wsqcheck: NOTE falling back to the internal "
                      f"frontend ({e})", file=sys.stderr)
            program = Program(root)   # discard partial clang state

    if frontend_used is None:
        fe = InternalFrontend(program)
        for path in sources:
            fe.add_file(path)
        fe.finish()
        frontend_used = "internal"

    program.index()

    sups = Suppressions(root)
    for path in sources:
        sups.scan_file(path)

    analysis = Analysis(program, root, sups)
    findings = analysis.run(only)

    if args.verbose:
        print(f"wsqcheck: frontend={frontend_used} "
              f"classes={len(program.classes)} "
              f"functions={len(program.functions)} "
              f"files={len(sources)}", file=sys.stderr)

    for f in findings:
        print(f"{f.path}:{f.line}: [{f.check}] {f.message}")
    if findings:
        counts = {}
        for f in findings:
            counts[f.check] = counts.get(f.check, 0) + 1
        summary = ", ".join(f"{k}: {v}"
                            for k, v in sorted(counts.items()))
        print(f"\nwsqcheck: {len(findings)} finding(s) "
              f"[{frontend_used} frontend] — {summary}",
              file=sys.stderr)
        return 1
    if args.verbose:
        print("wsqcheck: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
