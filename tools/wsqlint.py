#!/usr/bin/env python3
"""wsqlint: repo-local static checks that the compilers don't enforce.

Run from anywhere:  python3 tools/wsqlint.py  [--root <repo>]

Checks, in order of how often they have bitten this codebase:

  mutex-guard      Every wsq::Mutex / std::mutex member in annotated
                   directories must have at least one WSQ_GUARDED_BY /
                   WSQ_PT_GUARDED_BY peer naming it (a lock that guards
                   nothing is either dead or its state is unannotated).
  raw-std-mutex    Annotated directories must use wsq::Mutex, not raw
                   std::mutex / std::condition_variable members, so the
                   capability analysis can see every lock.
  manual-lock      No .lock()/.unlock() calls outside the RAII guard in
                   thread_annotations.h: manual pairing is how unlocks
                   get skipped on early returns.
  iostream         No #include <iostream> in src/ library code; streams
                   drag in static initializers and tempt debug prints.
                   Use the Status/Result plumbing or StrFormat.
  randomness       No rand()/srand() and no unseeded std::random_device
                   in src/ outside the fault harnesses: runs must be
                   reproducible from explicit seeds (common/random.h).
  include-guard    Headers use #ifndef WSQ_<PATH>_H_ guards matching
                   their path (or #pragma once, which we also accept).
  cancel-blind-wait
                   Untimed CondVar .Wait( calls in annotated
                   directories must be cancellation-aware: the
                   surrounding lines must consult a shutdown/stop flag
                   or a cancellation token (timed WaitForMicros polls
                   are always fine). A consumer parked in a blind Wait
                   cannot observe a query deadline or a shutting-down
                   pump. Legitimately unconditional waits (destructor
                   drains with no reachable token) carry a
                   `wsqlint: allow(cancel-blind-wait)` comment.
  submit-drops-callback
                   SearchService::Submit overrides must not be able to
                   drop their callback: the SearchService contract says
                   every accepted request eventually completes, and a
                   dropped SearchCallback wedges whoever is parked on
                   the pump slot it was supposed to release. Every bare
                   `return;` inside a Submit body must invoke the
                   callback or hand it off (std::move / pass-through)
                   within the preceding lines, and the body must use
                   the callback at least once. Handoffs the matcher
                   cannot see (e.g. parked earlier on another branch)
                   carry a `wsqlint: allow(submit-drops-callback)`
                   comment.
  unbounded-op-growth
                   OpenImpl/NextImpl bodies in src/exec that grow a
                   container (push_back / emplace / insert) must go
                   through the memory-budget API (a MemoryReservation
                   TryAdd/ForceAdd, a budget TryReserve, or ReqSync's
                   WaitForRoom) somewhere in the same body: an operator
                   that buffers unboundedly without charging the ledger
                   defeats the process-wide governor. Growth that is
                   bounded by construction (a fixed-arity scratch row,
                   a per-call batch that is consumed before returning)
                   carries a `wsqlint: allow(unbounded-op-growth)`
                   comment.
  metric-naming    Metric names passed to MetricsRegistry::Get* and
                   MetricsEmitter::Emit* must be wsq_-prefixed
                   snake_case with the unit in the suffix: counters end
                   _total, histograms end _micros or _bytes (DESIGN.md
                   §12), and must belong to a registered component
                   family (METRIC_PREFIXES: wsq_reqpump_, wsq_fr_,
                   wsq_statusz_, ...). One naming scheme keeps the
                   /metrics dump greppable and dashboards portable.
  stale-suppression
                   Every `wsqlint: allow(<check>)` comment must still
                   suppress something: if the check would no longer
                   fire on that line the comment is reported as an
                   error. Suppressions that rot after refactors read as
                   "this was audited" when nothing is being audited.

The include-guard check also validates that the closing `#endif`
carries a `// WSQ_..._H_` trailing comment matching the guard, so a
reader at the bottom of a long header knows which scope just closed.

wsqcheck (tools/wsqcheck.py) is the semantic sister tool: it parses
real ASTs and honours these same `allow()` comments for the checks the
two tools share (cancel-blind-wait, unbounded-op-growth).

Exit status: 0 clean, 1 findings, 2 usage/setup error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Directories whose shared state must carry capability annotations.
ANNOTATED_DIRS = (
    "src/async",
    "src/net",
    "src/storage",
    "src/exec",
    "src/wsq",
    "src/obs",
)

# Files allowed to touch the raw primitives: the annotation layer itself.
PRIMITIVE_ALLOWLIST = ("src/common/thread_annotations.h",)

# Fault/chaos harnesses may use unseeded entropy on purpose.
RANDOMNESS_ALLOWLIST = ("src/common/random.h",)


class Finding:
    def __init__(self, path: pathlib.Path, line: int, rule: str,
                 message: str) -> None:
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, keeping
    line numbers stable so findings still point at the right line."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c in (quote, "\n") else " ")
        i += 1
    return "".join(out)


def in_dirs(rel: str, dirs) -> bool:
    return any(rel == d or rel.startswith(d + "/") for d in dirs)


MUTEX_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:wsq::)?Mutex\s+(\w+)\s*;", re.M)
STD_PRIMITIVE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|condition_variable"
    r"|condition_variable_any)\b")
MANUAL_LOCK = re.compile(r"[.>]\s*(?:lock|unlock|try_lock)\s*\(")
GUARDED_BY = re.compile(r"WSQ_(?:PT_)?GUARDED_BY\(\s*(\w+)\s*\)")
UNTIMED_WAIT = re.compile(r"[.>]\s*Wait\s*\(")
CANCEL_AWARE = re.compile(r"shutdown|stop|cancel|token", re.I)
WAIT_SUPPRESS = "wsqlint: allow(cancel-blind-wait)"
SUBMIT_SIG = re.compile(
    r"\bSubmit\s*\(\s*SearchRequest\s+\w+\s*,\s*"
    r"SearchCallback\s+(\w+)\s*\)\s*(?:override\s*)?\{")
SUBMIT_SUPPRESS = "wsqlint: allow(submit-drops-callback)"
OP_IMPL_SIG = re.compile(
    r"\b\w+::(OpenImpl|NextImpl)\s*\([^)]*\)\s*\{")
CONTAINER_GROWTH = re.compile(
    r"[.>]\s*(push_back|emplace_back|emplace|try_emplace|insert)\s*\(")
BUDGET_API = re.compile(
    r"\bmem_\b|\bTryAdd\b|\bForceAdd\b|\bTryReserve\b|\bForceReserve\b"
    r"|\bMemoryReservation\b|\bWaitForRoom\b")
GROWTH_SUPPRESS = "wsqlint: allow(unbounded-op-growth)"
METRIC_CALL = re.compile(
    r"\b(GetCounter|GetGauge|GetHistogram"
    r"|EmitCounter|EmitGauge|EmitHistogram)\s*\(\s*\"")
METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*$")
# Registered metric families: every production series belongs to one
# component namespace so the /metrics dump groups naturally. A new
# component registers its prefix here (one line, reviewed) rather than
# minting ad-hoc names.
METRIC_PREFIXES = (
    "wsq_admission_",
    "wsq_buffer_pool_",
    "wsq_circuit_",
    "wsq_external_",
    "wsq_fr_",          # flight recorder + postmortems
    "wsq_mem_",
    "wsq_query_",
    "wsq_reqpump_",
    "wsq_result_cache_",
    "wsq_shard_",
    "wsq_spill_",
    "wsq_statusz_",     # introspection surface
    "wsq_wal_",
)
METRIC_EXACT = ("wsq_queries_total",)
RAND_CALL = re.compile(r"(?<![\w:])s?rand\s*\(")
RANDOM_DEVICE = re.compile(r"std::random_device\b")
INCLUDE_IOSTREAM = re.compile(r'#\s*include\s*<iostream>')


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


# Checks a `wsqlint: allow(<name>)` comment may legitimately suppress.
SUPPRESSIBLE = ("cancel-blind-wait", "submit-drops-callback",
                "unbounded-op-growth")
ALLOW_RE = re.compile(r"wsqlint:\s*allow\(([a-z][a-z0-9-]*)\)")


class Allows:
    """Per-file `wsqlint: allow()` comments with use tracking, so
    suppressions that no longer suppress anything surface as
    stale-suppression findings instead of rotting silently."""

    def __init__(self, raw: str) -> None:
        self.by_line: dict[int, list] = {}
        self.all: list = []
        for i, text in enumerate(raw.splitlines(), start=1):
            for m in ALLOW_RE.finditer(text):
                entry = [i, m.group(1), False]  # line, check, used
                self.by_line.setdefault(i, []).append(entry)
                self.all.append(entry)

    def suppressed(self, line: int, check: str) -> bool:
        """Allow() for `check` on the finding line or the line above.
        Call only once a finding WOULD fire — that is what keeps the
        used-flags honest for the stale check."""
        hit = False
        for probe in (line, line - 1):
            for entry in self.by_line.get(probe, []):
                if entry[1] == check:
                    entry[2] = True
                    hit = True
        return hit

    def stale(self, path: pathlib.Path) -> list:
        out = []
        for line, check, used in self.all:
            if used:
                continue
            if check not in SUPPRESSIBLE:
                out.append(Finding(
                    path, line, "stale-suppression",
                    f"allow({check}) names a check wsqlint cannot "
                    f"suppress; suppressible: {', '.join(SUPPRESSIBLE)}"))
            else:
                out.append(Finding(
                    path, line, "stale-suppression",
                    f"allow({check}) no longer suppresses anything "
                    "here — the check would not fire on this line; "
                    "delete the comment"))
        return out


def check_file(root: pathlib.Path, path: pathlib.Path):
    rel = path.relative_to(root).as_posix()
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments(raw)
    allows = Allows(raw)
    findings = []

    in_src = rel.startswith("src/")
    annotated = in_dirs(rel, ANNOTATED_DIRS)
    is_header = rel.endswith(".h")

    # --- mutex-guard: every Mutex member needs a GUARDED_BY peer -----
    if annotated and is_header and rel not in PRIMITIVE_ALLOWLIST:
        guarded_names = set(GUARDED_BY.findall(code))
        for m in MUTEX_MEMBER.finditer(code):
            name = m.group(1)
            if name not in guarded_names:
                findings.append(Finding(
                    path, line_of(code, m.start()), "mutex-guard",
                    f"Mutex member '{name}' has no WSQ_GUARDED_BY({name}) "
                    "peer; annotate the state it protects (or delete it)"))

    # --- raw-std-mutex ----------------------------------------------
    if annotated and rel not in PRIMITIVE_ALLOWLIST:
        for m in STD_PRIMITIVE.finditer(code):
            findings.append(Finding(
                path, line_of(code, m.start()), "raw-std-mutex",
                f"std::{m.group(1)} is invisible to the capability "
                "analysis; use wsq::Mutex / wsq::CondVar "
                "(common/thread_annotations.h)"))

    # --- manual-lock ------------------------------------------------
    if annotated and rel not in PRIMITIVE_ALLOWLIST:
        for m in MANUAL_LOCK.finditer(code):
            findings.append(Finding(
                path, line_of(code, m.start()), "manual-lock",
                "manual lock()/unlock() call; use the MutexLock RAII "
                "guard (its Lock()/Unlock() members handle re-locking)"))

    # --- cancel-blind-wait ------------------------------------------
    if annotated and rel not in PRIMITIVE_ALLOWLIST:
        raw_lines = raw.splitlines()
        code_lines = code.splitlines()
        for m in UNTIMED_WAIT.finditer(code):
            line = line_of(code, m.start())
            # Cancellation-aware if nearby code consults a shutdown /
            # stop flag or a cancellation token. Decided BEFORE the
            # suppression is consulted so an allow() next to a wait
            # that would not fire reads as stale.
            lo, hi = max(0, line - 7), min(len(code_lines), line + 6)
            context = "\n".join(code_lines[lo:hi])
            if CANCEL_AWARE.search(context):
                continue
            if allows.suppressed(line, "cancel-blind-wait"):
                continue
            findings.append(Finding(
                path, line, "cancel-blind-wait",
                "untimed CondVar Wait with no shutdown/cancellation "
                "check in sight; poll with WaitForMicros against a "
                "token, gate on a shutdown flag, or annotate with "
                f"'{WAIT_SUPPRESS}' if the wait is provably bounded"))

    # --- submit-drops-callback --------------------------------------
    # Scans each SearchService::Submit override body: every bare
    # `return;` needs the callback invoked or handed off nearby, and
    # the callback must be used at least once overall. Heuristic, not
    # flow analysis — the suppression comment covers handoffs on
    # another branch (e.g. a callback parked in a container earlier).
    if in_src:
        raw_lines = raw.splitlines()
        for m in SUBMIT_SIG.finditer(code):
            cb = m.group(1)
            # Brace-match the function body.
            depth, i = 1, m.end()
            while i < len(code) and depth > 0:
                if code[i] == "{":
                    depth += 1
                elif code[i] == "}":
                    depth -= 1
                i += 1
            body = code[m.end():i]
            body_start_line = line_of(code, m.end())
            cb_use = re.compile(
                r"\b" + cb + r"\s*\("        # invocation
                r"|\bmove\s*\(\s*" + cb + r"\s*\)"  # handoff by move
                r"|[,(]\s*" + cb + r"\s*[,)]")      # pass-through arg
            sig_line = line_of(code, m.start())
            if not cb_use.search(body):
                findings.append(Finding(
                    path, sig_line, "submit-drops-callback",
                    f"Submit never invokes or hands off its callback "
                    f"'{cb}'; every accepted request must eventually "
                    "complete (net/search_service.h)"))
                continue
            for r in re.finditer(r"\breturn\s*;", body):
                line = body_start_line + body.count("\n", 0, r.start())
                # Look back a handful of lines for a callback use.
                back = body[:r.start()].splitlines()[-8:]
                if cb_use.search("\n".join(back)):
                    continue
                if allows.suppressed(line, "submit-drops-callback"):
                    continue
                findings.append(Finding(
                    path, line, "submit-drops-callback",
                    f"bare 'return;' in Submit with no use of callback "
                    f"'{cb}' in the preceding lines; complete the "
                    "request on every path or annotate with "
                    f"'{SUBMIT_SUPPRESS}'"))

    # --- unbounded-op-growth ----------------------------------------
    # Scans each out-of-class OpenImpl/NextImpl definition in src/exec:
    # if the body grows a container anywhere but never touches the
    # memory-budget API, every growth site is flagged. Heuristic, not
    # flow analysis — growth bounded by construction carries the
    # suppression comment.
    if rel.startswith("src/exec/") and rel.endswith(".cc"):
        raw_lines = raw.splitlines()
        for m in OP_IMPL_SIG.finditer(code):
            depth, i = 1, m.end()
            while i < len(code) and depth > 0:
                if code[i] == "{":
                    depth += 1
                elif code[i] == "}":
                    depth -= 1
                i += 1
            body = code[m.end():i]
            if BUDGET_API.search(body):
                continue
            body_start_line = line_of(code, m.end())
            for g in CONTAINER_GROWTH.finditer(body):
                line = body_start_line + body.count("\n", 0, g.start())
                if allows.suppressed(line, "unbounded-op-growth"):
                    continue
                findings.append(Finding(
                    path, line, "unbounded-op-growth",
                    f"{g.group(1)} in an OpenImpl/NextImpl body with no "
                    "memory-budget accounting (MemoryReservation "
                    "TryAdd/ForceAdd, TryReserve, or WaitForRoom); "
                    "charge the ledger or annotate with "
                    f"'{GROWTH_SUPPRESS}' if growth is bounded"))

    # --- iostream ---------------------------------------------------
    if in_src:
        for m in INCLUDE_IOSTREAM.finditer(code):
            findings.append(Finding(
                path, line_of(code, m.start()), "iostream",
                "<iostream> in library code; report errors via "
                "Status/Result, format with common/strings.h"))

    # --- randomness -------------------------------------------------
    if in_src and rel not in RANDOMNESS_ALLOWLIST:
        for m in RAND_CALL.finditer(code):
            findings.append(Finding(
                path, line_of(code, m.start()), "randomness",
                "rand()/srand() is not reproducible; use wsq::Rng with "
                "an explicit seed"))
        for m in RANDOM_DEVICE.finditer(code):
            findings.append(Finding(
                path, line_of(code, m.start()), "randomness",
                "std::random_device draws unseeded entropy; plumb a "
                "seed through the options struct instead"))

    # --- metric-naming ----------------------------------------------
    # strip_comments keeps offsets and quote characters but blanks
    # string contents, so the literal is matched in `code` and its text
    # read back from `raw` at the same positions.
    if in_src:
        for m in METRIC_CALL.finditer(code):
            kind = m.group(1)
            open_quote = m.end() - 1
            close_quote = code.find('"', open_quote + 1)
            if close_quote < 0:
                continue
            name = raw[open_quote + 1:close_quote]
            line = line_of(code, m.start())
            if not METRIC_NAME.match(name):
                findings.append(Finding(
                    path, line, "metric-naming",
                    f"metric name '{name}' is not snake_case "
                    "([a-z][a-z0-9_]*)"))
                continue
            problem = None
            if not name.startswith("wsq_"):
                problem = "must start with 'wsq_'"
            elif kind in ("GetCounter", "EmitCounter"):
                if not name.endswith("_total"):
                    problem = "counters end in '_total'"
            elif kind in ("GetHistogram", "EmitHistogram"):
                if not (name.endswith("_micros")
                        or name.endswith("_bytes")):
                    problem = ("histograms carry their unit: "
                               "'_micros' or '_bytes'")
            elif kind in ("GetGauge", "EmitGauge"):
                if name.endswith("_total"):
                    problem = ("'_total' marks a monotonic counter; "
                               "gauges go up and down")
            if (problem is None and name not in METRIC_EXACT
                    and not name.startswith(METRIC_PREFIXES)):
                problem = ("unregistered metric family; add the "
                           "component prefix to METRIC_PREFIXES in "
                           "tools/wsqlint.py")
            if problem is not None:
                findings.append(Finding(
                    path, line, "metric-naming",
                    f"metric name '{name}': {problem} (DESIGN.md §12)"))

    # --- include-guard ----------------------------------------------
    if is_header and in_src:
        if "#pragma once" not in code:
            expected = ("WSQ_" +
                        rel[len("src/"):]
                        .replace("/", "_")
                        .replace(".", "_")
                        .upper() + "_")
            guard = re.search(r"#\s*ifndef\s+(\S+)\s*\n\s*#\s*define\s+(\S+)",
                              code)
            if guard is None:
                findings.append(Finding(
                    path, 1, "include-guard",
                    f"header has neither '#ifndef {expected}' guard nor "
                    "#pragma once"))
            elif guard.group(1) != expected or guard.group(2) != expected:
                findings.append(Finding(
                    path, line_of(code, guard.start()), "include-guard",
                    f"guard '{guard.group(1)}' should be '{expected}' "
                    "(derived from the header's path)"))
            else:
                # The closing #endif must say which guard it closes —
                # at the bottom of a long header that comment is the
                # only context a reader has. Match against `raw`:
                # the comment is what is being checked.
                endifs = [mm for mm in
                          re.finditer(r"#\s*endif[^\n]*", raw)]
                if endifs:
                    last = endifs[-1]
                    want = f"#endif  // {expected}"
                    if last.group(0).rstrip() != want:
                        findings.append(Finding(
                            path, line_of(raw, last.start()),
                            "include-guard",
                            f"closing '#endif' must read '{want}' "
                            "(trailing comment names the guard it "
                            "closes)"))

    findings.extend(allows.stale(path))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: wsqlint's "
                             "grandparent directory)")
    args = parser.parse_args()

    root = (pathlib.Path(args.root).resolve() if args.root
            else pathlib.Path(__file__).resolve().parent.parent)
    src = root / "src"
    if not src.is_dir():
        print(f"wsqlint: no src/ under {root}", file=sys.stderr)
        return 2

    files = sorted(p for p in src.rglob("*")
                   if p.suffix in (".h", ".cc") and p.is_file())
    findings = []
    for path in files:
        findings.extend(check_file(root, path))

    for f in findings:
        print(f)
    summary = (f"wsqlint: {len(findings)} finding(s) in "
               f"{len(files)} file(s)")
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
