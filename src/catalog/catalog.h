#ifndef WSQ_CATALOG_CATALOG_H_
#define WSQ_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/bplus_tree.h"
#include "storage/heap_file.h"
#include "types/row.h"
#include "types/schema.h"

namespace wsq {

/// A secondary index over one column of a stored table (the Redbase IX
/// component): a B+ tree mapping column values to rids. NULL values are
/// not indexed.
class IndexInfo {
 public:
  IndexInfo(std::string name, size_t column, BufferPool* pool,
            PageId root = kInvalidPageId)
      : name_(std::move(name)), column_(column), tree_(pool, root) {}

  const std::string& name() const { return name_; }
  /// Indexed column's position within the table schema.
  size_t column() const { return column_; }
  BPlusTree* tree() { return &tree_; }
  const BPlusTree* tree() const { return &tree_; }

 private:
  std::string name_;
  size_t column_;
  BPlusTree tree_;
};

/// A stored table: schema plus backing heap file.
class TableInfo {
 public:
  TableInfo(std::string name, Schema schema, BufferPool* pool,
            PageId first_page = kInvalidPageId)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        heap_(pool, first_page) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  HeapFile* heap() { return &heap_; }
  const HeapFile* heap() const { return &heap_; }

  /// Type-checks `row` against the schema, appends it, and maintains
  /// every index.
  Status Insert(const Row& row);

  /// Removes the row at `rid`, maintaining every index.
  Status Delete(Rid rid);

  /// Creates (and bulk-builds) an index on `column_name`. One index per
  /// column; duplicate names or columns are rejected.
  Result<IndexInfo*> CreateIndex(const std::string& index_name,
                                 const std::string& column_name,
                                 BufferPool* pool);

  /// Re-attaches a persisted index (database reopen); does not rebuild.
  Result<IndexInfo*> AttachIndex(const std::string& index_name,
                                 size_t column, PageId root,
                                 BufferPool* pool);

  /// Index on `column_name`, or null.
  IndexInfo* FindIndexOn(const std::string& column_name) const;

  const std::vector<std::unique_ptr<IndexInfo>>& indexes() const {
    return indexes_;
  }

  /// Materializes every live row (test/loader convenience; query
  /// execution streams through exec::SeqScan instead).
  Result<std::vector<Row>> ScanAll() const;

  /// Number of live rows.
  Result<int64_t> NumRows() const { return heap_.Count(); }

 private:
  std::string name_;
  Schema schema_;
  HeapFile heap_;
  std::vector<std::unique_ptr<IndexInfo>> indexes_;
};

/// Streaming reader of a stored table's rows.
class TableScanner {
 public:
  explicit TableScanner(const TableInfo* table)
      : table_(table), scanner_(table->heap()) {}

  /// Returns false at end of table; fills `row` otherwise.
  Result<bool> Next(Row* row);

  void Reset() { scanner_.Reset(); }

 private:
  const TableInfo* table_;
  HeapFileScanner scanner_;
};

/// Name → stored table registry. Virtual tables are registered separately
/// (vtab::VirtualTableRegistry) because they have no storage.
class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table. Column qualifiers are set to the table name.
  /// Fails with AlreadyExists on duplicate names (case-insensitive).
  Result<TableInfo*> CreateTable(const std::string& name,
                                 const Schema& schema);

  /// Re-registers a table whose heap file already exists on disk
  /// (database reopen path; see catalog_serde.h).
  Result<TableInfo*> AttachTable(const std::string& name,
                                 const Schema& schema, PageId first_page);

  /// Case-insensitive lookup.
  Result<TableInfo*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return GetTable(name).ok();
  }

  Status DropTable(const std::string& name);

  /// Table names in creation order.
  std::vector<std::string> ListTables() const;

 private:
  BufferPool* pool_;
  // Keyed by lower-cased name; value keeps the original spelling.
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
  std::vector<std::string> creation_order_;
};

}  // namespace wsq

#endif  // WSQ_CATALOG_CATALOG_H_
