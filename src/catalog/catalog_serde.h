#ifndef WSQ_CATALOG_CATALOG_SERDE_H_
#define WSQ_CATALOG_CATALOG_SERDE_H_

#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace wsq {

/// The catalog lives on a fixed root page of a persistent database
/// (page 0 by convention). SaveCatalog serializes every stored table's
/// name, schema, and heap root; LoadCatalog attaches them back.
///
/// Format (single page):
///   magic:u32  version:u16  num_tables:u16
///   per table: name_len:u16 name  first_page:i32  num_cols:u16
///     per column: name_len:u16 name  type:u8
/// A catalog that does not fit one page is rejected (InvalidArgument) —
/// at ~40 bytes per column that is several dozen tables, far beyond the
/// paper's workloads.
inline constexpr PageId kCatalogRootPage = 0;

/// Writes the catalog to `root_page` (which must already be allocated)
/// and marks it dirty. Durability is the caller's concern: the page
/// reaches disk on the next checkpoint / flush.
Status SaveCatalog(const Catalog& catalog, BufferPool* pool,
                   PageId root_page = kCatalogRootPage);

/// Reads `root_page` and attaches every recorded table to `catalog`
/// (which should be freshly constructed).
Status LoadCatalog(Catalog* catalog, BufferPool* pool,
                   PageId root_page = kCatalogRootPage);

}  // namespace wsq

#endif  // WSQ_CATALOG_CATALOG_SERDE_H_
