#include "catalog/catalog_serde.h"

#include <cstring>

#include "common/macros.h"
#include "common/strings.h"

namespace wsq {

namespace {

constexpr uint32_t kMagic = 0x77737164;  // "wsqd"
constexpr uint16_t kVersion = 2;

class Writer {
 public:
  void U8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void I32(int32_t v) { Raw(&v, 4); }
  void Str(const std::string& s) {
    U16(static_cast<uint16_t>(s.size()));
    bytes_.append(s);
  }
  const std::string& bytes() const { return bytes_; }

 private:
  void Raw(const void* p, size_t n) {
    bytes_.append(static_cast<const char*>(p), n);
  }
  std::string bytes_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> U8() {
    WSQ_RETURN_IF_ERROR(Need(1));
    uint8_t v = static_cast<uint8_t>(bytes_[pos_]);
    pos_ += 1;
    return v;
  }
  Result<uint16_t> U16() {
    WSQ_RETURN_IF_ERROR(Need(2));
    uint16_t v;
    std::memcpy(&v, bytes_.data() + pos_, 2);
    pos_ += 2;
    return v;
  }
  Result<uint32_t> U32() {
    WSQ_RETURN_IF_ERROR(Need(4));
    uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  Result<int32_t> I32() {
    WSQ_ASSIGN_OR_RETURN(uint32_t v, U32());
    return static_cast<int32_t>(v);
  }
  Result<std::string> Str() {
    WSQ_ASSIGN_OR_RETURN(uint16_t len, U16());
    WSQ_RETURN_IF_ERROR(Need(len));
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }

 private:
  Status Need(size_t n) {
    if (pos_ + n > bytes_.size()) {
      return Status::IOError("catalog page truncated");
    }
    return Status::OK();
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

Status SaveCatalog(const Catalog& catalog, BufferPool* pool,
                   PageId root_page) {
  Writer w;
  std::vector<std::string> names = catalog.ListTables();
  w.U32(kMagic);
  w.U16(kVersion);
  w.U16(static_cast<uint16_t>(names.size()));
  for (const std::string& name : names) {
    WSQ_ASSIGN_OR_RETURN(TableInfo * table, catalog.GetTable(name));
    w.Str(table->name());
    w.I32(table->heap()->first_page());
    const Schema& schema = table->schema();
    w.U16(static_cast<uint16_t>(schema.NumColumns()));
    for (const Column& c : schema.columns()) {
      w.Str(c.name);
      w.U8(static_cast<uint8_t>(c.type));
    }
    w.U16(static_cast<uint16_t>(table->indexes().size()));
    for (const auto& index : table->indexes()) {
      w.Str(index->name());
      w.U16(static_cast<uint16_t>(index->column()));
      w.I32(index->tree()->root());
    }
  }

  if (w.bytes().size() > kPageDataSize) {
    return Status::InvalidArgument(
        StrFormat("catalog (%zu bytes) exceeds the root page",
                  w.bytes().size()));
  }

  WSQ_ASSIGN_OR_RETURN(Page * page, pool->FetchPage(root_page));
  PageGuard guard(pool, page);
  std::memset(page->data(), 0, kPageDataSize);
  std::memcpy(page->data(), w.bytes().data(), w.bytes().size());
  guard.MarkDirty();
  return Status::OK();
}

Status LoadCatalog(Catalog* catalog, BufferPool* pool,
                   PageId root_page) {
  WSQ_ASSIGN_OR_RETURN(Page * page, pool->FetchPage(root_page));
  PageGuard guard(pool, page);
  Reader r(std::string_view(page->data(), kPageDataSize));

  WSQ_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kMagic) {
    return Status::IOError("not a WSQ database (bad catalog magic)");
  }
  WSQ_ASSIGN_OR_RETURN(uint16_t version, r.U16());
  if (version != kVersion) {
    return Status::IOError(
        StrFormat("unsupported catalog version %u", version));
  }
  WSQ_ASSIGN_OR_RETURN(uint16_t num_tables, r.U16());
  for (uint16_t t = 0; t < num_tables; ++t) {
    WSQ_ASSIGN_OR_RETURN(std::string name, r.Str());
    WSQ_ASSIGN_OR_RETURN(int32_t first_page, r.I32());
    WSQ_ASSIGN_OR_RETURN(uint16_t num_cols, r.U16());
    Schema schema;
    for (uint16_t c = 0; c < num_cols; ++c) {
      WSQ_ASSIGN_OR_RETURN(std::string col_name, r.Str());
      WSQ_ASSIGN_OR_RETURN(uint8_t type, r.U8());
      if (type > static_cast<uint8_t>(TypeId::kString)) {
        return Status::IOError("bad column type in catalog");
      }
      schema.AddColumn(Column(col_name, static_cast<TypeId>(type)));
    }
    WSQ_ASSIGN_OR_RETURN(TableInfo * table,
                         catalog->AttachTable(name, schema, first_page));
    WSQ_ASSIGN_OR_RETURN(uint16_t num_indexes, r.U16());
    for (uint16_t i = 0; i < num_indexes; ++i) {
      WSQ_ASSIGN_OR_RETURN(std::string index_name, r.Str());
      WSQ_ASSIGN_OR_RETURN(uint16_t column, r.U16());
      WSQ_ASSIGN_OR_RETURN(int32_t root, r.I32());
      WSQ_RETURN_IF_ERROR(
          table->AttachIndex(index_name, column, root, pool).status());
    }
  }
  return Status::OK();
}

}  // namespace wsq
