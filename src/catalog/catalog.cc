#include "catalog/catalog.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"
#include "storage/serde.h"

namespace wsq {

namespace {
// NULL is compatible with any column type.
bool TypeCompatible(TypeId column, TypeId value) {
  if (value == TypeId::kNull) return true;
  if (column == TypeId::kDouble && value == TypeId::kInt64) return true;
  return column == value;
}
}  // namespace

namespace {
// NULL keys are not indexed (SQL comparisons with NULL never match).
bool Indexable(const Value& v) { return !v.is_null(); }
}  // namespace

Status TableInfo::Insert(const Row& row) {
  if (row.size() != schema_.NumColumns()) {
    return Status::TypeError(
        StrFormat("table %s expects %zu columns, got %zu", name_.c_str(),
                  schema_.NumColumns(), row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!TypeCompatible(schema_.column(i).type, row.value(i).type())) {
      return Status::TypeError(StrFormat(
          "column %s expects %s, got %s",
          schema_.column(i).QualifiedName().c_str(),
          std::string(TypeIdToString(schema_.column(i).type)).c_str(),
          std::string(TypeIdToString(row.value(i).type())).c_str()));
    }
  }
  WSQ_ASSIGN_OR_RETURN(std::string bytes, SerializeRow(row));
  WSQ_ASSIGN_OR_RETURN(Rid rid, heap_.Insert(bytes));
  for (const auto& index : indexes_) {
    const Value& key = row.value(index->column());
    if (!Indexable(key)) continue;
    WSQ_RETURN_IF_ERROR(index->tree()->Insert(key, rid));
  }
  return Status::OK();
}

Status TableInfo::Delete(Rid rid) {
  WSQ_ASSIGN_OR_RETURN(std::string bytes, heap_.Get(rid));
  WSQ_ASSIGN_OR_RETURN(Row row, DeserializeRow(bytes));
  for (const auto& index : indexes_) {
    const Value& key = row.value(index->column());
    if (!Indexable(key)) continue;
    WSQ_RETURN_IF_ERROR(index->tree()->Remove(key, rid));
  }
  return heap_.Delete(rid);
}

Result<IndexInfo*> TableInfo::CreateIndex(const std::string& index_name,
                                          const std::string& column_name,
                                          BufferPool* pool) {
  WSQ_ASSIGN_OR_RETURN(size_t column, schema_.Find("", column_name));
  for (const auto& index : indexes_) {
    if (EqualsIgnoreCase(index->name(), index_name)) {
      return Status::AlreadyExists("index already exists: " + index_name);
    }
    if (index->column() == column) {
      return Status::AlreadyExists("column already indexed: " +
                                   column_name);
    }
  }
  auto index = std::make_unique<IndexInfo>(index_name, column, pool);
  // Bulk-build from existing rows.
  HeapFileScanner scanner(&heap_);
  Rid rid;
  std::string bytes;
  while (true) {
    WSQ_ASSIGN_OR_RETURN(bool more, scanner.Next(&rid, &bytes));
    if (!more) break;
    WSQ_ASSIGN_OR_RETURN(Row row, DeserializeRow(bytes));
    const Value& key = row.value(column);
    if (!Indexable(key)) continue;
    WSQ_RETURN_IF_ERROR(index->tree()->Insert(key, rid));
  }
  IndexInfo* ptr = index.get();
  indexes_.push_back(std::move(index));
  return ptr;
}

Result<IndexInfo*> TableInfo::AttachIndex(const std::string& index_name,
                                          size_t column, PageId root,
                                          BufferPool* pool) {
  if (column >= schema_.NumColumns()) {
    return Status::IOError("index column out of range: " + index_name);
  }
  auto index =
      std::make_unique<IndexInfo>(index_name, column, pool, root);
  IndexInfo* ptr = index.get();
  indexes_.push_back(std::move(index));
  return ptr;
}

IndexInfo* TableInfo::FindIndexOn(const std::string& column_name) const {
  auto col = schema_.Find("", column_name);
  if (!col.ok()) return nullptr;
  for (const auto& index : indexes_) {
    if (index->column() == *col) return index.get();
  }
  return nullptr;
}

Result<std::vector<Row>> TableInfo::ScanAll() const {
  std::vector<Row> rows;
  TableScanner scanner(this);
  Row row;
  while (true) {
    WSQ_ASSIGN_OR_RETURN(bool more, scanner.Next(&row));
    if (!more) break;
    rows.push_back(row);
  }
  return rows;
}

Result<bool> TableScanner::Next(Row* row) {
  std::string bytes;
  WSQ_ASSIGN_OR_RETURN(bool more, scanner_.Next(nullptr, &bytes));
  if (!more) return false;
  WSQ_ASSIGN_OR_RETURN(*row, DeserializeRow(bytes));
  return true;
}

Result<TableInfo*> Catalog::CreateTable(const std::string& name,
                                        const Schema& schema) {
  return AttachTable(name, schema, kInvalidPageId);
}

Result<TableInfo*> Catalog::AttachTable(const std::string& name,
                                        const Schema& schema,
                                        PageId first_page) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table = std::make_unique<TableInfo>(
      name, schema.WithQualifier(name), pool_, first_page);
  TableInfo* ptr = table.get();
  tables_[key] = std::move(table);
  creation_order_.push_back(name);
  return ptr;
}

Result<TableInfo*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  std::string original = it->second->name();
  tables_.erase(it);
  creation_order_.erase(
      std::remove(creation_order_.begin(), creation_order_.end(), original),
      creation_order_.end());
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables() const {
  return creation_order_;
}

}  // namespace wsq
