#include "types/row.h"

#include <algorithm>

namespace wsq {

Row Row::Concat(const Row& left, const Row& right) {
  std::vector<Value> vals = left.values_;
  vals.insert(vals.end(), right.values_.begin(), right.values_.end());
  return Row(std::move(vals));
}

bool Row::HasPlaceholders() const {
  for (const Value& v : values_) {
    if (v.is_placeholder()) return true;
  }
  return false;
}

std::vector<CallId> Row::PendingCalls() const {
  std::vector<CallId> calls;
  for (const Value& v : values_) {
    if (v.is_placeholder()) calls.push_back(v.AsPlaceholder().call);
  }
  std::sort(calls.begin(), calls.end());
  calls.erase(std::unique(calls.begin(), calls.end()), calls.end());
  return calls;
}

int Row::Compare(const Row& other) const {
  size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = values_[i].Compare(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() < other.values_.size()) return -1;
  if (values_.size() > other.values_.size()) return 1;
  return 0;
}

size_t Row::ApproxBytes() const {
  size_t n = sizeof(Row) + values_.capacity() * sizeof(Value);
  for (const Value& v : values_) {
    if (v.is_string()) n += v.AsString().capacity();
  }
  return n;
}

size_t Row::Hash() const {
  size_t h = 0x345678;
  for (const Value& v : values_) {
    h = h * 1000003u ^ v.Hash();
  }
  return h;
}

std::string Row::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace wsq
