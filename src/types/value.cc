#include "types/value.h"

#include <functional>

#include "common/strings.h"

namespace wsq {

std::string_view TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kNull: return "NULL";
    case TypeId::kInt64: return "INT";
    case TypeId::kDouble: return "DOUBLE";
    case TypeId::kString: return "STRING";
    case TypeId::kPlaceholder: return "PLACEHOLDER";
  }
  return "UNKNOWN";
}

namespace {
// Order rank for cross-type comparisons; numerics share a rank.
int TypeRank(TypeId t) {
  switch (t) {
    case TypeId::kNull: return 0;
    case TypeId::kInt64:
    case TypeId::kDouble: return 1;
    case TypeId::kString: return 2;
    case TypeId::kPlaceholder: return 3;
  }
  return 4;
}

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case TypeId::kNull:
      return 0;
    case TypeId::kInt64:
    case TypeId::kDouble:
      if (is_int() && other.is_int()) return Cmp(AsInt(), other.AsInt());
      return Cmp(NumericAsDouble(), other.NumericAsDouble());
    case TypeId::kString:
      return Cmp(AsString(), other.AsString());
    case TypeId::kPlaceholder: {
      const Placeholder& a = AsPlaceholder();
      const Placeholder& b = other.AsPlaceholder();
      if (int c = Cmp(a.call, b.call); c != 0) return c;
      return Cmp(a.field, b.field);
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case TypeId::kNull:
      return 0x9E3779B9u;
    case TypeId::kInt64:
      return std::hash<int64_t>()(AsInt());
    case TypeId::kDouble: {
      double d = AsDouble();
      // Hash integral doubles like their int64 counterparts so that
      // 1 == 1.0 implies equal hashes.
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return std::hash<int64_t>()(as_int);
      }
      return std::hash<double>()(d);
    }
    case TypeId::kString:
      return std::hash<std::string>()(AsString());
    case TypeId::kPlaceholder: {
      const Placeholder& p = AsPlaceholder();
      return std::hash<uint64_t>()(p.call * 31 +
                                   static_cast<uint64_t>(p.field));
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kInt64:
      return std::to_string(AsInt());
    case TypeId::kDouble: {
      std::string s = StrFormat("%.6g", AsDouble());
      return s;
    }
    case TypeId::kString:
      return "'" + AsString() + "'";
    case TypeId::kPlaceholder:
      return StrFormat("?<%llu:%d>",
                       static_cast<unsigned long long>(AsPlaceholder().call),
                       AsPlaceholder().field);
  }
  return "?";
}

Result<int64_t> Value::ToInt() const {
  switch (type()) {
    case TypeId::kInt64:
      return AsInt();
    case TypeId::kDouble:
      return static_cast<int64_t>(AsDouble());
    default:
      return Status::TypeError("cannot convert " +
                               std::string(TypeIdToString(type())) +
                               " to INT");
  }
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case TypeId::kInt64:
      return static_cast<double>(AsInt());
    case TypeId::kDouble:
      return AsDouble();
    default:
      return Status::TypeError("cannot convert " +
                               std::string(TypeIdToString(type())) +
                               " to DOUBLE");
  }
}

}  // namespace wsq
