#ifndef WSQ_TYPES_VALUE_H_
#define WSQ_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace wsq {

/// Column/value type tags.
enum class TypeId : uint8_t {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  /// A pending asynchronous external call result (paper §4.1): the value
  /// is not yet known; it names a ReqPump call and which output field of
  /// that call's rows will replace it.
  kPlaceholder,
};

std::string_view TypeIdToString(TypeId t);

/// Identifier of a pending asynchronous external call.
using CallId = uint64_t;
inline constexpr CallId kInvalidCallId = 0;

/// Marker stored inside an incomplete tuple (paper §4.1).
struct Placeholder {
  CallId call = kInvalidCallId;
  /// Index of the output field in the call's result rows that will
  /// replace this value.
  int32_t field = 0;

  bool operator==(const Placeholder& o) const {
    return call == o.call && field == o.field;
  }
};

/// A dynamically-typed SQL value: NULL, INT64, DOUBLE, STRING, or a
/// placeholder for a pending external call.
class Value {
 public:
  /// NULL value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }
  static Value Pending(CallId call, int32_t field) {
    return Value(Placeholder{call, field});
  }

  TypeId type() const {
    switch (rep_.index()) {
      case 0: return TypeId::kNull;
      case 1: return TypeId::kInt64;
      case 2: return TypeId::kDouble;
      case 3: return TypeId::kString;
      default: return TypeId::kPlaceholder;
    }
  }

  bool is_null() const { return type() == TypeId::kNull; }
  bool is_int() const { return type() == TypeId::kInt64; }
  bool is_double() const { return type() == TypeId::kDouble; }
  bool is_string() const { return type() == TypeId::kString; }
  bool is_placeholder() const { return type() == TypeId::kPlaceholder; }
  /// True for INT64 or DOUBLE.
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const Placeholder& AsPlaceholder() const {
    return std::get<Placeholder>(rep_);
  }

  /// Numeric value widened to double (INT64 or DOUBLE only).
  double NumericAsDouble() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// Three-way comparison defining a total order for sorting:
  /// NULL < numerics (compared cross-type) < strings < placeholders.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }

  /// Stable hash consistent with operator==.
  size_t Hash() const;

  /// Approximate in-memory footprint in bytes (rep + string payload).
  /// Used by ReqSync buffer budgets; cheap, not exact.
  size_t ApproxBytes() const {
    size_t n = sizeof(Value);
    if (is_string()) n += AsString().capacity();
    return n;
  }

  /// Human-readable rendering ("NULL", 42, 3.14, 'abc', ?<call:field>).
  std::string ToString() const;

  /// Coercions used by the expression evaluator.
  Result<int64_t> ToInt() const;
  Result<double> ToDouble() const;

 private:
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(Placeholder p) : rep_(p) {}

  std::variant<std::monostate, int64_t, double, std::string, Placeholder>
      rep_;
};

}  // namespace wsq

#endif  // WSQ_TYPES_VALUE_H_
