#ifndef WSQ_TYPES_ROW_H_
#define WSQ_TYPES_ROW_H_

#include <string>
#include <vector>

#include "types/value.h"

namespace wsq {

/// A materialized tuple: an ordered list of values.
///
/// Rows flowing through the asynchronous execution engine may contain
/// placeholder values (see Value::Pending) until a ReqSync operator
/// patches them (paper §4.1).
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& value(size_t i) const { return values_[i]; }
  Value& value(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenation for join outputs.
  static Row Concat(const Row& left, const Row& right);

  /// True if any value is a pending placeholder.
  bool HasPlaceholders() const;

  /// Collects the distinct CallIds this row is waiting on.
  std::vector<CallId> PendingCalls() const;

  /// Lexicographic comparison; see Value::Compare for the value order.
  int Compare(const Row& other) const;
  bool operator==(const Row& other) const { return Compare(other) == 0; }

  size_t Hash() const;

  /// Approximate in-memory footprint (sum of Value::ApproxBytes plus
  /// the vector itself). Used by ReqSync buffer budgets.
  size_t ApproxBytes() const;

  /// "[v1, v2, ...]"
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace wsq

#endif  // WSQ_TYPES_ROW_H_
