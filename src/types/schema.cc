#include "types/schema.h"

#include "common/strings.h"

namespace wsq {

std::string Column::QualifiedName() const {
  if (qualifier.empty()) return name;
  return qualifier + "." + name;
}

Result<size_t> Schema::Find(const std::string& qualifier,
                            const std::string& name) const {
  size_t found = columns_.size();
  int matches = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (!EqualsIgnoreCase(c.name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(c.qualifier, qualifier)) {
      continue;
    }
    found = i;
    ++matches;
  }
  if (matches == 0) {
    std::string full = qualifier.empty() ? name : qualifier + "." + name;
    return Status::BindError("column not found: " + full);
  }
  if (matches > 1) {
    return Status::BindError("ambiguous column reference: " + name);
  }
  return found;
}

bool Schema::Contains(const std::string& qualifier,
                      const std::string& name) const {
  return Find(qualifier, name).ok();
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::WithQualifier(const std::string& alias) const {
  Schema out = *this;
  for (Column& c : out.columns_) c.qualifier = alias;
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].QualifiedName();
    out += ":";
    out += TypeIdToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace wsq
