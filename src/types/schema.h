#ifndef WSQ_TYPES_SCHEMA_H_
#define WSQ_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace wsq {

/// A named, typed output column. `qualifier` is the table name or alias
/// the column came from (empty for computed columns).
struct Column {
  std::string name;
  TypeId type = TypeId::kNull;
  std::string qualifier;

  Column() = default;
  Column(std::string n, TypeId t, std::string q = "")
      : name(std::move(n)), type(t), qualifier(std::move(q)) {}

  /// "qualifier.name" or just "name".
  std::string QualifiedName() const;

  bool operator==(const Column& o) const {
    return name == o.name && type == o.type && qualifier == o.qualifier;
  }
};

/// An ordered list of columns describing a row shape.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t NumColumns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Index of the column matching `name` with optional `qualifier`.
  /// Unqualified lookups must be unambiguous. Case-insensitive.
  Result<size_t> Find(const std::string& qualifier,
                      const std::string& name) const;

  /// True if any column matches.
  bool Contains(const std::string& qualifier, const std::string& name) const;

  /// Concatenation for join outputs.
  static Schema Concat(const Schema& left, const Schema& right);

  /// Copy with every column's qualifier replaced by `alias`.
  Schema WithQualifier(const std::string& alias) const;

  /// "(<q.name:TYPE>, ...)"
  std::string ToString() const;

  bool operator==(const Schema& o) const { return columns_ == o.columns_; }

 private:
  std::vector<Column> columns_;
};

}  // namespace wsq

#endif  // WSQ_TYPES_SCHEMA_H_
