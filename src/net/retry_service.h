#ifndef WSQ_NET_RETRY_SERVICE_H_
#define WSQ_NET_RETRY_SERVICE_H_

#include <cstdint>

#include "common/random.h"
#include "common/thread_annotations.h"
#include "net/search_service.h"

namespace wsq {

/// Retry behaviour for transient engine failures.
struct RetryPolicy {
  /// Total attempts, including the first (>= 1).
  int max_attempts = 3;
  /// Delay before the first retry.
  int64_t initial_backoff_micros = 10000;
  /// Backoff grows geometrically per retry.
  double backoff_multiplier = 2.0;
  /// Upper bound on any single backoff sleep. 0 = uncapped.
  int64_t max_backoff_micros = 0;
  /// Decorrelated jitter: each sleep is drawn uniformly from
  /// [base, 3 * base] where `base` follows the deterministic
  /// exponential schedule — concurrent retries against the same engine
  /// spread out instead of stampeding in lockstep. The deterministic
  /// schedule is always the lower bound, so timing assumptions based on
  /// it still hold. Off = exact exponential backoff.
  bool decorrelated_jitter = true;
  /// Seed for the jitter draws (reproducible runs).
  uint64_t seed = 1;
};

struct RetryStats {
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t gave_up = 0;
  /// Failures passed through without retry because the error was not
  /// transient (the engine answered, just unhelpfully).
  uint64_t non_transient = 0;
};

/// SearchService decorator that retries failed requests with
/// exponential backoff. The paper's related-work discussion ([BT98])
/// treats temporarily-unavailable sources as a first-class concern;
/// this keeps a flaky engine from aborting a whole WSQ query.
///
/// Only TRANSIENT failures (IsTransient: unavailable, deadline,
/// resource exhaustion, I/O) are retried; permanent errors such as
/// kInvalidArgument or kParseError pass through immediately — retrying
/// a malformed query can never succeed.
///
/// Retries run on short-lived scheduler threads (the error path is
/// rare); the destructor blocks until all in-flight retries resolve.
class RetryingSearchService : public SearchService {
 public:
  RetryingSearchService(SearchService* wrapped, RetryPolicy policy);
  ~RetryingSearchService() override;

  const std::string& name() const override { return wrapped_->name(); }

  void Submit(SearchRequest request, SearchCallback done) override;

  RetryStats stats() const;

  /// Calls accepted but not yet resolved (including backoff sleeps and
  /// attempts parked inside the wrapped service). Teardown harnesses
  /// poll this while unwedging the layer below: the destructor blocks
  /// until it reaches zero.
  uint64_t outstanding() const WSQ_EXCLUDES(mu_);

 private:
  void Attempt(SearchRequest request, SearchCallback done, int attempt,
               int64_t backoff_micros) WSQ_EXCLUDES(mu_);
  /// Actual sleep for a retry whose deterministic backoff is `base`:
  /// jittered and capped per the policy.
  int64_t SleepForBackoff(int64_t base) WSQ_EXCLUDES(mu_);
  void TrackStart() WSQ_EXCLUDES(mu_);
  void TrackFinish() WSQ_EXCLUDES(mu_);

  SearchService* wrapped_;
  /// Immutable after construction (read without mu_).
  RetryPolicy policy_;

  mutable Mutex mu_;
  CondVar cv_;
  uint64_t outstanding_ WSQ_GUARDED_BY(mu_) = 0;
  Rng rng_ WSQ_GUARDED_BY(mu_);
  RetryStats stats_ WSQ_GUARDED_BY(mu_);
};

}  // namespace wsq

#endif  // WSQ_NET_RETRY_SERVICE_H_
