#ifndef WSQ_NET_RETRY_SERVICE_H_
#define WSQ_NET_RETRY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "net/search_service.h"

namespace wsq {

/// Retry behaviour for transient engine failures.
struct RetryPolicy {
  /// Total attempts, including the first (>= 1).
  int max_attempts = 3;
  /// Delay before the first retry.
  int64_t initial_backoff_micros = 10000;
  /// Backoff grows geometrically per retry.
  double backoff_multiplier = 2.0;
};

struct RetryStats {
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t gave_up = 0;
};

/// SearchService decorator that retries failed requests with
/// exponential backoff. The paper's related-work discussion ([BT98])
/// treats temporarily-unavailable sources as a first-class concern;
/// this keeps a flaky engine from aborting a whole WSQ query.
///
/// Retries run on short-lived scheduler threads (the error path is
/// rare); the destructor blocks until all in-flight retries resolve.
class RetryingSearchService : public SearchService {
 public:
  RetryingSearchService(SearchService* wrapped, RetryPolicy policy);
  ~RetryingSearchService() override;

  const std::string& name() const override { return wrapped_->name(); }

  void Submit(SearchRequest request, SearchCallback done) override;

  RetryStats stats() const;

 private:
  void Attempt(SearchRequest request, SearchCallback done, int attempt,
               int64_t backoff_micros);
  void TrackStart();
  void TrackFinish();

  SearchService* wrapped_;
  RetryPolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t outstanding_ = 0;
  RetryStats stats_;
};

}  // namespace wsq

#endif  // WSQ_NET_RETRY_SERVICE_H_
