#ifndef WSQ_NET_LATENCY_MODEL_H_
#define WSQ_NET_LATENCY_MODEL_H_

#include <cstdint>

#include "common/random.h"

namespace wsq {

/// Deterministic model of wide-area request latency.
///
/// The paper measured AltaVista/Google calls at roughly a second each
/// (§1, §5). Benchmarks here default to tens of milliseconds so the
/// suite runs in minutes; the async/sync *ratio* — the reported result —
/// depends on latency/compute overlap, not the absolute scale
/// (DESIGN.md §2).
struct LatencyModel {
  /// Mean service latency.
  int64_t base_micros = 40000;
  /// Uniform jitter: sample in [base - jitter, base + jitter].
  int64_t jitter_micros = 10000;
  /// With this probability the sample is multiplied by `tail_factor`
  /// (models slow outliers / engine load spikes).
  double heavy_tail_prob = 0.0;
  double tail_factor = 4.0;

  /// Next latency sample; always >= 0.
  int64_t SampleMicros(Rng& rng) const;

  /// A zero-latency model (for tests that only check plumbing).
  static LatencyModel Instant() { return LatencyModel{0, 0, 0.0, 1.0}; }

  /// Fixed latency with no jitter.
  static LatencyModel Fixed(int64_t micros) {
    return LatencyModel{micros, 0, 0.0, 1.0};
  }
};

}  // namespace wsq

#endif  // WSQ_NET_LATENCY_MODEL_H_
