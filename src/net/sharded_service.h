#ifndef WSQ_NET_SHARDED_SERVICE_H_
#define WSQ_NET_SHARDED_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "async/req_pump.h"
#include "common/thread_annotations.h"
#include "net/circuit_breaker.h"
#include "net/fault_service.h"
#include "net/latency_model.h"
#include "net/retry_service.h"
#include "net/search_service.h"
#include "net/shard_policy.h"
#include "net/simulated_service.h"
#include "obs/histogram.h"
#include "search/search_engine.h"
#include "web/corpus.h"

namespace wsq {

/// Aggregate counters for one ShardedSearchService (exported by its
/// metrics collector; see DESIGN.md §13).
struct ShardedServiceStats {
  /// Logical requests that started a new shard fan-out.
  uint64_t fanouts = 0;
  /// Logical requests answered by joining an existing fan-out.
  uint64_t coalesced = 0;
  /// Physical shard calls registered on the pump (primaries + hedges).
  uint64_t shard_calls = 0;
  /// Hedge calls issued (latency-triggered or failure-triggered).
  uint64_t hedges = 0;
  /// Shards decided by their hedge rather than their primary.
  uint64_t hedge_wins = 0;
  /// Waiter responses delivered OK with all shards contributing.
  uint64_t complete_results = 0;
  /// Waiter responses delivered OK but partial (quorum / best-effort).
  uint64_t partial_results = 0;
  /// Waiter responses failed because the policy's quorum was missed.
  uint64_t quorum_failures = 0;
  /// Sum over partial responses of the shards missing from each.
  uint64_t degraded_shards = 0;
};

/// Scatter-gather front-end over N hash-partitioned search shards
/// (ROADMAP item 4; ODYS in PAPERS.md): one logical SearchRequest fans
/// out to every shard through a ReqPump — each shard its own
/// destination, so per-destination limits, deadlines and latency
/// histograms apply per shard — and the per-shard answers merge back
/// into one SearchResponse (top-k by score, counts summed).
///
/// Robustness machinery, per DESIGN.md §13:
///  - Partial-result quorum: each waiter's ShardOptions picks fail /
///    K-of-N / best-effort when shards cannot answer; degraded
///    responses are marked partial with shards_failed set.
///  - Hedged requests: a shard still undecided after a latency-quantile
///    delay (seeded from the pump's per-destination histograms) is
///    re-issued against its replica; first success wins, the loser is
///    cancelled through ReqPump::CancelCall. A failed primary fails
///    over to the replica immediately.
///  - Single-flight coalescing: logical requests with the same
///    (kind, k, query) join one in-flight fan-out as extra waiters;
///    each waiter still gets its own policy verdict, and one waiter
///    abandoning its result (e.g. an outer pump cancelling its call)
///    never disturbs the shared shard calls.
///
/// Every accepted request completes, including at destruction
/// (outstanding waiters are failed with kUnavailable).
class ShardedSearchService : public SearchService {
 public:
  /// One shard: the primary stack and an optional replica used for
  /// hedging/failover. Both must outlive the service and serve the
  /// SAME corpus slice with the same rank_seed (merge correctness).
  struct Shard {
    SearchService* primary = nullptr;
    SearchService* replica = nullptr;  // null = no hedging for shard
  };

  struct Options {
    /// Logical engine name (what vtables see as the destination).
    std::string name = "sharded";
    /// Per-shard-call deadline on the pump; <= 0 = pump default.
    int64_t call_timeout_micros = 250000;
    /// Hedge a shard once its primary has been outstanding for this
    /// quantile of the destination's observed latency distribution.
    double hedge_quantile = 0.95;
    /// Observations required before the histogram seeds the delay;
    /// below this, `default_hedge_delay_micros` is used.
    uint64_t min_hedge_samples = 50;
    int64_t default_hedge_delay_micros = 20000;
    /// Floor for the hedge delay (a noisy fast quantile must not turn
    /// hedging into always-mirror).
    int64_t hedge_min_delay_micros = 1000;
    /// Disable to fan out without ever hedging (benches).
    bool enable_hedging = true;
    /// Gather-loop fallback wakeup; bounds reaction time to pump-timer
    /// completions (deadline expiries) that bypass the completion ping.
    int64_t poll_micros = 2000;
  };

  /// `pump` carries the shard calls and must outlive the service.
  ShardedSearchService(std::vector<Shard> shards, ReqPump* pump,
                       Options options);
  ~ShardedSearchService() override;

  const std::string& name() const override { return options_.name; }

  void Submit(SearchRequest request, SearchCallback done) override
      WSQ_EXCLUDES(mu_);

  /// Blocks until no flight is outstanding (tests/benches).
  void Quiesce() WSQ_EXCLUDES(mu_);

  size_t num_shards() const { return shards_.size(); }
  ShardedServiceStats stats() const WSQ_EXCLUDES(mu_);

  /// Per-shard health: true if the shard's last decided call answered
  /// OK. Exported as wsq_shard_healthy{destination=...}.
  std::vector<bool> shard_health() const WSQ_EXCLUDES(mu_);

 private:
  /// Decoded per-shard answer (see EncodeResponse/DecodeResult in the
  /// .cc: shard SearchResponses travel through the pump as CallResult
  /// rows, so the pump ledger IS the data path).
  struct ShardAnswer {
    Status status;
    int64_t count = 0;
    std::vector<SearchHit> hits;
  };

  /// One shard leg of one flight.
  struct ShardCall {
    CallId primary = kInvalidCallId;
    CallId hedge = kInvalidCallId;
    /// Steady-clock micros after which the hedge fires; 0 = no timer
    /// (hedging disabled or no replica).
    int64_t hedge_at_micros = 0;
    bool primary_taken = false;
    bool hedge_taken = false;
    bool decided = false;
    bool ok = false;
    bool hedge_won = false;
    ShardAnswer answer;  // valid when decided && ok
  };

  /// One coalesced waiter: the callback plus its own quorum policy.
  struct Waiter {
    ShardOptions options;
    SearchCallback done;
    /// Query the submitting thread was bound to (flight recorder);
    /// stamps this waiter's quorum-failure event.
    uint64_t query_id = 0;
  };

  /// One in-flight fan-out, keyed by SearchRequest::CacheKey().
  struct Flight {
    SearchRequest request;
    std::vector<ShardCall> calls;
    std::vector<Waiter> waiters;
    /// Monotonic id correlating this fan-out's recorder events
    /// (coalesce joins, hedges, leg outcomes) across threads.
    uint64_t flight_id = 0;
  };

  /// Callback delivery staged while holding mu_, delivered outside it.
  struct Delivery {
    SearchCallback done;
    SearchResponse response;
  };

  void GatherLoop() WSQ_EXCLUDES(mu_);
  /// Polls pump results / fires hedges for one flight; appends
  /// resolved-waiter deliveries. Returns true when the flight is done
  /// (all waiters delivered) and should be erased.
  bool AdvanceFlightLocked(Flight* flight, int64_t now,
                           std::vector<Delivery>* out) WSQ_REQUIRES(mu_);
  /// Registers shard `i`'s hedge call on the replica.
  void FireHedgeLocked(Flight* flight, size_t i) WSQ_REQUIRES(mu_);
  /// Cancels and reaps a still-outstanding losing leg.
  void ReapLegLocked(CallId id) WSQ_REQUIRES(mu_);
  /// Merged response over the flight's OK shards for one waiter.
  SearchResponse MergeLocked(const Flight& flight) const
      WSQ_REQUIRES(mu_);
  /// Hedge delay for shard `i` from its latency histogram.
  int64_t HedgeDelayMicros(size_t i) const;
  /// Registers a shard call (primary or hedge) on the pump.
  CallId RegisterLeg(SearchService* service, const SearchRequest& request,
                     const std::string& destination);

  const std::vector<Shard> shards_;
  ReqPump* const pump_;
  const Options options_;
  /// Per-shard primary destination names (= primary->name()), cached so
  /// the gather loop never touches wrapped services' locks.
  std::vector<std::string> destinations_;
  /// Latency histograms seeding the hedge delay, one per shard;
  /// fetched once at construction (stable registry pointers).
  std::vector<const Histogram*> latency_hists_;

  /// Pinged by leg completions so the gather loop reacts immediately;
  /// shared with the completion lambdas (a completion arriving during
  /// or after destruction must touch valid memory). Leaf lock: taken
  /// with mu_ and pump locks NOT held below it in no cycle — order is
  /// mu_ -> pump.mu -> wake->mu, each released before the next.
  struct WakeState {
    Mutex mu;
    CondVar cv;
    bool ping WSQ_GUARDED_BY(mu) = false;
  };
  std::shared_ptr<WakeState> wake_;

  mutable Mutex mu_;
  CondVar idle_cv_;
  uint64_t next_flight_id_ WSQ_GUARDED_BY(mu_) = 1;
  std::map<std::string, Flight> flights_ WSQ_GUARDED_BY(mu_);
  ShardedServiceStats stats_ WSQ_GUARDED_BY(mu_);
  /// Per-shard rolling health bit (last decided outcome; starts true).
  std::vector<bool> shard_ok_ WSQ_GUARDED_BY(mu_);
  /// Per-shard decided-call counters for the collector.
  std::vector<uint64_t> shard_decided_ok_ WSQ_GUARDED_BY(mu_);
  std::vector<uint64_t> shard_decided_failed_ WSQ_GUARDED_BY(mu_);
  bool stopping_ WSQ_GUARDED_BY(mu_) = false;

  std::thread gather_;
  uint64_t collector_id_ = 0;
  /// \statusz section provider handle, removed in the destructor.
  uint64_t statusz_id_ = 0;
};

/// Self-contained N-shard simulated cluster: slices one corpus into N
/// disjoint shards, builds primary (and optionally replica) engines
/// per shard — all sharing the base engine's rank_seed so merged
/// results are byte-identical to an unsharded engine over the full
/// corpus — wraps each in the fault -> retry -> circuit-breaker stack,
/// and fronts them with a ShardedSearchService on a private ReqPump.
/// Used by DemoEnv (`search_shards`), tests/net and bench_shards.
class SimulatedShardCluster {
 public:
  struct Options {
    size_t num_shards = 4;
    /// Base engine identity; shard engines are named
    /// "<name>.shard<i>" / "<name>.shard<i>r" (replicas).
    SearchEngineConfig engine;
    LatencyModel latency;
    /// Per-shard concurrent capacity of each simulated node.
    size_t server_capacity = 0;
    uint64_t seed = 1;
    /// Build a replica node per shard (enables hedging/failover).
    bool with_replicas = false;
    /// Fault plans applied per shard (index < num_shards); missing
    /// entries mean no injected faults. Replicas are not faulted.
    std::vector<FaultPlan> shard_faults;
    RetryPolicy retry;
    CircuitBreakerOptions breaker;
    ReqPump::Limits pump_limits;
    ShardedSearchService::Options service;
  };

  /// `corpus` must outlive the cluster.
  SimulatedShardCluster(const Corpus* corpus, Options options);

  /// Orderly teardown even with calls parked in the fault layers'
  /// hang queues: stops the front-end, then releases hung calls until
  /// every retry stack drains (a released hang is a transient failure,
  /// so the retry layer may re-submit — and re-park).
  ~SimulatedShardCluster();

  SimulatedShardCluster(const SimulatedShardCluster&) = delete;
  SimulatedShardCluster& operator=(const SimulatedShardCluster&) = delete;

  ShardedSearchService* service() { return sharded_.get(); }
  ReqPump* pump() { return pump_.get(); }
  size_t num_shards() const { return options_.num_shards; }
  FaultInjectingSearchService* fault(size_t shard) {
    return faults_[shard].get();
  }
  CircuitBreakerSearchService* breaker(size_t shard) {
    return breakers_[shard].get();
  }

  /// Blocks until the front-end and every simulated node are idle.
  void Quiesce();

 private:
  Options options_;
  /// Destruction is bottom-up by declaration order reversal: the
  /// ShardedSearchService goes first (stops its gather loop and fails
  /// waiters), then its pump (waits for in-flight legs), then the
  /// service stacks those legs ran against, then engines and slices.
  std::vector<Corpus> slices_;
  std::vector<std::unique_ptr<SearchEngine>> engines_;
  std::vector<std::unique_ptr<SimulatedSearchService>> nodes_;
  std::vector<std::unique_ptr<FaultInjectingSearchService>> faults_;
  std::vector<std::unique_ptr<RetryingSearchService>> retries_;
  std::vector<std::unique_ptr<CircuitBreakerSearchService>> breakers_;
  /// Replica stacks (plain simulated nodes; index parallel to shards).
  std::vector<std::unique_ptr<SearchEngine>> replica_engines_;
  std::vector<std::unique_ptr<SimulatedSearchService>> replica_nodes_;
  std::unique_ptr<ReqPump> pump_;
  std::unique_ptr<ShardedSearchService> sharded_;
};

}  // namespace wsq

#endif  // WSQ_NET_SHARDED_SERVICE_H_
