#ifndef WSQ_NET_CIRCUIT_BREAKER_H_
#define WSQ_NET_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/search_service.h"

namespace wsq {

/// Circuit breaker state (classic closed → open → half-open machine).
enum class CircuitState {
  kClosed,    ///< healthy: requests flow, consecutive failures counted
  kOpen,      ///< tripped: requests fail fast with kUnavailable
  kHalfOpen,  ///< cooling down: limited probe requests test recovery
};

std::string_view CircuitStateToString(CircuitState state);

struct CircuitBreakerOptions {
  /// Consecutive transient failures that trip the circuit.
  int failure_threshold = 5;
  /// Time the circuit stays open before allowing a probe.
  int64_t cooldown_micros = 1000000;
  /// Probes allowed concurrently while half-open.
  int half_open_probes = 1;
  /// Clock override for deterministic tests; null = steady clock.
  std::function<int64_t()> now;
};

struct CircuitBreakerStats {
  /// closed/half-open → open transitions.
  uint64_t trips = 0;
  /// Requests rejected without reaching the engine (circuit open).
  uint64_t fast_failures = 0;
  /// Probe requests admitted while half-open.
  uint64_t probes = 0;
};

/// Per-destination circuit breaker: after `failure_threshold`
/// consecutive TRANSIENT failures (IsTransient) the circuit opens and
/// calls fail fast with kUnavailable instead of burning retries against
/// a dead engine; after `cooldown_micros` one probe request half-opens
/// it — success closes the circuit, another transient failure re-opens
/// it for a fresh cool-down. Non-transient errors (the engine answered,
/// just unhelpfully) neither count toward nor reset the failure streak.
/// Thread-safe.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// True if a request may be sent now; admitting a request while
  /// half-open counts it as a probe. False = fail fast.
  bool Allow() { return Allow(nullptr); }

  /// As above; when non-null, `*as_probe` is set to whether THIS
  /// admission is the half-open probe. Callers thread that flag back
  /// into RecordSuccess/RecordFailure so the single probe slot is
  /// released by the probe's own outcome — not wedged by it (a probe
  /// answering with a non-transient error) and not stolen by stale
  /// completions from before the trip.
  bool Allow(bool* as_probe);

  /// Record the outcome of an admitted request. The flag-less forms
  /// infer `was_probe` from the current state (half-open = probe),
  /// which is right for callers that serialize probe outcomes.
  void RecordSuccess();
  void RecordSuccess(bool was_probe);
  void RecordFailure(const Status& status);
  void RecordFailure(const Status& status, bool was_probe);

  CircuitState state() const;
  CircuitBreakerStats stats() const;
  int consecutive_failures() const;

  /// Destination label stamped on flight-recorder transition events.
  /// Set once right after construction (CircuitBreakerSearchService
  /// passes its engine name), before any concurrent use.
  void set_destination(std::string destination) {
    destination_ = std::move(destination);
  }
  const std::string& destination() const { return destination_; }

 private:
  int64_t Now() const;
  void TripLocked(int64_t now) WSQ_REQUIRES(mu_);
  void RecordSuccessLocked(bool was_probe) WSQ_REQUIRES(mu_);
  void RecordFailureLocked(const Status& status, bool was_probe)
      WSQ_REQUIRES(mu_);

  /// Immutable after construction (read without mu_).
  CircuitBreakerOptions options_;
  /// Immutable after set_destination (read without mu_).
  std::string destination_;

  mutable Mutex mu_;
  CircuitState state_ WSQ_GUARDED_BY(mu_) = CircuitState::kClosed;
  int consecutive_failures_ WSQ_GUARDED_BY(mu_) = 0;
  int inflight_probes_ WSQ_GUARDED_BY(mu_) = 0;
  int64_t open_until_micros_ WSQ_GUARDED_BY(mu_) = 0;
  CircuitBreakerStats stats_ WSQ_GUARDED_BY(mu_);
};

/// SearchService decorator guarding one engine with a CircuitBreaker.
/// Rejected requests complete immediately with kUnavailable (itself a
/// transient code, so an outer retry layer backs off rather than
/// aborting the query). Keyed per engine by construction: wrap each
/// engine's service with its own instance.
class CircuitBreakerSearchService : public SearchService {
 public:
  CircuitBreakerSearchService(SearchService* wrapped,
                              CircuitBreakerOptions options = {});

  /// Unhooks the per-destination stats collector from the registry.
  ~CircuitBreakerSearchService() override;

  const std::string& name() const override { return wrapped_->name(); }

  void Submit(SearchRequest request, SearchCallback done) override;

  CircuitBreaker* breaker() { return &breaker_; }
  const CircuitBreaker* breaker() const { return &breaker_; }

 private:
  SearchService* wrapped_;
  CircuitBreaker breaker_;
  uint64_t collector_id_ = 0;
  /// \statusz section provider handle, removed in the destructor.
  uint64_t statusz_id_ = 0;
};

}  // namespace wsq

#endif  // WSQ_NET_CIRCUIT_BREAKER_H_
