#ifndef WSQ_NET_FAULT_SERVICE_H_
#define WSQ_NET_FAULT_SERVICE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "net/search_service.h"

namespace wsq {

/// Declarative fault plan for FaultInjectingSearchService.
///
/// Probabilistic faults are keyed on the REQUEST CONTENT (a stable hash
/// of seed + cache key), not on arrival order, so a run is reproducible
/// per seed regardless of how concurrent submitters interleave: the same
/// query draws the same fault on every run. The rate fields partition
/// the unit interval — permanent, then hang, then transient — so their
/// sum must be <= 1.
struct FaultPlan {
  uint64_t seed = 1;

  /// Fraction of the query space that hard-fails (kExecutionError) on
  /// every attempt: a request the engine can never serve.
  double permanent_rate = 0.0;

  /// Fraction of the query space that HANGS: the request is accepted
  /// but its callback is held until ReleaseHung() (run implicitly by
  /// the destructor, completing them with kUnavailable). Pair with
  /// ReqPump deadlines to exercise the timeout path.
  double hang_rate = 0.0;

  /// Fraction of the query space that fails transiently
  /// (kUnavailable): the first `transient_tries` attempts of such a
  /// query fail, later attempts pass through — so retries succeed.
  double transient_rate = 0.0;
  int transient_tries = 1;

  /// Independently of the above, this fraction of the query space gets
  /// `delay_micros` of extra latency before being forwarded (latency
  /// spike, not an error).
  double delay_rate = 0.0;
  int64_t delay_micros = 20000;

  /// Deterministic outage window per engine: arrivals numbered
  /// [outage_start, outage_start + outage_length) (1-based arrival
  /// counter) fail with kUnavailable — N consecutive failures, the
  /// pattern that trips a circuit breaker. 0 = disabled.
  uint64_t outage_start = 0;
  uint64_t outage_length = 0;
};

struct FaultStats {
  uint64_t requests = 0;
  uint64_t injected_permanent = 0;
  uint64_t injected_hangs = 0;
  uint64_t injected_transient = 0;
  uint64_t injected_delays = 0;
  uint64_t outage_failures = 0;
  uint64_t passed_through = 0;
};

/// SearchService decorator that injects failures per a deterministic,
/// seedable plan: the chaos harness the fault-tolerant call layer
/// (deadlines, retries, circuit breaking, degradation policies) is
/// tested against. Wraps one engine; destruction releases hung
/// requests (kUnavailable) and waits for delayed forwards, honouring
/// the SearchService contract that every accepted request eventually
/// completes.
class FaultInjectingSearchService : public SearchService {
 public:
  FaultInjectingSearchService(SearchService* wrapped, FaultPlan plan);
  ~FaultInjectingSearchService() override;

  const std::string& name() const override { return wrapped_->name(); }

  void Submit(SearchRequest request, SearchCallback done) override;

  FaultStats stats() const;

  /// Requests currently held hanging.
  size_t hung_requests() const;

  /// Completes every currently-hung request with kUnavailable (the
  /// engine "comes back" and sheds its stuck connections).
  void ReleaseHung();

 private:
  enum class FaultKind { kNone, kPermanent, kHang, kTransient };

  /// Content-keyed fault decision for one request.
  FaultKind Classify(const std::string& key) const;
  bool ShouldDelay(const std::string& key) const;

  void TrackStart() WSQ_EXCLUDES(mu_);
  void TrackFinish() WSQ_EXCLUDES(mu_);

  SearchService* wrapped_;
  /// Immutable after construction (read without mu_).
  FaultPlan plan_;

  mutable Mutex mu_;
  CondVar cv_;
  /// Delayed forwards not yet handed off.
  uint64_t outstanding_ WSQ_GUARDED_BY(mu_) = 0;
  std::vector<SearchCallback> hung_ WSQ_GUARDED_BY(mu_);
  /// Times each transient-fault key has been attempted.
  std::map<std::string, int> transient_seen_ WSQ_GUARDED_BY(mu_);
  FaultStats stats_ WSQ_GUARDED_BY(mu_);
};

}  // namespace wsq

#endif  // WSQ_NET_FAULT_SERVICE_H_
