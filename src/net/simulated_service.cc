#include "net/simulated_service.h"

#include <algorithm>

#include "common/clock.h"

namespace wsq {

SimulatedSearchService::SimulatedSearchService(const SearchEngine* engine,
                                               Options options)
    : engine_(engine),
      options_(options),
      rng_(options.seed ^ 0xcafe),
      timer_([this] { TimerLoop(); }) {}

SimulatedSearchService::~SimulatedSearchService() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  timer_.join();
}

void SimulatedSearchService::Submit(SearchRequest request,
                                    SearchCallback done) {
  int64_t now = NowMicros();
  {
    MutexLock lock(&mu_);
    int64_t latency = options_.latency.SampleMicros(rng_);
    int64_t start = now;
    if (options_.server_capacity > 0) {
      // All slots busy: the request starts when the earliest slot frees.
      while (!slot_free_times_.empty() && slot_free_times_.top() <= now) {
        slot_free_times_.pop();
      }
      if (slot_free_times_.size() >= options_.server_capacity) {
        start = slot_free_times_.top();
        slot_free_times_.pop();
      }
      slot_free_times_.push(start + latency);
    }
    Pending p;
    p.deadline_micros = start + latency;
    p.seq = next_seq_++;
    p.request = std::move(request);
    p.done = std::move(done);
    heap_.push(std::move(p));
    ++stats_.total_requests;
    ++in_flight_;
    stats_.max_concurrent = std::max(stats_.max_concurrent, in_flight_);
  }
  cv_.NotifyAll();
}

SimulatedServiceStats SimulatedSearchService::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void SimulatedSearchService::Quiesce() {
  MutexLock lock(&mu_);
  // Bounded: the delivery thread keeps draining the heap while we
  // wait. wsqlint: allow(cancel-blind-wait)
  while (in_flight_ != 0) cv_.Wait(mu_);
}

SearchResponse SimulatedSearchService::Evaluate(
    const SearchRequest& request) const {
  SearchResponse resp;
  if (request.kind == SearchRequest::Kind::kCount) {
    auto r = engine_->Count(request.query);
    if (!r.ok()) {
      resp.status = r.status();
    } else {
      resp.count = *r;
    }
  } else {
    auto r = engine_->Search(request.query, request.k);
    if (!r.ok()) {
      resp.status = r.status();
    } else {
      resp.hits = std::move(*r);
    }
  }
  return resp;
}

void SimulatedSearchService::TimerLoop() {
  MutexLock lock(&mu_);
  while (true) {
    if (heap_.empty()) {
      if (stopping_) return;
      while (!stopping_ && heap_.empty()) cv_.Wait(mu_);
      continue;
    }
    int64_t now = NowMicros();
    int64_t deadline = heap_.top().deadline_micros;
    // During shutdown pending requests still complete — just without
    // waiting out their remaining simulated latency.
    if (now < deadline && !stopping_) {
      cv_.WaitForMicros(mu_, deadline - now);
      continue;
    }
    Pending p = std::move(const_cast<Pending&>(heap_.top()));
    heap_.pop();
    lock.Unlock();
    // Evaluate and deliver outside the lock: callbacks may re-enter
    // Submit (e.g. a ReqPump dispatching queued calls).
    SearchResponse resp = Evaluate(p.request);
    p.done(std::move(resp));
    lock.Lock();
    --in_flight_;
    ++stats_.completed_requests;
    if (in_flight_ == 0) cv_.NotifyAll();
  }
}

}  // namespace wsq
