#include "net/search_service.h"

#include "common/strings.h"

namespace wsq {

std::string SearchRequest::CacheKey() const {
  return StrFormat("%c:%zu:", kind == Kind::kCount ? 'c' : 't', k) + query;
}

SearchResponse SearchService::Execute(SearchRequest request) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  SearchResponse out;
  Submit(std::move(request), [&](SearchResponse resp) {
    std::lock_guard<std::mutex> lock(mu);
    out = std::move(resp);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return out;
}

}  // namespace wsq
