#include "net/search_service.h"

#include "common/strings.h"
#include "common/thread_annotations.h"

namespace wsq {

std::string SearchRequest::CacheKey() const {
  return StrFormat("%c:%zu:", kind == Kind::kCount ? 'c' : 't', k) + query;
}

size_t SearchResponse::ApproxBytes() const {
  size_t bytes = sizeof(SearchResponse);
  for (const SearchHit& h : hits) {
    bytes += sizeof(SearchHit) + h.url.size() + h.date.size();
  }
  return bytes;
}

SearchResponse SearchService::Execute(SearchRequest request) {
  // Stack-local rendezvous with the completion callback. The capability
  // analysis cannot track locals captured by reference, so the guarded
  // state lives in one heap-free struct and the callback is the only
  // other accessor.
  struct Rendezvous {
    Mutex mu;
    CondVar cv;
    bool done WSQ_GUARDED_BY(mu) = false;
    SearchResponse out WSQ_GUARDED_BY(mu);
  } r;
  Submit(std::move(request), [&r](SearchResponse resp) {
    MutexLock lock(&r.mu);
    r.out = std::move(resp);
    r.done = true;
    r.cv.NotifyOne();
  });
  MutexLock lock(&r.mu);
  // Bounded by the async call itself completing; this sync bridge has
  // no reachable token. wsqlint: allow(cancel-blind-wait)
  while (!r.done) r.cv.Wait(r.mu);
  return std::move(r.out);
}

}  // namespace wsq
