#include "net/retry_service.h"

#include <algorithm>
#include <thread>

namespace wsq {

RetryingSearchService::RetryingSearchService(SearchService* wrapped,
                                             RetryPolicy policy)
    : wrapped_(wrapped), policy_(policy), rng_(policy.seed) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
}

RetryingSearchService::~RetryingSearchService() {
  MutexLock lock(&mu_);
  // Bounded: the wrapped service resolves every started call, and no
  // new calls can start during destruction.
  // wsqlint: allow(cancel-blind-wait)
  while (outstanding_ != 0) cv_.Wait(mu_);
}

void RetryingSearchService::TrackStart() {
  MutexLock lock(&mu_);
  ++outstanding_;
}

void RetryingSearchService::TrackFinish() {
  // Notify while still holding mu_: the destructor destroys cv_ the
  // moment it observes outstanding_ == 0, so a notify after unlocking
  // would race with that destruction (caught by TSan).
  MutexLock lock(&mu_);
  --outstanding_;
  cv_.NotifyAll();
}

int64_t RetryingSearchService::SleepForBackoff(int64_t base) {
  int64_t sleep = base;
  if (policy_.decorrelated_jitter && base > 0) {
    MutexLock lock(&mu_);
    // Decorrelated: uniform in [base, 3 * base]. The deterministic
    // schedule stays the lower bound, so backoff never shrinks.
    sleep = rng_.UniformRange(base, 3 * base);
  }
  if (policy_.max_backoff_micros > 0) {
    sleep = std::min(sleep, policy_.max_backoff_micros);
  }
  return sleep;
}

void RetryingSearchService::Submit(SearchRequest request,
                                   SearchCallback done) {
  TrackStart();
  Attempt(std::move(request), std::move(done), 1,
          policy_.initial_backoff_micros);
}

void RetryingSearchService::Attempt(SearchRequest request,
                                    SearchCallback done, int attempt,
                                    int64_t backoff_micros) {
  {
    MutexLock lock(&mu_);
    ++stats_.attempts;
  }
  SearchRequest retry_copy = request;
  wrapped_->Submit(
      std::move(request),
      [this, retry_copy = std::move(retry_copy),
       done = std::move(done), attempt,
       backoff_micros](SearchResponse resp) mutable {
        bool retryable =
            !resp.status.ok() && IsTransient(resp.status.code());
        if (resp.status.ok() || !retryable ||
            attempt >= policy_.max_attempts) {
          if (!resp.status.ok()) {
            MutexLock lock(&mu_);
            if (!retryable) {
              ++stats_.non_transient;
            } else {
              ++stats_.gave_up;
            }
          }
          done(std::move(resp));
          TrackFinish();
          return;
        }
        {
          MutexLock lock(&mu_);
          ++stats_.retries;
        }
        // Back off on a scheduler thread, then resubmit. Detached is
        // safe: TrackFinish gates our destructor on its completion.
        // The extra TrackStart MUST happen before the spawn — after
        // .detach() the thread may have already run TrackFinish, let
        // the destructor observe outstanding_ == 0, and freed us.
        int64_t next_backoff = static_cast<int64_t>(
            static_cast<double>(backoff_micros) *
            policy_.backoff_multiplier);
        int64_t sleep_micros = SleepForBackoff(backoff_micros);
        TrackStart();
        std::thread([this, retry_copy = std::move(retry_copy),
                     done = std::move(done), attempt, sleep_micros,
                     next_backoff]() mutable {
          std::this_thread::sleep_for(
              std::chrono::microseconds(sleep_micros));
          Attempt(std::move(retry_copy), std::move(done), attempt + 1,
                  next_backoff);
          TrackFinish();  // balances the TrackStart before the spawn
        }).detach();
      });
}

RetryStats RetryingSearchService::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

uint64_t RetryingSearchService::outstanding() const {
  MutexLock lock(&mu_);
  return outstanding_;
}

}  // namespace wsq
