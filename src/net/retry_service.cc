#include "net/retry_service.h"

#include <thread>

namespace wsq {

RetryingSearchService::RetryingSearchService(SearchService* wrapped,
                                             RetryPolicy policy)
    : wrapped_(wrapped), policy_(policy) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
}

RetryingSearchService::~RetryingSearchService() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void RetryingSearchService::TrackStart() {
  std::lock_guard<std::mutex> lock(mu_);
  ++outstanding_;
}

void RetryingSearchService::TrackFinish() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
  }
  cv_.notify_all();
}

void RetryingSearchService::Submit(SearchRequest request,
                                   SearchCallback done) {
  TrackStart();
  Attempt(std::move(request), std::move(done), 1,
          policy_.initial_backoff_micros);
}

void RetryingSearchService::Attempt(SearchRequest request,
                                    SearchCallback done, int attempt,
                                    int64_t backoff_micros) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.attempts;
  }
  SearchRequest retry_copy = request;
  wrapped_->Submit(
      std::move(request),
      [this, retry_copy = std::move(retry_copy),
       done = std::move(done), attempt,
       backoff_micros](SearchResponse resp) mutable {
        if (resp.status.ok() || attempt >= policy_.max_attempts) {
          if (!resp.status.ok()) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.gave_up;
          }
          done(std::move(resp));
          TrackFinish();
          return;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.retries;
        }
        // Back off on a scheduler thread, then resubmit. Detached is
        // safe: TrackFinish gates our destructor on its completion.
        int64_t next_backoff = static_cast<int64_t>(
            static_cast<double>(backoff_micros) *
            policy_.backoff_multiplier);
        std::thread([this, retry_copy = std::move(retry_copy),
                     done = std::move(done), attempt, backoff_micros,
                     next_backoff]() mutable {
          std::this_thread::sleep_for(
              std::chrono::microseconds(backoff_micros));
          Attempt(std::move(retry_copy), std::move(done), attempt + 1,
                  next_backoff);
          TrackFinish();  // balances the extra TrackStart below
        }).detach();
        TrackStart();  // keep outstanding_ > 0 across the handoff
      });
}

RetryStats RetryingSearchService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace wsq
