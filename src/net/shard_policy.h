#ifndef WSQ_NET_SHARD_POLICY_H_
#define WSQ_NET_SHARD_POLICY_H_

#include <string>

namespace wsq {

/// What a sharded search call does when some shards cannot answer
/// (dark, tripped breaker, timed out): the paper's single opaque engine
/// becomes N partitions, and each query chooses how much of the Web it
/// is willing to lose (DESIGN.md §13).
enum class ShardPolicy {
  /// All shards must answer; any shard failure fails the call with
  /// kUnavailable. Counts stay exact — the WSQ default.
  kFail,
  /// At least `min_shards` shards must answer; the response is merged
  /// from the survivors and marked partial. Counts become lower bounds.
  kQuorum,
  /// One answering shard suffices; an all-shards-dark call still fails.
  kBestEffort,
};

inline const char* ShardPolicyToString(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kFail:
      return "fail";
    case ShardPolicy::kQuorum:
      return "quorum";
    case ShardPolicy::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

/// Per-query sharding options, carried from ExecOptions through the
/// virtual-table request into each SearchRequest.
struct ShardOptions {
  ShardPolicy policy = ShardPolicy::kFail;
  /// kQuorum: minimum answering shards (clamped to [1, N]; 0 means N,
  /// i.e. quorum degenerates to fail until the caller picks a K).
  int min_shards = 0;
};

}  // namespace wsq

#endif  // WSQ_NET_SHARD_POLICY_H_
