#include "net/result_cache.h"

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/statusz.h"

namespace wsq {

ResultCache::ResultCache(size_t capacity, int64_t ttl_micros,
                         size_t max_bytes)
    : capacity_(capacity == 0 ? 1 : capacity),
      ttl_micros_(ttl_micros),
      max_bytes_(max_bytes) {
  collector_id_ = MetricsRegistry::Global()->AddCollector(
      [this](MetricsEmitter* emitter) {
        ResultCacheStats s;
        size_t entries;
        size_t bytes;
        {
          MutexLock lock(&mu_);
          s = stats_;
          entries = lru_.size();
          bytes = bytes_;
        }
        emitter->EmitCounter("wsq_result_cache_hits_total",
                             "Search responses served from cache", {},
                             s.hits);
        emitter->EmitCounter("wsq_result_cache_misses_total",
                             "Cache lookups that went to the engine", {},
                             s.misses);
        emitter->EmitCounter(
            "wsq_result_cache_evicted_total",
            "Entries evicted (LRU entry/byte bound or memory pressure)",
            {}, s.evictions);
        emitter->EmitCounter(
            "wsq_result_cache_pressure_shed_total",
            "Entries shed by a memory-budget pressure callback", {},
            s.pressure_shed);
        emitter->EmitCounter(
            "wsq_result_cache_rejected_total",
            "Responses refused admission (non-OK or partial)", {},
            s.rejected);
        emitter->EmitGauge("wsq_result_cache_entries",
                           "Entries currently cached", {},
                           static_cast<int64_t>(entries));
        emitter->EmitGauge("wsq_result_cache_bytes",
                           "Payload bytes currently cached", {},
                           static_cast<int64_t>(bytes));
      });
  statusz_id_ = StatuszRegistry::Global()->AddProvider(
      [this](std::vector<StatuszSection>* out) {
        StatuszSection s;
        s.name = "result_cache";
        ResultCacheStats stats;
        size_t entries;
        size_t resident;
        {
          MutexLock lock(&mu_);
          stats = stats_;
          entries = lru_.size();
          resident = bytes_;
        }
        s.AddUint("entries", entries);
        s.AddUint("bytes", resident);
        s.AddUint("hits", stats.hits);
        s.AddUint("misses", stats.misses);
        s.AddUint("evictions", stats.evictions);
        s.AddUint("pressure_shed", stats.pressure_shed);
        out->push_back(std::move(s));
      });
}

ResultCache::~ResultCache() {
  StatuszRegistry::Global()->RemoveProvider(statusz_id_);
  MetricsRegistry::Global()->RemoveCollector(collector_id_);
  DetachBudget();
}

void ResultCache::DetachBudget() {
  if (budget_ == nullptr) return;
  budget_->RemovePressureHook(pressure_hook_id_);
  MutexLock lock(&mu_);
  budget_->Release(bytes_);
  budget_ = nullptr;
}

void ResultCache::AttachBudget(MemoryBudget* budget) {
  {
    MutexLock lock(&mu_);
    budget_ = budget;
    budget_->ForceReserve(bytes_);
  }
  pressure_hook_id_ = budget->AddPressureHook(
      [this](size_t wanted) { return ShedForPressure(wanted); });
}

size_t ResultCache::ShedForPressure(size_t wanted) {
  MutexLock lock(&mu_);
  size_t freed = 0;
  while (freed < wanted && !lru_.empty()) {
    freed += lru_.back().bytes;
    ++stats_.pressure_shed;
    EvictBackLocked();
  }
  return freed;
}

void ResultCache::EvictBackLocked() {
  Entry& victim = lru_.back();
  bytes_ -= victim.bytes;
  if (budget_ != nullptr) budget_->Release(victim.bytes);
  map_.erase(victim.key);
  lru_.pop_back();
  ++stats_.evictions;
}

void ResultCache::EvictToBoundsLocked() {
  while (!lru_.empty() &&
         (lru_.size() > capacity_ ||
          (max_bytes_ > 0 && bytes_ > max_bytes_))) {
    EvictBackLocked();
  }
}

std::optional<SearchResponse> ResultCache::Get(const std::string& key) {
  MutexLock lock(&mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (ttl_micros_ > 0 &&
      NowMicros() - it->second->inserted_micros > ttl_micros_) {
    bytes_ -= it->second->bytes;
    if (budget_ != nullptr) budget_->Release(it->second->bytes);
    lru_.erase(it->second);
    map_.erase(it);
    ++stats_.misses;
    return std::nullopt;
  }
  // Move to MRU.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->response;
}

void ResultCache::Put(const std::string& key, SearchResponse response) {
  MutexLock lock(&mu_);
  size_t new_bytes = key.size() + response.ApproxBytes();
  auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ += new_bytes - it->second->bytes;
    if (budget_ != nullptr) {
      // Re-charge the delta; ForceReserve because a shared cache cannot
      // backpressure its writers (the pressure hook sheds instead).
      budget_->Release(it->second->bytes);
      budget_->ForceReserve(new_bytes);
    }
    it->second->response = std::move(response);
    it->second->inserted_micros = NowMicros();
    it->second->bytes = new_bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    EvictToBoundsLocked();
    return;
  }
  lru_.push_front(Entry{key, std::move(response), NowMicros(), new_bytes});
  map_[key] = lru_.begin();
  bytes_ += new_bytes;
  if (budget_ != nullptr) budget_->ForceReserve(new_bytes);
  EvictToBoundsLocked();
}

size_t ResultCache::size() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

size_t ResultCache::bytes() const {
  MutexLock lock(&mu_);
  return bytes_;
}

ResultCacheStats ResultCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void ResultCache::CountRejected() {
  MutexLock lock(&mu_);
  ++stats_.rejected;
}

void ResultCache::Clear() {
  MutexLock lock(&mu_);
  if (budget_ != nullptr) budget_->Release(bytes_);
  bytes_ = 0;
  lru_.clear();
  map_.clear();
}

void CachingSearchService::Submit(SearchRequest request,
                                  SearchCallback done) {
  // Key includes the engine name: different engines answer the same
  // query differently (NEAR support, ranking), and one ResultCache may
  // sit in front of several engines.
  std::string key = wrapped_->name() + "\x1f" + request.CacheKey();
  if (auto cached = cache_->Get(key)) {
    done(std::move(*cached));
    return;
  }
  ResultCache* cache = cache_;
  wrapped_->Submit(std::move(request),
                   [cache, key, done = std::move(done)](
                       SearchResponse resp) {
                     // Admit only complete successes: a failure is not
                     // an answer, and a partial (degraded-shard) merge
                     // would poison every later query with a silently
                     // truncated count/top-k for the whole TTL.
                     if (resp.status.ok() && !resp.partial) {
                       cache->Put(key, resp);
                     } else {
                       cache->CountRejected();
                     }
                     done(std::move(resp));
                   });
}

}  // namespace wsq
