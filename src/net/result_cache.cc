#include "net/result_cache.h"

#include "common/clock.h"
#include "obs/metrics.h"

namespace wsq {

ResultCache::ResultCache(size_t capacity, int64_t ttl_micros)
    : capacity_(capacity == 0 ? 1 : capacity), ttl_micros_(ttl_micros) {
  collector_id_ = MetricsRegistry::Global()->AddCollector(
      [this](MetricsEmitter* emitter) {
        ResultCacheStats s;
        size_t entries;
        {
          MutexLock lock(&mu_);
          s = stats_;
          entries = lru_.size();
        }
        emitter->EmitCounter("wsq_result_cache_hits_total",
                             "Search responses served from cache", {},
                             s.hits);
        emitter->EmitCounter("wsq_result_cache_misses_total",
                             "Cache lookups that went to the engine", {},
                             s.misses);
        emitter->EmitCounter("wsq_result_cache_evictions_total",
                             "Entries evicted by the LRU capacity bound",
                             {}, s.evictions);
        emitter->EmitCounter(
            "wsq_result_cache_rejected_total",
            "Responses refused admission (non-OK or partial)", {},
            s.rejected);
        emitter->EmitGauge("wsq_result_cache_entries",
                           "Entries currently cached", {},
                           static_cast<int64_t>(entries));
      });
}

ResultCache::~ResultCache() {
  MetricsRegistry::Global()->RemoveCollector(collector_id_);
}

std::optional<SearchResponse> ResultCache::Get(const std::string& key) {
  MutexLock lock(&mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (ttl_micros_ > 0 &&
      NowMicros() - it->second->inserted_micros > ttl_micros_) {
    lru_.erase(it->second);
    map_.erase(it);
    ++stats_.misses;
    return std::nullopt;
  }
  // Move to MRU.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->response;
}

void ResultCache::Put(const std::string& key, SearchResponse response) {
  MutexLock lock(&mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->response = std::move(response);
    it->second->inserted_micros = NowMicros();
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(response), NowMicros()});
  map_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

size_t ResultCache::size() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

ResultCacheStats ResultCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void ResultCache::CountRejected() {
  MutexLock lock(&mu_);
  ++stats_.rejected;
}

void ResultCache::Clear() {
  MutexLock lock(&mu_);
  lru_.clear();
  map_.clear();
}

void CachingSearchService::Submit(SearchRequest request,
                                  SearchCallback done) {
  // Key includes the engine name: different engines answer the same
  // query differently (NEAR support, ranking), and one ResultCache may
  // sit in front of several engines.
  std::string key = wrapped_->name() + "\x1f" + request.CacheKey();
  if (auto cached = cache_->Get(key)) {
    done(std::move(*cached));
    return;
  }
  ResultCache* cache = cache_;
  wrapped_->Submit(std::move(request),
                   [cache, key, done = std::move(done)](
                       SearchResponse resp) {
                     // Admit only complete successes: a failure is not
                     // an answer, and a partial (degraded-shard) merge
                     // would poison every later query with a silently
                     // truncated count/top-k for the whole TTL.
                     if (resp.status.ok() && !resp.partial) {
                       cache->Put(key, resp);
                     } else {
                       cache->CountRejected();
                     }
                     done(std::move(resp));
                   });
}

}  // namespace wsq
