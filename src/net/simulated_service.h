#ifndef WSQ_NET_SIMULATED_SERVICE_H_
#define WSQ_NET_SIMULATED_SERVICE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_annotations.h"
#include "net/latency_model.h"
#include "net/search_service.h"
#include "search/search_engine.h"

namespace wsq {

struct SimulatedServiceStats {
  uint64_t total_requests = 0;
  uint64_t completed_requests = 0;
  /// Peak number of requests simultaneously in service.
  uint64_t max_concurrent = 0;
};

/// Event-driven simulation of a remote search engine.
///
/// One timer thread holds any number of pending requests in a deadline
/// heap — no thread-per-request, mirroring the Flash-style event loop
/// the paper cites for ReqPump [PDZ99]. Each request occupies one of
/// `server_capacity` service slots for its sampled latency; requests
/// beyond capacity queue server-side (slot reuse), which is how the
/// "search engines can handle many concurrent requests" knob is modeled
/// and swept in benches.
class SimulatedSearchService : public SearchService {
 public:
  struct Options {
    LatencyModel latency;
    /// Concurrent requests the engine can serve; 0 = unbounded.
    size_t server_capacity = 0;
    uint64_t seed = 1;
  };

  SimulatedSearchService(const SearchEngine* engine, Options options);
  ~SimulatedSearchService() override;

  const std::string& name() const override { return engine_->name(); }

  void Submit(SearchRequest request, SearchCallback done) override;

  SimulatedServiceStats stats() const;

  /// Blocks until no requests are pending (tests/benches).
  void Quiesce();

 private:
  struct Pending {
    int64_t deadline_micros;
    uint64_t seq;  // FIFO tie-break
    SearchRequest request;
    SearchCallback done;

    bool operator>(const Pending& o) const {
      if (deadline_micros != o.deadline_micros) {
        return deadline_micros > o.deadline_micros;
      }
      return seq > o.seq;
    }
  };

  void TimerLoop() WSQ_EXCLUDES(mu_);
  SearchResponse Evaluate(const SearchRequest& request) const;

  const SearchEngine* engine_;
  /// Immutable after construction (read without mu_).
  Options options_;

  mutable Mutex mu_;
  CondVar cv_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>>
      heap_ WSQ_GUARDED_BY(mu_);
  /// Completion deadlines of requests currently holding a server slot;
  /// min-heap so the earliest-freeing slot is reused first.
  std::priority_queue<int64_t, std::vector<int64_t>, std::greater<>>
      slot_free_times_ WSQ_GUARDED_BY(mu_);
  Rng rng_ WSQ_GUARDED_BY(mu_);
  uint64_t next_seq_ WSQ_GUARDED_BY(mu_) = 0;
  uint64_t in_flight_ WSQ_GUARDED_BY(mu_) = 0;
  SimulatedServiceStats stats_ WSQ_GUARDED_BY(mu_);
  bool stopping_ WSQ_GUARDED_BY(mu_) = false;
  std::thread timer_;
};

}  // namespace wsq

#endif  // WSQ_NET_SIMULATED_SERVICE_H_
