#include "net/fault_service.h"

#include <thread>

namespace wsq {

namespace {

/// FNV-1a, then a SplitMix64 finalizer: stable across runs (unlike
/// std::hash) so fault decisions reproduce from the seed alone.
uint64_t StableHash(uint64_t seed, const std::string& key) {
  uint64_t h = 14695981039346656037ull ^ seed;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

/// Uniform double in [0, 1) from a hash.
double UnitFromHash(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjectingSearchService::FaultInjectingSearchService(
    SearchService* wrapped, FaultPlan plan)
    : wrapped_(wrapped), plan_(plan) {}

FaultInjectingSearchService::~FaultInjectingSearchService() {
  ReleaseHung();
  MutexLock lock(&mu_);
  // Bounded: ReleaseHung() above resolved every parked call, so the
  // remaining completions are already running to their finish.
  // wsqlint: allow(cancel-blind-wait)
  while (outstanding_ != 0) cv_.Wait(mu_);
}

FaultInjectingSearchService::FaultKind
FaultInjectingSearchService::Classify(const std::string& key) const {
  double u = UnitFromHash(StableHash(plan_.seed, key));
  if (u < plan_.permanent_rate) return FaultKind::kPermanent;
  u -= plan_.permanent_rate;
  if (u < plan_.hang_rate) return FaultKind::kHang;
  u -= plan_.hang_rate;
  if (u < plan_.transient_rate) return FaultKind::kTransient;
  return FaultKind::kNone;
}

bool FaultInjectingSearchService::ShouldDelay(
    const std::string& key) const {
  if (plan_.delay_rate <= 0.0) return false;
  // Independent draw: decorate the seed so delay and fault bands don't
  // correlate.
  double u = UnitFromHash(StableHash(plan_.seed ^ 0xde1a9ull, key));
  return u < plan_.delay_rate;
}

void FaultInjectingSearchService::TrackStart() {
  MutexLock lock(&mu_);
  ++outstanding_;
}

void FaultInjectingSearchService::TrackFinish() {
  // Notify while still holding mu_: the destructor destroys cv_ the
  // moment it observes outstanding_ == 0, so a notify after unlocking
  // would race with that destruction (caught by TSan).
  MutexLock lock(&mu_);
  --outstanding_;
  cv_.NotifyAll();
}

void FaultInjectingSearchService::Submit(SearchRequest request,
                                         SearchCallback done) {
  const std::string key = request.CacheKey();
  FaultKind kind = Classify(key);
  bool outage = false;
  {
    MutexLock lock(&mu_);
    uint64_t arrival = ++stats_.requests;
    if (plan_.outage_length > 0 && arrival >= plan_.outage_start &&
        arrival < plan_.outage_start + plan_.outage_length) {
      outage = true;
      ++stats_.outage_failures;
    } else if (kind == FaultKind::kTransient) {
      // Transient faults clear after `transient_tries` sightings so a
      // retry layer can succeed.
      if (transient_seen_[key]++ >= plan_.transient_tries) {
        kind = FaultKind::kNone;
      } else {
        ++stats_.injected_transient;
      }
    } else if (kind == FaultKind::kPermanent) {
      ++stats_.injected_permanent;
    } else if (kind == FaultKind::kHang) {
      ++stats_.injected_hangs;
      hung_.push_back(std::move(done));
    }
    if (kind == FaultKind::kNone && !outage) ++stats_.passed_through;
  }

  if (outage) {
    done(SearchResponse{
        Status::Unavailable("injected outage window at " + name()), 0,
        {}});
    return;
  }
  switch (kind) {
    case FaultKind::kPermanent:
      done(SearchResponse{
          Status::ExecutionError("injected permanent fault for: " + key),
          0,
          {}});
      return;
    case FaultKind::kTransient:
      done(SearchResponse{
          Status::Unavailable("injected transient fault for: " + key), 0,
          {}});
      return;
    case FaultKind::kHang:
      // Callback parked in hung_ above; ReleaseHung / the destructor
      // completes it.
      return;
    case FaultKind::kNone:
      break;
  }

  if (ShouldDelay(key)) {
    {
      MutexLock lock(&mu_);
      ++stats_.injected_delays;
    }
    TrackStart();
    int64_t delay = plan_.delay_micros;
    SearchService* wrapped = wrapped_;
    std::thread([this, wrapped, delay, request = std::move(request),
                 done = std::move(done)]() mutable {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
      wrapped->Submit(std::move(request), std::move(done));
      TrackFinish();
    }).detach();
    return;
  }
  wrapped_->Submit(std::move(request), std::move(done));
}

FaultStats FaultInjectingSearchService::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

size_t FaultInjectingSearchService::hung_requests() const {
  MutexLock lock(&mu_);
  return hung_.size();
}

void FaultInjectingSearchService::ReleaseHung() {
  std::vector<SearchCallback> held;
  {
    MutexLock lock(&mu_);
    held.swap(hung_);
  }
  for (SearchCallback& done : held) {
    done(SearchResponse{
        Status::Unavailable("hung request released by " + name()), 0,
        {}});
  }
}

}  // namespace wsq
