#include "net/circuit_breaker.h"

#include "common/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/statusz.h"

namespace wsq {

std::string_view CircuitStateToString(CircuitState state) {
  switch (state) {
    case CircuitState::kClosed:
      return "Closed";
    case CircuitState::kOpen:
      return "Open";
    case CircuitState::kHalfOpen:
      return "HalfOpen";
  }
  return "Unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(std::move(options)) {
  if (options_.failure_threshold < 1) options_.failure_threshold = 1;
  if (options_.half_open_probes < 1) options_.half_open_probes = 1;
}

int64_t CircuitBreaker::Now() const {
  return options_.now ? options_.now() : NowMicros();
}

void CircuitBreaker::TripLocked(int64_t now) {
  // The recorder append is lock-free (leaf interner mutex at worst), so
  // recording under mu_ cannot invert any lock order.
  FlightRecorder::Global()->Record(
      FrEventType::kBreakerTrip, destination_,
      state_ == CircuitState::kHalfOpen ? "probe_failed"
                                        : "failure_threshold",
      /*query_id=*/0, consecutive_failures_);
  state_ = CircuitState::kOpen;
  open_until_micros_ = now + options_.cooldown_micros;
  inflight_probes_ = 0;
  consecutive_failures_ = 0;
  ++stats_.trips;
}

bool CircuitBreaker::Allow(bool* as_probe) {
  if (as_probe != nullptr) *as_probe = false;
  MutexLock lock(&mu_);
  int64_t now = Now();
  if (state_ == CircuitState::kOpen) {
    if (now < open_until_micros_) {
      ++stats_.fast_failures;
      return false;
    }
    state_ = CircuitState::kHalfOpen;
    inflight_probes_ = 0;
  }
  if (state_ == CircuitState::kHalfOpen) {
    if (inflight_probes_ >= options_.half_open_probes) {
      // A probe whose outcome never arrives (hung engine, dropped
      // callback) must not wedge the circuit half-open forever: admit a
      // fresh probe once a full cool-down has passed since the last.
      if (now < open_until_micros_ + options_.cooldown_micros) {
        ++stats_.fast_failures;
        return false;
      }
      open_until_micros_ = now;
      inflight_probes_ = 0;
    }
    ++inflight_probes_;
    ++stats_.probes;
    FlightRecorder::Global()->Record(FrEventType::kBreakerProbe,
                                     destination_, "cooldown_elapsed");
    if (as_probe != nullptr) *as_probe = true;
    return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  MutexLock lock(&mu_);
  RecordSuccessLocked(state_ == CircuitState::kHalfOpen);
}

void CircuitBreaker::RecordSuccess(bool was_probe) {
  MutexLock lock(&mu_);
  RecordSuccessLocked(was_probe);
}

void CircuitBreaker::RecordSuccessLocked(bool was_probe) {
  consecutive_failures_ = 0;
  if (state_ == CircuitState::kHalfOpen && was_probe) {
    // The probe succeeded: the engine is back. A non-probe success in
    // half-open (a straggler from before the trip) is NOT evidence the
    // engine recovered and must not close the circuit.
    state_ = CircuitState::kClosed;
    inflight_probes_ = 0;
    FlightRecorder::Global()->Record(FrEventType::kBreakerClose,
                                     destination_, "probe_ok");
  }
}

void CircuitBreaker::RecordFailure(const Status& status) {
  MutexLock lock(&mu_);
  RecordFailureLocked(status, state_ == CircuitState::kHalfOpen);
}

void CircuitBreaker::RecordFailure(const Status& status, bool was_probe) {
  MutexLock lock(&mu_);
  RecordFailureLocked(status, was_probe);
}

void CircuitBreaker::RecordFailureLocked(const Status& status,
                                         bool was_probe) {
  if (!IsTransient(status.code())) {
    // The engine answered (badly): neutral for the failure streak. But
    // if this was the half-open probe, its slot must be released or the
    // gate stays wedged until the stale-probe escape — blocking real
    // probes for a whole extra cool-down.
    if (was_probe && state_ == CircuitState::kHalfOpen &&
        inflight_probes_ > 0) {
      --inflight_probes_;
    }
    return;
  }
  int64_t now = Now();
  if (state_ == CircuitState::kHalfOpen) {
    if (was_probe) {
      TripLocked(now);  // probe failed: back to open, fresh cool-down
    }
    // A non-probe transient failure in half-open is stale evidence from
    // before the trip; the probe's own outcome decides the state.
    return;
  }
  if (state_ == CircuitState::kClosed) {
    if (++consecutive_failures_ >= options_.failure_threshold) {
      TripLocked(now);
    }
  }
}

CircuitState CircuitBreaker::state() const {
  MutexLock lock(&mu_);
  return state_;
}

CircuitBreakerStats CircuitBreaker::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

int CircuitBreaker::consecutive_failures() const {
  MutexLock lock(&mu_);
  return consecutive_failures_;
}

CircuitBreakerSearchService::CircuitBreakerSearchService(
    SearchService* wrapped, CircuitBreakerOptions options)
    : wrapped_(wrapped), breaker_(std::move(options)) {
  breaker_.set_destination(name());
  collector_id_ = MetricsRegistry::Global()->AddCollector(
      [this](MetricsEmitter* emitter) {
        MetricLabels labels{{"destination", name()}};
        CircuitBreakerStats s = breaker_.stats();
        emitter->EmitCounter("wsq_circuit_trips_total",
                             "Circuit-breaker closed/half-open to open "
                             "transitions",
                             labels, s.trips);
        emitter->EmitCounter("wsq_circuit_fast_failures_total",
                             "Requests rejected while the circuit was open",
                             labels, s.fast_failures);
        emitter->EmitCounter("wsq_circuit_probes_total",
                             "Probe requests admitted while half-open",
                             labels, s.probes);
        emitter->EmitGauge("wsq_circuit_open",
                           "1 while the circuit is open, else 0", labels,
                           breaker_.state() == CircuitState::kOpen ? 1 : 0);
      });
  statusz_id_ = StatuszRegistry::Global()->AddProvider(
      [this](std::vector<StatuszSection>* out) {
        StatuszSection s;
        s.name = "breaker/" + name();
        s.Add("state", std::string(CircuitStateToString(breaker_.state())));
        s.AddInt("consecutive_failures", breaker_.consecutive_failures());
        CircuitBreakerStats stats = breaker_.stats();
        s.AddUint("trips", stats.trips);
        s.AddUint("fast_failures", stats.fast_failures);
        s.AddUint("probes", stats.probes);
        out->push_back(std::move(s));
      });
}

CircuitBreakerSearchService::~CircuitBreakerSearchService() {
  StatuszRegistry::Global()->RemoveProvider(statusz_id_);
  MetricsRegistry::Global()->RemoveCollector(collector_id_);
}

void CircuitBreakerSearchService::Submit(SearchRequest request,
                                         SearchCallback done) {
  bool as_probe = false;
  if (!breaker_.Allow(&as_probe)) {
    done(SearchResponse{
        Status::Unavailable("circuit open for engine: " + name()), 0,
        {}});
    return;
  }
  // Thread the probe flag through to the outcome so only the probe's
  // own completion releases (or converts) the single half-open slot.
  CircuitBreaker* breaker = &breaker_;
  wrapped_->Submit(
      std::move(request),
      [breaker, as_probe, done = std::move(done)](SearchResponse resp) {
        if (resp.status.ok()) {
          breaker->RecordSuccess(as_probe);
        } else {
          breaker->RecordFailure(resp.status, as_probe);
        }
        done(std::move(resp));
      });
}

}  // namespace wsq
