#include "net/latency_model.h"

namespace wsq {

int64_t LatencyModel::SampleMicros(Rng& rng) const {
  int64_t sample = base_micros;
  if (jitter_micros > 0) {
    sample += rng.UniformRange(-jitter_micros, jitter_micros);
  }
  if (heavy_tail_prob > 0 && rng.Bernoulli(heavy_tail_prob)) {
    sample = static_cast<int64_t>(static_cast<double>(sample) *
                                  tail_factor);
  }
  return sample < 0 ? 0 : sample;
}

}  // namespace wsq
