#include "net/sharded_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/statusz.h"

namespace wsq {

namespace {

/// Shard SearchResponses travel through the ReqPump encoded as
/// CallResult rows, so the pump ledger IS the data path (no flight-
/// lifetime side channel for late completions to dangle on):
///   kCount: one row [count]
///   kTopK:  one row per hit [url, rank, date, doc, score]
/// Value::Real stores the double natively, so scores round-trip exactly
/// and the merged ordering matches the unsharded engine bit-for-bit.
CallResult EncodeResponse(SearchRequest::Kind kind,
                          const SearchResponse& resp) {
  CallResult result;
  result.status = resp.status;
  if (!resp.status.ok()) return result;
  if (kind == SearchRequest::Kind::kCount) {
    result.rows.push_back(Row({Value::Int(resp.count)}));
  } else {
    result.rows.reserve(resp.hits.size());
    for (const SearchHit& hit : resp.hits) {
      result.rows.push_back(
          Row({Value::Str(hit.url), Value::Int(hit.rank),
               Value::Str(hit.date),
               Value::Int(static_cast<int64_t>(hit.doc)),
               Value::Real(hit.score)}));
    }
  }
  return result;
}

void DecodeRows(SearchRequest::Kind kind, const std::vector<Row>& rows,
                int64_t* count, std::vector<SearchHit>* hits) {
  if (kind == SearchRequest::Kind::kCount) {
    *count = rows.empty() ? 0 : rows[0].value(0).AsInt();
    return;
  }
  hits->reserve(rows.size());
  for (const Row& row : rows) {
    SearchHit hit;
    hit.url = row.value(0).AsString();
    hit.rank = static_cast<int>(row.value(1).AsInt());
    hit.date = row.value(2).AsString();
    hit.doc = static_cast<DocId>(row.value(3).AsInt());
    hit.score = row.value(4).AsDouble();
    hits->push_back(std::move(hit));
  }
}

/// Shards that must answer OK for this waiter's policy to succeed.
int NeededShards(const ShardOptions& options, int num_shards) {
  switch (options.policy) {
    case ShardPolicy::kFail:
      return num_shards;
    case ShardPolicy::kQuorum: {
      int k = options.min_shards <= 0 ? num_shards : options.min_shards;
      return std::max(1, std::min(k, num_shards));
    }
    case ShardPolicy::kBestEffort:
      return 1;
  }
  return num_shards;
}

}  // namespace

ShardedSearchService::ShardedSearchService(std::vector<Shard> shards,
                                           ReqPump* pump, Options options)
    : shards_(std::move(shards)),
      pump_(pump),
      options_(std::move(options)),
      wake_(std::make_shared<WakeState>()) {
  destinations_.reserve(shards_.size());
  latency_hists_.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    destinations_.push_back(shard.primary->name());
    // Same (name, help, labels) as ReqPump::RecordCallTiming, so this
    // resolves to the very instrument the pump feeds: observed shard
    // latency seeds the hedge delay with no extra plumbing.
    latency_hists_.push_back(MetricsRegistry::Global()->GetHistogram(
        "wsq_external_call_latency_micros",
        "Dispatch-to-completion latency of external calls",
        {{"destination", shard.primary->name()}}));
  }
  shard_ok_.assign(shards_.size(), true);
  shard_decided_ok_.assign(shards_.size(), 0);
  shard_decided_failed_.assign(shards_.size(), 0);
  collector_id_ = MetricsRegistry::Global()->AddCollector(
      [this](MetricsEmitter* emitter) {
        ShardedServiceStats s;
        std::vector<bool> healthy;
        std::vector<uint64_t> ok_counts;
        std::vector<uint64_t> failed_counts;
        {
          MutexLock lock(&mu_);
          s = stats_;
          healthy = shard_ok_;
          ok_counts = shard_decided_ok_;
          failed_counts = shard_decided_failed_;
        }
        MetricLabels labels{{"service", options_.name}};
        emitter->EmitCounter("wsq_shard_fanouts_total",
                             "Logical requests fanned out to the shards",
                             labels, s.fanouts);
        emitter->EmitCounter(
            "wsq_shard_coalesced_total",
            "Logical requests answered by joining an in-flight fan-out",
            labels, s.coalesced);
        emitter->EmitCounter("wsq_shard_hedges_total",
                             "Hedge calls issued against shard replicas",
                             labels, s.hedges);
        emitter->EmitCounter(
            "wsq_shard_hedge_wins_total",
            "Shard calls decided by the hedge instead of the primary",
            labels, s.hedge_wins);
        emitter->EmitCounter(
            "wsq_shard_partial_results_total",
            "Responses merged from a strict subset of shards", labels,
            s.partial_results);
        emitter->EmitCounter(
            "wsq_shard_quorum_failures_total",
            "Requests failed because too few shards answered", labels,
            s.quorum_failures);
        emitter->EmitCounter(
            "wsq_shard_degraded_total",
            "Total shards missing across all partial responses", labels,
            s.degraded_shards);
        for (size_t i = 0; i < destinations_.size(); ++i) {
          MetricLabels shard_labels{{"destination", destinations_[i]}};
          emitter->EmitGauge(
              "wsq_shard_healthy",
              "1 while the shard's last decided call answered OK",
              shard_labels, healthy[i] ? 1 : 0);
          emitter->EmitCounter("wsq_shard_calls_ok_total",
                               "Shard calls decided OK", shard_labels,
                               ok_counts[i]);
          emitter->EmitCounter("wsq_shard_calls_failed_total",
                               "Shard calls decided failed", shard_labels,
                               failed_counts[i]);
        }
      });
  statusz_id_ = StatuszRegistry::Global()->AddProvider(
      [this](std::vector<StatuszSection>* out) {
        StatuszSection s;
        s.name = "shards/" + options_.name;
        ShardedServiceStats stats;
        std::vector<bool> healthy;
        {
          MutexLock lock(&mu_);
          stats = stats_;
          healthy.assign(shard_ok_.begin(), shard_ok_.end());
        }
        s.AddUint("fanouts", stats.fanouts);
        s.AddUint("coalesced", stats.coalesced);
        s.AddUint("hedges", stats.hedges);
        s.AddUint("hedge_wins", stats.hedge_wins);
        s.AddUint("partial_results", stats.partial_results);
        s.AddUint("quorum_failures", stats.quorum_failures);
        s.AddUint("degraded_shards", stats.degraded_shards);
        for (size_t i = 0; i < healthy.size(); ++i) {
          s.Add(StrFormat("health/%s", destinations_[i].c_str()),
                healthy[i] ? "ok" : "dark");
        }
        out->push_back(std::move(s));
      });
  gather_ = std::thread([this] { GatherLoop(); });
}

ShardedSearchService::~ShardedSearchService() {
  StatuszRegistry::Global()->RemoveProvider(statusz_id_);
  MetricsRegistry::Global()->RemoveCollector(collector_id_);
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  {
    MutexLock lock(&wake_->mu);
    wake_->ping = true;
    wake_->cv.NotifyAll();
  }
  gather_.join();
  // Honour the SearchService contract: every accepted request completes.
  std::vector<Delivery> deliveries;
  {
    MutexLock lock(&mu_);
    for (auto& entry : flights_) {
      Flight& flight = entry.second;
      for (ShardCall& call : flight.calls) {
        if (!call.primary_taken && call.primary != kInvalidCallId) {
          ReapLegLocked(call.primary);
          call.primary_taken = true;
        }
        if (!call.hedge_taken && call.hedge != kInvalidCallId) {
          ReapLegLocked(call.hedge);
          call.hedge_taken = true;
        }
      }
      for (Waiter& waiter : flight.waiters) {
        deliveries.push_back(Delivery{
            std::move(waiter.done),
            SearchResponse{
                Status::Unavailable("sharded service shutting down: " +
                                    options_.name),
                0,
                {}}});
      }
    }
    flights_.clear();
    idle_cv_.NotifyAll();
  }
  for (Delivery& d : deliveries) d.done(std::move(d.response));
}

void ShardedSearchService::Submit(SearchRequest request,
                                  SearchCallback done) {
  const std::string key = request.CacheKey();
  const uint64_t query_id = CurrentQueryId();
  bool rejected = false;
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      rejected = true;
    } else {
      auto it = flights_.find(key);
      if (it != flights_.end()) {
        // Single-flight coalescing: same (kind, k, query) already in
        // flight — join it as one more waiter. The waiter keeps its own
        // quorum policy; the shard calls are shared.
        ++stats_.coalesced;
        it->second.waiters.push_back(
            Waiter{request.shard, std::move(done), query_id});
        FlightRecorder::Global()->Record(
            FrEventType::kCoalesceJoin, options_.name, "", query_id,
            static_cast<int64_t>(it->second.flight_id));
        return;
      }
      ++stats_.fanouts;
      Flight& flight = flights_[key];
      flight.request = request;
      flight.flight_id = next_flight_id_++;
      flight.calls.resize(shards_.size());
      flight.waiters.push_back(
          Waiter{request.shard, std::move(done), query_id});
      FlightRecorder::Global()->Record(
          FrEventType::kFanout, options_.name, "", query_id,
          static_cast<int64_t>(flight.flight_id),
          static_cast<int64_t>(shards_.size()));
      int64_t now = NowMicros();
      for (size_t i = 0; i < shards_.size(); ++i) {
        ShardCall& call = flight.calls[i];
        call.primary = RegisterLeg(shards_[i].primary, flight.request,
                                   destinations_[i]);
        ++stats_.shard_calls;
        if (options_.enable_hedging && shards_[i].replica != nullptr) {
          call.hedge_at_micros = now + HedgeDelayMicros(i);
        }
      }
    }
  }
  if (rejected) {
    done(SearchResponse{
        Status::Unavailable("sharded service shutting down: " +
                            options_.name),
        0,
        {}});
    return;
  }
  // Wake the gather loop so it learns the new flight's hedge deadlines.
  MutexLock lock(&wake_->mu);
  wake_->ping = true;
  wake_->cv.NotifyAll();
}

void ShardedSearchService::Quiesce() {
  MutexLock lock(&mu_);
  while (!flights_.empty()) {
    idle_cv_.WaitForMicros(mu_, 10000);
  }
}

ShardedServiceStats ShardedSearchService::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

std::vector<bool> ShardedSearchService::shard_health() const {
  MutexLock lock(&mu_);
  return shard_ok_;
}

CallId ShardedSearchService::RegisterLeg(SearchService* service,
                                         const SearchRequest& request,
                                         const std::string& destination) {
  std::shared_ptr<WakeState> wake = wake_;
  SearchRequest::Kind kind = request.kind;
  AsyncCallFn fn = [service, request, kind,
                    wake](CallCompletion pump_done) {
    service->Submit(
        request,
        [kind, wake, pump_done = std::move(pump_done)](SearchResponse resp) {
          // Store the result in the pump first, then ping the gather
          // loop. The wake state is shared, so a completion landing
          // after ~ShardedSearchService touches valid memory.
          pump_done(EncodeResponse(kind, resp));
          MutexLock lock(&wake->mu);
          wake->ping = true;
          wake->cv.NotifyAll();
        });
  };
  return pump_->Register(destination, std::move(fn),
                         options_.call_timeout_micros);
}

int64_t ShardedSearchService::HedgeDelayMicros(size_t i) const {
  int64_t delay = options_.default_hedge_delay_micros;
  const Histogram* hist = latency_hists_[i];
  if (hist != nullptr) {
    HistogramSnapshot snap = hist->Snapshot();
    if (snap.count >= options_.min_hedge_samples) {
      delay = static_cast<int64_t>(snap.Quantile(options_.hedge_quantile));
    }
  }
  return std::max(delay, options_.hedge_min_delay_micros);
}

void ShardedSearchService::FireHedgeLocked(Flight* flight, size_t i) {
  ShardCall& call = flight->calls[i];
  call.hedge = RegisterLeg(shards_[i].replica, flight->request,
                           shards_[i].replica->name());
  ++stats_.hedges;
  ++stats_.shard_calls;
  FlightRecorder::Global()->Record(
      FrEventType::kHedgeFire, shards_[i].replica->name(),
      call.primary_taken ? "primary_failed" : "latency_quantile",
      /*query_id=*/0, static_cast<int64_t>(flight->flight_id),
      static_cast<int64_t>(i));
}

void ShardedSearchService::ReapLegLocked(CallId id) {
  // Either the cancel lands (queued call dropped / dispatched call
  // abandoned) or a result was already present; both leave a result in
  // ReqPumpHash, so the TryTake always reaps it and the ledger stays
  // balanced.
  pump_->CancelCall(id);
  CallResult discard;
  pump_->TryTake(id, &discard);
}

SearchResponse ShardedSearchService::MergeLocked(
    const Flight& flight) const {
  SearchResponse resp;
  resp.status = Status::OK();
  resp.shards_total = static_cast<int>(flight.calls.size());
  std::vector<SearchHit> all;
  for (const ShardCall& call : flight.calls) {
    if (!call.decided || !call.ok) {
      ++resp.shards_failed;
      continue;
    }
    resp.count += call.answer.count;
    all.insert(all.end(), call.answer.hits.begin(),
               call.answer.hits.end());
  }
  resp.partial = resp.shards_failed > 0;
  if (flight.request.kind == SearchRequest::Kind::kTopK) {
    resp.count = 0;  // kTopK leaves count unset, like the plain engine
    // Same order as SearchEngine::Search: score descending, DocId
    // ascending. Scores are purely per-document, so merging the
    // per-shard top-k lists reproduces the unsharded top-k exactly.
    std::sort(all.begin(), all.end(),
              [](const SearchHit& a, const SearchHit& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    if (all.size() > flight.request.k) all.resize(flight.request.k);
    for (size_t i = 0; i < all.size(); ++i) {
      all[i].rank = static_cast<int>(i + 1);
    }
    resp.hits = std::move(all);
  }
  return resp;
}

bool ShardedSearchService::AdvanceFlightLocked(
    Flight* flight, int64_t now, std::vector<Delivery>* out) {
  const int n = static_cast<int>(flight->calls.size());
  for (size_t i = 0; i < flight->calls.size(); ++i) {
    ShardCall& call = flight->calls[i];
    if (call.decided) continue;

    auto decide = [&](bool ok, Status error, bool hedge_won,
                      const CallResult* result) {
      call.decided = true;
      call.ok = ok;
      call.hedge_won = hedge_won;
      std::string fail_code;
      if (ok) {
        call.answer.status = Status::OK();
        DecodeRows(flight->request.kind, result->rows,
                   &call.answer.count, &call.answer.hits);
        ++shard_decided_ok_[i];
        if (hedge_won) ++stats_.hedge_wins;
      } else {
        fail_code = StatusCodeToString(error.code());
        call.answer.status = std::move(error);
        ++shard_decided_failed_[i];
      }
      shard_ok_[i] = ok;
      FlightRecorder::Global()->Record(
          ok ? FrEventType::kShardLegOk : FrEventType::kShardLegFail,
          destinations_[i], ok ? (hedge_won ? "hedge_won" : "") : fail_code,
          /*query_id=*/0, static_cast<int64_t>(flight->flight_id),
          static_cast<int64_t>(i));
      // The shard is decided: a still-outstanding losing leg is pure
      // waste now — cancel and reap it.
      if (!call.primary_taken) {
        FlightRecorder::Global()->Record(
            FrEventType::kHedgeReap, destinations_[i], "primary_lost",
            /*query_id=*/0, static_cast<int64_t>(flight->flight_id),
            static_cast<int64_t>(i));
        ReapLegLocked(call.primary);
        call.primary_taken = true;
      }
      if (call.hedge != kInvalidCallId && !call.hedge_taken) {
        FlightRecorder::Global()->Record(
            FrEventType::kHedgeReap, destinations_[i], "hedge_lost",
            /*query_id=*/0, static_cast<int64_t>(flight->flight_id),
            static_cast<int64_t>(i));
        ReapLegLocked(call.hedge);
        call.hedge_taken = true;
      }
    };

    CallResult result;
    if (!call.primary_taken && pump_->TryTake(call.primary, &result)) {
      call.primary_taken = true;
      if (result.status.ok()) {
        decide(true, Status::OK(), /*hedge_won=*/false, &result);
        continue;
      }
      bool can_fail_over = options_.enable_hedging &&
                           shards_[i].replica != nullptr;
      if (!can_fail_over ||
          (call.hedge != kInvalidCallId && call.hedge_taken)) {
        decide(false, std::move(result.status), false, nullptr);
        continue;
      }
      if (call.hedge == kInvalidCallId) {
        // Failure-triggered failover: don't wait for the latency
        // trigger when the primary has already failed.
        FireHedgeLocked(flight, i);
      }
      continue;  // hedge still outstanding; keep waiting
    }
    if (call.hedge != kInvalidCallId && !call.hedge_taken &&
        pump_->TryTake(call.hedge, &result)) {
      call.hedge_taken = true;
      if (result.status.ok()) {
        decide(true, Status::OK(), /*hedge_won=*/true, &result);
        continue;
      }
      if (call.primary_taken) {
        // Both legs failed; the primary's error is the representative
        // one (the hedge usually just repeats it).
        decide(false, std::move(result.status), false, nullptr);
        continue;
      }
    }
    if (!call.decided && call.hedge == kInvalidCallId &&
        call.hedge_at_micros > 0 && now >= call.hedge_at_micros) {
      // Latency-triggered hedge: the primary has been outstanding past
      // the configured quantile of this destination's latency.
      FireHedgeLocked(flight, i);
    }
  }

  int decided_failed = 0;
  int decided_ok = 0;
  for (const ShardCall& call : flight->calls) {
    if (!call.decided) continue;
    if (call.ok) {
      ++decided_ok;
    } else {
      ++decided_failed;
    }
  }
  const bool all_decided = decided_ok + decided_failed == n;

  // Representative error for quorum failures: prefer a non-transient
  // shard error (the engine answered — e.g. a parse error — and every
  // shard gave the same answer) over a generic "shards dark".
  auto failure_status = [&]() -> Status {
    for (const ShardCall& call : flight->calls) {
      if (call.decided && !call.ok &&
          !IsTransient(call.answer.status.code())) {
        return call.answer.status;
      }
    }
    return Status::Unavailable(
        options_.name + ": " + std::to_string(decided_failed) + " of " +
        std::to_string(n) + " shards failed to answer");
  };

  // Resolve waiters. A waiter fails early once its quorum has become
  // impossible (more shards down than it can tolerate); successes wait
  // for every shard to decide so healthy runs merge all shards.
  SearchResponse merged;
  bool have_merged = false;
  auto it = flight->waiters.begin();
  while (it != flight->waiters.end()) {
    int need = NeededShards(it->options, n);
    bool impossible = n - decided_failed < need;
    if (impossible) {
      ++stats_.quorum_failures;
      FlightRecorder::Global()->Record(
          FrEventType::kQuorumFail, options_.name,
          std::to_string(decided_failed) + "_of_" + std::to_string(n) +
              "_shards_failed",
          it->query_id, static_cast<int64_t>(flight->flight_id), need);
      out->push_back(
          Delivery{std::move(it->done),
                   SearchResponse{failure_status(), 0, {}}});
      it = flight->waiters.erase(it);
      continue;
    }
    if (all_decided) {
      if (!have_merged) {
        merged = MergeLocked(*flight);
        have_merged = true;
      }
      SearchResponse resp = merged;
      if (resp.partial) {
        ++stats_.partial_results;
        stats_.degraded_shards +=
            static_cast<uint64_t>(resp.shards_failed);
      } else {
        ++stats_.complete_results;
      }
      out->push_back(Delivery{std::move(it->done), std::move(resp)});
      it = flight->waiters.erase(it);
      continue;
    }
    ++it;
  }

  if (all_decided) return true;
  if (flight->waiters.empty()) {
    // Every waiter has been resolved (all failed early): nobody will
    // consume the remaining legs, so cancel them instead of letting a
    // dark shard's timeout keep the flight alive.
    for (ShardCall& call : flight->calls) {
      if (!call.primary_taken) {
        ReapLegLocked(call.primary);
        call.primary_taken = true;
      }
      if (call.hedge != kInvalidCallId && !call.hedge_taken) {
        ReapLegLocked(call.hedge);
        call.hedge_taken = true;
      }
    }
    return true;
  }
  return false;
}

void ShardedSearchService::GatherLoop() {
  for (;;) {
    std::vector<Delivery> deliveries;
    int64_t next_hedge_at = 0;
    {
      MutexLock lock(&mu_);
      if (stopping_) break;
      int64_t now = NowMicros();
      for (auto it = flights_.begin(); it != flights_.end();) {
        if (AdvanceFlightLocked(&it->second, now, &deliveries)) {
          it = flights_.erase(it);
        } else {
          for (const ShardCall& call : it->second.calls) {
            if (!call.decided && call.hedge == kInvalidCallId &&
                call.hedge_at_micros > 0) {
              next_hedge_at =
                  next_hedge_at == 0
                      ? call.hedge_at_micros
                      : std::min(next_hedge_at, call.hedge_at_micros);
            }
          }
          ++it;
        }
      }
      if (flights_.empty()) idle_cv_.NotifyAll();
    }
    // Deliver waiter callbacks outside mu_: they may re-enter Submit
    // (a retry layer above us) or take arbitrary downstream locks.
    for (Delivery& d : deliveries) d.done(std::move(d.response));

    int64_t wait_micros = options_.poll_micros;
    if (next_hedge_at > 0) {
      int64_t until = next_hedge_at - NowMicros();
      wait_micros = std::min(wait_micros, std::max<int64_t>(until, 100));
    }
    MutexLock lock(&wake_->mu);
    if (!wake_->ping) {
      wake_->cv.WaitForMicros(wake_->mu, wait_micros);
    }
    wake_->ping = false;
  }
}

SimulatedShardCluster::SimulatedShardCluster(const Corpus* corpus,
                                             Options options)
    : options_(std::move(options)) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  const size_t n = options_.num_shards;
  slices_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    slices_.push_back(Corpus::ShardSlice(*corpus, i, n));
  }
  std::vector<ShardedSearchService::Shard> shards(n);
  for (size_t i = 0; i < n; ++i) {
    // Shard engines keep the base rank_seed: per-document scores are
    // then identical to the unsharded engine's, which is what makes
    // merged results byte-identical. Only the name differs.
    SearchEngineConfig cfg = options_.engine;
    cfg.name = options_.engine.name + ".shard" + std::to_string(i);
    engines_.push_back(std::make_unique<SearchEngine>(&slices_[i], cfg));
    SimulatedSearchService::Options sim;
    sim.latency = options_.latency;
    sim.server_capacity = options_.server_capacity;
    sim.seed = options_.seed + i * 1000003u;
    nodes_.push_back(std::make_unique<SimulatedSearchService>(
        engines_[i].get(), sim));
    FaultPlan plan;
    if (i < options_.shard_faults.size()) plan = options_.shard_faults[i];
    faults_.push_back(std::make_unique<FaultInjectingSearchService>(
        nodes_[i].get(), plan));
    RetryPolicy retry = options_.retry;
    retry.seed = options_.seed + i;
    retries_.push_back(std::make_unique<RetryingSearchService>(
        faults_[i].get(), retry));
    breakers_.push_back(std::make_unique<CircuitBreakerSearchService>(
        retries_[i].get(), options_.breaker));
    shards[i].primary = breakers_[i].get();
    if (options_.with_replicas) {
      SearchEngineConfig replica_cfg = cfg;
      replica_cfg.name = cfg.name + "r";
      replica_engines_.push_back(
          std::make_unique<SearchEngine>(&slices_[i], replica_cfg));
      SimulatedSearchService::Options replica_sim = sim;
      replica_sim.seed = sim.seed ^ 0x5eedful;
      replica_nodes_.push_back(std::make_unique<SimulatedSearchService>(
          replica_engines_[i].get(), replica_sim));
      shards[i].replica = replica_nodes_[i].get();
    }
  }
  pump_ = std::make_unique<ReqPump>(options_.pump_limits);
  ShardedSearchService::Options svc = options_.service;
  if (svc.name == "sharded") svc.name = options_.engine.name;
  sharded_ = std::make_unique<ShardedSearchService>(std::move(shards),
                                                    pump_.get(), svc);
}

SimulatedShardCluster::~SimulatedShardCluster() {
  // Tear the front-end down first (fails outstanding waiters, cancels
  // its legs), then the pump. After that only the service stacks
  // remain — and the retry layer's destructor blocks until its calls
  // resolve, which never happens on its own while those calls sit
  // parked in the fault layer's hang queue below it. Worse, a released
  // hang completes kUnavailable (transient), which the retry layer may
  // re-submit — and the resubmission hangs again. So: keep releasing
  // hung calls until every retry stack reports idle.
  sharded_.reset();
  pump_.reset();
  for (;;) {
    bool idle = true;
    for (auto& retry : retries_) {
      if (retry->outstanding() != 0) {
        idle = false;
        break;
      }
    }
    if (idle) break;
    for (auto& fault : faults_) fault->ReleaseHung();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void SimulatedShardCluster::Quiesce() {
  sharded_->Quiesce();
  pump_->Drain();
  for (auto& node : nodes_) node->Quiesce();
  for (auto& node : replica_nodes_) node->Quiesce();
}

}  // namespace wsq
