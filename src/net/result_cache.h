#ifndef WSQ_NET_RESULT_CACHE_H_
#define WSQ_NET_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "net/search_service.h"

namespace wsq {

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Responses refused admission: non-OK, or OK-but-partial (a degraded
  /// sharded answer must not masquerade as the full answer for the
  /// cache TTL).
  uint64_t rejected = 0;
};

/// LRU cache of search responses keyed by request
/// (paper §4: "caching techniques [HN96] are important for avoiding
/// repeated external calls").
class ResultCache {
 public:
  /// `capacity` entries; `ttl_micros` <= 0 disables expiry.
  explicit ResultCache(size_t capacity, int64_t ttl_micros = 0);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Unhooks the stats collector from the metrics registry.
  ~ResultCache();

  std::optional<SearchResponse> Get(const std::string& key);
  void Put(const std::string& key, SearchResponse response);

  /// Counts a response CachingSearchService refused to admit (for the
  /// wsq_result_cache_rejected_total series).
  void CountRejected();

  size_t size() const;
  ResultCacheStats stats() const;
  void Clear();

 private:
  struct Entry {
    std::string key;
    SearchResponse response;
    int64_t inserted_micros;
  };

  mutable Mutex mu_;
  /// Immutable after construction (read without mu_).
  size_t capacity_;
  int64_t ttl_micros_;
  std::list<Entry> lru_ WSQ_GUARDED_BY(mu_);  // front = MRU
  std::unordered_map<std::string, std::list<Entry>::iterator> map_
      WSQ_GUARDED_BY(mu_);
  ResultCacheStats stats_ WSQ_GUARDED_BY(mu_);
  uint64_t collector_id_ = 0;
};

/// SearchService decorator that answers repeated requests from a
/// ResultCache. Cache hits complete synchronously (zero latency), which
/// reproduces the paper's observation that "repeated searches with
/// identical keyword expressions may run far faster the second time".
class CachingSearchService : public SearchService {
 public:
  CachingSearchService(SearchService* wrapped, ResultCache* cache)
      : wrapped_(wrapped), cache_(cache) {}

  const std::string& name() const override { return wrapped_->name(); }

  void Submit(SearchRequest request, SearchCallback done) override;

 private:
  SearchService* wrapped_;
  ResultCache* cache_;
};

}  // namespace wsq

#endif  // WSQ_NET_RESULT_CACHE_H_
