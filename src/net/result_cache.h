#ifndef WSQ_NET_RESULT_CACHE_H_
#define WSQ_NET_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/memory.h"
#include "common/thread_annotations.h"
#include "net/search_service.h"

namespace wsq {

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Responses refused admission: non-OK, or OK-but-partial (a degraded
  /// sharded answer must not masquerade as the full answer for the
  /// cache TTL).
  uint64_t rejected = 0;
  /// Entries shed by a MemoryBudget pressure callback (a subset of
  /// `evictions`).
  uint64_t pressure_shed = 0;
};

/// LRU cache of search responses keyed by request
/// (paper §4: "caching techniques [HN96] are important for avoiding
/// repeated external calls").
///
/// Bounded by entry count AND by payload bytes (key + response
/// footprint); the LRU tail is evicted past either bound. With a
/// MemoryBudget attached, resident bytes are charged to it
/// (ForceReserve — the cache is shared across queries, so backpressure
/// is not an option) and a pressure hook sheds LRU entries when any
/// budget client fails a reservation: tier 2 of the degradation ladder.
class ResultCache {
 public:
  /// `capacity` entries; `ttl_micros` <= 0 disables expiry;
  /// `max_bytes` 0 = no byte bound.
  explicit ResultCache(size_t capacity, int64_t ttl_micros = 0,
                       size_t max_bytes = 0);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Unhooks the stats collector and any budget pressure hook.
  ~ResultCache();

  /// Charges resident bytes to `budget` and registers a pressure hook
  /// that sheds LRU entries on demand. Call once, before concurrent
  /// use; the budget must outlive this cache or be detached first.
  void AttachBudget(MemoryBudget* budget);

  /// Releases all charges and unhooks from the budget. Required when
  /// the budget's owner is destroyed before this cache.
  void DetachBudget();

  std::optional<SearchResponse> Get(const std::string& key);
  void Put(const std::string& key, SearchResponse response);

  /// Counts a response CachingSearchService refused to admit (for the
  /// wsq_result_cache_rejected_total series).
  void CountRejected();

  size_t size() const;
  /// Payload bytes currently resident.
  size_t bytes() const;
  ResultCacheStats stats() const;
  void Clear();

 private:
  struct Entry {
    std::string key;
    SearchResponse response;
    int64_t inserted_micros;
    /// key.size() + response.ApproxBytes() at insertion.
    size_t bytes;
  };

  /// Evicts LRU entries while over the entry or byte bound.
  void EvictToBoundsLocked() WSQ_REQUIRES(mu_);
  /// Drops the LRU tail entry, releasing its budget charge.
  void EvictBackLocked() WSQ_REQUIRES(mu_);
  /// Pressure hook body: sheds LRU entries until `wanted` bytes are
  /// freed (or the cache is empty); returns bytes freed.
  size_t ShedForPressure(size_t wanted);

  mutable Mutex mu_;
  /// Immutable after construction (read without mu_).
  size_t capacity_;
  int64_t ttl_micros_;
  size_t max_bytes_;
  std::list<Entry> lru_ WSQ_GUARDED_BY(mu_);  // front = MRU
  std::unordered_map<std::string, std::list<Entry>::iterator> map_
      WSQ_GUARDED_BY(mu_);
  size_t bytes_ WSQ_GUARDED_BY(mu_) = 0;
  ResultCacheStats stats_ WSQ_GUARDED_BY(mu_);
  /// Set once by AttachBudget before concurrent use.
  MemoryBudget* budget_ = nullptr;
  uint64_t pressure_hook_id_ = 0;
  uint64_t collector_id_ = 0;
  /// \statusz section provider handle, removed in the destructor.
  uint64_t statusz_id_ = 0;
};

/// SearchService decorator that answers repeated requests from a
/// ResultCache. Cache hits complete synchronously (zero latency), which
/// reproduces the paper's observation that "repeated searches with
/// identical keyword expressions may run far faster the second time".
class CachingSearchService : public SearchService {
 public:
  CachingSearchService(SearchService* wrapped, ResultCache* cache)
      : wrapped_(wrapped), cache_(cache) {}

  const std::string& name() const override { return wrapped_->name(); }

  void Submit(SearchRequest request, SearchCallback done) override;

 private:
  SearchService* wrapped_;
  ResultCache* cache_;
};

}  // namespace wsq

#endif  // WSQ_NET_RESULT_CACHE_H_
