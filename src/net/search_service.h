#ifndef WSQ_NET_SEARCH_SERVICE_H_
#define WSQ_NET_SEARCH_SERVICE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/shard_policy.h"
#include "search/search_engine.h"

namespace wsq {

/// A request to a (remote) search engine.
struct SearchRequest {
  enum class Kind {
    kCount,  ///< WebCount: total hits only.
    kTopK,   ///< WebPages: ranked URLs up to `k`.
  };

  Kind kind = Kind::kCount;
  std::string query;
  size_t k = 20;

  /// Partial-result policy for sharded backends; ignored (harmlessly)
  /// by single-node services. Not part of CacheKey: the coalescing key
  /// identifies the *work* (kind, k, query) — policy is per waiter.
  ShardOptions shard;

  /// Cache key: kind + k + query.
  std::string CacheKey() const;
};

struct SearchResponse {
  Status status;
  int64_t count = 0;             // kCount
  std::vector<SearchHit> hits;   // kTopK
  /// Sharded backends report coverage: how many shards the logical call
  /// fanned out to and how many failed to answer. `partial` is set when
  /// the response was merged from a strict subset of shards (quorum /
  /// best-effort degradation) — counts are then lower bounds.
  int shards_total = 0;
  int shards_failed = 0;
  bool partial = false;

  /// Approximate heap footprint of the payload (struct + hit strings);
  /// what the result cache charges against its byte bound and the
  /// process memory budget.
  size_t ApproxBytes() const;
};

using SearchCallback = std::function<void(SearchResponse)>;

/// Asynchronous interface to one search engine "across the network".
///
/// Submit returns immediately; the callback fires from a service thread
/// once the simulated round-trip elapses. Implementations must eventually
/// complete every accepted request, including during shutdown.
class SearchService {
 public:
  virtual ~SearchService() = default;

  virtual const std::string& name() const = 0;

  virtual void Submit(SearchRequest request, SearchCallback done) = 0;

  /// Blocking convenience wrapper around Submit.
  SearchResponse Execute(SearchRequest request);
};

}  // namespace wsq

#endif  // WSQ_NET_SEARCH_SERVICE_H_
