#ifndef WSQ_OBS_HISTOGRAM_H_
#define WSQ_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsq {

/// Log-linear ("HDR-lite") bucket layout shared by Histogram and
/// HistogramSnapshot:
///
///   - values 0..15 get one exact bucket each (indices 0..15);
///   - every octave [2^e, 2^(e+1)) with e >= 4 is split into 8 linear
///     sub-buckets of width 2^(e-3).
///
/// Relative error is therefore bounded by 1/8 (12.5%) across the whole
/// int64 range, which is plenty for latency quantiles, while the table
/// stays small enough (488 buckets) to snapshot and merge cheaply.
inline constexpr size_t kHistogramLinearMax = 16;
inline constexpr size_t kHistogramSubBuckets = 8;
/// Highest exponent a positive int64 can have (2^62 <= v < 2^63).
inline constexpr size_t kHistogramMaxExponent = 62;
inline constexpr size_t kHistogramBuckets =
    kHistogramLinearMax +
    (kHistogramMaxExponent - 3) * kHistogramSubBuckets;  // 488

/// Bucket index for `value`; negative values clamp to bucket 0.
size_t HistogramBucketIndex(int64_t value);

/// Exemplar cells are one per octave (values 0..15 share cell 0), so a
/// p99 spike in any octave keeps a pointer to a concrete query.
inline constexpr size_t kHistogramExemplarCells =
    kHistogramBuckets / kHistogramSubBuckets;  // 61

/// Exemplar cell index for `value` (the octave of its bucket).
size_t HistogramExemplarCell(int64_t value);

/// Last recorded (query id, value) witnessed in one octave. The two
/// fields are separate relaxed atomics, so a cell read during a
/// concurrent record may pair one event's id with another's value —
/// acceptable for a forensics hint, never for accounting.
struct HistogramExemplar {
  size_t cell = 0;
  /// Smallest value mapping to this cell's octave.
  int64_t octave_lower_bound = 0;
  int64_t value = 0;
  uint64_t query_id = 0;
};

/// Smallest / largest (inclusive) value mapping to bucket `index`.
int64_t HistogramBucketLowerBound(size_t index);
int64_t HistogramBucketUpperBound(size_t index);

/// A point-in-time copy of a Histogram, safe to merge and query without
/// synchronization. Also the unit the metrics exporters consume.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  int64_t max = 0;
  /// Either empty (no recordings) or exactly kHistogramBuckets wide.
  std::vector<uint64_t> buckets;

  void Merge(const HistogramSnapshot& other);

  /// Quantile estimate in [0, 1] from bucket midpoints, clamped to the
  /// observed max; exact for values below kHistogramLinearMax. Returns
  /// 0 for an empty snapshot.
  double Quantile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Concurrent log-linear histogram. Record() is lock-free (one relaxed
/// fetch_add per bucket/count/sum plus a CAS max) and safe from any
/// thread; Snapshot() is a relaxed read of all buckets — values
/// recorded concurrently may or may not be included, which is the usual
/// monitoring contract.
class Histogram {
 public:
  Histogram() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(int64_t value) {
    if (gate_ != nullptr && !gate_->load(std::memory_order_relaxed)) return;
    if (value < 0) value = 0;
    buckets_[HistogramBucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(static_cast<uint64_t>(value), std::memory_order_relaxed);
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (value > cur && !max_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
    RecordExemplarFromThread(value);
  }

  /// Record() plus an explicit exemplar query id, for completion paths
  /// that run on a thread other than the one bound to the query (pump
  /// network threads, shard gather threads).
  void RecordWithExemplar(int64_t value, uint64_t query_id) {
    if (gate_ != nullptr && !gate_->load(std::memory_order_relaxed)) return;
    Record(value);
    if (query_id != 0) StoreExemplar(value < 0 ? 0 : value, query_id);
  }

  HistogramSnapshot Snapshot() const;

  /// Populated exemplar cells (query id != 0), ordered by cell.
  std::vector<HistogramExemplar> Exemplars() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;

  /// One (query id, value) pair per octave; see HistogramExemplar.
  struct ExemplarCell {
    std::atomic<uint64_t> query_id{0};
    std::atomic<int64_t> value{0};
  };

  /// Stamps the exemplar cell with the calling thread's bound query id
  /// (no-op when none is bound). Out of line: the TLS lookup lives in
  /// the obs library, not in every including TU.
  void RecordExemplarFromThread(int64_t value);
  void StoreExemplar(int64_t value, uint64_t query_id) {
    ExemplarCell& cell = exemplars_[HistogramExemplarCell(value)];
    cell.value.store(value, std::memory_order_relaxed);
    cell.query_id.store(query_id, std::memory_order_relaxed);
  }

  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_;
  std::array<ExemplarCell, kHistogramExemplarCells> exemplars_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<int64_t> max_{0};
  /// Registry kill switch (null = always record); set once at creation
  /// by MetricsRegistry, before the histogram is published.
  const std::atomic<bool>* gate_ = nullptr;
};

}  // namespace wsq

#endif  // WSQ_OBS_HISTOGRAM_H_
