#ifndef WSQ_OBS_FLIGHT_RECORDER_H_
#define WSQ_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace wsq {

class Counter;
class Gauge;

/// Always-on flight recorder (DESIGN.md §16).
///
/// A bounded, process-wide record of the structured events that decide
/// a query's fate: ReqPump dispatch/complete/cancel/shed, breaker state
/// transitions, hedge fires and loser reaps, coalesce joins, shard-leg
/// outcomes, admission waits/sheds, memory pressure hooks, spill runs,
/// WAL checkpoints. When a query ends badly the executor snapshots the
/// events stamped with its id into a postmortem record, so "which shard
/// was dark / which breaker was open / which budget refused" is
/// answerable after the fact without rerunning the query.
///
/// Concurrency model: every recording thread appends to its own ring of
/// plain-old-data slots, so the hot path is a handful of relaxed atomic
/// stores plus one relaxed counter bump — no locks, no allocation, no
/// contention between threads. Rings are registered with the recorder
/// under a mutex the first time a thread records and are kept alive by
/// shared_ptr after the thread exits (a completed thread's tail of
/// events stays visible to later snapshots). Snapshot() takes only that
/// registry mutex plus relaxed loads of the slots; a slot being written
/// concurrently may be observed torn across fields, which is why every
/// slot carries a sequence number — slots whose sequence changed during
/// the read are dropped rather than misattributed.

/// Event taxonomy. Values are stable (postmortem sinks may persist
/// them); append only.
enum class FrEventType : uint8_t {
  kQueryBegin = 0,
  kQueryEnd = 1,
  // ReqPump lifecycle.
  kCallRegister = 2,
  kCallDispatch = 3,
  kCallComplete = 4,
  kCallFailed = 5,
  kCallTimeout = 6,
  kCallCancel = 7,
  kCallShed = 8,
  kCallLateDiscard = 9,
  // Circuit breaker state machine.
  kBreakerTrip = 10,
  kBreakerProbe = 11,
  kBreakerClose = 12,
  // Sharded scatter-gather.
  kCoalesceJoin = 13,
  kFanout = 14,
  kHedgeFire = 15,
  kHedgeReap = 16,
  kShardLegOk = 17,
  kShardLegFail = 18,
  kQuorumFail = 19,
  // Admission control.
  kAdmissionWait = 20,
  kAdmissionShed = 21,
  // Memory governor + spill.
  kMemoryPressure = 22,
  kReserveFail = 23,
  kSpillRun = 24,
  kSpillFail = 25,
  // Storage.
  kWalCheckpoint = 26,
};

/// Human-readable name for an event type ("call_dispatch", ...).
std::string_view FrEventTypeName(FrEventType type);

/// One decoded event, as returned by snapshots. `destination` and
/// `cause` are resolved from the recorder's intern table; either may be
/// empty. `a` / `b` are event-specific small integers (call id, shard
/// index, bytes, micros — see the recording sites).
struct FrEvent {
  uint64_t sequence = 0;
  int64_t timestamp_micros = 0;
  FrEventType type = FrEventType::kQueryBegin;
  uint64_t query_id = 0;
  std::string destination;
  std::string cause;
  int64_t a = 0;
  int64_t b = 0;

  /// `t=+1234us call_dispatch qid=7 dest=AltaVista a=3` — one line,
  /// key=value, deterministic field order.
  std::string ToLine(int64_t base_micros = 0) const;
};

class FlightRecorder;

/// Binds a query id to the current thread for the duration of a scope
/// (modeled on Tracer::ThreadBinding). Events recorded on this thread
/// without an explicit id are stamped with the bound id; nesting
/// restores the previous binding.
class QueryIdBinding {
 public:
  explicit QueryIdBinding(uint64_t query_id);
  ~QueryIdBinding();

  QueryIdBinding(const QueryIdBinding&) = delete;
  QueryIdBinding& operator=(const QueryIdBinding&) = delete;

 private:
  uint64_t previous_;
};

/// Query id bound to the calling thread (0 = none).
uint64_t CurrentQueryId();

/// Fixed-size per-thread ring. Writers are single-threaded (the owning
/// thread); readers tolerate concurrent writes via the per-slot
/// sequence protocol described on FlightRecorder.
class FlightRing {
 public:
  /// Slots per ring. 1024 slots x 64 bytes = 64 KiB per recording
  /// thread — deep enough for several queries' fan-out on a busy
  /// thread, small enough to never matter.
  static constexpr size_t kSlots = 1024;

  FlightRing() = default;
  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

 private:
  friend class FlightRecorder;

  /// POD mirror of FrEvent with interned strings. All fields relaxed
  /// atomics: the single writer never races itself, and readers
  /// validate via `sequence` (written last, re-checked after the read).
  struct Slot {
    std::atomic<uint64_t> sequence{0};  // 0 = never written
    std::atomic<int64_t> timestamp_micros{0};
    std::atomic<uint64_t> query_id{0};
    std::atomic<uint32_t> destination_id{0};
    std::atomic<uint32_t> cause_id{0};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
    std::atomic<uint8_t> type{0};
  };

  Slot slots_[kSlots];
  /// Next write position; monotonic, wraps modulo kSlots. Written only
  /// by the owning thread, read by snapshots.
  std::atomic<uint64_t> next_{0};
};

/// Bounded snapshot of recorder state, plus bookkeeping counters.
struct FlightRecorderSnapshot {
  /// Events ordered by (timestamp, sequence); capped at the ring
  /// capacity times the thread count.
  std::vector<FrEvent> events;
  uint64_t recorded_total = 0;
  /// Slots overwritten before any snapshot saw them is not tracked
  /// (rings are meant to wrap); this counts events dropped for other
  /// reasons: torn reads discarded during a concurrent snapshot.
  uint64_t torn_dropped = 0;
  size_t rings = 0;
};

/// Process-wide recorder. Use FlightRecorder::Global(); the instance is
/// never destroyed so recording threads can outlive any owner.
class FlightRecorder {
 public:
  static FlightRecorder* Global();

  FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event to the calling thread's ring. Lock-free after
  /// the thread's first event (which registers its ring under the
  /// mutex). `query_id` 0 means "use the thread's bound id".
  /// Honors MetricsRegistry::SetRecordingEnabled(false): while the kill
  /// switch is off, Record is a single relaxed load and return.
  void Record(FrEventType type, std::string_view destination,
              std::string_view cause, uint64_t query_id = 0, int64_t a = 0,
              int64_t b = 0);

  /// All currently visible events across every ring, ordered by
  /// (timestamp, sequence). Takes the registry mutex only.
  FlightRecorderSnapshot Snapshot() const WSQ_EXCLUDES(mu_);

  /// The visible events stamped with `query_id`, ordered. Convenience
  /// over Snapshot() for postmortem assembly.
  std::vector<FrEvent> EventsForQuery(uint64_t query_id) const
      WSQ_EXCLUDES(mu_);

  /// Events recorded since process start (monotonic, includes events
  /// whose slots have since been overwritten).
  uint64_t recorded_total() const {
    return recorded_total_.load(std::memory_order_relaxed);
  }

  /// Recorder-local gate beneath the registry kill switch (which stops
  /// the recorder AND the instruments). Lets bench_obs_overhead isolate
  /// the recorder's own cost. On by default — the recorder is always-on
  /// in production.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Intern helpers are exposed for tests; production code just passes
  /// strings to Record().
  uint32_t InternForTest(std::string_view s) { return Intern(s); }
  std::string ResolveForTest(uint32_t id) const { return Resolve(id); }

 private:
  uint32_t Intern(std::string_view s) WSQ_EXCLUDES(intern_mu_);
  std::string Resolve(uint32_t id) const WSQ_EXCLUDES(intern_mu_);
  FlightRing* RingForThisThread() WSQ_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::vector<std::shared_ptr<FlightRing>> rings_ WSQ_GUARDED_BY(mu_);

  /// String interner: id 0 is reserved for "". A leaf mutex — never
  /// held while calling anything else — so recording under a component
  /// lock (breaker mu_, pump core mu) cannot deadlock.
  mutable Mutex intern_mu_;
  std::vector<std::string> intern_table_ WSQ_GUARDED_BY(intern_mu_);

  std::atomic<uint64_t> recorded_total_{0};
  std::atomic<uint64_t> next_sequence_{1};
  std::atomic<bool> enabled_{true};

  /// Registry instruments, resolved once in the constructor (which runs
  /// at static-initialization time for Global()) so Record() never
  /// touches the registry lock — recording sites run under component
  /// locks, and the registry's lock order is registry → component.
  Counter* events_counter_ = nullptr;
  Gauge* rings_gauge_ = nullptr;
};

/// ---------------------------------------------------------------------
/// Postmortems.

/// Snapshot of one bad query ending: the flight-recorder slice for that
/// query plus the final QueryStats fields that matter for forensics.
struct PostmortemRecord {
  uint64_t query_id = 0;
  std::string sql;
  /// Status code name ("DEADLINE_EXCEEDED") or "OK" for degraded-but-ok
  /// endings (partial results / degraded tuples / spill trouble).
  std::string verdict;
  /// Free-form one-line reason ("2 of 3 shards answered", ...).
  std::string cause;
  int64_t elapsed_micros = 0;
  bool ok = false;
  bool partial_results = false;
  uint64_t degraded_tuples = 0;
  uint64_t external_calls = 0;
  uint64_t failed_calls = 0;
  uint64_t spilled_bytes = 0;
  uint64_t spill_runs = 0;
  uint64_t peak_memory_bytes = 0;
  /// This query's event slice, ordered; bounded by the log's
  /// max_events.
  std::vector<FrEvent> events;
  /// Events elided to honor the bound (from the front — the ending
  /// matters most).
  size_t events_dropped = 0;

  /// Multi-line human rendering: a header line followed by one indented
  /// line per event (timestamps relative to the first event).
  std::string ToText() const;
};

/// Sink + rate limiter for postmortem records (the slow-query-log
/// pattern: pluggable sink, injectable clock, bounded size). The
/// database owns one; Execute() feeds it every bad ending.
class PostmortemLog {
 public:
  using Sink = std::function<void(const PostmortemRecord&)>;
  using Clock = std::function<int64_t()>;

  /// `min_interval_micros`: at most one emitted record per interval
  /// (0 = unlimited). Null `sink` = stderr. `max_events` bounds the
  /// event slice kept per record.
  explicit PostmortemLog(int64_t min_interval_micros = 0, Sink sink = nullptr,
                         Clock clock = nullptr, size_t max_events = 128);

  PostmortemLog(const PostmortemLog&) = delete;
  PostmortemLog& operator=(const PostmortemLog&) = delete;

  int64_t NowMicros() const;

  /// Emits `record` through the sink unless rate-limited. The event
  /// slice is truncated (front first) to max_events. The most recent
  /// record — emitted or rate-limited — is retained for last().
  /// Returns true when the sink ran.
  bool Log(PostmortemRecord record) WSQ_EXCLUDES(mu_);

  /// Most recent record (emitted or suppressed), if any.
  std::shared_ptr<const PostmortemRecord> last() const WSQ_EXCLUDES(mu_);

  uint64_t emitted_total() const {
    return emitted_total_.load(std::memory_order_relaxed);
  }
  uint64_t suppressed_total() const {
    return suppressed_total_.load(std::memory_order_relaxed);
  }
  size_t max_events() const { return max_events_; }

 private:
  const int64_t min_interval_micros_;
  const size_t max_events_;
  Sink sink_;
  Clock clock_;
  mutable Mutex mu_;
  int64_t last_emit_micros_ WSQ_GUARDED_BY(mu_) = 0;
  std::shared_ptr<const PostmortemRecord> last_ WSQ_GUARDED_BY(mu_);
  std::atomic<uint64_t> emitted_total_{0};
  std::atomic<uint64_t> suppressed_total_{0};
};

}  // namespace wsq

#endif  // WSQ_OBS_FLIGHT_RECORDER_H_
