#ifndef WSQ_OBS_METRICS_H_
#define WSQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/histogram.h"

namespace wsq {

/// Label set attached to a metric, e.g. {{"destination", "AltaVista"}}.
/// Order does not matter: labels are sorted before they become part of
/// the series identity.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// Metric naming scheme (enforced by tools/wsqlint.py `metric-naming`):
/// snake_case, `wsq_` prefix for this codebase, counters end in
/// `_total`, histograms carry their unit (`_micros` / `_bytes`), gauges
/// are bare nouns (`wsq_reqpump_in_flight`).

/// Monotonic counter. Add() is one relaxed fetch_add; reads are relaxed.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) {
    if (gate_ != nullptr && !gate_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> value_{0};
  const std::atomic<bool>* gate_ = nullptr;  // registry kill switch
};

/// Instantaneous value (may go down).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

/// Sink handed to collector callbacks at export time. Emitted samples
/// are merged with the registry-owned instruments: samples sharing
/// (name, labels) are summed (counters/gauges) or bucket-merged
/// (histograms), so several ReqPumps or caches publishing under the
/// same name roll up into process totals.
class MetricsEmitter {
 public:
  virtual ~MetricsEmitter() = default;
  virtual void EmitCounter(std::string_view name, std::string_view help,
                           MetricLabels labels, uint64_t value) = 0;
  virtual void EmitGauge(std::string_view name, std::string_view help,
                         MetricLabels labels, int64_t value) = 0;
  virtual void EmitHistogram(std::string_view name, std::string_view help,
                             MetricLabels labels,
                             HistogramSnapshot snapshot) = 0;
};

/// Process-wide metrics registry (tentpole of DESIGN.md §12).
///
/// Two publication styles:
///  - owned instruments: GetCounter/GetGauge/GetHistogram return a
///    pointer that stays valid for the registry's lifetime; hot paths
///    cache it (typically in a function-local static) and record
///    lock-free;
///  - collectors: components that already keep their own stats structs
///    (ReqPumpStats, AdmissionStats, ...) register a callback that
///    re-publishes them at export time, keeping the existing accessors
///    as the single source of truth.
///
/// Collector contract: callbacks run under the registry lock, so they
/// must not call back into the registry (fetch any needed instruments
/// beforehand); they may take their component's own lock — the
/// lock order is registry → component, never the reverse while holding
/// a component lock. Remove the collector (RemoveCollector) before the
/// component it captures is destroyed.
///
/// SetRecordingEnabled(false) is a kill switch for overhead
/// measurement: owned counters and histograms drop recordings while
/// disabled (gauges and collectors still export their current state).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed, so instrument pointers
  /// and collector registration outlive every component).
  static MetricsRegistry* Global();

  /// Finds or creates the instrument for (name, labels). Returns null
  /// only if the name is already registered with a different type —
  /// a programming error surfaced to the caller instead of silently
  /// exporting one series under two types.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const MetricLabels& labels = {}) WSQ_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const MetricLabels& labels = {}) WSQ_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const MetricLabels& labels = {}) WSQ_EXCLUDES(mu_);

  using CollectorFn = std::function<void(MetricsEmitter*)>;

  /// Registers an export-time callback; returns a handle for removal.
  uint64_t AddCollector(CollectorFn fn) WSQ_EXCLUDES(mu_);
  void RemoveCollector(uint64_t id) WSQ_EXCLUDES(mu_);

  void SetRecordingEnabled(bool enabled) {
    recording_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool recording_enabled() const {
    return recording_enabled_.load(std::memory_order_relaxed);
  }

  /// Prometheus text exposition. Histograms are rendered summary-style:
  /// `name{...,quantile="0.5"}`, plus `name_sum`, `name_count`, and a
  /// `name_max` gauge. Output is sorted by (name, labels) so repeated
  /// exports of the same state are byte-identical.
  std::string ExportPrometheusText() const WSQ_EXCLUDES(mu_);

  /// The same samples as a JSON array (machine-readable dumps/benches).
  std::string ExportJson() const WSQ_EXCLUDES(mu_);

 private:
  struct Instrument {
    MetricType type;
    std::string name;
    std::string help;
    std::string labels_text;  // canonical, sorted
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// One exported series, post-merge.
  struct Sample {
    MetricType type;
    std::string name;
    std::string help;
    std::string labels_text;
    uint64_t counter_value = 0;
    int64_t gauge_value = 0;
    HistogramSnapshot histogram;
  };

  class CollectingEmitter;

  Instrument* GetLocked(MetricType type, const std::string& name,
                        const std::string& help, const MetricLabels& labels)
      WSQ_REQUIRES(mu_);

  /// Snapshot of every instrument + collector output, merged by
  /// (name, labels) and sorted.
  std::vector<Sample> Collect() const WSQ_EXCLUDES(mu_);

  mutable Mutex mu_;
  /// Keyed by name + canonical label text; values are stable pointers.
  std::map<std::string, std::unique_ptr<Instrument>> instruments_
      WSQ_GUARDED_BY(mu_);
  std::map<uint64_t, CollectorFn> collectors_ WSQ_GUARDED_BY(mu_);
  uint64_t next_collector_id_ WSQ_GUARDED_BY(mu_) = 1;
  std::atomic<bool> recording_enabled_{true};
};

}  // namespace wsq

#endif  // WSQ_OBS_METRICS_H_
