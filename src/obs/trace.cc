#include "obs/trace.h"

#include <algorithm>

#include "common/strings.h"

namespace wsq {

namespace {
thread_local Tracer* tls_tracer = nullptr;
}  // namespace

Tracer* Tracer::CurrentThread() { return tls_tracer; }

Tracer::ThreadBinding::ThreadBinding(Tracer* tracer)
    : previous_(tls_tracer) {
  if (tracer != nullptr) tls_tracer = tracer;
}

Tracer::ThreadBinding::~ThreadBinding() { tls_tracer = previous_; }

QueryTrace Tracer::Finish() {
  QueryTrace trace;
  trace.dropped_spans = dropped_;
  trace.max_spans = max_spans_;
  trace.spans = std::move(spans_);
  spans_.clear();
  dropped_ = 0;
  // Spans are appended when they close, so children precede their
  // parents; re-order parents-first for reading: by start time, with
  // ties broken outermost-first.
  std::stable_sort(trace.spans.begin(), trace.spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     if (a.start_micros != b.start_micros) {
                       return a.start_micros < b.start_micros;
                     }
                     return a.depth < b.depth;
                   });
  return trace;
}

std::string QueryTrace::ToString() const {
  std::string out;
  for (const TraceSpan& span : spans) {
    out += StrFormat("[%10lld us] ", (long long)span.start_micros);
    if (span.instant) {
      out += "     event    ";
    } else {
      out += StrFormat("%8lld us  ", (long long)span.duration_micros);
    }
    out.append(static_cast<size_t>(span.depth) * 2, ' ');
    out += span.category;
    out += ".";
    out += span.name;
    if (!span.detail.empty()) {
      out += "  ";
      out += span.detail;
    }
    out += "\n";
  }
  if (dropped_spans > 0) {
    out += StrFormat("... %llu span(s) dropped (budget %zu)\n",
                     (unsigned long long)dropped_spans, max_spans);
  }
  return out;
}

}  // namespace wsq
