#ifndef WSQ_OBS_TRACE_H_
#define WSQ_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace wsq {

/// One recorded span or instant event. Times are relative to the
/// tracer's epoch (query start), so traces are stable to read and cheap
/// to ship.
struct TraceSpan {
  /// Span taxonomy (DESIGN.md §12): "query" (phases), "op" (operator
  /// Open/Close), "reqpump" (call register/dispatch/complete/cancel),
  /// "reqsync" (buffer/wait/proliferate), "net" (blocking fetch),
  /// "storage" (page I/O), "wal" (log append/commit).
  std::string category;
  std::string name;
  std::string detail;
  int64_t start_micros = 0;     ///< offset from the tracer epoch
  int64_t duration_micros = 0;  ///< 0 for instant events
  bool instant = false;
  int depth = 0;  ///< nesting level at the time the span was open
};

/// The finished, consumable form of a trace (Tracer::Finish): spans
/// ordered parents-before-children.
struct QueryTrace {
  std::vector<TraceSpan> spans;
  /// Spans not recorded because the budget (max_spans) was exhausted.
  uint64_t dropped_spans = 0;
  size_t max_spans = 0;

  /// Human-readable rendering, one line per span, indented by depth.
  std::string ToString() const;
};

/// Per-query trace recorder.
///
/// Thread model: a Tracer belongs to the one thread executing its
/// query (operators are single-threaded by contract), so recording is
/// plain vector appends — no lock, no atomics. Cross-thread work
/// (ReqPump completions) is recorded from the query thread when the
/// completion is consumed, using the timing the pump attached to the
/// CallResult. Cost when tracing is off is a single null check at each
/// instrumentation site.
///
/// Budget: at most `max_spans` spans are kept; further spans are
/// counted in dropped_spans() and otherwise free. Note spans are
/// recorded when they CLOSE, so under truncation a long-running parent
/// may be dropped while its children survive.
class Tracer {
 public:
  static constexpr size_t kDefaultMaxSpans = 4096;

  explicit Tracer(size_t max_spans = kDefaultMaxSpans)
      : max_spans_(max_spans == 0 ? kDefaultMaxSpans : max_spans),
        epoch_micros_(NowMicros()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// RAII span: opens at construction, records at destruction.
  class Scope {
   public:
    Scope(Tracer* tracer, std::string_view category, std::string name)
        : tracer_(tracer),
          category_(category),
          name_(std::move(name)),
          start_micros_(NowMicros()) {
      depth_ = tracer_->depth_++;
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    ~Scope() {
      --tracer_->depth_;
      tracer_->Record(category_, std::move(name_), std::move(detail_),
                      start_micros_, NowMicros() - start_micros_,
                      /*instant=*/false, depth_);
    }

    /// Attaches free-form detail, visible when the span is recorded.
    void AppendDetail(std::string_view detail) {
      if (!detail_.empty()) detail_ += " ";
      detail_ += detail;
    }

   private:
    Tracer* tracer_;
    std::string_view category_;
    std::string name_;
    std::string detail_;
    int64_t start_micros_;
    int depth_;
  };

  /// Instant event at the current nesting depth.
  void Event(std::string_view category, std::string name,
             std::string detail = "") {
    int64_t now = NowMicros();
    Record(category, std::move(name), std::move(detail), now, 0,
           /*instant=*/true, depth_);
  }

  /// Finishes the trace: spans sorted parents-first (by start time,
  /// then outermost depth). The tracer is left empty.
  QueryTrace Finish();

  size_t span_count() const { return spans_.size(); }
  uint64_t dropped_spans() const { return dropped_; }
  size_t max_spans() const { return max_spans_; }
  int64_t epoch_micros() const { return epoch_micros_; }

  /// The tracer bound to this thread (null if none) — how layers with
  /// no ExecContext access (buffer pool, WAL) attach I/O spans to the
  /// running query. Bound via ThreadBinding for the query's duration.
  static Tracer* CurrentThread();

  /// Scoped TLS binding; restores the previous binding on destruction.
  /// Binding null is a no-op placeholder (tracing disabled).
  class ThreadBinding {
   public:
    explicit ThreadBinding(Tracer* tracer);
    ~ThreadBinding();

    ThreadBinding(const ThreadBinding&) = delete;
    ThreadBinding& operator=(const ThreadBinding&) = delete;

   private:
    Tracer* previous_;
  };

 private:
  friend class Scope;

  void Record(std::string_view category, std::string name,
              std::string detail, int64_t start_abs_micros,
              int64_t duration_micros, bool instant, int depth) {
    if (spans_.size() >= max_spans_) {
      ++dropped_;
      return;
    }
    TraceSpan span;
    span.category = std::string(category);
    span.name = std::move(name);
    span.detail = std::move(detail);
    span.start_micros = start_abs_micros - epoch_micros_;
    span.duration_micros = duration_micros;
    span.instant = instant;
    span.depth = depth;
    spans_.push_back(std::move(span));
  }

  size_t max_spans_;
  int64_t epoch_micros_;
  int depth_ = 0;
  uint64_t dropped_ = 0;
  std::vector<TraceSpan> spans_;
};

}  // namespace wsq

#endif  // WSQ_OBS_TRACE_H_
