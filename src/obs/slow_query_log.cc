#include "obs/slow_query_log.h"

#include <cstdio>
#include <utility>

#include "common/clock.h"
#include "common/strings.h"
#include "obs/op_profile.h"

namespace wsq {

std::string SlowQueryRecord::ToLine() const {
  std::string out = StrFormat("slow_query id=%llu elapsed=%s threshold=%s",
                              (unsigned long long)query_id,
                              FormatMicros(elapsed_micros).c_str(),
                              FormatMicros(threshold_micros).c_str());
  out += StrFormat(" mode=%s", async_iteration ? "async" : "sync");
  out += StrFormat(" rows=%zu", rows);
  if (external_calls > 0) {
    out += StrFormat(" external_calls=%llu", (unsigned long long)external_calls);
  }
  if (failed_calls > 0) {
    out += StrFormat(" failed_calls=%llu", (unsigned long long)failed_calls);
  }
  if (degraded_tuples > 0) {
    out +=
        StrFormat(" degraded_tuples=%llu", (unsigned long long)degraded_tuples);
  }
  if (partial_results > 0) {
    out += StrFormat(" partial_results=%llu degraded_shards=%llu",
                     (unsigned long long)partial_results,
                     (unsigned long long)degraded_shards);
  }
  if (spill_runs > 0) {
    out += StrFormat(" spill_runs=%llu spilled_bytes=%llu",
                     (unsigned long long)spill_runs,
                     (unsigned long long)spilled_bytes);
  }
  if (peak_memory_bytes > 0) {
    out += StrFormat(" peak_memory_bytes=%llu",
                     (unsigned long long)peak_memory_bytes);
  }
  if (!ok) {
    out += StrFormat(" error=%s", error.empty() ? "UNKNOWN" : error.c_str());
  }
  // sql last: the only free-form field, so everything before it stays
  // trivially splittable on spaces.
  std::string compact;
  compact.reserve(sql.size());
  for (char c : sql) compact += (c == '\n' || c == '\r') ? ' ' : c;
  out += StrFormat(" sql=\"%s\"", compact.c_str());
  return out;
}

SlowQueryLog::SlowQueryLog(int64_t threshold_micros, Sink sink, Clock clock)
    : threshold_micros_(threshold_micros < 0 ? 0 : threshold_micros),
      sink_(std::move(sink)),
      clock_(std::move(clock)) {}

int64_t SlowQueryLog::NowMicros() const {
  return clock_ ? clock_() : wsq::NowMicros();
}

bool SlowQueryLog::MaybeLog(SlowQueryRecord record, int64_t threshold_override) {
  int64_t threshold =
      threshold_override >= 0 ? threshold_override : threshold_micros_;
  if (threshold <= 0 || record.elapsed_micros < threshold) return false;
  record.threshold_micros = threshold;
  logged_total_.fetch_add(1, std::memory_order_relaxed);
  if (sink_) {
    sink_(record);
  } else {
    std::string line = record.ToLine();
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  return true;
}

}  // namespace wsq
