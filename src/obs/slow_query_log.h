#ifndef WSQ_OBS_SLOW_QUERY_LOG_H_
#define WSQ_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace wsq {

/// One-line structured record for a query that exceeded the slow-query
/// threshold.
struct SlowQueryRecord {
  uint64_t query_id = 0;
  std::string sql;
  int64_t elapsed_micros = 0;
  int64_t threshold_micros = 0;
  bool ok = true;
  /// Status code name for failed queries ("DEADLINE_EXCEEDED", ...).
  std::string error;
  size_t rows = 0;
  uint64_t external_calls = 0;
  uint64_t failed_calls = 0;
  /// Tuples dropped or NULL-padded by a degradation policy.
  uint64_t degraded_tuples = 0;
  /// External calls that answered OK from a strict subset of their
  /// backend's shards, and the total shards missing across them.
  uint64_t partial_results = 0;
  uint64_t degraded_shards = 0;
  /// Memory governor: spill activity and the reservation high-water
  /// mark for the query.
  uint64_t spilled_bytes = 0;
  uint64_t spill_runs = 0;
  uint64_t peak_memory_bytes = 0;
  bool async_iteration = false;

  /// `slow_query id=7 elapsed=1.20 s ... sql="SELECT ..."` — key=value
  /// pairs, sql last (it is the only field that can contain spaces).
  std::string ToLine() const;
};

/// Slow-query log with a pluggable sink and injectable clock.
///
/// The database owns one; Execute() feeds it every query's timing and
/// it forwards the ones at or above the threshold. ExecOptions can
/// override the threshold per query (<0 = inherit, 0 = disabled).
///
/// Thread-safety: MaybeLog may run concurrently (one Execute per
/// thread); the sink must tolerate concurrent calls. The default sink
/// writes single lines to stderr, which is atomic enough in practice.
class SlowQueryLog {
 public:
  using Sink = std::function<void(const SlowQueryRecord&)>;
  using Clock = std::function<int64_t()>;

  SlowQueryLog() = default;
  /// `threshold_micros` 0 disables logging. Null `sink` = stderr.
  /// `clock` overrides the steady clock (deterministic tests).
  explicit SlowQueryLog(int64_t threshold_micros, Sink sink = nullptr,
                        Clock clock = nullptr);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Current time from the injected clock (or the steady clock); pair
  /// two calls to measure a query with the same clock the threshold
  /// check uses.
  int64_t NowMicros() const;

  /// Logs `record` iff its elapsed time reaches the effective
  /// threshold: `threshold_override` >= 0 replaces the configured one
  /// for this call (0 = disabled). Fills record.threshold_micros.
  /// Returns true when the record was emitted.
  bool MaybeLog(SlowQueryRecord record, int64_t threshold_override = -1);

  int64_t threshold_micros() const { return threshold_micros_; }
  bool enabled() const { return threshold_micros_ > 0; }
  /// Records emitted so far.
  uint64_t logged_total() const {
    return logged_total_.load(std::memory_order_relaxed);
  }

 private:
  int64_t threshold_micros_ = 0;
  Sink sink_;
  Clock clock_;
  std::atomic<uint64_t> logged_total_{0};
};

}  // namespace wsq

#endif  // WSQ_OBS_SLOW_QUERY_LOG_H_
