#include "obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/clock.h"
#include "common/memory.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace wsq {
namespace {

thread_local uint64_t t_query_id = 0;

/// Per-thread ring cache: one hot slot for the recorder used last plus
/// the full list (a process rarely has more than one recorder outside
/// tests). The shared_ptr copies here do not own liveness — the
/// recorder's registry does — they only keep the cache safe if a test
/// recorder outlives this thread's entry.
struct TlsRings {
  FlightRecorder* hot_owner = nullptr;
  FlightRing* hot_ring = nullptr;
  std::vector<std::pair<FlightRecorder*, std::shared_ptr<FlightRing>>> all;
};
thread_local TlsRings t_rings;

/// Small per-thread intern cache so steady-state recording never takes
/// the interner mutex (destination/cause vocabularies are tiny).
struct TlsInternCache {
  FlightRecorder* owner = nullptr;
  std::vector<std::pair<std::string, uint32_t>> entries;
};
thread_local TlsInternCache t_interned;

void AppendEventFields(const FrEvent& e, int64_t base_micros,
                       std::string* out) {
  *out += StrFormat("t=+%lldus %s",
                    (long long)(e.timestamp_micros - base_micros),
                    std::string(FrEventTypeName(e.type)).c_str());
  if (e.query_id != 0) {
    *out += StrFormat(" qid=%llu", (unsigned long long)e.query_id);
  }
  if (!e.destination.empty()) {
    *out += StrFormat(" dest=%s", e.destination.c_str());
  }
  if (!e.cause.empty()) *out += StrFormat(" cause=%s", e.cause.c_str());
  if (e.a != 0) *out += StrFormat(" a=%lld", (long long)e.a);
  if (e.b != 0) *out += StrFormat(" b=%lld", (long long)e.b);
}

}  // namespace

std::string_view FrEventTypeName(FrEventType type) {
  switch (type) {
    case FrEventType::kQueryBegin:
      return "query_begin";
    case FrEventType::kQueryEnd:
      return "query_end";
    case FrEventType::kCallRegister:
      return "call_register";
    case FrEventType::kCallDispatch:
      return "call_dispatch";
    case FrEventType::kCallComplete:
      return "call_complete";
    case FrEventType::kCallFailed:
      return "call_failed";
    case FrEventType::kCallTimeout:
      return "call_timeout";
    case FrEventType::kCallCancel:
      return "call_cancel";
    case FrEventType::kCallShed:
      return "call_shed";
    case FrEventType::kCallLateDiscard:
      return "call_late_discard";
    case FrEventType::kBreakerTrip:
      return "breaker_trip";
    case FrEventType::kBreakerProbe:
      return "breaker_probe";
    case FrEventType::kBreakerClose:
      return "breaker_close";
    case FrEventType::kCoalesceJoin:
      return "coalesce_join";
    case FrEventType::kFanout:
      return "fanout";
    case FrEventType::kHedgeFire:
      return "hedge_fire";
    case FrEventType::kHedgeReap:
      return "hedge_reap";
    case FrEventType::kShardLegOk:
      return "shard_leg_ok";
    case FrEventType::kShardLegFail:
      return "shard_leg_fail";
    case FrEventType::kQuorumFail:
      return "quorum_fail";
    case FrEventType::kAdmissionWait:
      return "admission_wait";
    case FrEventType::kAdmissionShed:
      return "admission_shed";
    case FrEventType::kMemoryPressure:
      return "memory_pressure";
    case FrEventType::kReserveFail:
      return "reserve_fail";
    case FrEventType::kSpillRun:
      return "spill_run";
    case FrEventType::kSpillFail:
      return "spill_fail";
    case FrEventType::kWalCheckpoint:
      return "wal_checkpoint";
  }
  return "unknown";
}

std::string FrEvent::ToLine(int64_t base_micros) const {
  std::string out;
  AppendEventFields(*this, base_micros, &out);
  return out;
}

QueryIdBinding::QueryIdBinding(uint64_t query_id) : previous_(t_query_id) {
  t_query_id = query_id;
}

QueryIdBinding::~QueryIdBinding() { t_query_id = previous_; }

uint64_t CurrentQueryId() { return t_query_id; }

FlightRecorder* FlightRecorder::Global() {
  // Leaked on purpose: recording threads may outlive any plausible
  // owner, and the metrics registry follows the same rule.
  static FlightRecorder* instance = new FlightRecorder();
  return instance;
}

namespace {
/// Constructs the global recorder (and its registry instruments)
/// during static initialization, before any component lock can be
/// held; after this, Record() is lock-free except the leaf interner.
const FlightRecorder* const g_flight_recorder_eager_init =
    FlightRecorder::Global();
}  // namespace

FlightRecorder::FlightRecorder() {
  {
    MutexLock lock(&intern_mu_);
    intern_table_.emplace_back();  // id 0 = ""
  }
  events_counter_ = MetricsRegistry::Global()->GetCounter(
      "wsq_fr_events_total", "Flight-recorder events recorded");
  rings_gauge_ = MetricsRegistry::Global()->GetGauge(
      "wsq_fr_rings", "Per-thread flight-recorder rings registered");
  // common/ cannot link obs/, so memory budgets surface their events
  // through this hook. Record() only touches the calling thread's ring
  // (plus the leaf interner on a cold vocabulary), so it is safe from
  // the budget's lock-free charge paths.
  SetMemoryEventHook(+[](const char* budget_name, bool pressure, int64_t a,
                         int64_t b) {
    FlightRecorder::Global()->Record(
        pressure ? FrEventType::kMemoryPressure : FrEventType::kReserveFail,
        budget_name, pressure ? "pressure_sweep" : "limit_hit",
        /*query_id=*/0, a, b);
  });
}

uint32_t FlightRecorder::Intern(std::string_view s) {
  if (s.empty()) return 0;
  if (t_interned.owner != this) {
    t_interned.owner = this;
    t_interned.entries.clear();
  }
  for (const auto& [text, id] : t_interned.entries) {
    if (text == s) return id;
  }
  uint32_t id = 0;
  {
    MutexLock lock(&intern_mu_);
    for (size_t i = 0; i < intern_table_.size(); ++i) {
      if (intern_table_[i] == s) {
        id = static_cast<uint32_t>(i);
        break;
      }
    }
    if (id == 0) {
      id = static_cast<uint32_t>(intern_table_.size());
      intern_table_.emplace_back(s);
    }
  }
  t_interned.entries.emplace_back(std::string(s), id);
  return id;
}

std::string FlightRecorder::Resolve(uint32_t id) const {
  MutexLock lock(&intern_mu_);
  if (id >= intern_table_.size()) return "";
  return intern_table_[id];
}

FlightRing* FlightRecorder::RingForThisThread() {
  if (t_rings.hot_owner == this) return t_rings.hot_ring;
  for (const auto& [owner, ring] : t_rings.all) {
    if (owner == this) {
      t_rings.hot_owner = this;
      t_rings.hot_ring = ring.get();
      return t_rings.hot_ring;
    }
  }
  auto ring = std::make_shared<FlightRing>();
  size_t rings = 0;
  {
    MutexLock lock(&mu_);
    rings_.push_back(ring);
    rings = rings_.size();
  }
  rings_gauge_->Set(static_cast<int64_t>(rings));
  t_rings.all.emplace_back(this, ring);
  t_rings.hot_owner = this;
  t_rings.hot_ring = ring.get();
  return t_rings.hot_ring;
}

void FlightRecorder::Record(FrEventType type, std::string_view destination,
                            std::string_view cause, uint64_t query_id,
                            int64_t a, int64_t b) {
  // The single observability kill switch: while recording is disabled
  // the recorder mutates nothing (no ring writes, no interning, no
  // counters). The recorder-local gate below it exists for overhead
  // isolation (bench_obs_overhead).
  if (!MetricsRegistry::Global()->recording_enabled()) return;
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (query_id == 0) query_id = t_query_id;
  const uint32_t dest_id = Intern(destination);
  const uint32_t cause_id = Intern(cause);
  FlightRing* ring = RingForThisThread();
  const uint64_t seq = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t pos = ring->next_.load(std::memory_order_relaxed);
  FlightRing::Slot& slot = ring->slots_[pos % FlightRing::kSlots];
  // Per-slot seqlock: invalidate, write payload, publish the sequence
  // with release so a reader that observes it also observes the payload.
  slot.sequence.store(0, std::memory_order_relaxed);
  slot.timestamp_micros.store(NowMicros(), std::memory_order_relaxed);
  slot.query_id.store(query_id, std::memory_order_relaxed);
  slot.destination_id.store(dest_id, std::memory_order_relaxed);
  slot.cause_id.store(cause_id, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
  slot.sequence.store(seq, std::memory_order_release);
  ring->next_.store(pos + 1, std::memory_order_relaxed);
  recorded_total_.fetch_add(1, std::memory_order_relaxed);
  events_counter_->Increment();
}

FlightRecorderSnapshot FlightRecorder::Snapshot() const {
  FlightRecorderSnapshot snap;
  std::vector<std::shared_ptr<FlightRing>> rings;
  {
    MutexLock lock(&mu_);
    rings = rings_;
  }
  std::vector<std::string> table;
  {
    MutexLock lock(&intern_mu_);
    table = intern_table_;
  }
  snap.rings = rings.size();
  for (const auto& ring : rings) {
    for (const FlightRing::Slot& slot : ring->slots_) {
      const uint64_t seq = slot.sequence.load(std::memory_order_acquire);
      if (seq == 0) continue;
      FrEvent e;
      e.sequence = seq;
      e.timestamp_micros =
          slot.timestamp_micros.load(std::memory_order_relaxed);
      e.query_id = slot.query_id.load(std::memory_order_relaxed);
      const uint32_t dest_id =
          slot.destination_id.load(std::memory_order_relaxed);
      const uint32_t cause_id = slot.cause_id.load(std::memory_order_relaxed);
      e.a = slot.a.load(std::memory_order_relaxed);
      e.b = slot.b.load(std::memory_order_relaxed);
      e.type =
          static_cast<FrEventType>(slot.type.load(std::memory_order_relaxed));
      if (slot.sequence.load(std::memory_order_acquire) != seq) {
        // The owning thread rewrote this slot mid-read; the fields may
        // be mixed between two events, so drop rather than misreport.
        ++snap.torn_dropped;
        continue;
      }
      e.destination = dest_id < table.size() ? table[dest_id] : "";
      e.cause = cause_id < table.size() ? table[cause_id] : "";
      snap.events.push_back(std::move(e));
    }
  }
  std::sort(snap.events.begin(), snap.events.end(),
            [](const FrEvent& x, const FrEvent& y) {
              if (x.timestamp_micros != y.timestamp_micros) {
                return x.timestamp_micros < y.timestamp_micros;
              }
              return x.sequence < y.sequence;
            });
  snap.recorded_total = recorded_total();
  return snap;
}

std::vector<FrEvent> FlightRecorder::EventsForQuery(uint64_t query_id) const {
  FlightRecorderSnapshot snap = Snapshot();
  std::vector<FrEvent> out;
  for (auto& e : snap.events) {
    if (e.query_id == query_id) out.push_back(std::move(e));
  }
  return out;
}

/// ---------------------------------------------------------------------
/// Postmortems.

std::string PostmortemRecord::ToText() const {
  std::string out = StrFormat("postmortem id=%llu verdict=%s",
                              (unsigned long long)query_id, verdict.c_str());
  if (!cause.empty()) out += StrFormat(" cause=\"%s\"", cause.c_str());
  out += StrFormat(" elapsed=%lldus", (long long)elapsed_micros);
  if (partial_results) out += " partial=1";
  if (degraded_tuples > 0) {
    out += StrFormat(" degraded_tuples=%llu",
                     (unsigned long long)degraded_tuples);
  }
  if (external_calls > 0) {
    out += StrFormat(" external_calls=%llu",
                     (unsigned long long)external_calls);
  }
  if (failed_calls > 0) {
    out += StrFormat(" failed_calls=%llu", (unsigned long long)failed_calls);
  }
  if (spill_runs > 0) {
    out += StrFormat(" spill_runs=%llu spilled_bytes=%llu",
                     (unsigned long long)spill_runs,
                     (unsigned long long)spilled_bytes);
  }
  if (peak_memory_bytes > 0) {
    out += StrFormat(" peak_memory_bytes=%llu",
                     (unsigned long long)peak_memory_bytes);
  }
  std::string one_line_sql = sql;
  for (char& c : one_line_sql) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  out += StrFormat(" sql=\"%s\"", one_line_sql.c_str());
  const int64_t base =
      events.empty() ? 0 : events.front().timestamp_micros;
  if (events_dropped > 0) {
    out += StrFormat("\n  ... %zu earlier events elided", events_dropped);
  }
  for (const FrEvent& e : events) {
    out += "\n  ";
    AppendEventFields(e, base, &out);
  }
  return out;
}

PostmortemLog::PostmortemLog(int64_t min_interval_micros, Sink sink,
                             Clock clock, size_t max_events)
    : min_interval_micros_(min_interval_micros),
      max_events_(max_events),
      sink_(std::move(sink)),
      clock_(std::move(clock)) {}

int64_t PostmortemLog::NowMicros() const {
  return clock_ ? clock_() : wsq::NowMicros();
}

bool PostmortemLog::Log(PostmortemRecord record) {
  if (record.events.size() > max_events_) {
    record.events_dropped += record.events.size() - max_events_;
    record.events.erase(record.events.begin(),
                        record.events.end() -
                            static_cast<ptrdiff_t>(max_events_));
  }
  auto shared = std::make_shared<const PostmortemRecord>(std::move(record));
  bool emit = true;
  {
    MutexLock lock(&mu_);
    last_ = shared;
    const int64_t now = NowMicros();
    if (min_interval_micros_ > 0 && last_emit_micros_ != 0 &&
        now - last_emit_micros_ < min_interval_micros_) {
      emit = false;
    } else {
      last_emit_micros_ = now;
    }
  }
  static Counter* emitted = MetricsRegistry::Global()->GetCounter(
      "wsq_fr_postmortems_total", "Postmortem records emitted");
  static Counter* suppressed = MetricsRegistry::Global()->GetCounter(
      "wsq_fr_postmortems_suppressed_total",
      "Postmortem records suppressed by rate limiting");
  if (!emit) {
    suppressed_total_.fetch_add(1, std::memory_order_relaxed);
    suppressed->Increment();
    return false;
  }
  emitted_total_.fetch_add(1, std::memory_order_relaxed);
  emitted->Increment();
  if (sink_) {
    sink_(*shared);
  } else {
    std::string text = shared->ToText();
    std::fprintf(stderr, "%s\n", text.c_str());
  }
  return true;
}

std::shared_ptr<const PostmortemRecord> PostmortemLog::last() const {
  MutexLock lock(&mu_);
  return last_;
}

}  // namespace wsq
