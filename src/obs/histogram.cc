#include "obs/histogram.h"

#include <algorithm>
#include <bit>

#include "obs/flight_recorder.h"

namespace wsq {

size_t HistogramBucketIndex(int64_t value) {
  if (value < static_cast<int64_t>(kHistogramLinearMax)) {
    return value < 0 ? 0 : static_cast<size_t>(value);
  }
  uint64_t v = static_cast<uint64_t>(value);
  // Exponent of the octave: 2^e <= v < 2^(e+1), e in [4, 62].
  size_t e = static_cast<size_t>(std::bit_width(v)) - 1;
  size_t sub = static_cast<size_t>((v - (uint64_t{1} << e)) >> (e - 3));
  return kHistogramLinearMax + (e - 4) * kHistogramSubBuckets + sub;
}

int64_t HistogramBucketLowerBound(size_t index) {
  if (index < kHistogramLinearMax) return static_cast<int64_t>(index);
  size_t off = index - kHistogramLinearMax;
  size_t e = off / kHistogramSubBuckets + 4;
  size_t sub = off % kHistogramSubBuckets;
  return static_cast<int64_t>((uint64_t{1} << e) +
                              sub * (uint64_t{1} << (e - 3)));
}

int64_t HistogramBucketUpperBound(size_t index) {
  if (index < kHistogramLinearMax) return static_cast<int64_t>(index);
  size_t off = index - kHistogramLinearMax;
  size_t e = off / kHistogramSubBuckets + 4;
  int64_t width = static_cast<int64_t>(uint64_t{1} << (e - 3));
  return HistogramBucketLowerBound(index) + width - 1;
}

size_t HistogramExemplarCell(int64_t value) {
  return HistogramBucketIndex(value) / kHistogramSubBuckets;
}

void Histogram::RecordExemplarFromThread(int64_t value) {
  // Gate already checked by Record(). Only stamps when the calling
  // thread is inside a query (CurrentQueryId() is bound by Execute).
  uint64_t query_id = CurrentQueryId();
  if (query_id != 0) StoreExemplar(value, query_id);
}

std::vector<HistogramExemplar> Histogram::Exemplars() const {
  std::vector<HistogramExemplar> out;
  for (size_t i = 0; i < kHistogramExemplarCells; ++i) {
    uint64_t qid = exemplars_[i].query_id.load(std::memory_order_relaxed);
    if (qid == 0) continue;
    HistogramExemplar e;
    e.cell = i;
    e.octave_lower_bound =
        HistogramBucketLowerBound(i * kHistogramSubBuckets);
    e.value = exemplars_[i].value.load(std::memory_order_relaxed);
    e.query_id = qid;
    out.push_back(e);
  }
  return out;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.buckets.resize(kHistogramBuckets);
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  if (other.buckets.empty()) return;
  if (buckets.empty()) {
    buckets = other.buckets;
    return;
  }
  for (size_t i = 0; i < buckets.size() && i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile among `count` ordered samples.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) {
      double lo = static_cast<double>(HistogramBucketLowerBound(i));
      double hi = static_cast<double>(HistogramBucketUpperBound(i));
      double mid = i < kHistogramLinearMax ? lo : (lo + hi) / 2.0;
      // An estimate above the observed max would be pure bucket
      // granularity; clamp it away.
      return std::min(mid, static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

}  // namespace wsq
