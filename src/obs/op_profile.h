#ifndef WSQ_OBS_OP_PROFILE_H_
#define WSQ_OBS_OP_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wsq {

/// Per-operator execution profile, filled by the Operator base wrappers
/// when a query runs with profiling (EXPLAIN ANALYZE / \analyze).
struct OpProfile {
  uint64_t opens = 0;
  uint64_t next_calls = 0;
  uint64_t rows_out = 0;
  /// External calls issued by this operator (EVScan/AEVScan).
  uint64_t calls_issued = 0;
  int64_t open_micros = 0;
  int64_t next_micros = 0;
  int64_t close_micros = 0;
  /// Time a ReqSync spent parked on ReqPump completions (the number the
  /// paper's max-vs-sum latency claim is about: under asynchronous
  /// iteration this approaches the MAX of the outstanding call
  /// latencies, not their sum).
  int64_t blocked_on_sync_micros = 0;
  /// Calls that completed OK but with shards missing (sharded backend
  /// under a degrading quorum policy), and the total missing shards.
  uint64_t partial_results = 0;
  uint64_t degraded_shards = 0;
  /// Memory governor: record bytes this operator spilled to temp runs
  /// (and how many runs), plus the high-water mark of its tracked
  /// reservation. peak_bytes is filled even when the query is
  /// ungoverned — the reservation still counts locally.
  uint64_t spilled_bytes = 0;
  uint64_t spill_runs = 0;
  uint64_t peak_bytes = 0;

  /// Wall time spent inside this operator's Open+Next+Close, including
  /// time inside its children.
  int64_t total_micros() const {
    return open_micros + next_micros + close_micros;
  }
};

/// Annotated plan tree returned by EXPLAIN ANALYZE: one node per
/// operator, mirroring the logical plan shape.
struct PlanProfileNode {
  std::string label;  ///< the plan node's Label()
  OpProfile profile;
  /// total_micros minus the children's totals (clamped at 0).
  int64_t self_micros = 0;
  std::vector<PlanProfileNode> children;

  std::string ToString() const;
  void AppendTo(std::string* out, int indent) const;

  /// Sum of a field across this node and every descendant.
  uint64_t TotalCallsIssued() const;
  int64_t TotalBlockedMicros() const;
};

/// "417 us" / "30.1 ms" / "2.50 s" — compact duration for plan
/// annotations and slow-query lines.
std::string FormatMicros(int64_t micros);

}  // namespace wsq

#endif  // WSQ_OBS_OP_PROFILE_H_
