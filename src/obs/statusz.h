#ifndef WSQ_OBS_STATUSZ_H_
#define WSQ_OBS_STATUSZ_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace wsq {

/// Live process introspection surface (DESIGN.md §16): one call
/// composes a text + JSON report from whatever sections components have
/// registered — breaker states and in-flight call ages, admission queue
/// depth, the memory budget tree with peaks, buffer pool, result cache,
/// shard health. The obs layer owns only the composition; each
/// component registers a provider that reads its own stats, which keeps
/// obs free of dependencies on the layers above it (the same inversion
/// the metrics collectors use).

/// One key/value row in a section. Values are pre-rendered strings; a
/// numeric flag lets the JSON encoding emit them unquoted.
struct StatuszItem {
  std::string key;
  std::string value;
  bool numeric = false;
};

/// A named group of rows ("breaker/AltaVista", "memory", ...).
struct StatuszSection {
  std::string name;
  std::vector<StatuszItem> items;

  void Add(std::string key, std::string value) {
    items.push_back({std::move(key), std::move(value), false});
  }
  void AddInt(std::string key, int64_t value);
  void AddUint(std::string key, uint64_t value);
};

/// A rendered report. Section order is deterministic (sorted by name)
/// so identical state renders byte-identically.
struct StatuszReport {
  std::vector<StatuszSection> sections;

  /// `== name ==` headers with `  key: value` rows.
  std::string ToText() const;
  /// `{"sections":[{"name":...,"items":{...}}]}` with two-decimal reals
  /// left as the provider rendered them.
  std::string ToJson() const;
};

/// Registry of section providers.
///
/// Provider contract (mirrors MetricsRegistry collectors): providers
/// run under the registry lock, must not call back into the registry,
/// may take their component's lock (lock order registry → component),
/// and must be removed before the component they capture is destroyed.
/// A provider may emit any number of sections.
class StatuszRegistry {
 public:
  using Provider = std::function<void(std::vector<StatuszSection>*)>;

  StatuszRegistry() = default;
  StatuszRegistry(const StatuszRegistry&) = delete;
  StatuszRegistry& operator=(const StatuszRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static StatuszRegistry* Global();

  /// Registers a provider; returns a handle for RemoveProvider.
  uint64_t AddProvider(Provider fn) WSQ_EXCLUDES(mu_);
  void RemoveProvider(uint64_t id) WSQ_EXCLUDES(mu_);

  /// Runs every provider and returns the merged, sorted report.
  StatuszReport Render() const WSQ_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<uint64_t, Provider> providers_ WSQ_GUARDED_BY(mu_);
  uint64_t next_id_ WSQ_GUARDED_BY(mu_) = 1;
};

}  // namespace wsq

#endif  // WSQ_OBS_STATUSZ_H_
