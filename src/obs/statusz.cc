#include "obs/statusz.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"

namespace wsq {
namespace {

void JsonEscape(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

void StatuszSection::AddInt(std::string key, int64_t value) {
  items.push_back(
      {std::move(key), StrFormat("%lld", (long long)value), true});
}

void StatuszSection::AddUint(std::string key, uint64_t value) {
  items.push_back(
      {std::move(key), StrFormat("%llu", (unsigned long long)value), true});
}

std::string StatuszReport::ToText() const {
  std::string out;
  for (const StatuszSection& section : sections) {
    out += StrFormat("== %s ==\n", section.name.c_str());
    for (const StatuszItem& item : section.items) {
      out += StrFormat("  %s: %s\n", item.key.c_str(), item.value.c_str());
    }
  }
  return out;
}

std::string StatuszReport::ToJson() const {
  std::string out = "{\"sections\":[";
  bool first_section = true;
  for (const StatuszSection& section : sections) {
    if (!first_section) out += ",";
    first_section = false;
    out += "{\"name\":\"";
    JsonEscape(section.name, &out);
    out += "\",\"items\":{";
    bool first_item = true;
    for (const StatuszItem& item : section.items) {
      if (!first_item) out += ",";
      first_item = false;
      out += "\"";
      JsonEscape(item.key, &out);
      out += "\":";
      if (item.numeric) {
        out += item.value;
      } else {
        out += "\"";
        JsonEscape(item.value, &out);
        out += "\"";
      }
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

StatuszRegistry* StatuszRegistry::Global() {
  static StatuszRegistry* instance = new StatuszRegistry();
  return instance;
}

uint64_t StatuszRegistry::AddProvider(Provider fn) {
  MutexLock lock(&mu_);
  uint64_t id = next_id_++;
  providers_[id] = std::move(fn);
  return id;
}

void StatuszRegistry::RemoveProvider(uint64_t id) {
  MutexLock lock(&mu_);
  providers_.erase(id);
}

StatuszReport StatuszRegistry::Render() const {
  static Counter* renders = MetricsRegistry::Global()->GetCounter(
      "wsq_statusz_renders_total", "Statusz reports rendered");
  renders->Increment();
  StatuszReport report;
  {
    MutexLock lock(&mu_);
    for (const auto& [id, provider] : providers_) {
      provider(&report.sections);
    }
  }
  // Deterministic composition: sections sorted by name regardless of
  // provider registration order (stable for equal names, so one
  // provider's repeated names keep their emitted order).
  std::stable_sort(report.sections.begin(), report.sections.end(),
                   [](const StatuszSection& a, const StatuszSection& b) {
                     return a.name < b.name;
                   });
  return report;
}

}  // namespace wsq
