#include "obs/metrics.h"

#include <algorithm>

#include "common/strings.h"

namespace wsq {

namespace {

/// Prometheus label-value escaping: backslash, quote, newline.
std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Canonical label rendering: sorted by key, `{k="v",k2="v2"}`; empty
/// labels render as "". Identical label sets always produce identical
/// text, which is what makes the text usable as a series key.
std::string CanonicalLabels(MetricLabels labels) {
  if (labels.empty()) return "";
  std::sort(labels.begin(), labels.end());
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Injects one more label into already-canonical label text.
std::string WithExtraLabel(const std::string& labels_text,
                           std::string_view key, std::string_view value) {
  std::string extra;
  extra += key;
  extra += "=\"";
  extra += EscapeLabelValue(value);
  extra += "\"";
  if (labels_text.empty()) return "{" + extra + "}";
  std::string out = labels_text;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

std::string EscapeJson(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string_view TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

constexpr double kExportQuantiles[] = {0.5, 0.9, 0.95, 0.99};

}  // namespace

MetricsRegistry* MetricsRegistry::Global() {
  // Deliberately leaked: instrument pointers handed to hot paths and
  // collector handles held by components must stay valid through
  // static destruction, whatever order it runs in.
  static MetricsRegistry* global = new MetricsRegistry();
  return global;
}

MetricsRegistry::Instrument* MetricsRegistry::GetLocked(
    MetricType type, const std::string& name, const std::string& help,
    const MetricLabels& labels) {
  std::string key = name + CanonicalLabels(labels);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    return it->second->type == type ? it->second.get() : nullptr;
  }
  auto inst = std::make_unique<Instrument>();
  inst->type = type;
  inst->name = name;
  inst->help = help;
  inst->labels_text = CanonicalLabels(labels);
  switch (type) {
    case MetricType::kCounter:
      inst->counter = std::make_unique<Counter>();
      inst->counter->gate_ = &recording_enabled_;
      break;
    case MetricType::kGauge:
      inst->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      inst->histogram = std::make_unique<Histogram>();
      inst->histogram->gate_ = &recording_enabled_;
      break;
  }
  Instrument* out = inst.get();
  instruments_.emplace(std::move(key), std::move(inst));
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const MetricLabels& labels) {
  MutexLock lock(&mu_);
  Instrument* inst = GetLocked(MetricType::kCounter, name, help, labels);
  return inst == nullptr ? nullptr : inst->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const MetricLabels& labels) {
  MutexLock lock(&mu_);
  Instrument* inst = GetLocked(MetricType::kGauge, name, help, labels);
  return inst == nullptr ? nullptr : inst->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const MetricLabels& labels) {
  MutexLock lock(&mu_);
  Instrument* inst = GetLocked(MetricType::kHistogram, name, help, labels);
  return inst == nullptr ? nullptr : inst->histogram.get();
}

uint64_t MetricsRegistry::AddCollector(CollectorFn fn) {
  MutexLock lock(&mu_);
  uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void MetricsRegistry::RemoveCollector(uint64_t id) {
  MutexLock lock(&mu_);
  collectors_.erase(id);
}

/// Accumulates collector output as Samples alongside the instruments'.
class MetricsRegistry::CollectingEmitter : public MetricsEmitter {
 public:
  explicit CollectingEmitter(std::vector<Sample>* out) : out_(out) {}

  void EmitCounter(std::string_view name, std::string_view help,
                   MetricLabels labels, uint64_t value) override {
    Sample s = Base(MetricType::kCounter, name, help, std::move(labels));
    s.counter_value = value;
    out_->push_back(std::move(s));
  }

  void EmitGauge(std::string_view name, std::string_view help,
                 MetricLabels labels, int64_t value) override {
    Sample s = Base(MetricType::kGauge, name, help, std::move(labels));
    s.gauge_value = value;
    out_->push_back(std::move(s));
  }

  void EmitHistogram(std::string_view name, std::string_view help,
                     MetricLabels labels, HistogramSnapshot snapshot) override {
    Sample s = Base(MetricType::kHistogram, name, help, std::move(labels));
    s.histogram = std::move(snapshot);
    out_->push_back(std::move(s));
  }

 private:
  static Sample Base(MetricType type, std::string_view name,
                     std::string_view help, MetricLabels labels) {
    Sample s;
    s.type = type;
    s.name = std::string(name);
    s.help = std::string(help);
    s.labels_text = CanonicalLabels(std::move(labels));
    return s;
  }

  std::vector<Sample>* out_;
};

std::vector<MetricsRegistry::Sample> MetricsRegistry::Collect() const {
  std::vector<Sample> raw;
  {
    MutexLock lock(&mu_);
    raw.reserve(instruments_.size());
    for (const auto& [key, inst] : instruments_) {
      Sample s;
      s.type = inst->type;
      s.name = inst->name;
      s.help = inst->help;
      s.labels_text = inst->labels_text;
      switch (inst->type) {
        case MetricType::kCounter:
          s.counter_value = inst->counter->Value();
          break;
        case MetricType::kGauge:
          s.gauge_value = inst->gauge->Value();
          break;
        case MetricType::kHistogram:
          s.histogram = inst->histogram->Snapshot();
          break;
      }
      raw.push_back(std::move(s));
    }
    CollectingEmitter emitter(&raw);
    for (const auto& [id, fn] : collectors_) fn(&emitter);
  }

  // Merge duplicates: several components publishing the same series
  // (e.g. one ReqPump per database) roll up into process totals.
  std::map<std::pair<std::string, std::string>, Sample> merged;
  for (Sample& s : raw) {
    auto key = std::make_pair(s.name, s.labels_text);
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(std::move(key), std::move(s));
      continue;
    }
    Sample& dst = it->second;
    if (dst.type != s.type) continue;  // type conflict: first wins
    switch (dst.type) {
      case MetricType::kCounter: dst.counter_value += s.counter_value; break;
      case MetricType::kGauge: dst.gauge_value += s.gauge_value; break;
      case MetricType::kHistogram: dst.histogram.Merge(s.histogram); break;
    }
  }

  std::vector<Sample> out;
  out.reserve(merged.size());
  for (auto& [key, s] : merged) out.push_back(std::move(s));
  return out;  // map iteration order = sorted by (name, labels)
}

std::string MetricsRegistry::ExportPrometheusText() const {
  std::vector<Sample> samples = Collect();
  std::string out;
  size_t i = 0;
  while (i < samples.size()) {
    // One family per metric name; samples arrive sorted.
    size_t begin = i;
    const std::string& name = samples[begin].name;
    size_t end = begin;
    while (end < samples.size() && samples[end].name == name) ++end;
    i = end;

    const Sample& first = samples[begin];
    if (!first.help.empty()) {
      out += "# HELP " + name + " " + first.help + "\n";
    }
    if (first.type == MetricType::kHistogram) {
      out += "# TYPE " + name + " summary\n";
      for (size_t j = begin; j < end; ++j) {
        const Sample& s = samples[j];
        for (double q : kExportQuantiles) {
          out += name +
                 WithExtraLabel(s.labels_text, "quantile",
                                StrFormat("%g", q)) +
                 StrFormat(" %.6g\n", s.histogram.Quantile(q));
        }
        out += name + "_sum" + s.labels_text +
               StrFormat(" %llu\n", (unsigned long long)s.histogram.sum);
        out += name + "_count" + s.labels_text +
               StrFormat(" %llu\n", (unsigned long long)s.histogram.count);
      }
      out += "# TYPE " + name + "_max gauge\n";
      for (size_t j = begin; j < end; ++j) {
        const Sample& s = samples[j];
        out += name + "_max" + s.labels_text +
               StrFormat(" %lld\n", (long long)s.histogram.max);
      }
      continue;
    }
    out += "# TYPE " + name + " " + std::string(TypeName(first.type)) + "\n";
    for (size_t j = begin; j < end; ++j) {
      const Sample& s = samples[j];
      if (s.type == MetricType::kCounter) {
        out += name + s.labels_text +
               StrFormat(" %llu\n", (unsigned long long)s.counter_value);
      } else {
        out += name + s.labels_text +
               StrFormat(" %lld\n", (long long)s.gauge_value);
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::vector<Sample> samples = Collect();
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + EscapeJson(s.name) + "\"";
    out += ",\"type\":\"" + std::string(TypeName(s.type)) + "\"";
    out += ",\"labels\":\"" + EscapeJson(s.labels_text) + "\"";
    switch (s.type) {
      case MetricType::kCounter:
        out += StrFormat(",\"value\":%llu", (unsigned long long)s.counter_value);
        break;
      case MetricType::kGauge:
        out += StrFormat(",\"value\":%lld", (long long)s.gauge_value);
        break;
      case MetricType::kHistogram:
        out += StrFormat(
            ",\"count\":%llu,\"sum\":%llu,\"max\":%lld,"
            "\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g",
            (unsigned long long)s.histogram.count,
            (unsigned long long)s.histogram.sum, (long long)s.histogram.max,
            s.histogram.Quantile(0.5), s.histogram.Quantile(0.95),
            s.histogram.Quantile(0.99));
        break;
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace wsq
