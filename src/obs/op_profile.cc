#include "obs/op_profile.h"

#include <algorithm>

#include "common/strings.h"

namespace wsq {

std::string FormatMicros(int64_t micros) {
  if (micros < 1000) return StrFormat("%lld us", (long long)micros);
  if (micros < 1000000) {
    return StrFormat("%.1f ms", static_cast<double>(micros) / 1000.0);
  }
  return StrFormat("%.2f s", static_cast<double>(micros) / 1e6);
}

uint64_t PlanProfileNode::TotalCallsIssued() const {
  uint64_t total = profile.calls_issued;
  for (const PlanProfileNode& child : children) {
    total += child.TotalCallsIssued();
  }
  return total;
}

int64_t PlanProfileNode::TotalBlockedMicros() const {
  int64_t total = profile.blocked_on_sync_micros;
  for (const PlanProfileNode& child : children) {
    total += child.TotalBlockedMicros();
  }
  return total;
}

void PlanProfileNode::AppendTo(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += label;
  *out += StrFormat("  [rows=%llu", (unsigned long long)profile.rows_out);
  if (profile.calls_issued > 0) {
    *out += StrFormat(" calls=%llu", (unsigned long long)profile.calls_issued);
  }
  *out += " total=" + FormatMicros(profile.total_micros());
  *out += " self=" + FormatMicros(self_micros);
  if (profile.blocked_on_sync_micros > 0) {
    *out += " blocked=" + FormatMicros(profile.blocked_on_sync_micros);
  }
  if (profile.partial_results > 0) {
    *out += StrFormat(" partial=%llu degraded_shards=%llu",
                      (unsigned long long)profile.partial_results,
                      (unsigned long long)profile.degraded_shards);
  }
  if (profile.spilled_bytes > 0) {
    *out += StrFormat(" spilled_bytes=%llu spill_runs=%llu",
                      (unsigned long long)profile.spilled_bytes,
                      (unsigned long long)profile.spill_runs);
  }
  if (profile.peak_bytes > 0) {
    *out += StrFormat(" peak_bytes=%llu",
                      (unsigned long long)profile.peak_bytes);
  }
  if (profile.opens > 1) {
    *out += StrFormat(" opens=%llu", (unsigned long long)profile.opens);
  }
  *out += "]\n";
  for (const PlanProfileNode& child : children) {
    child.AppendTo(out, indent + 1);
  }
}

std::string PlanProfileNode::ToString() const {
  std::string out;
  AppendTo(&out, 0);
  return out;
}

}  // namespace wsq
