#ifndef WSQ_COMMON_CANCELLATION_H_
#define WSQ_COMMON_CANCELLATION_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"
#include "common/status.h"

namespace wsq {

/// Cooperative per-query cancellation and deadline state (the "query
/// governor" signal plane).
///
/// One token is shared by everything executing a single query: every
/// operator consults it between tuples (CheckAlive), ReqPump blocking
/// waits observe it, and the remaining deadline budget clamps the
/// timeout of every external call registered on the query's behalf.
///
/// Thread model: all state is atomic, so Cancel() may be called from
/// any thread (a user interrupt, a watchdog, an admission reaper) while
/// the executor thread polls. There are no callbacks and no locks —
/// waiters that must wake promptly use bounded waits (see
/// ReqPump::TakeBlocking) rather than registering for notification,
/// which keeps the token trivially safe to share.
///
/// A token is one-shot: once cancelled or past its deadline it stays
/// dead. Reuse across queries requires Reset().
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation (kCancelled). Idempotent; safe from any
  /// thread, including signal handlers (a single atomic store).
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Installs an absolute deadline (microseconds on the NowMicros
  /// steady clock); 0 clears it. Not synchronized against concurrent
  /// readers beyond atomicity — set it before the query starts.
  void SetDeadline(int64_t deadline_micros) {
    deadline_micros_.store(deadline_micros, std::memory_order_release);
  }

  /// Arms the deadline `budget_micros` from now (<= 0 clears it).
  void SetDeadlineAfter(int64_t budget_micros) {
    SetDeadline(budget_micros > 0 ? NowMicros() + budget_micros : 0);
  }

  bool HasDeadline() const {
    return deadline_micros_.load(std::memory_order_acquire) != 0;
  }
  int64_t deadline_micros() const {
    return deadline_micros_.load(std::memory_order_acquire);
  }

  /// True once Cancel() was called (deadline expiry is *not* reflected
  /// here; use CheckAlive for the combined verdict).
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Microseconds of budget left before the deadline; kNoDeadline when
  /// none is set. Never returns a negative value: an expired deadline
  /// reports 0.
  static constexpr int64_t kNoDeadline = -1;
  int64_t RemainingMicros() const {
    int64_t deadline = deadline_micros();
    if (deadline == 0) return kNoDeadline;
    int64_t remaining = deadline - NowMicros();
    return remaining > 0 ? remaining : 0;
  }

  /// The governor check every cooperative loop performs: OK while the
  /// query may keep running, kCancelled after Cancel(), or
  /// kDeadlineExceeded once the deadline passes. Cancel() wins when
  /// both apply (it is the more specific verdict).
  Status CheckAlive() const;

  /// Returns the token to the live state (tests, token reuse between
  /// shell statements). Must not race an executing query.
  void Reset() {
    cancelled_.store(false, std::memory_order_release);
    deadline_micros_.store(0, std::memory_order_release);
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// Absolute steady-clock deadline in micros; 0 = none.
  std::atomic<int64_t> deadline_micros_{0};
};

}  // namespace wsq

#endif  // WSQ_COMMON_CANCELLATION_H_
