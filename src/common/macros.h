#ifndef WSQ_COMMON_MACROS_H_
#define WSQ_COMMON_MACROS_H_

#include <utility>

#include "common/status.h"

// Propagates a non-OK Status out of the current function.
#define WSQ_RETURN_IF_ERROR(expr)                    \
  do {                                               \
    ::wsq::Status _wsq_status = (expr);              \
    if (!_wsq_status.ok()) return _wsq_status;       \
  } while (false)

#define WSQ_CONCAT_IMPL(a, b) a##b
#define WSQ_CONCAT(a, b) WSQ_CONCAT_IMPL(a, b)

// Evaluates `rexpr` (a Result<T>); on error returns the Status, else
// assigns the value to `lhs` (which may include a declaration).
#define WSQ_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  WSQ_ASSIGN_OR_RETURN_IMPL(WSQ_CONCAT(_wsq_result_, __LINE__), lhs, rexpr)

#define WSQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#endif  // WSQ_COMMON_MACROS_H_
