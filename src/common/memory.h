#ifndef WSQ_COMMON_MEMORY_H_
#define WSQ_COMMON_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/thread_annotations.h"

namespace wsq {

/// Counters kept by a MemoryBudget (all monotonic).
struct MemoryBudgetStats {
  /// TryReserve calls that returned false (after pressure relief).
  uint64_t reserve_failures = 0;
  /// Pressure-hook sweeps run on behalf of a failing reservation.
  uint64_t pressure_invocations = 0;
  /// Bytes the pressure hooks reported freeing.
  uint64_t pressure_released_bytes = 0;
  /// ForceReserve charges that pushed usage past the limit.
  uint64_t forced_overages = 0;
};

/// Observability seam: common/ cannot depend on obs/, so memory events
/// (pressure sweeps, failed reservations) surface through a static
/// function-pointer hook the flight recorder installs at startup.
/// `budget_name` is the budget the event fired on; `pressure` is true
/// for a pressure-hook sweep, false for a final reservation failure;
/// `a`/`b` are (wanted/freed) or (requested/used) bytes respectively.
/// The hook must be lock-free-ish and never call back into MemoryBudget.
using MemoryEventHookFn = void (*)(const char* budget_name, bool pressure,
                                   int64_t a, int64_t b);

/// Installs the process-wide memory event hook (null = none). Intended
/// to be called once during static initialization, before concurrent
/// budget traffic.
void SetMemoryEventHook(MemoryEventHookFn hook);

/// Hierarchical byte ledger: process → database → query → operator.
///
/// Every tracked allocation charges a leaf budget, and the charge
/// propagates to every ancestor, so one process-wide number bounds the
/// sum of all per-query working sets. Accounting is atomic (CAS against
/// the limit); 0 means "unlimited". Reservations come in two flavors:
///
///   - TryReserve: fail-able. On a limit hit the budget first runs its
///     pressure hooks (components volunteering clean state to shed —
///     result cache entries, clean buffer-pool pages) and retries; only
///     if the retry still fails does it return false. Callers react by
///     degrading (spilling to disk) or refusing work (admission).
///   - ForceReserve: unconditional. For charges that must not fail
///     mid-tuple (a ReqSync absorbing a row already produced); overage
///     is tracked in stats so it stays observable.
///
/// Lock order: a pressure hook runs under this budget's mu_ and may
/// take its component's lock (cache mu_, pool mu_) — so budget mu_ →
/// component mu_, and components must NEVER call into a budget while
/// holding their own lock except through the lock-free charge paths
/// (TryReserve / ForceReserve / Release touch only atomics unless
/// pressure fires; re-entrant hook registration would deadlock).
///
/// Lifetime: a child must be destroyed before its parent (a child
/// holds a raw parent pointer); destruction releases nothing — the
/// owner of each reservation is responsible for balancing its charges
/// (MemoryReservation does this via RAII).
class MemoryBudget {
 public:
  /// `limit_bytes` 0 = unlimited. `parent` may be null (a root).
  MemoryBudget(std::string name, size_t limit_bytes,
               MemoryBudget* parent = nullptr);
  ~MemoryBudget();

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// The process-wide root every database budget parents under.
  /// Unlimited by default; tests and main() may SetLimit it.
  static MemoryBudget* Process();

  /// Charges `bytes` against this budget and every ancestor. On a
  /// limit hit anywhere on the chain, runs that budget's pressure
  /// hooks and retries once; returns false (charging nothing) if the
  /// chain still cannot fit the reservation.
  bool TryReserve(size_t bytes);

  /// Charges unconditionally (this budget and every ancestor),
  /// counting an overage where the limit is exceeded.
  void ForceReserve(size_t bytes);

  /// Releases a prior charge (this budget and every ancestor).
  void Release(size_t bytes);

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak_used() const {
    return peak_.load(std::memory_order_relaxed);
  }
  /// 0 = unlimited.
  size_t limit() const { return limit_.load(std::memory_order_relaxed); }
  void SetLimit(size_t limit_bytes) {
    limit_.store(limit_bytes, std::memory_order_relaxed);
  }

  /// Headroom before some budget on the ancestor chain (including this
  /// one) hits its limit; SIZE_MAX when the whole chain is unlimited.
  /// Advisory: concurrent charges can invalidate it immediately.
  size_t Available() const;

  const std::string& name() const { return name_; }
  MemoryBudget* parent() const { return parent_; }
  MemoryBudgetStats stats() const;

  /// A pressure hook frees what clean state it can and returns the
  /// number of bytes it released (it must Release them itself through
  /// whatever reservation charged them). Hooks run in registration
  /// order until `wanted` bytes are reported freed.
  using PressureHook = std::function<size_t(size_t wanted)>;

  /// Registers a hook on THIS budget (hooks do not inherit down the
  /// hierarchy); returns an id for RemovePressureHook. The hook must
  /// stay valid until removed.
  uint64_t AddPressureHook(PressureHook hook);
  void RemovePressureHook(uint64_t id);

 private:
  /// CAS-charge against this node only; false on limit hit.
  bool TryChargeSelf(size_t bytes);
  void ChargeSelf(size_t bytes);
  void UpdatePeak(size_t used_now);
  /// Runs hooks until `wanted` bytes are reported freed; returns the
  /// total reported.
  size_t RunPressureHooks(size_t wanted);

  const std::string name_;
  MemoryBudget* const parent_;
  std::atomic<size_t> limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<uint64_t> reserve_failures_{0};
  std::atomic<uint64_t> pressure_invocations_{0};
  std::atomic<uint64_t> pressure_released_{0};
  std::atomic<uint64_t> forced_overages_{0};

  mutable Mutex mu_;
  std::map<uint64_t, PressureHook> hooks_ WSQ_GUARDED_BY(mu_);
  uint64_t next_hook_id_ WSQ_GUARDED_BY(mu_) = 1;
};

/// RAII bookkeeping for one component's charges against a budget: the
/// destructor releases whatever is still outstanding, so an operator
/// torn down on an error path can never leak reserved bytes. Unbound
/// (null budget) reservations accept charges and track bytes locally —
/// operators run identical code whether or not the query is governed.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  explicit MemoryReservation(MemoryBudget* budget) : budget_(budget) {}
  ~MemoryReservation() { ReleaseAll(); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  /// (Re-)binds the target budget; only valid while nothing is charged.
  void Bind(MemoryBudget* budget);

  /// TryReserve `bytes` more; always succeeds when unbound.
  [[nodiscard]] bool TryAdd(size_t bytes);
  /// ForceReserve `bytes` more.
  void ForceAdd(size_t bytes);
  /// Releases part of the charge (clamped to the outstanding amount).
  void Subtract(size_t bytes);
  /// Releases the full outstanding charge.
  void ReleaseAll();

  size_t bytes() const { return bytes_; }
  size_t peak_bytes() const { return peak_; }
  MemoryBudget* budget() const { return budget_; }

 private:
  MemoryBudget* budget_ = nullptr;
  size_t bytes_ = 0;
  size_t peak_ = 0;
};

}  // namespace wsq

#endif  // WSQ_COMMON_MEMORY_H_
