#ifndef WSQ_COMMON_THREAD_ANNOTATIONS_H_
#define WSQ_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

// Clang thread-safety (capability) analysis macros plus the annotated
// synchronization primitives every shared-state module in this repo
// uses: wsq::Mutex, wsq::MutexLock, wsq::CondVar.
//
// Under Clang the macros expand to the capability-analysis attributes,
// so building with -DWSQ_THREAD_SAFETY_ANALYSIS=ON (which adds
// -Wthread-safety -Werror=thread-safety) turns lock-discipline
// violations — touching a WSQ_GUARDED_BY field without its mutex,
// calling a WSQ_REQUIRES function unlocked, leaking a lock on an early
// return — into build failures. Under GCC (which has no such analysis)
// they expand to nothing and the primitives behave identically.
//
// Conventions enforced here and by tools/wsqlint.py:
//  - shared-state classes hold a wsq::Mutex, never a raw std::mutex;
//  - every Mutex member has at least one WSQ_GUARDED_BY peer field;
//  - locking goes through the MutexLock RAII guard — no bare
//    lock()/unlock() calls outside this header;
//  - condition waits go through wsq::CondVar with an explicit
//    `while (!predicate) cv.Wait(mu);` loop, which the analysis can see
//    through (lambda predicates are opaque to it).

#if defined(__clang__)
#define WSQ_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define WSQ_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex type).
#define WSQ_CAPABILITY(x) WSQ_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define WSQ_SCOPED_CAPABILITY WSQ_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define WSQ_GUARDED_BY(x) WSQ_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* is protected by `x`.
#define WSQ_PT_GUARDED_BY(x) WSQ_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the capability held on entry (and keeps it held).
#define WSQ_REQUIRES(...) \
  WSQ_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define WSQ_REQUIRES_SHARED(...) \
  WSQ_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (not held on entry, held on exit).
#define WSQ_ACQUIRE(...) \
  WSQ_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define WSQ_ACQUIRE_SHARED(...) \
  WSQ_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define WSQ_RELEASE(...) \
  WSQ_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define WSQ_RELEASE_SHARED(...) \
  WSQ_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define WSQ_TRY_ACQUIRE(b, ...) \
  WSQ_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant entry points that
/// lock internally; deadlock guard).
#define WSQ_EXCLUDES(...) \
  WSQ_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Declares a lock-acquisition-order edge (documentation; checked only
/// under -Wthread-safety-beta).
#define WSQ_ACQUIRED_BEFORE(...) \
  WSQ_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define WSQ_ACQUIRED_AFTER(...) \
  WSQ_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function returns a reference to the mutex guarding its result.
#define WSQ_RETURN_CAPABILITY(x) \
  WSQ_THREAD_ANNOTATION__(lock_returned(x))

/// Runtime assertion that the capability is held (trusted by analysis).
#define WSQ_ASSERT_CAPABILITY(x) \
  WSQ_THREAD_ANNOTATION__(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use
/// needs a comment explaining why the analysis cannot see the truth.
#define WSQ_NO_THREAD_SAFETY_ANALYSIS \
  WSQ_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace wsq {

/// std::mutex annotated as a capability so WSQ_GUARDED_BY / WSQ_REQUIRES
/// can name it. Exposes BasicLockable lock()/unlock() so CondVar
/// (condition_variable_any) can suspend on it; all other code locks via
/// MutexLock.
class WSQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WSQ_ACQUIRE() { mu_.lock(); }
  void Unlock() WSQ_RELEASE() { mu_.unlock(); }
  bool TryLock() WSQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable surface for std::condition_variable_any; not for
  // direct use (tools/wsqlint.py flags bare lock()/unlock() calls).
  void lock() WSQ_ACQUIRE() { mu_.lock(); }
  void unlock() WSQ_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock guard over wsq::Mutex, relockable for code that must drop
/// the lock mid-scope (e.g. delivering callbacks): the destructor
/// releases the mutex only if it is still held.
class WSQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) WSQ_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() WSQ_RELEASE() {
    if (held_) mu_->Unlock();
  }

  /// Temporarily drops the lock; pair with Lock() before scope end or
  /// let the destructor observe the released state.
  void Unlock() WSQ_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }

  void Lock() WSQ_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* mu_;
  bool held_;
};

/// Condition variable bound to wsq::Mutex. Waits require the mutex held
/// (checked under the analysis); use an explicit predicate loop:
///   while (!ready) cv.Wait(mu);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) WSQ_REQUIRES(mu) { cv_.wait(mu); }

  /// Returns std::cv_status::timeout if `micros` elapsed first.
  std::cv_status WaitForMicros(Mutex& mu, int64_t micros)
      WSQ_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::microseconds(micros));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace wsq

#endif  // WSQ_COMMON_THREAD_ANNOTATIONS_H_
