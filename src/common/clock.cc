#include "common/clock.h"

namespace wsq {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace wsq
