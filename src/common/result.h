#ifndef WSQ_COMMON_RESULT_H_
#define WSQ_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace wsq {

/// Holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result / absl::StatusOr. Accessing the value of an
/// errored Result is a programming error (asserted in debug builds).
///
/// [[nodiscard]] like Status: a returned Result must be consumed or
/// explicitly discarded via WSQ_IGNORE_STATUS(expr).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value — lets functions `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status — lets functions `return status;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace wsq

#endif  // WSQ_COMMON_RESULT_H_
