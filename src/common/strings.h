#ifndef WSQ_COMMON_STRINGS_H_
#define WSQ_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace wsq {

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// Upper-cases ASCII characters.
std::string ToUpper(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace wsq

#endif  // WSQ_COMMON_STRINGS_H_
