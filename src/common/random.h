#ifndef WSQ_COMMON_RANDOM_H_
#define WSQ_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsq {

/// Deterministic 64-bit PRNG (SplitMix64).
///
/// Used everywhere randomness is needed (corpus generation, latency
/// jitter, workload constants) so that runs are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  uint64_t state() const { return state_; }

 private:
  uint64_t state_;
};

/// Zipf(s) sampler over {0, .., n-1} with precomputed CDF.
///
/// Rank 0 is the most frequent element. Used to give the synthetic Web
/// corpus a realistic skewed term distribution.
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `s` is the skew exponent (s=0 is uniform).
  ZipfDistribution(size_t n, double s);

  /// Samples a rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace wsq

#endif  // WSQ_COMMON_RANDOM_H_
