#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace wsq {

uint64_t Rng::Next() {
  state_ += 0x9E3779B97f4A7C15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return (Next() >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  cdf_.resize(n == 0 ? 1 : n);
  double total = 0;
  for (size_t i = 0; i < cdf_.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& v : cdf_) v /= total;
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace wsq
