#include "common/cancellation.h"

namespace wsq {

Status CancellationToken::CheckAlive() const {
  if (IsCancelled()) {
    return Status::Cancelled("query cancelled");
  }
  int64_t deadline = deadline_micros();
  if (deadline != 0 && NowMicros() >= deadline) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

}  // namespace wsq
