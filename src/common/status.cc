#include "common/status.h"

namespace wsq {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

bool IsTransient(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kIOError:
      return true;
    default:
      return false;
  }
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(message)});
  }
}

#define WSQ_STATUS_FACTORY(Name, Code)              \
  Status Status::Name(std::string msg) {            \
    return Status(StatusCode::Code, std::move(msg)); \
  }

WSQ_STATUS_FACTORY(InvalidArgument, kInvalidArgument)
WSQ_STATUS_FACTORY(NotFound, kNotFound)
WSQ_STATUS_FACTORY(AlreadyExists, kAlreadyExists)
WSQ_STATUS_FACTORY(OutOfRange, kOutOfRange)
WSQ_STATUS_FACTORY(ResourceExhausted, kResourceExhausted)
WSQ_STATUS_FACTORY(Cancelled, kCancelled)
WSQ_STATUS_FACTORY(NotImplemented, kNotImplemented)
WSQ_STATUS_FACTORY(IOError, kIOError)
WSQ_STATUS_FACTORY(ParseError, kParseError)
WSQ_STATUS_FACTORY(BindError, kBindError)
WSQ_STATUS_FACTORY(TypeError, kTypeError)
WSQ_STATUS_FACTORY(ExecutionError, kExecutionError)
WSQ_STATUS_FACTORY(Internal, kInternal)
WSQ_STATUS_FACTORY(Unavailable, kUnavailable)
WSQ_STATUS_FACTORY(DeadlineExceeded, kDeadlineExceeded)
WSQ_STATUS_FACTORY(DataLoss, kDataLoss)

#undef WSQ_STATUS_FACTORY

const std::string& Status::message() const {
  return ok() ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace wsq
