#ifndef WSQ_COMMON_CLOCK_H_
#define WSQ_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace wsq {

/// Monotonic microsecond timestamp.
int64_t NowMicros();

/// Simple scoped stopwatch over the steady clock.
class Stopwatch {
 public:
  Stopwatch() : start_(NowMicros()) {}

  /// Elapsed time since construction or last Reset().
  int64_t ElapsedMicros() const { return NowMicros() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

  void Reset() { start_ = NowMicros(); }

 private:
  int64_t start_;
};

}  // namespace wsq

#endif  // WSQ_COMMON_CLOCK_H_
