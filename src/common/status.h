#ifndef WSQ_COMMON_STATUS_H_
#define WSQ_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace wsq {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kCancelled,
  kNotImplemented,
  kIOError,
  kParseError,
  kBindError,
  kTypeError,
  kExecutionError,
  kInternal,
  /// An external destination (search engine) is temporarily unreachable
  /// or refusing work — retrying later may succeed.
  kUnavailable,
  /// The call's per-request deadline elapsed before a response arrived.
  kDeadlineExceeded,
  /// Stored bytes are unrecoverably lost or corrupt: checksum mismatch,
  /// torn page, bad magic. Unlike kIOError (the *operation* failed and
  /// may succeed on retry), the *data itself* is damaged.
  kDataLoss,
};

/// Returns a short stable name for `code`, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// True for error categories that describe a *transient* condition worth
/// retrying against the same destination: the engine may recover
/// (kUnavailable, kDeadlineExceeded, kResourceExhausted) or the network
/// may heal (kIOError). Permanent errors — bad input, parse failures,
/// internal bugs — return false: retrying them only wastes calls.
bool IsTransient(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
///
/// This is the library-wide error model (no exceptions cross public API
/// boundaries). OK status carries no allocation; error states allocate a
/// small shared state so Status stays cheap to copy.
///
/// [[nodiscard]]: a returned Status must be propagated, handled, or
/// explicitly discarded via WSQ_IGNORE_STATUS(expr) with a comment
/// saying why the error cannot matter — silently dropping one is a
/// compile warning (an error in CI).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status Cancelled(std::string msg);
  static Status NotImplemented(std::string msg);
  static Status IOError(std::string msg);
  static Status ParseError(std::string msg);
  static Status BindError(std::string msg);
  static Status TypeError(std::string msg);
  static Status ExecutionError(std::string msg);
  static Status Internal(std::string msg);
  static Status Unavailable(std::string msg);
  static Status DeadlineExceeded(std::string msg);
  static Status DataLoss(std::string msg);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK.
  const std::string& message() const;

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;  // null == OK
};

namespace status_internal {
/// Sink for WSQ_IGNORE_STATUS: consumes any [[nodiscard]] value.
template <typename T>
inline void IgnoreNoDiscard(T&&) {}
}  // namespace status_internal

}  // namespace wsq

/// Documents an intentionally discarded Status (or Result<T>): the
/// error genuinely cannot be acted on at this call site — destructors,
/// best-effort cleanup, crash-simulation paths. Every use should carry
/// a comment saying why. Bare discards are compile warnings because
/// Status and Result are [[nodiscard]].
#define WSQ_IGNORE_STATUS(expr) \
  ::wsq::status_internal::IgnoreNoDiscard((expr))

#endif  // WSQ_COMMON_STATUS_H_
