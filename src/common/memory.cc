#include "common/memory.h"

#include <limits>
#include <utility>
#include <vector>

namespace wsq {

namespace {
std::atomic<MemoryEventHookFn> g_memory_event_hook{nullptr};

void EmitMemoryEvent(const char* budget_name, bool pressure, int64_t a,
                     int64_t b) {
  MemoryEventHookFn hook =
      g_memory_event_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(budget_name, pressure, a, b);
}
}  // namespace

void SetMemoryEventHook(MemoryEventHookFn hook) {
  g_memory_event_hook.store(hook, std::memory_order_release);
}

MemoryBudget::MemoryBudget(std::string name, size_t limit_bytes,
                           MemoryBudget* parent)
    : name_(std::move(name)), parent_(parent), limit_(limit_bytes) {}

MemoryBudget::~MemoryBudget() = default;

MemoryBudget* MemoryBudget::Process() {
  static MemoryBudget* const kProcess =
      new MemoryBudget("process", /*limit_bytes=*/0);
  return kProcess;
}

bool MemoryBudget::TryChargeSelf(size_t bytes) {
  size_t cur = used_.load(std::memory_order_relaxed);
  while (true) {
    size_t lim = limit_.load(std::memory_order_relaxed);
    if (lim != 0 && (cur > lim || bytes > lim - cur)) return false;
    if (used_.compare_exchange_weak(cur, cur + bytes,
                                    std::memory_order_relaxed)) {
      UpdatePeak(cur + bytes);
      return true;
    }
  }
}

void MemoryBudget::ChargeSelf(size_t bytes) {
  size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t lim = limit_.load(std::memory_order_relaxed);
  if (lim != 0 && now > lim) {
    forced_overages_.fetch_add(1, std::memory_order_relaxed);
  }
  UpdatePeak(now);
}

void MemoryBudget::UpdatePeak(size_t used_now) {
  size_t cur = peak_.load(std::memory_order_relaxed);
  while (used_now > cur &&
         !peak_.compare_exchange_weak(cur, used_now,
                                      std::memory_order_relaxed)) {
  }
}

size_t MemoryBudget::RunPressureHooks(size_t wanted) {
  pressure_invocations_.fetch_add(1, std::memory_order_relaxed);
  size_t freed = 0;
  {
    MutexLock lock(&mu_);
    for (auto& [id, hook] : hooks_) {
      if (freed >= wanted) break;
      freed += hook(wanted - freed);
    }
  }
  pressure_released_.fetch_add(freed, std::memory_order_relaxed);
  EmitMemoryEvent(name_.c_str(), /*pressure=*/true,
                  static_cast<int64_t>(wanted),
                  static_cast<int64_t>(freed));
  return freed;
}

bool MemoryBudget::TryReserve(size_t bytes) {
  if (bytes == 0) return true;
  if (!TryChargeSelf(bytes)) {
    // Tier 2: ask this budget's components to shed clean state, then
    // retry once. Hooks release through their own reservations, so the
    // retry sees the freed headroom directly in used_.
    RunPressureHooks(bytes);
    if (!TryChargeSelf(bytes)) {
      reserve_failures_.fetch_add(1, std::memory_order_relaxed);
      EmitMemoryEvent(name_.c_str(), /*pressure=*/false,
                      static_cast<int64_t>(bytes),
                      static_cast<int64_t>(used()));
      return false;
    }
  }
  if (parent_ != nullptr && !parent_->TryReserve(bytes)) {
    // Unwind the self charge so a failed reservation nets to zero.
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    reserve_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void MemoryBudget::ForceReserve(size_t bytes) {
  if (bytes == 0) return;
  for (MemoryBudget* b = this; b != nullptr; b = b->parent_) {
    b->ChargeSelf(bytes);
  }
}

void MemoryBudget::Release(size_t bytes) {
  if (bytes == 0) return;
  for (MemoryBudget* b = this; b != nullptr; b = b->parent_) {
    b->used_.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

size_t MemoryBudget::Available() const {
  size_t headroom = std::numeric_limits<size_t>::max();
  for (const MemoryBudget* b = this; b != nullptr; b = b->parent_) {
    size_t lim = b->limit_.load(std::memory_order_relaxed);
    if (lim == 0) continue;
    size_t used = b->used_.load(std::memory_order_relaxed);
    size_t room = used >= lim ? 0 : lim - used;
    if (room < headroom) headroom = room;
  }
  return headroom;
}

MemoryBudgetStats MemoryBudget::stats() const {
  MemoryBudgetStats s;
  s.reserve_failures = reserve_failures_.load(std::memory_order_relaxed);
  s.pressure_invocations =
      pressure_invocations_.load(std::memory_order_relaxed);
  s.pressure_released_bytes =
      pressure_released_.load(std::memory_order_relaxed);
  s.forced_overages = forced_overages_.load(std::memory_order_relaxed);
  return s;
}

uint64_t MemoryBudget::AddPressureHook(PressureHook hook) {
  MutexLock lock(&mu_);
  uint64_t id = next_hook_id_++;
  hooks_.emplace(id, std::move(hook));
  return id;
}

void MemoryBudget::RemovePressureHook(uint64_t id) {
  MutexLock lock(&mu_);
  hooks_.erase(id);
}

void MemoryReservation::Bind(MemoryBudget* budget) {
  // Rebinding with live charges would strand them on the old budget.
  if (bytes_ == 0) budget_ = budget;
}

bool MemoryReservation::TryAdd(size_t bytes) {
  if (budget_ != nullptr && !budget_->TryReserve(bytes)) return false;
  bytes_ += bytes;
  if (bytes_ > peak_) peak_ = bytes_;
  return true;
}

void MemoryReservation::ForceAdd(size_t bytes) {
  if (budget_ != nullptr) budget_->ForceReserve(bytes);
  bytes_ += bytes;
  if (bytes_ > peak_) peak_ = bytes_;
}

void MemoryReservation::Subtract(size_t bytes) {
  if (bytes > bytes_) bytes = bytes_;  // defensive clamp
  if (budget_ != nullptr) budget_->Release(bytes);
  bytes_ -= bytes;
}

void MemoryReservation::ReleaseAll() {
  if (bytes_ == 0) return;
  if (budget_ != nullptr) budget_->Release(bytes_);
  bytes_ = 0;
}

}  // namespace wsq
