#ifndef WSQ_STORAGE_FAULT_DISK_H_
#define WSQ_STORAGE_FAULT_DISK_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/thread_annotations.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"

namespace wsq {

/// Declarative fault plan for the storage crash harness (the disk-side
/// sibling of net/FaultPlan). Mutating operations — page writes,
/// allocations, syncs, WAL appends/resets — are counted globally
/// across every device attached to one FaultController, in call
/// order, so "the Nth operation of a checkpoint" addresses one exact
/// protocol step. Read corruption is keyed on (seed, page id), not on
/// arrival order, so the same pages are corrupt on every run.
struct DiskFaultPlan {
  uint64_t seed = 1;

  /// 1-based index of a mutating operation that fails with IOError.
  /// The op is dropped; the device keeps working. 0 = disabled.
  uint64_t fail_at_op = 0;

  /// 1-based index of the mutating operation at which the simulated
  /// machine loses power: the op fails, every device drops its
  /// un-synced state (keeping at most `torn_bytes` of the crashing
  /// write), and all further ops fail until FaultController::Recover().
  /// 0 = disabled.
  uint64_t crash_at_op = 0;

  /// Bytes of the crashing write/append that still reach durable
  /// storage — a torn write. -1 = none of it survives.
  int64_t torn_bytes = -1;

  /// Fraction of the page-id space whose reads come back with one
  /// flipped bit (position also derived from the hash), surfacing as
  /// Status::DataLoss from the checksum check.
  double read_bit_flip_rate = 0.0;
};

struct DiskFaultStats {
  uint64_t ops = 0;  // mutating operations observed
  uint64_t failed_ops = 0;
  uint64_t reads = 0;
  uint64_t bit_flips = 0;
  bool crashed = false;
};

/// Shared fault clock for one simulated machine: every fault-injecting
/// device registers its mutating ops here so a single plan can target
/// any step of a multi-device protocol (WAL + data file).
class FaultController {
 public:
  explicit FaultController(DiskFaultPlan plan = {});

  enum class Action { kOk, kFail, kCrash };

  /// Registers one mutating op and returns its fate.
  Action BeginMutation();

  bool crashed() const;

  /// Ends the simulated outage ("reboot"): devices work again. The op
  /// counter keeps running; call set_plan to re-arm or disarm faults.
  void Recover();

  /// Number of crashes so far; devices watch this to drop their
  /// un-synced state exactly once per power loss.
  uint64_t crash_epoch() const;

  void set_plan(DiskFaultPlan plan);
  DiskFaultPlan plan() const;
  DiskFaultStats stats() const;

  /// Content-keyed decision: should this read of `page_id` be
  /// corrupted? If so, `*bit` gets the bit position to flip.
  bool ShouldFlipBit(PageId page_id, size_t* bit);

  int64_t torn_bytes() const;

 private:
  /// Lock order: a device's mu_ is always acquired BEFORE the
  /// controller's mu_ (devices call controller methods while holding
  /// their own lock; the controller never calls back into a device).
  mutable Mutex mu_;
  DiskFaultPlan plan_ WSQ_GUARDED_BY(mu_);
  DiskFaultStats stats_ WSQ_GUARDED_BY(mu_);
  bool crashed_ WSQ_GUARDED_BY(mu_) = false;
  uint64_t crash_epoch_ WSQ_GUARDED_BY(mu_) = 0;
};

/// DiskManager decorator simulating storage faults and power loss.
///
/// Mirrors FileDiskManager's physical behaviour: writes are stamped
/// with the checksummed page header and reads verified, so injected
/// corruption surfaces as Status::DataLoss exactly as it would from
/// the real file backend. Writes buffer in a volatile overlay until
/// Sync() publishes them to the wrapped (durable) store; a crash
/// drops the overlay — what power loss leaves behind is precisely the
/// synced state. Wrap a raw store (InMemoryDiskManager) so injected
/// corruption is not silently re-checksummed; both it and the
/// controller must outlive this decorator.
class FaultInjectingDiskManager : public DiskManager {
 public:
  FaultInjectingDiskManager(DiskManager* durable, FaultController* ctl);

  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  Result<PageId> AllocatePage() override;
  PageId NumPages() const override;
  Status Sync() override;

  /// Pages written (or allocated) but not yet synced to the durable
  /// store.
  size_t unsynced_pages() const;

 private:
  /// Drops volatile state once per observed crash epoch.
  void DropOnNewEpochLocked() WSQ_REQUIRES(mu_);
  Status CrashNow(PageId torn_page, const char* torn_frame)
      WSQ_REQUIRES(mu_);

  DiskManager* durable_;
  FaultController* ctl_;

  mutable Mutex mu_;
  /// Unsynced stamped frames.
  std::map<PageId, std::string> overlay_ WSQ_GUARDED_BY(mu_);
  /// Includes unsynced allocations.
  PageId num_pages_ WSQ_GUARDED_BY(mu_);
  uint64_t next_lsn_ WSQ_GUARDED_BY(mu_) = 1;
  uint64_t seen_crash_epoch_ WSQ_GUARDED_BY(mu_) = 0;
};

/// WalStorage decorator with the same crash semantics: appends buffer
/// until Sync() publishes them to the wrapped durable log; a crash
/// drops the un-synced tail (keeping at most torn_bytes of the
/// crashing append — a torn log record).
class FaultInjectingWalStorage : public WalStorage {
 public:
  FaultInjectingWalStorage(WalStorage* durable, FaultController* ctl);

  Result<bool> Exists() override;
  Result<std::string> ReadAll() override;
  Status Append(std::string_view bytes) override;
  Status Sync() override;
  Status Reset() override;

  size_t unsynced_bytes() const;

 private:
  /// Drops the volatile tail once per observed crash epoch.
  void DropOnNewEpochLocked() WSQ_REQUIRES(mu_);

  WalStorage* durable_;
  FaultController* ctl_;

  mutable Mutex mu_;
  std::string volatile_ WSQ_GUARDED_BY(mu_);  // appended, unsynced
  uint64_t seen_crash_epoch_ WSQ_GUARDED_BY(mu_) = 0;
};

}  // namespace wsq

#endif  // WSQ_STORAGE_FAULT_DISK_H_
