#ifndef WSQ_STORAGE_BPLUS_TREE_H_
#define WSQ_STORAGE_BPLUS_TREE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "types/value.h"

namespace wsq {

/// Disk-resident B+ tree mapping single-column keys to record ids —
/// the IX component of the Redbase substrate the paper built on.
///
/// Keys are Values (NULLs rejected) serialized into fixed-width slots;
/// string keys longer than the slot are rejected at insert time.
/// Duplicate keys are allowed (secondary index semantics): entries are
/// (key, rid) pairs ordered by key then rid, so every operation is
/// deterministic. Deletion removes single entries without rebalancing
/// (underfull nodes are tolerated — the classic course simplification).
///
/// Node page layout:
///   [ is_leaf:u8 | num_keys:u16 | next_leaf:i32 | entries... ]
/// Leaf entry:     key slot + Rid(page:i32, slot:u16)
/// Internal nodes: child0:i32, then (key slot, child:i32) pairs; keys
/// separate subtrees (key[i] = smallest key in child[i+1]).
class BPlusTree {
 public:
  /// Serialized key capacity per slot; includes a 1-byte type tag and
  /// 2-byte length for strings.
  static constexpr size_t kMaxKeyBytes = 64;

  /// Wraps an existing tree rooted at `root`, or an empty one when
  /// `root` is kInvalidPageId (the first insert allocates it).
  explicit BPlusTree(BufferPool* pool, PageId root = kInvalidPageId)
      : pool_(pool), root_(root) {}

  /// Inserts one (key, rid) entry. Duplicate (key, rid) pairs are
  /// rejected with AlreadyExists.
  Status Insert(const Value& key, Rid rid);

  /// Removes one (key, rid) entry; NotFound if absent.
  Status Remove(const Value& key, Rid rid);

  /// All rids whose key equals `key`, in rid order.
  Result<std::vector<Rid>> SearchEqual(const Value& key) const;

  /// All rids with lo <?= key <?= hi, in (key, rid) order. Null bound
  /// pointers mean unbounded on that side.
  Result<std::vector<Rid>> SearchRange(const Value* lo,
                                       bool lo_inclusive,
                                       const Value* hi,
                                       bool hi_inclusive) const;

  /// All (key, rid) entries in key order (tests/verification).
  Result<std::vector<std::pair<Value, Rid>>> ScanAll() const;

  /// Number of entries; O(leaves).
  Result<int64_t> Count() const;

  /// Current root page (persist this across restarts; it changes when
  /// the root splits).
  PageId root() const { return root_; }

  /// Structural invariants: key ordering within and across nodes,
  /// leaf-chain consistency, child separation. For tests.
  Status CheckInvariants() const;

 private:
  struct SplitResult {
    bool split = false;
    std::string separator;  // serialized first key of the new node
    PageId new_page = kInvalidPageId;
  };

  Status InsertInto(PageId page_id, const std::string& key, Rid rid,
                    SplitResult* out);
  Status RemoveFrom(PageId page_id, const std::string& key, Rid rid,
                    bool* removed);
  Result<PageId> FindLeaf(const std::string& key) const;

  BufferPool* pool_;
  PageId root_;
};

/// Serializes a key value into its fixed-width byte form (the tree's
/// comparison order is the byte order of this encoding for same-typed
/// keys and Value::Compare order across types). Exposed for tests.
Result<std::string> EncodeBTreeKey(const Value& key);

/// Inverse of EncodeBTreeKey.
Result<Value> DecodeBTreeKey(std::string_view bytes);

}  // namespace wsq

#endif  // WSQ_STORAGE_BPLUS_TREE_H_
