#ifndef WSQ_STORAGE_WAL_H_
#define WSQ_STORAGE_WAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace wsq {

/// Byte-stream storage for the write-ahead log: an append-only blob
/// with explicit durability (Sync) and wholesale truncation (Reset).
/// Implementations: FileWalStorage (a real <db>.wal file),
/// InMemoryWalStorage (tests), FaultInjectingWalStorage (crash
/// harness).
class WalStorage {
 public:
  virtual ~WalStorage() = default;

  /// True when a log from a previous run is present.
  virtual Result<bool> Exists() = 0;

  /// The entire log contents, including appended-but-unsynced bytes.
  virtual Result<std::string> ReadAll() = 0;

  /// Appends `bytes` to the log. Not durable until Sync().
  virtual Status Append(std::string_view bytes) = 0;

  /// Makes all appended bytes durable per the backend's SyncPolicy.
  virtual Status Sync() = 0;

  /// Removes the log entirely (the end of a successful checkpoint, or
  /// the discard of a torn one).
  virtual Status Reset() = 0;
};

/// WAL file next to the database file (conventionally `<db>.wal`).
class FileWalStorage : public WalStorage {
 public:
  FileWalStorage(std::string path, SyncPolicy sync);
  ~FileWalStorage() override;

  Result<bool> Exists() override;
  Result<std::string> ReadAll() override;
  Status Append(std::string_view bytes) override;
  Status Sync() override;
  Status Reset() override;

  const std::string& path() const { return path_; }

 private:
  /// Opens the append handle lazily (first Append after open/Reset).
  Status EnsureOpen() WSQ_REQUIRES(mu_);

  // File I/O under this lock IS the design: the WAL serializes every
  // append/fsync through one handle, and callers expect Append+Sync
  // to be atomic with respect to each other.
  // wsqcheck: allow(blocking-under-lock)
  Mutex mu_;
  /// Immutable after construction (read without mu_).
  std::string path_;
  SyncPolicy sync_;
  std::FILE* file_ WSQ_GUARDED_BY(mu_) = nullptr;
};

/// Heap-backed WalStorage for tests and the crash harness.
class InMemoryWalStorage : public WalStorage {
 public:
  Result<bool> Exists() override;
  Result<std::string> ReadAll() override;
  Status Append(std::string_view bytes) override;
  Status Sync() override;
  Status Reset() override;

 private:
  Mutex mu_;
  std::string bytes_ WSQ_GUARDED_BY(mu_);
};

/// Serializes checkpoint records into a WalStorage. Layout:
///   file header: magic:u32 version:u16 reserved:u16
///   page record: type=1:u8 page_id:i32 len:u32 frame[len] crc32c:u32
///   commit:      type=2:u8 page_count:u32 crc32c:u32
/// Each record's CRC covers every byte of the record before it, so a
/// torn or bit-rotted tail is detected; the commit record is the
/// checkpoint's commit point. One WalStorage::Append per record keeps
/// crash granularity at record boundaries.
class LogWriter {
 public:
  explicit LogWriter(WalStorage* wal) : wal_(wal) {}

  /// Appends a full-page image (the file header precedes the first
  /// record automatically).
  Status AppendPageImage(PageId page_id, const char* frame);

  /// Appends the commit record and syncs the log: after this returns
  /// OK the checkpoint is the durable winner.
  Status Commit(uint32_t page_count);

 private:
  WalStorage* wal_;
  bool wrote_header_ = false;
};

struct WalPageImage {
  PageId page_id = kInvalidPageId;
  std::string frame;  // kPageSize bytes
};

/// What LogReader recovered from a log's bytes.
struct ParsedWal {
  std::vector<WalPageImage> pages;
  bool committed = false;
  /// Why parsing stopped before a commit record (empty if committed).
  std::string torn_reason;
};

/// Validating parser for LogWriter output. Parsing never fails: a
/// torn, truncated, or corrupt log simply yields committed=false with
/// the reason recorded — recovery then discards it deterministically.
class LogReader {
 public:
  static ParsedWal Parse(std::string_view bytes);
};

enum class WalRecoveryAction {
  /// No log existed: the previous shutdown was clean.
  kNone,
  /// A committed checkpoint log was replayed into the database file.
  kReplayed,
  /// A torn (uncommitted) log was discarded; the database file was
  /// not touched.
  kDiscarded,
};

struct WalRecoveryResult {
  WalRecoveryAction action = WalRecoveryAction::kNone;
  size_t pages_replayed = 0;
  std::string detail;
};

/// Recovery half of the two-phase checkpoint, run before the catalog
/// is loaded: replays a committed log (redo is idempotent, extending
/// the file as needed, then syncs and truncates the log) or discards a
/// torn one. Either way the database is afterwards in exactly the
/// pre- or post-checkpoint state, never a mix.
Result<WalRecoveryResult> RecoverCheckpoint(WalStorage* wal,
                                            DiskManager* disk);

}  // namespace wsq

#endif  // WSQ_STORAGE_WAL_H_
