#include "storage/checksum.h"

#include <cstring>

#include "common/strings.h"

namespace wsq {

namespace {

/// Byte-wise table for reflected CRC-32C (polynomial 0x82F63B78).
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable* const kTable = new Crc32cTable();
  return *kTable;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t state, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  const Crc32cTable& table = Table();
  for (size_t i = 0; i < n; ++i) {
    state = table.entries[(state ^ p[i]) & 0xFF] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32c(const void* data, size_t n) {
  return FinishCrc32c(ExtendCrc32c(kCrc32cInit, data, n));
}

uint32_t ComputePageCrc(const char* frame) {
  static const char kZeros[4] = {0, 0, 0, 0};
  uint32_t c = ExtendCrc32c(kCrc32cInit, frame, kPageCrcOffset);
  c = ExtendCrc32c(c, kZeros, 4);
  c = ExtendCrc32c(c, frame + kPageCrcOffset + 4,
                   kPageSize - kPageCrcOffset - 4);
  return FinishCrc32c(c);
}

void StampPageHeader(PageId page_id, uint64_t lsn, char* frame) {
  uint32_t magic = kPageMagic;
  uint16_t version = kPageFormatVersion;
  uint16_t reserved = 0;
  int32_t id = page_id;
  std::memcpy(frame, &magic, 4);
  std::memcpy(frame + 4, &version, 2);
  std::memcpy(frame + 6, &reserved, 2);
  std::memcpy(frame + 8, &id, 4);
  std::memcpy(frame + 16, &lsn, 8);
  uint32_t crc = ComputePageCrc(frame);
  std::memcpy(frame + kPageCrcOffset, &crc, 4);
}

Status VerifyPageHeader(PageId page_id, const char* frame) {
  uint32_t magic;
  std::memcpy(&magic, frame, 4);
  if (magic != kPageMagic) {
    return Status::DataLoss(
        StrFormat("page %d: bad magic 0x%08x (not a WSQ page)", page_id,
                  magic));
  }
  uint16_t version;
  std::memcpy(&version, frame + 4, 2);
  if (version != kPageFormatVersion) {
    return Status::DataLoss(
        StrFormat("page %d: unsupported page format version %u", page_id,
                  version));
  }
  int32_t stored_id;
  std::memcpy(&stored_id, frame + 8, 4);
  if (stored_id != page_id) {
    return Status::DataLoss(
        StrFormat("page %d: header names page %d (misdirected write)",
                  page_id, stored_id));
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, frame + kPageCrcOffset, 4);
  uint32_t actual = ComputePageCrc(frame);
  if (stored_crc != actual) {
    return Status::DataLoss(
        StrFormat("page %d: checksum mismatch (stored 0x%08x, computed "
                  "0x%08x)",
                  page_id, stored_crc, actual));
  }
  return Status::OK();
}

uint64_t PageHeaderLsn(const char* frame) {
  uint64_t lsn;
  std::memcpy(&lsn, frame + 16, 8);
  return lsn;
}

}  // namespace wsq
