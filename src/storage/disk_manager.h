#ifndef WSQ_STORAGE_DISK_MANAGER_H_
#define WSQ_STORAGE_DISK_MANAGER_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace wsq {

/// Abstraction over the backing store of fixed-size pages.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Reads page `page_id` into `out` (kPageSize bytes).
  virtual Status ReadPage(PageId page_id, char* out) = 0;

  /// Writes kPageSize bytes from `data` to page `page_id`.
  virtual Status WritePage(PageId page_id, const char* data) = 0;

  /// Extends the store by one zeroed page and returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  /// Number of allocated pages.
  virtual PageId NumPages() const = 0;
};

/// Heap-allocated page store; the default for tests and benchmarks.
class InMemoryDiskManager : public DiskManager {
 public:
  InMemoryDiskManager() = default;

  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  Result<PageId> AllocatePage() override;
  PageId NumPages() const override;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<char[]>> pages_;
};

/// File-backed page store for persistent databases.
class FileDiskManager : public DiskManager {
 public:
  /// Opens (creating if necessary) the database file at `path`.
  static Result<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path);

  ~FileDiskManager() override;

  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  Result<PageId> AllocatePage() override;
  PageId NumPages() const override;

  const std::string& path() const { return path_; }

 private:
  FileDiskManager(std::string path, std::FILE* file, PageId num_pages)
      : path_(std::move(path)), file_(file), num_pages_(num_pages) {}

  mutable std::mutex mu_;
  std::string path_;
  std::FILE* file_;
  PageId num_pages_;
};

}  // namespace wsq

#endif  // WSQ_STORAGE_DISK_MANAGER_H_
