#ifndef WSQ_STORAGE_DISK_MANAGER_H_
#define WSQ_STORAGE_DISK_MANAGER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page.h"

namespace wsq {

/// How aggressively file-backed storage makes writes durable.
enum class SyncPolicy {
  /// No explicit flushing: fastest, durable only on clean close.
  kNone,
  /// fflush to the OS on Sync(): survives process crashes, not power
  /// loss.
  kFlush,
  /// fflush + fsync on Sync(): survives power loss. The default.
  kFull,
};

/// Abstraction over the backing store of fixed-size pages.
///
/// Persistent implementations maintain the checksummed page header
/// (see page.h): WritePage stamps it over the first kPageHeaderSize
/// bytes of the frame, ReadPage verifies it and reports corruption as
/// Status::DataLoss. The header region of a caller's frame is owned by
/// the DiskManager; callers must keep their payload within
/// Page::data() / kPageDataSize.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Reads page `page_id` into `out` (a full kPageSize frame).
  virtual Status ReadPage(PageId page_id, char* out) = 0;

  /// Writes the kPageSize frame at `data` to page `page_id`.
  virtual Status WritePage(PageId page_id, const char* data) = 0;

  /// Extends the store by one zeroed page and returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  /// Number of allocated pages.
  virtual PageId NumPages() const = 0;

  /// Makes previously written pages durable per the backend's
  /// SyncPolicy. Writes are NOT durable until Sync() returns OK.
  virtual Status Sync() { return Status::OK(); }
};

/// Heap-allocated page store; the default for tests and benchmarks.
/// Stores raw frames verbatim (no header stamping or verification).
class InMemoryDiskManager : public DiskManager {
 public:
  InMemoryDiskManager() = default;

  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  Result<PageId> AllocatePage() override;
  PageId NumPages() const override;

 private:
  mutable Mutex mu_;
  std::vector<std::unique_ptr<char[]>> pages_ WSQ_GUARDED_BY(mu_);
};

/// File-backed page store for persistent databases. Stamps and
/// verifies the checksummed page header; buffers writes in stdio and
/// makes them durable on Sync() per the SyncPolicy.
class FileDiskManager : public DiskManager {
 public:
  /// Opens (creating if necessary) the database file at `path`.
  /// Rejects files whose size is not a multiple of kPageSize
  /// (Status::DataLoss: a torn final page must not be silently
  /// rounded away).
  static Result<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path, SyncPolicy sync = SyncPolicy::kFull);

  ~FileDiskManager() override;

  Status ReadPage(PageId page_id, char* out) override;
  Status WritePage(PageId page_id, const char* data) override;
  Result<PageId> AllocatePage() override;
  PageId NumPages() const override;
  Status Sync() override;

  const std::string& path() const { return path_; }

 private:
  FileDiskManager(std::string path, std::FILE* file, PageId num_pages,
                  SyncPolicy sync)
      : path_(std::move(path)),
        file_(file),
        num_pages_(num_pages),
        sync_(sync) {}

  // Page I/O under this lock IS the design: one stdio handle, one
  // seek-then-read/write pair at a time; interleaving seeks from two
  // threads would corrupt pages.
  // wsqcheck: allow(blocking-under-lock)
  mutable Mutex mu_;
  /// path_ and sync_ are immutable after construction (read without
  /// mu_).
  std::string path_;
  std::FILE* file_ WSQ_GUARDED_BY(mu_);
  PageId num_pages_ WSQ_GUARDED_BY(mu_);
  SyncPolicy sync_;
  /// Write-ordering stamp for page headers; monotonic per open.
  uint64_t next_lsn_ WSQ_GUARDED_BY(mu_) = 1;
};

}  // namespace wsq

#endif  // WSQ_STORAGE_DISK_MANAGER_H_
