#include "storage/spill.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"
#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace wsq {

namespace {

std::string DefaultSpillDir() {
  const char* tmpdir = std::getenv("TMPDIR");
  if (tmpdir != nullptr && tmpdir[0] != '\0') return tmpdir;
  return "/tmp";
}

}  // namespace

// --- SpillWriter ---

SpillWriter::SpillWriter(SpillFile* file) : file_(file) {
  std::memset(frame_, 0, sizeof(frame_));
}

Status SpillWriter::FlushPage() {
  Status st = FlushPageImpl();
  if (!st.ok()) {
    FlightRecorder::Global()->Record(
        FrEventType::kSpillFail, "spill", StatusCodeToString(st.code()),
        /*query_id=*/0, static_cast<int64_t>(run_.records),
        static_cast<int64_t>(run_.bytes));
  }
  return st;
}

Status SpillWriter::FlushPageImpl() {
  WSQ_ASSIGN_OR_RETURN(PageId page, file_->disk()->AllocatePage());
  if (!started_) {
    run_.first_page = page;
    started_ = true;
  }
  WSQ_RETURN_IF_ERROR(file_->disk()->WritePage(page, frame_));
  std::memset(frame_, 0, sizeof(frame_));
  frame_used_ = 0;
  return Status::OK();
}

Status SpillWriter::PutBytes(const char* data, size_t n) {
  while (n > 0) {
    if (frame_used_ == kPageDataSize) {
      WSQ_RETURN_IF_ERROR(FlushPage());
    }
    size_t take = kPageDataSize - frame_used_;
    if (take > n) take = n;
    std::memcpy(frame_ + kPageHeaderSize + frame_used_, data, take);
    frame_used_ += take;
    data += take;
    n -= take;
  }
  return Status::OK();
}

Status SpillWriter::Append(std::string_view record) {
  if (finished_) return Status::Internal("append to a finished run");
  char len[4];
  uint32_t n = static_cast<uint32_t>(record.size());
  std::memcpy(len, &n, 4);
  WSQ_RETURN_IF_ERROR(PutBytes(len, 4));
  WSQ_RETURN_IF_ERROR(PutBytes(record.data(), record.size()));
  run_.records++;
  run_.bytes += 4 + record.size();
  return Status::OK();
}

Result<SpillRun> SpillWriter::Finish() {
  if (finished_) return Status::Internal("run finished twice");
  finished_ = true;
  if (frame_used_ > 0 || !started_) {
    WSQ_RETURN_IF_ERROR(FlushPage());
  }
  SpillManager* mgr = file_->manager_;
  mgr->runs_written_.fetch_add(1, std::memory_order_relaxed);
  mgr->records_written_.fetch_add(run_.records,
                                  std::memory_order_relaxed);
  mgr->bytes_written_.fetch_add(run_.bytes, std::memory_order_relaxed);
  FlightRecorder::Global()->Record(FrEventType::kSpillRun, "spill",
                                   /*cause=*/"", /*query_id=*/0,
                                   static_cast<int64_t>(run_.records),
                                   static_cast<int64_t>(run_.bytes));
  return run_;
}

// --- SpillReader ---

SpillReader::SpillReader(SpillFile* file, const SpillRun& run)
    : file_(file),
      run_(run),
      next_page_(run.first_page),
      remaining_bytes_(run.bytes),
      remaining_records_(run.records) {
  std::memset(frame_, 0, sizeof(frame_));
}

Status SpillReader::GetBytes(char* out, size_t n) {
  while (n > 0) {
    if (frame_offset_ == kPageDataSize) {
      WSQ_RETURN_IF_ERROR(file_->disk()->ReadPage(next_page_, frame_));
      ++next_page_;
      frame_offset_ = 0;
    }
    size_t take = kPageDataSize - frame_offset_;
    if (take > n) take = n;
    std::memcpy(out, frame_ + kPageHeaderSize + frame_offset_, take);
    frame_offset_ += take;
    out += take;
    n -= take;
  }
  return Status::OK();
}

Result<bool> SpillReader::Next(std::string* record) {
  if (remaining_records_ == 0) return false;
  char lenbuf[4];
  uint32_t len;
  if (remaining_bytes_ < 4) {
    return Status::DataLoss("spill run truncated: missing record length");
  }
  WSQ_RETURN_IF_ERROR(GetBytes(lenbuf, 4));
  std::memcpy(&len, lenbuf, 4);
  remaining_bytes_ -= 4;
  if (len > remaining_bytes_) {
    return Status::DataLoss("spill run truncated: record past end");
  }
  record->resize(len);
  WSQ_RETURN_IF_ERROR(GetBytes(record->data(), len));
  remaining_bytes_ -= len;
  --remaining_records_;
  file_->manager_->bytes_read_.fetch_add(4 + len,
                                         std::memory_order_relaxed);
  return true;
}

// --- SpillFile ---

SpillFile::~SpillFile() {
  // Release the device (close the file) before removing its path.
  disk_.reset();
  if (cleanup_) cleanup_();
  manager_->files_removed_.fetch_add(1, std::memory_order_relaxed);
  manager_->active_files_.fetch_sub(1, std::memory_order_relaxed);
}

// --- SpillManager ---

SpillManager::SpillManager(Options options)
    : options_(std::move(options)) {
  collector_id_ = MetricsRegistry::Global()->AddCollector(
      [this](MetricsEmitter* emitter) {
        SpillStats s = stats();
        emitter->EmitCounter("wsq_spill_files_created_total",
                             "Spill temp files created", {},
                             s.files_created);
        emitter->EmitCounter("wsq_spill_files_removed_total",
                             "Spill temp files removed", {},
                             s.files_removed);
        emitter->EmitCounter("wsq_spill_runs_total",
                             "Sorted runs written to spill files", {},
                             s.runs_written);
        emitter->EmitCounter("wsq_spill_write_bytes_total",
                             "Record bytes written to spill runs", {},
                             s.bytes_written);
        emitter->EmitCounter("wsq_spill_read_bytes_total",
                             "Record bytes read back from spill runs",
                             {}, s.bytes_read);
        emitter->EmitGauge("wsq_spill_active_files",
                           "Spill temp files currently alive", {},
                           static_cast<int64_t>(active_files()));
      });
}

SpillManager::~SpillManager() {
  MetricsRegistry::Global()->RemoveCollector(collector_id_);
}

Result<SpillManager::Device> SpillManager::NewDevice() {
  std::string dir = options_.dir.empty() ? DefaultSpillDir() : options_.dir;
  uint64_t id = next_file_id_.fetch_add(1, std::memory_order_relaxed);
  std::string path =
      StrFormat("%s/wsq_spill_%d_%llu.tmp", dir.c_str(),
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(id));
  // Scratch data wants checksums (DataLoss on a torn page), not
  // durability: kNone skips every fsync.
  WSQ_ASSIGN_OR_RETURN(std::unique_ptr<FileDiskManager> disk,
                       FileDiskManager::Open(path, SyncPolicy::kNone));
  Device device;
  device.disk = std::move(disk);
  device.cleanup = [path] { std::remove(path.c_str()); };
  return device;
}

Result<std::unique_ptr<SpillFile>> SpillManager::Create() {
  WSQ_ASSIGN_OR_RETURN(Device device, NewDevice());
  files_created_.fetch_add(1, std::memory_order_relaxed);
  active_files_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<SpillFile>(new SpillFile(
      this, std::move(device.disk), std::move(device.cleanup)));
}

SpillStats SpillManager::stats() const {
  SpillStats s;
  s.files_created = files_created_.load(std::memory_order_relaxed);
  s.files_removed = files_removed_.load(std::memory_order_relaxed);
  s.runs_written = runs_written_.load(std::memory_order_relaxed);
  s.records_written = records_written_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace wsq
