#ifndef WSQ_STORAGE_SERDE_H_
#define WSQ_STORAGE_SERDE_H_

#include <string>

#include "common/result.h"
#include "types/row.h"

namespace wsq {

/// Serializes a row to a compact byte string (tag + payload per value).
/// Placeholder values are rejected: incomplete tuples never reach storage.
Result<std::string> SerializeRow(const Row& row);

/// Parses a byte string produced by SerializeRow.
Result<Row> DeserializeRow(std::string_view bytes);

/// Spill variant: same format, but Placeholder values are allowed
/// (tagged with their CallId + field). Spill files are transient and
/// strictly in-process — a CallId is meaningful for the lifetime of
/// the query that spilled it — so incomplete tuples may round-trip
/// through a Sort/Aggregate run on disk. Never use for stored tables.
std::string SerializeSpillRow(const Row& row);

/// Parses a byte string produced by SerializeSpillRow.
Result<Row> DeserializeSpillRow(std::string_view bytes);

}  // namespace wsq

#endif  // WSQ_STORAGE_SERDE_H_
