#ifndef WSQ_STORAGE_SERDE_H_
#define WSQ_STORAGE_SERDE_H_

#include <string>

#include "common/result.h"
#include "types/row.h"

namespace wsq {

/// Serializes a row to a compact byte string (tag + payload per value).
/// Placeholder values are rejected: incomplete tuples never reach storage.
Result<std::string> SerializeRow(const Row& row);

/// Parses a byte string produced by SerializeRow.
Result<Row> DeserializeRow(std::string_view bytes);

}  // namespace wsq

#endif  // WSQ_STORAGE_SERDE_H_
