#include "storage/serde.h"

#include <cstring>

namespace wsq {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  std::memcpy(v, in->data(), 4);
  in->remove_prefix(4);
  return true;
}

bool GetU64(std::string_view* in, uint64_t* v) {
  if (in->size() < 8) return false;
  std::memcpy(v, in->data(), 8);
  in->remove_prefix(8);
  return true;
}

}  // namespace

Result<std::string> SerializeRow(const Row& row) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row.values()) {
    out.push_back(static_cast<char>(v.type()));
    switch (v.type()) {
      case TypeId::kNull:
        break;
      case TypeId::kInt64:
        PutU64(&out, static_cast<uint64_t>(v.AsInt()));
        break;
      case TypeId::kDouble: {
        uint64_t bits;
        double d = v.AsDouble();
        std::memcpy(&bits, &d, 8);
        PutU64(&out, bits);
        break;
      }
      case TypeId::kString:
        PutU32(&out, static_cast<uint32_t>(v.AsString().size()));
        out.append(v.AsString());
        break;
      case TypeId::kPlaceholder:
        return Status::Internal(
            "attempted to serialize an incomplete tuple (placeholder)");
    }
  }
  return out;
}

Result<Row> DeserializeRow(std::string_view bytes) {
  uint32_t n;
  if (!GetU32(&bytes, &n)) {
    return Status::IOError("corrupt row: missing arity");
  }
  Row row;
  for (uint32_t i = 0; i < n; ++i) {
    if (bytes.empty()) return Status::IOError("corrupt row: missing tag");
    TypeId tag = static_cast<TypeId>(bytes.front());
    bytes.remove_prefix(1);
    switch (tag) {
      case TypeId::kNull:
        row.Append(Value::Null());
        break;
      case TypeId::kInt64: {
        uint64_t v;
        if (!GetU64(&bytes, &v)) {
          return Status::IOError("corrupt row: truncated int");
        }
        row.Append(Value::Int(static_cast<int64_t>(v)));
        break;
      }
      case TypeId::kDouble: {
        uint64_t bits;
        if (!GetU64(&bytes, &bits)) {
          return Status::IOError("corrupt row: truncated double");
        }
        double d;
        std::memcpy(&d, &bits, 8);
        row.Append(Value::Real(d));
        break;
      }
      case TypeId::kString: {
        uint32_t len;
        if (!GetU32(&bytes, &len) || bytes.size() < len) {
          return Status::IOError("corrupt row: truncated string");
        }
        row.Append(Value::Str(std::string(bytes.substr(0, len))));
        bytes.remove_prefix(len);
        break;
      }
      default:
        return Status::IOError("corrupt row: bad type tag");
    }
  }
  if (!bytes.empty()) {
    return Status::IOError("corrupt row: trailing bytes");
  }
  return row;
}

}  // namespace wsq
