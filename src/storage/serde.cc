#include "storage/serde.h"

#include <cstring>

namespace wsq {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  std::memcpy(v, in->data(), 4);
  in->remove_prefix(4);
  return true;
}

bool GetU64(std::string_view* in, uint64_t* v) {
  if (in->size() < 8) return false;
  std::memcpy(v, in->data(), 8);
  in->remove_prefix(8);
  return true;
}

/// Shared encoder; `allow_placeholders` distinguishes the stored-table
/// format (incomplete tuples never reach storage) from the transient
/// spill format.
void SerializeRowTo(const Row& row, std::string* out) {
  PutU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row.values()) {
    out->push_back(static_cast<char>(v.type()));
    switch (v.type()) {
      case TypeId::kNull:
        break;
      case TypeId::kInt64:
        PutU64(out, static_cast<uint64_t>(v.AsInt()));
        break;
      case TypeId::kDouble: {
        uint64_t bits;
        double d = v.AsDouble();
        std::memcpy(&bits, &d, 8);
        PutU64(out, bits);
        break;
      }
      case TypeId::kString:
        PutU32(out, static_cast<uint32_t>(v.AsString().size()));
        out->append(v.AsString());
        break;
      case TypeId::kPlaceholder:
        PutU64(out, static_cast<uint64_t>(v.AsPlaceholder().call));
        PutU32(out, static_cast<uint32_t>(v.AsPlaceholder().field));
        break;
    }
  }
}

Result<Row> DeserializeRowImpl(std::string_view bytes,
                               bool allow_placeholders) {
  uint32_t n;
  if (!GetU32(&bytes, &n)) {
    return Status::IOError("corrupt row: missing arity");
  }
  Row row;
  for (uint32_t i = 0; i < n; ++i) {
    if (bytes.empty()) return Status::IOError("corrupt row: missing tag");
    TypeId tag = static_cast<TypeId>(bytes.front());
    bytes.remove_prefix(1);
    switch (tag) {
      case TypeId::kNull:
        row.Append(Value::Null());
        break;
      case TypeId::kInt64: {
        uint64_t v;
        if (!GetU64(&bytes, &v)) {
          return Status::IOError("corrupt row: truncated int");
        }
        row.Append(Value::Int(static_cast<int64_t>(v)));
        break;
      }
      case TypeId::kDouble: {
        uint64_t bits;
        if (!GetU64(&bytes, &bits)) {
          return Status::IOError("corrupt row: truncated double");
        }
        double d;
        std::memcpy(&d, &bits, 8);
        row.Append(Value::Real(d));
        break;
      }
      case TypeId::kString: {
        uint32_t len;
        if (!GetU32(&bytes, &len) || bytes.size() < len) {
          return Status::IOError("corrupt row: truncated string");
        }
        row.Append(Value::Str(std::string(bytes.substr(0, len))));
        bytes.remove_prefix(len);
        break;
      }
      case TypeId::kPlaceholder: {
        uint64_t call;
        uint32_t field;
        if (!allow_placeholders) {
          return Status::IOError("corrupt row: bad type tag");
        }
        if (!GetU64(&bytes, &call) || !GetU32(&bytes, &field)) {
          return Status::IOError("corrupt row: truncated placeholder");
        }
        row.Append(Value::Pending(static_cast<CallId>(call),
                                  static_cast<int32_t>(field)));
        break;
      }
      default:
        return Status::IOError("corrupt row: bad type tag");
    }
  }
  if (!bytes.empty()) {
    return Status::IOError("corrupt row: trailing bytes");
  }
  return row;
}

}  // namespace

Result<std::string> SerializeRow(const Row& row) {
  for (const Value& v : row.values()) {
    if (v.is_placeholder()) {
      return Status::Internal(
          "attempted to serialize an incomplete tuple (placeholder)");
    }
  }
  std::string out;
  SerializeRowTo(row, &out);
  return out;
}

Result<Row> DeserializeRow(std::string_view bytes) {
  return DeserializeRowImpl(bytes, /*allow_placeholders=*/false);
}

std::string SerializeSpillRow(const Row& row) {
  std::string out;
  SerializeRowTo(row, &out);
  return out;
}

Result<Row> DeserializeSpillRow(std::string_view bytes) {
  return DeserializeRowImpl(bytes, /*allow_placeholders=*/true);
}

}  // namespace wsq
