#ifndef WSQ_STORAGE_HEAP_FILE_H_
#define WSQ_STORAGE_HEAP_FILE_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace wsq {

/// An unordered collection of variable-length records stored in a linked
/// list of slotted pages.
///
/// Page layout:
///   [ next_page:int32 | num_slots:uint16 | free_end:uint16 |
///     slot[0] .. slot[n-1] | ... free ... | record data (grows down) ]
/// Each slot is {offset:uint16, length:uint16}; a deleted record keeps its
/// slot with offset == kTombstone.
class HeapFile {
 public:
  /// Wraps an existing file rooted at `first_page`, or an empty one when
  /// `first_page` is kInvalidPageId (the first insert allocates it).
  /// When reopening an existing chain the tail page is located lazily
  /// on the first insert.
  explicit HeapFile(BufferPool* pool, PageId first_page = kInvalidPageId)
      : pool_(pool),
        first_page_(first_page),
        last_page_(first_page),
        tail_known_(first_page == kInvalidPageId) {}

  /// Appends a record; returns its Rid.
  Result<Rid> Insert(std::string_view record);

  /// Fetches the record at `rid`.
  Result<std::string> Get(Rid rid) const;

  /// Tombstones the record at `rid`.
  Status Delete(Rid rid);

  /// Root page of the file; kInvalidPageId while empty.
  PageId first_page() const { return first_page_; }

  /// Number of live (non-deleted) records; O(pages).
  Result<int64_t> Count() const;

 private:
  friend class HeapFileScanner;

  /// Walks the page chain to locate the true tail after a reopen.
  Status ResolveTail();

  BufferPool* pool_;
  PageId first_page_;
  PageId last_page_;
  bool tail_known_;
};

/// Forward scan over all live records of a HeapFile.
class HeapFileScanner {
 public:
  explicit HeapFileScanner(const HeapFile* file);

  /// Advances to the next record. Returns false at end of file.
  /// On success fills `rid` and `record` (both may be null).
  Result<bool> Next(Rid* rid, std::string* record);

  /// Restarts the scan from the beginning.
  void Reset();

 private:
  const HeapFile* file_;
  PageId current_page_;
  uint16_t next_slot_ = 0;
};

}  // namespace wsq

#endif  // WSQ_STORAGE_HEAP_FILE_H_
