#ifndef WSQ_STORAGE_SPILL_H_
#define WSQ_STORAGE_SPILL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace wsq {

class SpillFile;
class SpillManager;

/// Counters exposed for tests, the \memory shell command, and the
/// wsq_spill_* metric series.
struct SpillStats {
  uint64_t files_created = 0;
  uint64_t files_removed = 0;
  uint64_t runs_written = 0;
  uint64_t records_written = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
};

/// Metadata for one sorted run inside a SpillFile. Kept in memory only:
/// spill files are transient scratch space for a single query — after a
/// crash there is nothing to recover, the query is gone.
struct SpillRun {
  PageId first_page = 0;
  uint64_t records = 0;
  /// Payload bytes (record bodies + their u32 length prefixes).
  uint64_t bytes = 0;
};

/// Appends length-prefixed records to a new run: a byte stream of
/// [u32 len][len bytes]... chunked into checksummed kPageDataSize page
/// payloads through the DiskManager layer. One writer at a time per
/// file; runs occupy consecutive pages.
class SpillWriter {
 public:
  explicit SpillWriter(SpillFile* file);

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  Status Append(std::string_view record);

  /// Flushes the final partial page and returns the run's metadata.
  /// The writer must not be used afterwards.
  Result<SpillRun> Finish();

 private:
  Status PutBytes(const char* data, size_t n);
  /// Records a flight-recorder spill_fail event on any write failure.
  Status FlushPage();
  Status FlushPageImpl();

  SpillFile* file_;
  char frame_[kPageSize];
  size_t frame_used_ = 0;  // payload bytes in frame_
  SpillRun run_;
  bool started_ = false;
  bool finished_ = false;
};

/// Streams the records of one run back, verifying page checksums as it
/// goes (a torn or bit-rotted spill page surfaces as Status::DataLoss,
/// failing the query cleanly instead of returning wrong rows).
class SpillReader {
 public:
  SpillReader(SpillFile* file, const SpillRun& run);

  SpillReader(const SpillReader&) = delete;
  SpillReader& operator=(const SpillReader&) = delete;

  /// Next record into `record`; false at end of run.
  Result<bool> Next(std::string* record);

 private:
  Status GetBytes(char* out, size_t n);

  SpillFile* file_;
  SpillRun run_;
  char frame_[kPageSize];
  size_t frame_offset_ = kPageDataSize;  // exhausted → read next page
  PageId next_page_;
  uint64_t remaining_bytes_;
  uint64_t remaining_records_;
};

/// One temp spill device (by default a FileDiskManager over a
/// self-deleting temp file). Destruction removes the backing file, so
/// error paths can never leak scratch space: the operator's unique_ptr
/// going out of scope IS the cleanup.
class SpillFile {
 public:
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  DiskManager* disk() { return disk_.get(); }

 private:
  friend class SpillManager;
  friend class SpillWriter;
  friend class SpillReader;

  SpillFile(SpillManager* manager, std::unique_ptr<DiskManager> disk,
            std::function<void()> cleanup)
      : manager_(manager),
        disk_(std::move(disk)),
        cleanup_(std::move(cleanup)) {}

  SpillManager* manager_;
  std::unique_ptr<DiskManager> disk_;
  std::function<void()> cleanup_;
};

/// Factory + ledger for a database's spill scratch files. The default
/// backend is FileDiskManager (SyncPolicy::kNone — scratch data needs
/// checksums, not durability) over `$TMPDIR`; tests subclass NewDevice
/// to run spills on an InMemoryDiskManager or behind the PR 2
/// fault-injection harness.
class SpillManager {
 public:
  struct Options {
    /// Directory for temp files; empty = $TMPDIR, falling back to /tmp.
    std::string dir;
  };

  SpillManager() : SpillManager(Options{}) {}
  explicit SpillManager(Options options);
  virtual ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Creates a fresh, empty spill device.
  Result<std::unique_ptr<SpillFile>> Create();

  SpillStats stats() const;
  /// Spill files currently alive (0 after every query has torn down:
  /// the leak check the chaos suite asserts on).
  size_t active_files() const {
    return active_files_.load(std::memory_order_relaxed);
  }

 protected:
  struct Device {
    std::unique_ptr<DiskManager> disk;
    /// Invoked on SpillFile destruction (removes the backing file).
    std::function<void()> cleanup;
  };

  /// Seam for the crash harness: override to back spills with a
  /// FaultInjectingDiskManager or an in-memory store.
  virtual Result<Device> NewDevice();

 private:
  friend class SpillFile;
  friend class SpillWriter;
  friend class SpillReader;

  Options options_;
  std::atomic<uint64_t> next_file_id_{1};
  std::atomic<size_t> active_files_{0};
  std::atomic<uint64_t> files_created_{0};
  std::atomic<uint64_t> files_removed_{0};
  std::atomic<uint64_t> runs_written_{0};
  std::atomic<uint64_t> records_written_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> bytes_read_{0};
  /// Metrics-registry collector handle, removed in the destructor.
  uint64_t collector_id_ = 0;
};

}  // namespace wsq

#endif  // WSQ_STORAGE_SPILL_H_
