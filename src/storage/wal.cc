#include "storage/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/macros.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/checksum.h"

namespace wsq {

namespace {

constexpr uint32_t kWalMagic = 0x4C415751;  // "QWAL"
constexpr uint16_t kWalVersion = 1;
constexpr size_t kWalHeaderSize = 8;

constexpr uint8_t kRecordPageImage = 1;
constexpr uint8_t kRecordCommit = 2;

void AppendU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), 2);
}
void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}

std::string WalFileHeader() {
  std::string header;
  AppendU32(&header, kWalMagic);
  AppendU16(&header, kWalVersion);
  AppendU16(&header, 0);
  return header;
}

/// Appends the record's CRC (over all of `record` so far).
void SealRecord(std::string* record) {
  AppendU32(record, Crc32c(record->data(), record->size()));
}

}  // namespace

// --- FileWalStorage ------------------------------------------------------

FileWalStorage::FileWalStorage(std::string path, SyncPolicy sync)
    : path_(std::move(path)), sync_(sync) {}

FileWalStorage::~FileWalStorage() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileWalStorage::EnsureOpen() {
  if (file_ != nullptr) return Status::OK();
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open WAL " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<bool> FileWalStorage::Exists() {
  MutexLock lock(&mu_);
  if (file_ != nullptr) return true;
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

Result<std::string> FileWalStorage::ReadAll() {
  MutexLock lock(&mu_);
  if (file_ != nullptr && std::fflush(file_) != 0) {
    return Status::IOError("flush of WAL " + path_ + " failed");
  }
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return std::string();
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::IOError("read of WAL " + path_ + " failed");
  }
  return bytes;
}

Status FileWalStorage::Append(std::string_view bytes) {
  MutexLock lock(&mu_);
  WSQ_RETURN_IF_ERROR(EnsureOpen());
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IOError("short append to WAL " + path_);
  }
  return Status::OK();
}

Status FileWalStorage::Sync() {
  MutexLock lock(&mu_);
  if (file_ == nullptr || sync_ == SyncPolicy::kNone) return Status::OK();
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush of WAL " + path_ + " failed: " +
                           std::strerror(errno));
  }
  if (sync_ == SyncPolicy::kFull && ::fsync(fileno(file_)) != 0) {
    return Status::IOError("fsync of WAL " + path_ + " failed: " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status FileWalStorage::Reset() {
  MutexLock lock(&mu_);
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0) {
      file_ = nullptr;
      return Status::IOError("close of WAL " + path_ + " failed");
    }
    file_ = nullptr;
  }
  if (std::remove(path_.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("remove of WAL " + path_ + " failed: " +
                           std::strerror(errno));
  }
  return Status::OK();
}

// --- InMemoryWalStorage --------------------------------------------------

Result<bool> InMemoryWalStorage::Exists() {
  MutexLock lock(&mu_);
  return !bytes_.empty();
}

Result<std::string> InMemoryWalStorage::ReadAll() {
  MutexLock lock(&mu_);
  return bytes_;
}

Status InMemoryWalStorage::Append(std::string_view bytes) {
  MutexLock lock(&mu_);
  bytes_.append(bytes);
  return Status::OK();
}

Status InMemoryWalStorage::Sync() { return Status::OK(); }

Status InMemoryWalStorage::Reset() {
  MutexLock lock(&mu_);
  bytes_.clear();
  return Status::OK();
}

// --- LogWriter -----------------------------------------------------------

namespace {

/// WAL volume counters. LogWriter holds no lock, so the registry call
/// in the function-local static initializer is safe here.
Counter* WalAppendCounter() {
  static Counter* c = MetricsRegistry::Global()->GetCounter(
      "wsq_wal_page_images_total", "Full-page images appended to the WAL");
  return c;
}

Counter* WalBytesCounter() {
  static Counter* c = MetricsRegistry::Global()->GetCounter(
      "wsq_wal_appended_bytes_total", "Bytes appended to the WAL");
  return c;
}

Counter* WalCommitCounter() {
  static Counter* c = MetricsRegistry::Global()->GetCounter(
      "wsq_wal_commits_total", "Checkpoint commit records synced");
  return c;
}

}  // namespace

Status LogWriter::AppendPageImage(PageId page_id, const char* frame) {
  if (!wrote_header_) {
    WSQ_RETURN_IF_ERROR(wal_->Append(WalFileHeader()));
    wrote_header_ = true;
  }
  std::string record;
  record.reserve(1 + 4 + 4 + kPageSize + 4);
  record.push_back(static_cast<char>(kRecordPageImage));
  AppendU32(&record, static_cast<uint32_t>(page_id));
  AppendU32(&record, static_cast<uint32_t>(kPageSize));
  record.append(frame, kPageSize);
  SealRecord(&record);
  if (Counter* c = WalAppendCounter()) c->Increment();
  if (Counter* c = WalBytesCounter()) c->Add(record.size());
  if (Tracer* tracer = Tracer::CurrentThread()) {
    tracer->Event("wal", "append_page",
                  StrFormat("page=%d bytes=%zu", page_id, record.size()));
  }
  return wal_->Append(record);
}

Status LogWriter::Commit(uint32_t page_count) {
  if (!wrote_header_) {
    WSQ_RETURN_IF_ERROR(wal_->Append(WalFileHeader()));
    wrote_header_ = true;
  }
  std::string record;
  record.push_back(static_cast<char>(kRecordCommit));
  AppendU32(&record, page_count);
  SealRecord(&record);
  WSQ_RETURN_IF_ERROR(wal_->Append(record));
  if (Tracer* tracer = Tracer::CurrentThread()) {
    Tracer::Scope span(tracer, "wal", "commit");
    span.AppendDetail(StrFormat("pages=%u", page_count));
    Status synced = wal_->Sync();
    if (synced.ok() && WalCommitCounter() != nullptr) {
      WalCommitCounter()->Increment();
    }
    return synced;
  }
  Status synced = wal_->Sync();
  if (synced.ok() && WalCommitCounter() != nullptr) {
    WalCommitCounter()->Increment();
  }
  return synced;
}

// --- LogReader -----------------------------------------------------------

namespace {

/// Bounds-checked little-endian cursor over the log bytes.
class WalCursor {
 public:
  explicit WalCursor(std::string_view bytes) : bytes_(bytes) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  bool ReadU8(uint8_t* v) { return ReadRaw(v, 1); }
  bool ReadU16(uint16_t* v) { return ReadRaw(v, 2); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, 4); }
  bool ReadBytes(std::string* out, size_t n) {
    if (remaining() < n) return false;
    out->assign(bytes_.substr(pos_, n));
    pos_ += n;
    return true;
  }
  std::string_view Span(size_t from) const {
    return bytes_.substr(from, pos_ - from);
  }

 private:
  bool ReadRaw(void* v, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(v, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

ParsedWal LogReader::Parse(std::string_view bytes) {
  ParsedWal out;
  WalCursor cur(bytes);

  uint32_t magic;
  uint16_t version, reserved;
  if (!cur.ReadU32(&magic) || !cur.ReadU16(&version) ||
      !cur.ReadU16(&reserved)) {
    out.torn_reason = "log shorter than its header";
    return out;
  }
  if (magic != kWalMagic) {
    out.torn_reason = "bad log magic";
    return out;
  }
  if (version != kWalVersion) {
    out.torn_reason = StrFormat("unsupported log version %u", version);
    return out;
  }

  while (cur.remaining() > 0) {
    size_t record_start = cur.pos();
    uint8_t type;
    if (!cur.ReadU8(&type)) {
      out.torn_reason = "truncated record type";
      return out;
    }
    if (type == kRecordPageImage) {
      uint32_t page_id, len;
      std::string frame;
      uint32_t stored_crc;
      if (!cur.ReadU32(&page_id) || !cur.ReadU32(&len) ||
          len != kPageSize || !cur.ReadBytes(&frame, len)) {
        out.torn_reason =
            StrFormat("truncated page record at offset %zu", record_start);
        return out;
      }
      std::string_view body = cur.Span(record_start);
      if (!cur.ReadU32(&stored_crc) ||
          stored_crc != Crc32c(body.data(), body.size())) {
        out.torn_reason = StrFormat(
            "bad CRC on page record at offset %zu", record_start);
        return out;
      }
      WalPageImage image;
      image.page_id = static_cast<PageId>(page_id);
      image.frame = std::move(frame);
      out.pages.push_back(std::move(image));
    } else if (type == kRecordCommit) {
      uint32_t page_count, stored_crc;
      if (!cur.ReadU32(&page_count)) {
        out.torn_reason = "truncated commit record";
        return out;
      }
      std::string_view body = cur.Span(record_start);
      if (!cur.ReadU32(&stored_crc) ||
          stored_crc != Crc32c(body.data(), body.size())) {
        out.torn_reason = "bad CRC on commit record";
        return out;
      }
      if (page_count != out.pages.size()) {
        out.torn_reason = StrFormat(
            "commit names %u pages but log holds %zu", page_count,
            out.pages.size());
        return out;
      }
      // Commit wins; bytes past it (from a crashed later append) are
      // irrelevant.
      out.committed = true;
      return out;
    } else {
      out.torn_reason =
          StrFormat("unknown record type %u at offset %zu", type,
                    record_start);
      return out;
    }
  }
  out.torn_reason = "log ends without a commit record";
  return out;
}

// --- RecoverCheckpoint ---------------------------------------------------

Result<WalRecoveryResult> RecoverCheckpoint(WalStorage* wal,
                                            DiskManager* disk) {
  WalRecoveryResult result;
  WSQ_ASSIGN_OR_RETURN(bool exists, wal->Exists());
  if (!exists) return result;
  WSQ_ASSIGN_OR_RETURN(std::string bytes, wal->ReadAll());
  if (bytes.empty()) {
    WSQ_RETURN_IF_ERROR(wal->Reset());
    return result;
  }

  ParsedWal parsed = LogReader::Parse(bytes);
  if (!parsed.committed) {
    // The crash happened before the commit point, so the database file
    // was never touched: discard and run with the pre-checkpoint state.
    WSQ_RETURN_IF_ERROR(wal->Reset());
    result.action = WalRecoveryAction::kDiscarded;
    result.detail = parsed.torn_reason;
    return result;
  }

  // Committed: redo every page image (idempotent — a crash mid-replay
  // just replays again on the next open).
  for (const WalPageImage& image : parsed.pages) {
    while (disk->NumPages() <= image.page_id) {
      WSQ_RETURN_IF_ERROR(disk->AllocatePage().status());
    }
    WSQ_RETURN_IF_ERROR(disk->WritePage(image.page_id, image.frame.data()));
  }
  WSQ_RETURN_IF_ERROR(disk->Sync());
  WSQ_RETURN_IF_ERROR(wal->Reset());
  result.action = WalRecoveryAction::kReplayed;
  result.pages_replayed = parsed.pages.size();
  return result;
}

}  // namespace wsq
