#include "storage/buffer_pool.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wsq {

BufferPool::BufferPool(size_t pool_size, DiskManager* disk) : disk_(disk) {
  if (pool_size == 0) pool_size = 1;
  frames_.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    frames_.push_back(std::make_unique<Page>());
    free_frames_.push_back(pool_size - 1 - i);
  }
  collector_id_ = MetricsRegistry::Global()->AddCollector(
      [this](MetricsEmitter* emitter) {
        BufferPoolStats s;
        size_t resident;
        {
          MutexLock lock(&mu_);
          s = stats_;
          resident = page_table_.size();
        }
        emitter->EmitCounter("wsq_buffer_pool_hits_total",
                             "Page fetches served from memory", {}, s.hits);
        emitter->EmitCounter("wsq_buffer_pool_misses_total",
                             "Page fetches that read from disk", {},
                             s.misses);
        emitter->EmitCounter("wsq_buffer_pool_evictions_total",
                             "Resident pages evicted by LRU", {},
                             s.evictions);
        emitter->EmitCounter("wsq_buffer_pool_flushes_total",
                             "Dirty pages written back to disk", {},
                             s.flushes);
        emitter->EmitCounter("wsq_buffer_pool_flush_failures_total",
                             "Dirty-page write-backs that failed", {},
                             s.flush_failures);
        emitter->EmitCounter(
            "wsq_buffer_pool_pressure_shed_total",
            "Clean pages shed by a memory-budget pressure callback", {},
            s.pressure_shed);
        emitter->EmitGauge("wsq_buffer_pool_resident_pages",
                           "Pages currently resident", {},
                           static_cast<int64_t>(resident));
        emitter->EmitGauge("wsq_buffer_pool_frames",
                           "Total frames in the pool", {},
                           static_cast<int64_t>(frames_.size()));
      });
}

BufferPool::~BufferPool() {
  MetricsRegistry::Global()->RemoveCollector(collector_id_);
  // Destructors can't propagate errors; failures were already counted
  // in stats_.flush_failures and the pages stay dirty in a dead pool.
  WSQ_IGNORE_STATUS(FlushAll());
  if (budget_ != nullptr) {
    budget_->RemovePressureHook(pressure_hook_id_);
    MutexLock lock(&mu_);
    budget_->Release(page_table_.size() * kPageSize);
  }
}

void BufferPool::AttachBudget(MemoryBudget* budget) {
  {
    MutexLock lock(&mu_);
    budget_ = budget;
    budget_->ForceReserve(page_table_.size() * kPageSize);
  }
  pressure_hook_id_ = budget->AddPressureHook(
      [this](size_t wanted) { return ShedCleanPages(wanted); });
}

size_t BufferPool::ShedCleanPages(size_t wanted) {
  MutexLock lock(&mu_);
  size_t freed = 0;
  // Walk LRU order (front = coldest). Collect victims first: erasing
  // from lru_ invalidates the iteration.
  std::vector<size_t> victims;
  for (size_t frame : lru_) {
    if (victims.size() * kPageSize >= wanted) break;
    Page* page = frames_[frame].get();
    if (page->pin_count_ == 0 && !page->is_dirty_) victims.push_back(frame);
  }
  for (size_t frame : victims) {
    Page* page = frames_[frame].get();
    page_table_.erase(page->page_id_);
    auto pos = lru_pos_.find(frame);
    if (pos != lru_pos_.end()) {
      lru_.erase(pos->second);
      lru_pos_.erase(pos);
    }
    page->Reset();
    free_frames_.push_back(frame);
    ++stats_.evictions;
    ++stats_.pressure_shed;
    if (budget_ != nullptr) budget_->Release(kPageSize);
    freed += kPageSize;
  }
  return freed;
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  MutexLock lock(&mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    Page* page = frames_[it->second].get();
    ++page->pin_count_;
    Touch(it->second);
    return page;
  }
  ++stats_.misses;
  if (Tracer* tracer = Tracer::CurrentThread()) {
    // Attributes the disk read to the query running on this thread
    // (operators have no storage handle to thread a tracer through).
    tracer->Event("storage", "page_miss",
                  StrFormat("page=%d", page_id));
  }
  WSQ_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame());
  Page* page = frames_[frame].get();
  WSQ_RETURN_IF_ERROR(disk_->ReadPage(page_id, page->data_));
  page->page_id_ = page_id;
  page->pin_count_ = 1;
  page->is_dirty_ = false;
  page_table_[page_id] = frame;
  if (budget_ != nullptr) budget_->ForceReserve(kPageSize);
  Touch(frame);
  return page;
}

Result<Page*> BufferPool::NewPage() {
  MutexLock lock(&mu_);
  WSQ_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  WSQ_ASSIGN_OR_RETURN(size_t frame, GetVictimFrame());
  Page* page = frames_[frame].get();
  page->Reset();
  page->page_id_ = page_id;
  page->pin_count_ = 1;
  page->is_dirty_ = true;
  page_table_[page_id] = frame;
  if (budget_ != nullptr) budget_->ForceReserve(kPageSize);
  Touch(frame);
  return page;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  MutexLock lock(&mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound(StrFormat("unpin of non-resident page %d",
                                      page_id));
  }
  Page* page = frames_[it->second].get();
  if (page->pin_count_ <= 0) {
    return Status::Internal(StrFormat("unpin of unpinned page %d", page_id));
  }
  --page->pin_count_;
  if (dirty) page->is_dirty_ = true;
  return Status::OK();
}

Status BufferPool::FlushPage(PageId page_id) {
  MutexLock lock(&mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::OK();
  Page* page = frames_[it->second].get();
  if (page->is_dirty_) {
    Status s = disk_->WritePage(page_id, page->data_);
    if (!s.ok()) {
      ++stats_.flush_failures;
      return s;
    }
    page->is_dirty_ = false;
    ++stats_.flushes;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  MutexLock lock(&mu_);
  Status first_error;
  for (const auto& [page_id, frame] : page_table_) {
    Page* page = frames_[frame].get();
    if (!page->is_dirty_) continue;
    Status s = disk_->WritePage(page_id, page->data_);
    if (!s.ok()) {
      // Keep going: one bad page must not strand every other dirty
      // page in memory. The failed page stays dirty for a retry.
      ++stats_.flush_failures;
      if (first_error.ok()) first_error = s;
      continue;
    }
    page->is_dirty_ = false;
    ++stats_.flushes;
  }
  return first_error;
}

std::vector<std::pair<PageId, std::string>> BufferPool::DirtyPageImages()
    const {
  MutexLock lock(&mu_);
  std::vector<std::pair<PageId, std::string>> images;
  for (const auto& [page_id, frame] : page_table_) {
    const Page* page = frames_[frame].get();
    if (page->is_dirty_) {
      images.emplace_back(page_id, std::string(page->data_, kPageSize));
    }
  }
  std::sort(images.begin(), images.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return images;
}

BufferPoolStats BufferPool::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

size_t BufferPool::resident_pages() const {
  MutexLock lock(&mu_);
  return page_table_.size();
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  // Evict the least recently used unpinned page.
  for (size_t frame : lru_) {
    Page* page = frames_[frame].get();
    if (page->pin_count_ == 0) {
      if (page->is_dirty_) {
        Status s = disk_->WritePage(page->page_id_, page->data_);
        if (!s.ok()) {
          ++stats_.flush_failures;
          return s;
        }
        ++stats_.flushes;
      }
      ++stats_.evictions;
      page_table_.erase(page->page_id_);
      if (budget_ != nullptr) budget_->Release(kPageSize);
      auto pos = lru_pos_.find(frame);
      if (pos != lru_pos_.end()) {
        lru_.erase(pos->second);
        lru_pos_.erase(pos);
      }
      page->Reset();
      return frame;
    }
  }
  return Status::ResourceExhausted(
      "buffer pool exhausted: all pages pinned");
}

void BufferPool::Touch(size_t frame) {
  auto pos = lru_pos_.find(frame);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
  }
  lru_.push_back(frame);
  lru_pos_[frame] = std::prev(lru_.end());
}

}  // namespace wsq
