#ifndef WSQ_STORAGE_CHECKSUM_H_
#define WSQ_STORAGE_CHECKSUM_H_

#include <cstdint>
#include <cstddef>

#include "common/status.h"
#include "storage/page.h"

namespace wsq {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
/// used by the on-disk page format and the write-ahead log.
uint32_t Crc32c(const void* data, size_t n);

/// Streaming form: feeds `n` more bytes into a running checksum, so a
/// CRC can cover discontiguous ranges (e.g. a page frame with its crc
/// field skipped). Chain as:
///   uint32_t c = ExtendCrc32c(kCrc32cInit, a, na);
///   c = ExtendCrc32c(c, b, nb);
///   uint32_t crc = FinishCrc32c(c);
inline constexpr uint32_t kCrc32cInit = 0xFFFFFFFFu;
uint32_t ExtendCrc32c(uint32_t state, const void* data, size_t n);
inline uint32_t FinishCrc32c(uint32_t state) { return state ^ 0xFFFFFFFFu; }

/// On-disk page header field offsets within a kPageSize frame (layout
/// documented at kPageHeaderSize in page.h).
inline constexpr uint32_t kPageMagic = 0x57535150;  // "PQSW" LE → 'WSQP'
inline constexpr uint16_t kPageFormatVersion = 1;
inline constexpr size_t kPageCrcOffset = 12;

/// CRC over the whole frame with the crc field treated as zero.
uint32_t ComputePageCrc(const char* frame);

/// Writes a valid header (magic, version, page id, LSN, CRC over the
/// current payload) into the first kPageHeaderSize bytes of `frame`.
void StampPageHeader(PageId page_id, uint64_t lsn, char* frame);

/// Checks magic, format version, stored page id, and CRC of `frame`.
/// Returns Status::DataLoss describing the first mismatch.
Status VerifyPageHeader(PageId page_id, const char* frame);

/// The LSN stamped into `frame`'s header (0 for an unstamped frame).
uint64_t PageHeaderLsn(const char* frame);

}  // namespace wsq

#endif  // WSQ_STORAGE_CHECKSUM_H_
