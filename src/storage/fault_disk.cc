#include "storage/fault_disk.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "common/strings.h"
#include "storage/checksum.h"

namespace wsq {

namespace {

/// SplitMix64 finalizer: stable across runs so fault decisions
/// reproduce from (seed, page id) alone.
uint64_t StableMix(uint64_t seed, uint64_t value) {
  uint64_t h = seed ^ (value * 0x9e3779b97f4a7c15ull);
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

double UnitFromHash(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Status PowerLossError() {
  return Status::IOError("simulated power loss: device offline");
}

}  // namespace

// --- FaultController -----------------------------------------------------

FaultController::FaultController(DiskFaultPlan plan) : plan_(plan) {}

FaultController::Action FaultController::BeginMutation() {
  MutexLock lock(&mu_);
  if (crashed_) {
    ++stats_.failed_ops;
    return Action::kFail;
  }
  uint64_t op = ++stats_.ops;
  if (plan_.crash_at_op != 0 && op == plan_.crash_at_op) {
    crashed_ = true;
    ++crash_epoch_;
    stats_.crashed = true;
    ++stats_.failed_ops;
    return Action::kCrash;
  }
  if (plan_.fail_at_op != 0 && op == plan_.fail_at_op) {
    ++stats_.failed_ops;
    return Action::kFail;
  }
  return Action::kOk;
}

bool FaultController::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

void FaultController::Recover() {
  MutexLock lock(&mu_);
  crashed_ = false;
}

uint64_t FaultController::crash_epoch() const {
  MutexLock lock(&mu_);
  return crash_epoch_;
}

void FaultController::set_plan(DiskFaultPlan plan) {
  MutexLock lock(&mu_);
  plan_ = plan;
}

DiskFaultPlan FaultController::plan() const {
  MutexLock lock(&mu_);
  return plan_;
}

DiskFaultStats FaultController::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

bool FaultController::ShouldFlipBit(PageId page_id, size_t* bit) {
  MutexLock lock(&mu_);
  ++stats_.reads;
  if (plan_.read_bit_flip_rate <= 0.0) return false;
  uint64_t h = StableMix(plan_.seed ^ 0xb17f11b5ull,
                         static_cast<uint64_t>(page_id));
  if (UnitFromHash(h) >= plan_.read_bit_flip_rate) return false;
  ++stats_.bit_flips;
  *bit = static_cast<size_t>(h >> 17) % (kPageSize * 8);
  return true;
}

int64_t FaultController::torn_bytes() const {
  MutexLock lock(&mu_);
  return plan_.torn_bytes;
}

// --- FaultInjectingDiskManager -------------------------------------------

FaultInjectingDiskManager::FaultInjectingDiskManager(DiskManager* durable,
                                                     FaultController* ctl)
    : durable_(durable), ctl_(ctl), num_pages_(durable->NumPages()) {}

/// Epoch watch: drops volatile state once per crash.
void FaultInjectingDiskManager::DropOnNewEpochLocked() {
  uint64_t epoch = ctl_->crash_epoch();
  if (epoch != seen_crash_epoch_) {
    overlay_.clear();
    num_pages_ = durable_->NumPages();
    seen_crash_epoch_ = epoch;
  }
}

Status FaultInjectingDiskManager::ReadPage(PageId page_id, char* out) {
  MutexLock lock(&mu_);
  DropOnNewEpochLocked();
  if (ctl_->crashed()) return PowerLossError();
  if (page_id < 0 || page_id >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("read of unallocated page %d", page_id));
  }
  auto it = overlay_.find(page_id);
  if (it != overlay_.end()) {
    std::memcpy(out, it->second.data(), kPageSize);
  } else {
    WSQ_RETURN_IF_ERROR(durable_->ReadPage(page_id, out));
  }
  size_t bit;
  if (ctl_->ShouldFlipBit(page_id, &bit)) {
    out[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  }
  return VerifyPageHeader(page_id, out);
}

Status FaultInjectingDiskManager::WritePage(PageId page_id,
                                            const char* data) {
  MutexLock lock(&mu_);
  DropOnNewEpochLocked();
  if (ctl_->crashed()) return PowerLossError();
  if (page_id < 0 || page_id >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("write of unallocated page %d", page_id));
  }
  char frame[kPageSize];
  std::memcpy(frame, data, kPageSize);
  StampPageHeader(page_id, next_lsn_++, frame);
  switch (ctl_->BeginMutation()) {
    case FaultController::Action::kFail:
      return Status::IOError(
          StrFormat("injected failure writing page %d", page_id));
    case FaultController::Action::kCrash:
      return CrashNow(page_id, frame);
    case FaultController::Action::kOk:
      break;
  }
  overlay_[page_id].assign(frame, kPageSize);
  return Status::OK();
}

Result<PageId> FaultInjectingDiskManager::AllocatePage() {
  MutexLock lock(&mu_);
  DropOnNewEpochLocked();
  if (ctl_->crashed()) return PowerLossError();
  char frame[kPageSize];
  std::memset(frame, 0, kPageSize);
  StampPageHeader(num_pages_, next_lsn_++, frame);
  switch (ctl_->BeginMutation()) {
    case FaultController::Action::kFail:
      return Status::IOError("injected failure extending the file");
    case FaultController::Action::kCrash:
      return CrashNow(kInvalidPageId, nullptr);
    case FaultController::Action::kOk:
      break;
  }
  overlay_[num_pages_].assign(frame, kPageSize);
  return num_pages_++;
}

PageId FaultInjectingDiskManager::NumPages() const {
  MutexLock lock(&mu_);
  // A crash may not have been observed by a mutating call yet; report
  // the durable truth in that case.
  if (ctl_->crash_epoch() != seen_crash_epoch_) {
    return durable_->NumPages();
  }
  return num_pages_;
}

Status FaultInjectingDiskManager::Sync() {
  MutexLock lock(&mu_);
  DropOnNewEpochLocked();
  if (ctl_->crashed()) return PowerLossError();
  switch (ctl_->BeginMutation()) {
    case FaultController::Action::kFail:
      return Status::IOError("injected sync failure");
    case FaultController::Action::kCrash:
      return CrashNow(kInvalidPageId, nullptr);
    case FaultController::Action::kOk:
      break;
  }
  for (const auto& [page_id, frame] : overlay_) {
    while (durable_->NumPages() <= page_id) {
      WSQ_RETURN_IF_ERROR(durable_->AllocatePage().status());
    }
    WSQ_RETURN_IF_ERROR(durable_->WritePage(page_id, frame.data()));
  }
  WSQ_RETURN_IF_ERROR(durable_->Sync());
  overlay_.clear();
  return Status::OK();
}

size_t FaultInjectingDiskManager::unsynced_pages() const {
  MutexLock lock(&mu_);
  return overlay_.size();
}

Status FaultInjectingDiskManager::CrashNow(PageId torn_page,
                                           const char* torn_frame) {
  // Power loss: un-synced writes vanish, except that the crashing
  // write may leave a torn prefix on a page that already exists
  // durably (mirroring a partial sector write).
  int64_t keep = ctl_->torn_bytes();
  if (keep > 0 && torn_frame != nullptr && torn_page >= 0 &&
      torn_page < durable_->NumPages()) {
    char merged[kPageSize];
    if (durable_->ReadPage(torn_page, merged).ok()) {
      size_t n = std::min<size_t>(static_cast<size_t>(keep), kPageSize);
      std::memcpy(merged, torn_frame, n);
      WSQ_IGNORE_STATUS(durable_->WritePage(torn_page, merged));
    }
  }
  overlay_.clear();
  num_pages_ = durable_->NumPages();
  seen_crash_epoch_ = ctl_->crash_epoch();
  return PowerLossError();
}

// --- FaultInjectingWalStorage --------------------------------------------

FaultInjectingWalStorage::FaultInjectingWalStorage(WalStorage* durable,
                                                   FaultController* ctl)
    : durable_(durable), ctl_(ctl) {}

/// Epoch watch: drops the volatile tail once per crash.
void FaultInjectingWalStorage::DropOnNewEpochLocked() {
  uint64_t epoch = ctl_->crash_epoch();
  if (epoch != seen_crash_epoch_) {
    volatile_.clear();
    seen_crash_epoch_ = epoch;
  }
}

Result<bool> FaultInjectingWalStorage::Exists() {
  MutexLock lock(&mu_);
  DropOnNewEpochLocked();
  WSQ_ASSIGN_OR_RETURN(bool durable_exists, durable_->Exists());
  return durable_exists || !volatile_.empty();
}

Result<std::string> FaultInjectingWalStorage::ReadAll() {
  MutexLock lock(&mu_);
  DropOnNewEpochLocked();
  WSQ_ASSIGN_OR_RETURN(std::string bytes, durable_->ReadAll());
  bytes += volatile_;
  return bytes;
}

Status FaultInjectingWalStorage::Append(std::string_view bytes) {
  MutexLock lock(&mu_);
  DropOnNewEpochLocked();
  if (ctl_->crashed()) return PowerLossError();
  switch (ctl_->BeginMutation()) {
    case FaultController::Action::kFail:
      return Status::IOError("injected failure appending to the log");
    case FaultController::Action::kCrash: {
      // Torn append: a prefix of this record may still reach the
      // durable log; everything un-synced before it is gone.
      int64_t keep = ctl_->torn_bytes();
      if (keep > 0) {
        size_t n = std::min<size_t>(static_cast<size_t>(keep),
                                    bytes.size());
        WSQ_IGNORE_STATUS(durable_->Append(bytes.substr(0, n)));
        WSQ_IGNORE_STATUS(durable_->Sync());
      }
      volatile_.clear();
      seen_crash_epoch_ = ctl_->crash_epoch();
      return PowerLossError();
    }
    case FaultController::Action::kOk:
      break;
  }
  volatile_.append(bytes);
  return Status::OK();
}

Status FaultInjectingWalStorage::Sync() {
  MutexLock lock(&mu_);
  DropOnNewEpochLocked();
  if (ctl_->crashed()) return PowerLossError();
  switch (ctl_->BeginMutation()) {
    case FaultController::Action::kFail:
      return Status::IOError("injected log sync failure");
    case FaultController::Action::kCrash:
      volatile_.clear();
      seen_crash_epoch_ = ctl_->crash_epoch();
      return PowerLossError();
    case FaultController::Action::kOk:
      break;
  }
  if (!volatile_.empty()) {
    WSQ_RETURN_IF_ERROR(durable_->Append(volatile_));
    volatile_.clear();
  }
  return durable_->Sync();
}

Status FaultInjectingWalStorage::Reset() {
  MutexLock lock(&mu_);
  DropOnNewEpochLocked();
  if (ctl_->crashed()) return PowerLossError();
  switch (ctl_->BeginMutation()) {
    case FaultController::Action::kFail:
      return Status::IOError("injected log reset failure");
    case FaultController::Action::kCrash:
      volatile_.clear();
      seen_crash_epoch_ = ctl_->crash_epoch();
      return PowerLossError();
    case FaultController::Action::kOk:
      break;
  }
  volatile_.clear();
  return durable_->Reset();
}

size_t FaultInjectingWalStorage::unsynced_bytes() const {
  MutexLock lock(&mu_);
  return volatile_.size();
}

}  // namespace wsq
