#ifndef WSQ_STORAGE_BUFFER_POOL_H_
#define WSQ_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/memory.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace wsq {

/// Counters exposed for tests and the micro benchmarks.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t flushes = 0;
  /// Dirty-page write-backs that failed (flush, eviction, FlushAll).
  uint64_t flush_failures = 0;
  /// Clean resident pages dropped by a MemoryBudget pressure callback
  /// (a subset of `evictions`).
  uint64_t pressure_shed = 0;
};

/// Page cache with LRU replacement over a DiskManager.
///
/// The paper's substrate ("Redbase ... includes a page-level buffer") is
/// reproduced here. Pinned pages are never evicted; fetching more pinned
/// pages than the pool has frames is an error.
class BufferPool {
 public:
  /// `pool_size` is the number of frames; must be >= 1.
  BufferPool(size_t pool_size, DiskManager* disk);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Returns the pinned page `page_id`, reading it from disk on a miss.
  Result<Page*> FetchPage(PageId page_id);

  /// Allocates a new page on disk and returns it pinned.
  Result<Page*> NewPage();

  /// Drops a pin; `dirty` marks the page as modified.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes a page back if resident and dirty.
  Status FlushPage(PageId page_id);

  /// Writes back all dirty resident pages. A failing page does not
  /// stop the sweep: every other dirty page is still written, the page
  /// that failed stays dirty, and the first error is returned.
  Status FlushAll();

  /// Copies of every dirty resident page (id + full kPageSize frame),
  /// sorted by page id. Dirty bits are left untouched: this is the
  /// read-only first phase of a WAL-backed checkpoint.
  std::vector<std::pair<PageId, std::string>> DirtyPageImages() const;

  /// Charges kPageSize per resident page to `budget` (ForceReserve —
  /// residency is decided by the LRU, not by admission) and registers a
  /// pressure hook that sheds clean unpinned pages on demand: tier 2 of
  /// the degradation ladder. Shed pages cost only a re-read; dirty
  /// pages are never shed under pressure (that would trade memory for
  /// write I/O on an already-stressed process). Call once, before
  /// concurrent use; the budget must outlive this pool.
  void AttachBudget(MemoryBudget* budget);

  /// Drops clean unpinned resident pages (LRU first) until `wanted`
  /// bytes are freed or none qualify; returns bytes freed. Public for
  /// tests; also the body of the pressure hook.
  size_t ShedCleanPages(size_t wanted);

  size_t pool_size() const { return frames_.size(); }
  /// Pages currently resident (each charges kPageSize to an attached
  /// budget).
  size_t resident_pages() const;
  BufferPoolStats stats() const;

 private:
  /// Finds a frame for a new resident page, evicting the LRU unpinned
  /// page if needed.
  Result<size_t> GetVictimFrame() WSQ_REQUIRES(mu_);

  /// Moves `frame` to the MRU position.
  void Touch(size_t frame) WSQ_REQUIRES(mu_);

  mutable Mutex mu_;
  DiskManager* disk_;
  /// The frame array itself is sized once in the constructor; the Page
  /// objects it points at are handed out to callers, so only the
  /// pool-side bookkeeping below is guarded.
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, size_t> page_table_ WSQ_GUARDED_BY(mu_);
  std::list<size_t> lru_ WSQ_GUARDED_BY(mu_);  // front = LRU, back = MRU
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_
      WSQ_GUARDED_BY(mu_);
  std::vector<size_t> free_frames_ WSQ_GUARDED_BY(mu_);
  BufferPoolStats stats_ WSQ_GUARDED_BY(mu_);
  /// Set once by AttachBudget before concurrent use. Charges use
  /// ForceReserve/Release only (atomics, no hooks), so they are safe
  /// under mu_.
  MemoryBudget* budget_ = nullptr;
  uint64_t pressure_hook_id_ = 0;
  /// Metrics-registry collector handle, removed in the destructor.
  uint64_t collector_id_ = 0;
};

/// RAII pin guard: unpins on destruction.
class PageGuard {
 public:
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept
      : pool_(o.pool_), page_(o.page_), dirty_(o.dirty_) {
    o.page_ = nullptr;
  }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      page_ = o.page_;
      dirty_ = o.dirty_;
      o.page_ = nullptr;
    }
    return *this;
  }

  ~PageGuard() { Release(); }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }

  /// Marks the page dirty at unpin time.
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (page_ != nullptr) {
      // Unpin can only fail on misuse (page not resident / not
      // pinned), which a live guard rules out by construction.
      WSQ_IGNORE_STATUS(pool_->UnpinPage(page_->page_id(), dirty_));
      page_ = nullptr;
    }
  }

 private:
  BufferPool* pool_;
  Page* page_;
  bool dirty_ = false;
};

}  // namespace wsq

#endif  // WSQ_STORAGE_BUFFER_POOL_H_
