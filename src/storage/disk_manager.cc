#include "storage/disk_manager.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"
#include "storage/checksum.h"

namespace wsq {

Status InMemoryDiskManager::ReadPage(PageId page_id, char* out) {
  MutexLock lock(&mu_);
  if (page_id < 0 || static_cast<size_t>(page_id) >= pages_.size()) {
    return Status::OutOfRange(
        StrFormat("read of unallocated page %d", page_id));
  }
  std::memcpy(out, pages_[page_id].get(), kPageSize);
  return Status::OK();
}

Status InMemoryDiskManager::WritePage(PageId page_id, const char* data) {
  MutexLock lock(&mu_);
  if (page_id < 0 || static_cast<size_t>(page_id) >= pages_.size()) {
    return Status::OutOfRange(
        StrFormat("write of unallocated page %d", page_id));
  }
  std::memcpy(pages_[page_id].get(), data, kPageSize);
  return Status::OK();
}

Result<PageId> InMemoryDiskManager::AllocatePage() {
  MutexLock lock(&mu_);
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

PageId InMemoryDiskManager::NumPages() const {
  MutexLock lock(&mu_);
  return static_cast<PageId>(pages_.size());
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path, SyncPolicy sync) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "wb+");
  }
  if (file == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::IOError("seek failed on " + path);
  }
  long size = std::ftell(file);
  if (size < 0) {
    std::fclose(file);
    return Status::IOError("ftell failed on " + path);
  }
  if (size % static_cast<long>(kPageSize) != 0) {
    std::fclose(file);
    return Status::DataLoss(StrFormat(
        "%s: size %ld is not a multiple of the %zu-byte page size "
        "(torn final page)",
        path.c_str(), size, kPageSize));
  }
  PageId num_pages = static_cast<PageId>(size / kPageSize);
  return std::unique_ptr<FileDiskManager>(
      new FileDiskManager(path, file, num_pages, sync));
}

FileDiskManager::~FileDiskManager() {
  if (file_ == nullptr) return;
  // The destructor cannot surface errors; callers needing durability
  // must Sync() first. Still check so failures are at least visible.
  if (std::fflush(file_) != 0 || std::fclose(file_) != 0) {
    std::fprintf(stderr, "FileDiskManager: close of %s failed: %s\n",
                 path_.c_str(), std::strerror(errno));
  }
}

Status FileDiskManager::ReadPage(PageId page_id, char* out) {
  MutexLock lock(&mu_);
  if (page_id < 0 || page_id >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("read of unallocated page %d", page_id));
  }
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) !=
      0) {
    return Status::IOError("seek failed");
  }
  if (std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError(StrFormat("short read of page %d", page_id));
  }
  return VerifyPageHeader(page_id, out);
}

Status FileDiskManager::WritePage(PageId page_id, const char* data) {
  MutexLock lock(&mu_);
  if (page_id < 0 || page_id >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("write of unallocated page %d", page_id));
  }
  char frame[kPageSize];
  std::memcpy(frame, data, kPageSize);
  StampPageHeader(page_id, next_lsn_++, frame);
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) !=
      0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(frame, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError(StrFormat("short write of page %d", page_id));
  }
  return Status::OK();
}

Result<PageId> FileDiskManager::AllocatePage() {
  MutexLock lock(&mu_);
  char frame[kPageSize];
  std::memset(frame, 0, kPageSize);
  StampPageHeader(num_pages_, next_lsn_++, frame);
  if (std::fseek(file_, static_cast<long>(num_pages_) * kPageSize,
                 SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(frame, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("extend failed");
  }
  return num_pages_++;
}

PageId FileDiskManager::NumPages() const {
  MutexLock lock(&mu_);
  return num_pages_;
}

Status FileDiskManager::Sync() {
  MutexLock lock(&mu_);
  if (sync_ == SyncPolicy::kNone) return Status::OK();
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush of " + path_ + " failed: " +
                           std::strerror(errno));
  }
  if (sync_ == SyncPolicy::kFull && ::fsync(fileno(file_)) != 0) {
    return Status::IOError("fsync of " + path_ + " failed: " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace wsq
