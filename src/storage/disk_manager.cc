#include "storage/disk_manager.h"

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace wsq {

Status InMemoryDiskManager::ReadPage(PageId page_id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id < 0 || static_cast<size_t>(page_id) >= pages_.size()) {
    return Status::OutOfRange(
        StrFormat("read of unallocated page %d", page_id));
  }
  std::memcpy(out, pages_[page_id].get(), kPageSize);
  return Status::OK();
}

Status InMemoryDiskManager::WritePage(PageId page_id, const char* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id < 0 || static_cast<size_t>(page_id) >= pages_.size()) {
    return Status::OutOfRange(
        StrFormat("write of unallocated page %d", page_id));
  }
  std::memcpy(pages_[page_id].get(), data, kPageSize);
  return Status::OK();
}

Result<PageId> InMemoryDiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

PageId InMemoryDiskManager::NumPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<PageId>(pages_.size());
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "wb+");
  }
  if (file == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::IOError("seek failed on " + path);
  }
  long size = std::ftell(file);
  if (size < 0) {
    std::fclose(file);
    return Status::IOError("ftell failed on " + path);
  }
  PageId num_pages = static_cast<PageId>(size / kPageSize);
  return std::unique_ptr<FileDiskManager>(
      new FileDiskManager(path, file, num_pages));
}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileDiskManager::ReadPage(PageId page_id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id < 0 || page_id >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("read of unallocated page %d", page_id));
  }
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) !=
      0) {
    return Status::IOError("seek failed");
  }
  if (std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError(StrFormat("short read of page %d", page_id));
  }
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId page_id, const char* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id < 0 || page_id >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("write of unallocated page %d", page_id));
  }
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) !=
      0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError(StrFormat("short write of page %d", page_id));
  }
  std::fflush(file_);
  return Status::OK();
}

Result<PageId> FileDiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  if (std::fseek(file_, static_cast<long>(num_pages_) * kPageSize,
                 SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(zeros, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("extend failed");
  }
  std::fflush(file_);
  return num_pages_++;
}

PageId FileDiskManager::NumPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_pages_;
}

}  // namespace wsq
