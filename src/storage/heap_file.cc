#include "storage/heap_file.h"

#include <cstring>

#include "common/macros.h"
#include "common/strings.h"

namespace wsq {

namespace {

constexpr size_t kHeaderSize = 8;   // next_page + num_slots + free_end
constexpr size_t kSlotSize = 4;     // offset + length
constexpr uint16_t kTombstone = 0xFFFF;

int32_t GetNextPage(const char* data) {
  int32_t v;
  std::memcpy(&v, data, 4);
  return v;
}
void SetNextPage(char* data, int32_t v) { std::memcpy(data, &v, 4); }

uint16_t GetNumSlots(const char* data) {
  uint16_t v;
  std::memcpy(&v, data + 4, 2);
  return v;
}
void SetNumSlots(char* data, uint16_t v) { std::memcpy(data + 4, &v, 2); }

uint16_t GetFreeEnd(const char* data) {
  uint16_t v;
  std::memcpy(&v, data + 6, 2);
  return v;
}
void SetFreeEnd(char* data, uint16_t v) { std::memcpy(data + 6, &v, 2); }

void GetSlot(const char* data, uint16_t slot, uint16_t* offset,
             uint16_t* length) {
  const char* p = data + kHeaderSize + slot * kSlotSize;
  std::memcpy(offset, p, 2);
  std::memcpy(length, p + 2, 2);
}

void SetSlot(char* data, uint16_t slot, uint16_t offset, uint16_t length) {
  char* p = data + kHeaderSize + slot * kSlotSize;
  std::memcpy(p, &offset, 2);
  std::memcpy(p + 2, &length, 2);
}

void InitPage(char* data) {
  SetNextPage(data, kInvalidPageId);
  SetNumSlots(data, 0);
  SetFreeEnd(data, static_cast<uint16_t>(kPageDataSize));
}

size_t FreeSpace(const char* data) {
  size_t used_front = kHeaderSize + GetNumSlots(data) * kSlotSize;
  return GetFreeEnd(data) - used_front;
}

}  // namespace

Status HeapFile::ResolveTail() {
  if (tail_known_) return Status::OK();
  PageId current = first_page_;
  while (current != kInvalidPageId) {
    WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(current));
    PageGuard guard(pool_, page);
    PageId next = GetNextPage(page->data());
    if (next == kInvalidPageId) break;
    current = next;
  }
  last_page_ = current;
  tail_known_ = true;
  return Status::OK();
}

Result<Rid> HeapFile::Insert(std::string_view record) {
  const size_t need = record.size() + kSlotSize;
  if (record.size() + kSlotSize + kHeaderSize > kPageDataSize) {
    return Status::InvalidArgument(
        StrFormat("record of %zu bytes exceeds page capacity",
                  record.size()));
  }
  WSQ_RETURN_IF_ERROR(ResolveTail());

  if (first_page_ == kInvalidPageId) {
    WSQ_ASSIGN_OR_RETURN(Page * page, pool_->NewPage());
    InitPage(page->data());
    first_page_ = last_page_ = page->page_id();
    WSQ_RETURN_IF_ERROR(pool_->UnpinPage(page->page_id(), /*dirty=*/true));
  }

  WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(last_page_));
  PageGuard guard(pool_, page);

  if (FreeSpace(page->data()) < need) {
    WSQ_ASSIGN_OR_RETURN(Page * fresh, pool_->NewPage());
    InitPage(fresh->data());
    SetNextPage(page->data(), fresh->page_id());
    guard.MarkDirty();
    guard.Release();
    last_page_ = fresh->page_id();
    page = fresh;
    guard = PageGuard(pool_, page);
  }

  char* data = page->data();
  uint16_t slot = GetNumSlots(data);
  uint16_t offset =
      static_cast<uint16_t>(GetFreeEnd(data) - record.size());
  std::memcpy(data + offset, record.data(), record.size());
  SetSlot(data, slot, offset, static_cast<uint16_t>(record.size()));
  SetNumSlots(data, slot + 1);
  SetFreeEnd(data, offset);
  guard.MarkDirty();
  return Rid{page->page_id(), slot};
}

Result<std::string> HeapFile::Get(Rid rid) const {
  WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
  PageGuard guard(pool_, page);
  const char* data = page->data();
  if (rid.slot >= GetNumSlots(data)) {
    return Status::NotFound(StrFormat("no slot %u on page %d", rid.slot,
                                      rid.page_id));
  }
  uint16_t offset, length;
  GetSlot(data, rid.slot, &offset, &length);
  if (offset == kTombstone) {
    return Status::NotFound("record was deleted");
  }
  return std::string(data + offset, length);
}

Status HeapFile::Delete(Rid rid) {
  WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
  PageGuard guard(pool_, page);
  char* data = page->data();
  if (rid.slot >= GetNumSlots(data)) {
    return Status::NotFound(StrFormat("no slot %u on page %d", rid.slot,
                                      rid.page_id));
  }
  uint16_t offset, length;
  GetSlot(data, rid.slot, &offset, &length);
  if (offset == kTombstone) {
    return Status::NotFound("record already deleted");
  }
  SetSlot(data, rid.slot, kTombstone, 0);
  guard.MarkDirty();
  return Status::OK();
}

Result<int64_t> HeapFile::Count() const {
  int64_t count = 0;
  HeapFileScanner scanner(this);
  while (true) {
    WSQ_ASSIGN_OR_RETURN(bool more, scanner.Next(nullptr, nullptr));
    if (!more) break;
    ++count;
  }
  return count;
}

HeapFileScanner::HeapFileScanner(const HeapFile* file)
    : file_(file), current_page_(file->first_page_) {}

void HeapFileScanner::Reset() {
  current_page_ = file_->first_page_;
  next_slot_ = 0;
}

Result<bool> HeapFileScanner::Next(Rid* rid, std::string* record) {
  while (current_page_ != kInvalidPageId) {
    WSQ_ASSIGN_OR_RETURN(Page * page, file_->pool_->FetchPage(current_page_));
    PageGuard guard(file_->pool_, page);
    const char* data = page->data();
    uint16_t num_slots = GetNumSlots(data);
    while (next_slot_ < num_slots) {
      uint16_t slot = next_slot_++;
      uint16_t offset, length;
      GetSlot(data, slot, &offset, &length);
      if (offset == kTombstone) continue;
      if (rid != nullptr) *rid = Rid{current_page_, slot};
      if (record != nullptr) record->assign(data + offset, length);
      return true;
    }
    current_page_ = GetNextPage(data);
    next_slot_ = 0;
  }
  return false;
}

}  // namespace wsq
