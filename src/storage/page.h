#ifndef WSQ_STORAGE_PAGE_H_
#define WSQ_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace wsq {

/// Fixed physical page size for the whole storage layer.
inline constexpr size_t kPageSize = 4096;

/// Every on-disk page starts with a storage-layer header:
///   [ magic:u32 | version:u16 | reserved:u16 | page_id:i32 |
///     crc32c:u32 | lsn:u64 ]
/// The CRC covers the whole frame with the crc field zeroed, so both
/// payload corruption and misdirected writes (wrong page_id) are
/// detected. Persistent DiskManagers stamp the header on write and
/// verify it on read (Status::DataLoss on mismatch); upper layers never
/// see it — Page::data() starts past it.
inline constexpr size_t kPageHeaderSize = 24;

/// Bytes of a page available to upper layers (heap files, B+-tree
/// nodes, catalog): the frame minus the storage-layer header.
inline constexpr size_t kPageDataSize = kPageSize - kPageHeaderSize;

/// Page number within a database file; dense from 0.
using PageId = int32_t;
inline constexpr PageId kInvalidPageId = -1;

/// A buffer-pool frame: one page worth of bytes plus bookkeeping.
///
/// Pages are owned by the BufferPool; callers receive pinned pointers via
/// BufferPool::FetchPage / NewPage and must Unpin when done.
class Page {
 public:
  Page() { Reset(); }

  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;

  /// Payload visible to upper layers: kPageDataSize bytes.
  char* data() { return data_ + kPageHeaderSize; }
  const char* data() const { return data_ + kPageHeaderSize; }

  /// The whole physical frame (kPageSize bytes) including the
  /// storage-layer header region; the header bytes are owned by the
  /// DiskManager and are unspecified between reads and writes.
  char* frame() { return data_; }
  const char* frame() const { return data_; }

  PageId page_id() const { return page_id_; }
  int pin_count() const { return pin_count_; }
  bool is_dirty() const { return is_dirty_; }

 private:
  friend class BufferPool;

  void Reset() {
    std::memset(data_, 0, kPageSize);
    page_id_ = kInvalidPageId;
    pin_count_ = 0;
    is_dirty_ = false;
  }

  char data_[kPageSize];
  PageId page_id_ = kInvalidPageId;
  int pin_count_ = 0;
  bool is_dirty_ = false;
};

/// Identifies a record inside a heap file: page plus slot index.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
};

}  // namespace wsq

#endif  // WSQ_STORAGE_PAGE_H_
