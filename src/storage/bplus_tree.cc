#include "storage/bplus_tree.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "common/strings.h"

namespace wsq {

namespace {

// --- Key encoding -------------------------------------------------------
// Tag byte then a representation whose byte order matches value order
// within a type. Cross-type order follows the tag.
constexpr char kTagInt = 0x02;
constexpr char kTagDouble = 0x03;
constexpr char kTagString = 0x04;

void PutBigEndian64(std::string* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

uint64_t GetBigEndian64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

Result<std::string> EncodeBTreeKey(const Value& key) {
  std::string out;
  switch (key.type()) {
    case TypeId::kInt64:
      out.push_back(kTagInt);
      // Flip the sign bit so unsigned byte order equals signed order.
      PutBigEndian64(&out, static_cast<uint64_t>(key.AsInt()) ^
                               (1ull << 63));
      return out;
    case TypeId::kDouble: {
      out.push_back(kTagDouble);
      uint64_t bits;
      double d = key.AsDouble();
      std::memcpy(&bits, &d, 8);
      // IEEE-754 total-order transform.
      if (bits & (1ull << 63)) {
        bits = ~bits;
      } else {
        bits |= (1ull << 63);
      }
      PutBigEndian64(&out, bits);
      return out;
    }
    case TypeId::kString: {
      // Layout (fixed width = kMaxKeyBytes): tag, raw bytes, zero
      // padding, then a big-endian u16 length in the final two bytes.
      // Bytes-before-length keeps memcmp order lexicographic even for
      // strings with embedded NULs (the trailing length breaks the
      // prefix tie).
      const std::string& s = key.AsString();
      if (s.size() + 3 > BPlusTree::kMaxKeyBytes) {
        return Status::InvalidArgument(
            StrFormat("index key too long (%zu bytes, max %zu)",
                      s.size(), BPlusTree::kMaxKeyBytes - 3));
      }
      out.push_back(kTagString);
      out.append(s);
      out.append(BPlusTree::kMaxKeyBytes - 2 - out.size(), '\0');
      out.push_back(static_cast<char>((s.size() >> 8) & 0xFF));
      out.push_back(static_cast<char>(s.size() & 0xFF));
      return out;
    }
    case TypeId::kNull:
      return Status::InvalidArgument("NULL cannot be an index key");
    case TypeId::kPlaceholder:
      return Status::Internal("placeholder cannot be an index key");
  }
  return Status::Internal("unknown key type");
}

Result<Value> DecodeBTreeKey(std::string_view bytes) {
  if (bytes.empty()) return Status::IOError("empty index key");
  switch (bytes[0]) {
    case kTagInt: {
      if (bytes.size() < 9) return Status::IOError("truncated int key");
      uint64_t v = GetBigEndian64(bytes.data() + 1) ^ (1ull << 63);
      return Value::Int(static_cast<int64_t>(v));
    }
    case kTagDouble: {
      if (bytes.size() < 9) {
        return Status::IOError("truncated double key");
      }
      uint64_t bits = GetBigEndian64(bytes.data() + 1);
      if (bits & (1ull << 63)) {
        bits &= ~(1ull << 63);
      } else {
        bits = ~bits;
      }
      double d;
      std::memcpy(&d, &bits, 8);
      return Value::Real(d);
    }
    case kTagString: {
      if (bytes.size() < BPlusTree::kMaxKeyBytes) {
        return Status::IOError("truncated string key");
      }
      size_t hi = static_cast<unsigned char>(
          bytes[BPlusTree::kMaxKeyBytes - 2]);
      size_t lo = static_cast<unsigned char>(
          bytes[BPlusTree::kMaxKeyBytes - 1]);
      size_t len = (hi << 8) | lo;
      if (len + 3 > BPlusTree::kMaxKeyBytes) {
        return Status::IOError("corrupt string key length");
      }
      return Value::Str(std::string(bytes.substr(1, len)));
    }
    default:
      return Status::IOError("bad index key tag");
  }
}

namespace {

// --- Node layout ---------------------------------------------------------
// [ is_leaf:u8 | num_keys:u16 | next_leaf:i32 ] then entries.
// Every entry carries a composite (key, rid) in a fixed slot, so
// duplicates order deterministically and separators partition strictly.
constexpr size_t kHeaderBytes = 7;
constexpr size_t kKeySlot = BPlusTree::kMaxKeyBytes;  // zero-padded
constexpr size_t kRidBytes = 6;                       // page:i32 + slot:u16
constexpr size_t kEntryBytes = kKeySlot + kRidBytes;  // leaf entry
// Internal node: child0:i32 after the header, then (entry, child:i32).
constexpr size_t kInternalEntryBytes = kEntryBytes + 4;

constexpr size_t kLeafCapacity =
    (kPageDataSize - kHeaderBytes) / kEntryBytes;
constexpr size_t kInternalCapacity =
    (kPageDataSize - kHeaderBytes - 4) / kInternalEntryBytes;

bool IsLeaf(const char* d) { return d[0] != 0; }
void SetLeaf(char* d, bool leaf) { d[0] = leaf ? 1 : 0; }

uint16_t NumKeys(const char* d) {
  uint16_t v;
  std::memcpy(&v, d + 1, 2);
  return v;
}
void SetNumKeys(char* d, uint16_t v) { std::memcpy(d + 1, &v, 2); }

PageId NextLeaf(const char* d) {
  PageId v;
  std::memcpy(&v, d + 3, 4);
  return v;
}
void SetNextLeaf(char* d, PageId v) { std::memcpy(d + 3, &v, 4); }

// Composite entry = padded key + rid.
struct Entry {
  std::string key;  // encoded, unpadded
  Rid rid;
};

char* LeafEntryPtr(char* d, size_t i) {
  return d + kHeaderBytes + i * kEntryBytes;
}
const char* LeafEntryPtr(const char* d, size_t i) {
  return d + kHeaderBytes + i * kEntryBytes;
}

char* InternalChild0Ptr(char* d) { return d + kHeaderBytes; }
const char* InternalChild0Ptr(const char* d) { return d + kHeaderBytes; }
char* InternalEntryPtr(char* d, size_t i) {
  return d + kHeaderBytes + 4 + i * kInternalEntryBytes;
}
const char* InternalEntryPtr(const char* d, size_t i) {
  return d + kHeaderBytes + 4 + i * kInternalEntryBytes;
}

void WriteEntryAt(char* p, const std::string& key, Rid rid) {
  std::memset(p, 0, kKeySlot);
  std::memcpy(p, key.data(), key.size());
  std::memcpy(p + kKeySlot, &rid.page_id, 4);
  std::memcpy(p + kKeySlot + 4, &rid.slot, 2);
}

Entry ReadEntryAt(const char* p) {
  Entry e;
  e.key.assign(p, kKeySlot);
  std::memcpy(&e.rid.page_id, p + kKeySlot, 4);
  std::memcpy(&e.rid.slot, p + kKeySlot + 4, 2);
  return e;
}

PageId ReadChildAt(const char* d, size_t i) {
  // child i: child0 for i==0, else the pointer after entry i-1.
  PageId v;
  if (i == 0) {
    std::memcpy(&v, InternalChild0Ptr(d), 4);
  } else {
    std::memcpy(&v, InternalEntryPtr(d, i - 1) + kEntryBytes, 4);
  }
  return v;
}

void WriteChildAt(char* d, size_t i, PageId child) {
  if (i == 0) {
    std::memcpy(InternalChild0Ptr(d), &child, 4);
  } else {
    std::memcpy(InternalEntryPtr(d, i - 1) + kEntryBytes, &child, 4);
  }
}

/// Byte-order comparison of encoded keys (padding-insensitive: the
/// encoding is self-delimiting and zero bytes never terminate early
/// because string keys carry an explicit length).
int CompareKeys(std::string_view a, std::string_view b) {
  // Compare up to the shorter meaningful prefix; padded slots compare
  // fine because both sides are padded with zeros past their encoding.
  size_t n = std::min(a.size(), b.size());
  int c = std::memcmp(a.data(), b.data(), n);
  if (c != 0) return c;
  if (a.size() == b.size()) return 0;
  // Zero padding: treat the shorter as extended with zeros.
  const std::string_view& longer = a.size() > b.size() ? a : b;
  for (size_t i = n; i < longer.size(); ++i) {
    if (longer[i] != 0) return a.size() > b.size() ? 1 : -1;
  }
  return 0;
}

int CompareComposite(std::string_view ak, Rid ar, std::string_view bk,
                     Rid br) {
  int c = CompareKeys(ak, bk);
  if (c != 0) return c;
  if (ar.page_id != br.page_id) {
    return ar.page_id < br.page_id ? -1 : 1;
  }
  if (ar.slot != br.slot) return ar.slot < br.slot ? -1 : 1;
  return 0;
}

}  // namespace

Result<PageId> BPlusTree::FindLeaf(const std::string& key) const {
  PageId current = root_;
  while (true) {
    WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(current));
    PageGuard guard(pool_, page);
    const char* d = page->data();
    if (IsLeaf(d)) return current;
    // Leftmost child whose subtree may contain `key`: descend into
    // child i where separator[i-1] <= (key, min_rid) < separator[i].
    size_t n = NumKeys(d);
    size_t child = 0;
    for (size_t i = 0; i < n; ++i) {
      Entry sep = ReadEntryAt(InternalEntryPtr(d, i));
      if (CompareComposite(key, Rid{-1, 0}, sep.key, sep.rid) >= 0) {
        child = i + 1;
      } else {
        break;
      }
    }
    current = ReadChildAt(d, child);
  }
}

Status BPlusTree::Insert(const Value& key, Rid rid) {
  WSQ_ASSIGN_OR_RETURN(std::string encoded, EncodeBTreeKey(key));

  if (root_ == kInvalidPageId) {
    WSQ_ASSIGN_OR_RETURN(Page * page, pool_->NewPage());
    PageGuard guard(pool_, page);
    char* d = page->data();
    std::memset(d, 0, kPageDataSize);
    SetLeaf(d, true);
    SetNumKeys(d, 1);
    SetNextLeaf(d, kInvalidPageId);
    WriteEntryAt(LeafEntryPtr(d, 0), encoded, rid);
    guard.MarkDirty();
    root_ = page->page_id();
    return Status::OK();
  }

  SplitResult split;
  WSQ_RETURN_IF_ERROR(InsertInto(root_, encoded, rid, &split));
  if (!split.split) return Status::OK();

  // Grow a new internal root.
  WSQ_ASSIGN_OR_RETURN(Page * page, pool_->NewPage());
  PageGuard guard(pool_, page);
  char* d = page->data();
  std::memset(d, 0, kPageDataSize);
  SetLeaf(d, false);
  SetNumKeys(d, 1);
  SetNextLeaf(d, kInvalidPageId);
  WriteChildAt(d, 0, root_);
  // The separator carries the composite of the new node's first entry.
  Entry sep;
  sep.key = split.separator.substr(0, kKeySlot);
  std::memcpy(&sep.rid.page_id, split.separator.data() + kKeySlot, 4);
  std::memcpy(&sep.rid.slot, split.separator.data() + kKeySlot + 4, 2);
  WriteEntryAt(InternalEntryPtr(d, 0), sep.key, sep.rid);
  WriteChildAt(d, 1, split.new_page);
  guard.MarkDirty();
  root_ = page->page_id();
  return Status::OK();
}

Status BPlusTree::InsertInto(PageId page_id, const std::string& key,
                             Rid rid, SplitResult* out) {
  out->split = false;
  WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
  PageGuard guard(pool_, page);
  char* d = page->data();
  size_t n = NumKeys(d);

  if (!IsLeaf(d)) {
    // Choose the child, recurse, then absorb a possible child split.
    size_t child_idx = 0;
    for (size_t i = 0; i < n; ++i) {
      Entry sep = ReadEntryAt(InternalEntryPtr(d, i));
      if (CompareComposite(key, rid, sep.key, sep.rid) >= 0) {
        child_idx = i + 1;
      } else {
        break;
      }
    }
    PageId child = ReadChildAt(d, child_idx);
    guard.Release();

    SplitResult child_split;
    WSQ_RETURN_IF_ERROR(InsertInto(child, key, rid, &child_split));
    if (!child_split.split) return Status::OK();

    WSQ_ASSIGN_OR_RETURN(page, pool_->FetchPage(page_id));
    PageGuard reguard(pool_, page);
    d = page->data();
    n = NumKeys(d);

    // Insert (separator, new_page) after child_idx.
    if (n < kInternalCapacity) {
      std::memmove(InternalEntryPtr(d, child_idx + 1),
                   InternalEntryPtr(d, child_idx),
                   (n - child_idx) * kInternalEntryBytes);
      std::memcpy(InternalEntryPtr(d, child_idx),
                  child_split.separator.data(), kEntryBytes);
      std::memcpy(InternalEntryPtr(d, child_idx) + kEntryBytes,
                  &child_split.new_page, 4);
      SetNumKeys(d, static_cast<uint16_t>(n + 1));
      reguard.MarkDirty();
      return Status::OK();
    }

    // Split this internal node. Collect entries + children, insert the
    // new separator, redistribute.
    struct InternalEntry {
      std::string composite;  // kEntryBytes
      PageId child;
    };
    std::vector<InternalEntry> entries;
    entries.reserve(n + 1);
    for (size_t i = 0; i < n; ++i) {
      InternalEntry e;
      e.composite.assign(InternalEntryPtr(d, i), kEntryBytes);
      e.child = ReadChildAt(d, i + 1);
      entries.push_back(std::move(e));
    }
    InternalEntry added;
    added.composite = child_split.separator;
    added.child = child_split.new_page;
    entries.insert(entries.begin() + static_cast<ptrdiff_t>(child_idx),
                   std::move(added));

    size_t mid = entries.size() / 2;  // entries[mid] moves up
    WSQ_ASSIGN_OR_RETURN(Page * right, pool_->NewPage());
    PageGuard right_guard(pool_, right);
    char* rd = right->data();
    std::memset(rd, 0, kPageDataSize);
    SetLeaf(rd, false);
    SetNextLeaf(rd, kInvalidPageId);
    WriteChildAt(rd, 0, entries[mid].child);
    size_t right_count = entries.size() - mid - 1;
    for (size_t i = 0; i < right_count; ++i) {
      std::memcpy(InternalEntryPtr(rd, i),
                  entries[mid + 1 + i].composite.data(), kEntryBytes);
      WriteChildAt(rd, i + 1, entries[mid + 1 + i].child);
    }
    SetNumKeys(rd, static_cast<uint16_t>(right_count));
    right_guard.MarkDirty();

    PageId child0 = ReadChildAt(d, 0);
    std::memset(d + kHeaderBytes, 0, kPageDataSize - kHeaderBytes);
    WriteChildAt(d, 0, child0);
    for (size_t i = 0; i < mid; ++i) {
      std::memcpy(InternalEntryPtr(d, i), entries[i].composite.data(),
                  kEntryBytes);
      WriteChildAt(d, i + 1, entries[i].child);
    }
    SetNumKeys(d, static_cast<uint16_t>(mid));
    reguard.MarkDirty();

    out->split = true;
    out->separator = entries[mid].composite;
    out->new_page = right->page_id();
    return Status::OK();
  }

  // Leaf: position by composite order.
  size_t pos = 0;
  for (; pos < n; ++pos) {
    Entry e = ReadEntryAt(LeafEntryPtr(d, pos));
    int c = CompareComposite(key, rid, e.key, e.rid);
    if (c == 0) {
      return Status::AlreadyExists("duplicate index entry");
    }
    if (c < 0) break;
  }

  if (n < kLeafCapacity) {
    std::memmove(LeafEntryPtr(d, pos + 1), LeafEntryPtr(d, pos),
                 (n - pos) * kEntryBytes);
    WriteEntryAt(LeafEntryPtr(d, pos), key, rid);
    SetNumKeys(d, static_cast<uint16_t>(n + 1));
    guard.MarkDirty();
    return Status::OK();
  }

  // Split the leaf.
  std::vector<Entry> entries;
  entries.reserve(n + 1);
  for (size_t i = 0; i < n; ++i) {
    entries.push_back(ReadEntryAt(LeafEntryPtr(d, i)));
  }
  Entry added;
  added.key.assign(kKeySlot, '\0');
  std::memcpy(added.key.data(), key.data(), key.size());
  added.rid = rid;
  entries.insert(entries.begin() + static_cast<ptrdiff_t>(pos),
                 std::move(added));

  size_t mid = entries.size() / 2;
  WSQ_ASSIGN_OR_RETURN(Page * right, pool_->NewPage());
  PageGuard right_guard(pool_, right);
  char* rd = right->data();
  std::memset(rd, 0, kPageDataSize);
  SetLeaf(rd, true);
  SetNextLeaf(rd, NextLeaf(d));
  for (size_t i = mid; i < entries.size(); ++i) {
    WriteEntryAt(LeafEntryPtr(rd, i - mid), entries[i].key,
                 entries[i].rid);
  }
  SetNumKeys(rd, static_cast<uint16_t>(entries.size() - mid));
  right_guard.MarkDirty();

  for (size_t i = 0; i < mid; ++i) {
    WriteEntryAt(LeafEntryPtr(d, i), entries[i].key, entries[i].rid);
  }
  SetNumKeys(d, static_cast<uint16_t>(mid));
  SetNextLeaf(d, right->page_id());
  guard.MarkDirty();

  out->split = true;
  out->separator.assign(kEntryBytes, '\0');
  std::memcpy(out->separator.data(), entries[mid].key.data(), kKeySlot);
  std::memcpy(out->separator.data() + kKeySlot, &entries[mid].rid.page_id,
              4);
  std::memcpy(out->separator.data() + kKeySlot + 4,
              &entries[mid].rid.slot, 2);
  out->new_page = right->page_id();
  return Status::OK();
}

Status BPlusTree::Remove(const Value& key, Rid rid) {
  if (root_ == kInvalidPageId) {
    return Status::NotFound("index is empty");
  }
  WSQ_ASSIGN_OR_RETURN(std::string encoded, EncodeBTreeKey(key));
  bool removed = false;
  WSQ_RETURN_IF_ERROR(RemoveFrom(root_, encoded, rid, &removed));
  if (!removed) return Status::NotFound("index entry not found");
  return Status::OK();
}

Status BPlusTree::RemoveFrom(PageId page_id, const std::string& key,
                             Rid rid, bool* removed) {
  WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
  PageGuard guard(pool_, page);
  char* d = page->data();
  size_t n = NumKeys(d);

  if (!IsLeaf(d)) {
    size_t child_idx = 0;
    for (size_t i = 0; i < n; ++i) {
      Entry sep = ReadEntryAt(InternalEntryPtr(d, i));
      if (CompareComposite(key, rid, sep.key, sep.rid) >= 0) {
        child_idx = i + 1;
      } else {
        break;
      }
    }
    PageId child = ReadChildAt(d, child_idx);
    guard.Release();
    return RemoveFrom(child, key, rid, removed);
  }

  for (size_t i = 0; i < n; ++i) {
    Entry e = ReadEntryAt(LeafEntryPtr(d, i));
    int c = CompareComposite(key, rid, e.key, e.rid);
    if (c == 0) {
      std::memmove(LeafEntryPtr(d, i), LeafEntryPtr(d, i + 1),
                   (n - i - 1) * kEntryBytes);
      SetNumKeys(d, static_cast<uint16_t>(n - 1));
      guard.MarkDirty();
      *removed = true;
      return Status::OK();
    }
    if (c < 0) break;
  }
  return Status::OK();
}

Result<std::vector<Rid>> BPlusTree::SearchEqual(const Value& key) const {
  std::vector<Rid> out;
  if (root_ == kInvalidPageId) return out;
  WSQ_ASSIGN_OR_RETURN(std::string encoded, EncodeBTreeKey(key));
  WSQ_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(encoded));

  PageId current = leaf;
  while (current != kInvalidPageId) {
    WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(current));
    PageGuard guard(pool_, page);
    const char* d = page->data();
    size_t n = NumKeys(d);
    bool past = false;
    for (size_t i = 0; i < n; ++i) {
      Entry e = ReadEntryAt(LeafEntryPtr(d, i));
      int c = CompareKeys(encoded, e.key);
      if (c == 0) {
        out.push_back(e.rid);
      } else if (c < 0) {
        past = true;
        break;
      }
    }
    if (past) break;
    current = NextLeaf(d);
  }
  return out;
}

Result<std::vector<Rid>> BPlusTree::SearchRange(
    const Value* lo, bool lo_inclusive, const Value* hi,
    bool hi_inclusive) const {
  std::vector<Rid> out;
  if (root_ == kInvalidPageId) return out;

  std::string lo_key, hi_key;
  if (lo != nullptr) {
    WSQ_ASSIGN_OR_RETURN(lo_key, EncodeBTreeKey(*lo));
  }
  if (hi != nullptr) {
    WSQ_ASSIGN_OR_RETURN(hi_key, EncodeBTreeKey(*hi));
  }

  // Start at the leftmost leaf that can contain the lower bound (or
  // the leftmost leaf overall when unbounded below).
  PageId current;
  if (lo != nullptr) {
    WSQ_ASSIGN_OR_RETURN(current, FindLeaf(lo_key));
  } else {
    current = root_;
    while (true) {
      WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(current));
      PageGuard guard(pool_, page);
      if (IsLeaf(page->data())) break;
      current = ReadChildAt(page->data(), 0);
    }
  }

  while (current != kInvalidPageId) {
    WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(current));
    PageGuard guard(pool_, page);
    const char* d = page->data();
    size_t n = NumKeys(d);
    bool past = false;
    for (size_t i = 0; i < n; ++i) {
      Entry e = ReadEntryAt(LeafEntryPtr(d, i));
      if (lo != nullptr) {
        int c = CompareKeys(e.key, lo_key);
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (hi != nullptr) {
        int c = CompareKeys(e.key, hi_key);
        if (c > 0 || (c == 0 && !hi_inclusive)) {
          // Keys only grow along the chain; equal keys may continue,
          // so only a strictly-greater key terminates the scan.
          if (c > 0) {
            past = true;
            break;
          }
          continue;
        }
      }
      out.push_back(e.rid);
    }
    if (past) break;
    current = NextLeaf(d);
  }
  return out;
}

Result<std::vector<std::pair<Value, Rid>>> BPlusTree::ScanAll() const {
  std::vector<std::pair<Value, Rid>> out;
  if (root_ == kInvalidPageId) return out;

  // Descend to the leftmost leaf.
  PageId current = root_;
  while (true) {
    WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(current));
    PageGuard guard(pool_, page);
    const char* d = page->data();
    if (IsLeaf(d)) break;
    current = ReadChildAt(d, 0);
  }

  while (current != kInvalidPageId) {
    WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(current));
    PageGuard guard(pool_, page);
    const char* d = page->data();
    size_t n = NumKeys(d);
    for (size_t i = 0; i < n; ++i) {
      Entry e = ReadEntryAt(LeafEntryPtr(d, i));
      WSQ_ASSIGN_OR_RETURN(Value v, DecodeBTreeKey(e.key));
      out.emplace_back(std::move(v), e.rid);
    }
    current = NextLeaf(d);
  }
  return out;
}

Result<int64_t> BPlusTree::Count() const {
  WSQ_ASSIGN_OR_RETURN(auto all, ScanAll());
  return static_cast<int64_t>(all.size());
}

Status BPlusTree::CheckInvariants() const {
  if (root_ == kInvalidPageId) return Status::OK();

  // Full scan must be sorted by composite.
  WSQ_ASSIGN_OR_RETURN(auto all, ScanAll());
  for (size_t i = 1; i < all.size(); ++i) {
    WSQ_ASSIGN_OR_RETURN(std::string prev,
                         EncodeBTreeKey(all[i - 1].first));
    WSQ_ASSIGN_OR_RETURN(std::string cur, EncodeBTreeKey(all[i].first));
    if (CompareComposite(prev, all[i - 1].second, cur,
                         all[i].second) >= 0) {
      return Status::Internal(
          StrFormat("leaf chain out of order at entry %zu", i));
    }
  }

  // All leaves at the same depth; every node's entries sorted.
  struct Frame {
    PageId page;
    int depth;
  };
  std::vector<Frame> stack = {{root_, 0}};
  int leaf_depth = -1;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    WSQ_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(f.page));
    PageGuard guard(pool_, page);
    const char* d = page->data();
    size_t n = NumKeys(d);
    for (size_t i = 1; i < n; ++i) {
      Entry a = IsLeaf(d) ? ReadEntryAt(LeafEntryPtr(d, i - 1))
                          : ReadEntryAt(InternalEntryPtr(d, i - 1));
      Entry b = IsLeaf(d) ? ReadEntryAt(LeafEntryPtr(d, i))
                          : ReadEntryAt(InternalEntryPtr(d, i));
      if (CompareComposite(a.key, a.rid, b.key, b.rid) >= 0) {
        return Status::Internal("node entries out of order");
      }
    }
    if (IsLeaf(d)) {
      if (leaf_depth < 0) leaf_depth = f.depth;
      if (leaf_depth != f.depth) {
        return Status::Internal("leaves at different depths");
      }
    } else {
      if (n == 0) return Status::Internal("empty internal node");
      for (size_t i = 0; i <= n; ++i) {
        stack.push_back({ReadChildAt(d, i), f.depth + 1});
      }
    }
  }
  return Status::OK();
}

}  // namespace wsq
