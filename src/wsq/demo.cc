#include "wsq/demo.h"

#include "common/macros.h"

namespace wsq {

DemoEnv::DemoEnv(const DemoOptions& options) {
  corpus_ = std::make_unique<Corpus>(MakePaperCorpus(options.corpus));

  SearchEngineConfig av_cfg;
  av_cfg.name = "AltaVista";
  av_cfg.supports_near = true;
  av_cfg.rank_seed = 101 ^ options.seed;
  av_engine_ = std::make_unique<SearchEngine>(corpus_.get(), av_cfg);

  SearchEngineConfig g_cfg;
  g_cfg.name = "Google";
  g_cfg.supports_near = false;
  g_cfg.rank_seed = 20706 ^ options.seed;
  google_engine_ = std::make_unique<SearchEngine>(corpus_.get(), g_cfg);

  SimulatedSearchService::Options svc;
  svc.latency = options.latency;
  svc.server_capacity = options.server_capacity;
  svc.seed = options.seed;
  av_service_ =
      std::make_unique<SimulatedSearchService>(av_engine_.get(), svc);
  svc.seed = options.seed + 1;
  google_service_ = std::make_unique<SimulatedSearchService>(
      google_engine_.get(), svc);

  SearchService* av = av_service_.get();
  SearchService* google = google_service_.get();
  if (options.search_shards > 0) {
    SimulatedShardCluster::Options cluster;
    cluster.num_shards = options.search_shards;
    cluster.engine = av_cfg;
    cluster.latency = options.latency;
    cluster.server_capacity = options.server_capacity;
    cluster.seed = options.seed;
    cluster.with_replicas = options.shard_replicas;
    cluster.shard_faults = options.shard_faults;
    shard_cluster_ =
        std::make_unique<SimulatedShardCluster>(corpus_.get(), cluster);
    av = shard_cluster_->service();
  }
  if (options.client_cache_entries > 0) {
    client_cache_ = std::make_unique<ResultCache>(
        options.client_cache_entries, /*ttl_micros=*/0,
        options.client_cache_bytes);
    av_cached_ =
        std::make_unique<CachingSearchService>(av, client_cache_.get());
    google_cached_ = std::make_unique<CachingSearchService>(
        google, client_cache_.get());
    av = av_cached_.get();
    google = google_cached_.get();
  }

  WsqDatabase::Options db_options;
  db_options.pump_limits = options.pump_limits;
  db_options.admission = options.admission;
  db_options.memory_budget_bytes = options.memory_budget_bytes;
  db_options.postmortem_sink = options.postmortem_sink;
  db_options.postmortem_min_interval_micros =
      options.postmortem_min_interval_micros;
  db_ = std::make_unique<WsqDatabase>(db_options);
  if (client_cache_ != nullptr) {
    // Tier 2: cached responses count against the database budget and
    // are shed under pressure.
    client_cache_->AttachBudget(db_->memory_budget());
  }

  Status s = db_->RegisterSearchEngine("AV", av, /*supports_near=*/true);
  if (s.ok()) {
    s = db_->RegisterSearchEngine("Google", google,
                                  /*supports_near=*/false);
  }
  if (s.ok()) s = LoadStatesTable(db_.get());
  if (s.ok()) s = LoadSigsTable(db_.get());
  if (s.ok()) s = LoadCsFieldsTable(db_.get());
  if (s.ok()) s = LoadMoviesTable(db_.get());
  if (!s.ok()) {
    // Construction of the fixed demo schema cannot fail unless the
    // library itself is broken; surface that loudly.
    std::fprintf(stderr, "DemoEnv setup failed: %s\n",
                 s.ToString().c_str());
    std::abort();
  }
}

DemoEnv::~DemoEnv() {
  // The cache outlives the database (the pump may still call through
  // the caching service while draining), so its budget hook must be
  // removed while the budget is still alive.
  if (client_cache_ != nullptr) client_cache_->DetachBudget();
}

Result<QueryExecution> DemoEnv::Run(const std::string& sql,
                                    bool async_iteration) {
  WsqDatabase::ExecOptions options;
  options.async_iteration = async_iteration;
  return db_->Execute(sql, options);
}

Status LoadStatesTable(WsqDatabase* db) {
  Schema schema({Column("Name", TypeId::kString),
                 Column("Population", TypeId::kInt64),
                 Column("Capital", TypeId::kString)});
  WSQ_ASSIGN_OR_RETURN(TableInfo * table,
                       db->catalog()->CreateTable("States", schema));
  for (const StateRecord& s : UsStates1998()) {
    WSQ_RETURN_IF_ERROR(table->Insert(
        Row({Value::Str(s.name), Value::Int(s.population),
             Value::Str(s.capital)})));
  }
  return Status::OK();
}

Status LoadSigsTable(WsqDatabase* db) {
  Schema schema({Column("Name", TypeId::kString)});
  WSQ_ASSIGN_OR_RETURN(TableInfo * table,
                       db->catalog()->CreateTable("Sigs", schema));
  for (const std::string& sig : AcmSigs()) {
    WSQ_RETURN_IF_ERROR(table->Insert(Row({Value::Str(sig)})));
  }
  return Status::OK();
}

Status LoadCsFieldsTable(WsqDatabase* db) {
  Schema schema({Column("Name", TypeId::kString)});
  WSQ_ASSIGN_OR_RETURN(TableInfo * table,
                       db->catalog()->CreateTable("CSFields", schema));
  for (const std::string& f : CsFields()) {
    WSQ_RETURN_IF_ERROR(table->Insert(Row({Value::Str(f)})));
  }
  return Status::OK();
}

Status LoadMoviesTable(WsqDatabase* db) {
  Schema schema({Column("Title", TypeId::kString)});
  WSQ_ASSIGN_OR_RETURN(TableInfo * table,
                       db->catalog()->CreateTable("Movies", schema));
  for (const std::string& m : MovieTitles()) {
    WSQ_RETURN_IF_ERROR(table->Insert(Row({Value::Str(m)})));
  }
  return Status::OK();
}

}  // namespace wsq
