#ifndef WSQ_WSQ_WEB_TABLES_H_
#define WSQ_WSQ_WEB_TABLES_H_

#include <memory>
#include <string>

#include "net/search_service.h"
#include "vtab/virtual_table.h"

namespace wsq {

/// The paper's WebCount virtual table (§3):
///   WebCount(SearchExp, T1, ..., Tn, Count)
/// For bound SearchExp/terms it contains exactly one tuple whose Count
/// is the engine's total hit count.
class WebCountTable : public VirtualTable {
 public:
  /// `service` must outlive the table. `supports_near` selects the
  /// default SearchExp template (paper footnote 1).
  WebCountTable(std::string name, SearchService* service,
                bool supports_near);

  const std::string& name() const override { return name_; }
  const std::string& destination() const override {
    return service_->name();
  }
  Schema SchemaForTerms(size_t n) const override;
  size_t NumOutputColumns() const override { return 1; }
  bool SingleRowOutput() const override { return true; }
  std::string EffectiveSearchExp(
      const VTableRequest& request) const override;

  Result<std::vector<Row>> Fetch(const VTableRequest& request) override;
  using VirtualTable::SubmitAsync;
  CallId SubmitAsync(const VTableRequest& request, ReqPump* pump,
                     int64_t timeout_micros) override;

 private:
  Result<std::string> ExpandQuery(const VTableRequest& request) const;

  std::string name_;
  SearchService* service_;
  bool supports_near_;
};

/// The paper's WebPages virtual table (§3):
///   WebPages(SearchExp, T1, ..., Tn, URL, Rank, Date)
/// Ranked search results, restricted to Rank <= rank_limit.
class WebPagesTable : public VirtualTable {
 public:
  WebPagesTable(std::string name, SearchService* service,
                bool supports_near);

  const std::string& name() const override { return name_; }
  const std::string& destination() const override {
    return service_->name();
  }
  Schema SchemaForTerms(size_t n) const override;
  size_t NumOutputColumns() const override { return 3; }
  bool SingleRowOutput() const override { return false; }
  std::string RankColumn() const override { return "Rank"; }
  std::string EffectiveSearchExp(
      const VTableRequest& request) const override;

  Result<std::vector<Row>> Fetch(const VTableRequest& request) override;
  using VirtualTable::SubmitAsync;
  CallId SubmitAsync(const VTableRequest& request, ReqPump* pump,
                     int64_t timeout_micros) override;

 private:
  Result<std::string> ExpandQuery(const VTableRequest& request) const;

  std::string name_;
  SearchService* service_;
  bool supports_near_;
};

}  // namespace wsq

#endif  // WSQ_WSQ_WEB_TABLES_H_
