#ifndef WSQ_WSQ_ADMISSION_H_
#define WSQ_WSQ_ADMISSION_H_

#include <cstdint>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace wsq {

/// Overload admission policy for WsqDatabase::Execute.
struct AdmissionLimits {
  /// Max queries executing at once; 0 = unbounded (admission control
  /// off — Admit always succeeds and only keeps stats).
  int max_concurrent_queries = 0;
  /// Max queries allowed to wait for a slot. An arrival that would
  /// queue past this bound is shed immediately (kResourceExhausted).
  /// 0 = shed as soon as all slots are busy, without queueing.
  int max_queued = 0;
  /// Longest a queued query waits for a slot before it is shed
  /// (kResourceExhausted). 0 with max_queued > 0 = wait without bound
  /// (the query's own deadline/cancellation still applies).
  int64_t max_queue_wait_micros = 0;
};

/// Per-reason shed accounting (bounded-wait-then-shed semantics).
struct AdmissionStats {
  uint64_t admitted = 0;
  /// Arrivals shed because the wait queue was already full.
  uint64_t shed_queue_full = 0;
  /// Queued queries shed because no slot freed within the wait bound.
  uint64_t shed_timeout = 0;
  /// Queued queries that gave up because their own token was cancelled
  /// or their deadline expired while waiting.
  uint64_t shed_cancelled = 0;
  uint64_t active_peak = 0;
  uint64_t queued_peak = 0;
};

/// Gate in front of query execution: at most max_concurrent_queries
/// run; up to max_queued more wait (bounded by max_queue_wait_micros
/// and by the query's own cancellation token); the rest are shed with
/// kResourceExhausted so an overloaded server degrades by rejecting
/// work instead of by queueing without bound.
///
/// Thread-safe; Admit may be called concurrently from any thread.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionLimits limits);
  AdmissionController() : AdmissionController(AdmissionLimits{}) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Unhooks the stats collector from the metrics registry.
  ~AdmissionController();

  /// RAII slot: releasing (destroying) it wakes one queued query. The
  /// controller must outlive every Ticket.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool valid() const { return controller_ != nullptr; }
    void Release();

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* c) : controller_(c) {}
    AdmissionController* controller_ = nullptr;
  };

  /// Blocks (bounded) until a slot is free, observing `token` (may be
  /// null). Errors: kResourceExhausted when shed (queue full / wait
  /// bound exceeded), or the token's kCancelled/kDeadlineExceeded when
  /// the query died while waiting.
  Result<Ticket> Admit(const CancellationToken* token)
      WSQ_EXCLUDES(mu_);
  Result<Ticket> Admit() { return Admit(nullptr); }

  AdmissionStats stats() const WSQ_EXCLUDES(mu_);
  int active() const WSQ_EXCLUDES(mu_);
  int queued() const WSQ_EXCLUDES(mu_);
  const AdmissionLimits& limits() const { return limits_; }

 private:
  void Release() WSQ_EXCLUDES(mu_);

  const AdmissionLimits limits_;
  mutable Mutex mu_;
  CondVar cv_;
  int active_ WSQ_GUARDED_BY(mu_) = 0;
  int queued_ WSQ_GUARDED_BY(mu_) = 0;
  AdmissionStats stats_ WSQ_GUARDED_BY(mu_);
  /// Metrics-registry collector handle (see MetricsRegistry contract).
  uint64_t collector_id_ = 0;
};

}  // namespace wsq

#endif  // WSQ_WSQ_ADMISSION_H_
