#include "wsq/web_tables.h"

#include "common/macros.h"
#include "search/search_expr.h"

namespace wsq {

namespace {

Schema InputColumns(const std::string& qualifier, size_t n) {
  Schema s;
  s.AddColumn(Column("SearchExp", TypeId::kString, qualifier));
  for (size_t i = 1; i <= n; ++i) {
    s.AddColumn(
        Column("T" + std::to_string(i), TypeId::kString, qualifier));
  }
  return s;
}

std::vector<Value> InputValuesFor(const std::string& search_exp,
                                  const VTableRequest& request) {
  std::vector<Value> inputs;
  inputs.reserve(1 + request.terms.size());
  inputs.push_back(Value::Str(search_exp));
  for (const std::string& t : request.terms) {
    inputs.push_back(Value::Str(t));
  }
  return inputs;
}

}  // namespace

WebCountTable::WebCountTable(std::string name, SearchService* service,
                             bool supports_near)
    : name_(std::move(name)),
      service_(service),
      supports_near_(supports_near) {}

Schema WebCountTable::SchemaForTerms(size_t n) const {
  Schema s = InputColumns(name_, n);
  s.AddColumn(Column("Count", TypeId::kInt64, name_));
  return s;
}

std::string WebCountTable::EffectiveSearchExp(
    const VTableRequest& request) const {
  if (!request.search_exp.empty()) return request.search_exp;
  return DefaultSearchTemplate(request.terms.size(), supports_near_);
}

Result<std::string> WebCountTable::ExpandQuery(
    const VTableRequest& request) const {
  return ExpandSearchTemplate(EffectiveSearchExp(request), request.terms);
}

Result<std::vector<Row>> WebCountTable::Fetch(
    const VTableRequest& request) {
  WSQ_ASSIGN_OR_RETURN(std::string query, ExpandQuery(request));
  SearchRequest sreq;
  sreq.kind = SearchRequest::Kind::kCount;
  sreq.query = query;
  SearchResponse resp = service_->Execute(std::move(sreq));
  WSQ_RETURN_IF_ERROR(resp.status);

  Row row(InputValuesFor(EffectiveSearchExp(request), request));
  row.Append(Value::Int(resp.count));
  return std::vector<Row>{std::move(row)};
}

CallId WebCountTable::SubmitAsync(const VTableRequest& request,
                                  ReqPump* pump,
                                  int64_t timeout_micros) {
  // timeout_micros > 0 carries the query's remaining deadline budget;
  // otherwise the pump's default timeout applies.
  auto submit = [&](AsyncCallFn fn) {
    return timeout_micros > 0
               ? pump->Register(destination(), std::move(fn),
                                timeout_micros)
               : pump->Register(destination(), std::move(fn));
  };
  auto query = ExpandQuery(request);
  if (!query.ok()) {
    Status failure = query.status();
    return submit([failure](CallCompletion done) {
      done(CallResult{failure, {}});
    });
  }
  SearchRequest sreq;
  sreq.kind = SearchRequest::Kind::kCount;
  sreq.query = std::move(*query);
  sreq.shard = request.shard;
  SearchService* service = service_;
  return submit(
      [service, sreq = std::move(sreq)](CallCompletion done) mutable {
        service->Submit(std::move(sreq), [done](SearchResponse resp) {
          CallResult result;
          result.status = resp.status;
          if (resp.status.ok()) {
            result.rows.push_back(Row({Value::Int(resp.count)}));
            // Degraded-coverage accounting (sharded backends): the
            // count is a lower bound when shards were missing.
            result.degraded_shards =
                resp.partial
                    ? static_cast<uint32_t>(resp.shards_failed)
                    : 0;
          }
          done(std::move(result));
        });
      });
}

WebPagesTable::WebPagesTable(std::string name, SearchService* service,
                             bool supports_near)
    : name_(std::move(name)),
      service_(service),
      supports_near_(supports_near) {}

Schema WebPagesTable::SchemaForTerms(size_t n) const {
  Schema s = InputColumns(name_, n);
  s.AddColumn(Column("URL", TypeId::kString, name_));
  s.AddColumn(Column("Rank", TypeId::kInt64, name_));
  s.AddColumn(Column("Date", TypeId::kString, name_));
  return s;
}

std::string WebPagesTable::EffectiveSearchExp(
    const VTableRequest& request) const {
  if (!request.search_exp.empty()) return request.search_exp;
  return DefaultSearchTemplate(request.terms.size(), supports_near_);
}

Result<std::string> WebPagesTable::ExpandQuery(
    const VTableRequest& request) const {
  return ExpandSearchTemplate(EffectiveSearchExp(request), request.terms);
}

namespace {

std::vector<Row> HitsToOutputRows(const std::vector<SearchHit>& hits) {
  std::vector<Row> rows;
  rows.reserve(hits.size());
  for (const SearchHit& hit : hits) {
    rows.push_back(Row({Value::Str(hit.url), Value::Int(hit.rank),
                        Value::Str(hit.date)}));
  }
  return rows;
}

}  // namespace

Result<std::vector<Row>> WebPagesTable::Fetch(
    const VTableRequest& request) {
  if (request.rank_limit <= 0) return std::vector<Row>{};
  WSQ_ASSIGN_OR_RETURN(std::string query, ExpandQuery(request));
  SearchRequest sreq;
  sreq.kind = SearchRequest::Kind::kTopK;
  sreq.query = query;
  sreq.k = static_cast<size_t>(request.rank_limit);
  SearchResponse resp = service_->Execute(std::move(sreq));
  WSQ_RETURN_IF_ERROR(resp.status);

  std::vector<Value> inputs =
      InputValuesFor(EffectiveSearchExp(request), request);
  std::vector<Row> rows;
  rows.reserve(resp.hits.size());
  for (const SearchHit& hit : resp.hits) {
    Row row(inputs);
    row.Append(Value::Str(hit.url));
    row.Append(Value::Int(hit.rank));
    row.Append(Value::Str(hit.date));
    rows.push_back(std::move(row));
  }
  return rows;
}

CallId WebPagesTable::SubmitAsync(const VTableRequest& request,
                                  ReqPump* pump,
                                  int64_t timeout_micros) {
  auto submit = [&](AsyncCallFn fn) {
    return timeout_micros > 0
               ? pump->Register(destination(), std::move(fn),
                                timeout_micros)
               : pump->Register(destination(), std::move(fn));
  };
  auto query = ExpandQuery(request);
  if (!query.ok()) {
    Status failure = query.status();
    return submit([failure](CallCompletion done) {
      done(CallResult{failure, {}});
    });
  }
  if (request.rank_limit <= 0) {
    return submit([](CallCompletion done) {
      done(CallResult{Status::OK(), {}});
    });
  }
  SearchRequest sreq;
  sreq.kind = SearchRequest::Kind::kTopK;
  sreq.query = std::move(*query);
  sreq.k = static_cast<size_t>(request.rank_limit);
  sreq.shard = request.shard;
  SearchService* service = service_;
  return submit(
      [service, sreq = std::move(sreq)](CallCompletion done) mutable {
        service->Submit(std::move(sreq), [done](SearchResponse resp) {
          CallResult result;
          result.status = resp.status;
          if (resp.status.ok()) {
            result.rows = HitsToOutputRows(resp.hits);
            result.degraded_shards =
                resp.partial
                    ? static_cast<uint32_t>(resp.shards_failed)
                    : 0;
          }
          done(std::move(result));
        });
      });
}

}  // namespace wsq
