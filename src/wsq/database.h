#ifndef WSQ_WSQ_DATABASE_H_
#define WSQ_WSQ_DATABASE_H_

#include <memory>
#include <string>

#include "async/req_pump.h"
#include "catalog/catalog.h"
#include "common/cancellation.h"
#include "common/memory.h"
#include "exec/executor.h"
#include "net/search_service.h"
#include "obs/flight_recorder.h"
#include "obs/op_profile.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "plan/async_rewriter.h"
#include "plan/binder.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/spill.h"
#include "storage/wal.h"
#include "vtab/virtual_table.h"
#include "wsq/admission.h"

namespace wsq {

/// Observability for one executed query.
struct QueryStats {
  /// Process-unique query id (also tags the slow-query log line).
  uint64_t query_id = 0;
  int64_t elapsed_micros = 0;
  /// External (search engine) calls issued by this query.
  uint64_t external_calls = 0;
  /// Whether asynchronous iteration was used.
  bool async_iteration = false;
  /// External calls that completed with an error (including deadline
  /// timeouts) and were handled by a ReqSync.
  uint64_t failed_calls = 0;
  /// Tuples cancelled under OnCallError::kDropTuple.
  uint64_t dropped_tuples = 0;
  /// Tuples completed with NULLs under OnCallError::kNullPad.
  uint64_t null_padded_tuples = 0;
  /// Outstanding external calls cancelled when the query was aborted
  /// (deadline exceeded / explicit cancel).
  uint64_t cancelled_calls = 0;
  /// Pending tuples dropped by a ReqSync shed-oldest buffer budget.
  uint64_t shed_tuples = 0;
  /// Peak pending tuples / approximate bytes buffered by any ReqSync.
  uint64_t peak_buffered_rows = 0;
  uint64_t peak_buffered_bytes = 0;
  /// External calls that answered OK but from a strict subset of their
  /// backend's shards (quorum / best-effort degradation), and the total
  /// shards missing across those calls. Nonzero means counts in the
  /// result are lower bounds.
  uint64_t partial_results = 0;
  uint64_t degraded_shards = 0;
  /// Memory governor: bytes written to spill runs (Sort/Aggregate
  /// degrading to external algorithms) and the number of runs.
  uint64_t spilled_bytes = 0;
  uint64_t spill_runs = 0;
  /// High-water mark of the query's tracked reservations.
  uint64_t peak_memory_bytes = 0;
  /// Bytes freed by pressure callbacks (result cache / buffer pool
  /// shedding) on behalf of this query's reservations.
  uint64_t pressure_released_bytes = 0;
};

struct QueryExecution {
  ResultSet result;
  QueryStats stats;
  /// Annotated operator tree; filled when ExecOptions::analyze was set
  /// (EXPLAIN ANALYZE / \analyze).
  std::optional<PlanProfileNode> profile;
  /// Structured spans; filled when ExecOptions::trace was set.
  std::optional<QueryTrace> trace;
};

/// The WSQ system facade: a Redbase-style relational engine (catalog,
/// storage, SQL front end, iterator executor) extended with Web virtual
/// tables and asynchronous iteration — the full system of the paper.
class WsqDatabase {
 public:
  struct Options {
    size_t buffer_pool_pages = 256;
    ReqPump::Limits pump_limits;
    /// Overload admission control for Execute (default: off).
    AdmissionLimits admission;
    BinderOptions binder;
    /// Durability discipline for the database file and its WAL
    /// (file-backed databases only). kFull fsyncs at the checkpoint
    /// commit point; kFlush stops at the OS page cache; kNone is for
    /// benchmarks and throwaway data.
    SyncPolicy sync_policy = SyncPolicy::kFull;
    /// Run a final Checkpoint() from the destructor. Turned off by the
    /// crash harness, which wants the last checkpoint — not a clean
    /// shutdown — to be the durable truth.
    bool checkpoint_on_close = true;
    /// Database-wide slow-query threshold: queries whose wall time
    /// reaches it are reported to `slow_query_sink`. 0 disables the
    /// log; ExecOptions::slow_query_micros overrides per query.
    int64_t slow_query_micros = 0;
    /// Destination for slow-query records; null = one line to stderr.
    SlowQueryLog::Sink slow_query_sink;
    /// Destination for postmortem records (every bad query ending:
    /// failure, partial results, degraded tuples); null = stderr.
    /// Always on — disable by sinking to a no-op lambda.
    PostmortemLog::Sink postmortem_sink;
    /// At most one emitted postmortem per interval (0 = unlimited);
    /// suppressed records still update `postmortems()->last()`.
    int64_t postmortem_min_interval_micros = 0;
    /// Flight-recorder events retained per postmortem record.
    size_t postmortem_max_events = 128;
    /// Database-wide memory budget (a child of the process budget),
    /// covering operator state, ReqSync buffers, the buffer pool, and
    /// any attached result cache. 0 = unlimited (everything is still
    /// tracked, nothing ever fails). On exhaustion the degradation
    /// ladder runs: operators spill, caches shed, and finally new
    /// statements are refused with kResourceExhausted.
    size_t memory_budget_bytes = 0;
    /// Allow Sort/Aggregate to spill sorted runs to temp files when a
    /// reservation fails (tier 1). Off = a failed reservation fails
    /// the query instead.
    bool enable_spill = true;
    /// Directory for spill temp files; empty = $TMPDIR, else /tmp.
    std::string spill_dir;
  };

  /// In-memory database (tests, examples, benches).
  WsqDatabase() : WsqDatabase(Options()) {}
  explicit WsqDatabase(const Options& options);

  /// Opens (creating if absent) a file-backed database at `path`, with
  /// its write-ahead log at `path + ".wal"`. A checkpoint interrupted
  /// by a crash is finished (replayed) or rolled back (discarded) here,
  /// before the catalog is read. Stored tables persist across opens;
  /// virtual tables and search engines are re-registered per process.
  /// Call Checkpoint() (also run by the destructor) to persist catalog
  /// changes and dirty pages atomically.
  static Result<std::unique_ptr<WsqDatabase>> Open(
      const std::string& path, const Options& options);
  static Result<std::unique_ptr<WsqDatabase>> Open(
      const std::string& path) {
    return Open(path, Options());
  }

  /// Same open protocol over caller-supplied devices (which must
  /// outlive the database) — the seam the crash-injection harness uses
  /// to run a real database on simulated storage.
  static Result<std::unique_ptr<WsqDatabase>> OpenWithStorage(
      DiskManager* disk, WalStorage* wal, const Options& options);

  ~WsqDatabase();

  /// Atomically persists the catalog and every dirty page: the images
  /// are first hardened in the WAL (the commit record is the commit
  /// point), then installed into the database file, then the log is
  /// truncated. A crash anywhere in between leaves the database in
  /// exactly the pre- or post-checkpoint state after the next Open.
  /// Only valid for file-backed databases.
  Status Checkpoint();

  bool persistent() const { return persistent_; }

  /// What recovery did during Open (kNone after a clean shutdown).
  const WalRecoveryResult& last_recovery() const { return last_recovery_; }

  WsqDatabase(const WsqDatabase&) = delete;
  WsqDatabase& operator=(const WsqDatabase&) = delete;

  /// Registers search engine `engine_name`, creating virtual tables
  /// WebPages_<engine_name> and WebCount_<engine_name>. The first
  /// registered engine also gets the unsuffixed aliases WebPages and
  /// WebCount (the paper's convention: "WebPages_AV ... and similar
  /// virtual tables for Google or any other search engine").
  /// `service` must outlive this database.
  Status RegisterSearchEngine(const std::string& engine_name,
                              SearchService* service, bool supports_near);

  /// Per-query controls.
  struct ExecOptions {
    /// Apply the asynchronous-iteration rewrite (paper §4). Off = the
    /// conventional sequential execution the paper benchmarks against.
    bool async_iteration = true;
    RewriteOptions rewrite;
    /// Degradation policy for failed external calls; shorthand for
    /// setting `rewrite.on_call_error` (this wins when non-default).
    OnCallError on_call_error = OnCallError::kFailQuery;
    /// Absolute budget for the whole query, measured from Execute();
    /// 0 = none. On expiry the query aborts with kDeadlineExceeded and
    /// the remaining budget clamps every external call's timeout at
    /// issue time.
    int64_t deadline_micros = 0;
    /// Caller-owned cancellation token (must outlive Execute); lets
    /// another thread abort the query with kCancelled. Null = Execute
    /// uses a private token (deadline_micros still applies).
    CancellationToken* cancel = nullptr;
    /// Collect per-operator profiles (rows, calls, self/total time,
    /// ReqSync blocked time) and fill QueryExecution::profile. This is
    /// what EXPLAIN ANALYZE and the shell's \analyze turn on.
    bool analyze = false;
    /// Record structured trace spans and fill QueryExecution::trace.
    bool trace = false;
    /// Span budget when `trace` is set; 0 = Tracer::kDefaultMaxSpans.
    size_t trace_max_spans = 0;
    /// Per-query slow-query threshold: -1 inherits the database
    /// default, 0 disables the log for this query, > 0 overrides.
    int64_t slow_query_micros = -1;
    /// Partial-result policy when a search backend is sharded: fail the
    /// call unless all shards answer (default), accept K-of-N, or take
    /// whatever answers (see net/shard_policy.h). Ignored by unsharded
    /// backends.
    ShardOptions shard;
    /// Per-query memory cap, enforced as a child of the database
    /// budget (so the tighter of the two wins). 0 = no per-query cap;
    /// the database/process budgets still apply.
    size_t memory_budget_bytes = 0;
  };

  /// Executes SELECT / CREATE TABLE / INSERT / EXPLAIN. For EXPLAIN the
  /// plan text is returned as a single-column result.
  Result<QueryExecution> Execute(const std::string& sql,
                                 const ExecOptions& options);
  Result<QueryExecution> Execute(const std::string& sql) {
    return Execute(sql, ExecOptions{});
  }

  /// The logical plan text for a SELECT, after the async rewrite when
  /// `async` is set.
  Result<std::string> ExplainSelect(const std::string& sql, bool async,
                                    RewriteOptions rewrite = {});

  Catalog* catalog() { return &catalog_; }
  VirtualTableRegistry* vtables() { return &vtables_; }
  ReqPump* pump() { return &pump_; }
  BufferPool* buffer_pool() { return &buffer_pool_; }
  AdmissionController* admission() { return &admission_; }
  /// Database-wide memory budget (attach shared caches here).
  MemoryBudget* memory_budget() { return &memory_budget_; }
  SpillManager* spill() { return spill_.get(); }
  /// Degraded/failed-query forensics (the shell's \postmortem).
  PostmortemLog* postmortems() { return &postmortem_log_; }

 private:
  WsqDatabase(const Options& options, std::unique_ptr<DiskManager> owned_disk,
              DiskManager* disk, std::unique_ptr<WalStorage> owned_wal,
              WalStorage* wal, bool persistent);

  /// Shared tail of Open/OpenWithStorage: crash recovery, then either
  /// bootstrap of a fresh catalog (checkpointed immediately, so even a
  /// process killed right after Open leaves a valid file) or load of
  /// the existing one.
  static Result<std::unique_ptr<WsqDatabase>> OpenImpl(
      std::unique_ptr<WsqDatabase> db);

  /// Execute minus the per-query observability wrapper (query id,
  /// registry counters/latency histogram, slow-query log, postmortem).
  /// On failure, whatever stats the query accumulated before dying are
  /// left in `*failure_stats` (zeroes when it never reached execution)
  /// so the wrapper can still attribute degradation.
  Result<QueryExecution> ExecuteInternal(const std::string& sql,
                                         const ExecOptions& options,
                                         QueryStats* failure_stats);

  Result<QueryExecution> ExecuteSelect(const SelectStatement& stmt,
                                       const ExecOptions& options,
                                       const CancellationToken* token,
                                       QueryStats* failure_stats);
  Result<QueryExecution> ExecuteCreateTable(
      const CreateTableStatement& stmt);
  Result<QueryExecution> ExecuteCreateIndex(
      const CreateIndexStatement& stmt);
  Result<QueryExecution> ExecuteInsert(const InsertStatement& stmt);
  Result<QueryExecution> ExecuteDelete(const DeleteStatement& stmt);
  Result<QueryExecution> ExecuteUpdate(const UpdateStatement& stmt);

  Options options_;
  std::unique_ptr<DiskManager> owned_disk_;  // null for OpenWithStorage
  DiskManager* disk_;
  std::unique_ptr<WalStorage> owned_wal_;  // null for OpenWithStorage
  WalStorage* wal_;                        // null for in-memory databases
  bool persistent_ = false;
  WalRecoveryResult last_recovery_;
  /// Declared before (so destroyed after) every component that holds
  /// charges or pressure hooks against it: buffer pool, spill manager,
  /// and any caller-attached cache released via our destructor order.
  MemoryBudget memory_budget_;
  std::unique_ptr<SpillManager> spill_;
  BufferPool buffer_pool_;
  Catalog catalog_;
  VirtualTableRegistry vtables_;
  ReqPump pump_;
  AdmissionController admission_;
  SlowQueryLog slow_query_log_;
  PostmortemLog postmortem_log_;
  /// wsq_mem_* collector handle, removed in the destructor.
  uint64_t mem_collector_id_ = 0;
  /// \statusz section provider handle, removed in the destructor.
  uint64_t statusz_id_ = 0;
};

}  // namespace wsq

#endif  // WSQ_WSQ_DATABASE_H_
